#!/usr/bin/env bash
# Doc hygiene gate, run by the CI docs job (and runnable locally from the
# repo root). Three checks over the markdown set:
#
#   1. every relative markdown link resolves to a file/dir in the tree;
#   2. every source-tree path a doc mentions (src/..., tests/..., ...)
#      exists — as written, or with a source extension appended (so
#      "examples/dos_defense" matching examples/dos_defense.cpp is fine);
#   3. every backticked code symbol (`Foo::bar`, `CamelCase`) appears
#      somewhere in the source tree — stale identifiers fail the build.
#
# Fenced code blocks are ignored (their contents are illustrative, not
# references). Exits nonzero listing every failure.
set -u

cd "$(dirname "$0")/.."

DOCS=(README.md DESIGN.md EXPERIMENTS.md ROADMAP.md docs/*.md)
SRC_DIRS=(src tests bench examples tools docs)
fails=0

fail() {
  echo "check_docs: $1" >&2
  fails=$((fails + 1))
}

# Markdown with fenced code blocks stripped, for reference scanning.
strip_fences() {
  awk '/^[[:space:]]*```/ { fence = !fence; next } !fence' "$1"
}

# --- 1. relative markdown links ----------------------------------------
for doc in "${DOCS[@]}"; do
  dir=$(dirname "$doc")
  while IFS= read -r link; do
    case "$link" in
      http://*|https://*|mailto:*|\#*) continue ;;
    esac
    target="${link%%#*}"
    [ -n "$target" ] || continue
    if [ ! -e "$dir/$target" ] && [ ! -e "$target" ]; then
      fail "$doc: broken relative link ($link)"
    fi
  done < <(strip_fences "$doc" | grep -oE '\]\([^)[:space:]]+\)' | sed 's/^](//; s/)$//')
done

# --- 2. source-tree paths mentioned in prose ---------------------------
path_exists() {
  local p=$1
  [ -e "$p" ] && return 0
  for ext in .cpp .hpp .h .sh .md; do
    [ -e "$p$ext" ] && return 0
  done
  return 1
}

for doc in "${DOCS[@]}"; do
  while IFS= read -r p; do
    p="${p%%.}"      # trim sentence-ending dot
    p="${p%/}"       # trailing slash: directory reference
    path_exists "$p" || fail "$doc: stale path reference ($p)"
  done < <(strip_fences "$doc" \
           | sed 's|[A-Za-z0-9_./-]*build/[A-Za-z0-9_./-]*||g' \
           | grep -oE '(src|tests|bench|examples|tools|docs)/[A-Za-z0-9_./-]+' \
           | sort -u)
done

# --- 3. backticked code symbols ----------------------------------------
# `Ns::name` chains: the final identifier must exist in the tree.
# `CamelCase` single tokens: the word must exist in the tree.
symbol_exists() {
  grep -rqw --include='*.cpp' --include='*.hpp' --include='*.h' \
    -e "$1" "${SRC_DIRS[@]:0:4}"
}

for doc in "${DOCS[@]}"; do
  while IFS= read -r sym; do
    leaf="${sym##*::}"
    symbol_exists "$leaf" || fail "$doc: stale symbol reference ($sym)"
  done < <(strip_fences "$doc" \
           | grep -oE '`[A-Za-z_][A-Za-z0-9_]*(::~?[A-Za-z_][A-Za-z0-9_]*)+`?' \
           | tr -d '`' | sort -u)

  while IFS= read -r sym; do
    symbol_exists "$sym" || fail "$doc: stale symbol reference ($sym)"
  done < <(strip_fences "$doc" \
           | grep -oE '`[A-Z][A-Za-z0-9]*`' | tr -d '`' \
           | grep -E '[a-z]' | grep -vE '::' | sort -u)
done

if [ "$fails" -gt 0 ]; then
  echo "check_docs: $fails failure(s)" >&2
  exit 1
fi
echo "check_docs: OK (${#DOCS[@]} docs checked)"
