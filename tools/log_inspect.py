#!/usr/bin/env python3
"""Independent validator/inspector for PEACE operator store directories.

Parses the WAL segment and snapshot framing of src/peace/persist/ with
nothing but the Python standard library (zlib.crc32 matches the C++ CRC-32,
hashlib.sha256 the chain), so a CI job can check what the operator wrote
without trusting the operator's own code.

Usage:
  tools/log_inspect.py <store-dir>             # table + summary
  tools/log_inspect.py --validate <store-dir>  # exit 1 on any damage
"""

import argparse
import hashlib
import os
import re
import struct
import sys
import zlib

HEADER_MAGIC = b"PWAL"
RECORD_MAGIC = b"PREC"
SNAP_MAGIC = b"PSNP"
VERSION = 1
HEADER_SIZE = 4 + 1 + 8 + 32 + 4
RECORD_FIXED = 4 + 8 + 1 + 4  # magic | seq | type | len

RECORD_NAMES = {
    1: "group_registered",
    2: "group_reissued",
    3: "master_rotated",
    4: "user_revoked",
    5: "router_revoked",
    6: "router_provisioned",
    7: "enrolled",
    8: "receipt_archived",
}


def genesis_chain():
    return hashlib.sha256(b"peace/wal-genesis").digest()


def chain_next(prev, seq, rtype, payload):
    h = hashlib.sha256()
    h.update(prev)
    h.update(struct.pack(">Q", seq))
    h.update(struct.pack(">B", rtype))
    h.update(struct.pack(">I", len(payload)))
    h.update(payload)
    return h.digest()


class Segment:
    def __init__(self, path):
        self.path = path
        self.records = []  # (seq, rtype, payload_len, offset)
        self.damage = None
        self.base_seq = None
        self.base_chain = None
        self.last_seq = None
        self.last_chain = None
        self.dropped_bytes = 0


def scan_segment(path):
    seg = Segment(path)
    data = open(path, "rb").read()
    if len(data) < HEADER_SIZE or data[:4] != HEADER_MAGIC:
        seg.damage = "bad_header"
        return seg
    ver = data[4]
    (base_seq,) = struct.unpack(">Q", data[5:13])
    base_chain = data[13:45]
    (crc,) = struct.unpack(">I", data[45:49])
    if ver != VERSION or zlib.crc32(data[:45]) != crc:
        seg.damage = "bad_header"
        return seg
    seg.base_seq = base_seq
    seg.base_chain = base_chain
    seg.last_seq = base_seq
    seg.last_chain = base_chain

    off = HEADER_SIZE
    chain = base_chain
    seq = base_seq
    while off < len(data):
        rest = len(data) - off
        if rest < RECORD_FIXED + 32 + 4:
            seg.damage = "truncated"
            break
        if data[off : off + 4] != RECORD_MAGIC:
            seg.damage = "bad_magic"
            break
        (rseq,) = struct.unpack(">Q", data[off + 4 : off + 12])
        rtype = data[off + 12]
        (plen,) = struct.unpack(">I", data[off + 13 : off + 17])
        total = RECORD_FIXED + plen + 32 + 4
        if rest < total:
            seg.damage = "truncated"
            break
        payload = data[off + 17 : off + 17 + plen]
        rec_chain = data[off + 17 + plen : off + 17 + plen + 32]
        (rcrc,) = struct.unpack(">I", data[off + total - 4 : off + total])
        if zlib.crc32(data[off : off + total - 4]) != rcrc:
            seg.damage = "bad_crc"
            break
        if rseq != seq + 1:
            seg.damage = "bad_seq"
            break
        expect = chain_next(chain, rseq, rtype, payload)
        if rec_chain != expect:
            seg.damage = "bad_chain"
            break
        seq = rseq
        chain = expect
        seg.records.append((rseq, rtype, plen, off))
        seg.last_seq = seq
        seg.last_chain = chain
        off += total
    seg.dropped_bytes = len(data) - off
    return seg


def scan_snapshot(path):
    data = open(path, "rb").read()
    fixed = 4 + 1 + 8 + 32 + 4
    if len(data) < fixed + 4 or data[:4] != SNAP_MAGIC or data[4] != VERSION:
        return None
    (wal_seq,) = struct.unpack(">Q", data[5:13])
    wal_chain = data[13:45]
    (plen,) = struct.unpack(">I", data[45:49])
    if len(data) != fixed + plen + 4:
        return None
    (crc,) = struct.unpack(">I", data[fixed + plen :])
    if zlib.crc32(data[: fixed + plen]) != crc:
        return None
    return {"wal_seq": wal_seq, "wal_chain": wal_chain, "payload_len": plen}


def inspect(store_dir, verbose=True):
    seg_re = re.compile(r"^wal-(\d{20})\.wal$")
    snap_re = re.compile(r"^snap-(\d{20})\.snap$")
    segments, snapshots, problems = [], [], []

    for name in sorted(os.listdir(store_dir)):
        path = os.path.join(store_dir, name)
        if seg_re.match(name):
            segments.append(scan_segment(path))
        elif snap_re.match(name):
            snap = scan_snapshot(path)
            if snap is None:
                problems.append(f"damaged snapshot: {name}")
            else:
                snap["name"] = name
                snapshots.append(snap)
        elif ".orphan" in name:
            problems.append(f"orphaned segment present: {name}")

    if not segments:
        problems.append("no wal segments")

    # Per-segment integrity + cross-segment linkage.
    records = 0
    for i, seg in enumerate(segments):
        records += len(seg.records)
        if seg.damage:
            problems.append(
                f"{os.path.basename(seg.path)}: {seg.damage} "
                f"({seg.dropped_bytes} bytes dropped)"
            )
        if seg.base_seq is None:
            continue
        if i == 0:
            if seg.base_seq != 0 or seg.base_chain != genesis_chain():
                problems.append(
                    f"{os.path.basename(seg.path)}: not anchored at genesis"
                )
        else:
            prev = segments[i - 1]
            if prev.last_seq != seg.base_seq or prev.last_chain != seg.base_chain:
                problems.append(
                    f"{os.path.basename(seg.path)}: does not chain from "
                    f"predecessor (base_seq {seg.base_seq})"
                )

    # Every snapshot must bind to a real chain position: a segment boundary
    # or the end of a scanned segment.
    for snap in snapshots:
        bound = any(
            (s.base_seq == snap["wal_seq"] and s.base_chain == snap["wal_chain"])
            or (s.last_seq == snap["wal_seq"] and s.last_chain == snap["wal_chain"])
            for s in segments
            if s.base_seq is not None
        )
        if not bound:
            problems.append(f"{snap['name']}: not bound to the wal chain")

    if verbose:
        for seg in segments:
            name = os.path.basename(seg.path)
            state = seg.damage or "ok"
            base = "?" if seg.base_seq is None else seg.base_seq
            print(f"segment {name}  base_seq={base}  "
                  f"records={len(seg.records)}  {state}")
            for seq, rtype, plen, off in seg.records:
                rname = RECORD_NAMES.get(rtype, f"type_{rtype}")
                print(f"  #{seq:<6} {rname:<20} {plen:>7} bytes  @ {off}")
        for snap in snapshots:
            print(f"snapshot {snap['name']}  wal_seq={snap['wal_seq']}  "
                  f"payload={snap['payload_len']} bytes")
        print(f"total: {len(segments)} segment(s), {len(snapshots)} "
              f"snapshot(s), {records} record(s)")
        for p in problems:
            print(f"PROBLEM: {p}")
        if not problems:
            print("store is consistent")
    return problems


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("store_dir")
    ap.add_argument("--validate", action="store_true",
                    help="exit 1 if any damage or inconsistency is found")
    ap.add_argument("--quiet", action="store_true")
    args = ap.parse_args()
    if not os.path.isdir(args.store_dir):
        print(f"not a directory: {args.store_dir}", file=sys.stderr)
        return 2
    problems = inspect(args.store_dir, verbose=not args.quiet)
    if args.validate and problems:
        if args.quiet:
            for p in problems:
                print(f"PROBLEM: {p}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
