#!/usr/bin/env python3
"""Summarize (and validate) the PEACE health/security-event artifacts.

Usage:
    tools/health_report.py HEALTH.json [--trace TRACE.jsonl ...] [--validate]

HEALTH.json is the obs::HealthMonitor summary written by
`metro_city --health=...` (schema "peace.health.v1"): window/evaluation
options, per-shard window counts and alert totals, and the capped alert
log. TRACE.jsonl paths (including rotated `.jsonl.N` segments) are the
streamed traces from the same run; only their cat="sec"/"health" instants
— the security-event stream of docs/OBSERVABILITY.md §4 — are read.

Default mode prints a human summary: alerts by shard/kind/rule plus the
per-kind event census when traces are given. With --validate it
schema-checks everything (known event kinds, integer args, alert/event
cross-consistency) and exits non-zero on any violation — the CI gate for
the health artifact.
"""

import argparse
import json
import sys
from collections import defaultdict

HEALTH_SCHEMA = "peace.health.v1"

# Mirrors obs::SecEventKind (sec_event.hpp); health_alert rides the same
# stream under cat="health".
EVENT_KINDS = (
    "auth_reject",
    "batch_forgery_attributed",
    "replay_detected",
    "revocation_hit",
    "rl_resync",
    "session_rekey",
    "handshake_timeout",
    "inbox_shed",
    "health_alert",
)

ALERT_RULES = ("threshold", "ewma")


def fail(msg):
    print(f"health_report: VALIDATION FAILED: {msg}", file=sys.stderr)
    sys.exit(1)


def validate_health(doc):
    if doc.get("schema") != HEALTH_SCHEMA:
        fail(f"health: schema must be {HEALTH_SCHEMA!r}")
    for key in ("window_ms", "eval_every_ms", "cooldown_ms",
                "events_ingested", "alerts", "alerts_dropped"):
        if not isinstance(doc.get(key), int) or doc[key] < 0:
            fail(f"health: {key!r} must be a non-negative integer")
    if not isinstance(doc.get("shards"), list):
        fail("health: missing 'shards' array")
    for i, s in enumerate(doc["shards"]):
        where = f"health shard #{i}"
        if not isinstance(s.get("shard"), int):
            fail(f"{where}: missing integer 'shard'")
        if not isinstance(s.get("alerts"), int):
            fail(f"{where}: missing integer 'alerts'")
        if not isinstance(s.get("window"), dict):
            fail(f"{where}: missing 'window' object")
        for kind, n in s["window"].items():
            if kind not in EVENT_KINDS:
                fail(f"{where}: unknown event kind {kind!r}")
            if not isinstance(n, int) or n < 0:
                fail(f"{where}: window[{kind!r}] not a non-negative integer")
    if not isinstance(doc.get("alert_log"), list):
        fail("health: missing 'alert_log' array")
    for i, a in enumerate(doc["alert_log"]):
        where = f"alert #{i}"
        for key in ("sim_ms", "shard", "window_count"):
            if not isinstance(a.get(key), int):
                fail(f"{where}: missing integer {key!r}")
        if a.get("kind") not in EVENT_KINDS:
            fail(f"{where}: unknown kind {a.get('kind')!r}")
        if a.get("rule") not in ALERT_RULES:
            fail(f"{where}: unknown rule {a.get('rule')!r}")
        if not isinstance(a.get("label"), str) or not a["label"]:
            fail(f"{where}: missing 'label'")
    logged = len(doc["alert_log"])
    if logged + doc["alerts_dropped"] != doc["alerts"]:
        fail(f"health: alert_log has {logged} entries + {doc['alerts_dropped']} "
             f"dropped, but 'alerts' says {doc['alerts']}")


def load_sec_events(paths):
    """cat="sec"/"health" instants from one or more JSONL trace segments."""
    events = []
    for path in paths:
        with open(path) as f:
            for lineno, line in enumerate(f, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    e = json.loads(line)
                except json.JSONDecodeError as exc:
                    fail(f"{path}:{lineno}: {exc}")
                if e.get("cat") in ("sec", "health"):
                    e["_where"] = f"{path}:{lineno}"
                    events.append(e)
    return events


def validate_sec_events(events, health):
    for e in events:
        where = e["_where"]
        if e.get("ph") != "i":
            fail(f"{where}: security event with phase {e.get('ph')!r}")
        if e.get("name") not in EVENT_KINDS:
            fail(f"{where}: unknown event kind {e.get('name')!r}")
        expect_cat = "health" if e["name"] == "health_alert" else "sec"
        if e["cat"] != expect_cat:
            fail(f"{where}: {e['name']} under cat {e['cat']!r}, "
                 f"expected {expect_cat!r}")
        args = e.get("args", {})
        for key in ("shard", "origin", "detail"):
            if not isinstance(args.get(key), int):
                fail(f"{where}: missing integer arg {key!r}")
    if health is not None:
        # Every alert the monitor fired rides the stream as a health_alert
        # instant; ring shedding can only lose records, never invent them.
        streamed = sum(1 for e in events if e["name"] == "health_alert")
        if streamed > health["alerts"]:
            fail(f"trace has {streamed} health_alert events but the health "
                 f"summary fired only {health['alerts']}")


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("health", help="HealthMonitor summary JSON "
                                   "(metro_city --health output)")
    ap.add_argument("--trace", action="append", default=[],
                    help="streamed JSONL trace (repeatable; rotated "
                         ".jsonl.N segments welcome)")
    ap.add_argument("--validate", action="store_true",
                    help="schema-check the files; non-zero exit on violation")
    args = ap.parse_args()

    with open(args.health) as f:
        health = json.load(f)
    events = load_sec_events(args.trace)

    if args.validate:
        validate_health(health)
        validate_sec_events(events, health)
        print("health_report: validation ok")

    w_s = health["window_ms"] / 1000
    print(f"== health ({health['events_ingested']} events ingested, "
          f"{w_s:.0f} s window, {health['alerts']} alerts)")
    for s in health["shards"]:
        hot = ", ".join(f"{k}={n}" for k, n in sorted(s["window"].items()))
        print(f"shard {s['shard']:<4}{s['alerts']:>4} alerts"
              + (f"   window: {hot}" if hot else ""))

    if health["alert_log"]:
        print("\n== alerts")
        for a in health["alert_log"]:
            print(f"{a['sim_ms'] / 1000:>10.1f}s  shard {a['shard']:<3} "
                  f"{a['label']:<24} {a['kind']:<26} [{a['rule']}] "
                  f"window={a['window_count']} ewma={a.get('ewma', 0):.2f}")

    if events:
        census = defaultdict(int)
        by_shard = defaultdict(int)
        for e in events:
            census[e["name"]] += 1
            by_shard[e["args"]["shard"]] += 1
        print("\n== event stream")
        for name, n in sorted(census.items()):
            print(f"{name:<28}{n:>8}")
        print("by shard: " + ", ".join(
            f"s{s}={n}" for s, n in sorted(by_shard.items())))


if __name__ == "__main__":
    main()
