#!/usr/bin/env python3
"""Diff freshly-run Google Benchmark JSON against committed baselines.

Usage:
    tools/bench_compare.py --baseline-dir . --fresh-dir bench-out \
        [--tolerance 0.25] [--warn-tolerance 0.10]

Pairs every BENCH_*.json in --fresh-dir with the file of the same name in
--baseline-dir and compares per-benchmark real_time (normalized to ns).
Benchmarks present on only one side are reported but never fatal (the
suite grows; baselines lag a PR behind).

Two thresholds:

  * --warn-tolerance (default 10%): slower-than-baseline beyond this
    prints a warning line. Never fails the run — CI machines are noisy
    neighbours and a warn-only diff is still a usable trend signal.
  * --tolerance (default 25%): a HEADLINE benchmark (verify / sign /
    revocation-scan costs, matched by name) slower by more than this is a
    hard failure — the paper's core costs regressed beyond what machine
    noise explains.

Speedups are always fine (and reported). Exit status: 0 ok/warnings,
1 headline regression, 2 usage/IO error.
"""

import argparse
import glob
import json
import os
import sys

# Substrings (matched case-insensitively against the benchmark name) that
# mark the paper's headline costs: signing, verification (single and
# batch), and revocation scanning. Only these can hard-fail the diff.
HEADLINE_PATTERNS = (
    "groupsign",
    "groupverify",
    "verifypoolbatch",
    "batchverify",
    "urlscan",
    "revocationscan",
    "scanrevoked",
)

UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def load_benchmarks(path):
    """name -> real_time in ns for every non-aggregate benchmark entry."""
    with open(path) as f:
        doc = json.load(f)
    out = {}
    for b in doc.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        if "real_time" not in b:
            continue
        out[b["name"]] = b["real_time"] * UNIT_NS.get(b.get("time_unit"), 1.0)
    return out


def is_headline(name):
    low = name.lower()
    return any(p in low for p in HEADLINE_PATTERNS)


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--baseline-dir", required=True,
                    help="directory holding the committed BENCH_*.json")
    ap.add_argument("--fresh-dir", required=True,
                    help="directory holding the just-produced BENCH_*.json")
    ap.add_argument("--tolerance", type=float, default=0.25,
                    help="hard-fail threshold for headline benchmarks "
                         "(fraction; default 0.25)")
    ap.add_argument("--warn-tolerance", type=float, default=0.10,
                    help="warn threshold for every benchmark "
                         "(fraction; default 0.10)")
    args = ap.parse_args()

    fresh_files = sorted(glob.glob(os.path.join(args.fresh_dir,
                                                "BENCH_*.json")))
    if not fresh_files:
        print(f"bench_compare: no BENCH_*.json under {args.fresh_dir}",
              file=sys.stderr)
        return 2

    failures = []
    warnings = []
    compared = 0
    for fresh_path in fresh_files:
        name = os.path.basename(fresh_path)
        base_path = os.path.join(args.baseline_dir, name)
        if not os.path.exists(base_path):
            print(f"bench_compare: {name}: no committed baseline "
                  "(new suite?) — skipped")
            continue
        try:
            fresh = load_benchmarks(fresh_path)
            base = load_benchmarks(base_path)
        except (json.JSONDecodeError, OSError) as exc:
            print(f"bench_compare: {name}: {exc}", file=sys.stderr)
            return 2
        for bench in sorted(base.keys() | fresh.keys()):
            if bench not in fresh:
                print(f"  {name}: {bench}: in baseline only — skipped")
                continue
            if bench not in base:
                print(f"  {name}: {bench}: new benchmark — no baseline")
                continue
            compared += 1
            b, f = base[bench], fresh[bench]
            if b <= 0:
                continue
            delta = (f - b) / b
            tag = "HEADLINE" if is_headline(bench) else "        "
            line = (f"  {tag} {bench}: {b / 1e6:.3f} ms -> {f / 1e6:.3f} ms "
                    f"({delta:+.1%})")
            if is_headline(bench) and delta > args.tolerance:
                failures.append(line)
                print(line + "  ** REGRESSION **")
            elif delta > args.warn_tolerance:
                warnings.append(line)
                print(line + "  (slower)")
            else:
                print(line)

    print(f"bench_compare: {compared} benchmarks compared, "
          f"{len(warnings)} warnings, {len(failures)} headline regressions")
    if failures:
        print("bench_compare: headline benchmarks regressed beyond "
              f"{args.tolerance:.0%}:", file=sys.stderr)
        for line in failures:
            print(line, file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
