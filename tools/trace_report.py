#!/usr/bin/env python3
"""Summarize (and validate) PEACE telemetry exports.

Usage:
    tools/trace_report.py TRACE.json [--metrics METRICS.json] [--validate]

TRACE.json is the Chrome trace_event file written by
`metro_mesh_day --trace=...` (or any harness draining obs::Tracer);
a ".jsonl" path is instead read as the streaming/JSONL format (one event
object per line — `metro_city --trace=...` or `--jsonl=...` output, and
any rotated `.jsonl.N` segment). METRICS.json is the registry snapshot
from `--metrics=...`.

Default mode prints a human summary: per-span-name durations and crypto-op
attribution (pairings, Miller loops, final exponentiations, G2Prepared
builds, MSM work), async handshake latencies on the simulator clock, and
instant-event counts. With --validate it also checks both files against
the schemas documented in docs/OBSERVABILITY.md §5 and exits non-zero on
any violation — the CI gate for the telemetry artifacts.
"""

import argparse
import json
import sys
from collections import defaultdict

CRYPTO_KEYS = (
    "pairings",
    "miller_loops",
    "final_exps",
    "g2_prepared",
    "msm_calls",
    "msm_terms",
    "gt_pows",
)

METRICS_SCHEMA = "peace.metrics.v1"


def fail(msg):
    print(f"trace_report: VALIDATION FAILED: {msg}", file=sys.stderr)
    sys.exit(1)


def validate_trace(doc):
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        fail("trace: top level must be an object with a traceEvents array")
    events = doc["traceEvents"]
    if not isinstance(events, list):
        fail("trace: traceEvents must be an array")
    for i, e in enumerate(events):
        where = f"trace event #{i}"
        for key in ("name", "ph", "pid", "tid"):
            if key not in e:
                fail(f"{where}: missing '{key}'")
        ph = e["ph"]
        if ph not in ("X", "i", "b", "e", "M"):
            fail(f"{where}: unknown phase {ph!r}")
        if ph != "M" and "ts" not in e:
            fail(f"{where}: missing 'ts'")
        if ph == "X" and "dur" not in e:
            fail(f"{where}: duration span without 'dur'")
        if ph in ("b", "e") and "id" not in e:
            fail(f"{where}: async event without 'id'")
        for k, v in e.get("args", {}).items():
            if not isinstance(v, (int, str)):
                fail(f"{where}: arg {k!r} is not an integer or string")
    # Async begin/end events must pair up per (cat, id, name).
    open_spans = defaultdict(int)
    for e in events:
        key = (e.get("cat"), e.get("id"), e["name"])
        if e["ph"] == "b":
            open_spans[key] += 1
        elif e["ph"] == "e":
            open_spans[key] -= 1
            if open_spans[key] < 0:
                fail(f"trace: async end without begin for {key}")
    dangling = {k: n for k, n in open_spans.items() if n > 0}
    if dangling:
        # A run ending mid-handshake truncates spans — legitimate, not a
        # schema violation.
        print(f"trace_report: note: {len(dangling)} async span(s) still "
              "open at end of trace", file=sys.stderr)


def validate_metrics(doc):
    if doc.get("schema") != METRICS_SCHEMA:
        fail(f"metrics: schema must be {METRICS_SCHEMA!r}")
    for section in ("counters", "gauges", "histograms"):
        if not isinstance(doc.get(section), dict):
            fail(f"metrics: missing '{section}' object")
    for name, v in doc["counters"].items():
        if not isinstance(v, int) or v < 0:
            fail(f"metrics: counter {name!r} is not a non-negative integer")
    for name, v in doc["gauges"].items():
        if not isinstance(v, int):
            fail(f"metrics: gauge {name!r} is not an integer")
    for name, h in doc["histograms"].items():
        for key in ("count", "sum_us", "p50_us", "p90_us", "p95_us", "p99_us"):
            if key not in h:
                fail(f"metrics: histogram {name!r} missing '{key}'")
        total = 0
        for b in h.get("buckets", []):
            if "le_us" not in b or "count" not in b:
                fail(f"metrics: histogram {name!r} has a malformed bucket")
            total += b["count"]
        if h.get("buckets") and total != h["count"]:
            fail(f"metrics: histogram {name!r} bucket counts sum to {total}, "
                 f"count says {h['count']}")


def span_table(events):
    rows = defaultdict(lambda: {"n": 0, "dur": 0, **{k: 0 for k in CRYPTO_KEYS}})
    for e in events:
        if e["ph"] != "X":
            continue
        row = rows[e["name"]]
        row["n"] += 1
        row["dur"] += e.get("dur", 0)
        for k in CRYPTO_KEYS:
            row[k] += e.get("args", {}).get(k, 0)
    return rows


def async_latencies(events):
    begins = {}
    latencies = defaultdict(list)
    for e in events:
        key = (e.get("cat"), e.get("id"), e["name"])
        if e["ph"] == "b":
            begins[key] = e["ts"]
        elif e["ph"] == "e" and key in begins:
            latencies[e["name"]].append(e["ts"] - begins.pop(key))
    return latencies


def is_jsonl_path(path):
    # A rotated streaming segment is "<base>.jsonl.<n>".
    parts = path.rsplit(".", 2)
    return path.endswith(".jsonl") or (
        len(parts) == 3 and parts[1] == "jsonl" and parts[2].isdigit())


def load_jsonl(path):
    """Reads a streamed JSONL trace into the Chrome-format dict shape."""
    events = []
    with open(path) as f:
        for lineno, line in enumerate(f, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError as exc:
                fail(f"jsonl line {lineno}: {exc}")
    return {"traceEvents": events}


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("trace",
                    help="Chrome trace_event JSON (--trace output), or a "
                         ".jsonl streaming trace (one event per line)")
    ap.add_argument("--metrics", help="metrics registry JSON (--metrics output)")
    ap.add_argument("--validate", action="store_true",
                    help="schema-check the files; non-zero exit on violation")
    args = ap.parse_args()

    if is_jsonl_path(args.trace):
        trace = load_jsonl(args.trace)
    else:
        with open(args.trace) as f:
            trace = json.load(f)
    metrics = None
    if args.metrics:
        with open(args.metrics) as f:
            metrics = json.load(f)

    if args.validate:
        validate_trace(trace)
        if metrics is not None:
            validate_metrics(metrics)
        print("trace_report: validation ok")

    events = [e for e in trace["traceEvents"] if e.get("ph") != "M"]
    print(f"== spans ({sum(1 for e in events if e['ph'] == 'X')} events)")
    rows = span_table(events)
    header = f"{'span':<18}{'n':>5}{'total ms':>10}{'mean ms':>9}"
    header += "".join(f"{k:>13}" for k in CRYPTO_KEYS)
    print(header)
    for name in sorted(rows, key=lambda n: -rows[n]["dur"]):
        r = rows[name]
        mean = r["dur"] / r["n"] / 1000 if r["n"] else 0.0
        line = f"{name:<18}{r['n']:>5}{r['dur'] / 1000:>10.1f}{mean:>9.2f}"
        line += "".join(f"{r[k]:>13}" for k in CRYPTO_KEYS)
        print(line)

    lat = async_latencies(events)
    if lat:
        print("\n== handshakes (simulator clock)")
        for name, xs in sorted(lat.items()):
            xs.sort()
            print(f"{name:<18}{len(xs):>5} done, "
                  f"median {xs[len(xs) // 2] / 1000:.0f} ms, "
                  f"max {xs[-1] / 1000:.0f} ms")

    instants = defaultdict(int)
    for e in events:
        if e["ph"] == "i":
            instants[e["name"]] += 1
    if instants:
        print("\n== events")
        for name, n in sorted(instants.items()):
            print(f"{name:<24}{n:>6}")

    if metrics is not None:
        print("\n== metrics")
        interesting = [k for k in metrics["counters"]
                       if k.split(".")[0] in ("curve", "router", "user",
                                              "mesh", "revocation", "pool",
                                              "metro", "metro_city")]
        for name in interesting:
            print(f"{name:<32}{metrics['counters'][name]:>12}")
        for name, h in metrics["histograms"].items():
            print(f"{name:<32}{h['count']:>6} samples, "
                  f"p50 {h['p50_us'] / 1000:.1f} ms, "
                  f"p99 {h['p99_us'] / 1000:.1f} ms")


if __name__ == "__main__":
    main()
