#include "baseline/ring_sig.hpp"

#include "common/serde.hpp"
#include "curve/hash_to_curve.hpp"

namespace peace::baseline {

namespace {

/// Ring challenge chain: c_{i+1} = H(ring, msg, g^{z_i} Y_i^{c_i}).
Fr chain_step(const Bytes& ring_digest, BytesView message, const G1& commit) {
  Writer w;
  w.bytes(ring_digest);
  w.bytes(message);
  w.raw(curve::g1_to_bytes(commit));
  return curve::hash_to_fr("peace/ring/chain", w.data());
}

Bytes digest_ring(const std::vector<G1>& ring) {
  Writer w;
  for (const G1& y : ring) w.raw(curve::g1_to_bytes(y));
  return w.take();
}

}  // namespace

RingKeyPair RingKeyPair::generate(crypto::Drbg& rng) {
  RingKeyPair kp;
  kp.secret = curve::random_fr(rng);
  kp.public_key = curve::Bn254::get().g1_gen * kp.secret;
  return kp;
}

Bytes RingSignature::to_bytes() const {
  Writer w;
  w.raw(curve::fr_to_bytes(c0));
  w.u32(static_cast<std::uint32_t>(z.size()));
  for (const Fr& zi : z) w.raw(curve::fr_to_bytes(zi));
  return w.take();
}

RingSignature RingSignature::from_bytes(BytesView data) {
  Reader r(data);
  RingSignature sig;
  sig.c0 = curve::fr_from_bytes(r.raw(32));
  const std::uint32_t n = r.u32();
  if (n > r.remaining() / 32) throw Error("ring: bad member count");
  sig.z.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i)
    sig.z.push_back(curve::fr_from_bytes(r.raw(32)));
  r.expect_end();
  return sig;
}

RingSignature ring_sign(const std::vector<G1>& ring, std::size_t signer_index,
                        const Fr& secret, BytesView message,
                        crypto::Drbg& rng) {
  const std::size_t n = ring.size();
  if (n == 0 || signer_index >= n) throw Error("ring: bad signer index");
  const auto& g = curve::Bn254::get().g1_gen;
  if (!(g * secret == ring[signer_index]))
    throw Error("ring: secret does not match ring slot");

  const Bytes ring_digest = digest_ring(ring);
  std::vector<Fr> z(n);
  std::vector<Fr> c(n);

  // Start the chain just after the signer with a fresh commitment g^alpha.
  const Fr alpha = curve::random_fr(rng);
  c[(signer_index + 1) % n] = chain_step(ring_digest, message, g * alpha);

  // Walk the ring with simulated responses until back at the signer.
  for (std::size_t off = 1; off < n; ++off) {
    const std::size_t i = (signer_index + off) % n;
    z[i] = curve::random_fr(rng);
    c[(i + 1) % n] =
        chain_step(ring_digest, message, g * z[i] + ring[i] * c[i]);
  }
  // Close the ring with the real secret.
  z[signer_index] = alpha - c[signer_index] * secret;

  return {c[0], std::move(z)};
}

bool ring_verify(const std::vector<G1>& ring, BytesView message,
                 const RingSignature& sig) {
  const std::size_t n = ring.size();
  if (n == 0 || sig.z.size() != n) return false;
  const auto& g = curve::Bn254::get().g1_gen;
  const Bytes ring_digest = digest_ring(ring);
  Fr c = sig.c0;
  for (std::size_t i = 0; i < n; ++i) {
    c = chain_step(ring_digest, message, g * sig.z[i] + ring[i] * c);
  }
  return c == sig.c0;
}

}  // namespace peace::baseline
