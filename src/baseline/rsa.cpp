#include "baseline/rsa.hpp"

#include "crypto/sha256.hpp"

namespace peace::baseline {

namespace {

/// Trial-division prefilter primes.
constexpr std::uint64_t kSmallPrimes[] = {
    3,   5,   7,   11,  13,  17,  19,  23,  29,  31,  37,  41,  43,  47,
    53,  59,  61,  67,  71,  73,  79,  83,  89,  97,  101, 103, 107, 109,
    113, 127, 131, 137, 139, 149, 151, 157, 163, 167, 173, 179, 181, 191,
    193, 197, 199, 211, 223, 227, 229, 233, 239, 241, 251, 257, 263, 269,
    271, 277, 281, 283, 293, 307, 311, 313, 317, 331, 337, 347, 349, 353,
    359, 367, 373, 379, 383, 389, 397, 401, 409, 419, 421, 431, 433, 439,
    443, 449, 457, 461, 463, 467, 479, 487, 491, 499, 503, 509, 521, 523,
    541, 547, 557, 563, 569, 571, 577, 587, 593, 599, 601, 607, 613, 617,
    619, 631, 641, 643, 647, 653, 659, 661, 673, 677, 683, 691, 701, 709};

bool passes_trial_division(const BigInt& n) {
  for (std::uint64_t p : kSmallPrimes) {
    if ((n % BigInt(p)).is_zero()) return false;
  }
  return true;
}

/// EMSA-PKCS1-v1_5-shaped padding: 0x00 0x01 FF..FF 0x00 || SHA-256(msg),
/// sized to the modulus length.
BigInt padded_digest(BytesView message, std::size_t modulus_len) {
  const Bytes digest = crypto::Sha256::hash(message);
  if (modulus_len < digest.size() + 11)
    throw Error("rsa: modulus too small for padding");
  Bytes em(modulus_len, 0xff);
  em[0] = 0x00;
  em[1] = 0x01;
  em[modulus_len - digest.size() - 1] = 0x00;
  std::copy(digest.begin(), digest.end(),
            em.end() - static_cast<std::ptrdiff_t>(digest.size()));
  return BigInt::from_bytes(em);
}

}  // namespace

BigInt generate_prime(unsigned bits, crypto::Drbg& rng, int mr_rounds) {
  if (bits < 16) throw Error("rsa: prime too small");
  const std::size_t len = (bits + 7) / 8;
  auto rand_base_factory = [&rng](const BigInt& n) {
    return [&rng, n]() {
      const std::size_t blen = (n.bit_length() + 7) / 8;
      for (;;) {
        const BigInt cand = BigInt::from_bytes(rng.bytes(blen));
        if (BigInt::cmp(cand, BigInt(2)) >= 0 &&
            BigInt::cmp(cand, n - BigInt(2)) <= 0)
          return cand;
      }
    };
  };
  for (;;) {
    Bytes raw = rng.bytes(len);
    // Force exact bit length with the top two bits set, and oddness.
    const unsigned top_bit = (bits - 1) % 8;
    raw[0] &= static_cast<std::uint8_t>(0xff >> (7 - top_bit));
    raw[0] |= static_cast<std::uint8_t>(1u << top_bit);
    if (top_bit > 0) raw[0] |= static_cast<std::uint8_t>(1u << (top_bit - 1));
    raw[len - 1] |= 1;
    const BigInt cand = BigInt::from_bytes(raw);
    if (!passes_trial_division(cand)) continue;
    if (BigInt::is_probable_prime(cand, mr_rounds, rand_base_factory(cand)))
      return cand;
  }
}

RsaKeyPair RsaKeyPair::generate(unsigned modulus_bits, crypto::Drbg& rng) {
  if (modulus_bits < 256 || modulus_bits % 2 != 0)
    throw Error("rsa: unsupported modulus size");
  const BigInt e(65537);
  for (;;) {
    const BigInt p = generate_prime(modulus_bits / 2, rng);
    const BigInt q = generate_prime(modulus_bits / 2, rng);
    if (p == q) continue;
    const BigInt phi = (p - BigInt(1)) * (q - BigInt(1));
    if (BigInt::cmp(BigInt::gcd(e, phi), BigInt(1)) != 0) continue;
    RsaKeyPair kp;
    kp.n_ = p * q;
    kp.e_ = e;
    kp.d_ = BigInt::mod_inverse(e, phi);
    if (kp.n_.bit_length() != modulus_bits) continue;
    return kp;
  }
}

Bytes RsaKeyPair::sign(BytesView message) const {
  const BigInt em = padded_digest(message, modulus_bytes());
  return BigInt::mod_pow(em, d_, n_).to_bytes(modulus_bytes());
}

bool RsaKeyPair::verify(BytesView message, BytesView signature) const {
  if (signature.size() != modulus_bytes()) return false;
  const BigInt sig = BigInt::from_bytes(signature);
  if (!(BigInt::cmp(sig, n_) < 0)) return false;
  const BigInt recovered = BigInt::mod_pow(sig, e_, n_);
  return recovered == padded_digest(message, modulus_bytes());
}

}  // namespace peace::baseline
