// Schnorr blind signature over G1 — the other design alternative the paper
// rejects in Sec. IV: the signer (operator) issues a credential without
// seeing it, so showing it later is perfectly anonymous AND perfectly
// unaccountable — there is no opening, no linkage, and no way to revoke an
// individual credential short of rotating the issuing key. The baseline
// tests make those non-properties explicit.
#pragma once

#include <optional>

#include "curve/ecdsa.hpp"

namespace peace::baseline {

using curve::Fr;
using curve::G1;

/// An unblinded credential: a plain Schnorr signature (c, s) on `message`
/// under the issuer key, unlinkable to its issuance transcript.
struct BlindSignature {
  Fr c;
  Fr s;

  Bytes to_bytes() const;
  static BlindSignature from_bytes(BytesView data);
};

class BlindIssuer {
 public:
  static BlindIssuer create(crypto::Drbg& rng);

  const G1& public_key() const { return public_key_; }

  /// Round 1: the issuer's commitment R = g^k. The state token must be
  /// kept to finish this session.
  struct SessionState {
    Fr k;
  };
  G1 round1(SessionState& state, crypto::Drbg& rng) const;

  /// Round 2: responds to the (blinded) challenge.
  Fr round2(const SessionState& state, const Fr& blinded_challenge) const;

 private:
  Fr secret_;
  G1 public_key_;
};

/// User side, between the issuer's two rounds: blinds the commitment,
/// derives the real challenge for `message`, and unblinds the response.
class BlindRequester {
 public:
  /// Consumes R = g^k, produces the blinded challenge to send back.
  Fr challenge(const G1& issuer_pub, const G1& commitment, BytesView message,
               crypto::Drbg& rng);

  /// Consumes the issuer's response; returns the final signature.
  BlindSignature unblind(const Fr& response) const;

 private:
  Fr alpha_, beta_;
  Fr real_challenge_;
};

bool blind_verify(const G1& issuer_pub, BytesView message,
                  const BlindSignature& sig);

}  // namespace peace::baseline
