#include "baseline/blind_sig.hpp"

#include "common/serde.hpp"
#include "curve/hash_to_curve.hpp"

namespace peace::baseline {

namespace {

Fr schnorr_challenge(const G1& commitment, BytesView message) {
  Writer w;
  w.raw(curve::g1_to_bytes(commitment));
  w.bytes(message);
  return curve::hash_to_fr("peace/blindsig/challenge", w.data());
}

}  // namespace

Bytes BlindSignature::to_bytes() const {
  Bytes out = curve::fr_to_bytes(c);
  append(out, curve::fr_to_bytes(s));
  return out;
}

BlindSignature BlindSignature::from_bytes(BytesView data) {
  if (data.size() != 64) throw Error("blindsig: bad length");
  return {curve::fr_from_bytes(data.subspan(0, 32)),
          curve::fr_from_bytes(data.subspan(32))};
}

BlindIssuer BlindIssuer::create(crypto::Drbg& rng) {
  BlindIssuer issuer;
  issuer.secret_ = curve::random_fr(rng);
  issuer.public_key_ = curve::Bn254::get().g1_gen * issuer.secret_;
  return issuer;
}

G1 BlindIssuer::round1(SessionState& state, crypto::Drbg& rng) const {
  state.k = curve::random_fr(rng);
  return curve::Bn254::get().g1_gen * state.k;
}

Fr BlindIssuer::round2(const SessionState& state,
                       const Fr& blinded_challenge) const {
  // s = k - c * x; the issuer never sees the message or the real challenge.
  return state.k - blinded_challenge * secret_;
}

Fr BlindRequester::challenge(const G1& issuer_pub, const G1& commitment,
                             BytesView message, crypto::Drbg& rng) {
  alpha_ = curve::random_fr(rng);
  beta_ = curve::random_fr(rng);
  // R' = R * g^alpha * Y^beta; c' = H(R', m); blinded c = c' - beta.
  const G1 blinded = commitment + curve::Bn254::get().g1_gen * alpha_ +
                     issuer_pub * beta_;
  real_challenge_ = schnorr_challenge(blinded, message);
  return real_challenge_ - beta_;
}

BlindSignature BlindRequester::unblind(const Fr& response) const {
  // s' = s + alpha.
  return {real_challenge_, response + alpha_};
}

bool blind_verify(const G1& issuer_pub, BytesView message,
                  const BlindSignature& sig) {
  // Standard Schnorr: c == H(g^s Y^c, m).
  const G1 commitment =
      curve::Bn254::get().g1_gen * sig.s + issuer_pub * sig.c;
  return schnorr_challenge(commitment, message) == sig.c;
}

}  // namespace peace::baseline
