// Strawman comparator: a conventional certificate-based authentication
// framework with NO anONYMITY — each user holds an identity certificate and
// signs access requests under their own key, exposing uid on every
// handshake. Same three-way shape as PEACE so the benches compare apples to
// apples: what does PEACE's privacy cost, and what does this design leak?
#pragma once

#include <optional>
#include <string>

#include "curve/ecdsa.hpp"

namespace peace::baseline {

using curve::EcdsaKeyPair;
using curve::EcdsaSignature;
using curve::G1;

struct PlainUserCertificate {
  std::string uid;  // transmitted in the clear with every request
  G1 public_key;
  std::uint64_t expires_at = 0;
  EcdsaSignature signature;  // by the operator

  Bytes signed_payload() const;
  Bytes to_bytes() const;
  static PlainUserCertificate from_bytes(BytesView data);
};

/// The operator side: issues user certificates and keeps a revocation set
/// keyed by uid (revocation here trivially reveals who was revoked).
class PlainAuthority {
 public:
  explicit PlainAuthority(crypto::Drbg rng);

  const G1& public_key() const { return root_.public_key(); }

  struct IssuedUser {
    EcdsaKeyPair keypair;
    PlainUserCertificate certificate;
  };
  IssuedUser issue_user(const std::string& uid, std::uint64_t expires_at);

  void revoke(const std::string& uid);
  bool is_revoked(const std::string& uid) const;

 private:
  mutable crypto::Drbg rng_;
  EcdsaKeyPair root_;
  std::vector<std::string> revoked_;
};

/// The access request of the strawman protocol: identity cert + plain
/// signature over the DH transcript.
struct PlainAccessRequest {
  G1 g_rj;
  G1 g_rr;
  std::uint64_t ts = 0;
  PlainUserCertificate certificate;
  EcdsaSignature signature;

  Bytes signed_payload() const;
  Bytes to_bytes() const;
  static PlainAccessRequest from_bytes(BytesView data);
};

PlainAccessRequest make_plain_request(const PlainAuthority::IssuedUser& user,
                                      const G1& g_rj, const G1& g_rr,
                                      std::uint64_t ts, crypto::Drbg& rng);

/// Router-side verification: certificate chain, expiry, revocation by uid,
/// then the user's signature. Returns the authenticated uid — the point of
/// the comparison being that there IS one.
std::optional<std::string> verify_plain_request(
    const PlainAuthority& authority, const PlainAccessRequest& request,
    std::uint64_t now, std::uint64_t replay_window);

}  // namespace peace::baseline
