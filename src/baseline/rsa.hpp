// RSA with hash-and-pad signatures, built on the BigInt substrate. The
// paper's Sec. V.C compares its group signature against "a standard
// 1024-bit RSA signature" — this module regenerates that comparison (E1)
// with real, working keys rather than a quoted constant.
#pragma once

#include "crypto/drbg.hpp"
#include "math/bigint.hpp"

namespace peace::baseline {

using math::BigInt;

class RsaKeyPair {
 public:
  /// Generates a fresh keypair with a modulus of `modulus_bits`
  /// (two Miller-Rabin-certified primes, e = 65537).
  static RsaKeyPair generate(unsigned modulus_bits, crypto::Drbg& rng);

  const BigInt& modulus() const { return n_; }
  std::size_t modulus_bytes() const { return (n_.bit_length() + 7) / 8; }

  /// Full-domain-hash style signature: pad(SHA-256(msg))^d mod n.
  Bytes sign(BytesView message) const;
  bool verify(BytesView message, BytesView signature) const;

 private:
  BigInt n_, e_, d_;
};

/// Generates a probable prime of exactly `bits` bits (top two bits set so
/// products have full length). Exposed for tests.
BigInt generate_prime(unsigned bits, crypto::Drbg& rng, int mr_rounds = 20);

}  // namespace peace::baseline
