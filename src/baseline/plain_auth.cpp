#include "baseline/plain_auth.hpp"

#include <algorithm>

#include "common/serde.hpp"

namespace peace::baseline {

using curve::g1_from_bytes;
using curve::g1_to_bytes;

Bytes PlainUserCertificate::signed_payload() const {
  Writer w;
  w.str("plain/user-cert");
  w.str(uid);
  w.raw(g1_to_bytes(public_key));
  w.u64(expires_at);
  return w.take();
}

Bytes PlainUserCertificate::to_bytes() const {
  Writer w;
  w.str(uid);
  w.raw(g1_to_bytes(public_key));
  w.u64(expires_at);
  w.raw(signature.to_bytes());
  return w.take();
}

PlainUserCertificate PlainUserCertificate::from_bytes(BytesView data) {
  Reader r(data);
  PlainUserCertificate c;
  c.uid = r.str();
  c.public_key = g1_from_bytes(r.raw(curve::kG1CompressedSize));
  c.expires_at = r.u64();
  c.signature = EcdsaSignature::from_bytes(r.raw(curve::kEcdsaSignatureSize));
  r.expect_end();
  return c;
}

PlainAuthority::PlainAuthority(crypto::Drbg rng)
    : rng_(std::move(rng)), root_(EcdsaKeyPair::generate(rng_)) {}

PlainAuthority::IssuedUser PlainAuthority::issue_user(
    const std::string& uid, std::uint64_t expires_at) {
  IssuedUser user;
  user.keypair = EcdsaKeyPair::generate(rng_);
  user.certificate.uid = uid;
  user.certificate.public_key = user.keypair.public_key();
  user.certificate.expires_at = expires_at;
  user.certificate.signature =
      root_.sign(user.certificate.signed_payload(), rng_);
  return user;
}

void PlainAuthority::revoke(const std::string& uid) { revoked_.push_back(uid); }

bool PlainAuthority::is_revoked(const std::string& uid) const {
  return std::find(revoked_.begin(), revoked_.end(), uid) != revoked_.end();
}

Bytes PlainAccessRequest::signed_payload() const {
  Writer w;
  w.str("plain/m2");
  w.raw(g1_to_bytes(g_rj));
  w.raw(g1_to_bytes(g_rr));
  w.u64(ts);
  return w.take();
}

Bytes PlainAccessRequest::to_bytes() const {
  Writer w;
  w.raw(g1_to_bytes(g_rj));
  w.raw(g1_to_bytes(g_rr));
  w.u64(ts);
  w.bytes(certificate.to_bytes());
  w.raw(signature.to_bytes());
  return w.take();
}

PlainAccessRequest PlainAccessRequest::from_bytes(BytesView data) {
  Reader r(data);
  PlainAccessRequest m;
  m.g_rj = g1_from_bytes(r.raw(curve::kG1CompressedSize));
  m.g_rr = g1_from_bytes(r.raw(curve::kG1CompressedSize));
  m.ts = r.u64();
  m.certificate = PlainUserCertificate::from_bytes(r.bytes());
  m.signature = EcdsaSignature::from_bytes(r.raw(curve::kEcdsaSignatureSize));
  r.expect_end();
  return m;
}

PlainAccessRequest make_plain_request(const PlainAuthority::IssuedUser& user,
                                      const G1& g_rj, const G1& g_rr,
                                      std::uint64_t ts, crypto::Drbg& rng) {
  PlainAccessRequest m;
  m.g_rj = g_rj;
  m.g_rr = g_rr;
  m.ts = ts;
  m.certificate = user.certificate;
  m.signature = user.keypair.sign(m.signed_payload(), rng);
  return m;
}

std::optional<std::string> verify_plain_request(
    const PlainAuthority& authority, const PlainAccessRequest& request,
    std::uint64_t now, std::uint64_t replay_window) {
  const std::uint64_t age =
      now >= request.ts ? now - request.ts : request.ts - now;
  if (age > replay_window) return std::nullopt;
  const PlainUserCertificate& cert = request.certificate;
  if (cert.expires_at <= now) return std::nullopt;
  if (authority.is_revoked(cert.uid)) return std::nullopt;
  if (!curve::ecdsa_verify(authority.public_key(), cert.signed_payload(),
                           cert.signature))
    return std::nullopt;
  if (!curve::ecdsa_verify(cert.public_key, request.signed_payload(),
                           request.signature))
    return std::nullopt;
  return cert.uid;
}

}  // namespace peace::baseline
