// Abe-Ohkubo-Suzuki style Schnorr ring signature over G1 — the design
// alternative the paper rejects in Sec. IV: it gives anonymity within an
// ad-hoc ring but is structurally unopenable (no manager, no tokens, no
// Eq.3), so accountability and revocation are impossible; and the
// signature grows linearly with the ring. Implemented as a baseline so the
// comparison is executable: see `ring_sig_test.cpp` and `bench_sig_size`.
#pragma once

#include <vector>

#include "curve/ecdsa.hpp"

namespace peace::baseline {

using curve::Fr;
using curve::G1;

struct RingKeyPair {
  Fr secret;
  G1 public_key;

  static RingKeyPair generate(crypto::Drbg& rng);
};

/// (c0, z_0..z_{n-1}): one scalar per ring member plus the seed challenge.
struct RingSignature {
  Fr c0;
  std::vector<Fr> z;

  Bytes to_bytes() const;
  static RingSignature from_bytes(BytesView data);
  std::size_t size_bytes() const { return 32 * (1 + z.size()); }
};

/// Signs on behalf of `ring` (public keys) using the secret of
/// `ring[signer_index]`. Throws if the index or key is inconsistent.
RingSignature ring_sign(const std::vector<G1>& ring, std::size_t signer_index,
                        const Fr& secret, BytesView message,
                        crypto::Drbg& rng);

bool ring_verify(const std::vector<G1>& ring, BytesView message,
                 const RingSignature& sig);

}  // namespace peace::baseline
