#include "crypto/gcm.hpp"

#include <cstring>

#include "crypto/aes.hpp"

namespace peace::crypto {

namespace {

using Block = std::array<std::uint8_t, 16>;

Block xor_blocks(const Block& a, const Block& b) {
  Block out;
  for (int i = 0; i < 16; ++i)
    out[static_cast<std::size_t>(i)] = a[static_cast<std::size_t>(i)] ^
                                       b[static_cast<std::size_t>(i)];
  return out;
}

/// GHASH accumulator: Y <- (Y xor block) * H over the padded input stream.
class Ghash {
 public:
  explicit Ghash(const Block& h) : h_(h) { y_.fill(0); }

  void update(BytesView data) {
    std::size_t off = 0;
    while (off < data.size()) {
      Block block{};
      const std::size_t n = std::min<std::size_t>(16, data.size() - off);
      std::memcpy(block.data(), data.data() + off, n);
      y_ = ghash_multiply(xor_blocks(y_, block), h_);
      off += n;
    }
  }

  Block finalize(std::uint64_t aad_bits, std::uint64_t ct_bits) {
    Block lens;
    for (int i = 0; i < 8; ++i) {
      lens[static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>(aad_bits >> (56 - 8 * i));
      lens[static_cast<std::size_t>(8 + i)] =
          static_cast<std::uint8_t>(ct_bits >> (56 - 8 * i));
    }
    y_ = ghash_multiply(xor_blocks(y_, lens), h_);
    return y_;
  }

 private:
  Block h_;
  Block y_;
};

Block counter_block(BytesView nonce, std::uint32_t counter) {
  Block j{};
  std::memcpy(j.data(), nonce.data(), kGcmNonceSize);
  for (int i = 0; i < 4; ++i)
    j[static_cast<std::size_t>(12 + i)] =
        static_cast<std::uint8_t>(counter >> (24 - 8 * i));
  return j;
}

/// CTR-mode keystream application starting at counter value 2 (GCM uses
/// counter 1 for the tag mask).
Bytes ctr_crypt(const Aes128& aes, BytesView nonce, BytesView data) {
  Bytes out(data.begin(), data.end());
  std::uint32_t counter = 2;
  for (std::size_t off = 0; off < out.size(); off += 16, ++counter) {
    const Block j = counter_block(nonce, counter);
    Block keystream;
    aes.encrypt_block(j.data(), keystream.data());
    const std::size_t n = std::min<std::size_t>(16, out.size() - off);
    for (std::size_t i = 0; i < n; ++i)
      out[off + i] ^= keystream[i];
  }
  return out;
}

Bytes compute_tag(const Aes128& aes, BytesView nonce, BytesView aad,
                  BytesView ciphertext) {
  Block zero{};
  Block h;
  aes.encrypt_block(zero.data(), h.data());
  Ghash ghash(h);
  ghash.update(aad);
  ghash.update(ciphertext);
  const Block s =
      ghash.finalize(static_cast<std::uint64_t>(aad.size()) * 8,
                     static_cast<std::uint64_t>(ciphertext.size()) * 8);
  const Block j0 = counter_block(nonce, 1);
  Block mask;
  aes.encrypt_block(j0.data(), mask.data());
  const Block tag = xor_blocks(s, mask);
  return Bytes(tag.begin(), tag.end());
}

}  // namespace

std::array<std::uint8_t, 16> ghash_multiply(const Block& x, const Block& y) {
  // Bit-reflected GF(2^128) multiply (SP 800-38D algorithm 1): process the
  // bits of x MSB-first, conditionally accumulating a right-shifting copy
  // of y reduced by R = 0xe1 << 120.
  Block z{};
  Block v = y;
  for (int bit = 0; bit < 128; ++bit) {
    const int byte = bit / 8;
    const int mask = 0x80 >> (bit % 8);
    if (x[static_cast<std::size_t>(byte)] & mask) z = xor_blocks(z, v);
    const bool lsb = v[15] & 1;
    // v >>= 1 across the block.
    for (int i = 15; i > 0; --i)
      v[static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>(v[static_cast<std::size_t>(i)] >> 1 |
                                    v[static_cast<std::size_t>(i - 1)] << 7);
    v[0] >>= 1;
    if (lsb) v[0] ^= 0xe1;
  }
  return z;
}

Bytes aes_gcm_seal(BytesView key, BytesView nonce, BytesView aad,
                   BytesView plaintext) {
  if (nonce.size() != kGcmNonceSize) throw Error("gcm: bad nonce size");
  const Aes128 aes(key);
  Bytes out = ctr_crypt(aes, nonce, plaintext);
  const Bytes tag = compute_tag(aes, nonce, aad, out);
  append(out, tag);
  return out;
}

std::optional<Bytes> aes_gcm_open(BytesView key, BytesView nonce,
                                  BytesView aad,
                                  BytesView ciphertext_and_tag) {
  if (nonce.size() != kGcmNonceSize) throw Error("gcm: bad nonce size");
  if (ciphertext_and_tag.size() < kGcmTagSize) return std::nullopt;
  const Aes128 aes(key);
  const BytesView ciphertext =
      ciphertext_and_tag.subspan(0, ciphertext_and_tag.size() - kGcmTagSize);
  const BytesView tag =
      ciphertext_and_tag.subspan(ciphertext_and_tag.size() - kGcmTagSize);
  const Bytes expected = compute_tag(aes, nonce, aad, ciphertext);
  if (!ct_equal(expected, tag)) return std::nullopt;
  return ctr_crypt(aes, nonce, ciphertext);
}

}  // namespace peace::crypto
