// ChaCha20 stream cipher (RFC 8439). Used as the session cipher behind
// E_K(.) in the PEACE protocols and as the core of the deterministic DRBG.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.hpp"

namespace peace::crypto {

class ChaCha20 {
 public:
  static constexpr std::size_t kKeySize = 32;
  static constexpr std::size_t kNonceSize = 12;

  /// Throws Error on wrong key/nonce sizes.
  ChaCha20(BytesView key, BytesView nonce, std::uint32_t counter = 0);

  /// XORs the keystream into `data` in place (encrypt == decrypt).
  void crypt(std::uint8_t* data, std::size_t len);
  Bytes crypt_copy(BytesView data);

  /// One 64-byte keystream block at the given counter (for Poly1305 keygen).
  static std::array<std::uint8_t, 64> block(BytesView key, BytesView nonce,
                                            std::uint32_t counter);

 private:
  void refill();

  std::array<std::uint32_t, 16> state_;
  std::array<std::uint8_t, 64> keystream_;
  std::size_t pos_ = 64;  // consumed
};

}  // namespace peace::crypto
