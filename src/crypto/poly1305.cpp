#include "crypto/poly1305.hpp"

#include <cstring>

namespace peace::crypto {

namespace {
inline std::uint32_t load_le32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         static_cast<std::uint32_t>(p[1]) << 8 |
         static_cast<std::uint32_t>(p[2]) << 16 |
         static_cast<std::uint32_t>(p[3]) << 24;
}
}  // namespace

Poly1305::Poly1305(BytesView key) {
  if (key.size() != kKeySize) throw Error("poly1305: bad key size");
  std::uint8_t rk[16];
  std::memcpy(rk, key.data(), 16);
  // Clamp per RFC 8439.
  rk[3] &= 15; rk[7] &= 15; rk[11] &= 15; rk[15] &= 15;
  rk[4] &= 252; rk[8] &= 252; rk[12] &= 252;
  const std::uint32_t t0 = load_le32(rk), t1 = load_le32(rk + 4),
                      t2 = load_le32(rk + 8), t3 = load_le32(rk + 12);
  // Split the 128-bit clamped r into five 26-bit limbs.
  r_[0] = t0 & 0x3ffffff;
  r_[1] = (t0 >> 26 | t1 << 6) & 0x3ffffff;
  r_[2] = (t1 >> 20 | t2 << 12) & 0x3ffffff;
  r_[3] = (t2 >> 14 | t3 << 18) & 0x3ffffff;
  r_[4] = t3 >> 8;
  std::memcpy(s_, key.data() + 16, 16);
}

void Poly1305::process_block(const std::uint8_t* block, std::uint8_t hibit) {
  const std::uint32_t t0 = load_le32(block), t1 = load_le32(block + 4),
                      t2 = load_le32(block + 8), t3 = load_le32(block + 12);
  // h += block (with the 2^128 marker bit in limb 4).
  h_[0] += t0 & 0x3ffffff;
  h_[1] += (t0 >> 26 | t1 << 6) & 0x3ffffff;
  h_[2] += (t1 >> 20 | t2 << 12) & 0x3ffffff;
  h_[3] += (t2 >> 14 | t3 << 18) & 0x3ffffff;
  h_[4] += (t3 >> 8) | static_cast<std::uint32_t>(hibit) << 24;

  // h *= r mod 2^130 - 5: the wrap-around limbs pick up a factor of 5.
  using u64 = std::uint64_t;
  const u64 h0 = h_[0], h1 = h_[1], h2 = h_[2], h3 = h_[3], h4 = h_[4];
  const u64 r0 = r_[0], r1 = r_[1], r2 = r_[2], r3 = r_[3], r4 = r_[4];
  const u64 s1 = r1 * 5, s2 = r2 * 5, s3 = r3 * 5, s4 = r4 * 5;

  u64 d0 = h0 * r0 + h1 * s4 + h2 * s3 + h3 * s2 + h4 * s1;
  u64 d1 = h0 * r1 + h1 * r0 + h2 * s4 + h3 * s3 + h4 * s2;
  u64 d2 = h0 * r2 + h1 * r1 + h2 * r0 + h3 * s4 + h4 * s3;
  u64 d3 = h0 * r3 + h1 * r2 + h2 * r1 + h3 * r0 + h4 * s4;
  u64 d4 = h0 * r4 + h1 * r3 + h2 * r2 + h3 * r1 + h4 * r0;

  u64 c = d0 >> 26; d0 &= 0x3ffffff; d1 += c;
  c = d1 >> 26; d1 &= 0x3ffffff; d2 += c;
  c = d2 >> 26; d2 &= 0x3ffffff; d3 += c;
  c = d3 >> 26; d3 &= 0x3ffffff; d4 += c;
  c = d4 >> 26; d4 &= 0x3ffffff; d0 += c * 5;
  c = d0 >> 26; d0 &= 0x3ffffff; d1 += c;

  h_[0] = static_cast<std::uint32_t>(d0);
  h_[1] = static_cast<std::uint32_t>(d1);
  h_[2] = static_cast<std::uint32_t>(d2);
  h_[3] = static_cast<std::uint32_t>(d3);
  h_[4] = static_cast<std::uint32_t>(d4);
}

void Poly1305::update(BytesView data) {
  std::size_t off = 0;
  if (buffered_ > 0) {
    const std::size_t take = std::min(16 - buffered_, data.size());
    std::memcpy(buffer_.data() + buffered_, data.data(), take);
    buffered_ += take;
    off = take;
    if (buffered_ == 16) {
      process_block(buffer_.data(), 1);
      buffered_ = 0;
    }
  }
  while (off + 16 <= data.size()) {
    process_block(data.data() + off, 1);
    off += 16;
  }
  if (off < data.size()) {
    std::memcpy(buffer_.data(), data.data() + off, data.size() - off);
    buffered_ = data.size() - off;
  }
}

std::array<std::uint8_t, Poly1305::kTagSize> Poly1305::finalize() {
  if (buffered_ > 0) {
    // Pad the final partial block with 0x01 then zeros; no 2^128 marker.
    buffer_[buffered_] = 1;
    for (std::size_t i = buffered_ + 1; i < 16; ++i) buffer_[i] = 0;
    process_block(buffer_.data(), 0);
    buffered_ = 0;
  }
  // Full carry propagation.
  std::uint32_t h0 = h_[0], h1 = h_[1], h2 = h_[2], h3 = h_[3], h4 = h_[4];
  std::uint32_t c = h1 >> 26; h1 &= 0x3ffffff; h2 += c;
  c = h2 >> 26; h2 &= 0x3ffffff; h3 += c;
  c = h3 >> 26; h3 &= 0x3ffffff; h4 += c;
  c = h4 >> 26; h4 &= 0x3ffffff; h0 += c * 5;
  c = h0 >> 26; h0 &= 0x3ffffff; h1 += c;

  // Compute h + 5 - 2^130 and select it if non-negative (i.e. h >= p).
  std::uint32_t g0 = h0 + 5;
  c = g0 >> 26; g0 &= 0x3ffffff;
  std::uint32_t g1 = h1 + c;
  c = g1 >> 26; g1 &= 0x3ffffff;
  std::uint32_t g2 = h2 + c;
  c = g2 >> 26; g2 &= 0x3ffffff;
  std::uint32_t g3 = h3 + c;
  c = g3 >> 26; g3 &= 0x3ffffff;
  const std::uint32_t g4 = h4 + c - (1u << 26);

  const std::uint32_t mask = (g4 >> 31) - 1;  // all-ones if h >= p
  h0 = (h0 & ~mask) | (g0 & mask);
  h1 = (h1 & ~mask) | (g1 & mask);
  h2 = (h2 & ~mask) | (g2 & mask);
  h3 = (h3 & ~mask) | (g3 & mask);
  h4 = (h4 & ~mask) | (g4 & mask);

  // Serialize h to 128 bits and add s mod 2^128.
  const std::uint32_t w0 = h0 | h1 << 26;
  const std::uint32_t w1 = h1 >> 6 | h2 << 20;
  const std::uint32_t w2 = h2 >> 12 | h3 << 14;
  const std::uint32_t w3 = h3 >> 18 | h4 << 8;

  std::uint64_t f;
  std::array<std::uint8_t, kTagSize> out;
  const std::uint32_t words[4] = {w0, w1, w2, w3};
  std::uint64_t carry = 0;
  for (int i = 0; i < 4; ++i) {
    f = static_cast<std::uint64_t>(words[i]) + load_le32(s_ + 4 * i) + carry;
    out[4 * i] = static_cast<std::uint8_t>(f);
    out[4 * i + 1] = static_cast<std::uint8_t>(f >> 8);
    out[4 * i + 2] = static_cast<std::uint8_t>(f >> 16);
    out[4 * i + 3] = static_cast<std::uint8_t>(f >> 24);
    carry = f >> 32;
  }
  return out;
}

Bytes Poly1305::mac(BytesView key, BytesView message) {
  Poly1305 p(key);
  p.update(message);
  auto t = p.finalize();
  return Bytes(t.begin(), t.end());
}

}  // namespace peace::crypto
