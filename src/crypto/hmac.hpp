// HMAC-SHA256 (RFC 2104) and HKDF (RFC 5869). HMAC authenticates all
// per-session data traffic in PEACE's hybrid design; HKDF derives session
// encryption and MAC keys from the Diffie-Hellman shared secret.
#pragma once

#include "common/bytes.hpp"

namespace peace::crypto {

/// HMAC-SHA256(key, message) — 32-byte tag.
Bytes hmac_sha256(BytesView key, BytesView message);

/// HKDF-Extract: PRK = HMAC(salt, ikm).
Bytes hkdf_extract(BytesView salt, BytesView ikm);

/// HKDF-Expand: `length` bytes of output keyed by PRK and bound to `info`.
/// Throws Error if length > 255 * 32.
Bytes hkdf_expand(BytesView prk, BytesView info, std::size_t length);

/// One-shot extract-then-expand.
Bytes hkdf(BytesView salt, BytesView ikm, BytesView info, std::size_t length);

}  // namespace peace::crypto
