#include "crypto/hmac.hpp"

#include "crypto/sha256.hpp"

namespace peace::crypto {

Bytes hmac_sha256(BytesView key, BytesView message) {
  Bytes k(Sha256::kBlockSize, 0);
  if (key.size() > Sha256::kBlockSize) {
    const Bytes hashed = Sha256::hash(key);
    std::copy(hashed.begin(), hashed.end(), k.begin());
  } else {
    std::copy(key.begin(), key.end(), k.begin());
  }
  Bytes ipad(Sha256::kBlockSize), opad(Sha256::kBlockSize);
  for (std::size_t i = 0; i < Sha256::kBlockSize; ++i) {
    ipad[i] = k[i] ^ 0x36;
    opad[i] = k[i] ^ 0x5c;
  }
  const Bytes inner = sha256_concat(ipad, message);
  return sha256_concat(opad, inner);
}

Bytes hkdf_extract(BytesView salt, BytesView ikm) {
  if (salt.empty()) {
    const Bytes zero(Sha256::kDigestSize, 0);
    return hmac_sha256(zero, ikm);
  }
  return hmac_sha256(salt, ikm);
}

Bytes hkdf_expand(BytesView prk, BytesView info, std::size_t length) {
  if (length > 255 * Sha256::kDigestSize) throw Error("hkdf: length too large");
  Bytes out;
  Bytes t;
  std::uint8_t counter = 1;
  while (out.size() < length) {
    Bytes block = t;
    append(block, info);
    block.push_back(counter++);
    t = hmac_sha256(prk, block);
    append(out, t);
  }
  out.resize(length);
  return out;
}

Bytes hkdf(BytesView salt, BytesView ikm, BytesView info, std::size_t length) {
  return hkdf_expand(hkdf_extract(salt, ikm), info, length);
}

}  // namespace peace::crypto
