// Deterministic random bit generator built on ChaCha20, with forward
// secrecy via key ratcheting. Every randomized component in the library
// takes a Drbg& so whole simulations are reproducible from one seed.
#pragma once

#include <cstdint>
#include <string_view>

#include "common/bytes.hpp"

namespace peace::crypto {

class Drbg {
 public:
  /// Seeds from arbitrary entropy (hashed to the cipher key).
  explicit Drbg(BytesView seed);
  /// Convenience: seed from a label + counter (tests, simulations).
  static Drbg from_string(std::string_view label, std::uint64_t n = 0);
  /// Seeds from the OS entropy source (/dev/urandom). Throws on failure.
  static Drbg from_os_entropy();

  void fill(std::uint8_t* out, std::size_t len);
  Bytes bytes(std::size_t len);
  std::uint64_t next_u64();
  /// Uniform in [0, bound) by rejection sampling; bound must be nonzero.
  std::uint64_t uniform(std::uint64_t bound);
  /// Uniform double in [0, 1).
  double uniform_real();

  /// Forks an independent child generator (parent state advances).
  Drbg fork(std::string_view label);

  /// Serializes the full generator state (key, counter, output cache) so a
  /// restored generator continues the exact output stream. Intended for the
  /// operator persistence layer's durable store only: the exported bytes
  /// include the unconsumed keystream cache, so the forward-secrecy
  /// guarantee of the ratchet does not extend to captured state exports.
  Bytes export_state() const;
  static Drbg import_state(BytesView data);

 private:
  Drbg() = default;  // used by import_state

  void ratchet();

  Bytes key_;            // 32 bytes
  std::uint64_t block_counter_ = 0;
  Bytes cache_;
  std::size_t cache_pos_ = 0;
};

}  // namespace peace::crypto
