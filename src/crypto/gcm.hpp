// AES-128-GCM authenticated encryption (NIST SP 800-38D), the second
// cipher suite behind PEACE's E_K(.). Same seal/open contract as the
// ChaCha20-Poly1305 functions in aead.hpp.
#pragma once

#include <optional>

#include "common/bytes.hpp"

namespace peace::crypto {

constexpr std::size_t kGcmKeySize = 16;
constexpr std::size_t kGcmNonceSize = 12;
constexpr std::size_t kGcmTagSize = 16;

/// Returns ciphertext || 16-byte tag.
Bytes aes_gcm_seal(BytesView key, BytesView nonce, BytesView aad,
                   BytesView plaintext);

/// Returns the plaintext, or nullopt when authentication fails.
std::optional<Bytes> aes_gcm_open(BytesView key, BytesView nonce,
                                  BytesView aad, BytesView ciphertext_and_tag);

/// GF(2^128) product as defined for GHASH (exposed for tests).
std::array<std::uint8_t, 16> ghash_multiply(
    const std::array<std::uint8_t, 16>& x,
    const std::array<std::uint8_t, 16>& y);

}  // namespace peace::crypto
