#include "crypto/drbg.hpp"

#include <cstdio>

#include "common/serde.hpp"
#include "crypto/chacha20.hpp"
#include "crypto/sha256.hpp"

namespace peace::crypto {

namespace {
constexpr std::size_t kCacheBlocks = 16;  // 1 KiB of keystream per refill
}

Drbg::Drbg(BytesView seed) : key_(Sha256::hash(seed)) {}

Drbg Drbg::from_string(std::string_view label, std::uint64_t n) {
  Bytes seed = to_bytes(label);
  for (int i = 0; i < 8; ++i)
    seed.push_back(static_cast<std::uint8_t>(n >> (8 * i)));
  return Drbg(seed);
}

Drbg Drbg::from_os_entropy() {
  Bytes seed(48);
  std::FILE* f = std::fopen("/dev/urandom", "rb");
  if (f == nullptr) throw Error("drbg: cannot open /dev/urandom");
  const std::size_t got = std::fread(seed.data(), 1, seed.size(), f);
  std::fclose(f);
  if (got != seed.size()) throw Error("drbg: short read from /dev/urandom");
  return Drbg(seed);
}

void Drbg::ratchet() {
  Bytes nonce(ChaCha20::kNonceSize, 0);
  for (int i = 0; i < 8; ++i)
    nonce[i] = static_cast<std::uint8_t>(block_counter_ >> (8 * i));
  ++block_counter_;
  // Generate key material + output cache, then ratchet the key forward so
  // past output cannot be reconstructed from a captured state.
  ChaCha20 cipher(key_, nonce, 0);
  Bytes stream(32 + kCacheBlocks * 64, 0);
  cipher.crypt(stream.data(), stream.size());
  key_.assign(stream.begin(), stream.begin() + 32);
  cache_.assign(stream.begin() + 32, stream.end());
  cache_pos_ = 0;
}

void Drbg::fill(std::uint8_t* out, std::size_t len) {
  for (std::size_t i = 0; i < len; ++i) {
    if (cache_pos_ == cache_.size()) ratchet();
    out[i] = cache_[cache_pos_++];
  }
}

Bytes Drbg::bytes(std::size_t len) {
  Bytes out(len);
  fill(out.data(), len);
  return out;
}

std::uint64_t Drbg::next_u64() {
  std::uint8_t buf[8];
  fill(buf, 8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = v << 8 | buf[i];
  return v;
}

std::uint64_t Drbg::uniform(std::uint64_t bound) {
  if (bound == 0) throw Error("drbg: zero bound");
  const std::uint64_t limit = ~std::uint64_t{0} - ~std::uint64_t{0} % bound;
  std::uint64_t v;
  do {
    v = next_u64();
  } while (v >= limit);
  return v % bound;
}

double Drbg::uniform_real() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

Drbg Drbg::fork(std::string_view label) {
  Bytes seed = bytes(32);
  append(seed, as_bytes(label));
  return Drbg(seed);
}

Bytes Drbg::export_state() const {
  Writer w;
  w.str("peace/drbg-state-v1");
  w.bytes(key_);
  w.u64(block_counter_);
  w.bytes(cache_);
  w.u64(cache_pos_);
  return w.take();
}

Drbg Drbg::import_state(BytesView data) {
  Reader r(data);
  if (r.str() != "peace/drbg-state-v1")
    throw Error("drbg: bad state encoding");
  Drbg d;
  d.key_ = r.bytes();
  d.block_counter_ = r.u64();
  d.cache_ = r.bytes();
  d.cache_pos_ = r.u64();
  r.expect_end();
  if (d.key_.size() != 32 || d.cache_pos_ > d.cache_.size())
    throw Error("drbg: malformed state");
  return d;
}

}  // namespace peace::crypto
