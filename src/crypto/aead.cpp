#include "crypto/aead.hpp"

#include "crypto/chacha20.hpp"
#include "crypto/poly1305.hpp"

namespace peace::crypto {

namespace {

Bytes compute_tag(BytesView poly_key, BytesView aad, BytesView ciphertext) {
  Poly1305 mac(poly_key);
  const Bytes zero(16, 0);
  mac.update(aad);
  if (aad.size() % 16 != 0) mac.update({zero.data(), 16 - aad.size() % 16});
  mac.update(ciphertext);
  if (ciphertext.size() % 16 != 0)
    mac.update({zero.data(), 16 - ciphertext.size() % 16});
  std::uint8_t lens[16];
  for (int i = 0; i < 8; ++i) {
    lens[i] = static_cast<std::uint8_t>(static_cast<std::uint64_t>(aad.size()) >>
                                        (8 * i));
    lens[8 + i] = static_cast<std::uint8_t>(
        static_cast<std::uint64_t>(ciphertext.size()) >> (8 * i));
  }
  mac.update({lens, 16});
  auto tag = mac.finalize();
  return Bytes(tag.begin(), tag.end());
}

Bytes poly_key_for(BytesView key, BytesView nonce) {
  const auto block = ChaCha20::block(key, nonce, 0);
  return Bytes(block.begin(), block.begin() + 32);
}

}  // namespace

Bytes aead_seal(BytesView key, BytesView nonce, BytesView aad,
                BytesView plaintext) {
  ChaCha20 cipher(key, nonce, 1);
  Bytes out = cipher.crypt_copy(plaintext);
  const Bytes tag = compute_tag(poly_key_for(key, nonce), aad, out);
  append(out, tag);
  return out;
}

std::optional<Bytes> aead_open(BytesView key, BytesView nonce, BytesView aad,
                               BytesView ciphertext_and_tag) {
  if (ciphertext_and_tag.size() < kAeadTagSize) return std::nullopt;
  const BytesView ciphertext =
      ciphertext_and_tag.subspan(0, ciphertext_and_tag.size() - kAeadTagSize);
  const BytesView tag =
      ciphertext_and_tag.subspan(ciphertext_and_tag.size() - kAeadTagSize);
  const Bytes expected = compute_tag(poly_key_for(key, nonce), aad, ciphertext);
  if (!ct_equal(expected, tag)) return std::nullopt;
  ChaCha20 cipher(key, nonce, 1);
  return cipher.crypt_copy(ciphertext);
}

}  // namespace peace::crypto
