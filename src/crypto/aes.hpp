// AES-128 block cipher (FIPS 197), encryption direction only — CTR and GCM
// modes never need the inverse cipher. The S-box and round constants are
// computed at first use from the GF(2^8) field algebra instead of being
// transcribed, eliminating a whole class of table typos; the FIPS-197
// appendix vector pins the result in tests.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.hpp"

namespace peace::crypto {

class Aes128 {
 public:
  static constexpr std::size_t kBlockSize = 16;
  static constexpr std::size_t kKeySize = 16;

  /// Throws Error on wrong key size.
  explicit Aes128(BytesView key);

  void encrypt_block(const std::uint8_t in[kBlockSize],
                     std::uint8_t out[kBlockSize]) const;

  /// The forward S-box (exposed for tests).
  static const std::array<std::uint8_t, 256>& sbox();

 private:
  std::array<std::array<std::uint8_t, 16>, 11> round_keys_;
};

}  // namespace peace::crypto
