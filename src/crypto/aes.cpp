#include "crypto/aes.hpp"

namespace peace::crypto {

namespace {

/// GF(2^8) multiplication modulo x^8 + x^4 + x^3 + x + 1 (0x11b).
std::uint8_t gf_mul(std::uint8_t a, std::uint8_t b) {
  std::uint8_t out = 0;
  while (b != 0) {
    if (b & 1) out ^= a;
    const bool high = a & 0x80;
    a <<= 1;
    if (high) a ^= 0x1b;
    b >>= 1;
  }
  return out;
}

std::uint8_t gf_inverse(std::uint8_t a) {
  if (a == 0) return 0;
  // a^254 = a^-1 in GF(2^8): square-and-multiply over the 8-bit exponent.
  std::uint8_t result = 1;
  std::uint8_t base = a;
  for (int e = 254; e > 0; e >>= 1) {
    if (e & 1) result = gf_mul(result, base);
    base = gf_mul(base, base);
  }
  return result;
}

std::array<std::uint8_t, 256> build_sbox() {
  std::array<std::uint8_t, 256> box;
  for (int i = 0; i < 256; ++i) {
    const std::uint8_t inv = gf_inverse(static_cast<std::uint8_t>(i));
    // Affine transform: b ^= rot(b,1) ^ rot(b,2) ^ rot(b,3) ^ rot(b,4) ^ 0x63.
    std::uint8_t x = inv;
    std::uint8_t result = 0x63;
    for (int r = 0; r < 5; ++r) {
      result ^= x;
      x = static_cast<std::uint8_t>(x << 1 | x >> 7);
    }
    // The loop added inv itself plus 4 rotations; subtract the extra term:
    // result currently = 0x63 ^ inv ^ rot1 ^ rot2 ^ rot3 ^ rot4. Correct.
    box[static_cast<std::size_t>(i)] = result;
  }
  return box;
}

void sub_bytes(std::array<std::uint8_t, 16>& state) {
  const auto& box = Aes128::sbox();
  for (auto& b : state) b = box[b];
}

void shift_rows(std::array<std::uint8_t, 16>& s) {
  // Column-major state: byte (row r, col c) at index 4c + r.
  std::array<std::uint8_t, 16> t = s;
  for (int r = 1; r < 4; ++r) {
    for (int c = 0; c < 4; ++c) {
      s[static_cast<std::size_t>(4 * c + r)] =
          t[static_cast<std::size_t>(4 * ((c + r) % 4) + r)];
    }
  }
}

void mix_columns(std::array<std::uint8_t, 16>& s) {
  for (int c = 0; c < 4; ++c) {
    const std::uint8_t a0 = s[static_cast<std::size_t>(4 * c)];
    const std::uint8_t a1 = s[static_cast<std::size_t>(4 * c + 1)];
    const std::uint8_t a2 = s[static_cast<std::size_t>(4 * c + 2)];
    const std::uint8_t a3 = s[static_cast<std::size_t>(4 * c + 3)];
    s[static_cast<std::size_t>(4 * c)] =
        gf_mul(a0, 2) ^ gf_mul(a1, 3) ^ a2 ^ a3;
    s[static_cast<std::size_t>(4 * c + 1)] =
        a0 ^ gf_mul(a1, 2) ^ gf_mul(a2, 3) ^ a3;
    s[static_cast<std::size_t>(4 * c + 2)] =
        a0 ^ a1 ^ gf_mul(a2, 2) ^ gf_mul(a3, 3);
    s[static_cast<std::size_t>(4 * c + 3)] =
        gf_mul(a0, 3) ^ a1 ^ a2 ^ gf_mul(a3, 2);
  }
}

}  // namespace

const std::array<std::uint8_t, 256>& Aes128::sbox() {
  static const std::array<std::uint8_t, 256> box = build_sbox();
  return box;
}

Aes128::Aes128(BytesView key) {
  if (key.size() != kKeySize) throw Error("aes: bad key size");
  // Key expansion (FIPS 197 sec. 5.2), word oriented.
  std::array<std::array<std::uint8_t, 4>, 44> w;
  for (int i = 0; i < 4; ++i)
    for (int j = 0; j < 4; ++j)
      w[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
          key[static_cast<std::size_t>(4 * i + j)];

  std::uint8_t rcon = 1;
  for (int i = 4; i < 44; ++i) {
    std::array<std::uint8_t, 4> temp = w[static_cast<std::size_t>(i - 1)];
    if (i % 4 == 0) {
      // RotWord + SubWord + Rcon.
      const std::uint8_t t0 = temp[0];
      temp[0] = sbox()[temp[1]];
      temp[1] = sbox()[temp[2]];
      temp[2] = sbox()[temp[3]];
      temp[3] = sbox()[t0];
      temp[0] ^= rcon;
      rcon = gf_mul(rcon, 2);
    }
    for (int j = 0; j < 4; ++j)
      w[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
          w[static_cast<std::size_t>(i - 4)][static_cast<std::size_t>(j)] ^
          temp[static_cast<std::size_t>(j)];
  }
  for (int round = 0; round < 11; ++round)
    for (int i = 0; i < 4; ++i)
      for (int j = 0; j < 4; ++j)
        round_keys_[static_cast<std::size_t>(round)]
                   [static_cast<std::size_t>(4 * i + j)] =
            w[static_cast<std::size_t>(4 * round + i)]
             [static_cast<std::size_t>(j)];
}

void Aes128::encrypt_block(const std::uint8_t in[kBlockSize],
                           std::uint8_t out[kBlockSize]) const {
  std::array<std::uint8_t, 16> state;
  for (int i = 0; i < 16; ++i)
    state[static_cast<std::size_t>(i)] = in[i] ^ round_keys_[0][static_cast<std::size_t>(i)];
  for (int round = 1; round < 10; ++round) {
    sub_bytes(state);
    shift_rows(state);
    mix_columns(state);
    for (int i = 0; i < 16; ++i)
      state[static_cast<std::size_t>(i)] ^=
          round_keys_[static_cast<std::size_t>(round)][static_cast<std::size_t>(i)];
  }
  sub_bytes(state);
  shift_rows(state);
  for (int i = 0; i < 16; ++i)
    out[i] = state[static_cast<std::size_t>(i)] ^
             round_keys_[10][static_cast<std::size_t>(i)];
}

}  // namespace peace::crypto
