// ChaCha20-Poly1305 AEAD (RFC 8439). This is PEACE's E_K(.): the symmetric
// authenticated encryption used once a session key is agreed.
#pragma once

#include <optional>

#include "common/bytes.hpp"

namespace peace::crypto {

constexpr std::size_t kAeadKeySize = 32;
constexpr std::size_t kAeadNonceSize = 12;
constexpr std::size_t kAeadTagSize = 16;

/// Returns ciphertext || 16-byte tag.
Bytes aead_seal(BytesView key, BytesView nonce, BytesView aad,
                BytesView plaintext);

/// Returns the plaintext, or nullopt when the tag (or sizes) do not verify.
std::optional<Bytes> aead_open(BytesView key, BytesView nonce, BytesView aad,
                               BytesView ciphertext_and_tag);

}  // namespace peace::crypto
