// FIPS 180-4 SHA-256. All PEACE hash functions (H, H0, MAC, KDF, puzzle)
// are built from this single primitive.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.hpp"

namespace peace::crypto {

class Sha256 {
 public:
  static constexpr std::size_t kDigestSize = 32;
  static constexpr std::size_t kBlockSize = 64;

  Sha256();

  void update(BytesView data);
  /// Finalizes and returns the digest; the object must not be reused after.
  std::array<std::uint8_t, kDigestSize> finalize();

  /// One-shot convenience.
  static Bytes hash(BytesView data);

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, kBlockSize> buffer_;
  std::size_t buffered_ = 0;
  std::uint64_t total_bytes_ = 0;
};

/// SHA-256 over the concatenation of several byte views.
template <typename... Views>
Bytes sha256_concat(const Views&... views) {
  Sha256 h;
  (h.update(BytesView(views)), ...);
  auto d = h.finalize();
  return Bytes(d.begin(), d.end());
}

}  // namespace peace::crypto
