// Poly1305 one-time authenticator (RFC 8439), 26-bit limb implementation.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.hpp"

namespace peace::crypto {

class Poly1305 {
 public:
  static constexpr std::size_t kKeySize = 32;
  static constexpr std::size_t kTagSize = 16;

  /// `key` is the 32-byte one-time key (r || s); r is clamped internally.
  explicit Poly1305(BytesView key);

  void update(BytesView data);
  std::array<std::uint8_t, kTagSize> finalize();

  static Bytes mac(BytesView key, BytesView message);

 private:
  void process_block(const std::uint8_t* block, std::uint8_t hibit);

  std::uint32_t r_[5];
  std::uint32_t h_[5] = {0, 0, 0, 0, 0};
  std::uint8_t s_[16];
  std::array<std::uint8_t, 16> buffer_;
  std::size_t buffered_ = 0;
};

}  // namespace peace::crypto
