// The security-event stream (docs/OBSERVABILITY.md §4): a structured,
// bounded channel for the discrete security-relevant moments of a run —
// auth rejections, attributed batch forgeries, replay hits, revocation
// hits, resyncs, rekeys, handshake timeouts, shard inbox shedding — each
// carrying sim-time, the shard it happened in, an origin id (router/user),
// and one kind-specific detail word.
//
// Like every obs surface, the stream is strictly an observer: emitting an
// event draws no DRBG randomness, touches no protocol state, and never
// influences a verdict or a wire byte. Two layers, mirroring trace.hpp:
//
//  * The per-kind sec.<kind> registry counters are ALWAYS on (one relaxed
//    atomic add per event, the same always-compiled substrate as the
//    curve.* op counters). Every emission happens in a sequential protocol
//    pass, so the per-kind counts are identical between pooled and
//    sequential verification — the event-count half of the
//    telemetry-neutrality invariant (ObsTest.
//    PooledAndSequentialSecEventCountsMatch).
//  * The event *records* ride a bounded lock-free (SPSC) ring per emitting
//    thread, only when obs::enabled(). drain_sec_events() consumes every
//    ring and forwards each record to the Tracer as a cat="sec" (or
//    "health") instant on the sim-time track, which streams through the
//    JSONL sink like any other event. Ring overflow sheds the NEWEST event
//    and counts it (sec.events_shed) — memory stays bounded under any
//    sustained burst. Under PEACE_OBS_DISABLED the ring push folds away
//    entirely (enabled() is constexpr false); the counters remain.
#pragma once

#include <cstdint>
#include <vector>

namespace peace::obs {

/// Fixed vocabulary of security-event kinds. Kinds are DISJOINT by primary
/// cause (a revoked credential emits kRevocationHit, not also kAuthReject),
/// so per-kind counts partition the rejection stream cleanly.
enum class SecEventKind : std::uint8_t {
  kAuthReject = 0,             // M.2 rejected: detail 1=unknown_beacon,
                               // 2=stale, 3=puzzle, 4=bad_signature
  kBatchForgeryAttributed,     // bisection pinned a bad signature in a batch
  kReplayDetected,             // replay-cache hit (detail 1=precheck,
                               // 2=in-batch apply)
  kRevocationHit,              // valid signature from a revoked credential
                               // (detail = signature epoch)
  kRlResync,                   // chain gap -> full-list resync request
                               // (detail = list kind)
  kSessionRekey,               // uplink session retired for rekey
  kHandshakeTimeout,           // retry budget exhausted (access or peer)
  kInboxShed,                  // shard inbox cap dropped a cross-shard msg
  kHealthAlert,                // HealthMonitor rule fired (detail = the
                               // underlying SecEventKind)
  kCount,                      // sentinel — not a kind
};

inline constexpr std::size_t kSecEventKindCount =
    static_cast<std::size_t>(SecEventKind::kCount);

/// Stable snake_case name ("auth_reject", ...) — the JSONL record name and
/// the suffix of the sec.<kind> counter. Static storage; never freed.
const char* sec_event_name(SecEventKind kind);

/// One recorded security event. Fixed-size payload by design: the stream
/// must stay bounded-memory however hostile the run.
struct SecEvent {
  SecEventKind kind = SecEventKind::kAuthReject;
  std::uint32_t shard = 0;    // ambient shard id (0 outside a metro run)
  std::uint64_t sim_ms = 0;   // simulator time of the event
  std::uint64_t origin = 0;   // router/user id (kHealthAlert: alerted shard)
  std::uint64_t detail = 0;   // kind-specific (see SecEventKind comments)
};

/// Per-emitting-thread ring capacity (power of two). A full ring sheds the
/// newest event into sec_events_shed() instead of growing.
inline constexpr std::size_t kSecRingCapacity = 4096;

// --- ambient shard attribution --------------------------------------------
// The metro driver tags the shard whose event loop is running; emissions
// from protocol code pick it up without the protocol layer knowing about
// shards. Thread-local, observer-only, 0 outside a metro run.
void set_current_shard(std::uint32_t shard);
std::uint32_t current_shard();

// --- emission -------------------------------------------------------------

/// Emits one event: always bumps the per-kind sec.<kind> counter; when
/// obs::enabled(), also pushes the record onto this thread's ring for the
/// next drain. The shard is taken from the ambient thread-local.
void sec_emit(SecEventKind kind, std::uint64_t sim_ms, std::uint64_t origin,
              std::uint64_t detail = 0);

/// Emission with an explicit shard (used where the destination shard is
/// known but is not the ambient one, e.g. inbox shedding at a barrier).
void sec_emit_for_shard(SecEventKind kind, std::uint32_t shard,
                        std::uint64_t sim_ms, std::uint64_t origin,
                        std::uint64_t detail = 0);

/// Value of the always-on per-kind counter.
std::uint64_t sec_event_count(SecEventKind kind);

/// Events shed at full rings since process start (always-on counter).
std::uint64_t sec_events_shed();

// --- drain ----------------------------------------------------------------

/// Consumes every thread's ring: each drained record is forwarded to the
/// Tracer as an instant on the sim-time track (cat "sec"; kHealthAlert uses
/// cat "health") carrying {shard, origin, detail} args, and appended to
/// `out` when non-null (the HealthMonitor ingestion path). Records are
/// merged across rings in sim-time order (stable within a ring). Returns
/// the number of events drained. Called by the metro driver at every tick
/// barrier and by the publish_metrics paths before export.
std::size_t drain_sec_events(std::vector<SecEvent>* out = nullptr);

}  // namespace peace::obs
