// The metrics half of the observability layer (docs/OBSERVABILITY.md): a
// process-wide registry of named monotonic counters, gauges, and
// fixed-bucket latency histograms.
//
// Design contract:
//
//  * Hot paths are lock-free. A metric handle is looked up once (the
//    registry mutex covers registration only) and cached — typically in a
//    function-local static — after which every update is a single relaxed
//    atomic op. Handles are stable for the registry's lifetime: the backing
//    std::map never moves nodes and reset() zeroes values in place.
//
//  * Counters are the substrate of the crypto op-count API
//    (curve::pairing_op_count, curve::g2_prepared_count) and of the
//    correctness assertions tests build on them, so they are compiled
//    unconditionally — PEACE_OBS=OFF removes span tracing and timing (see
//    trace.hpp), not the relaxed-atomic counter adds that predate this
//    layer as bare globals.
//
//  * Deterministic counters stay deterministic: an atomic add per performed
//    operation gives the same total whatever thread interleaving performed
//    the operations, which is what keeps pooled and sequential runs
//    metric-identical for every count-of-work metric.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>

namespace peace::obs {

/// Monotonic event count. set() exists for the absorb-at-export path (stats
/// structs mirrored into the registry; see docs/OBSERVABILITY.md §2) and
/// makes that path idempotent — hot paths only ever add().
class Counter {
 public:
  void add(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  void set(std::uint64_t n) { v_.store(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// A value that can go up and down (queue depths, cache sizes).
class Gauge {
 public:
  void set(std::int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Fixed-bucket latency histogram over microseconds. Buckets are powers of
/// two: bucket i counts samples in (2^(i-1), 2^i] µs (bucket 0 covers
/// [0, 1] µs), 32 buckets reach ~36 minutes, the last bucket absorbs
/// overflow. record() is two relaxed atomic adds — no allocation, no lock —
/// so workers record concurrently; quantiles are derived at export time by
/// linear interpolation inside the covering bucket (p50/p95/p99 resolution
/// is the bucket width, which a power-of-two ladder keeps at ~2x — plenty
/// for "did the handshake path regress" questions).
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 32;

  void record(std::uint64_t micros) {
    buckets_[bucket_for(micros)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(micros, std::memory_order_relaxed);
  }

  std::uint64_t count() const;
  std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  std::uint64_t bucket_count(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  /// Upper bound (µs) of bucket i.
  static std::uint64_t bucket_bound(std::size_t i) {
    return i + 1 >= kBuckets ? ~std::uint64_t{0} : (std::uint64_t{1} << i);
  }
  /// q in [0, 1]; 0 on an empty histogram.
  double quantile(double q) const;
  void reset();

 private:
  static std::size_t bucket_for(std::uint64_t micros) {
    std::size_t i = 0;
    while (i + 1 < kBuckets && bucket_bound(i) < micros) ++i;
    return i;
  }

  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> sum_{0};
};

/// Name -> metric registry. One process-global instance serves the whole
/// stack; tests may build private instances. Metric names are stable
/// dot-separated identifiers catalogued in docs/OBSERVABILITY.md — they are
/// the machine-readable contract of the metrics JSON export.
class Registry {
 public:
  static Registry& global();

  /// Finds or creates. The returned reference stays valid (and keeps its
  /// identity across reset()) for the registry's lifetime.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// Zeroes every registered metric in place — the per-scope reset tests
  /// and benches use to measure deltas without capturing before-values.
  void reset();

  /// The metrics export: {"schema": "peace.metrics.v1", "counters": {...},
  /// "gauges": {...}, "histograms": {name: {count, sum_us, p50_us, p90_us,
  /// p95_us, p99_us, buckets: [{le_us, count}, ...]}}}. Names sort
  /// lexicographically; empty histograms emit no buckets array.
  std::string to_json() const;

 private:
  mutable std::mutex mutex_;  // registration and export only — never updates
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> histograms_;
};

}  // namespace peace::obs
