// Sliding-window aggregation over the security-event stream
// (docs/OBSERVABILITY.md §4.2): per-(shard, event-kind) rings of per-tick
// buckets giving a recent-window count/rate plus a per-bucket EWMA of the
// history BEFORE the window — the baseline the HealthMonitor's deviation
// rules compare spikes against.
//
// Buckets are addressed by ABSOLUTE index (sim_ms / bucket_ms) and stored
// in a fixed ring of `buckets` slots; a slot holding a stale index is
// overwritten on the next write and ignored by reads. Because every slot
// carries its absolute index, merging two WindowStats is a bucket-wise sum
// of matching indices — commutative and associative, so merge order cannot
// change a count (WindowStatsTest.MergeOrderIndependence), exactly like
// the PR 7 stats merges. The EWMA is a local derivation (folded on
// roll_to) and is not merged.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <map>
#include <vector>

#include "obs/sec_event.hpp"

namespace peace::obs {

struct WindowOptions {
  /// Bucket width. The window covers `buckets` consecutive buckets.
  std::uint64_t bucket_ms = 5'000;
  std::size_t buckets = 12;  // 12 × 5 s = one minute of window
  /// Per-closed-bucket EWMA fold weight: ewma = α·count + (1−α)·ewma.
  double ewma_alpha = 0.3;
};

class WindowStats {
 public:
  explicit WindowStats(WindowOptions options = {}) : options_(options) {
    if (options_.buckets == 0) options_.buckets = 1;
    if (options_.bucket_ms == 0) options_.bucket_ms = 1;
  }

  const WindowOptions& options() const { return options_; }
  std::uint64_t window_ms() const {
    return options_.bucket_ms * options_.buckets;
  }

  /// Adds `n` events at `sim_ms` for (shard, kind).
  void add(std::uint32_t shard, SecEventKind kind, std::uint64_t sim_ms,
           std::uint64_t n = 1) {
    const std::uint64_t idx = sim_ms / options_.bucket_ms;
    last_idx_ = std::max(last_idx_, idx);
    Bucket& slot = ring_for(shard, kind).slot(idx, options_.buckets);
    if (slot.idx != idx) {
      slot.idx = idx;
      slot.count = 0;
    }
    slot.count += n;
  }

  /// Advances every EWMA to the bucket containing `sim_ms`: each CLOSED
  /// bucket since the last roll folds in (zero-count gaps included), so the
  /// EWMA always lags the current bucket — a spike is compared against the
  /// baseline that existed before it.
  void roll_to(std::uint64_t sim_ms) {
    const std::uint64_t cur = sim_ms / options_.bucket_ms;
    last_idx_ = std::max(last_idx_, cur);
    for (auto& [shard, kinds] : shards_)
      for (KindRing& ring : kinds) fold(ring, cur);
  }

  /// Events for (shard, kind) inside the trailing window (the `buckets`
  /// buckets ending at the most recent bucket seen by add/roll_to).
  std::uint64_t window_count(std::uint32_t shard, SecEventKind kind) const {
    const KindRing* ring = find_ring(shard, kind);
    if (ring == nullptr) return 0;
    const std::uint64_t floor =
        last_idx_ + 1 >= options_.buckets ? last_idx_ + 1 - options_.buckets
                                          : 0;
    std::uint64_t total = 0;
    for (const Bucket& b : ring->ring)
      if (b.count > 0 && b.idx >= floor && b.idx <= last_idx_)
        total += b.count;
    return total;
  }

  /// window_count expressed as events per second.
  double rate_per_s(std::uint32_t shard, SecEventKind kind) const {
    return static_cast<double>(window_count(shard, kind)) /
           (static_cast<double>(window_ms()) / 1000.0);
  }

  /// Per-bucket EWMA baseline (as of the last roll_to; excludes the
  /// current, still-open bucket).
  double ewma(std::uint32_t shard, SecEventKind kind) const {
    const KindRing* ring = find_ring(shard, kind);
    return ring == nullptr ? 0.0 : ring->ewma;
  }

  /// Shards that have recorded at least one event, in id order.
  std::vector<std::uint32_t> shards() const {
    std::vector<std::uint32_t> out;
    out.reserve(shards_.size());
    for (const auto& [shard, kinds] : shards_) out.push_back(shard);
    return out;
  }

  /// Bucket-wise sum of `other` into this (matching absolute indices; a
  /// newer index replaces a stale slot). Commutative over counts, so any
  /// merge order yields the same window_count. Requires equal options.
  void merge(const WindowStats& other) {
    for (const auto& [shard, kinds] : other.shards_) {
      for (std::size_t k = 0; k < kSecEventKindCount; ++k) {
        for (const Bucket& b : kinds[k].ring) {
          if (b.count == 0) continue;
          Bucket& slot = ring_for(shard, static_cast<SecEventKind>(k))
                             .slot(b.idx, options_.buckets);
          if (slot.idx == b.idx) {
            slot.count += b.count;
          } else if (slot.idx == kNoBucket || slot.idx < b.idx) {
            slot = b;
          }
        }
      }
    }
    last_idx_ = std::max(last_idx_, other.last_idx_);
  }

 private:
  struct Bucket {
    std::uint64_t idx = ~std::uint64_t{0};
    std::uint64_t count = 0;
  };
  static constexpr std::uint64_t kNoBucket = ~std::uint64_t{0};

  struct KindRing {
    std::vector<Bucket> ring;
    double ewma = 0.0;
    std::uint64_t folded_to = 0;  // buckets with idx < folded_to are folded

    Bucket& slot(std::uint64_t idx, std::size_t buckets) {
      if (ring.empty()) ring.resize(buckets);
      return ring[idx % buckets];
    }
  };

  KindRing& ring_for(std::uint32_t shard, SecEventKind kind) {
    return shards_[shard][static_cast<std::size_t>(kind)];
  }

  const KindRing* find_ring(std::uint32_t shard, SecEventKind kind) const {
    const auto it = shards_.find(shard);
    if (it == shards_.end()) return nullptr;
    return &it->second[static_cast<std::size_t>(kind)];
  }

  void fold(KindRing& ring, std::uint64_t cur) const {
    if (cur <= ring.folded_to) return;
    std::uint64_t gap = cur - ring.folded_to;
    // A long idle gap folds as zeros: decay the excess beyond the ring's
    // reach in one closed form, then walk the last `buckets` explicitly.
    if (gap > options_.buckets) {
      ring.ewma *= std::pow(1.0 - options_.ewma_alpha,
                            static_cast<double>(gap - options_.buckets));
      ring.folded_to = cur - options_.buckets;
      gap = options_.buckets;
    }
    for (std::uint64_t b = ring.folded_to; b < cur; ++b) {
      double count = 0.0;
      if (!ring.ring.empty()) {
        const Bucket& slot = ring.ring[b % options_.buckets];
        if (slot.idx == b) count = static_cast<double>(slot.count);
      }
      ring.ewma = options_.ewma_alpha * count +
                  (1.0 - options_.ewma_alpha) * ring.ewma;
    }
    ring.folded_to = cur;
  }

  WindowOptions options_;
  std::map<std::uint32_t, std::array<KindRing, kSecEventKindCount>> shards_;
  std::uint64_t last_idx_ = 0;
};

}  // namespace peace::obs
