// The tracing half of the observability layer (docs/OBSERVABILITY.md):
// wall-clock spans with per-span crypto-op attribution, simulator-time
// handshake spans, and instant events, exportable as Chrome trace_event
// JSON and as a JSONL event log.
//
// Telemetry is strictly an observer: it draws no DRBG randomness, touches
// no protocol state, and never influences accept/reject decisions or wire
// bytes (tests/obs_test.cpp and determinism_test assert this). Two layers
// of disablement:
//
//  * Runtime: obs::enable(false) (the default). Span construction is one
//    relaxed atomic load and a branch; hooks fall through to their bare
//    counter add.
//  * Compile time: -DPEACE_OBS=OFF defines PEACE_OBS_DISABLED, making
//    enabled() a constexpr false — Span bodies, tallies, and Tracer
//    recording fold away entirely. The op-count hooks keep their registry
//    counter adds (they are the crypto op-count API; see metrics.hpp).
//
// All name/category/key strings passed into this API must be string
// literals (or otherwise outlive the Tracer) — events store the pointers.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/stream_sink.hpp"

namespace peace::obs {

// --- runtime toggle -------------------------------------------------------

#ifdef PEACE_OBS_DISABLED
constexpr bool enabled() { return false; }
inline void enable(bool) {}
#else
bool enabled();
void enable(bool on);
#endif

/// Microseconds on the steady clock since the process's tracing epoch.
std::uint64_t now_us();

// --- crypto-op hooks (called from curve:: / groupsig::) -------------------
//
// Each hook bumps its process-global registry counter (always — this is
// what curve::pairing_op_count() and curve::g2_prepared_count() read) and,
// when tracing is enabled, a thread-local tally that open spans diff to
// attribute crypto work to themselves.

void note_pairing(std::uint64_t n = 1);
void note_miller_loop(std::uint64_t n = 1);
void note_final_exp(std::uint64_t n = 1);
void note_g2_prepared(std::uint64_t n = 1);
void note_msm(std::uint64_t terms);
void note_gt_pow(std::uint64_t n = 1);
void note_fp12_inverse(std::uint64_t n = 1);
/// One Jacobian->affine normalization inversion (a to_affine call or one
/// batch_normalize pass — however many points the batch covers).
void note_field_inversion(std::uint64_t n = 1);
void note_glv_decomposition(std::uint64_t n = 1);
void note_gls_decomposition(std::uint64_t n = 1);

/// Fast reads of the always-on op counters (what the curve:: op-count API
/// delegates to after the bare-global migration).
std::uint64_t pairing_count();
std::uint64_t g2_prepared_build_count();
std::uint64_t fp12_inverse_op_count();

/// Per-thread crypto-op tally. Spans snapshot it at open and diff at close;
/// crypto work and the span observing it share a thread by construction
/// (VerifyPool jobs run their own spans on the worker).
struct CryptoTally {
  std::uint64_t pairings = 0;
  std::uint64_t miller_loops = 0;
  std::uint64_t final_exps = 0;
  std::uint64_t g2_prepared = 0;
  std::uint64_t msm_calls = 0;
  std::uint64_t msm_terms = 0;
  std::uint64_t gt_pows = 0;
  std::uint64_t fp12_inverses = 0;
  std::uint64_t field_inversions = 0;
  std::uint64_t glv_decompositions = 0;
  std::uint64_t gls_decompositions = 0;
};

#ifndef PEACE_OBS_DISABLED
const CryptoTally& thread_tally();
#endif

// --- events and spans -----------------------------------------------------

struct TraceArg {
  const char* key = nullptr;
  std::uint64_t value = 0;
};

/// One recorded event, already flattened to Chrome trace_event semantics.
struct TraceEvent {
  static constexpr std::size_t kMaxArgs = 12;

  const char* name = nullptr;
  const char* cat = nullptr;
  char ph = 'X';            // 'X' span, 'i' instant, 'b'/'e' async pair
  std::uint64_t ts_us = 0;  // wall clock (pid 1) or sim time (pid 2)
  std::uint64_t dur_us = 0; // 'X' only
  std::uint32_t pid = 1;    // 1 = wall-clock track, 2 = simulator-time track
  std::uint32_t tid = 0;
  std::uint64_t id = 0;     // async correlation ('b'/'e')
  std::size_t nargs = 0;
  TraceArg args[kMaxArgs];

  void add_arg(const char* key, std::uint64_t value) {
    if (nargs < kMaxArgs) args[nargs++] = {key, value};
  }
};

/// Appends one event as a JSON object (no trailing newline) — the shared
/// serializer behind chrome_json(), jsonl(), and the streaming sink.
void append_event_json(std::string& out, const TraceEvent& e);

/// Collects events from every thread; export at end of run. Recording is a
/// short mutex-guarded vector push per completed span — spans close at the
/// granularity of pairing work (milliseconds), so contention is noise.
class Tracer {
 public:
  static Tracer& global();

  static constexpr std::uint32_t kWallPid = 1;
  static constexpr std::uint32_t kSimPid = 2;

  void record(TraceEvent event);  // fills tid for the calling thread
  /// Instant event on the wall-clock track.
  void instant(const char* name, const char* cat);
  /// Instant event on the simulator-time track.
  void instant_at(const char* name, const char* cat, std::uint64_t sim_us,
                  std::initializer_list<TraceArg> args = {});
  /// Async span on the simulator-time track, correlated by (cat, id).
  void async_begin(const char* name, const char* cat, std::uint64_t id,
                   std::uint64_t sim_us,
                   std::initializer_list<TraceArg> args = {});
  void async_end(const char* name, const char* cat, std::uint64_t id,
                 std::uint64_t sim_us,
                 std::initializer_list<TraceArg> args = {});

  std::size_t event_count() const;
  /// Snapshot of the recorded events (tests).
  std::vector<TraceEvent> events() const;
  void clear();

  /// Chrome trace_event JSON ("traceEvents" array object format; load via
  /// chrome://tracing or https://ui.perfetto.dev).
  std::string chrome_json() const;
  /// One JSON object per line, same fields — the grep/jq-friendly log.
  std::string jsonl() const;
  bool write_chrome(const std::string& path) const;
  bool write_jsonl(const std::string& path) const;

  // --- streaming (bounded memory; docs/OBSERVABILITY.md §3.4) -------------
  /// Streams every SUBSEQUENT event to `path` as JSONL instead of
  /// retaining it: event_count()/events()/the batch exporters see only
  /// events recorded outside the streaming window, so trace memory stays
  /// bounded however long the run. Events already retained are untouched.
  /// Returns false if the file cannot be opened.
  bool stream_to(const std::string& path, StreamSinkOptions options = {});
  /// Flushes and closes the stream; returns false if any write failed.
  bool stop_streaming();
  bool streaming() const;
  /// Events written through the active (or last) stream.
  std::uint64_t streamed_event_count() const;

 private:
  std::uint32_t tid_for_current_thread();

  mutable std::mutex mutex_;
  std::vector<TraceEvent> events_;
  std::unique_ptr<JsonlStreamSink> sink_;
  std::uint64_t streamed_events_ = 0;
  std::uint32_t next_tid_ = 1;
};

#ifdef PEACE_OBS_DISABLED

/// Compiled-out span: every member folds to nothing.
class Span {
 public:
  explicit Span(const char*, const char* = "crypto", Histogram* = nullptr) {}
  bool active() const { return false; }
  void arg(const char*, std::uint64_t) {}
  std::uint64_t close() { return 0; }
};

#else

/// RAII wall-clock span. When tracing is enabled at construction it records
/// on destruction (or close()) a 'X' event carrying its duration, the
/// crypto-op delta observed on this thread while it was open (pairings,
/// Miller loops, final exps, G2Prepared builds, MSM calls/terms, GT pows —
/// only nonzero deltas are attached), and any explicit args. An optional
/// histogram receives the duration in µs, sharing the span's clock reads.
class Span {
 public:
  explicit Span(const char* name, const char* cat = "crypto",
                Histogram* hist = nullptr);
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span() { close(); }

  bool active() const { return active_; }
  void arg(const char* key, std::uint64_t value) {
    if (active_) event_.add_arg(key, value);
  }
  /// Records now (idempotent); returns the duration in µs (0 if inactive).
  std::uint64_t close();

 private:
  bool active_ = false;
  std::uint64_t start_us_ = 0;
  CryptoTally start_tally_;
  Histogram* hist_ = nullptr;
  TraceEvent event_;
};

#endif  // PEACE_OBS_DISABLED

}  // namespace peace::obs
