#include "obs/metrics.hpp"

#include <cstdio>

namespace peace::obs {

std::uint64_t Histogram::count() const {
  std::uint64_t n = 0;
  for (const auto& b : buckets_) n += b.load(std::memory_order_relaxed);
  return n;
}

double Histogram::quantile(double q) const {
  std::array<std::uint64_t, kBuckets> counts;
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
    total += counts[i];
  }
  if (total == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const double target = q * static_cast<double>(total);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    if (counts[i] == 0) continue;
    const std::uint64_t before = cumulative;
    cumulative += counts[i];
    if (static_cast<double>(cumulative) < target) continue;
    // Linear interpolation across the covering bucket [lower, upper].
    const double lower = i == 0 ? 0.0 : static_cast<double>(bucket_bound(i - 1));
    const double upper = i + 1 >= kBuckets
                             ? lower * 2.0  // open-ended overflow bucket
                             : static_cast<double>(bucket_bound(i));
    const double within =
        counts[i] == 0
            ? 0.0
            : (target - static_cast<double>(before)) /
                  static_cast<double>(counts[i]);
    return lower + (upper - lower) * within;
  }
  return static_cast<double>(bucket_bound(kBuckets - 2));
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

Registry& Registry::global() {
  static Registry registry;
  return registry;
}

Counter& Registry::counter(std::string_view name) {
  std::lock_guard lock(mutex_);
  const auto it = counters_.find(name);
  if (it != counters_.end()) return it->second;
  return counters_.emplace(std::piecewise_construct,
                           std::forward_as_tuple(name),
                           std::forward_as_tuple())
      .first->second;
}

Gauge& Registry::gauge(std::string_view name) {
  std::lock_guard lock(mutex_);
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) return it->second;
  return gauges_.emplace(std::piecewise_construct, std::forward_as_tuple(name),
                         std::forward_as_tuple())
      .first->second;
}

Histogram& Registry::histogram(std::string_view name) {
  std::lock_guard lock(mutex_);
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return it->second;
  return histograms_.emplace(std::piecewise_construct,
                             std::forward_as_tuple(name),
                             std::forward_as_tuple())
      .first->second;
}

void Registry::reset() {
  std::lock_guard lock(mutex_);
  for (auto& [name, c] : counters_) c.reset();
  for (auto& [name, g] : gauges_) g.reset();
  for (auto& [name, h] : histograms_) h.reset();
}

namespace {

void append(std::string& out, const char* fmt, auto... args) {
  char buf[128];
  const int n = std::snprintf(buf, sizeof(buf), fmt, args...);
  if (n < static_cast<int>(sizeof(buf))) {
    out += buf;
    return;
  }
  // Rare long line (histogram headers): retry with the exact size.
  std::string big(static_cast<std::size_t>(n) + 1, '\0');
  std::snprintf(big.data(), big.size(), fmt, args...);
  big.resize(static_cast<std::size_t>(n));
  out += big;
}

}  // namespace

std::string Registry::to_json() const {
  std::lock_guard lock(mutex_);
  std::string out = "{\n  \"schema\": \"peace.metrics.v1\",\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    append(out, "%s\n    \"%s\": %llu", first ? "" : ",", name.c_str(),
           static_cast<unsigned long long>(c.value()));
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    append(out, "%s\n    \"%s\": %lld", first ? "" : ",", name.c_str(),
           static_cast<long long>(g.value()));
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    const std::uint64_t count = h.count();
    append(out,
           "%s\n    \"%s\": {\"count\": %llu, \"sum_us\": %llu, "
           "\"p50_us\": %.1f, \"p90_us\": %.1f, \"p95_us\": %.1f, "
           "\"p99_us\": %.1f, \"buckets\": [",
           first ? "" : ",", name.c_str(),
           static_cast<unsigned long long>(count),
           static_cast<unsigned long long>(h.sum()), h.quantile(0.50),
           h.quantile(0.90), h.quantile(0.95), h.quantile(0.99));
    bool first_bucket = true;
    for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
      const std::uint64_t n = h.bucket_count(i);
      if (n == 0) continue;  // sparse: empty buckets carry no information
      if (i + 1 >= Histogram::kBuckets)
        append(out, "%s{\"le_us\": \"inf\", \"count\": %llu}",
               first_bucket ? "" : ", ", static_cast<unsigned long long>(n));
      else
        append(out, "%s{\"le_us\": %llu, \"count\": %llu}",
               first_bucket ? "" : ", ",
               static_cast<unsigned long long>(Histogram::bucket_bound(i)),
               static_cast<unsigned long long>(n));
      first_bucket = false;
    }
    out += "]}";
    first = false;
  }
  out += first ? "}\n}\n" : "\n  }\n}\n";
  return out;
}

}  // namespace peace::obs
