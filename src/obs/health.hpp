// Rule-based online anomaly detection over the security-event stream
// (docs/OBSERVABILITY.md §4.3). A HealthMonitor ingests drained SecEvents
// into per-(shard, kind) WindowStats and, on each evaluation tick, fires
// rules of two forms against every shard's trailing window:
//
//   * threshold  — window_count >= threshold (absolute burst);
//   * ewma       — window_count >= min_count AND window_count >
//                  ewma_factor × (per-bucket EWMA × buckets), i.e. the
//                  window runs ewma_factor× hotter than the pre-spike
//                  baseline.
//
// A firing rule emits a health_alert SecEvent naming the shard and the
// underlying kind (so alerts ride the same stream, JSONL sink, and
// health_report.py path as the raw events), appends to a capped in-memory
// alert log, and enters a per-(shard, kind) cooldown so a sustained storm
// yields one alert per cooldown window, not one per tick. Every evaluation
// also publishes the per-shard HealthSnapshot gauges (health.*) into the
// registry.
//
// The monitor is an observer like the rest of obs: it draws no randomness
// and touches no protocol state, so arming it cannot perturb wire bytes or
// stats (DeterminismTest.TelemetryIsNeutral runs with it armed). It sees
// events only when obs::enabled() — under PEACE_OBS_DISABLED the stream
// carries no records and the detectors stay silent (documented exemption).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/window.hpp"

namespace peace::obs {

/// One detector rule. threshold and ewma_factor are independent arms;
/// either at 0 disables that arm.
struct HealthRule {
  SecEventKind kind = SecEventKind::kAuthReject;
  const char* label = "";        // stable rule name for alerts/reports
  std::uint64_t threshold = 0;   // absolute window-count trigger (0 = off)
  double ewma_factor = 0;        // deviation trigger multiplier (0 = off)
  std::uint64_t min_count = 0;   // deviation arm floor (suppresses noise)
};

/// The shipped detector set: forgery-rate spikes, revocation storms,
/// handshake-failure bursts, replay storms, shed-rate saturation.
std::vector<HealthRule> default_health_rules();

struct HealthAlert {
  std::uint32_t shard = 0;
  SecEventKind kind = SecEventKind::kAuthReject;
  std::uint64_t sim_ms = 0;
  std::uint64_t window_count = 0;
  double ewma = 0;            // baseline at firing time (per bucket)
  const char* rule = "";      // "threshold" | "ewma"
  const char* label = "";     // HealthRule::label
};

struct HealthMonitorOptions {
  WindowOptions window;
  /// Evaluation spacing; tick() calls inside the spacing only ingest time.
  std::uint64_t eval_every_ms = 5'000;
  /// Per-(shard, kind) refractory period after an alert.
  std::uint64_t cooldown_ms = 60'000;
  /// In-memory alert log cap; overflow increments alerts_dropped().
  std::size_t alert_log_cap = 1024;
  /// Empty = default_health_rules().
  std::vector<HealthRule> rules;
};

/// Point-in-time per-shard view, also published as health.* gauges.
struct HealthSnapshot {
  std::uint32_t shard = 0;
  std::uint64_t alerts = 0;  // alerts fired for this shard so far
  std::array<std::uint64_t, kSecEventKindCount> window_counts{};
};

class HealthMonitor {
 public:
  explicit HealthMonitor(HealthMonitorOptions options = {});

  /// Feeds one drained event into the windows. health_alert events are
  /// skipped (the monitor never reacts to its own output).
  void ingest(const SecEvent& event);

  /// Rolls the windows to `sim_ms` and, at most once per eval_every_ms,
  /// evaluates every rule for every shard seen, emits health_alert events
  /// for firings, and publishes the health.* snapshot gauges.
  void tick(std::uint64_t sim_ms);

  std::uint64_t events_ingested() const { return events_ingested_; }
  std::uint64_t alerts_total() const { return alerts_total_; }
  std::uint64_t alerts_dropped() const { return alerts_dropped_; }
  /// The capped alert log, in firing order.
  const std::vector<HealthAlert>& alerts() const { return alerts_; }
  const WindowStats& windows() const { return windows_; }
  const std::vector<HealthRule>& rules() const { return rules_; }

  HealthSnapshot snapshot(std::uint32_t shard) const;

  /// Publishes health.alerts plus per-shard health.s<id>.* gauges for
  /// every ruled kind. Called by tick() on each evaluation; idempotent.
  void publish(Registry& registry) const;

  /// {"schema": "peace.health.v1", ...}: options, per-shard window counts
  /// and alert totals, and the alert log — the metro_city --health= output
  /// and tools/health_report.py input.
  std::string summary_json() const;

 private:
  void evaluate(std::uint64_t sim_ms);

  HealthMonitorOptions options_;
  std::vector<HealthRule> rules_;
  WindowStats windows_;
  std::vector<HealthAlert> alerts_;
  std::map<std::uint32_t, std::uint64_t> alerts_by_shard_;
  std::map<std::pair<std::uint32_t, std::uint8_t>, std::uint64_t>
      cooldown_until_;
  std::uint64_t events_ingested_ = 0;
  std::uint64_t alerts_total_ = 0;
  std::uint64_t alerts_dropped_ = 0;
  bool evaluated_once_ = false;
  std::uint64_t last_eval_ms_ = 0;
};

}  // namespace peace::obs
