#include "obs/sec_event.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <memory>
#include <mutex>

#include "obs/trace.hpp"

namespace peace::obs {

namespace {

constexpr std::array<const char*, kSecEventKindCount> kKindNames = {
    "auth_reject",      "batch_forgery_attributed",
    "replay_detected",  "revocation_hit",
    "rl_resync",        "session_rekey",
    "handshake_timeout", "inbox_shed",
    "health_alert",
};

/// The always-on per-kind counters plus the shed counter, resolved once
/// (handles stay valid across Registry::reset(), like trace.cpp's core()).
struct SecCounters {
  std::array<Counter*, kSecEventKindCount> per_kind{};
  Counter& shed = Registry::global().counter("sec.events_shed");

  SecCounters() {
    for (std::size_t i = 0; i < kSecEventKindCount; ++i) {
      std::string name = std::string("sec.") + kKindNames[i];
      per_kind[i] = &Registry::global().counter(name);
    }
  }
};

SecCounters& counters() {
  static SecCounters c;
  return c;
}

/// One emitting thread's bounded SPSC ring. The owning thread is the only
/// producer; drain_sec_events (any thread, serialized by the registry
/// mutex) is the only consumer. Rings are never freed — a thread that dies
/// leaves its (drained, empty) ring behind, which bounds total ring memory
/// at kSecRingCapacity × peak thread count.
struct SecRing {
  std::array<SecEvent, kSecRingCapacity> slots;
  std::atomic<std::uint64_t> head{0};  // next write (producer only)
  std::atomic<std::uint64_t> tail{0};  // next read (consumer only)
};

struct RingRegistry {
  std::mutex mutex;  // registration and drain; never the emit path
  std::vector<std::unique_ptr<SecRing>> rings;
};

RingRegistry& ring_registry() {
  static RingRegistry* reg = new RingRegistry;  // never destroyed: emitting
  return *reg;  // threads may outlive static teardown order
}

SecRing& thread_ring() {
  thread_local SecRing* ring = [] {
    auto owned = std::make_unique<SecRing>();
    SecRing* raw = owned.get();
    RingRegistry& reg = ring_registry();
    std::lock_guard lock(reg.mutex);
    reg.rings.push_back(std::move(owned));
    return raw;
  }();
  return *ring;
}

thread_local std::uint32_t t_current_shard = 0;

}  // namespace

const char* sec_event_name(SecEventKind kind) {
  const auto i = static_cast<std::size_t>(kind);
  return i < kSecEventKindCount ? kKindNames[i] : "unknown";
}

void set_current_shard(std::uint32_t shard) { t_current_shard = shard; }
std::uint32_t current_shard() { return t_current_shard; }

void sec_emit_for_shard(SecEventKind kind, std::uint32_t shard,
                        std::uint64_t sim_ms, std::uint64_t origin,
                        std::uint64_t detail) {
  // The deterministic half: one relaxed add per event performed, whatever
  // thread performs it — pooled and sequential runs agree per kind.
  counters().per_kind[static_cast<std::size_t>(kind)]->add(1);
  // The record half rides the runtime toggle (and folds away entirely
  // under PEACE_OBS_DISABLED, where enabled() is constexpr false).
  if (!enabled()) return;
  SecRing& ring = thread_ring();
  const std::uint64_t head = ring.head.load(std::memory_order_relaxed);
  const std::uint64_t tail = ring.tail.load(std::memory_order_acquire);
  if (head - tail >= kSecRingCapacity) {
    // Bounded memory beats completeness: shed the newest record (the
    // counters above still saw it) and account for the loss.
    counters().shed.add(1);
    return;
  }
  ring.slots[head % kSecRingCapacity] =
      SecEvent{kind, shard, sim_ms, origin, detail};
  ring.head.store(head + 1, std::memory_order_release);
}

void sec_emit(SecEventKind kind, std::uint64_t sim_ms, std::uint64_t origin,
              std::uint64_t detail) {
  sec_emit_for_shard(kind, t_current_shard, sim_ms, origin, detail);
}

std::uint64_t sec_event_count(SecEventKind kind) {
  return counters().per_kind[static_cast<std::size_t>(kind)]->value();
}

std::uint64_t sec_events_shed() { return counters().shed.value(); }

std::size_t drain_sec_events(std::vector<SecEvent>* out) {
  std::vector<SecEvent> drained;
  {
    RingRegistry& reg = ring_registry();
    std::lock_guard lock(reg.mutex);
    for (const auto& ring : reg.rings) {
      const std::uint64_t head = ring->head.load(std::memory_order_acquire);
      std::uint64_t tail = ring->tail.load(std::memory_order_relaxed);
      for (; tail != head; ++tail)
        drained.push_back(ring->slots[tail % kSecRingCapacity]);
      ring->tail.store(tail, std::memory_order_release);
    }
  }
  if (drained.empty()) return 0;
  // In practice all emitters share the driver thread and arrive ordered;
  // with pool-thread emitters a stable sim-time sort keeps the exported
  // stream monotonic (cosmetic only — counts are the invariant).
  std::stable_sort(drained.begin(), drained.end(),
                   [](const SecEvent& a, const SecEvent& b) {
                     return a.sim_ms < b.sim_ms;
                   });
  for (const SecEvent& e : drained) {
    const char* cat = e.kind == SecEventKind::kHealthAlert ? "health" : "sec";
    Tracer::global().instant_at(sec_event_name(e.kind), cat, e.sim_ms * 1000,
                                {{"shard", e.shard},
                                 {"origin", e.origin},
                                 {"detail", e.detail}});
  }
  if (out != nullptr)
    out->insert(out->end(), drained.begin(), drained.end());
  return drained.size();
}

}  // namespace peace::obs
