// Streaming JSONL trace sink (docs/OBSERVABILITY.md §3.4). The in-memory
// Tracer retains every event until export — fine for a demo day, fatal for
// a metro-scale day that emits millions of events. A JsonlStreamSink wired
// into the Tracer (Tracer::stream_to) writes each event through to disk as
// it is recorded and retains NOTHING in the tracer, bounding trace memory
// at one flush buffer regardless of run length.
//
// Semantics:
//
//  * Buffering/flush: lines accumulate in an in-memory buffer and are
//    written to the file whenever the buffer reaches `flush_bytes` (and on
//    rotation and close). Memory use is bounded by flush_bytes plus one
//    line; a crash can lose at most the unflushed tail.
//  * Rotation: with `rotate_bytes` > 0, when the current file would exceed
//    that size at a flush boundary it is closed and renamed to
//    "<path>.<n>" (n = 1, 2, ... in completion order) and a fresh file is
//    opened at <path>. Lines are never split across files, and <path> is
//    always the newest data. rotate_bytes = 0 (default) never rotates.
//  * Ownership/threading: not thread-safe on its own — the Tracer calls
//    write() under its record mutex; standalone users must serialize.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>

namespace peace::obs {

struct TraceEvent;

struct StreamSinkOptions {
  /// Flush the buffer to disk once it holds this many bytes.
  std::size_t flush_bytes = 64 * 1024;
  /// Rotate the file when it would exceed this size (0 = never rotate).
  std::uint64_t rotate_bytes = 0;
};

class JsonlStreamSink {
 public:
  JsonlStreamSink() = default;
  JsonlStreamSink(const JsonlStreamSink&) = delete;
  JsonlStreamSink& operator=(const JsonlStreamSink&) = delete;
  ~JsonlStreamSink() { close(); }

  /// Opens (truncates) `path`. Returns false on failure.
  bool open(const std::string& path, StreamSinkOptions options = {});
  bool is_open() const { return file_ != nullptr; }

  /// Serializes one event as a JSONL line into the buffer, flushing (and
  /// rotating) per the options above.
  void write(const TraceEvent& event);

  /// Flushes buffered lines to the file immediately.
  bool flush();
  /// Flush + fclose. Idempotent; returns false if any write failed.
  bool close();

  std::uint64_t events_written() const { return events_written_; }
  std::uint64_t bytes_written() const { return bytes_written_; }
  /// Completed rotations so far ("<path>.1" ... "<path>.<n>").
  std::uint64_t rotations() const { return rotations_; }

 private:
  void rotate();

  std::FILE* file_ = nullptr;
  std::string path_;
  StreamSinkOptions options_;
  std::string buffer_;
  std::uint64_t file_bytes_ = 0;  // flushed into the CURRENT file
  std::uint64_t bytes_written_ = 0;
  std::uint64_t events_written_ = 0;
  std::uint64_t rotations_ = 0;
  bool ok_ = true;
};

}  // namespace peace::obs
