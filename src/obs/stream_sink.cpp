#include "obs/stream_sink.hpp"

#include "obs/trace.hpp"

namespace peace::obs {

bool JsonlStreamSink::open(const std::string& path,
                           StreamSinkOptions options) {
  close();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  file_ = f;
  path_ = path;
  options_ = options;
  buffer_.clear();
  buffer_.reserve(options_.flush_bytes + 512);
  file_bytes_ = bytes_written_ = events_written_ = rotations_ = 0;
  ok_ = true;
  return true;
}

void JsonlStreamSink::write(const TraceEvent& event) {
  if (file_ == nullptr) return;
  append_event_json(buffer_, event);
  buffer_ += '\n';
  ++events_written_;
  if (buffer_.size() < options_.flush_bytes) return;
  // Rotation happens only at flush boundaries, so no line ever splits
  // across files.
  if (options_.rotate_bytes > 0 &&
      file_bytes_ + buffer_.size() > options_.rotate_bytes && file_bytes_ > 0)
    rotate();
  flush();
}

bool JsonlStreamSink::flush() {
  if (file_ == nullptr) return ok_;
  if (!buffer_.empty()) {
    const std::size_t n =
        std::fwrite(buffer_.data(), 1, buffer_.size(), file_);
    ok_ = ok_ && n == buffer_.size();
    file_bytes_ += n;
    bytes_written_ += n;
    buffer_.clear();
  }
  ok_ = ok_ && std::fflush(file_) == 0;
  return ok_;
}

void JsonlStreamSink::rotate() {
  flush();
  std::fclose(file_);
  file_ = nullptr;
  const std::string rotated =
      path_ + "." + std::to_string(rotations_ + 1);
  if (std::rename(path_.c_str(), rotated.c_str()) != 0) {
    // Rename failed (e.g. permissions): keep streaming by appending to the
    // existing file rather than truncating it.
    ok_ = false;
    file_ = std::fopen(path_.c_str(), "a");
    return;
  }
  ++rotations_;
  std::FILE* f = std::fopen(path_.c_str(), "w");
  if (f == nullptr) {
    ok_ = false;
    return;
  }
  file_ = f;
  file_bytes_ = 0;
}

bool JsonlStreamSink::close() {
  if (file_ == nullptr) return ok_;
  flush();
  ok_ = std::fclose(file_) == 0 && ok_;
  file_ = nullptr;
  return ok_;
}

}  // namespace peace::obs
