#include "obs/health.hpp"

#include <cstdio>

namespace peace::obs {

std::vector<HealthRule> default_health_rules() {
  // Thresholds are per trailing window (default: one minute). The ewma arm
  // catches slow-building anomalies the absolute arm would miss at small
  // populations; min_count keeps it quiet while the baseline is cold.
  return {
      // Forgery-rate spike: any attributed batch forgery is hostile, so
      // the absolute bar sits low; auth_reject needs room for benign noise
      // (stale timestamps near the replay window, beacon races).
      {SecEventKind::kBatchForgeryAttributed, "forgery_spike", 8, 4.0, 4},
      {SecEventKind::kAuthReject, "auth_reject_burst", 32, 6.0, 8},
      // Replay storm: a handful of replays is retransmission fallout; a
      // windowful is an attack (or a broken reliability layer).
      {SecEventKind::kReplayDetected, "replay_storm", 32, 6.0, 8},
      // Revocation storm: revoked credentials attempting access in bulk.
      {SecEventKind::kRevocationHit, "revocation_storm", 8, 4.0, 4},
      {SecEventKind::kRlResync, "rl_resync_storm", 16, 0, 0},
      // Handshake-failure burst: partitions, crashed routers, or loss far
      // above the engineered rate.
      {SecEventKind::kHandshakeTimeout, "handshake_failure_burst", 16, 4.0, 8},
      // Shed-rate saturation: the shard inbox cap is actively dropping
      // cross-shard traffic.
      {SecEventKind::kInboxShed, "shed_saturation", 16, 0, 0},
  };
}

HealthMonitor::HealthMonitor(HealthMonitorOptions options)
    : options_(std::move(options)),
      rules_(options_.rules.empty() ? default_health_rules() : options_.rules),
      windows_(options_.window) {}

void HealthMonitor::ingest(const SecEvent& event) {
  if (event.kind == SecEventKind::kHealthAlert) return;
  ++events_ingested_;
  windows_.add(event.shard, event.kind, event.sim_ms);
}

void HealthMonitor::tick(std::uint64_t sim_ms) {
  if (evaluated_once_ && sim_ms < last_eval_ms_ + options_.eval_every_ms)
    return;
  evaluated_once_ = true;
  last_eval_ms_ = sim_ms;
  evaluate(sim_ms);
  publish(Registry::global());
}

void HealthMonitor::evaluate(std::uint64_t sim_ms) {
  windows_.roll_to(sim_ms);
  for (const std::uint32_t shard : windows_.shards()) {
    for (const HealthRule& rule : rules_) {
      const std::uint64_t count = windows_.window_count(shard, rule.kind);
      if (count == 0) continue;
      const double baseline = windows_.ewma(shard, rule.kind);
      const char* fired = nullptr;
      if (rule.threshold > 0 && count >= rule.threshold) {
        fired = "threshold";
      } else if (rule.ewma_factor > 0 && count >= rule.min_count &&
                 static_cast<double>(count) >
                     rule.ewma_factor * baseline *
                         static_cast<double>(windows_.options().buckets)) {
        fired = "ewma";
      }
      if (fired == nullptr) continue;
      const auto key =
          std::make_pair(shard, static_cast<std::uint8_t>(rule.kind));
      const auto cd = cooldown_until_.find(key);
      if (cd != cooldown_until_.end() && sim_ms < cd->second) continue;
      cooldown_until_[key] = sim_ms + options_.cooldown_ms;
      ++alerts_total_;
      ++alerts_by_shard_[shard];
      if (alerts_.size() < options_.alert_log_cap)
        alerts_.push_back(HealthAlert{shard, rule.kind, sim_ms, count,
                                      baseline, fired, rule.label});
      else
        ++alerts_dropped_;
      // The alert rides the event stream itself: origin names the shard,
      // detail the underlying kind. Drained to the trace like any event.
      sec_emit_for_shard(SecEventKind::kHealthAlert, shard, sim_ms, shard,
                         static_cast<std::uint64_t>(rule.kind));
    }
  }
}

HealthSnapshot HealthMonitor::snapshot(std::uint32_t shard) const {
  HealthSnapshot snap;
  snap.shard = shard;
  const auto it = alerts_by_shard_.find(shard);
  snap.alerts = it == alerts_by_shard_.end() ? 0 : it->second;
  for (std::size_t k = 0; k < kSecEventKindCount; ++k)
    snap.window_counts[k] =
        windows_.window_count(shard, static_cast<SecEventKind>(k));
  return snap;
}

void HealthMonitor::publish(Registry& registry) const {
  registry.counter("health.alerts").set(alerts_total_);
  registry.counter("health.alerts_dropped").set(alerts_dropped_);
  registry.counter("health.events_ingested").set(events_ingested_);
  for (const std::uint32_t shard : windows_.shards()) {
    const std::string prefix = "health.s" + std::to_string(shard) + ".";
    const auto it = alerts_by_shard_.find(shard);
    registry.gauge(prefix + "alerts")
        .set(static_cast<std::int64_t>(
            it == alerts_by_shard_.end() ? 0 : it->second));
    for (const HealthRule& rule : rules_)
      registry.gauge(prefix + sec_event_name(rule.kind) + ".window")
          .set(static_cast<std::int64_t>(
              windows_.window_count(shard, rule.kind)));
  }
}

std::string HealthMonitor::summary_json() const {
  std::string out = "{\"schema\": \"peace.health.v1\"";
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                ", \"window_ms\": %llu, \"eval_every_ms\": %llu, "
                "\"cooldown_ms\": %llu, \"events_ingested\": %llu, "
                "\"alerts\": %llu, \"alerts_dropped\": %llu",
                static_cast<unsigned long long>(windows_.window_ms()),
                static_cast<unsigned long long>(options_.eval_every_ms),
                static_cast<unsigned long long>(options_.cooldown_ms),
                static_cast<unsigned long long>(events_ingested_),
                static_cast<unsigned long long>(alerts_total_),
                static_cast<unsigned long long>(alerts_dropped_));
  out += buf;
  out += ", \"shards\": [";
  bool first_shard = true;
  for (const std::uint32_t shard : windows_.shards()) {
    const HealthSnapshot snap = snapshot(shard);
    if (!first_shard) out += ", ";
    first_shard = false;
    std::snprintf(buf, sizeof(buf), "{\"shard\": %u, \"alerts\": %llu",
                  shard, static_cast<unsigned long long>(snap.alerts));
    out += buf;
    out += ", \"window\": {";
    bool first_kind = true;
    for (std::size_t k = 0; k < kSecEventKindCount; ++k) {
      if (snap.window_counts[k] == 0) continue;
      std::snprintf(buf, sizeof(buf), "%s\"%s\": %llu",
                    first_kind ? "" : ", ",
                    sec_event_name(static_cast<SecEventKind>(k)),
                    static_cast<unsigned long long>(snap.window_counts[k]));
      out += buf;
      first_kind = false;
    }
    out += "}}";
  }
  out += "], \"alert_log\": [";
  for (std::size_t i = 0; i < alerts_.size(); ++i) {
    const HealthAlert& a = alerts_[i];
    std::snprintf(buf, sizeof(buf),
                  "%s{\"sim_ms\": %llu, \"shard\": %u, \"kind\": \"%s\", "
                  "\"rule\": \"%s\", \"label\": \"%s\", "
                  "\"window_count\": %llu, \"ewma\": %.3f}",
                  i == 0 ? "" : ", ",
                  static_cast<unsigned long long>(a.sim_ms), a.shard,
                  sec_event_name(a.kind), a.rule, a.label,
                  static_cast<unsigned long long>(a.window_count), a.ewma);
    out += buf;
  }
  out += "]}\n";
  return out;
}

}  // namespace peace::obs
