#include "obs/trace.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <unordered_map>

namespace peace::obs {

namespace {

/// The always-on op counters, resolved once. References stay valid across
/// Registry::reset(), so caching them here is safe for the process lifetime.
struct CoreCounters {
  Counter& pairings = Registry::global().counter("curve.pairings");
  Counter& miller_loops = Registry::global().counter("curve.miller_loops");
  Counter& final_exps = Registry::global().counter("curve.final_exps");
  Counter& g2_prepared =
      Registry::global().counter("curve.g2_prepared_builds");
  Counter& msm_calls = Registry::global().counter("curve.msm_calls");
  Counter& msm_terms = Registry::global().counter("curve.msm_terms");
  Counter& gt_pows = Registry::global().counter("curve.gt_pows");
  Counter& fp12_inverses = Registry::global().counter("curve.fp12_inverses");
  Counter& field_inversions =
      Registry::global().counter("curve.field_inversions");
  Counter& glv_decompositions =
      Registry::global().counter("curve.glv_decompositions");
  Counter& gls_decompositions =
      Registry::global().counter("curve.gls_decompositions");
};

CoreCounters& core() {
  static CoreCounters counters;
  return counters;
}

#ifndef PEACE_OBS_DISABLED
std::atomic<bool> g_enabled{false};
thread_local CryptoTally t_tally;
#endif

std::chrono::steady_clock::time_point process_epoch() {
  static const auto epoch = std::chrono::steady_clock::now();
  return epoch;
}

}  // namespace

#ifndef PEACE_OBS_DISABLED
bool enabled() { return g_enabled.load(std::memory_order_relaxed); }
void enable(bool on) {
  (void)process_epoch();  // pin the epoch no later than first enable
  g_enabled.store(on, std::memory_order_relaxed);
}
const CryptoTally& thread_tally() { return t_tally; }
#endif

std::uint64_t now_us() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - process_epoch())
          .count());
}

// The tally updates ride behind the runtime toggle: with tracing off the
// hooks are exactly the relaxed atomic add the pre-registry bare globals
// performed. With PEACE_OBS_DISABLED the branch itself folds away.
#ifdef PEACE_OBS_DISABLED
#define PEACE_OBS_TALLY(field, n)
#else
#define PEACE_OBS_TALLY(field, n) \
  if (enabled()) t_tally.field += (n)
#endif

void note_pairing(std::uint64_t n) {
  core().pairings.add(n);
  PEACE_OBS_TALLY(pairings, n);
}

void note_miller_loop(std::uint64_t n) {
  core().miller_loops.add(n);
  PEACE_OBS_TALLY(miller_loops, n);
}

void note_final_exp(std::uint64_t n) {
  core().final_exps.add(n);
  PEACE_OBS_TALLY(final_exps, n);
}

void note_g2_prepared(std::uint64_t n) {
  core().g2_prepared.add(n);
  PEACE_OBS_TALLY(g2_prepared, n);
}

void note_msm(std::uint64_t terms) {
  core().msm_calls.add(1);
  core().msm_terms.add(terms);
#ifndef PEACE_OBS_DISABLED
  if (enabled()) {
    t_tally.msm_calls += 1;
    t_tally.msm_terms += terms;
  }
#endif
}

void note_gt_pow(std::uint64_t n) {
  core().gt_pows.add(n);
  PEACE_OBS_TALLY(gt_pows, n);
}

void note_fp12_inverse(std::uint64_t n) {
  core().fp12_inverses.add(n);
  PEACE_OBS_TALLY(fp12_inverses, n);
}

void note_field_inversion(std::uint64_t n) {
  core().field_inversions.add(n);
  PEACE_OBS_TALLY(field_inversions, n);
}

void note_glv_decomposition(std::uint64_t n) {
  core().glv_decompositions.add(n);
  PEACE_OBS_TALLY(glv_decompositions, n);
}

void note_gls_decomposition(std::uint64_t n) {
  core().gls_decompositions.add(n);
  PEACE_OBS_TALLY(gls_decompositions, n);
}

#undef PEACE_OBS_TALLY

std::uint64_t pairing_count() { return core().pairings.value(); }
std::uint64_t g2_prepared_build_count() { return core().g2_prepared.value(); }
std::uint64_t fp12_inverse_op_count() {
  return core().fp12_inverses.value();
}

// --- Tracer ---------------------------------------------------------------

Tracer& Tracer::global() {
  static Tracer tracer;
  return tracer;
}

std::uint32_t Tracer::tid_for_current_thread() {
  // Called with mutex_ held.
  static std::unordered_map<std::thread::id, std::uint32_t> ids;
  const auto [it, inserted] =
      ids.emplace(std::this_thread::get_id(), next_tid_);
  if (inserted) ++next_tid_;
  return it->second;
}

void Tracer::record(TraceEvent event) {
  if (!enabled()) return;
  std::lock_guard lock(mutex_);
  if (event.tid == 0) event.tid = tid_for_current_thread();
  if (sink_ != nullptr && sink_->is_open()) {
    // Streaming mode: write through, retain nothing (bounded memory).
    sink_->write(event);
    ++streamed_events_;
    return;
  }
  events_.push_back(event);
}

bool Tracer::stream_to(const std::string& path, StreamSinkOptions options) {
  std::lock_guard lock(mutex_);
  auto sink = std::make_unique<JsonlStreamSink>();
  if (!sink->open(path, options)) return false;
  sink_ = std::move(sink);
  streamed_events_ = 0;
  return true;
}

bool Tracer::stop_streaming() {
  std::lock_guard lock(mutex_);
  if (sink_ == nullptr) return true;
  const bool ok = sink_->close();
  sink_.reset();
  return ok;
}

bool Tracer::streaming() const {
  std::lock_guard lock(mutex_);
  return sink_ != nullptr && sink_->is_open();
}

std::uint64_t Tracer::streamed_event_count() const {
  std::lock_guard lock(mutex_);
  return streamed_events_;
}

void Tracer::instant(const char* name, const char* cat) {
  TraceEvent e;
  e.name = name;
  e.cat = cat;
  e.ph = 'i';
  e.ts_us = now_us();
  record(e);
}

void Tracer::instant_at(const char* name, const char* cat,
                        std::uint64_t sim_us,
                        std::initializer_list<TraceArg> args) {
  TraceEvent e;
  e.name = name;
  e.cat = cat;
  e.ph = 'i';
  e.pid = kSimPid;
  e.ts_us = sim_us;
  for (const TraceArg& a : args) e.add_arg(a.key, a.value);
  record(e);
}

void Tracer::async_begin(const char* name, const char* cat, std::uint64_t id,
                         std::uint64_t sim_us,
                         std::initializer_list<TraceArg> args) {
  TraceEvent e;
  e.name = name;
  e.cat = cat;
  e.ph = 'b';
  e.pid = kSimPid;
  e.id = id;
  e.ts_us = sim_us;
  for (const TraceArg& a : args) e.add_arg(a.key, a.value);
  record(e);
}

void Tracer::async_end(const char* name, const char* cat, std::uint64_t id,
                       std::uint64_t sim_us,
                       std::initializer_list<TraceArg> args) {
  TraceEvent e;
  e.name = name;
  e.cat = cat;
  e.ph = 'e';
  e.pid = kSimPid;
  e.id = id;
  e.ts_us = sim_us;
  for (const TraceArg& a : args) e.add_arg(a.key, a.value);
  record(e);
}

std::size_t Tracer::event_count() const {
  std::lock_guard lock(mutex_);
  return events_.size();
}

std::vector<TraceEvent> Tracer::events() const {
  std::lock_guard lock(mutex_);
  return events_;
}

void Tracer::clear() {
  std::lock_guard lock(mutex_);
  events_.clear();
}

namespace {

void append(std::string& out, const char* fmt, auto... args) {
  char buf[192];
  const int n = std::snprintf(buf, sizeof(buf), fmt, args...);
  if (n < static_cast<int>(sizeof(buf))) {
    out += buf;
    return;
  }
  std::string big(static_cast<std::size_t>(n) + 1, '\0');
  std::snprintf(big.data(), big.size(), fmt, args...);
  big.resize(static_cast<std::size_t>(n));
  out += big;
}

}  // namespace

void append_event_json(std::string& out, const TraceEvent& e) {
  append(out, "{\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"%c\"", e.name,
         e.cat, e.ph);
  append(out, ", \"ts\": %llu", static_cast<unsigned long long>(e.ts_us));
  if (e.ph == 'X')
    append(out, ", \"dur\": %llu", static_cast<unsigned long long>(e.dur_us));
  if (e.ph == 'b' || e.ph == 'e')
    append(out, ", \"id\": %llu", static_cast<unsigned long long>(e.id));
  if (e.ph == 'i') out += ", \"s\": \"t\"";
  append(out, ", \"pid\": %u, \"tid\": %u", e.pid, e.tid);
  if (e.nargs > 0) {
    out += ", \"args\": {";
    for (std::size_t i = 0; i < e.nargs; ++i)
      append(out, "%s\"%s\": %llu", i == 0 ? "" : ", ", e.args[i].key,
             static_cast<unsigned long long>(e.args[i].value));
    out += "}";
  }
  out += "}";
}

std::string Tracer::chrome_json() const {
  std::lock_guard lock(mutex_);
  std::string out = "{\"displayTimeUnit\": \"ms\",\n\"traceEvents\": [\n";
  // Metadata: name the two clock tracks so the viewer labels them.
  out += "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": 0, "
         "\"args\": {\"name\": \"wall-clock\"}},\n";
  out += "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 2, \"tid\": 0, "
         "\"args\": {\"name\": \"sim-time\"}}";
  for (const TraceEvent& e : events_) {
    out += ",\n";
    append_event_json(out, e);
  }
  out += "\n]}\n";
  return out;
}

std::string Tracer::jsonl() const {
  std::lock_guard lock(mutex_);
  std::string out;
  for (const TraceEvent& e : events_) {
    append_event_json(out, e);
    out += "\n";
  }
  return out;
}

namespace {

bool write_file(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const bool ok =
      std::fwrite(content.data(), 1, content.size(), f) == content.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace

bool Tracer::write_chrome(const std::string& path) const {
  return write_file(path, chrome_json());
}

bool Tracer::write_jsonl(const std::string& path) const {
  return write_file(path, jsonl());
}

// --- Span -----------------------------------------------------------------

#ifndef PEACE_OBS_DISABLED

Span::Span(const char* name, const char* cat, Histogram* hist) {
  if (!enabled()) return;
  active_ = true;
  hist_ = hist;
  event_.name = name;
  event_.cat = cat;
  start_tally_ = t_tally;
  start_us_ = now_us();
}

std::uint64_t Span::close() {
  if (!active_) return 0;
  active_ = false;
  const std::uint64_t end_us = now_us();
  const std::uint64_t dur = end_us - start_us_;
  event_.ph = 'X';
  event_.ts_us = start_us_;
  event_.dur_us = dur;
  const CryptoTally& t = t_tally;
  const auto attribute = [&](const char* key, std::uint64_t now,
                             std::uint64_t then) {
    if (now > then) event_.add_arg(key, now - then);
  };
  attribute("pairings", t.pairings, start_tally_.pairings);
  attribute("miller_loops", t.miller_loops, start_tally_.miller_loops);
  attribute("final_exps", t.final_exps, start_tally_.final_exps);
  attribute("g2_prepared", t.g2_prepared, start_tally_.g2_prepared);
  attribute("msm_calls", t.msm_calls, start_tally_.msm_calls);
  attribute("msm_terms", t.msm_terms, start_tally_.msm_terms);
  attribute("gt_pows", t.gt_pows, start_tally_.gt_pows);
  attribute("fp12_inverses", t.fp12_inverses, start_tally_.fp12_inverses);
  attribute("field_inversions", t.field_inversions,
            start_tally_.field_inversions);
  attribute("glv_decompositions", t.glv_decompositions,
            start_tally_.glv_decompositions);
  attribute("gls_decompositions", t.gls_decompositions,
            start_tally_.gls_decompositions);
  Tracer::global().record(event_);
  if (hist_ != nullptr) hist_->record(dur);
  return dur;
}

#endif  // PEACE_OBS_DISABLED

}  // namespace peace::obs
