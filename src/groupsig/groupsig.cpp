#include "groupsig/groupsig.hpp"

#include "common/serde.hpp"
#include "curve/ecdsa.hpp"

namespace peace::groupsig {

using curve::Bn254;
using curve::fr_from_bytes;
using curve::fr_to_bytes;
using curve::g1_from_bytes;
using curve::g1_to_bytes;
using curve::g2_from_bytes;
using curve::g2_to_bytes;
using curve::random_fr;
using curve::SignatureBases;

namespace {

void count(OpCounters* ops, std::uint64_t OpCounters::* field,
           std::uint64_t n = 1) {
  if (ops != nullptr) (*ops).*field += n;
}

/// Seed for H0: per-message in normal mode, per-epoch in fast-revocation
/// mode (Sec. V.C trade-off).
Bytes bases_seed(const GroupPublicKey& gpk, BytesView message,
                 const Signature& partial) {
  Writer w;
  w.bytes(gpk.to_bytes());
  w.u64(partial.epoch);
  if (partial.epoch == 0) {
    w.bytes(message);
    w.raw(fr_to_bytes(partial.nonce));
  }
  return w.take();
}

SignatureBases derive_bases(const GroupPublicKey& gpk, BytesView message,
                            const Signature& partial, OpCounters* ops) {
  count(ops, &OpCounters::hash_to_group, 3);
  return curve::hash_to_bases(bases_seed(gpk, message, partial));
}

/// Fiat-Shamir challenge: the paper's H over
/// (gpk, message, r, T1, T2, [T_hat], R1, R2, R3, [R4]).
Fr challenge(const GroupPublicKey& gpk, BytesView message,
             const Signature& sig, const G1& r1, const GT& r2, const G1& r3,
             const G2& r4) {
  Writer w;
  w.bytes(gpk.to_bytes());
  w.u64(sig.epoch);
  w.bytes(message);
  w.raw(fr_to_bytes(sig.nonce));
  w.raw(g1_to_bytes(sig.t1));
  w.raw(g1_to_bytes(sig.t2));
  w.raw(g2_to_bytes(sig.t_hat));
  w.raw(g1_to_bytes(r1));
  w.raw(r2.to_bytes());
  w.raw(g1_to_bytes(r3));
  w.raw(g2_to_bytes(r4));
  return curve::hash_to_fr("peace/groupsig/challenge", w.data());
}

}  // namespace

Bytes GroupPublicKey::to_bytes() const { return g2_to_bytes(w); }

GroupPublicKey GroupPublicKey::from_bytes(BytesView data) {
  GroupPublicKey gpk{g2_from_bytes(data)};
  // w = g2^gamma with gamma != 0; the identity is never a valid key.
  if (gpk.w.is_infinity()) throw Error("groupsig: identity group key");
  return gpk;
}

bool MemberKey::is_valid(const GroupPublicKey& gpk) const {
  // e(A, w * g2^(grp+x)) == e(g1, g2), i.e. A^(gamma+grp+x) == g1.
  const auto& bn = Bn254::get();
  if (a.is_infinity() || !a.is_on_curve()) return false;
  const G2 rhs = gpk.w + bn.g2_gen * (grp + x);
  return curve::pairing(a, rhs) == curve::gt_generator();
}

Bytes RevocationToken::to_bytes() const { return g1_to_bytes(a); }

RevocationToken RevocationToken::from_bytes(BytesView data) {
  RevocationToken token{g1_from_bytes(data)};
  // An identity token would match e(0, v_hat) = 1 against crafted
  // signatures; member credentials A are never the identity.
  if (token.a.is_infinity()) throw Error("groupsig: identity token");
  return token;
}

Bytes Signature::to_bytes() const {
  Writer w;
  w.u64(epoch);
  w.raw(fr_to_bytes(nonce));
  w.raw(g1_to_bytes(t1));
  w.raw(g1_to_bytes(t2));
  w.raw(g2_to_bytes(t_hat));
  w.raw(fr_to_bytes(c));
  w.raw(fr_to_bytes(s_alpha));
  w.raw(fr_to_bytes(s_x));
  w.raw(fr_to_bytes(s_delta));
  return w.take();
}

Signature Signature::from_bytes(BytesView data) {
  if (data.size() != kSignatureSize) throw Error("groupsig: bad sig length");
  Reader r(data);
  Signature sig;
  sig.epoch = r.u64();
  sig.nonce = fr_from_bytes(r.raw(32));
  sig.t1 = g1_from_bytes(r.raw(curve::kG1CompressedSize));
  sig.t2 = g1_from_bytes(r.raw(curve::kG1CompressedSize));
  sig.t_hat = g2_from_bytes(r.raw(curve::kG2CompressedSize));
  sig.c = fr_from_bytes(r.raw(32));
  sig.s_alpha = fr_from_bytes(r.raw(32));
  sig.s_x = fr_from_bytes(r.raw(32));
  sig.s_delta = fr_from_bytes(r.raw(32));
  r.expect_end();
  // T1 = u^alpha, T2 = A v^alpha, T_hat = v_hat^alpha with u, v, v_hat
  // nonzero hashed bases: honest signers never produce the identity, and
  // rejecting it here keeps degenerate points out of the pairing inputs.
  if (sig.t1.is_infinity() || sig.t2.is_infinity() || sig.t_hat.is_infinity())
    throw Error("groupsig: identity point in signature");
  return sig;
}

Issuer Issuer::create(crypto::Drbg& rng) {
  return from_secret(random_fr(rng));
}

Issuer Issuer::from_secret(const Fr& gamma) {
  if (gamma.is_zero()) throw Error("groupsig: zero master secret");
  Issuer issuer;
  issuer.gamma_ = gamma;
  issuer.gpk_.w = Bn254::get().g2_gen * gamma;
  return issuer;
}

Fr Issuer::new_group_secret(crypto::Drbg& rng) const { return random_fr(rng); }

MemberKey Issuer::issue(const Fr& grp, crypto::Drbg& rng) const {
  for (;;) {
    const Fr x = random_fr(rng);
    if ((gamma_ + grp + x).is_zero()) continue;  // paper step 3 side condition
    return derive(grp, x);
  }
}

MemberKey Issuer::derive(const Fr& grp, const Fr& x) const {
  const Fr denom = gamma_ + grp + x;
  if (denom.is_zero()) throw Error("groupsig: gamma + grp + x == 0");
  MemberKey key;
  key.a = Bn254::get().g1_gen * denom.inverse();
  key.grp = grp;
  key.x = x;
  return key;
}

Signature sign(const GroupPublicKey& gpk, const MemberKey& gsk,
               BytesView message, crypto::Drbg& rng, Epoch epoch,
               OpCounters* ops) {
  const auto& bn = Bn254::get();
  Signature sig;
  sig.epoch = epoch;
  sig.nonce = random_fr(rng);  // the paper's r (step 2.2.1)

  const SignatureBases bases = derive_bases(gpk, message, sig, ops);

  // Step 2.2.2: T1 = u^alpha, T2 = A v^alpha (+ Type-3 carrier), delta.
  const Fr alpha = random_fr(rng);
  sig.t1 = bases.u * alpha;
  sig.t2 = gsk.a + bases.v * alpha;
  sig.t_hat = bases.v_hat * alpha;
  count(ops, &OpCounters::g1_exp, 2);
  count(ops, &OpCounters::g2_exp, 1);
  const Fr y = gsk.grp + gsk.x;
  const Fr delta = y * alpha;

  const Fr r_alpha = random_fr(rng);
  const Fr r_x = random_fr(rng);
  const Fr r_delta = random_fr(rng);

  // Step 2.2.3: helper values. R2's three pairings share bases g2 and w, so
  // they fold into two: e(T2^rx v^-rd, g2) * e(v^-ra, w).
  const G1 r1 = bases.u * r_alpha;
  count(ops, &OpCounters::g1_exp, 1);
  const GT r2 = curve::multi_pairing(
      {{sig.t2 * r_x - bases.v * r_delta, bn.g2_gen},
       {-(bases.v * r_alpha), gpk.w}});
  count(ops, &OpCounters::g1_exp, 3);
  count(ops, &OpCounters::pairings, 2);
  const G1 r3 = sig.t1 * r_x - bases.u * r_delta;
  count(ops, &OpCounters::g1_exp, 2);
  const G2 r4 = bases.v_hat * r_alpha;
  count(ops, &OpCounters::g2_exp, 1);

  sig.c = challenge(gpk, message, sig, r1, r2, r3, r4);

  // Step 2.2.4: responses.
  sig.s_alpha = r_alpha + sig.c * alpha;
  sig.s_x = r_x + sig.c * y;
  sig.s_delta = r_delta + sig.c * delta;
  return sig;
}

PreparedGroupPublicKey::PreparedGroupPublicKey(const GroupPublicKey& key)
    : gpk(key),
      g2(curve::G2Prepared(Bn254::get().g2_gen)),
      w(curve::G2Prepared(key.w)) {}

bool verify_proof(const PreparedGroupPublicKey& pgpk, BytesView message,
                  const Signature& sig, OpCounters* ops) {
  const auto& bn = Bn254::get();
  if (sig.t1.is_infinity() || sig.t2.is_infinity()) return false;

  const SignatureBases bases = derive_bases(pgpk.gpk, message, sig, ops);

  // Step 3.2.2: recover the helper values. Every R is a short linear
  // combination, so the hot path computes them with interleaved windowed
  // multi-exponentiation (shared doubling chains) — the same group
  // elements, hence byte-identical transcripts, at roughly the cost of one
  // exponentiation per combination.
  using curve::multi_scalar_mul;
  const curve::U256 neg_c = (-sig.c).to_u256();
  const G1 r1 = multi_scalar_mul<curve::G1Traits, 2>(
      {bases.u, sig.t1}, {sig.s_alpha.to_u256(), neg_c});
  count(ops, &OpCounters::g1_exp, 2);
  // R2~ = e(T2,g2)^sx e(v,w)^-sa e(v,g2)^-sd (e(T2,w)/e(g1,g2))^c, folded by
  // pairing base:  e(T2^sx v^-sd g1^-c, g2) * e(v^-sa T2^c, w). Both G2
  // arguments are fixed, so their Miller-loop lines come precomputed.
  const std::pair<curve::G1, const curve::G2Prepared*> r2_pairs[] = {
      {multi_scalar_mul<curve::G1Traits, 3>(
           {sig.t2, bases.v, bn.g1_gen},
           {sig.s_x.to_u256(), (-sig.s_delta).to_u256(), neg_c}),
       &pgpk.g2},
      {multi_scalar_mul<curve::G1Traits, 2>(
           {sig.t2, bases.v}, {sig.c.to_u256(), (-sig.s_alpha).to_u256()}),
       &pgpk.w}};
  const GT r2 = curve::multi_pairing(r2_pairs);
  count(ops, &OpCounters::g1_exp, 5);
  count(ops, &OpCounters::pairings, 2);
  const G1 r3 = multi_scalar_mul<curve::G1Traits, 2>(
      {sig.t1, bases.u}, {sig.s_x.to_u256(), (-sig.s_delta).to_u256()});
  count(ops, &OpCounters::g1_exp, 2);
  const G2 r4 = multi_scalar_mul<curve::G2Traits, 2>(
      {bases.v_hat, sig.t_hat}, {sig.s_alpha.to_u256(), neg_c});
  count(ops, &OpCounters::g2_exp, 2);

  // Step 3.2.3: challenge must match (Eq.2).
  return challenge(pgpk.gpk, message, sig, r1, r2, r3, r4) == sig.c;
}

bool verify_proof(const GroupPublicKey& gpk, BytesView message,
                  const Signature& sig, OpCounters* ops) {
  // Reference path, deliberately left as straight-line exponentiations and
  // unprepared pairings: it is the differential oracle the prepared hot
  // path is tested bit-identical against.
  const auto& bn = Bn254::get();
  if (sig.t1.is_infinity() || sig.t2.is_infinity()) return false;

  const SignatureBases bases = derive_bases(gpk, message, sig, ops);

  const G1 r1 = bases.u * sig.s_alpha - sig.t1 * sig.c;
  count(ops, &OpCounters::g1_exp, 2);
  const GT r2 = curve::multi_pairing(
      {{sig.t2 * sig.s_x - bases.v * sig.s_delta - bn.g1_gen * sig.c,
        bn.g2_gen},
       {sig.t2 * sig.c - bases.v * sig.s_alpha, gpk.w}});
  count(ops, &OpCounters::g1_exp, 5);
  count(ops, &OpCounters::pairings, 2);
  const G1 r3 = sig.t1 * sig.s_x - bases.u * sig.s_delta;
  count(ops, &OpCounters::g1_exp, 2);
  const G2 r4 = bases.v_hat * sig.s_alpha - sig.t_hat * sig.c;
  count(ops, &OpCounters::g2_exp, 2);

  return challenge(gpk, message, sig, r1, r2, r3, r4) == sig.c;
}

bool matches_token(const GroupPublicKey& gpk, BytesView message,
                   const Signature& sig, const RevocationToken& token,
                   OpCounters* ops) {
  const SignatureBases bases = derive_bases(gpk, message, sig, ops);
  // Eq.3: e(T2 / A, v_hat) == e(v, T_hat), i.e.
  // e(T2 - A, v_hat) * e(-v, T_hat) == 1.
  count(ops, &OpCounters::pairings, 2);
  return curve::multi_pairing(
             {{sig.t2 - token.a, bases.v_hat}, {-bases.v, sig.t_hat}})
      .is_one();
}

PreparedBases prepare_bases(const GroupPublicKey& gpk, BytesView message,
                            const Signature& sig, OpCounters* ops) {
  PreparedBases out;
  out.bases = derive_bases(gpk, message, sig, ops);
  out.v_hat = curve::G2Prepared(out.bases.v_hat);
  return out;
}

bool matches_token(const PreparedBases& prepared, const Signature& sig,
                   const RevocationToken& token, OpCounters* ops) {
  count(ops, &OpCounters::pairings, 2);
  // Same fused product as the re-deriving overload; v_hat consumes its
  // stored lines, T_hat (used once) runs the twist arithmetic inline.
  const std::pair<curve::G1, const curve::G2Prepared*> prep[] = {
      {sig.t2 - token.a, &prepared.v_hat}};
  const std::pair<curve::G1, curve::G2> unprep[] = {
      {-prepared.bases.v, sig.t_hat}};
  return curve::multi_pairing(prep, unprep).is_one();
}

bool verify(const GroupPublicKey& gpk, BytesView message, const Signature& sig,
            std::span<const RevocationToken> url, OpCounters* ops) {
  if (!verify_proof(gpk, message, sig, ops)) return false;
  for (const RevocationToken& token : url) {
    if (matches_token(gpk, message, sig, token, ops)) return false;
  }
  return true;
}

bool verify(const PreparedGroupPublicKey& pgpk, BytesView message,
            const Signature& sig, std::span<const RevocationToken> url,
            OpCounters* ops) {
  if (!verify_proof(pgpk, message, sig, ops)) return false;
  if (url.empty()) return true;
  // Eq.3 pairs against the per-message base v_hat — not a fixed argument
  // the prepared key could cover — so prepare it once here and amortise
  // its Miller lines over the whole scan (2 pairings per token, but only
  // one G2 twist walk per message).
  const PreparedBases prepared = prepare_bases(pgpk.gpk, message, sig, ops);
  for (const RevocationToken& token : url) {
    if (matches_token(prepared, sig, token, ops)) return false;
  }
  return true;
}

std::string EpochRevocationIndex::tag_for(const G1& a) const {
  return to_hex(curve::pairing(a, v_hat_prep_).to_bytes());
}

EpochRevocationIndex::EpochRevocationIndex(const GroupPublicKey& gpk,
                                           Epoch epoch,
                                           std::span<const RevocationToken> url)
    : epoch_(epoch) {
  if (epoch == 0) throw Error("groupsig: epoch index needs epoch != 0");
  Signature partial;
  partial.epoch = epoch;
  const SignatureBases bases = derive_bases(gpk, {}, partial, nullptr);
  v_ = bases.v;
  v_hat_ = bases.v_hat;
  v_hat_prep_ = curve::G2Prepared(v_hat_);
  for (const RevocationToken& token : url) add_token(token);
}

bool EpochRevocationIndex::add_token(const RevocationToken& token) {
  const std::string key = to_hex(token.to_bytes());
  if (tokens_.contains(key)) return false;
  Entry entry{token.a, tag_for(token.a)};
  tags_.insert(entry.tag);
  tokens_.emplace(key, std::move(entry));
  return true;
}

bool EpochRevocationIndex::remove_token(const RevocationToken& token) {
  const auto it = tokens_.find(to_hex(token.to_bytes()));
  if (it == tokens_.end()) return false;
  tags_.erase(it->second.tag);
  tokens_.erase(it);
  return true;
}

bool EpochRevocationIndex::contains(const RevocationToken& token) const {
  return tokens_.contains(to_hex(token.to_bytes()));
}

void EpochRevocationIndex::roll_epoch(const GroupPublicKey& gpk, Epoch epoch) {
  if (epoch == 0) throw Error("groupsig: epoch index needs epoch != 0");
  if (epoch == epoch_) return;
  Signature partial;
  partial.epoch = epoch;
  const SignatureBases bases = derive_bases(gpk, {}, partial, nullptr);
  epoch_ = epoch;
  v_ = bases.v;
  v_hat_ = bases.v_hat;
  v_hat_prep_ = curve::G2Prepared(v_hat_);
  tags_.clear();
  for (auto& [key, entry] : tokens_) {
    entry.tag = tag_for(entry.a);
    tags_.insert(entry.tag);
  }
}

bool EpochRevocationIndex::is_revoked(const Signature& sig,
                                      OpCounters* ops) const {
  // K = e(T2, v_hat) / e(v, T_hat) = e(A, v_hat): constant per member per
  // epoch — the linkability the paper trades for O(1) revocation checking.
  // v_hat is fixed per epoch (prepared at rebuild) and the quotient folds
  // into one product of Miller loops with a single final exponentiation;
  // that is legal because the final exponentiation x -> x^((p^12-1)/r) is a
  // homomorphism, so FE(m1) * FE(m2)^-1 == FE(m1 * ML(-v, T_hat)).
  if (sig.epoch != epoch_) throw Error("groupsig: epoch mismatch");
  count(ops, &OpCounters::pairings, 2);
  // T_hat is used exactly once, so it runs the Miller loop inline via the
  // mixed overload — building a G2Prepared line table for it would spend
  // the full twist arithmetic plus a heap allocation on a one-shot point.
  const std::pair<curve::G1, const curve::G2Prepared*> prep[] = {
      {sig.t2, &v_hat_prep_}};
  const std::pair<curve::G1, curve::G2> unprep[] = {{-v_, sig.t_hat}};
  const GT k = curve::multi_pairing(prep, unprep);
  return tags_.contains(to_hex(k.to_bytes()));
}

bool verify_fast(const GroupPublicKey& gpk, BytesView message,
                 const Signature& sig, const EpochRevocationIndex& index,
                 OpCounters* ops) {
  if (sig.epoch != index.epoch()) return false;
  if (!verify_proof(gpk, message, sig, ops)) return false;
  return !index.is_revoked(sig, ops);
}

GT epoch_linkability_tag(const GroupPublicKey& gpk, const Signature& sig) {
  const SignatureBases bases = derive_bases(gpk, {}, sig, nullptr);
  return curve::pairing(sig.t2, bases.v_hat) *
         curve::pairing(bases.v, sig.t_hat).unitary_inverse();
}

}  // namespace peace::groupsig
