#include "groupsig/groupsig.hpp"

#include "common/serde.hpp"
#include "curve/ecdsa.hpp"
#include "obs/trace.hpp"

namespace peace::groupsig {

using curve::Bn254;
using curve::fr_from_bytes;
using curve::fr_to_bytes;
using curve::g1_from_bytes;
using curve::g1_to_bytes;
using curve::g2_from_bytes;
using curve::g2_to_bytes;
using curve::random_fr;
using curve::SignatureBases;

namespace {

void count(OpCounters* ops, std::uint64_t OpCounters::* field,
           std::uint64_t n = 1) {
  if (ops != nullptr) (*ops).*field += n;
}

/// Seed for H0: per-message in normal mode, per-epoch in fast-revocation
/// mode (Sec. V.C trade-off).
Bytes bases_seed(const GroupPublicKey& gpk, BytesView message,
                 const Signature& partial) {
  Writer w;
  w.bytes(gpk.to_bytes());
  w.u64(partial.epoch);
  if (partial.epoch == 0) {
    w.bytes(message);
    w.raw(fr_to_bytes(partial.nonce));
  }
  return w.take();
}

SignatureBases derive_bases(const GroupPublicKey& gpk, BytesView message,
                            const Signature& partial, OpCounters* ops) {
  count(ops, &OpCounters::hash_to_group, 3);
  return curve::hash_to_bases(bases_seed(gpk, message, partial));
}

/// Fiat-Shamir challenge: the paper's H over
/// (gpk, message, r, T1, T2, [T_hat], R1, R2, R3, [R4]).
Fr challenge(const GroupPublicKey& gpk, BytesView message,
             const Signature& sig, const G1& r1, const GT& r2, const G1& r3,
             const G2& r4) {
  Writer w;
  w.bytes(gpk.to_bytes());
  w.u64(sig.epoch);
  w.bytes(message);
  w.raw(fr_to_bytes(sig.nonce));
  w.raw(g1_to_bytes(sig.t1));
  w.raw(g1_to_bytes(sig.t2));
  w.raw(g2_to_bytes(sig.t_hat));
  w.raw(g1_to_bytes(r1));
  w.raw(r2.to_bytes());
  w.raw(g1_to_bytes(r3));
  w.raw(g2_to_bytes(r4));
  return curve::hash_to_fr("peace/groupsig/challenge", w.data());
}

}  // namespace

Bytes GroupPublicKey::to_bytes() const { return g2_to_bytes(w); }

GroupPublicKey GroupPublicKey::from_bytes(BytesView data) {
  GroupPublicKey gpk{g2_from_bytes(data)};
  // w = g2^gamma with gamma != 0; the identity is never a valid key.
  if (gpk.w.is_infinity()) throw Error("groupsig: identity group key");
  return gpk;
}

bool MemberKey::is_valid(const GroupPublicKey& gpk) const {
  // e(A, w * g2^(grp+x)) == e(g1, g2), i.e. A^(gamma+grp+x) == g1.
  const auto& bn = Bn254::get();
  if (a.is_infinity() || !a.is_on_curve()) return false;
  const G2 rhs = gpk.w + bn.g2_gen * (grp + x);
  return curve::pairing(a, rhs) == curve::gt_generator();
}

Bytes RevocationToken::to_bytes() const { return g1_to_bytes(a); }

RevocationToken RevocationToken::from_bytes(BytesView data) {
  RevocationToken token{g1_from_bytes(data)};
  // An identity token would match e(0, v_hat) = 1 against crafted
  // signatures; member credentials A are never the identity.
  if (token.a.is_infinity()) throw Error("groupsig: identity token");
  return token;
}

Bytes Signature::to_bytes() const {
  Writer w;
  w.u64(epoch);
  w.raw(fr_to_bytes(nonce));
  w.raw(g1_to_bytes(t1));
  w.raw(g1_to_bytes(t2));
  w.raw(g2_to_bytes(t_hat));
  w.raw(g1_to_bytes(r1));
  w.raw(r2.to_bytes());
  w.raw(g1_to_bytes(r3));
  w.raw(g2_to_bytes(r4));
  w.raw(fr_to_bytes(s_alpha));
  w.raw(fr_to_bytes(s_x));
  w.raw(fr_to_bytes(s_delta));
  return w.take();
}

Signature Signature::from_bytes(BytesView data) {
  if (data.size() != kSignatureSize) throw Error("groupsig: bad sig length");
  Reader r(data);
  Signature sig;
  sig.epoch = r.u64();
  sig.nonce = fr_from_bytes(r.raw(32));
  sig.t1 = g1_from_bytes(r.raw(curve::kG1CompressedSize));
  sig.t2 = g1_from_bytes(r.raw(curve::kG1CompressedSize));
  sig.t_hat = g2_from_bytes(r.raw(curve::kG2CompressedSize));
  sig.r1 = g1_from_bytes(r.raw(curve::kG1CompressedSize));
  sig.r2 = GT::from_bytes(r.raw(curve::kGtSize));
  sig.r3 = g1_from_bytes(r.raw(curve::kG1CompressedSize));
  sig.r4 = g2_from_bytes(r.raw(curve::kG2CompressedSize));
  sig.s_alpha = fr_from_bytes(r.raw(32));
  sig.s_x = fr_from_bytes(r.raw(32));
  sig.s_delta = fr_from_bytes(r.raw(32));
  r.expect_end();
  // T1 = u^alpha, T2 = A v^alpha, T_hat = v_hat^alpha with u, v, v_hat
  // nonzero hashed bases: honest signers never produce the identity, and
  // rejecting it here keeps degenerate points out of the pairing inputs.
  if (sig.t1.is_infinity() || sig.t2.is_infinity() || sig.t_hat.is_infinity())
    throw Error("groupsig: identity point in signature");
  // R2 must lie in the cyclotomic subgroup of Fp12 (every pairing value
  // does; an honest R2 always passes). This is the precondition for the
  // batch verifier's cyclotomic-squaring powers and it pins R2's possible
  // deviation from the true value into the subgroup whose cofactor the
  // batch randomizers are drawn coprime to (docs/CRYPTO.md §4).
  if (!curve::gt_in_cyclotomic_subgroup(sig.r2))
    throw Error("groupsig: R2 outside the cyclotomic subgroup");
  return sig;
}

Issuer Issuer::create(crypto::Drbg& rng) {
  return from_secret(random_fr(rng));
}

Issuer Issuer::from_secret(const Fr& gamma) {
  if (gamma.is_zero()) throw Error("groupsig: zero master secret");
  Issuer issuer;
  issuer.gamma_ = gamma;
  issuer.gpk_.w = Bn254::get().g2_gen * gamma;
  return issuer;
}

Fr Issuer::new_group_secret(crypto::Drbg& rng) const { return random_fr(rng); }

MemberKey Issuer::issue(const Fr& grp, crypto::Drbg& rng) const {
  for (;;) {
    const Fr x = random_fr(rng);
    if ((gamma_ + grp + x).is_zero()) continue;  // paper step 3 side condition
    return derive(grp, x);
  }
}

MemberKey Issuer::derive(const Fr& grp, const Fr& x) const {
  const Fr denom = gamma_ + grp + x;
  if (denom.is_zero()) throw Error("groupsig: gamma + grp + x == 0");
  MemberKey key;
  key.a = Bn254::get().g1_gen * denom.inverse();
  key.grp = grp;
  key.x = x;
  return key;
}

Signature sign(const GroupPublicKey& gpk, const MemberKey& gsk,
               BytesView message, crypto::Drbg& rng, Epoch epoch,
               OpCounters* ops) {
  const auto& bn = Bn254::get();
  Signature sig;
  sig.epoch = epoch;
  sig.nonce = random_fr(rng);  // the paper's r (step 2.2.1)

  const SignatureBases bases = derive_bases(gpk, message, sig, ops);

  // Step 2.2.2: T1 = u^alpha, T2 = A v^alpha (+ Type-3 carrier), delta.
  const Fr alpha = random_fr(rng);
  sig.t1 = bases.u * alpha;
  sig.t2 = gsk.a + bases.v * alpha;
  // v_hat comes out of hash_to_g2 (order-r by construction), satisfying
  // g2_mul_gls's subgroup precondition.
  sig.t_hat = curve::g2_mul_gls(bases.v_hat, alpha.to_u256());
  count(ops, &OpCounters::g1_exp, 2);
  count(ops, &OpCounters::g2_exp, 1);
  const Fr y = gsk.grp + gsk.x;
  const Fr delta = y * alpha;

  const Fr r_alpha = random_fr(rng);
  const Fr r_x = random_fr(rng);
  const Fr r_delta = random_fr(rng);

  // Step 2.2.3: helper values — stored in the signature (the verifier
  // recomputes the challenge from them and checks the verification
  // equations; see the Signature doc comment). R2's three pairings share
  // bases g2 and w, so they fold into two: e(T2^rx v^-rd, g2) * e(v^-ra, w).
  sig.r1 = bases.u * r_alpha;
  count(ops, &OpCounters::g1_exp, 1);
  sig.r2 = curve::multi_pairing(
      {{curve::g1_msm<2>({sig.t2, bases.v},
                         {r_x.to_u256(), (-r_delta).to_u256()}),
        bn.g2_gen},
       {-(bases.v * r_alpha), gpk.w}});
  count(ops, &OpCounters::g1_exp, 3);
  count(ops, &OpCounters::pairings, 2);
  sig.r3 = curve::g1_msm<2>({sig.t1, bases.u},
                            {r_x.to_u256(), (-r_delta).to_u256()});
  count(ops, &OpCounters::g1_exp, 2);
  sig.r4 = curve::g2_mul_gls(bases.v_hat, r_alpha.to_u256());
  count(ops, &OpCounters::g2_exp, 1);

  const Fr c = challenge(gpk, message, sig, sig.r1, sig.r2, sig.r3, sig.r4);

  // Step 2.2.4: responses.
  sig.s_alpha = r_alpha + c * alpha;
  sig.s_x = r_x + c * y;
  sig.s_delta = r_delta + c * delta;
  return sig;
}

PreparedGroupPublicKey::PreparedGroupPublicKey(const GroupPublicKey& key)
    : gpk(key),
      g2(curve::G2Prepared(Bn254::get().g2_gen)),
      w(curve::G2Prepared(key.w)) {}

bool verify_proof(const PreparedGroupPublicKey& pgpk, BytesView message,
                  const Signature& sig, OpCounters* ops) {
  const auto& bn = Bn254::get();
  if (sig.t1.is_infinity() || sig.t2.is_infinity()) return false;
  // A carried R2 outside the cyclotomic subgroup can never equal a pairing
  // value; reject before any expensive work (wire parsing already enforces
  // this, the check covers in-memory signatures too).
  if (!curve::gt_in_cyclotomic_subgroup(sig.r2)) return false;

  const SignatureBases bases = derive_bases(pgpk.gpk, message, sig, ops);

  // Step 3.2.2: recompute the challenge from the carried commitments, then
  // check the four verification equations. Every equation side is a short
  // linear combination, computed with endomorphism-split interleaved wNAF
  // multi-exponentiation (curve::g1_msm / g2_msm — GLV and GLS halve and
  // quarter the scalar widths; docs/CRYPTO.md §6). The two cheap G1 checks
  // and the G2 check run before the pairing equation so malformed
  // signatures never reach the Miller loops. Every G2 input here is
  // subgroup-checked at parse (g2_from_bytes) or hash-derived, meeting the
  // GLS precondition.
  const Fr c = challenge(pgpk.gpk, message, sig, sig.r1, sig.r2, sig.r3,
                         sig.r4);
  const curve::U256 neg_c = (-c).to_u256();
  // Eq.1: u^s_alpha T1^-c == R1.
  const G1 r1 =
      curve::g1_msm<2>({bases.u, sig.t1}, {sig.s_alpha.to_u256(), neg_c});
  count(ops, &OpCounters::g1_exp, 2);
  if (!(r1 == sig.r1)) return false;
  // Eq.3: T1^s_x u^-s_delta == R3.
  const G1 r3 = curve::g1_msm<2>(
      {sig.t1, bases.u}, {sig.s_x.to_u256(), (-sig.s_delta).to_u256()});
  count(ops, &OpCounters::g1_exp, 2);
  if (!(r3 == sig.r3)) return false;
  // Eq.4: v_hat^s_alpha T_hat^-c == R4.
  const G2 r4 = curve::g2_msm<2>({bases.v_hat, sig.t_hat},
                                 {sig.s_alpha.to_u256(), neg_c});
  count(ops, &OpCounters::g2_exp, 2);
  if (!(r4 == sig.r4)) return false;
  // Eq.2: e(T2,g2)^sx e(v,w)^-sa e(v,g2)^-sd (e(T2,w)/e(g1,g2))^c == R2,
  // folded by pairing base: e(T2^sx v^-sd g1^-c, g2) * e(v^-sa T2^c, w).
  // Both G2 arguments are fixed, so their Miller-loop lines come
  // precomputed.
  const std::pair<curve::G1, const curve::G2Prepared*> r2_pairs[] = {
      {curve::g1_msm<3>(
           {sig.t2, bases.v, bn.g1_gen},
           {sig.s_x.to_u256(), (-sig.s_delta).to_u256(), neg_c}),
       &pgpk.g2},
      {curve::g1_msm<2>({sig.t2, bases.v},
                        {c.to_u256(), (-sig.s_alpha).to_u256()}),
       &pgpk.w}};
  const GT r2 = curve::multi_pairing(r2_pairs);
  count(ops, &OpCounters::g1_exp, 5);
  count(ops, &OpCounters::pairings, 2);
  return r2 == sig.r2;
}

bool verify_proof(const GroupPublicKey& gpk, BytesView message,
                  const Signature& sig, OpCounters* ops) {
  // Reference path, deliberately left as straight-line exponentiations and
  // unprepared pairings: it is the differential oracle the prepared hot
  // path is tested bit-identical against.
  const auto& bn = Bn254::get();
  if (sig.t1.is_infinity() || sig.t2.is_infinity()) return false;
  if (!curve::gt_in_cyclotomic_subgroup(sig.r2)) return false;

  const SignatureBases bases = derive_bases(gpk, message, sig, ops);
  const Fr c = challenge(gpk, message, sig, sig.r1, sig.r2, sig.r3, sig.r4);

  const G1 r1 = bases.u * sig.s_alpha - sig.t1 * c;
  count(ops, &OpCounters::g1_exp, 2);
  if (!(r1 == sig.r1)) return false;
  const G1 r3 = sig.t1 * sig.s_x - bases.u * sig.s_delta;
  count(ops, &OpCounters::g1_exp, 2);
  if (!(r3 == sig.r3)) return false;
  const G2 r4 = bases.v_hat * sig.s_alpha - sig.t_hat * c;
  count(ops, &OpCounters::g2_exp, 2);
  if (!(r4 == sig.r4)) return false;
  const GT r2 = curve::multi_pairing(
      {{sig.t2 * sig.s_x - bases.v * sig.s_delta - bn.g1_gen * c,
        bn.g2_gen},
       {sig.t2 * c - bases.v * sig.s_alpha, gpk.w}});
  count(ops, &OpCounters::g1_exp, 5);
  count(ops, &OpCounters::pairings, 2);
  return r2 == sig.r2;
}

/// Everything prepare() derives for one batch element, plus its
/// randomizers. Each pool worker writes only its own entry.
struct BatchVerifier::Prep {
  bool prepared = false;
  /// T1/T2 finite and R2 in the cyclotomic subgroup. Items failing this are
  /// rejected without equations — exactly as sequential verify_proof does —
  /// and never enter a combined check.
  bool format_ok = false;
  Fr c;  // recomputed Fiat-Shamir challenge
  curve::SignatureBases bases;
  G1 a, b;  // Eq.2's two G1 combinations (paired with prepared g2 / w)
  std::uint64_t rho1 = 0, rho2 = 0, rho3 = 0, rho4 = 0;
};

BatchVerifier::BatchVerifier(const PreparedGroupPublicKey& pgpk,
                             std::span<const BatchItem> items, BytesView salt)
    : pgpk_(pgpk),
      items_(items.begin(), items.end()),
      prep_(items_.size()),
      results_(items_.size(), 0) {
  // The randomizers are derived AFTER the whole batch is fixed: the DRBG
  // seed binds the verifier's salt, the key, and every (message, signature)
  // byte. An adversary submitting signatures therefore commits to its
  // forgeries before the weights exist, and under a secret salt it cannot
  // predict them at all — crafted cross-signature cancellations (which
  // would fool an UNrandomized sum) survive the fold only by guessing
  // 64-bit weights. Same salt + same batch => same weights, so seeded
  // simulation runs stay reproducible.
  Writer w;
  w.bytes(as_bytes("peace/groupsig/batch-verify/v1"));
  w.bytes(salt);
  w.bytes(pgpk_.gpk.to_bytes());
  w.u64(items_.size());
  for (const BatchItem& item : items_) {
    w.bytes(item.message);
    w.bytes(item.sig->to_bytes());
  }
  crypto::Drbg drbg(w.data());
  const math::BigInt& h = Bn254::get().final_exp_hard;  // Phi_12(p) / r
  const math::BigInt one_bi(1);
  for (Prep& p : prep_) {
    const auto draw_nonzero = [&drbg] {
      std::uint64_t v;
      do {
        v = drbg.next_u64();
      } while (v == 0);
      return v;
    };
    p.rho1 = draw_nonzero();
    p.rho3 = draw_nonzero();
    p.rho4 = draw_nonzero();
    // The GT randomizer is additionally drawn coprime to the cyclotomic
    // cofactor h = Phi_12(p)/r (h has no prime factor below 2^24, so a
    // redraw is a ~2^-19 event): a wire-valid R2 deviates from the true
    // commitment by some delta in the cyclotomic subgroup, of order
    // dividing r * h, and rho2 annihilates it only if ord(delta) | rho2.
    // With rho2 nonzero below 2^64 < r and gcd(rho2, h) = 1 that forces
    // delta = 1 — a SINGLE bad Eq.2 deterministically fails the combined
    // check (docs/CRYPTO.md §4).
    do {
      p.rho2 = draw_nonzero();
    } while (!(math::BigInt::gcd(math::BigInt(p.rho2), h) == one_bi));
  }
}

BatchVerifier::~BatchVerifier() = default;

void BatchVerifier::prepare(std::size_t i, OpCounters* ops) {
  const auto& bn = Bn254::get();
  Prep& p = prep_[i];
  if (p.prepared) return;
  p.prepared = true;
  obs::Span span("batch.prepare", "groupsig");
  span.arg("index", i);
  const Signature& sig = *items_[i].sig;
  // Same gates as sequential verify_proof, same rejection.
  if (sig.t1.is_infinity() || sig.t2.is_infinity()) return;
  if (!curve::gt_in_cyclotomic_subgroup(sig.r2)) return;
  p.bases = derive_bases(pgpk_.gpk, items_[i].message, sig, ops);
  p.c = challenge(pgpk_.gpk, items_[i].message, sig, sig.r1, sig.r2, sig.r3,
                  sig.r4);
  // Eq.2's G1 combinations against the prepared bases, identical to the
  // ones verify_proof builds — the bisection leaf and the GT fold both
  // consume them.
  const curve::U256 neg_c = (-p.c).to_u256();
  p.a = curve::g1_msm<3>(
      {sig.t2, p.bases.v, bn.g1_gen},
      {sig.s_x.to_u256(), (-sig.s_delta).to_u256(), neg_c});
  p.b = curve::g1_msm<2>({sig.t2, p.bases.v},
                         {p.c.to_u256(), (-sig.s_alpha).to_u256()});
  count(ops, &OpCounters::g1_exp, 5);
  p.format_ok = true;
}

bool BatchVerifier::check_one(std::size_t i, OpCounters* ops) {
  const Prep& p = prep_[i];
  if (!p.format_ok) return false;
  obs::Span span("batch.leaf", "groupsig");
  span.arg("index", i);
  const Signature& sig = *items_[i].sig;
  // The exact sequential equation checks (same combinations, same order as
  // verify_proof), so leaf verdicts are bit-identical to one-at-a-time
  // verification.
  const curve::U256 neg_c = (-p.c).to_u256();
  const G1 r1 =
      curve::g1_msm<2>({p.bases.u, sig.t1}, {sig.s_alpha.to_u256(), neg_c});
  count(ops, &OpCounters::g1_exp, 2);
  if (!(r1 == sig.r1)) return false;
  const G1 r3 = curve::g1_msm<2>(
      {sig.t1, p.bases.u}, {sig.s_x.to_u256(), (-sig.s_delta).to_u256()});
  count(ops, &OpCounters::g1_exp, 2);
  if (!(r3 == sig.r3)) return false;
  const G2 r4 = curve::g2_msm<2>({p.bases.v_hat, sig.t_hat},
                                 {sig.s_alpha.to_u256(), neg_c});
  count(ops, &OpCounters::g2_exp, 2);
  if (!(r4 == sig.r4)) return false;
  curve::MillerAccumulator acc;
  acc.add(p.a, pgpk_.g2);
  acc.add(p.b, pgpk_.w);
  count(ops, &OpCounters::pairings, 2);
  return acc.finalize() == sig.r2;
}

bool BatchVerifier::check_range(std::size_t lo, std::size_t hi,
                                OpCounters* ops) {
  std::vector<std::size_t> active;
  active.reserve(hi - lo);
  for (std::size_t i = lo; i < hi; ++i)
    if (prep_[i].format_ok) active.push_back(i);
  if (active.empty()) return true;
  obs::Span span("batch.fold", "groupsig");
  span.arg("lo", lo);
  span.arg("hi", hi);
  span.arg("active", active.size());

  using curve::U256;
  // Combined Eq.1 + Eq.3, one G1 multi-scalar sum. Per item i the residual
  //   rho1 * (u^sa T1^-c R1^-1) + rho3 * (T1^sx u^-sd R3^-1)
  // collapses onto four points; the total must be the identity.
  std::vector<G1> g1_pts;
  std::vector<U256> g1_sc;
  g1_pts.reserve(active.size() * 4);
  g1_sc.reserve(active.size() * 4);
  for (const std::size_t i : active) {
    const Prep& p = prep_[i];
    const Signature& sig = *items_[i].sig;
    const Fr rho1 = Fr::from_u64(p.rho1);
    const Fr rho3 = Fr::from_u64(p.rho3);
    g1_pts.push_back(p.bases.u);
    g1_sc.push_back((rho1 * sig.s_alpha - rho3 * sig.s_delta).to_u256());
    g1_pts.push_back(sig.t1);
    g1_sc.push_back((rho3 * sig.s_x - rho1 * p.c).to_u256());
    g1_pts.push_back(sig.r1);
    g1_sc.push_back((-rho1).to_u256());
    g1_pts.push_back(sig.r3);
    g1_sc.push_back((-rho3).to_u256());
  }
  count(ops, &OpCounters::g1_exp, 4 * active.size());
  if (!curve::g1_msm(std::span<const G1>(g1_pts),
                     std::span<const U256>(g1_sc))
           .is_infinity())
    return false;

  // Combined Eq.4, one G2 multi-scalar sum.
  std::vector<G2> g2_pts;
  std::vector<U256> g2_sc;
  g2_pts.reserve(active.size() * 3);
  g2_sc.reserve(active.size() * 3);
  for (const std::size_t i : active) {
    const Prep& p = prep_[i];
    const Signature& sig = *items_[i].sig;
    const Fr rho4 = Fr::from_u64(p.rho4);
    g2_pts.push_back(p.bases.v_hat);
    g2_sc.push_back((rho4 * sig.s_alpha).to_u256());
    g2_pts.push_back(sig.t_hat);
    g2_sc.push_back((-(rho4 * p.c)).to_u256());
    g2_pts.push_back(sig.r4);
    g2_sc.push_back((-rho4).to_u256());
  }
  count(ops, &OpCounters::g2_exp, 3 * active.size());
  // GLS precondition: v_hat is hash-derived, t_hat and r4 are parse-checked.
  if (!curve::g2_msm(std::span<const G2>(g2_pts),
                     std::span<const U256>(g2_sc))
           .is_infinity())
    return false;

  // Combined Eq.2: by bilinearity,
  //   prod_i [ e(a_i, g2) e(b_i, w) ]^rho2_i
  //     == e(sum_i rho2_i a_i, g2) * e(sum_i rho2_i b_i, w),
  // so the whole batch costs two Miller loops over the PREPARED bases and
  // ONE final exponentiation, however many signatures it holds. The right
  // side folds the carried R2 powers under one shared cyclotomic squaring
  // chain.
  std::vector<G1> a_pts, b_pts;
  std::vector<U256> rho2_sc;
  std::vector<GT> r2s;
  std::vector<std::uint64_t> rho2s;
  a_pts.reserve(active.size());
  b_pts.reserve(active.size());
  rho2_sc.reserve(active.size());
  r2s.reserve(active.size());
  rho2s.reserve(active.size());
  for (const std::size_t i : active) {
    const Prep& p = prep_[i];
    a_pts.push_back(p.a);
    b_pts.push_back(p.b);
    rho2_sc.push_back(U256(p.rho2));
    r2s.push_back(items_[i].sig->r2);
    rho2s.push_back(p.rho2);
  }
  const G1 a_fold = curve::g1_msm(std::span<const G1>(a_pts),
                                  std::span<const U256>(rho2_sc));
  const G1 b_fold = curve::g1_msm(std::span<const G1>(b_pts),
                                  std::span<const U256>(rho2_sc));
  count(ops, &OpCounters::g1_exp, 2 * active.size());
  curve::MillerAccumulator acc;
  acc.add(a_fold, pgpk_.g2);
  acc.add(b_fold, pgpk_.w);
  count(ops, &OpCounters::pairings, 2);
  const GT lhs = acc.finalize();
  const GT rhs = curve::gt_multi_pow_unitary(
      std::span<const GT>(r2s), std::span<const std::uint64_t>(rho2s));
  count(ops, &OpCounters::gt_exp, active.size());
  return lhs == rhs;
}

void BatchVerifier::bisect(std::size_t lo, std::size_t hi, OpCounters* ops) {
  std::size_t n_active = 0;
  std::size_t last_active = 0;
  for (std::size_t i = lo; i < hi; ++i) {
    if (prep_[i].format_ok) {
      ++n_active;
      last_active = i;
    }
  }
  if (n_active == 0) return;  // all already rejected on format
  if (n_active == 1) {
    // Leaf: no randomization — the exact sequential checks decide, so
    // attribution is bit-identical to one-at-a-time verification.
    results_[last_active] = check_one(last_active, ops) ? 1 : 0;
    return;
  }
  if (check_range(lo, hi, ops)) {
    for (std::size_t i = lo; i < hi; ++i)
      if (prep_[i].format_ok) results_[i] = 1;
    return;
  }
  const std::size_t mid = lo + (hi - lo) / 2;
  bisect(lo, mid, ops);
  bisect(mid, hi, ops);
}

const std::vector<char>& BatchVerifier::finalize(OpCounters* ops) {
  if (finalized_) return results_;
  obs::Span span("batch.finalize", "groupsig");
  span.arg("batch_size", items_.size());
  for (std::size_t i = 0; i < items_.size(); ++i) prepare(i, ops);
  bisect(0, items_.size(), ops);
  finalized_ = true;
  return results_;
}

std::vector<char> batch_verify_proof(const PreparedGroupPublicKey& pgpk,
                                     std::span<const BatchItem> items,
                                     BytesView salt, OpCounters* ops) {
  BatchVerifier verifier(pgpk, items, salt);
  return verifier.finalize(ops);
}

bool matches_token(const GroupPublicKey& gpk, BytesView message,
                   const Signature& sig, const RevocationToken& token,
                   OpCounters* ops) {
  const SignatureBases bases = derive_bases(gpk, message, sig, ops);
  // Eq.3: e(T2 / A, v_hat) == e(v, T_hat), i.e.
  // e(T2 - A, v_hat) * e(-v, T_hat) == 1.
  count(ops, &OpCounters::pairings, 2);
  return curve::multi_pairing(
             {{sig.t2 - token.a, bases.v_hat}, {-bases.v, sig.t_hat}})
      .is_one();
}

PreparedBases prepare_bases(const GroupPublicKey& gpk, BytesView message,
                            const Signature& sig, OpCounters* ops) {
  PreparedBases out;
  out.bases = derive_bases(gpk, message, sig, ops);
  out.v_hat = curve::G2Prepared(out.bases.v_hat);
  return out;
}

bool matches_token(const PreparedBases& prepared, const Signature& sig,
                   const RevocationToken& token, OpCounters* ops) {
  count(ops, &OpCounters::pairings, 2);
  // Same fused product as the re-deriving overload; v_hat consumes its
  // stored lines, T_hat (used once) runs the twist arithmetic inline.
  const std::pair<curve::G1, const curve::G2Prepared*> prep[] = {
      {sig.t2 - token.a, &prepared.v_hat}};
  const std::pair<curve::G1, curve::G2> unprep[] = {
      {-prepared.bases.v, sig.t_hat}};
  return curve::multi_pairing(prep, unprep).is_one();
}

TokenScan::TokenScan(const PreparedBases& prepared, const Signature& sig,
                     OpCounters* ops)
    : sig_(sig),
      ops_(ops),
      // e(-v, T_hat) is token-independent: one Miller loop here covers the
      // second factor of every token's fused product in the matches_token
      // formulation e(T2 - A, v_hat) * e(-v, T_hat) == 1.
      t_hat_factor_(curve::miller_loop(-prepared.bases.v, sig.t_hat)),
      v_hat_(&prepared.v_hat) {}

void TokenScan::add(const RevocationToken& token) {
  count(ops_, &OpCounters::pairings, 2);
  products_.push_back(curve::miller_loop(sig_.t2 - token.a, *v_hat_) *
                      t_hat_factor_);
}

std::size_t TokenScan::first_match(const std::atomic<bool>* stop) const {
  if (products_.empty()) return npos;
  // One shared Fp12 inversion for the whole scan; field inverses are unique,
  // so each element equals its per-token easy part exactly.
  const std::vector<curve::Fp12> easy = curve::final_exp_easy_batch(products_);
  for (std::size_t i = 0; i < easy.size(); ++i) {
    if (stop != nullptr && stop->load(std::memory_order_relaxed)) return npos;
    if (curve::final_exp_hard(easy[i]).is_one()) return i;
  }
  return npos;
}

std::size_t scan_tokens(const PreparedBases& prepared, const Signature& sig,
                        std::span<const RevocationToken> url, OpCounters* ops) {
  if (url.empty()) return TokenScan::npos;
  TokenScan scan(prepared, sig, ops);
  for (const RevocationToken& token : url) scan.add(token);
  return scan.first_match();
}

bool verify(const GroupPublicKey& gpk, BytesView message, const Signature& sig,
            std::span<const RevocationToken> url, OpCounters* ops) {
  if (!verify_proof(gpk, message, sig, ops)) return false;
  for (const RevocationToken& token : url) {
    if (matches_token(gpk, message, sig, token, ops)) return false;
  }
  return true;
}

bool verify(const PreparedGroupPublicKey& pgpk, BytesView message,
            const Signature& sig, std::span<const RevocationToken> url,
            OpCounters* ops) {
  if (!verify_proof(pgpk, message, sig, ops)) return false;
  if (url.empty()) return true;
  // Eq.3 pairs against the per-message base v_hat — not a fixed argument
  // the prepared key could cover — so prepare it once here and run the
  // batched scan: one Miller loop per token against the prepared lines,
  // one shared e(-v, T_hat) factor, one shared easy-part inversion.
  const PreparedBases prepared = prepare_bases(pgpk.gpk, message, sig, ops);
  return scan_tokens(prepared, sig, url, ops) == TokenScan::npos;
}

std::string EpochRevocationIndex::tag_for(const G1& a) const {
  return to_hex(curve::pairing(a, v_hat_prep_).to_bytes());
}

EpochRevocationIndex::EpochRevocationIndex(const GroupPublicKey& gpk,
                                           Epoch epoch,
                                           std::span<const RevocationToken> url)
    : epoch_(epoch) {
  if (epoch == 0) throw Error("groupsig: epoch index needs epoch != 0");
  Signature partial;
  partial.epoch = epoch;
  const SignatureBases bases = derive_bases(gpk, {}, partial, nullptr);
  v_ = bases.v;
  v_hat_ = bases.v_hat;
  v_hat_prep_ = curve::G2Prepared(v_hat_);
  for (const RevocationToken& token : url) add_token(token);
}

bool EpochRevocationIndex::add_token(const RevocationToken& token) {
  const std::string key = to_hex(token.to_bytes());
  if (tokens_.contains(key)) return false;
  Entry entry{token.a, tag_for(token.a)};
  tags_.insert(entry.tag);
  tokens_.emplace(key, std::move(entry));
  return true;
}

bool EpochRevocationIndex::remove_token(const RevocationToken& token) {
  const auto it = tokens_.find(to_hex(token.to_bytes()));
  if (it == tokens_.end()) return false;
  tags_.erase(it->second.tag);
  tokens_.erase(it);
  return true;
}

bool EpochRevocationIndex::contains(const RevocationToken& token) const {
  return tokens_.contains(to_hex(token.to_bytes()));
}

void EpochRevocationIndex::roll_epoch(const GroupPublicKey& gpk, Epoch epoch) {
  if (epoch == 0) throw Error("groupsig: epoch index needs epoch != 0");
  if (epoch == epoch_) return;
  Signature partial;
  partial.epoch = epoch;
  const SignatureBases bases = derive_bases(gpk, {}, partial, nullptr);
  epoch_ = epoch;
  v_ = bases.v;
  v_hat_ = bases.v_hat;
  v_hat_prep_ = curve::G2Prepared(v_hat_);
  tags_.clear();
  for (auto& [key, entry] : tokens_) {
    entry.tag = tag_for(entry.a);
    tags_.insert(entry.tag);
  }
}

bool EpochRevocationIndex::is_revoked(const Signature& sig,
                                      OpCounters* ops) const {
  // K = e(T2, v_hat) / e(v, T_hat) = e(A, v_hat): constant per member per
  // epoch — the linkability the paper trades for O(1) revocation checking.
  // v_hat is fixed per epoch (prepared at rebuild) and the quotient folds
  // into one product of Miller loops with a single final exponentiation;
  // that is legal because the final exponentiation x -> x^((p^12-1)/r) is a
  // homomorphism, so FE(m1) * FE(m2)^-1 == FE(m1 * ML(-v, T_hat)).
  if (sig.epoch != epoch_) throw Error("groupsig: epoch mismatch");
  count(ops, &OpCounters::pairings, 2);
  // T_hat is used exactly once, so it runs the Miller loop inline via the
  // mixed overload — building a G2Prepared line table for it would spend
  // the full twist arithmetic plus a heap allocation on a one-shot point.
  const std::pair<curve::G1, const curve::G2Prepared*> prep[] = {
      {sig.t2, &v_hat_prep_}};
  const std::pair<curve::G1, curve::G2> unprep[] = {{-v_, sig.t_hat}};
  const GT k = curve::multi_pairing(prep, unprep);
  return tags_.contains(to_hex(k.to_bytes()));
}

bool verify_fast(const GroupPublicKey& gpk, BytesView message,
                 const Signature& sig, const EpochRevocationIndex& index,
                 OpCounters* ops) {
  if (sig.epoch != index.epoch()) return false;
  if (!verify_proof(gpk, message, sig, ops)) return false;
  return !index.is_revoked(sig, ops);
}

GT epoch_linkability_tag(const GroupPublicKey& gpk, const Signature& sig) {
  const SignatureBases bases = derive_bases(gpk, {}, sig, nullptr);
  return curve::pairing(sig.t2, bases.v_hat) *
         curve::pairing(bases.v, sig.t_hat).unitary_inverse();
}

}  // namespace peace::groupsig
