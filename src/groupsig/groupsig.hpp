// The paper's core primitive: a variation of the Boneh-Shacham (CCS'04)
// short group signature with verifier-local revocation (VLR), modified so
// that every member key of user group i embeds a per-group secret grp_i:
//
//     A_{i,j} = g1^(1 / (gamma + grp_i + x_j)),   gsk = (A_{i,j}, grp_i, x_j)
//
// The signature is a signature proof of knowledge of an SDH pair, carried by
// (T1, T2) = (u^alpha, A v^alpha) over per-signature hashed bases.
//
// Type-3 adaptation (documented in DESIGN.md): the paper derives its bases
// via an isomorphism psi: G2 -> G1 that does not exist on any curve that
// also supports hashing into G2 (Galbraith-Paterson-Smart 2008). We hash
// u, v directly into G1 plus one extra base v_hat in G2, and the signature
// carries T_hat = v_hat^alpha bound into the proof. The revocation /
// opening check becomes
//
//     e(T2 / A, v_hat)  ==  e(v, T_hat)                      (paper Eq.3)
//
// preserving the paper's cost shape of 2 pairings per revocation token.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "crypto/drbg.hpp"
#include "curve/hash_to_curve.hpp"
#include "curve/pairing.hpp"

namespace peace::groupsig {

using curve::Fr;
using curve::G1;
using curve::G2;
using curve::GT;

/// Instrumentation for the paper's operation-count claims (Sec. V.C):
/// "signature generation requires about 8 exponentiations and 2 bilinear map
/// computations; verification takes 6 exponentiations and 3 + 2|URL|
/// computations of the bilinear map."
struct OpCounters {
  std::uint64_t g1_exp = 0;
  std::uint64_t g2_exp = 0;
  std::uint64_t gt_exp = 0;
  std::uint64_t pairings = 0;
  std::uint64_t hash_to_group = 0;

  std::uint64_t total_exp() const { return g1_exp + g2_exp + gt_exp; }
  void reset() { *this = OpCounters{}; }
  /// Accumulates another counter set (used to fold per-worker counters from
  /// parallel verification back into one aggregate).
  void merge(const OpCounters& o) {
    g1_exp += o.g1_exp;
    g2_exp += o.g2_exp;
    gt_exp += o.gt_exp;
    pairings += o.pairings;
    hash_to_group += o.hash_to_group;
  }
};

struct GroupPublicKey {
  G2 w;  // g2^gamma (g1, g2 are the fixed BN254 generators)

  Bytes to_bytes() const;
  static GroupPublicKey from_bytes(BytesView data);
  bool operator==(const GroupPublicKey& o) const { return w == o.w; }
};

/// A group public key with the fixed G2 pairing arguments of the verifier's
/// hot path (the BN generator g2 and w = g2^gamma) prepared once. Routers
/// build this at key load / parameter install and reuse it for every
/// verification; each verification then pays only line evaluations and the
/// shared final exponentiation instead of full twist-point Miller loops.
struct PreparedGroupPublicKey {
  GroupPublicKey gpk;
  curve::G2Prepared g2;  // prepared BN generator
  curve::G2Prepared w;   // prepared gpk.w

  PreparedGroupPublicKey() = default;
  explicit PreparedGroupPublicKey(const GroupPublicKey& key);
  bool operator==(const PreparedGroupPublicKey& o) const {
    return gpk == o.gpk;
  }
};

/// gsk[i, j]: what a network user holds after setup.
struct MemberKey {
  G1 a;    // A_{i,j}
  Fr grp;  // grp_i, shared by all members of user group i
  Fr x;    // x_j, member-specific

  /// The SDH relation A^(gamma + grp + x) = g1, checkable publicly.
  bool is_valid(const GroupPublicKey& gpk) const;
};

/// grt[i, j] = A_{i,j}: lets its holder test whether a signature was made
/// by the corresponding member key (Eq.3).
struct RevocationToken {
  G1 a;

  Bytes to_bytes() const;
  static RevocationToken from_bytes(BytesView data);
  bool operator==(const RevocationToken& o) const { return a == o.a; }
};

/// Epoch 0 means per-message bases (full unlinkability). A nonzero epoch
/// derives the bases from the epoch number alone, enabling the constant-time
/// revocation check of Sec. V.C at the cost of linkability within the epoch.
using Epoch = std::uint64_t;

/// The signature carries the Schnorr COMMITMENTS (R1, R2, R3, R4) rather
/// than the Fiat-Shamir challenge c. The two forms are interconvertible
/// proofs of the same statement — the verifier recomputes c = H(..., R1,
/// R2, R3, R4) from the carried values and checks the four verification
/// equations directly — but only the commitment-carrying form batches:
/// with c carried, verification must recompute R2 exactly (one final
/// exponentiation per signature, unavoidable, because R2 feeds a hash);
/// with the R's carried, verification is pure group equations
///
///     u^s_alpha  == R1 * T1^c                               (Eq.1)
///     e(T2,g2)^s_x e(v,w)^-s_alpha e(v,g2)^-s_delta
///         (e(T2,w)/e(g1,g2))^c  == R2                       (Eq.2)
///     T1^s_x     == R3 * u^s_delta                          (Eq.3)
///     v_hat^s_alpha == R4 * T_hat^c                         (Eq.4)
///
/// which fold across signatures under small random exponents with ONE
/// shared final exponentiation for the whole batch (docs/CRYPTO.md §4).
/// The cost is wire size: R2 is a full GT element (384 bytes).
struct Signature {
  Epoch epoch = 0;
  Fr nonce;  // the paper's per-signature nonce "r" feeding H0
  G1 t1;     // u^alpha
  G1 t2;     // A v^alpha
  G2 t_hat;  // v_hat^alpha (Type-3 carrier)
  G1 r1;     // u^r_alpha
  GT r2;     // the pairing commitment (see Eq.2)
  G1 r3;     // T1^r_x u^-r_delta
  G2 r4;     // v_hat^r_alpha
  Fr s_alpha, s_x, s_delta;

  Bytes to_bytes() const;
  /// Throws on malformed encodings; additionally enforces that T1, T2,
  /// T_hat are non-identity and that R2 lies in the cyclotomic subgroup of
  /// Fp12 (a necessary condition for being a pairing value, and the
  /// precondition for the cyclotomic-squaring powers of the batch check).
  static Signature from_bytes(BytesView data);
  bool operator==(const Signature&) const = default;
};

/// Serialized signature size:
/// epoch(8) + nonce(32) + 2 G1 + 1 G2 + R1(G1) + R2(GT) + R3(G1) + R4(G2)
/// + 3 Fr = 782 bytes.
constexpr std::size_t kSignatureSize =
    8 + 32 + 2 * curve::kG1CompressedSize + curve::kG2CompressedSize +
    curve::kG1CompressedSize + curve::kGtSize + curve::kG1CompressedSize +
    curve::kG2CompressedSize + 3 * 32;

/// Group-manager/issuer role (the network operator in PEACE): holds the
/// master secret gamma and mints member keys.
class Issuer {
 public:
  static Issuer create(crypto::Drbg& rng);
  /// Reconstructs from a stored master secret.
  static Issuer from_secret(const Fr& gamma);

  const GroupPublicKey& gpk() const { return gpk_; }
  const Fr& gamma() const { return gamma_; }

  /// Draws a fresh per-user-group secret grp_i.
  Fr new_group_secret(crypto::Drbg& rng) const;

  /// Step 3 of scheme setup: pick x with gamma + grp + x != 0 and compute
  /// A = g1^(1/(gamma + grp + x)).
  MemberKey issue(const Fr& grp, crypto::Drbg& rng) const;

  /// Reconstructs a member key from stored (grp, x) — used to model the
  /// paper's split knowledge (GM knows (grp, x) but not A; only NO and the
  /// user can recompute A).
  MemberKey derive(const Fr& grp, const Fr& x) const;

 private:
  Fr gamma_;
  GroupPublicKey gpk_;
};

/// Signs `message` under the member key. Steps 2.2.1) - 2.2.4) of the paper.
Signature sign(const GroupPublicKey& gpk, const MemberKey& gsk,
               BytesView message, crypto::Drbg& rng, Epoch epoch = 0,
               OpCounters* ops = nullptr);

/// Checks the signature proof only (paper step 3.2; no revocation scan).
bool verify_proof(const GroupPublicKey& gpk, BytesView message,
                  const Signature& sig, OpCounters* ops = nullptr);

/// Hot-path variant: identical accept/reject behaviour, but the two R2~
/// pairings reuse the prepared g2 / w Miller-loop lines. Thread-safe for
/// concurrent calls on one shared PreparedGroupPublicKey.
bool verify_proof(const PreparedGroupPublicKey& pgpk, BytesView message,
                  const Signature& sig, OpCounters* ops = nullptr);

/// Eq.3: does `token` correspond to the signer of `sig`? The message (or
/// the epoch stored in the signature) is needed to re-derive the hashed
/// bases — exactly as the paper's audit retrieves message (M.2) from the
/// network log before scanning grt.
bool matches_token(const GroupPublicKey& gpk, BytesView message,
                   const Signature& sig, const RevocationToken& token,
                   OpCounters* ops = nullptr);

/// The hashed bases of one signature with the revocation base v_hat's
/// Miller-loop lines prepared once. Every Eq.3 check pairs against the same
/// v_hat, so a verifier scanning a |URL|-long list (or NO scanning grt)
/// derives this once per message and amortises the G2 twist arithmetic over
/// the whole scan instead of re-walking it 2|URL| times.
struct PreparedBases {
  curve::SignatureBases bases;
  curve::G2Prepared v_hat;
};

/// Derives (and prepares) the bases of `sig` over `message` — the one-time
/// per-scan cost of the amortised revocation check below.
PreparedBases prepare_bases(const GroupPublicKey& gpk, BytesView message,
                            const Signature& sig, OpCounters* ops = nullptr);

/// Eq.3 against pre-derived bases: identical accept/reject behaviour to the
/// re-deriving overload above, but no hashing and no per-call G2 Miller
/// walk for v_hat — the signature's one-shot T_hat runs inline via the
/// mixed multi_pairing, so no G2Prepared is ever built per token.
bool matches_token(const PreparedBases& prepared, const Signature& sig,
                   const RevocationToken& token, OpCounters* ops = nullptr);

/// Batched Eq.3 scan of one signature against many revocation tokens.
///
/// Two costs of the per-token matches_token loop are constant across a scan
/// and get hoisted here:
///
///  * the second Miller factor e(-v, T_hat) depends only on the signature —
///    the constructor computes it ONCE and every token reuses it, so a scan
///    pays one Miller loop per token (against the prepared v_hat lines)
///    instead of two;
///  * the Fp12 inversion inside each final exponentiation's easy part —
///    first_match() runs the Montgomery-batched easy part over all
///    accumulated products, so an n-token scan pays exactly 1 Fp12 inversion
///    (curve::final_exp_easy_batch) instead of n.
///
/// Verdicts are bit-identical to calling matches_token per token: the
/// factored Miller product equals the fused one as an exact field element,
/// and the batched easy part reproduces each per-element easy part exactly
/// (see docs/CRYPTO.md §5). Per-token hard parts still run individually,
/// with early exit on the first match — the same short-circuit the
/// sequential loop has.
///
/// OpCounters keep the 2-pairings-per-token convention of matches_token so
/// cost-analysis tests compare like for like across scan implementations.
class TokenScan {
 public:
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  /// `prepared` and `sig` must outlive the scan.
  TokenScan(const PreparedBases& prepared, const Signature& sig,
            OpCounters* ops = nullptr);

  /// Accumulates the Miller product for one token (no final exponentiation
  /// yet). Counts 2 OpCounters pairings, matching matches_token.
  void add(const RevocationToken& token);
  std::size_t size() const { return products_.size(); }

  /// Index of the first added token matching the signer, or npos. Pays the
  /// single batched easy part plus one hard part per token up to and
  /// including the first match.
  ///
  /// `stop` (optional) is a cooperative cancellation flag polled before each
  /// per-token hard part: when it reads true the scan returns npos without
  /// examining the remaining tokens. A sharded scan sets it when another
  /// shard has already found a match — the overall verdict is decided, so a
  /// cancelled shard's npos is never the final answer.
  std::size_t first_match(const std::atomic<bool>* stop = nullptr) const;

 private:
  const Signature& sig_;
  OpCounters* ops_;
  curve::Fp12 t_hat_factor_;  // miller_loop(-v, T_hat), shared by all tokens
  curve::G2Prepared const* v_hat_;
  std::vector<curve::Fp12> products_;
};

/// Convenience wrapper: scan `url` in order, return the index of the first
/// matching token or TokenScan::npos. Equivalent to (and the batched
/// replacement for) the matches_token loop of the seed scan path.
std::size_t scan_tokens(const PreparedBases& prepared, const Signature& sig,
                        std::span<const RevocationToken> url,
                        OpCounters* ops = nullptr);

/// One element of a verification batch. The message bytes and the
/// signature must stay alive until the batch is finalized.
struct BatchItem {
  BytesView message;
  const Signature* sig = nullptr;
};

/// Randomized batch verification of signature proofs (no revocation scan):
/// the per-signature verification equations are folded into three combined
/// checks — one G1 multi-scalar sum (Eq.1 and Eq.3), one G2 multi-scalar
/// sum (Eq.4), and one pairing equation (Eq.2) with a single fused Miller
/// accumulation over the prepared bases and ONE final exponentiation for
/// the whole batch — each signature weighted by independent nonzero 64-bit
/// randomizers drawn from a DRBG seeded over (salt, gpk, the entire batch).
/// A forged signature can only survive the fold by predicting those
/// randomizers (probability ~2^-64 per batch under a secret salt; see
/// docs/CRYPTO.md §4 for the soundness argument, including why the GT
/// randomizers are drawn coprime to the cyclotomic cofactor).
///
/// On combined-check failure the batch is bisected recursively; leaves
/// (single signatures) run the exact per-equation sequential checks, so the
/// returned accept/reject vector is bit-identical to calling verify_proof
/// on every element — bad signatures are attributed individually, never
/// just "batch failed".
///
/// Deterministic: same key, items, and salt => same randomizers, same
/// transcript. Seeded simulations stay reproducible; live verifiers pass a
/// per-verifier secret salt so adversaries cannot predict the randomizers.
class BatchVerifier {
 public:
  BatchVerifier(const PreparedGroupPublicKey& pgpk,
                std::span<const BatchItem> items, BytesView salt);
  ~BatchVerifier();  // out of line: Prep is incomplete here
  BatchVerifier(const BatchVerifier&) = delete;
  BatchVerifier& operator=(const BatchVerifier&) = delete;

  std::size_t size() const { return items_.size(); }

  /// Phase 1 — per-item preparation: base derivation, challenge hash, and
  /// the G1 combinations feeding the folds. Thread-safe for distinct `i`
  /// (the router's VerifyPool fans this out); touches no shared state.
  void prepare(std::size_t i, OpCounters* ops = nullptr);

  /// Phase 2 — combined checks plus bisection fallback, on the calling
  /// thread. Items not yet prepared are prepared inline, so a pure
  /// sequential caller may skip phase 1. Idempotent after the first call.
  /// Returns one accept flag per item, positionally.
  const std::vector<char>& finalize(OpCounters* ops = nullptr);

  const std::vector<char>& results() const { return results_; }

 private:
  struct Prep;
  /// The three combined randomized checks over the format-ok items of
  /// indices [lo, hi). True when every folded equation holds.
  bool check_range(std::size_t lo, std::size_t hi, OpCounters* ops);
  /// Exact sequential equation checks for one item (the bisection leaf).
  bool check_one(std::size_t i, OpCounters* ops);
  void bisect(std::size_t lo, std::size_t hi, OpCounters* ops);

  const PreparedGroupPublicKey& pgpk_;
  std::vector<BatchItem> items_;
  std::vector<Prep> prep_;
  std::vector<char> results_;
  bool finalized_ = false;
};

/// Convenience wrapper: prepare every item and finalize, sequentially.
/// results[i] == verify_proof(pgpk, items[i].message, *items[i].sig).
std::vector<char> batch_verify_proof(const PreparedGroupPublicKey& pgpk,
                                     std::span<const BatchItem> items,
                                     BytesView salt,
                                     OpCounters* ops = nullptr);

/// Full verification (paper steps 3.2 + 3.3): proof plus a linear scan of
/// the revocation list.
bool verify(const GroupPublicKey& gpk, BytesView message, const Signature& sig,
            std::span<const RevocationToken> url, OpCounters* ops = nullptr);

/// Full verification against a prepared key. Bit-identical results to the
/// unprepared overload.
bool verify(const PreparedGroupPublicKey& pgpk, BytesView message,
            const Signature& sig, std::span<const RevocationToken> url,
            OpCounters* ops = nullptr);

/// The constant-time revocation index for epoch-based signatures (the
/// "far more efficient revocation check" of Sec. V.C). Lookup cost is
/// 2 pairings + a hash probe, independent of |URL|.
///
/// The index is incremental: applying a delta revocation list re-tags only
/// the added tokens (one pairing each; removals are free), and an epoch
/// roll re-tags the stored tokens in place against the new epoch base —
/// callers never rebuild from the raw URL once an index exists. The
/// per-epoch v_hat stays prepared across the epoch, so is_revoked never
/// constructs a one-shot G2Prepared. Copyable, so snapshot publishers can
/// clone an index cheaply (hash-map copy, zero pairings) before applying a
/// delta to the copy.
class EpochRevocationIndex {
 public:
  EpochRevocationIndex(const GroupPublicKey& gpk, Epoch epoch,
                       std::span<const RevocationToken> url);

  Epoch epoch() const { return epoch_; }
  std::size_t size() const { return tokens_.size(); }

  /// Inserts one token (one pairing). Duplicate tokens are idempotent:
  /// returns false and changes nothing when already indexed.
  bool add_token(const RevocationToken& token);
  /// Removes one token (no pairings). Returns false when absent.
  bool remove_token(const RevocationToken& token);
  bool contains(const RevocationToken& token) const;

  /// Moves the index to a new epoch: re-derives the epoch bases once and
  /// re-tags the stored tokens (one pairing per token — unavoidable, the
  /// tags e(A_i, v_hat_epoch) are epoch-dependent by design).
  void roll_epoch(const GroupPublicKey& gpk, Epoch epoch);

  /// True if the signer of `sig` is revoked. `sig.epoch` must match.
  bool is_revoked(const Signature& sig, OpCounters* ops = nullptr) const;

 private:
  std::string tag_for(const G1& a) const;

  Epoch epoch_;
  G1 v_;
  G2 v_hat_;
  curve::G2Prepared v_hat_prep_;  // v_hat is fixed for the whole epoch
  /// token bytes (hex) -> (point, tag hex); the separate tag set gives the
  /// O(1) is_revoked probe while the map supports delta removals and rolls.
  struct Entry {
    G1 a;
    std::string tag;
  };
  std::unordered_map<std::string, Entry> tokens_;
  std::unordered_set<std::string> tags_;  // hex of e(A_i, v_hat_epoch)
};

/// Epoch-mode verification with the constant-time index.
bool verify_fast(const GroupPublicKey& gpk, BytesView message,
                 const Signature& sig, const EpochRevocationIndex& index,
                 OpCounters* ops = nullptr);

/// The per-signature linkability tag e(A, v_hat) a verifier can derive in
/// epoch mode — exposed so tests can demonstrate the privacy trade-off the
/// paper mentions ("a little bit sacrifice on user privacy").
GT epoch_linkability_tag(const GroupPublicKey& gpk, const Signature& sig);

}  // namespace peace::groupsig
