#include "mesh/metro.hpp"

#include <algorithm>

#include "obs/health.hpp"
#include "obs/metrics.hpp"
#include "obs/sec_event.hpp"
#include "peace/metrics_export.hpp"

namespace peace::mesh {

ShardId MetroSimulation::add_shard(std::string name, const std::string& seed,
                                   RadioConfig radio,
                                   proto::ProtocolConfig proto_config,
                                   ReliabilityConfig reliability) {
  const ShardId id = static_cast<ShardId>(shards_.size());
  ShardConfig sc;
  sc.inbox_cap = config_.shard_inbox_cap;
  sc.frame_cap = config_.shard_frame_cap;
  sc.event_budget = config_.shard_event_budget;
  // The seed is used verbatim: a shard's DRBG stream depends only on its
  // own seed string, never on shard count or creation order — and a
  // single-shard metro seeded like a plain MeshNetwork draws the identical
  // stream (the bit-identity contract). Callers give each shard a distinct
  // seed (e.g. "metro/shard-3").
  shards_.push_back(std::make_unique<Shard>(id, std::move(name), sc,
                                            crypto::Drbg::from_string(seed),
                                            radio, proto_config, reliability));
  shard_links_.emplace_back();
  return id;
}

void MetroSimulation::connect_shards(ShardId a, ShardId b) {
  if (a == b || a >= shards_.size() || b >= shards_.size())
    throw Error("metro: bad shard link");
  auto link = [&](ShardId x, ShardId y) {
    auto& adj = shard_links_[x];
    // Sorted adjacency keeps the relay BFS deterministic.
    auto it = std::lower_bound(adj.begin(), adj.end(), y);
    if (it == adj.end() || *it != y) adj.insert(it, y);
  };
  link(a, b);
  link(b, a);
}

void MetroSimulation::set_shard_link_blocked(ShardId a, ShardId b,
                                             bool blocked) {
  if (blocked)
    blocked_shard_links_.insert(ordered(a, b));
  else
    blocked_shard_links_.erase(ordered(a, b));
}

bool MetroSimulation::shard_link_blocked(ShardId a, ShardId b) const {
  return blocked_shard_links_.contains(ordered(a, b));
}

MetroUserId MetroSimulation::add_user(ShardId shard_id, Vec2 pos,
                                      std::unique_ptr<proto::User> user) {
  const NodeId node = shard(shard_id).net().add_user(pos, std::move(user));
  const MetroUserId id = next_user_id_++;
  users_[id] = UserRecord{shard_id, node, false};
  return id;
}

void MetroSimulation::roam_user(MetroUserId id, ShardId dest, Vec2 pos) {
  auto it = users_.find(id);
  if (it == users_.end()) throw Error("metro: unknown user");
  UserRecord& rec = it->second;
  if (rec.in_transit) throw Error("metro: user already in transit");
  if (rec.shard == dest) {
    // Intra-segment roaming: the ordinary move + reassociate path; the
    // next beacon re-authenticates to the best router at the new position.
    Shard& s = shard(dest);
    s.net().move_user(rec.node, pos);
    s.net().reassociate(rec.node);
    return;
  }
  Shard& src = shard(rec.shard);
  CrossShardMsg msg;
  msg.kind = CrossShardMsg::Kind::kUserHandoff;
  msg.from = rec.shard;
  msg.to = dest;
  msg.seq = stamp();
  msg.user = id;
  msg.pos = pos;
  msg.carried = src.net().remove_user(rec.node);
  src.emit(std::move(msg));
  rec.in_transit = true;
}

std::optional<MetroSimulation::UserLocation> MetroSimulation::locate_user(
    MetroUserId id) const {
  auto it = users_.find(id);
  if (it == users_.end() || it->second.in_transit) return std::nullopt;
  return UserLocation{it->second.shard, it->second.node};
}

bool MetroSimulation::user_in_transit(MetroUserId id) const {
  auto it = users_.find(id);
  return it != users_.end() && it->second.in_transit;
}

bool MetroSimulation::post_frame(ShardId from, ShardId to, BytesView payload,
                                 std::uint32_t tag) {
  Shard& src = shard(from);
  auto frame = src.arena().acquire_copy(payload);
  if (!frame) {
    ++stats_.frames_shed;
    return false;
  }
  CrossShardMsg msg;
  msg.kind = CrossShardMsg::Kind::kFrame;
  msg.from = from;
  msg.to = to;
  msg.seq = stamp();
  msg.tag = tag;
  msg.frame = std::move(*frame);
  src.emit(std::move(msg));
  ++stats_.frames_posted;
  return true;
}

bool MetroSimulation::relay_to_internet(ShardId from, BytesView payload) {
  Shard& src = shard(from);
  if (src.net().access_point_count() > 0) {
    // The segment has its own wired exit — no inter-shard hop needed. The
    // in-segment backbone path (send_to_internet) is the caller's business;
    // the metro layer only counts the delivery.
    ++stats_.relay_delivered;
    return true;
  }
  const auto hop = next_hop_to_ap(from);
  if (!hop) {
    ++stats_.relay_dropped;
    return false;
  }
  auto frame = src.arena().acquire_copy(payload);
  if (!frame) {
    ++stats_.frames_shed;
    return false;
  }
  CrossShardMsg msg;
  msg.kind = CrossShardMsg::Kind::kInternetRelay;
  msg.from = from;
  msg.to = *hop;
  msg.seq = stamp();
  msg.frame = std::move(*frame);
  src.emit(std::move(msg));
  return true;
}

void MetroSimulation::announce_rl_deltas(const proto::RLDeltaAnnounce& announce,
                                         proto::NetworkOperator& no) {
  // Every segment holds its own RCU revocation state; the operator's
  // distribution channel reaches them all (paper III.A), each over its own
  // lossy radio draw.
  for (auto& s : shards_) s->net().announce_rl_deltas(announce, no);
}

void MetroSimulation::run_until(SimTime end) {
  while (now_ < end) {
    const SimTime barrier = std::min(now_ + config_.tick_ms, end);
    // Shards run one at a time, in id order, each to the same barrier.
    // Nothing a shard does here can observe another shard (mailboxes move
    // only below), so this loop could run its iterations on N threads
    // without changing one result — the contract docs/ARCHITECTURE.md §7
    // documents and the determinism tests pin down.
    for (auto& s : shards_) {
      // Ambient attribution for the security-event stream: everything the
      // shard's event loop emits (router rejects, timeouts, resyncs) is
      // tagged with this shard id. Pure observer state — resetting it
      // cannot affect the simulation.
      obs::set_current_shard(s->id());
      s->sim().run_until(barrier);
    }
    obs::set_current_shard(0);
    now_ = barrier;
    ++stats_.barriers;

    // Barrier phase 1 — route. Collect every outbox and replay it in
    // global emission (seq) order, so routing decisions (parking, cap
    // drops) are independent of shard visit order.
    std::vector<CrossShardMsg> moving;
    for (auto& s : shards_) {
      auto out = s->take_outbox();
      std::move(out.begin(), out.end(), std::back_inserter(moving));
    }
    std::sort(moving.begin(), moving.end(),
              [](const CrossShardMsg& a, const CrossShardMsg& b) {
                return a.seq < b.seq;
              });
    retry_parked();  // older (parked) handoffs re-offer before new traffic
    for (auto& msg : moving) route(std::move(msg));

    // Barrier phase 2 — apply, shard by shard in id order, arrival order
    // within a shard. All shard clocks sit exactly at the barrier, so
    // everything a message schedules lands in the next tick.
    for (auto& s : shards_) {
      while (!s->inbox().empty()) {
        CrossShardMsg msg = std::move(s->inbox().front());
        s->inbox().pop_front();
        apply(*s, std::move(msg));
      }
    }

    // Barrier phase 3 — observe. Drain the tick's security events to the
    // trace sink and, when a HealthMonitor is attached, feed them into its
    // windows and advance its evaluation clock. Strictly read-only with
    // respect to the simulation: detaching the monitor changes nothing
    // upstream (DeterminismTest.TelemetryIsNeutral).
    if (health_ != nullptr) {
      std::vector<obs::SecEvent> drained;
      obs::drain_sec_events(&drained);
      for (const obs::SecEvent& e : drained) health_->ingest(e);
      health_->tick(now_);
    } else {
      obs::drain_sec_events();
    }
  }
}

void MetroSimulation::route(CrossShardMsg msg) {
  ++stats_.msgs_routed;
  const bool blocked = shard_link_blocked(msg.from, msg.to);
  if (msg.kind == CrossShardMsg::Kind::kUserHandoff) {
    Shard& dest = shard(msg.to);
    if (!blocked && !dest.inbox_full()) {
      dest.enqueue(std::move(msg));
      return;
    }
    // A handoff carries a live proto::User — park it rather than lose it.
    if (parked_.size() >= config_.pending_handoff_cap) {
      // Drop the OLDEST parked user: it has waited longest with no healed
      // path, and bounded memory beats unbounded queues. The user leaves
      // the metro (churn); its record disappears.
      users_.erase(parked_.front().msg.user);
      parked_.pop_front();
      ++stats_.handoffs_dropped;
    }
    parked_.push_back(ParkedHandoff{std::move(msg)});
    ++stats_.handoffs_parked;
    return;
  }
  if (blocked) {
    // Frames shed on a partitioned backbone link; the pooled buffer
    // returns to its origin arena as the message dies.
    if (msg.kind == CrossShardMsg::Kind::kInternetRelay)
      ++stats_.relay_dropped;
    else
      ++stats_.frames_dropped;
    return;
  }
  shard(msg.to).enqueue(std::move(msg));
}

void MetroSimulation::apply(Shard& dest, CrossShardMsg msg) {
  dest.count_applied(msg);
  switch (msg.kind) {
    case CrossShardMsg::Kind::kUserHandoff: {
      const NodeId node = dest.net().add_user(msg.pos, std::move(msg.carried));
      auto it = users_.find(msg.user);
      if (it != users_.end()) it->second = UserRecord{dest.id(), node, false};
      break;
    }
    case CrossShardMsg::Kind::kFrame: {
      if (frame_handler_) frame_handler_(dest.id(), msg.tag, msg.frame.bytes());
      break;
    }
    case CrossShardMsg::Kind::kInternetRelay: {
      if (dest.net().access_point_count() > 0) {
        ++stats_.relay_delivered;
        break;
      }
      const auto hop = next_hop_to_ap(dest.id());
      if (!hop) {
        ++stats_.relay_dropped;
        break;
      }
      // One shard hop per tick: forward at the NEXT barrier.
      msg.from = dest.id();
      msg.to = *hop;
      msg.seq = stamp();
      dest.emit(std::move(msg));
      break;
    }
  }
}

void MetroSimulation::retry_parked() {
  // One pass over the parked FIFO in arrival order; survivors keep their
  // relative order for the next barrier.
  for (std::size_t n = parked_.size(); n-- > 0;) {
    ParkedHandoff p = std::move(parked_.front());
    parked_.pop_front();
    Shard& dest = shard(p.msg.to);
    if (!shard_link_blocked(p.msg.from, p.msg.to) && !dest.inbox_full())
      dest.enqueue(std::move(p.msg));
    else
      parked_.push_back(std::move(p));
  }
}

std::optional<ShardId> MetroSimulation::next_hop_to_ap(ShardId from) const {
  // BFS over the inter-shard backbone (sorted adjacency, blocked links
  // skipped) to the nearest shard owning an access point; returns the
  // first hop of that shortest path. Deterministic by construction.
  std::vector<ShardId> first_hop(shards_.size(), from);
  std::vector<bool> seen(shards_.size(), false);
  std::deque<ShardId> frontier;
  seen[from] = true;
  frontier.push_back(from);
  while (!frontier.empty()) {
    const ShardId at = frontier.front();
    frontier.pop_front();
    for (const ShardId next : shard_links_[at]) {
      if (seen[next] || shard_link_blocked(at, next)) continue;
      seen[next] = true;
      first_hop[next] = at == from ? next : first_hop[at];
      if (shards_[next]->net().access_point_count() > 0)
        return first_hop[next];
      frontier.push_back(next);
    }
  }
  return std::nullopt;
}

NetworkStats MetroSimulation::network_stats_total() const {
  NetworkStats totals;
  for (const auto& s : shards_) totals = sum(totals, s->net().stats());
  return totals;
}

std::uint64_t MetroSimulation::sim_events_total() const {
  std::uint64_t total = 0;
  for (const auto& s : shards_) total += s->sim().events_processed();
  return total;
}

void MetroSimulation::publish_metrics() const {
  // Merge every per-shard stats struct with its field-wise sum, then
  // absorb the totals exactly as a single MeshNetwork would. Every merge
  // is commutative and associative, so shard visit order cannot leak into
  // the exported values (MetroTest.StatsMergeOrderIndependence).
  proto::RouterStats routers;
  proto::UserStats users;
  groupsig::OpCounters ops;
  revoke::SharedRevocationStats revocation;
  bool any_revocation = false;
  for (const auto& s : shards_) {
    routers = proto::sum(routers, s->net().router_stats_total());
    users = proto::sum(users, s->net().user_stats_total());
    ops.merge(s->net().verify_ops_total());
    if (s->net().revocation() != nullptr) {
      revocation = revoke::sum(revocation, s->net().revocation()->stats());
      any_revocation = true;
    }
  }
  proto::absorb_router_stats(routers);
  proto::absorb_user_stats(users);
  proto::absorb_verify_ops(ops);
  if (any_revocation) proto::absorb_revocation_stats(revocation);
  absorb_network_stats(network_stats_total(), sim_events_total());

  ShardStats shard_totals;
  FrameArenaStats arena_totals;
  for (const auto& s : shards_) {
    const ShardStats& st = s->stats();
    shard_totals.msgs_out += st.msgs_out;
    shard_totals.msgs_in += st.msgs_in;
    shard_totals.inbox_dropped += st.inbox_dropped;
    shard_totals.handoffs_in += st.handoffs_in;
    shard_totals.handoffs_out += st.handoffs_out;
    const FrameArenaStats& ar = s->arena().stats();
    arena_totals.acquired += ar.acquired;
    arena_totals.reused += ar.reused;
    arena_totals.allocated += ar.allocated;
    arena_totals.cap_rejections += ar.cap_rejections;
    arena_totals.outstanding += ar.outstanding;
  }

  auto& reg = obs::Registry::global();
  reg.gauge("metro.shards").set(static_cast<std::int64_t>(shards_.size()));
  reg.gauge("metro.users").set(static_cast<std::int64_t>(users_.size()));
  reg.gauge("metro.handoffs_pending")
      .set(static_cast<std::int64_t>(parked_.size()));
  reg.counter("metro.barriers").set(stats_.barriers);
  reg.counter("metro.msgs_routed").set(stats_.msgs_routed);
  reg.counter("metro.frames_posted").set(stats_.frames_posted);
  reg.counter("metro.frames_shed").set(stats_.frames_shed);
  reg.counter("metro.frames_dropped").set(stats_.frames_dropped);
  reg.counter("metro.relay_delivered").set(stats_.relay_delivered);
  reg.counter("metro.relay_dropped").set(stats_.relay_dropped);
  reg.counter("metro.handoffs_parked").set(stats_.handoffs_parked);
  reg.counter("metro.handoffs_dropped").set(stats_.handoffs_dropped);
  reg.counter("metro.handoffs_completed").set(shard_totals.handoffs_in);
  reg.counter("metro.inbox_dropped").set(shard_totals.inbox_dropped);
  reg.counter("metro.arena.acquired").set(arena_totals.acquired);
  reg.counter("metro.arena.reused").set(arena_totals.reused);
  reg.counter("metro.arena.allocated").set(arena_totals.allocated);
  reg.counter("metro.arena.cap_rejections").set(arena_totals.cap_rejections);
  reg.gauge("metro.arena.outstanding")
      .set(static_cast<std::int64_t>(arena_totals.outstanding));

  // Flush any security events buffered since the last barrier, and refresh
  // the health.* gauges when a monitor is attached.
  obs::drain_sec_events();
  if (health_ != nullptr) health_->publish(reg);
}

}  // namespace peace::mesh
