#include "mesh/network.hpp"

#include <algorithm>
#include <cmath>

#include "crypto/aead.hpp"

namespace peace::mesh {

using proto::BeaconMessage;
using proto::DataFrame;

double distance(const Vec2& a, const Vec2& b) {
  const double dx = a.x - b.x, dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

MeshNetwork::MeshNetwork(Simulator& sim, crypto::Drbg rng, RadioConfig radio,
                         proto::ProtocolConfig proto_config)
    : sim_(sim),
      rng_(std::move(rng)),
      radio_(radio),
      proto_config_(proto_config) {}

NodeId MeshNetwork::add_router(Vec2 pos, proto::NetworkOperator& no,
                               proto::Timestamp cert_expires_at) {
  const NodeId id = next_id_++;
  auto provision = no.provision_router(id, cert_expires_at);
  if (revocation_ == nullptr)
    revocation_ = std::make_shared<revoke::SharedRevocationState>(
        no.params().network_public_key);
  RouterNode node;
  node.pos = pos;
  node.router = std::make_unique<proto::MeshRouter>(
      id, provision.keypair, provision.certificate, no.params(),
      rng_.fork("router-" + std::to_string(id)), proto_config_, revocation_);
  node.router->install_revocation_lists(no.current_crl(), no.current_url());
  routers_.emplace(id, std::move(node));
  return id;
}

NodeId MeshNetwork::add_user(Vec2 pos, std::unique_ptr<proto::User> user) {
  const NodeId id = next_id_++;
  UserNode node;
  node.pos = pos;
  node.user = std::move(user);
  users_.emplace(id, std::move(node));
  return id;
}

proto::MeshRouter& MeshNetwork::router(NodeId id) {
  const auto it = routers_.find(id);
  if (it == routers_.end()) throw Error("mesh: no such router");
  return *it->second.router;
}

proto::User& MeshNetwork::user(NodeId id) {
  const auto it = users_.find(id);
  if (it == users_.end()) throw Error("mesh: no such user");
  return *it->second.user;
}

Vec2 MeshNetwork::position(NodeId id) const {
  if (const auto r = routers_.find(id); r != routers_.end())
    return r->second.pos;
  if (const auto u = users_.find(id); u != users_.end()) return u->second.pos;
  throw Error("mesh: no such node");
}

void MeshNetwork::move_user(NodeId id, Vec2 pos) {
  const auto it = users_.find(id);
  if (it == users_.end()) throw Error("mesh: no such user");
  it->second.pos = pos;
}

void MeshNetwork::push_revocation_lists(
    const proto::SignedRevocationList& crl,
    const proto::SignedRevocationList& url) {
  // Every router shares revocation_; one install provisions them all.
  if (revocation_ != nullptr) revocation_->install_full(crl, url);
}

void MeshNetwork::announce_rl_deltas(const proto::RLDeltaAnnounce& announce,
                                     proto::NetworkOperator& no) {
  if (routers_.empty()) return;
  const Bytes wire = announce.to_bytes();
  observe("rl-delta", wire);
  if (!radio_delivers()) {
    ++stats_.frames_lost;
    return;  // the segment stays behind until a later announcement heals it
  }
  // The segment head applies the announcement on everyone's behalf (the
  // state is shared); gaps come back as resync requests and run the full
  // round-trip with the operator, paying latency and loss on each leg.
  const NodeId head = routers_.begin()->first;
  sim_.schedule_in(radio_.latency_ms, [this, head, wire, &no] {
    const auto requests = router(head).handle_rl_announce(
        proto::RLDeltaAnnounce::from_bytes(wire));
    for (const proto::RLResyncRequest& req : requests) {
      const Bytes req_wire = req.to_bytes();
      observe("rl-resync-req", req_wire);
      if (!radio_delivers()) {
        ++stats_.frames_lost;
        continue;
      }
      sim_.schedule_in(radio_.latency_ms, [this, head, req_wire, &no] {
        const proto::RLResyncResponse resp =
            no.handle_resync(proto::RLResyncRequest::from_bytes(req_wire));
        const Bytes resp_wire = resp.to_bytes();
        observe("rl-resync-resp", resp_wire);
        if (!radio_delivers()) {
          ++stats_.frames_lost;
          return;
        }
        sim_.schedule_in(radio_.latency_ms, [this, head, resp_wire] {
          router(head).handle_rl_resync(
              proto::RLResyncResponse::from_bytes(resp_wire));
        });
      });
    }
  });
}

bool MeshNetwork::radio_delivers() {
  if (radio_.loss_probability <= 0.0) return true;
  return rng_.uniform_real() >= radio_.loss_probability;
}

void MeshNetwork::observe(const char* kind, BytesView payload) {
  ++stats_.frames_transmitted;
  if (taps_.empty()) return;
  WireObservation obs{sim_.now(), kind,
                      Bytes(payload.begin(), payload.end())};
  for (const auto& tap : taps_) tap(obs);
}

void MeshNetwork::add_tap(std::function<void(const WireObservation&)> tap) {
  taps_.push_back(std::move(tap));
}

void MeshNetwork::start_beaconing(SimTime start, SimTime period,
                                  SimTime until) {
  for (const auto& [id, _] : routers_) {
    for (SimTime t = start; t <= until; t += period) {
      const NodeId rid = id;
      sim_.schedule(t, [this, rid] {
        const BeaconMessage beacon = router(rid).make_beacon(sim_.now());
        deliver_beacon(rid, beacon);
      });
    }
  }
}

void MeshNetwork::deliver_beacon(NodeId router_node,
                                 const BeaconMessage& beacon) {
  observe("beacon", beacon.to_bytes());
  const Vec2 rpos = routers_.at(router_node).pos;
  for (auto& [uid, unode] : users_) {
    if (distance(rpos, unode.pos) > radio_.router_range) continue;
    if (!radio_delivers()) {
      ++stats_.frames_lost;
      continue;
    }
    const NodeId user_node = uid;
    const Bytes wire = beacon.to_bytes();
    sim_.schedule_in(radio_.latency_ms, [this, user_node, router_node, wire] {
      user_hears_beacon(user_node, router_node,
                        BeaconMessage::from_bytes(wire));
    });
  }
}

void MeshNetwork::user_hears_beacon(NodeId user_node, NodeId router_node,
                                    const BeaconMessage& beacon) {
  UserNode& unode = users_.at(user_node);
  if (!auto_connect_ || unode.uplink.has_value() || unode.handshake_in_flight)
    return;

  auto m2 = unode.user->process_beacon(beacon, sim_.now());
  if (!m2.has_value()) return;
  unode.handshake_in_flight = true;

  // Power-boosted uplink (paper footnote 3): direct to the router.
  observe("m2", m2->to_bytes());
  if (!radio_delivers()) {
    ++stats_.frames_lost;
    unode.handshake_in_flight = false;
    return;
  }
  const Bytes m2_wire = m2->to_bytes();
  sim_.schedule_in(radio_.latency_ms, [this, user_node, router_node, m2_wire] {
    // Arrivals enqueue; the first one in a tick schedules a same-time drain
    // (FIFO among same-time events puts it after every arrival of the
    // tick), so all M.2s landing together verify as one batch.
    std::vector<PendingAuth>& pending = pending_auth_[router_node];
    pending.push_back(
        PendingAuth{user_node, proto::AccessRequest::from_bytes(m2_wire)});
    if (pending.size() == 1)
      sim_.schedule_in(0, [this, router_node] { drain_auth_batch(router_node); });
  });
}

void MeshNetwork::drain_auth_batch(NodeId router_node) {
  std::vector<PendingAuth> batch = std::move(pending_auth_[router_node]);
  pending_auth_.erase(router_node);
  if (batch.empty()) return;

  std::vector<proto::AccessRequest> requests;
  requests.reserve(batch.size());
  for (const PendingAuth& p : batch) requests.push_back(p.m2);
  auto outcomes =
      router(router_node).handle_access_requests(requests, sim_.now());

  for (std::size_t i = 0; i < batch.size(); ++i) {
    const NodeId user_node = batch[i].user_node;
    UserNode& unode2 = users_.at(user_node);
    if (!outcomes[i].has_value()) {
      unode2.handshake_in_flight = false;
      continue;
    }
    observe("m3", outcomes[i]->confirm.to_bytes());
    if (!radio_delivers()) {
      ++stats_.frames_lost;
      unode2.handshake_in_flight = false;
      continue;
    }
    const Bytes m3_wire = outcomes[i]->confirm.to_bytes();
    sim_.schedule_in(radio_.latency_ms, [this, user_node, router_node,
                                         m3_wire] {
      UserNode& unode3 = users_.at(user_node);
      auto session = unode3.user->process_access_confirm(
          proto::AccessConfirm::from_bytes(m3_wire));
      unode3.handshake_in_flight = false;
      if (!session.has_value()) return;
      unode3.uplink_session_id = session->id();
      unode3.uplink = std::move(*session);
      unode3.serving = router(router_node).id();
      unode3.serving_node = router_node;
    });
  }
}

void MeshNetwork::establish_peer_links() {
  std::vector<std::pair<NodeId, NodeId>> pairs;
  for (auto it = users_.begin(); it != users_.end(); ++it) {
    auto jt = it;
    for (++jt; jt != users_.end(); ++jt) {
      if (distance(it->second.pos, jt->second.pos) <= radio_.user_range)
        pairs.emplace_back(it->first, jt->first);
    }
  }
  for (const auto& [a, b] : pairs) {
    sim_.schedule_in(1, [this, a = a, b = b] { run_peer_handshake(a, b); });
  }
}

void MeshNetwork::run_peer_handshake(NodeId a, NodeId b) {
  UserNode& na = users_.at(a);
  UserNode& nb = users_.at(b);
  if (na.peer_sessions.contains(b)) return;

  // Both need a generator g from a beacon; use the serving router's, or the
  // canonical generator when not yet attached.
  const curve::G1 g = curve::Bn254::get().g1_gen;
  const proto::PeerHello hello = na.user->make_peer_hello(g, sim_.now());
  observe("peer1", hello.to_bytes());
  auto reply = nb.user->process_peer_hello(hello, sim_.now());
  if (!reply.has_value()) return;
  observe("peer2", reply->to_bytes());
  auto established = na.user->process_peer_reply(*reply, sim_.now());
  if (!established.has_value()) return;
  observe("peer3", established->confirm.to_bytes());
  auto b_session = nb.user->process_peer_confirm(established->confirm);
  if (!b_session.has_value()) return;
  na.peer_sessions.emplace(b, std::move(established->session));
  nb.peer_sessions.emplace(a, std::move(*b_session));
}

std::optional<NodeId> MeshNetwork::next_relay_hop(NodeId from,
                                                  const Vec2& target) {
  const UserNode& node = users_.at(from);
  const double own = distance(node.pos, target);
  std::optional<NodeId> best;
  double best_dist = own;
  for (const auto& [peer, _] : node.peer_sessions) {
    const double d = distance(users_.at(peer).pos, target);
    if (d < best_dist) {
      best_dist = d;
      best = peer;
    }
  }
  return best;
}

bool MeshNetwork::send_data(NodeId user_id, BytesView payload) {
  UserNode& origin = users_.at(user_id);
  if (!origin.uplink.has_value() || !origin.serving_node.has_value()) {
    ++stats_.data_undeliverable;
    return false;
  }
  const NodeId router_node = *origin.serving_node;
  const Vec2 rpos = routers_.at(router_node).pos;

  // End-to-end protection with the router session (relays see ciphertext).
  DataFrame frame = origin.uplink->seal(payload);
  const Bytes wire = frame.to_bytes();

  // Greedy geographic relay until within user_range of the router.
  NodeId current = user_id;
  std::uint64_t hops = 0;
  while (distance(users_.at(current).pos, rpos) > radio_.user_range) {
    const auto next = next_relay_hop(current, rpos);
    if (!next.has_value()) {
      ++stats_.data_undeliverable;
      return false;
    }
    observe("data", wire);
    if (!radio_delivers()) {
      ++stats_.frames_lost;
      return false;
    }
    current = *next;
    ++hops;
  }
  observe("data", wire);
  if (!radio_delivers()) {
    ++stats_.frames_lost;
    return false;
  }
  proto::Session* rsession =
      router(router_node).session(origin.uplink_session_id);
  if (rsession == nullptr) {
    ++stats_.data_undeliverable;
    return false;
  }
  const auto got = rsession->open(DataFrame::from_bytes(wire));
  if (!got.has_value()) {
    ++stats_.data_undeliverable;
    return false;
  }
  stats_.relay_hops_total += hops;
  ++stats_.data_delivered;
  return true;
}

NodeId MeshNetwork::add_access_point(Vec2 pos) {
  const NodeId id = next_id_++;
  access_points_.emplace(id, pos);
  return id;
}

const Bytes& MeshNetwork::backbone_key(NodeId a, NodeId b) {
  const auto key = a < b ? std::make_pair(a, b) : std::make_pair(b, a);
  auto it = backbone_keys_.find(key);
  if (it == backbone_keys_.end()) {
    it = backbone_keys_.emplace(key, rng_.bytes(32)).first;
  }
  return it->second;
}

std::vector<NodeId> MeshNetwork::backbone_neighbors(NodeId node) const {
  Vec2 pos;
  if (const auto r = routers_.find(node); r != routers_.end()) {
    pos = r->second.pos;
  } else if (const auto a = access_points_.find(node);
             a != access_points_.end()) {
    pos = a->second;
  } else {
    throw Error("mesh: not a backbone node");
  }
  std::vector<NodeId> out;
  for (const auto& [id, rn] : routers_) {
    if (id != node && distance(pos, rn.pos) <= radio_.backbone_range)
      out.push_back(id);
  }
  for (const auto& [id, ap_pos] : access_points_) {
    if (id != node && distance(pos, ap_pos) <= radio_.backbone_range)
      out.push_back(id);
  }
  return out;
}

std::optional<std::size_t> MeshNetwork::backbone_hops_to_ap(
    NodeId router_node) const {
  if (!routers_.contains(router_node)) throw Error("mesh: not a router");
  // BFS over the backbone graph toward any access point.
  std::map<NodeId, std::size_t> dist{{router_node, 0}};
  std::vector<NodeId> frontier{router_node};
  while (!frontier.empty()) {
    std::vector<NodeId> next;
    for (const NodeId node : frontier) {
      if (access_points_.contains(node)) return dist[node];
      for (const NodeId nb : backbone_neighbors(node)) {
        if (!dist.contains(nb)) {
          dist[nb] = dist[node] + 1;
          next.push_back(nb);
        }
      }
    }
    frontier = std::move(next);
  }
  return std::nullopt;
}

bool MeshNetwork::send_to_internet(NodeId user_id, BytesView payload) {
  // First leg: the standard user -> serving-router delivery.
  if (!send_data(user_id, payload)) return false;
  const NodeId router_node = *users_.at(user_id).serving_node;

  // Second leg: BFS path across the backbone to the nearest AP; every hop
  // carries the (already session-encrypted) frame under the link's secure
  // channel, modelled as an HMAC the next hop verifies.
  std::map<NodeId, NodeId> parent;
  std::map<NodeId, std::size_t> dist{{router_node, 0}};
  std::vector<NodeId> frontier{router_node};
  std::optional<NodeId> reached_ap;
  while (!frontier.empty() && !reached_ap.has_value()) {
    std::vector<NodeId> next;
    for (const NodeId node : frontier) {
      if (access_points_.contains(node)) {
        reached_ap = node;
        break;
      }
      for (const NodeId nb : backbone_neighbors(node)) {
        if (!dist.contains(nb)) {
          dist[nb] = dist[node] + 1;
          parent[nb] = node;
          next.push_back(nb);
        }
      }
    }
    frontier = std::move(next);
  }
  if (!reached_ap.has_value()) {
    ++stats_.data_undeliverable;
    return false;
  }
  // Reconstruct the path and walk it hop by hop.
  std::vector<NodeId> path{*reached_ap};
  while (path.back() != router_node) path.push_back(parent.at(path.back()));
  std::reverse(path.begin(), path.end());

  // Each hop re-encrypts under the link's secure-channel key, so the air
  // interface carries only AEAD ciphertext even on the backbone.
  Bytes frame(payload.begin(), payload.end());
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    const Bytes& key = backbone_key(path[i], path[i + 1]);
    const Bytes nonce = rng_.bytes(crypto::kAeadNonceSize);
    const Bytes sealed = crypto::aead_seal(key, nonce, {}, frame);
    observe("backbone", sealed);
    const auto opened = crypto::aead_open(key, nonce, {}, sealed);
    if (!opened.has_value()) {
      ++stats_.backbone_mac_failures;  // unreachable with honest links
      return false;
    }
    frame = *opened;
    ++stats_.backbone_hops_total;
  }
  ++stats_.internet_delivered;
  return true;
}

void MeshNetwork::reassociate(NodeId user_id) {
  UserNode& node = users_.at(user_id);
  node.uplink.reset();
  node.uplink_session_id.clear();
  node.serving.reset();
  node.serving_node.reset();
  node.handshake_in_flight = false;
}

bool MeshNetwork::is_connected(NodeId user_id) const {
  const auto it = users_.find(user_id);
  return it != users_.end() && it->second.uplink.has_value();
}

std::optional<proto::RouterId> MeshNetwork::serving_router(
    NodeId user_id) const {
  const auto it = users_.find(user_id);
  if (it == users_.end()) return std::nullopt;
  return it->second.serving;
}

std::vector<NodeId> MeshNetwork::router_ids() const {
  std::vector<NodeId> out;
  for (const auto& [id, _] : routers_) out.push_back(id);
  return out;
}

std::vector<NodeId> MeshNetwork::user_ids() const {
  std::vector<NodeId> out;
  for (const auto& [id, _] : users_) out.push_back(id);
  return out;
}

}  // namespace peace::mesh
