#include "mesh/network.hpp"

#include <algorithm>
#include <cmath>

#include "crypto/aead.hpp"
#include "obs/sec_event.hpp"
#include "obs/trace.hpp"
#include "peace/metrics_export.hpp"

namespace peace::mesh {

using proto::BeaconMessage;
using proto::DataFrame;

namespace {

/// Simulator milliseconds → the µs timestamps of the sim-time trace track.
std::uint64_t sim_us(SimTime now_ms) { return now_ms * 1000; }

/// Async-span correlation id for the (initiator, responder) peer pair.
std::uint64_t peer_span_id(NodeId a, NodeId b) {
  return (static_cast<std::uint64_t>(a) << 32) | b;
}

}  // namespace

double distance(const Vec2& a, const Vec2& b) {
  const double dx = a.x - b.x, dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

MeshNetwork::MeshNetwork(Simulator& sim, crypto::Drbg rng, RadioConfig radio,
                         proto::ProtocolConfig proto_config,
                         ReliabilityConfig reliability)
    : sim_(sim),
      rng_(std::move(rng)),
      radio_(radio),
      proto_config_(proto_config),
      reliability_(reliability) {
  // The plain RadioConfig loss rate is the degenerate fault plan: one
  // uniform draw per frame, nothing else — bit-identical rng consumption
  // to the pre-fault-injection radio.
  FaultPlan plan;
  plan.loss_good = radio_.loss_probability;
  faults_ = FaultInjector(plan);
}

void MeshNetwork::set_fault_plan(const FaultPlan& plan) {
  faults_ = FaultInjector(plan);
}

NodeId MeshNetwork::add_router(Vec2 pos, proto::NetworkOperator& no,
                               proto::Timestamp cert_expires_at) {
  const NodeId id = next_id_++;
  auto provision = no.provision_router(id, cert_expires_at);
  if (revocation_ == nullptr)
    revocation_ = std::make_shared<revoke::SharedRevocationState>(
        no.params().network_public_key);
  RouterNode node;
  node.pos = pos;
  node.keypair = provision.keypair;
  node.certificate = provision.certificate;
  node.params = no.params();
  node.router = std::make_unique<proto::MeshRouter>(
      id, provision.keypair, provision.certificate, no.params(),
      rng_.fork("router-" + std::to_string(id)), proto_config_, revocation_);
  node.router->install_revocation_lists(no.current_crl(), no.current_url());
  routers_.emplace(id, std::move(node));
  return id;
}

void MeshNetwork::crash_router(NodeId router_node) {
  const auto it = routers_.find(router_node);
  if (it == routers_.end()) throw Error("mesh: no such router");
  // The crash wipes volatile state: every established session, the replay
  // cache, pending beacons. Beacon events check `down` and stay silent.
  it->second.router.reset();
  it->second.down = true;
  pending_auth_.erase(router_node);
  obs::Tracer::global().instant_at("mesh.crash", "fault", sim_us(sim_.now()),
                                   {{"router", router_node}});
}

void MeshNetwork::restart_router(NodeId router_node) {
  const auto it = routers_.find(router_node);
  if (it == routers_.end()) throw Error("mesh: no such router");
  RouterNode& node = it->second;
  if (!node.down) return;
  ++node.restarts;
  node.router = std::make_unique<proto::MeshRouter>(
      router_node, node.keypair, node.certificate, node.params,
      rng_.fork("router-" + std::to_string(router_node) + "-restart-" +
                std::to_string(node.restarts)),
      proto_config_, revocation_);
  node.down = false;
  obs::Tracer::global().instant_at("mesh.restart", "fault", sim_us(sim_.now()),
                                   {{"router", router_node}});
}

bool MeshNetwork::router_is_down(NodeId router_node) const {
  const auto it = routers_.find(router_node);
  if (it == routers_.end()) throw Error("mesh: no such router");
  return it->second.down;
}

void MeshNetwork::set_link_blocked(NodeId a, NodeId b, bool blocked) {
  const auto key = a < b ? std::make_pair(a, b) : std::make_pair(b, a);
  if (blocked)
    blocked_links_.insert(key);
  else
    blocked_links_.erase(key);
}

bool MeshNetwork::link_blocked(NodeId a, NodeId b) const {
  const auto key = a < b ? std::make_pair(a, b) : std::make_pair(b, a);
  return blocked_links_.contains(key);
}

bool MeshNetwork::node_down(NodeId node) const {
  const auto it = routers_.find(node);
  return it != routers_.end() && it->second.down;
}

NodeId MeshNetwork::add_user(Vec2 pos, std::unique_ptr<proto::User> user) {
  const NodeId id = next_id_++;
  UserNode node;
  node.pos = pos;
  node.user = std::move(user);
  users_.emplace(id, std::move(node));
  return id;
}

std::unique_ptr<proto::User> MeshNetwork::remove_user(NodeId id) {
  const auto it = users_.find(id);
  if (it == users_.end()) throw Error("mesh: no such user");
  UserNode& node = it->second;
  // Close the router half of the uplink (and of a draining rekey) so the
  // departed user's session state does not linger on this segment.
  if (node.serving_node.has_value()) {
    if (const auto r = routers_.find(*node.serving_node);
        r != routers_.end() && r->second.router != nullptr) {
      if (!node.uplink_session_id.empty())
        r->second.router->close_session(node.uplink_session_id);
      if (!node.old_uplink_session_id.empty())
        r->second.router->close_session(node.old_uplink_session_id);
    }
  }
  // Peer sessions and in-flight peer handshakes die on both ends.
  for (auto& [other_id, other] : users_) {
    if (other_id != id) other.peer_sessions.erase(id);
  }
  std::erase_if(peer_attempts_, [id](const auto& kv) {
    return kv.first.first == id || kv.first.second == id;
  });
  // Queued M.2s from this user vanish before the batch drains.
  for (auto& [rid, pending] : pending_auth_)
    std::erase_if(pending,
                  [id](const PendingAuth& p) { return p.user_node == id; });
  std::erase_if(blocked_links_, [id](const auto& link) {
    return link.first == id || link.second == id;
  });
  std::unique_ptr<proto::User> user = std::move(node.user);
  users_.erase(it);
  ++stats_.users_removed;
  return user;
}

proto::MeshRouter& MeshNetwork::router(NodeId id) {
  const auto it = routers_.find(id);
  if (it == routers_.end()) throw Error("mesh: no such router");
  if (it->second.router == nullptr) throw Error("mesh: router is down");
  return *it->second.router;
}

proto::User& MeshNetwork::user(NodeId id) {
  const auto it = users_.find(id);
  if (it == users_.end()) throw Error("mesh: no such user");
  return *it->second.user;
}

Vec2 MeshNetwork::position(NodeId id) const {
  if (const auto r = routers_.find(id); r != routers_.end())
    return r->second.pos;
  if (const auto u = users_.find(id); u != users_.end()) return u->second.pos;
  throw Error("mesh: no such node");
}

void MeshNetwork::move_user(NodeId id, Vec2 pos) {
  const auto it = users_.find(id);
  if (it == users_.end()) throw Error("mesh: no such user");
  it->second.pos = pos;
}

void MeshNetwork::push_revocation_lists(
    const proto::SignedRevocationList& crl,
    const proto::SignedRevocationList& url) {
  // Every router shares revocation_; one install provisions them all.
  if (revocation_ != nullptr) revocation_->install_full(crl, url);
}

void MeshNetwork::announce_rl_deltas(const proto::RLDeltaAnnounce& announce,
                                     proto::NetworkOperator& no) {
  if (routers_.empty()) return;
  const Bytes wire = announce.to_bytes();
  observe("rl-delta", wire);
  if (!radio_delivers()) {
    ++stats_.frames_lost;
    return;  // the segment stays behind until a later announcement heals it
  }
  // The segment head applies the announcement on everyone's behalf (the
  // state is shared); gaps come back as resync requests and run the full
  // round-trip with the operator, paying latency and loss on each leg.
  const NodeId head = routers_.begin()->first;
  sim_.schedule_in(radio_.latency_ms, [this, head, wire, &no] {
    const auto requests = router(head).handle_rl_announce(
        proto::RLDeltaAnnounce::from_bytes(wire));
    for (const proto::RLResyncRequest& req : requests) {
      obs::sec_emit(obs::SecEventKind::kRlResync, sim_.now(), head,
                    static_cast<std::uint64_t>(req.kind));
      const Bytes req_wire = req.to_bytes();
      observe("rl-resync-req", req_wire);
      if (!radio_delivers()) {
        ++stats_.frames_lost;
        continue;
      }
      sim_.schedule_in(radio_.latency_ms, [this, head, req_wire, &no] {
        const proto::RLResyncResponse resp =
            no.handle_resync(proto::RLResyncRequest::from_bytes(req_wire));
        const Bytes resp_wire = resp.to_bytes();
        observe("rl-resync-resp", resp_wire);
        if (!radio_delivers()) {
          ++stats_.frames_lost;
          return;
        }
        sim_.schedule_in(radio_.latency_ms, [this, head, resp_wire] {
          router(head).handle_rl_resync(
              proto::RLResyncResponse::from_bytes(resp_wire));
        });
      });
    }
  });
}

bool MeshNetwork::radio_delivers() {
  if (radio_.loss_probability <= 0.0) return true;
  return rng_.uniform_real() >= radio_.loss_probability;
}

template <typename Msg>
std::optional<Msg> MeshNetwork::parse(const Bytes& wire) {
  // A corrupted frame must be rejected cleanly: decode failures land here,
  // never escape, and mutate nothing.
  try {
    return Msg::from_bytes(wire);
  } catch (const std::exception&) {
    ++stats_.corrupted_rejected;
    return std::nullopt;
  }
}

void MeshNetwork::unicast(const Bytes& wire, NodeId from, NodeId to,
                          std::function<void(const Bytes&)> deliver) {
  if (link_blocked(from, to) || node_down(to)) {
    ++stats_.frames_partitioned;
    return;
  }
  const FaultVerdict verdict = faults_.judge(rng_);
  if (verdict.lost) {
    ++stats_.frames_lost;
    return;
  }
  if (verdict.extra_delay_ms > 0) ++stats_.frames_delayed;
  const SimTime delay = radio_.latency_ms + verdict.extra_delay_ms;
  Bytes copy = wire;
  if (verdict.corrupt) FaultInjector::corrupt(copy, rng_);
  sim_.schedule_in(delay, [deliver, copy = std::move(copy)] { deliver(copy); });
  if (verdict.duplicate) {
    // A MAC-layer duplicate: a clean second copy, one tick behind.
    ++stats_.frames_duplicated;
    sim_.schedule_in(delay + 1, [deliver, wire] { deliver(wire); });
  }
}

void MeshNetwork::transmit(const char* kind, const Bytes& wire, NodeId from,
                           NodeId to, std::function<void(const Bytes&)> deliver) {
  observe(kind, wire);
  unicast(wire, from, to, std::move(deliver));
}

void MeshNetwork::observe(const char* kind, BytesView payload) {
  ++stats_.frames_transmitted;
  if (taps_.empty()) return;
  WireObservation obs{sim_.now(), kind,
                      Bytes(payload.begin(), payload.end())};
  for (const auto& tap : taps_) tap(obs);
}

void MeshNetwork::add_tap(std::function<void(const WireObservation&)> tap) {
  taps_.push_back(std::move(tap));
}

void MeshNetwork::start_beaconing(SimTime start, SimTime period,
                                  SimTime until) {
  for (const auto& [id, _] : routers_) {
    for (SimTime t = start; t <= until; t += period) {
      const NodeId rid = id;
      sim_.schedule(t, [this, rid] {
        // A crashed router stays silent; its schedule resumes on restart.
        const auto it = routers_.find(rid);
        if (it == routers_.end() || it->second.router == nullptr) return;
        const BeaconMessage beacon = it->second.router->make_beacon(sim_.now());
        deliver_beacon(rid, beacon);
      });
    }
  }
}

void MeshNetwork::deliver_beacon(NodeId router_node,
                                 const BeaconMessage& beacon) {
  // One broadcast observation; each listener in range then gets an
  // independently-faulted copy (per-listener loss, as before).
  const Bytes wire = beacon.to_bytes();
  observe("beacon", wire);
  const Vec2 rpos = routers_.at(router_node).pos;
  for (auto& [uid, unode] : users_) {
    if (distance(rpos, unode.pos) > radio_.router_range) continue;
    const NodeId user_node = uid;
    unicast(wire, router_node, user_node,
            [this, user_node, router_node](const Bytes& w) {
              const auto b = parse<BeaconMessage>(w);
              if (b.has_value()) user_hears_beacon(user_node, router_node, *b);
            });
  }
}

void MeshNetwork::user_hears_beacon(NodeId user_node, NodeId router_node,
                                    const BeaconMessage& beacon) {
  const auto uit = users_.find(user_node);
  if (uit == users_.end()) return;  // roamed away while the beacon flew
  UserNode& unode = uit->second;
  if (!auto_connect_ || unode.uplink.has_value() || unode.attempt.has_value())
    return;
  // Failover: a router whose handshake budget ran out recently is skipped,
  // so the user attaches to the next-best router it hears instead.
  if (const auto bo = unode.router_backoff_until.find(router_node);
      bo != unode.router_backoff_until.end()) {
    if (sim_.now() < bo->second) return;
    unode.router_backoff_until.erase(bo);
  }

  auto m2 = unode.user->process_beacon(beacon, sim_.now());
  if (!m2.has_value()) return;
  // One attempt = one M.2, retransmitted byte-identically on RTO (so the
  // router's idempotent-resend cache can recognise it); the user's DH share
  // and signature are minted exactly once per attempt.
  unode.attempt =
      UserNode::Attempt{router_node, m2->to_bytes(), 0, ++attempt_seq_};
  // Sim-time async span covering M.2 send → M.3 accept (or give-up); the
  // user's node id correlates begin and end.
  obs::Tracer::global().async_begin("access_handshake", "handshake", user_node,
                                    sim_us(sim_.now()),
                                    {{"router", router_node}});
  send_m2(user_node);
}

SimTime MeshNetwork::rto_for(unsigned tries) const {
  double rto = static_cast<double>(reliability_.rto_ms);
  for (unsigned i = 1; i < tries; ++i) rto *= reliability_.rto_backoff;
  return static_cast<SimTime>(rto);
}

void MeshNetwork::send_m2(NodeId user_node) {
  const auto uit = users_.find(user_node);
  if (uit == users_.end()) return;
  UserNode& unode = uit->second;
  if (!unode.attempt.has_value()) return;
  UserNode::Attempt& attempt = *unode.attempt;
  ++attempt.tries;
  if (attempt.tries > 1) {
    ++stats_.retransmissions;
    obs::Tracer::global().instant_at(
        "mesh.retransmit", "reliability", sim_us(sim_.now()),
        {{"user", user_node}, {"tries", attempt.tries}});
  }
  const NodeId router_node = attempt.router_node;

  // Power-boosted uplink (paper footnote 3): direct to the router.
  transmit("m2", attempt.m2_wire, user_node, router_node,
           [this, user_node, router_node](const Bytes& w) {
             auto m2 = parse<proto::AccessRequest>(w);
             if (!m2.has_value()) return;
             const auto r = routers_.find(router_node);
             if (r == routers_.end() || r->second.router == nullptr) return;
             // Arrivals enqueue; the first one in a tick schedules a
             // same-time drain (FIFO among same-time events puts it after
             // every arrival of the tick), so all M.2s landing together
             // verify as one batch.
             std::vector<PendingAuth>& pending = pending_auth_[router_node];
             pending.push_back(PendingAuth{user_node, std::move(*m2)});
             if (pending.size() == 1)
               sim_.schedule_in(
                   0, [this, router_node] { drain_auth_batch(router_node); });
           });

  // The RTO timer drives both retransmission and, once the budget is gone,
  // giving up — which is also how a lost M.3 or a rejected request frees
  // the attempt for the next beacon.
  const std::uint64_t generation = attempt.generation;
  sim_.schedule_in(rto_for(attempt.tries), [this, user_node, generation] {
    on_m2_timeout(user_node, generation);
  });
}

void MeshNetwork::on_m2_timeout(NodeId user_node, std::uint64_t generation) {
  const auto it = users_.find(user_node);
  if (it == users_.end()) return;
  UserNode& unode = it->second;
  if (!unode.attempt.has_value() || unode.attempt->generation != generation)
    return;  // completed or superseded — a stale timer is a no-op
  if (unode.uplink.has_value()) {
    unode.attempt.reset();
    return;
  }
  // Byte-identical M.2 retransmission only helps when routers run the
  // idempotent-resend cache (PROTOCOL.md §10.1): a strict-mode router
  // rejects the duplicate as a replay, so there the RTO degrades to a
  // watchdog that frees the attempt for a fresh M.2 at the next beacon.
  const bool retransmit =
      reliability_.handshake_retransmit && proto_config_.idempotent_resend;
  const unsigned budget = retransmit ? reliability_.retry_budget : 0;
  if (unode.attempt->tries > budget) {
    ++stats_.handshake_timeouts;
    obs::sec_emit(obs::SecEventKind::kHandshakeTimeout, sim_.now(), user_node,
                  unode.attempt->router_node);
    obs::Tracer::global().instant_at("mesh.handshake_timeout", "reliability",
                                     sim_us(sim_.now()),
                                     {{"user", user_node}});
    obs::Tracer::global().async_end("access_handshake", "handshake",
                                    user_node, sim_us(sim_.now()),
                                    {{"timed_out", 1}});
    const NodeId failed = unode.attempt->router_node;
    // Failover backoff only once retries actually probed the router — a
    // single unanswered strict-mode attempt says nothing about its health.
    if (retransmit)
      unode.router_backoff_until[failed] =
          sim_.now() + reliability_.failover_backoff_ms;
    unode.last_failed_router = failed;
    unode.attempt.reset();
    return;
  }
  send_m2(user_node);
}

void MeshNetwork::on_m3(NodeId user_node, NodeId router_node,
                        const Bytes& wire) {
  const auto m3 = parse<proto::AccessConfirm>(wire);
  if (!m3.has_value()) return;
  const auto uit = users_.find(user_node);
  if (uit == users_.end()) return;  // roamed away while the M.3 flew
  UserNode& unode = uit->second;
  // A duplicate M.3 after completion is a no-op: the pending-handshake
  // entry was consumed, so process_access_confirm returns nullopt.
  auto session = unode.user->process_access_confirm(*m3);
  if (!session.has_value()) return;
  unode.uplink_session_id = session->id();
  unode.uplink = std::move(*session);
  unode.uplink_established_at = sim_.now();
  unode.serving = static_cast<proto::RouterId>(router_node);
  unode.serving_node = router_node;
  unode.rekey_pending = false;
  unode.attempt.reset();
  obs::Tracer::global().async_end("access_handshake", "handshake", user_node,
                                  sim_us(sim_.now()),
                                  {{"router", router_node}});
  if (unode.last_failed_router.has_value() &&
      *unode.last_failed_router != router_node) {
    ++stats_.failovers;
    obs::Tracer::global().instant_at(
        "mesh.failover", "reliability", sim_us(sim_.now()),
        {{"user", user_node}, {"router", router_node}});
  }
  unode.last_failed_router.reset();
}

void MeshNetwork::drain_auth_batch(NodeId router_node) {
  std::vector<PendingAuth> batch = std::move(pending_auth_[router_node]);
  pending_auth_.erase(router_node);
  if (batch.empty()) return;
  const auto rit = routers_.find(router_node);
  if (rit == routers_.end() || rit->second.router == nullptr) return;

  std::vector<proto::AccessRequest> requests;
  requests.reserve(batch.size());
  for (const PendingAuth& p : batch) requests.push_back(p.m2);
  auto outcomes =
      rit->second.router->handle_access_requests(requests, sim_.now());

  for (std::size_t i = 0; i < batch.size(); ++i) {
    const NodeId user_node = batch[i].user_node;
    // A rejected request sends nothing back; the user's RTO timer
    // retransmits and eventually abandons the attempt.
    if (!outcomes[i].has_value()) continue;
    transmit("m3", outcomes[i]->confirm.to_bytes(), router_node, user_node,
             [this, user_node, router_node](const Bytes& w) {
               on_m3(user_node, router_node, w);
             });
  }
}

void MeshNetwork::establish_peer_links() {
  std::vector<std::pair<NodeId, NodeId>> pairs;
  for (auto it = users_.begin(); it != users_.end(); ++it) {
    auto jt = it;
    for (++jt; jt != users_.end(); ++jt) {
      if (distance(it->second.pos, jt->second.pos) <= radio_.user_range)
        pairs.emplace_back(it->first, jt->first);
    }
  }
  for (const auto& [a, b] : pairs) {
    sim_.schedule_in(1, [this, a = a, b = b] { start_peer_handshake(a, b); });
  }
}

void MeshNetwork::start_peer_handshake(NodeId a, NodeId b) {
  const auto ait = users_.find(a);
  if (ait == users_.end() || !users_.contains(b)) return;
  UserNode& na = ait->second;
  if (na.peer_sessions.contains(b)) return;
  if (peer_attempts_.contains({a, b})) return;  // already in flight

  // Both need a generator g from a beacon; use the serving router's, or the
  // canonical generator when not yet attached.
  const curve::G1 g = curve::Bn254::get().g1_gen;
  const proto::PeerHello hello = na.user->make_peer_hello(g, sim_.now());
  peer_attempts_[{a, b}] =
      PeerAttempt{"peer1", hello.to_bytes(), a, b, 0, ++attempt_seq_};
  obs::Tracer::global().async_begin("peer_handshake", "handshake",
                                    peer_span_id(a, b), sim_us(sim_.now()),
                                    {{"initiator", a}, {"responder", b}});
  send_peer_frame(a, b);
}

void MeshNetwork::send_peer_frame(NodeId from, NodeId to) {
  const auto it = peer_attempts_.find({from, to});
  if (it == peer_attempts_.end()) return;
  PeerAttempt& attempt = it->second;
  ++attempt.tries;
  if (attempt.tries > 1) {
    ++stats_.retransmissions;
    obs::Tracer::global().instant_at(
        "mesh.retransmit", "reliability", sim_us(sim_.now()),
        {{"user", from}, {"tries", attempt.tries}});
  }
  if (attempt.kind[4] == '1') {  // "peer1"
    transmit(attempt.kind, attempt.wire, from, to,
             [this, from, to](const Bytes& w) { on_peer_hello(to, from, w); });
  } else {  // "peer2"
    transmit(attempt.kind, attempt.wire, from, to,
             [this, from, to](const Bytes& w) { on_peer_reply(to, from, w); });
  }
  const std::uint64_t generation = attempt.generation;
  sim_.schedule_in(rto_for(attempt.tries), [this, from, to, generation] {
    on_peer_timeout(from, to, generation);
  });
}

void MeshNetwork::on_peer_timeout(NodeId from, NodeId to,
                                  std::uint64_t generation) {
  const auto it = peer_attempts_.find({from, to});
  if (it == peer_attempts_.end() || it->second.generation != generation)
    return;
  // The sender's half of the session existing is completion for both
  // frames: the initiator holds it after M~.2, the responder after M~.3.
  const auto fit = users_.find(from);
  if (fit == users_.end()) {  // roamed away mid-handshake
    peer_attempts_.erase(it);
    return;
  }
  if (fit->second.peer_sessions.contains(to)) {
    peer_attempts_.erase(it);
    return;
  }
  const unsigned budget =
      reliability_.handshake_retransmit ? reliability_.retry_budget : 0;
  if (it->second.tries > budget) {
    ++stats_.handshake_timeouts;
    obs::sec_emit(obs::SecEventKind::kHandshakeTimeout, sim_.now(), from, to);
    obs::Tracer::global().instant_at("mesh.handshake_timeout", "reliability",
                                     sim_us(sim_.now()), {{"user", from}});
    // Only the initiator's "peer1" attempt owns the handshake span — the
    // responder's "peer2" attempt shares this timer but opened no span.
    if (it->second.kind[4] == '1')
      obs::Tracer::global().async_end("peer_handshake", "handshake",
                                      peer_span_id(from, to),
                                      sim_us(sim_.now()), {{"timed_out", 1}});
    peer_attempts_.erase(it);
    return;
  }
  send_peer_frame(from, to);
}

void MeshNetwork::on_peer_hello(NodeId me, NodeId from, const Bytes& wire) {
  const auto hello = parse<proto::PeerHello>(wire);
  if (!hello.has_value()) return;
  const auto mit = users_.find(me);
  if (mit == users_.end()) return;
  UserNode& nb = mit->second;
  // With idempotent resend on, a duplicate hello is answered from the
  // user's reply cache (byte-identical M~.2, no new DH share); otherwise
  // the strict endpoint mints a fresh reply per delivery.
  auto reply = nb.user->process_peer_hello(*hello, sim_.now());
  if (!reply.has_value()) return;
  const Bytes reply_wire = reply->to_bytes();
  if (!nb.peer_sessions.contains(from)) {
    const auto [it, inserted] = peer_attempts_.try_emplace(
        std::make_pair(me, from),
        PeerAttempt{"peer2", reply_wire, me, from, 0, ++attempt_seq_});
    if (inserted) {
      // First hello: the reply rides the responder's own RTO timer, since a
      // lost M~.3 is recovered by retransmitting M~.2.
      send_peer_frame(me, from);
      return;
    }
  }
  // Duplicate hello while the attempt (or a finished session) exists: send
  // the reply once more without disturbing the running timer.
  transmit("peer2", reply_wire, me, from,
           [this, me, from](const Bytes& w) { on_peer_reply(from, me, w); });
}

void MeshNetwork::on_peer_reply(NodeId me, NodeId from, const Bytes& wire) {
  const auto reply = parse<proto::PeerReply>(wire);
  if (!reply.has_value()) return;
  const auto mit = users_.find(me);
  if (mit == users_.end()) return;
  UserNode& na = mit->second;
  auto established = na.user->process_peer_reply(*reply, sim_.now());
  if (established.has_value()) {
    na.peer_sessions.emplace(from, std::move(established->session));
    peer_attempts_.erase({me, from});  // initiator attempt complete
    obs::Tracer::global().async_end("peer_handshake", "handshake",
                                    peer_span_id(me, from),
                                    sim_us(sim_.now()));
    transmit("peer3", established->confirm.to_bytes(), me, from,
             [this, me, from](const Bytes& w) { on_peer_confirm(from, me, w); });
    return;
  }
  // Duplicate M~.2 — the responder retransmitted because our M~.3 was lost.
  // The idempotent-resend cache returns the byte-identical confirmation.
  if (auto confirm = na.user->cached_peer_confirm(*reply);
      confirm.has_value()) {
    ++stats_.retransmissions;
    transmit("peer3", confirm->to_bytes(), me, from,
             [this, me, from](const Bytes& w) { on_peer_confirm(from, me, w); });
  }
}

void MeshNetwork::on_peer_confirm(NodeId me, NodeId from, const Bytes& wire) {
  const auto confirm = parse<proto::PeerConfirm>(wire);
  if (!confirm.has_value()) return;
  const auto mit = users_.find(me);
  if (mit == users_.end()) return;
  UserNode& nb = mit->second;
  // A duplicate M~.3 is a no-op: the pending-responder entry was consumed.
  auto session = nb.user->process_peer_confirm(*confirm);
  if (!session.has_value()) return;
  nb.peer_sessions.emplace(from, std::move(*session));
  peer_attempts_.erase({me, from});  // responder attempt complete
}

std::optional<NodeId> MeshNetwork::next_relay_hop(NodeId from,
                                                  const Vec2& target) {
  const UserNode& node = users_.at(from);
  const double own = distance(node.pos, target);
  std::optional<NodeId> best;
  double best_dist = own;
  for (const auto& [peer, _] : node.peer_sessions) {
    if (link_blocked(from, peer)) continue;  // route around partitions
    const double d = distance(users_.at(peer).pos, target);
    if (d < best_dist) {
      best_dist = d;
      best = peer;
    }
  }
  return best;
}

void MeshNetwork::start_rekey(NodeId user_id) {
  UserNode& node = users_.at(user_id);
  if (!node.uplink.has_value() || node.rekey_pending) return;
  ++stats_.rekeys;
  obs::sec_emit(obs::SecEventKind::kSessionRekey, sim_.now(), user_id);
  obs::Tracer::global().instant_at("mesh.rekey", "reliability",
                                   sim_us(sim_.now()), {{"user", user_id}});
  node.rekey_pending = true;
  // The retired session keeps draining in-flight frames; the next beacon
  // starts a fresh anonymous handshake (never a resumption).
  node.old_uplink = std::move(node.uplink);
  node.uplink.reset();
  node.old_uplink_session_id = std::move(node.uplink_session_id);
  node.uplink_session_id.clear();
  const Bytes old_id = node.old_uplink_session_id;
  const NodeId router_node = node.serving_node.value_or(0);
  sim_.schedule_in(reliability_.drain_window_ms,
                   [this, user_id, router_node, old_id] {
    if (const auto r = routers_.find(router_node);
        r != routers_.end() && r->second.router != nullptr)
      r->second.router->close_session(old_id);
    const auto u = users_.find(user_id);
    if (u == users_.end()) return;
    if (u->second.old_uplink_session_id == old_id) {
      u->second.old_uplink.reset();
      u->second.old_uplink_session_id.clear();
    }
  });
}

void MeshNetwork::rekey(NodeId user_id) {
  if (!users_.contains(user_id)) throw Error("mesh: no such user");
  start_rekey(user_id);
}

void MeshNetwork::maybe_rekey(NodeId user_id, UserNode& node) {
  if (!node.uplink.has_value() || node.rekey_pending) return;
  const bool exhausted = node.uplink->seq_exhausted();
  const bool frames_spent =
      reliability_.rekey_after_frames > 0 &&
      node.uplink->frames_sent() >= reliability_.rekey_after_frames;
  const bool too_old =
      reliability_.rekey_max_session_ms > 0 &&
      sim_.now() - node.uplink_established_at >= reliability_.rekey_max_session_ms;
  if (exhausted || frames_spent || too_old) start_rekey(user_id);
}

bool MeshNetwork::send_data(NodeId user_id, BytesView payload) {
  UserNode& origin = users_.at(user_id);
  // Rekey policy first: a retired uplink moves to the drain window and this
  // very frame already rides the old session while the fresh handshake runs.
  maybe_rekey(user_id, origin);
  const bool on_old = !origin.uplink.has_value();
  proto::Session* uplink = origin.uplink.has_value() ? &*origin.uplink
                           : origin.old_uplink.has_value()
                               ? &*origin.old_uplink
                               : nullptr;
  if (uplink == nullptr || !origin.serving_node.has_value()) {
    ++stats_.data_undeliverable;
    return false;
  }
  const Bytes& session_id =
      on_old ? origin.old_uplink_session_id : origin.uplink_session_id;
  const NodeId router_node = *origin.serving_node;
  const Vec2 rpos = routers_.at(router_node).pos;

  // End-to-end protection with the router session (relays see ciphertext).
  // try_seal refuses at sequence exhaustion — surfaced as a rekey trigger,
  // never an exception on the data path.
  auto frame = uplink->try_seal(payload);
  if (!frame.has_value()) {
    if (!on_old) {
      start_rekey(user_id);
    } else {
      origin.old_uplink.reset();
      origin.old_uplink_session_id.clear();
    }
    ++stats_.data_undeliverable;
    return false;
  }
  Bytes wire = frame->to_bytes();

  if (node_down(router_node)) {
    // The serving router is dead (crash, no beacons): abandon the uplink so
    // the next beacon — from whichever router — re-authenticates.
    origin.last_failed_router = router_node;
    reassociate(user_id);
    ++stats_.data_undeliverable;
    return false;
  }

  // Greedy geographic relay until within user_range of the router. The
  // data path is synchronous, so of the fault plan only loss, corruption,
  // and partitions apply per hop (duplication/reorder are meaningless for
  // an inline delivery).
  NodeId current = user_id;
  std::uint64_t hops = 0;
  const auto hop_survives = [&](NodeId from, NodeId to) {
    observe("data", wire);
    if (link_blocked(from, to) || node_down(to)) {
      ++stats_.frames_partitioned;
      return false;
    }
    const FaultVerdict verdict = faults_.judge(rng_);
    if (verdict.lost) {
      ++stats_.frames_lost;
      return false;
    }
    if (verdict.corrupt) FaultInjector::corrupt(wire, rng_);
    return true;
  };
  while (distance(users_.at(current).pos, rpos) > radio_.user_range) {
    const auto next = next_relay_hop(current, rpos);
    if (!next.has_value()) {
      ++stats_.data_undeliverable;
      return false;
    }
    if (!hop_survives(current, *next)) return false;
    current = *next;
    ++hops;
  }
  if (!hop_survives(current, router_node)) return false;
  const auto rit = routers_.find(router_node);
  proto::Session* rsession = rit->second.router == nullptr
                                 ? nullptr
                                 : rit->second.router->session(session_id);
  if (rsession == nullptr) {
    // The router lost the session (crash/restart): drop the stale uplink so
    // the next beacon re-authenticates — possibly to another router.
    origin.last_failed_router = router_node;
    reassociate(user_id);
    ++stats_.data_undeliverable;
    return false;
  }
  const auto parsed = parse<DataFrame>(wire);
  if (!parsed.has_value()) {
    ++stats_.data_undeliverable;
    return false;
  }
  const auto got = rsession->open(*parsed);
  if (!got.has_value()) {
    ++stats_.data_undeliverable;
    return false;
  }
  stats_.relay_hops_total += hops;
  ++stats_.data_delivered;
  return true;
}

NodeId MeshNetwork::add_access_point(Vec2 pos) {
  const NodeId id = next_id_++;
  access_points_.emplace(id, pos);
  return id;
}

const Bytes& MeshNetwork::backbone_key(NodeId a, NodeId b) {
  const auto key = a < b ? std::make_pair(a, b) : std::make_pair(b, a);
  auto it = backbone_keys_.find(key);
  if (it == backbone_keys_.end()) {
    it = backbone_keys_.emplace(key, rng_.bytes(32)).first;
  }
  return it->second;
}

std::vector<NodeId> MeshNetwork::backbone_neighbors(NodeId node) const {
  Vec2 pos;
  if (const auto r = routers_.find(node); r != routers_.end()) {
    pos = r->second.pos;
  } else if (const auto a = access_points_.find(node);
             a != access_points_.end()) {
    pos = a->second;
  } else {
    throw Error("mesh: not a backbone node");
  }
  std::vector<NodeId> out;
  for (const auto& [id, rn] : routers_) {
    if (id != node && distance(pos, rn.pos) <= radio_.backbone_range)
      out.push_back(id);
  }
  for (const auto& [id, ap_pos] : access_points_) {
    if (id != node && distance(pos, ap_pos) <= radio_.backbone_range)
      out.push_back(id);
  }
  return out;
}

std::optional<std::size_t> MeshNetwork::backbone_hops_to_ap(
    NodeId router_node) const {
  if (!routers_.contains(router_node)) throw Error("mesh: not a router");
  // BFS over the backbone graph toward any access point.
  std::map<NodeId, std::size_t> dist{{router_node, 0}};
  std::vector<NodeId> frontier{router_node};
  while (!frontier.empty()) {
    std::vector<NodeId> next;
    for (const NodeId node : frontier) {
      if (access_points_.contains(node)) return dist[node];
      for (const NodeId nb : backbone_neighbors(node)) {
        if (!dist.contains(nb)) {
          dist[nb] = dist[node] + 1;
          next.push_back(nb);
        }
      }
    }
    frontier = std::move(next);
  }
  return std::nullopt;
}

bool MeshNetwork::send_to_internet(NodeId user_id, BytesView payload) {
  // First leg: the standard user -> serving-router delivery.
  if (!send_data(user_id, payload)) return false;
  const NodeId router_node = *users_.at(user_id).serving_node;

  // Second leg: BFS path across the backbone to the nearest AP; every hop
  // carries the (already session-encrypted) frame under the link's secure
  // channel, modelled as an HMAC the next hop verifies.
  std::map<NodeId, NodeId> parent;
  std::map<NodeId, std::size_t> dist{{router_node, 0}};
  std::vector<NodeId> frontier{router_node};
  std::optional<NodeId> reached_ap;
  while (!frontier.empty() && !reached_ap.has_value()) {
    std::vector<NodeId> next;
    for (const NodeId node : frontier) {
      if (access_points_.contains(node)) {
        reached_ap = node;
        break;
      }
      for (const NodeId nb : backbone_neighbors(node)) {
        if (!dist.contains(nb)) {
          dist[nb] = dist[node] + 1;
          parent[nb] = node;
          next.push_back(nb);
        }
      }
    }
    frontier = std::move(next);
  }
  if (!reached_ap.has_value()) {
    ++stats_.data_undeliverable;
    return false;
  }
  // Reconstruct the path and walk it hop by hop.
  std::vector<NodeId> path{*reached_ap};
  while (path.back() != router_node) path.push_back(parent.at(path.back()));
  std::reverse(path.begin(), path.end());

  // Each hop re-encrypts under the link's secure-channel key, so the air
  // interface carries only AEAD ciphertext even on the backbone.
  Bytes frame(payload.begin(), payload.end());
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    const Bytes& key = backbone_key(path[i], path[i + 1]);
    const Bytes nonce = rng_.bytes(crypto::kAeadNonceSize);
    const Bytes sealed = crypto::aead_seal(key, nonce, {}, frame);
    observe("backbone", sealed);
    const auto opened = crypto::aead_open(key, nonce, {}, sealed);
    if (!opened.has_value()) {
      ++stats_.backbone_mac_failures;  // unreachable with honest links
      return false;
    }
    frame = *opened;
    ++stats_.backbone_hops_total;
  }
  ++stats_.internet_delivered;
  return true;
}

void MeshNetwork::reassociate(NodeId user_id) {
  UserNode& node = users_.at(user_id);
  node.uplink.reset();
  node.uplink_session_id.clear();
  node.old_uplink.reset();
  node.old_uplink_session_id.clear();
  node.serving.reset();
  node.serving_node.reset();
  node.attempt.reset();  // pending RTO timers go stale via the generation
  node.rekey_pending = false;
}

bool MeshNetwork::is_connected(NodeId user_id) const {
  const auto it = users_.find(user_id);
  if (it == users_.end()) return false;
  // During a rekey's drain window the retired session still counts — the
  // user holds an authenticated uplink throughout.
  return it->second.uplink.has_value() || it->second.old_uplink.has_value();
}

std::optional<proto::RouterId> MeshNetwork::serving_router(
    NodeId user_id) const {
  const auto it = users_.find(user_id);
  if (it == users_.end()) return std::nullopt;
  return it->second.serving;
}

std::vector<NodeId> MeshNetwork::router_ids() const {
  std::vector<NodeId> out;
  for (const auto& [id, _] : routers_) out.push_back(id);
  return out;
}

std::vector<NodeId> MeshNetwork::user_ids() const {
  std::vector<NodeId> out;
  for (const auto& [id, _] : users_) out.push_back(id);
  return out;
}

NetworkStats sum(const NetworkStats& a, const NetworkStats& b) {
  // Counter audit (the PR 5 convention): every field must be a uint64_t
  // event count so this merge is commutative — a field that is not a plain
  // sum (a high-water mark, a ratio) must NOT be added to NetworkStats but
  // to a dedicated struct with its own merge rule.
  static_assert(sizeof(NetworkStats) == 17 * sizeof(std::uint64_t),
                "NetworkStats gained a field: add it to sum() and confirm "
                "it is an order-independent uint64_t event count");
  NetworkStats out = a;
  out.frames_transmitted += b.frames_transmitted;
  out.users_removed += b.users_removed;
  out.frames_lost += b.frames_lost;
  out.data_delivered += b.data_delivered;
  out.data_undeliverable += b.data_undeliverable;
  out.relay_hops_total += b.relay_hops_total;
  out.internet_delivered += b.internet_delivered;
  out.backbone_hops_total += b.backbone_hops_total;
  out.backbone_mac_failures += b.backbone_mac_failures;
  out.retransmissions += b.retransmissions;
  out.handshake_timeouts += b.handshake_timeouts;
  out.rekeys += b.rekeys;
  out.failovers += b.failovers;
  out.corrupted_rejected += b.corrupted_rejected;
  out.frames_duplicated += b.frames_duplicated;
  out.frames_delayed += b.frames_delayed;
  out.frames_partitioned += b.frames_partitioned;
  return out;
}

void absorb_network_stats(const NetworkStats& totals,
                          std::uint64_t sim_events_processed) {
  auto& reg = obs::Registry::global();
  reg.counter("mesh.frames_transmitted").set(totals.frames_transmitted);
  reg.counter("mesh.users_removed").set(totals.users_removed);
  reg.counter("mesh.frames_lost").set(totals.frames_lost);
  reg.counter("mesh.data_delivered").set(totals.data_delivered);
  reg.counter("mesh.data_undeliverable").set(totals.data_undeliverable);
  reg.counter("mesh.relay_hops_total").set(totals.relay_hops_total);
  reg.counter("mesh.internet_delivered").set(totals.internet_delivered);
  reg.counter("mesh.backbone_hops_total").set(totals.backbone_hops_total);
  reg.counter("mesh.backbone_mac_failures").set(totals.backbone_mac_failures);
  reg.counter("mesh.retransmissions").set(totals.retransmissions);
  reg.counter("mesh.handshake_timeouts").set(totals.handshake_timeouts);
  reg.counter("mesh.rekeys").set(totals.rekeys);
  reg.counter("mesh.failovers").set(totals.failovers);
  reg.counter("mesh.corrupted_rejected").set(totals.corrupted_rejected);
  reg.counter("mesh.frames_duplicated").set(totals.frames_duplicated);
  reg.counter("mesh.frames_delayed").set(totals.frames_delayed);
  reg.counter("mesh.frames_partitioned").set(totals.frames_partitioned);
  reg.counter("sim.events_processed").set(sim_events_processed);
}

proto::RouterStats MeshNetwork::router_stats_total() const {
  // Crashed routers have no live MeshRouter, so their since-restart stats
  // are gone, exactly as stats() reporting always worked.
  proto::RouterStats totals;
  for (const auto& [id, node] : routers_) {
    if (node.router == nullptr) continue;
    totals = proto::sum(totals, node.router->stats());
  }
  return totals;
}

proto::UserStats MeshNetwork::user_stats_total() const {
  proto::UserStats totals;
  for (const auto& [id, node] : users_)
    totals = proto::sum(totals, node.user->stats());
  return totals;
}

groupsig::OpCounters MeshNetwork::verify_ops_total() const {
  groupsig::OpCounters totals;
  for (const auto& [id, node] : routers_) {
    if (node.router == nullptr) continue;
    totals.merge(node.router->verify_ops());
  }
  return totals;
}

void MeshNetwork::publish_metrics() const {
  // Mirror the deterministic stats structs into the registry (idempotent —
  // Counter::set of totals; see metrics_export.hpp).
  proto::absorb_router_stats(router_stats_total());
  proto::absorb_user_stats(user_stats_total());
  proto::absorb_verify_ops(verify_ops_total());
  if (revocation_ != nullptr)
    proto::absorb_revocation_stats(revocation_->stats());
  absorb_network_stats(stats_, sim_.events_processed());
  // Flush any buffered security events to the trace sink alongside the
  // counter snapshot (single-network drivers; the metro barrier drains for
  // sharded runs).
  obs::drain_sec_events();
}

}  // namespace peace::mesh
