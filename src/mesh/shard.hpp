// One shard of the metro-scale simulation: a mesh segment that owns its
// OWN discrete-event queue (Simulator), its own MeshNetwork — and through
// it the segment's VerifyPools (one per router, ProtocolConfig::
// verify_threads) and the segment's RCU SharedRevocationState snapshot —
// plus a FrameArena for in-flight cross-shard frames and an explicit
// mailbox pair (inbox/outbox) of CrossShardMsgs.
//
// Ownership and determinism contract (docs/ARCHITECTURE.md §7):
//
//  * Everything a shard owns is touched only while that shard's event loop
//    runs (the metro driver executes shards one at a time; the only threads
//    alive inside a shard are its routers' VerifyPool workers, which never
//    escape the shard). No locks, no cross-shard references.
//  * Shards interact ONLY through mailboxes, and mailboxes move ONLY at
//    tick barriers (MetroSimulation::run_until): during a tick a shard may
//    append to its outbox; at the barrier the metro layer routes every
//    outbox message to its destination inbox and applies it before any
//    event of the next tick runs. Message order is globally deterministic
//    (emission order; shards execute in fixed id order within a tick).
//  * A topology that fits in one shard therefore produces a bit-identical
//    run to the pre-sharding single event loop: no mailbox traffic exists,
//    and run_until(T) tick-by-tick visits events in exactly the order one
//    run_until(T) call would (asserted by MetroTest.SingleShardBitIdentity).
//
// Bounded state: the inbox has a hard cap (overflow messages are dropped
// and counted, shedding load instead of growing), the arena caps frames
// outstanding, and the per-endpoint pending caps of PROTOCOL.md §10 bound
// everything inside the MeshNetwork — so per-shard memory stays bounded at
// 10^5–10^6 metro users.
#pragma once

#include <deque>
#include <memory>
#include <string>

#include "mesh/arena.hpp"
#include "mesh/network.hpp"
#include "mesh/simulator.hpp"
#include "obs/sec_event.hpp"

namespace peace::mesh {

using ShardId = std::uint32_t;
using MetroUserId = std::uint64_t;

struct ShardConfig {
  /// Hard cap on queued inbox messages; overflow is dropped and counted.
  std::size_t inbox_cap = 1 << 16;
  /// Hard cap on arena frames outstanding at once within the shard.
  std::size_t frame_cap = 1 << 16;
  /// Per-shard lifetime event budget (Simulator::set_event_budget);
  /// 0 = unlimited. A budget exhaustion throws an error naming the shard.
  std::uint64_t event_budget = 0;
};

/// One message crossing a shard boundary at a tick barrier.
struct CrossShardMsg {
  enum class Kind : std::uint8_t {
    /// A user roaming between segments: carries the proto::User itself
    /// (keys and credentials; never sessions — roaming re-authenticates).
    kUserHandoff,
    /// An internet-bound frame relayed over the wired backbone toward a
    /// shard with an access point (one shard hop per tick).
    kInternetRelay,
    /// Scenario-defined opaque payload, dispatched to the metro frame
    /// handler at the destination barrier.
    kFrame,
  };

  Kind kind = Kind::kFrame;
  ShardId from = 0;
  ShardId to = 0;
  std::uint64_t seq = 0;  // global emission order (deterministic replay)
  // kUserHandoff:
  MetroUserId user = 0;
  Vec2 pos{};
  std::unique_ptr<proto::User> carried;
  // kInternetRelay / kFrame: pooled payload (returns to the ORIGIN shard's
  // arena when the message dies) and a scenario-defined tag.
  std::uint32_t tag = 0;
  PooledFrame frame;
};

struct ShardStats {
  std::uint64_t msgs_out = 0;       // messages this shard emitted
  std::uint64_t msgs_in = 0;        // messages applied to this shard
  std::uint64_t inbox_dropped = 0;  // overflow at the inbox cap
  std::uint64_t handoffs_in = 0;    // users that roamed into this segment
  std::uint64_t handoffs_out = 0;   // users that roamed out
};

class Shard {
 public:
  Shard(ShardId id, std::string name, const ShardConfig& config,
        crypto::Drbg rng, RadioConfig radio = {},
        proto::ProtocolConfig proto_config = {},
        ReliabilityConfig reliability = {})
      : id_(id),
        name_(std::move(name)),
        config_(config),
        arena_(config.frame_cap),
        net_(sim_, std::move(rng), radio, proto_config, reliability) {
    sim_.set_name(name_);
    sim_.set_event_budget(config.event_budget);
  }
  Shard(const Shard&) = delete;
  Shard& operator=(const Shard&) = delete;

  ShardId id() const { return id_; }
  const std::string& name() const { return name_; }
  const ShardConfig& config() const { return config_; }

  Simulator& sim() { return sim_; }
  const Simulator& sim() const { return sim_; }
  MeshNetwork& net() { return net_; }
  const MeshNetwork& net() const { return net_; }
  FrameArena& arena() { return arena_; }
  const ShardStats& stats() const { return stats_; }

  /// Appends to the outbox (called through MetroSimulation emission APIs,
  /// which stamp the global sequence number).
  void emit(CrossShardMsg msg) {
    ++stats_.msgs_out;
    if (msg.kind == CrossShardMsg::Kind::kUserHandoff) ++stats_.handoffs_out;
    outbox_.push_back(std::move(msg));
  }

  /// Enqueues an arriving message, enforcing the inbox cap. Returns false
  /// (dropping the message) on overflow.
  bool enqueue(CrossShardMsg msg) {
    if (inbox_.size() >= config_.inbox_cap) {
      ++stats_.inbox_dropped;
      obs::sec_emit_for_shard(obs::SecEventKind::kInboxShed, id_, sim_.now(),
                              id_, inbox_.size());
      return false;
    }
    inbox_.push_back(std::move(msg));
    return true;
  }

  bool inbox_full() const { return inbox_.size() >= config_.inbox_cap; }
  /// Counts an overflow drop without consuming anything (the metro layer
  /// checks inbox_full() first for messages it would rather park than lose).
  void count_inbox_drop() {
    ++stats_.inbox_dropped;
    obs::sec_emit_for_shard(obs::SecEventKind::kInboxShed, id_, sim_.now(),
                            id_, inbox_.size());
  }

  std::vector<CrossShardMsg> take_outbox() {
    std::vector<CrossShardMsg> out = std::move(outbox_);
    outbox_.clear();
    return out;
  }
  std::deque<CrossShardMsg>& inbox() { return inbox_; }
  void count_applied(const CrossShardMsg& msg) {
    ++stats_.msgs_in;
    if (msg.kind == CrossShardMsg::Kind::kUserHandoff) ++stats_.handoffs_in;
  }

 private:
  ShardId id_;
  std::string name_;
  ShardConfig config_;
  Simulator sim_;
  FrameArena arena_;  // outlives net_: in-flight closures may hold frames
  MeshNetwork net_;
  std::vector<CrossShardMsg> outbox_;
  std::deque<CrossShardMsg> inbox_;
  ShardStats stats_;
};

}  // namespace peace::mesh
