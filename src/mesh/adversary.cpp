#include "mesh/adversary.hpp"

#include <cstring>

#include "curve/ecdsa.hpp"

namespace peace::mesh {

using curve::g1_to_bytes;
using curve::random_fr;
using proto::AccessRequest;
using proto::BeaconMessage;

// --- Eavesdropper -------------------------------------------------------------

void Eavesdropper::attach(MeshNetwork& net) {
  net.add_tap([this](const WireObservation& obs) { on_frame(obs); });
}

void Eavesdropper::on_frame(const WireObservation& obs) {
  frames_.push_back(obs);
  if (std::strcmp(obs.kind, "m2") == 0) {
    ++m2_count_;
    // Extract the fields a linkage attacker would index on.
    const AccessRequest m2 = AccessRequest::from_bytes(obs.payload);
    ++field_occurrences_["g_rj:" + to_hex(g1_to_bytes(m2.g_rj))];
    ++field_occurrences_["t1:" + to_hex(g1_to_bytes(m2.signature.t1))];
    ++field_occurrences_["t2:" + to_hex(g1_to_bytes(m2.signature.t2))];
    ++field_occurrences_["that:" +
                         to_hex(curve::g2_to_bytes(m2.signature.t_hat))];
    ++field_occurrences_["nonce:" +
                         to_hex(curve::fr_to_bytes(m2.signature.nonce))];
  }
  // Data frames: the adversary records ciphertext; without keys nothing is
  // recoverable, so recovered_ is only ever appended on a crypto failure.
}

std::size_t Eavesdropper::repeated_field_count() const {
  std::size_t repeats = 0;
  for (const auto& [field, n] : field_occurrences_) {
    if (n > 1) ++repeats;
  }
  return repeats;
}

bool Eavesdropper::saw_bytes(BytesView needle) const {
  if (needle.empty()) return false;
  for (const WireObservation& obs : frames_) {
    const auto it = std::search(obs.payload.begin(), obs.payload.end(),
                                needle.begin(), needle.end());
    if (it != obs.payload.end()) return true;
  }
  return false;
}

// --- Replayer -------------------------------------------------------------------

void Replayer::attach(MeshNetwork& net) {
  net.add_tap([this](const WireObservation& obs) {
    if (std::strcmp(obs.kind, "m2") == 0) captured_.push_back(obs.payload);
  });
}

std::size_t Replayer::replay_all(proto::MeshRouter& router,
                                 proto::Timestamp now) {
  std::size_t accepted = 0;
  for (const Bytes& wire : captured_) {
    if (router.handle_access_request(AccessRequest::from_bytes(wire), now)
            .has_value())
      ++accepted;
  }
  return accepted;
}

// --- BogusInjector ----------------------------------------------------------------

AccessRequest BogusInjector::forge_request(const BeaconMessage& beacon,
                                           proto::Timestamp now) {
  const auto& bn = curve::Bn254::get();
  AccessRequest m2;
  m2.g_rj = bn.g1_gen * random_fr(rng_);
  m2.g_rr = beacon.g_rr;
  m2.ts2 = now;
  // Structurally valid signature fields with no knowledge of any gsk.
  m2.signature.nonce = random_fr(rng_);
  m2.signature.t1 = bn.g1_gen * random_fr(rng_);
  m2.signature.t2 = bn.g1_gen * random_fr(rng_);
  m2.signature.t_hat = bn.g2_gen * random_fr(rng_);
  m2.signature.r1 = bn.g1_gen * random_fr(rng_);
  // A wire-plausible R2: random pairing value, so it passes the cyclotomic
  // subgroup check yet satisfies no verification equation.
  m2.signature.r2 =
      curve::pairing(bn.g1_gen * random_fr(rng_), bn.g2_gen);
  m2.signature.r3 = bn.g1_gen * random_fr(rng_);
  m2.signature.r4 = bn.g2_gen * random_fr(rng_);
  m2.signature.s_alpha = random_fr(rng_);
  m2.signature.s_x = random_fr(rng_);
  m2.signature.s_delta = random_fr(rng_);
  return m2;
}

std::size_t BogusInjector::inject(proto::MeshRouter& router,
                                  const BeaconMessage& beacon,
                                  proto::Timestamp now, std::size_t count) {
  std::size_t accepted = 0;
  for (std::size_t i = 0; i < count; ++i) {
    if (router.handle_access_request(forge_request(beacon, now), now)
            .has_value())
      ++accepted;
  }
  return accepted;
}

// --- DosFlooder --------------------------------------------------------------------

DosFlooder::FloodReport DosFlooder::flood(proto::MeshRouter& router,
                                          const BeaconMessage& beacon,
                                          proto::Timestamp now,
                                          std::size_t count,
                                          bool solve_puzzles,
                                          std::uint64_t hash_budget) {
  BogusInjector injector(rng_.fork("flood"));
  FloodReport report;
  const std::uint64_t before = router.stats().signature_verifications;
  for (std::size_t i = 0; i < count; ++i) {
    AccessRequest m2 = injector.forge_request(beacon, now);
    if (beacon.puzzle.has_value() && solve_puzzles) {
      const auto cost = static_cast<std::uint64_t>(
          proto::puzzle_expected_work(beacon.puzzle->difficulty_bits));
      if (report.attacker_hash_work + cost > hash_budget) break;  // exhausted
      m2.puzzle_solution =
          proto::solve_puzzle(*beacon.puzzle, g1_to_bytes(m2.g_rj));
      report.attacker_hash_work += cost;
    }
    ++report.sent;
    if (router.handle_access_request(m2, now).has_value()) ++report.accepted;
  }
  report.router_sig_verifications =
      router.stats().signature_verifications - before;
  return report;
}

// --- rogue router ------------------------------------------------------------------

proto::MeshRouter make_rogue_router(proto::RouterId id,
                                    const proto::SystemParams& params,
                                    crypto::Drbg rng) {
  auto keypair = curve::EcdsaKeyPair::generate(rng);
  proto::RouterCertificate cert;
  cert.router_id = id;
  cert.public_key = keypair.public_key();
  cert.expires_at = ~proto::Timestamp{0};
  // Self-signed: the adversary does not hold NSK.
  cert.signature = keypair.sign(cert.signed_payload(), rng);
  return proto::MeshRouter(id, std::move(keypair), std::move(cert), params,
                           std::move(rng));
}

}  // namespace peace::mesh
