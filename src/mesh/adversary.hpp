// Adversary models from the threat model (paper Sec. III.B): a global
// eavesdropper attempting session linkage, message replayers, bogus-data
// injectors (outsiders without credentials), rogue/phishing routers,
// revoked users, and DoS flooders targeting the router's expensive
// signature verification. Each adversary produces measurable evidence used
// by the attack tests (A1-A3) and the DoS bench (E8).
#pragma once

#include <map>

#include "mesh/network.hpp"

namespace peace::mesh {

/// Passive global eavesdropper: records every frame on the air and runs the
/// obvious linkage analyses an adversary would try.
class Eavesdropper {
 public:
  void attach(MeshNetwork& net);

  std::size_t frames_seen() const { return frames_.size(); }
  std::size_t access_requests_seen() const { return m2_count_; }

  /// Number of byte-identical protocol fields (DH shares, T1, T2, T_hat,
  /// nonces) appearing in more than one recorded access request. Freshness
  /// means this must be zero — any repeat is linkage evidence.
  std::size_t repeated_field_count() const;

  /// Plaintext fragments recovered from observed data frames (the
  /// eavesdropper knows the wire format but no keys). With intact crypto
  /// this stays empty; the accessor exists so tests assert exactly that.
  const std::vector<Bytes>& recovered_plaintexts() const {
    return recovered_;
  }

  /// True if `needle` occurs in any recorded frame — catches accidental
  /// identity leakage anywhere in any message.
  bool saw_bytes(BytesView needle) const;

 private:
  void on_frame(const WireObservation& obs);

  std::vector<WireObservation> frames_;
  std::map<std::string, int> field_occurrences_;
  std::size_t m2_count_ = 0;
  std::vector<Bytes> recovered_;
};

/// Records genuine access requests off the air and replays them later.
class Replayer {
 public:
  void attach(MeshNetwork& net);
  std::size_t captured() const { return captured_.size(); }

  /// Replays every captured M.2 at the router; returns how many were
  /// accepted (must be zero: replay cache + timestamp window).
  std::size_t replay_all(proto::MeshRouter& router, proto::Timestamp now);

 private:
  std::vector<Bytes> captured_;
};

/// Outsider without any credential: injects well-formed but unsigned /
/// garbage-signed access requests (bogus data injection, Sec. V.A).
class BogusInjector {
 public:
  explicit BogusInjector(crypto::Drbg rng) : rng_(std::move(rng)) {}

  /// Builds a syntactically valid M.2 against `beacon` with a structurally
  /// valid but cryptographically garbage group signature.
  proto::AccessRequest forge_request(const proto::BeaconMessage& beacon,
                                     proto::Timestamp now);

  /// Fires `count` forgeries at the router; returns how many it accepted
  /// (must be zero).
  std::size_t inject(proto::MeshRouter& router,
                     const proto::BeaconMessage& beacon, proto::Timestamp now,
                     std::size_t count);

 private:
  crypto::Drbg rng_;
};

/// A flooder for the DoS experiment: like BogusInjector but also able to
/// honestly solve puzzles (modeling an attacker with bounded compute). The
/// cost accounting lets E8 compare router work vs attacker work.
class DosFlooder {
 public:
  explicit DosFlooder(crypto::Drbg rng) : rng_(std::move(rng)) {}

  struct FloodReport {
    std::size_t sent = 0;
    std::size_t accepted = 0;                 // must stay 0
    std::uint64_t attacker_hash_work = 0;     // puzzle search cost paid
    std::uint64_t router_sig_verifications = 0;  // expensive work induced
  };

  /// Sends `count` bogus requests; if the beacon carries a puzzle and
  /// `solve_puzzles` is set, pays the brute-force cost per request (up to
  /// `hash_budget` total hash evaluations, modeling bounded resources).
  FloodReport flood(proto::MeshRouter& router,
                    const proto::BeaconMessage& beacon, proto::Timestamp now,
                    std::size_t count, bool solve_puzzles,
                    std::uint64_t hash_budget = ~0ull);

 private:
  crypto::Drbg rng_;
};

/// A rogue (phishing) router under adversary control: fresh keys with a
/// self-signed certificate. Sec. V.A: users must refuse its beacons.
proto::MeshRouter make_rogue_router(proto::RouterId id,
                                    const proto::SystemParams& params,
                                    crypto::Drbg rng);

}  // namespace peace::mesh
