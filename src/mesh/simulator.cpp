#include "mesh/simulator.hpp"

namespace peace::mesh {

void Simulator::schedule(SimTime at, EventFn fn) {
  if (at < now_) throw Error("simulator: scheduling into the past");
  queue_.push(Event{at, next_seq_++, std::move(fn)});
}

void Simulator::run_until(SimTime end) {
  while (!queue_.empty() && queue_.top().at <= end) {
    // priority_queue::top() is const; move out via const_cast on pop pattern.
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.at;
    ++processed_;
    ev.fn();
  }
  now_ = end;
}

void Simulator::run_all(std::uint64_t max_events) {
  while (!queue_.empty()) {
    if (processed_ >= max_events)
      throw Error("simulator: event budget exhausted (runaway?)");
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.at;
    ++processed_;
    ev.fn();
  }
}

}  // namespace peace::mesh
