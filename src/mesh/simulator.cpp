#include "mesh/simulator.hpp"

namespace peace::mesh {

void Simulator::schedule(SimTime at, EventFn fn) {
  if (at < now_) throw Error("simulator: scheduling into the past");
  queue_.push(Event{at, next_seq_++, std::move(fn)});
}

void Simulator::throw_budget_exhausted(std::uint64_t budget) const {
  std::string who = name_.empty() ? std::string("simulator")
                                  : "simulator [" + name_ + "]";
  throw Error(who + ": event budget exhausted (" +
              std::to_string(processed_) + " events, budget " +
              std::to_string(budget) + ") — runaway load, or raise the budget");
}

void Simulator::run_until(SimTime end) {
  while (!queue_.empty() && queue_.top().at <= end) {
    if (budget_ != 0 && processed_ >= budget_) throw_budget_exhausted(budget_);
    // priority_queue::top() is const; move out via const_cast on pop pattern.
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.at;
    ++processed_;
    ev.fn();
  }
  now_ = end;
}

void Simulator::run_all(std::uint64_t max_events) {
  const std::uint64_t budget = budget_ != 0 ? budget_ : max_events;
  while (!queue_.empty()) {
    if (processed_ >= budget) throw_budget_exhausted(budget);
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.at;
    ++processed_;
    ev.fn();
  }
}

}  // namespace peace::mesh
