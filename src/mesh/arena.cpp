#include "mesh/arena.hpp"

namespace peace::mesh {

PooledFrame& PooledFrame::operator=(PooledFrame&& o) noexcept {
  if (this != &o) {
    release();
    arena_ = o.arena_;
    buf_ = std::move(o.buf_);
    o.arena_ = nullptr;
    o.buf_.clear();
  }
  return *this;
}

void PooledFrame::release() {
  if (arena_ == nullptr) return;
  FrameArena* arena = arena_;
  arena_ = nullptr;
  arena->give_back(std::move(buf_));
  buf_ = Bytes{};
}

FrameArena::~FrameArena() = default;

std::optional<PooledFrame> FrameArena::acquire(std::size_t reserve) {
  if (cap_ != 0 && stats_.outstanding >= cap_) {
    ++stats_.cap_rejections;
    return std::nullopt;
  }
  Bytes buf;
  if (!free_.empty()) {
    buf = std::move(free_.back());
    free_.pop_back();
    ++stats_.reused;
  } else {
    ++stats_.allocated;
  }
  buf.clear();
  if (reserve > 0) buf.reserve(reserve);
  ++stats_.acquired;
  ++stats_.outstanding;
  if (stats_.outstanding > stats_.peak_outstanding)
    stats_.peak_outstanding = stats_.outstanding;
  return PooledFrame(this, std::move(buf));
}

std::optional<PooledFrame> FrameArena::acquire_copy(BytesView payload) {
  auto frame = acquire(payload.size());
  if (frame.has_value())
    frame->bytes().assign(payload.begin(), payload.end());
  return frame;
}

void FrameArena::give_back(Bytes buf) {
  // outstanding can hit 0 only via arena misuse; guard anyway so a stray
  // double-release in a test cannot underflow the gauge.
  if (stats_.outstanding > 0) --stats_.outstanding;
  if (buf.capacity() <= max_pooled_capacity_) free_.push_back(std::move(buf));
}

}  // namespace peace::mesh
