// Pooled allocation for in-flight simulation frames. At metro scale
// (10^5–10^6 users) the naive pattern — a fresh heap Bytes per frame per
// hop — dominates the event loop with allocator traffic and leaves memory
// unbounded under a flash crowd. FrameArena recycles frame buffers through
// a freelist (capacity-preserving, so steady state performs zero heap
// allocation) and enforces a hard cap on frames outstanding at once: when
// the cap is hit, acquire() refuses and the caller sheds load (counted,
// never queued), which is what keeps per-shard memory bounded however many
// users pile into one segment.
//
// Not thread-safe by design: each shard owns one arena and touches it only
// from its own event loop (docs/ARCHITECTURE.md §7 ownership rules).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/bytes.hpp"

namespace peace::mesh {

class FrameArena;

/// Move-only handle to a pooled buffer; returns it to the arena's freelist
/// on destruction. The buffer keeps its heap capacity across reuse cycles.
class PooledFrame {
 public:
  PooledFrame() = default;
  PooledFrame(PooledFrame&& o) noexcept { *this = std::move(o); }
  PooledFrame& operator=(PooledFrame&& o) noexcept;
  PooledFrame(const PooledFrame&) = delete;
  PooledFrame& operator=(const PooledFrame&) = delete;
  ~PooledFrame() { release(); }

  bool valid() const { return arena_ != nullptr; }
  Bytes& bytes() { return buf_; }
  const Bytes& bytes() const { return buf_; }
  /// Early return to the pool (idempotent).
  void release();

 private:
  friend class FrameArena;
  PooledFrame(FrameArena* arena, Bytes buf)
      : arena_(arena), buf_(std::move(buf)) {}

  FrameArena* arena_ = nullptr;
  Bytes buf_;
};

struct FrameArenaStats {
  std::uint64_t acquired = 0;        // successful acquire() calls
  std::uint64_t reused = 0;          // served from the freelist
  std::uint64_t allocated = 0;       // served by a fresh heap allocation
  std::uint64_t cap_rejections = 0;  // refused at the outstanding cap
  std::uint64_t outstanding = 0;     // currently live PooledFrames
  std::uint64_t peak_outstanding = 0;
};

class FrameArena {
 public:
  /// `cap` bounds frames outstanding at once (0 = unbounded — tests only;
  /// every shard configures a real cap). `max_pooled_capacity` bounds the
  /// buffer capacity the freelist retains — a rare jumbo frame is freed on
  /// release instead of pinning its allocation forever.
  explicit FrameArena(std::size_t cap = 0,
                      std::size_t max_pooled_capacity = 64 * 1024)
      : cap_(cap), max_pooled_capacity_(max_pooled_capacity) {}
  FrameArena(const FrameArena&) = delete;
  FrameArena& operator=(const FrameArena&) = delete;
  ~FrameArena();

  /// A zero-sized frame with at least `reserve` capacity, or nullopt when
  /// the outstanding cap is reached (the caller drops the frame and counts
  /// the shed — bounded memory beats unbounded queues at metro scale).
  std::optional<PooledFrame> acquire(std::size_t reserve = 0);
  /// acquire() + copy of `payload` into the frame.
  std::optional<PooledFrame> acquire_copy(BytesView payload);

  std::size_t cap() const { return cap_; }
  std::size_t free_frames() const { return free_.size(); }
  const FrameArenaStats& stats() const { return stats_; }

 private:
  friend class PooledFrame;
  void give_back(Bytes buf);

  std::size_t cap_;
  std::size_t max_pooled_capacity_;
  std::vector<Bytes> free_;
  FrameArenaStats stats_;
};

}  // namespace peace::mesh
