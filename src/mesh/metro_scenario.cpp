#include "mesh/metro_scenario.hpp"

#include <algorithm>
#include <chrono>

#include "obs/health.hpp"
#include "obs/metrics.hpp"
#include "obs/sec_event.hpp"

namespace peace::mesh {

namespace {

// Cross-shard frame tags (CrossShardMsg::tag) used by the scenario.
constexpr std::uint32_t kTagMove = 1;  // payload: u64-LE population count
constexpr std::uint32_t kTagData = 2;  // modeled background data frame

constexpr proto::Timestamp kCertLifetimeMs = 1000ull * 86400 * 365;

Bytes encode_u64(std::uint64_t v) {
  Bytes out(8);
  for (int i = 0; i < 8; ++i) out[i] = static_cast<std::uint8_t>(v >> (8 * i));
  return out;
}

std::uint64_t decode_u64(BytesView b) {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < 8 && i < b.size(); ++i)
    v |= static_cast<std::uint64_t>(b[i]) << (8 * i);
  return v;
}

proto::ProtocolConfig city_protocol_config() {
  proto::ProtocolConfig config;
  // Retransmission over a lossy metro radio is only safe with idempotent
  // resend (PROTOCOL.md §10).
  config.idempotent_resend = true;
  config.replay_window_ms = 60'000;
  return config;
}

/// Synthetic background population of one shard: a head count plus a DRBG
/// that models its activity. No crypto — the point is engine load.
struct SyntheticSegment {
  std::uint64_t population = 0;
  crypto::Drbg rng;
  SyntheticStats stats;

  explicit SyntheticSegment(crypto::Drbg r) : rng(std::move(r)) {}
};

struct CohortMember {
  MetroUserId id = 0;
  ShardId home = 0;
};

struct City {
  const MetroCityConfig& cfg;
  proto::NetworkOperator no;
  proto::TrustedThirdParty ttp;
  proto::GroupManager gm;
  MetroSimulation metro;
  std::vector<SyntheticSegment> synthetic;
  std::vector<CohortMember> cohort;
  std::uint64_t cohort_roams = 0;
  unsigned waves_pushed = 0;

  explicit City(const MetroCityConfig& c)
      : cfg(c),
        no(crypto::Drbg::from_string(c.seed + "/no")),
        gm(no.register_group("metro-city",
                             // headroom: +1 spare, +1 attacker, +1 mole
                             c.cohort_users + c.revocation_waves + 3, ttp)),
        metro([&] {
          MetroConfig mc;
          mc.tick_ms = c.tick_ms;
          mc.shard_event_budget = c.shard_event_budget;
          return mc;
        }()) {
    RadioConfig radio;
    radio.loss_probability = cfg.loss_probability;
    for (std::size_t i = 0; i < cfg.shards; ++i) {
      const std::string label = "shard-" + std::to_string(i);
      const ShardId id = metro.add_shard(label, cfg.seed + "/" + label, radio,
                                         city_protocol_config());
      MeshNetwork& net = metro.shard(id).net();
      net.add_router({0, 0}, no, kCertLifetimeMs);
      net.add_router({400, 0}, no, kCertLifetimeMs);
      // Wired exits at city hall (shard 0) and mid-town: relays from every
      // other segment hop the inter-shard backbone toward one of them.
      if (i == 0 || (cfg.shards > 2 && i == cfg.shards / 2))
        net.add_access_point({200, 300});
      synthetic.emplace_back(
          crypto::Drbg::from_string(cfg.seed + "/synthetic-" + label));
    }
    for (std::size_t i = 0; i + 1 < cfg.shards; ++i)
      metro.connect_shards(static_cast<ShardId>(i),
                           static_cast<ShardId>(i + 1));
    if (cfg.shards > 2)  // close the ring
      metro.connect_shards(static_cast<ShardId>(cfg.shards - 1), 0);

    // Synthetic population spread evenly; remainder to downtown.
    const std::uint64_t per = cfg.synthetic_users / cfg.shards;
    for (std::size_t i = 0; i < cfg.shards; ++i)
      synthetic[i].population = per;
    synthetic[0].population += cfg.synthetic_users - per * cfg.shards;

    // The real-crypto cohort, spread round-robin over home shards.
    for (std::size_t i = 0; i < cfg.cohort_users; ++i) {
      const std::string uid = "resident-" + std::to_string(i);
      auto user = std::make_unique<proto::User>(
          uid, no.params(), crypto::Drbg::from_string(cfg.seed + "/" + uid),
          city_protocol_config());
      user->complete_enrollment(gm.enroll(uid, ttp));
      const ShardId home = static_cast<ShardId>(i % cfg.shards);
      const double col = static_cast<double>(i / cfg.shards % 10);
      const MetroUserId id = metro.add_user(
          home, {30.0 + 35.0 * col, (i % 2) != 0 ? 15.0 : -15.0},
          std::move(user));
      cohort.push_back({id, home});
    }

    metro.set_frame_handler(
        [this](ShardId at, std::uint32_t tag, BytesView payload) {
          if (tag == kTagMove) {
            const std::uint64_t n = decode_u64(payload);
            synthetic[at].population += n;
            synthetic[at].stats.moved += n;
          }
          // kTagData frames exist to push bytes through the arena and the
          // mailboxes; arrival is the whole story.
        });
  }

  /// Beacon burst: every shard's routers beacon each second for 15 s. Can
  /// be scheduled upfront (absolute times) for any window of the day.
  void beacon_burst(SimTime start) {
    for (std::size_t i = 0; i < cfg.shards; ++i)
      metro.shard(static_cast<ShardId>(i))
          .net()
          .start_beaconing(start, 1'000, start + 15'000);
  }

  /// One synthetic activity step for shard `i`; reschedules itself until
  /// the end of the day.
  void synthetic_step(ShardId i) {
    SyntheticSegment& seg = synthetic[i];
    ++seg.stats.steps;
    if (seg.population > 0) {
      // Modeled per-step activity, DRBG-jittered around population-scaled
      // means: a slice associates, a larger slice pushes data, a slice
      // browses the internet.
      seg.stats.associations += seg.rng.uniform(seg.population / 20 + 1);
      seg.stats.data_frames += seg.rng.uniform(seg.population / 4 + 1);
      const std::uint64_t internet = seg.rng.uniform(seg.population / 10 + 1);
      seg.stats.internet_frames += internet;
      // A bounded number of REAL frames per step ride the engine: pooled
      // buffers, mailboxes, barrier routing, backbone relay BFS.
      if (cfg.shards > 1) {
        const auto peer = static_cast<ShardId>(
            (i + 1 + seg.rng.uniform(cfg.shards - 1)) % cfg.shards);
        (void)metro.post_frame(i, peer, as_bytes("synthetic data"), kTagData);
      }
      if (internet > 0)
        (void)metro.relay_to_internet(i, as_bytes("synthetic internet"));
    }
    Simulator& sim = metro.shard(i).sim();
    if (sim.now() + cfg.synthetic_step_ms < cfg.day_ms)
      sim.schedule_in(cfg.synthetic_step_ms, [this, i] { synthetic_step(i); });
  }

  /// Moves `fraction` of `from`'s synthetic population to `to` through a
  /// kTagMove mailbox frame (arrives at the next barrier).
  void move_synthetic(ShardId from, ShardId to, double fraction) {
    if (from == to) return;
    auto& seg = synthetic[from];
    const auto n = static_cast<std::uint64_t>(
        static_cast<double>(seg.population) * fraction);
    if (n == 0) return;
    if (metro.post_frame(from, to, encode_u64(n), kTagMove))
      seg.population -= n;
  }

  /// Cross-shard cohort roam, skipping members still in transit.
  void roam_cohort(const std::function<std::optional<ShardId>(
                       const CohortMember&, ShardId current)>& dest_for) {
    for (const CohortMember& m : cohort) {
      const auto loc = metro.locate_user(m.id);
      if (!loc) continue;
      const auto dest = dest_for(m, loc->shard);
      if (!dest || *dest == loc->shard) continue;
      metro.roam_user(m.id, *dest, {60.0 + 10.0 * (m.id % 20), 0.0});
      ++cohort_roams;
    }
  }

  /// Every located cohort member pushes one probe toward the internet:
  /// in-segment when the shard has a wired exit, over the inter-shard
  /// backbone otherwise.
  void cohort_probes() {
    for (const CohortMember& m : cohort) {
      const auto loc = metro.locate_user(m.id);
      if (!loc) continue;
      MeshNetwork& net = metro.shard(loc->shard).net();
      if (!net.send_to_internet(loc->node, as_bytes("cohort traffic")))
        (void)metro.relay_to_internet(loc->shard, as_bytes("cohort traffic"));
    }
  }

  /// Chaos injection: `n` forged M.2s — minted by an enrolled attacker
  /// against a real beacon, then broken post-signing (ts2 shift, so they
  /// parse and stay fresh but the group signature no longer covers the
  /// payload) — hit `target`'s first router as ONE batch. The randomized
  /// batch check fails, bisection pinpoints every forgery, and each
  /// rejection emits batch_forgery_attributed + auth_reject events
  /// attributed to `target`.
  void forgery_burst(ShardId target, std::size_t n) {
    MeshNetwork& net = metro.shard(target).net();
    proto::MeshRouter& router = net.router(net.router_ids().front());
    const auto now = static_cast<proto::Timestamp>(
        metro.shard(target).sim().now());
    const proto::BeaconMessage beacon = router.make_beacon(now);
    proto::User attacker(
        "attacker", no.params(),
        crypto::Drbg::from_string(cfg.seed + "/attacker"),
        city_protocol_config());
    attacker.complete_enrollment(gm.enroll("attacker", ttp));
    std::vector<proto::AccessRequest> batch;
    batch.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      auto m2 = attacker.process_beacon(beacon, now);
      if (!m2.has_value()) continue;
      m2->ts2 += 1;  // signature no longer covers the message
      batch.push_back(std::move(*m2));
    }
    // The injection happens inside `target`'s segment; tag its events so.
    obs::set_current_shard(target);
    (void)router.handle_access_requests(batch, now);
    obs::set_current_shard(0);
  }

  /// Chaos injection: a mole's credential is revoked, the fresh URL is
  /// installed at `target`, and the mole then attempts `n` valid-signature
  /// handshakes — each one a revocation_hit at the scanning router.
  void revoked_burst(ShardId target, std::size_t n) {
    proto::User mole("mole", no.params(),
                     crypto::Drbg::from_string(cfg.seed + "/mole"),
                     city_protocol_config());
    const auto credential = gm.enroll("mole", ttp);
    mole.complete_enrollment(credential);
    no.revoke_user_key(credential.index, metro.now());
    MeshNetwork& net = metro.shard(target).net();
    net.push_revocation_lists(no.current_crl(), no.current_url());
    proto::MeshRouter& router = net.router(net.router_ids().front());
    const auto now = static_cast<proto::Timestamp>(
        metro.shard(target).sim().now());
    const proto::BeaconMessage beacon = router.make_beacon(now);
    std::vector<proto::AccessRequest> batch;
    batch.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      auto m2 = mole.process_beacon(beacon, now);
      if (m2.has_value()) batch.push_back(std::move(*m2));
    }
    obs::set_current_shard(target);
    (void)router.handle_access_requests(batch, now);
    obs::set_current_shard(0);
  }

  /// One rolling revocation wave: a key is revoked and the operator
  /// announces the delta to every segment over its lossy radio (announced
  /// twice — the second copy usually heals a lost first one; stragglers
  /// resync on the next wave's chain gap).
  void revocation_wave() {
    const std::string victim = "revoked-" + std::to_string(waves_pushed);
    no.revoke_user_key(gm.enroll(victim, ttp).index, metro.now());
    const auto announce = no.make_delta_announcement(0, waves_pushed);
    metro.announce_rl_deltas(announce, no);
    metro.announce_rl_deltas(announce, no);
    ++waves_pushed;
  }
};

}  // namespace

MetroCityReport run_metro_city(const MetroCityConfig& config) {
  const auto wall_start = std::chrono::steady_clock::now();
  City city(config);
  if (config.health != nullptr) city.metro.set_health_monitor(config.health);
  const SimTime day = config.day_ms;
  const auto frac = [day](double f) {
    return static_cast<SimTime>(static_cast<double>(day) * f);
  };
  const ShardId downtown = 0;
  const auto stadium = static_cast<ShardId>(config.shards - 1);

  // Beacon windows are known upfront (absolute times): dawn association,
  // the two commute waves, and the flash crowd.
  city.beacon_burst(frac(0.01));
  city.beacon_burst(frac(0.20));
  if (config.flash_crowd) city.beacon_burst(frac(0.50));
  city.beacon_burst(frac(0.75));

  // Synthetic activity steps start with the day.
  for (std::size_t i = 0; i < config.shards; ++i)
    city.metro.shard(static_cast<ShardId>(i))
        .sim()
        .schedule_in(config.synthetic_step_ms, [&city, i] {
          city.synthetic_step(static_cast<ShardId>(i));
        });

  // The day's timeline, executed in order between run_until calls.
  struct Action {
    SimTime at;
    std::function<void()> fn;
  };
  std::vector<Action> timeline;

  // Morning commute (20% of the day): odd (residential) shards pour into
  // their even (commercial) neighbor; half the cohort rides along.
  timeline.push_back({frac(0.20), [&] {
    for (std::size_t i = 1; i < config.shards; i += 2)
      city.move_synthetic(static_cast<ShardId>(i),
                          static_cast<ShardId>(i - 1), 0.4);
    city.roam_cohort([&](const CohortMember& m, ShardId at) {
      return m.home % 2 == 1 ? std::optional<ShardId>(
                                   static_cast<ShardId>(m.home - 1))
                             : std::nullopt;
      (void)at;
    });
  }});
  timeline.push_back({frac(0.40), [&] { city.cohort_probes(); }});

  // Stadium flash crowd at midday: every shard sends a surge to the last
  // one; a quarter of the cohort attends.
  if (config.flash_crowd && config.shards > 1) {
    timeline.push_back({frac(0.50), [&] {
      for (std::size_t i = 0; i + 1 < config.shards; ++i)
        city.move_synthetic(static_cast<ShardId>(i), stadium, 0.3);
      city.roam_cohort([&](const CohortMember& m, ShardId at) {
        return m.id % 4 == 0 && at != stadium ? std::optional<ShardId>(stadium)
                                              : std::nullopt;
      });
    }});
    timeline.push_back({frac(0.55), [&] { city.cohort_probes(); }});
  }

  // Chaos injections: forged batch at the stadium during the flash crowd,
  // the revoked mole at downtown shortly after.
  if (config.forgery_burst && config.shards > 0) {
    timeline.push_back({frac(0.50), [&] {
      city.forgery_burst(stadium, config.forgery_burst_size);
    }});
  }
  if (config.revoked_burst && config.shards > 0) {
    timeline.push_back({frac(0.62), [&] {
      city.revoked_burst(downtown, config.revoked_burst_size);
    }});
  }

  // Rolling revocation waves across the day.
  for (unsigned k = 0; k < config.revocation_waves; ++k) {
    const double f =
        static_cast<double>(k + 1) / (config.revocation_waves + 1);
    timeline.push_back({frac(f), [&] { city.revocation_wave(); }});
  }

  // Evening commute: everyone heads home.
  timeline.push_back({frac(0.75), [&] {
    for (std::size_t i = 1; i < config.shards; i += 2)
      city.move_synthetic(static_cast<ShardId>(i - 1),
                          static_cast<ShardId>(i), 0.35);
    if (config.flash_crowd && config.shards > 1)
      for (std::size_t i = 0; i + 1 < config.shards; ++i)
        city.move_synthetic(stadium, static_cast<ShardId>(i),
                            0.2 / static_cast<double>(config.shards));
    city.roam_cohort([&](const CohortMember& m, ShardId at) {
      return at != m.home ? std::optional<ShardId>(m.home) : std::nullopt;
    });
    (void)downtown;
  }});
  timeline.push_back({frac(0.90), [&] { city.cohort_probes(); }});

  std::stable_sort(timeline.begin(), timeline.end(),
                   [](const Action& a, const Action& b) { return a.at < b.at; });
  for (const Action& action : timeline) {
    city.metro.run_until(action.at);
    action.fn();
  }
  city.metro.run_until(day);

  // Segments that lost both radio copies of a late announcement resync
  // over the operator's secure channel (the pre-delta fallback).
  std::uint64_t url_version = 0;
  for (std::size_t i = 0; i < config.shards; ++i) {
    const auto& rev = city.metro.shard(static_cast<ShardId>(i)).net()
                          .revocation();
    if (rev == nullptr) continue;
    if (rev->url_version() < city.no.current_url().version)
      city.metro.shard(static_cast<ShardId>(i))
          .net()
          .push_revocation_lists(city.no.current_crl(), city.no.current_url());
    url_version = std::max(url_version, rev->url_version());
  }

  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();

  MetroCityReport report;
  report.shards = config.shards;
  report.total_users = config.synthetic_users + config.cohort_users;
  report.cohort_users = config.cohort_users;
  for (const CohortMember& m : city.cohort) {
    const auto loc = city.metro.locate_user(m.id);
    if (loc && city.metro.shard(loc->shard).net().is_connected(loc->node))
      ++report.cohort_connected;
  }
  report.cohort_roams = city.cohort_roams;
  report.sim_ms = city.metro.now();
  report.wall_seconds = wall_seconds;
  report.events = city.metro.sim_events_total();
  report.users_sim_seconds_per_wall_second =
      wall_seconds > 0
          ? static_cast<double>(report.total_users) *
                (static_cast<double>(report.sim_ms) / 1000.0) / wall_seconds
          : 0;
  report.revocation_waves = city.waves_pushed;
  report.url_version = url_version;
  if (config.health != nullptr)
    report.health_alerts = config.health->alerts_total();
  report.metro = city.metro.stats();
  report.net = city.metro.network_stats_total();
  for (const SyntheticSegment& seg : city.synthetic) {
    report.synthetic.associations += seg.stats.associations;
    report.synthetic.data_frames += seg.stats.data_frames;
    report.synthetic.internet_frames += seg.stats.internet_frames;
    report.synthetic.moved += seg.stats.moved;
    report.synthetic.steps += seg.stats.steps;
  }

  // Mirror the metro into the obs registry for --metrics/CI smoke checks.
  city.metro.publish_metrics();
  auto& reg = obs::Registry::global();
  reg.counter("metro_city.synthetic.associations")
      .set(report.synthetic.associations);
  reg.counter("metro_city.synthetic.data_frames")
      .set(report.synthetic.data_frames);
  reg.counter("metro_city.synthetic.internet_frames")
      .set(report.synthetic.internet_frames);
  reg.counter("metro_city.synthetic.moved").set(report.synthetic.moved);
  reg.counter("metro_city.cohort.roams").set(report.cohort_roams);
  reg.counter("metro_city.cohort.connected").set(report.cohort_connected);
  return report;
}

}  // namespace peace::mesh
