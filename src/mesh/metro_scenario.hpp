// The metro_city scenario: one simulated day of a sharded metropolitan
// deployment — commute waves that roam users between segments, a stadium
// flash crowd that slams one shard, and rolling revocation waves from the
// operator — at populations up to and beyond 100k users.
//
// Population model (docs/ARCHITECTURE.md §7.4): real BN254 group-signature
// crypto costs ~10 ms per enrollment and ~6 ms per verification, so a
// 100k-user day with full crypto per user is ~weeks of CPU — and would
// measure the pairing library, not the engine this scenario exists to
// exercise. metro_city therefore runs a HYBRID population:
//
//   * a cohort of real proto::Users (default 64) running the full PEACE
//     protocol — anonymous access handshakes, roaming re-authentication,
//     revocation checks — spread over every shard, and
//   * a synthetic background population (the other ~100k) whose load is
//     modeled: per-shard DRBG-driven activity steps that move population
//     between shards through arena-pooled mailbox frames, relay traffic
//     toward access-point shards, and exercise every cap and counter of
//     the sharded engine without paying a pairing per body.
//
// Everything — cohort handshakes, synthetic draws, wave timing — derives
// from MetroCityConfig::seed, so a run is bit-reproducible.
#pragma once

#include <string>

#include "mesh/metro.hpp"
#include "peace/entities.hpp"

namespace peace::obs {
class HealthMonitor;
}

namespace peace::mesh {

struct MetroCityConfig {
  std::size_t shards = 8;
  /// Synthetic background population, spread evenly over the shards.
  std::uint64_t synthetic_users = 100'000 - 64;
  /// Real-crypto residents (full PEACE protocol), spread over the shards.
  std::size_t cohort_users = 64;
  SimTime day_ms = 86'400'000;  // one simulated day
  SimTime tick_ms = 500;        // metro barrier spacing
  std::uint64_t shard_event_budget = 10'000'000;
  std::string seed = "metro-city";
  /// Rolling revocation waves pushed by the operator across the day.
  unsigned revocation_waves = 4;
  /// Stadium flash crowd at midday (synthetic surge + cohort roams).
  bool flash_crowd = true;
  /// Spacing of each shard's synthetic activity step.
  SimTime synthetic_step_ms = 60'000;
  /// Radio loss for every segment.
  double loss_probability = 0.02;
  /// Online anomaly detection: when non-null, attached to the metro driver
  /// for the whole day (drained + ticked at every barrier). Observer only.
  obs::HealthMonitor* health = nullptr;
  /// Chaos injection: a midday burst of forged M.2s (valid-looking group
  /// signatures broken post-signing) slammed at the stadium shard's router
  /// in one batch — exercising batch bisection attribution and the
  /// forgery_spike detector.
  bool forgery_burst = false;
  std::size_t forgery_burst_size = 48;
  /// Chaos injection: a revoked credential ("the mole") replays valid
  /// handshakes at downtown after its key lands on the URL — exercising
  /// revocation scanning and the revocation_storm detector.
  bool revoked_burst = false;
  std::size_t revoked_burst_size = 24;
};

/// Synthetic-population counters (per shard, summed for the report).
struct SyntheticStats {
  std::uint64_t associations = 0;    // modeled anonymous handshakes
  std::uint64_t data_frames = 0;     // modeled in-segment data traffic
  std::uint64_t internet_frames = 0; // modeled internet-bound traffic
  std::uint64_t moved = 0;           // users moved between shards
  std::uint64_t steps = 0;           // activity steps executed
};

struct MetroCityReport {
  std::size_t shards = 0;
  std::uint64_t total_users = 0;     // cohort + synthetic
  std::size_t cohort_users = 0;
  std::size_t cohort_connected = 0;  // cohort uplinks live at day end
  std::uint64_t cohort_roams = 0;    // cross-shard roam_user calls issued
  SimTime sim_ms = 0;
  double wall_seconds = 0;
  std::uint64_t events = 0;          // summed over shard simulators
  /// The headline scale metric: total_users × simulated seconds advanced
  /// per wall-clock second (users×sim-s/wall-s).
  double users_sim_seconds_per_wall_second = 0;
  unsigned revocation_waves = 0;
  std::uint64_t url_version = 0;     // max URL version any shard reached
  std::uint64_t health_alerts = 0;   // HealthMonitor firings (0 = detached)
  MetroStats metro;
  NetworkStats net;
  SyntheticStats synthetic;
};

/// Runs one full simulated day and returns the report. Throws Error if a
/// shard exhausts its event budget (the error names the shard).
MetroCityReport run_metro_city(const MetroCityConfig& config);

}  // namespace peace::mesh
