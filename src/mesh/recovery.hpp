// Recovery drill: the headline crash scenario of docs/ARCHITECTURE.md §8.
//
// An operator control plane runs a rolling revocation wave (enrollments,
// user-key and router revocations, optionally a master-key rotation in the
// middle) while mesh router segments consume its delta chain. At a
// configurable record cadence the operator "dies" — the in-memory site is
// destroyed and rebuilt from its durable log — and the routers then resync
// off the recovered delta chain. The drill checks the two properties that
// make recovery correct end-to-end:
//
//   1. No rollback: a recovered operator never publishes a list version or
//      delta the routers have already moved past (anti-rollback on the
//      receiver side would brick the segment otherwise).
//   2. Byte-identical state: the final operator state equals a reference
//      run of the same scenario that never crashed — down to the DRBG, so
//      even future randomness is unchanged.
#pragma once

#include <cstdint>
#include <string>

namespace peace::mesh {

struct RecoveryDrillConfig {
  /// Working directory; the drill creates `<dir>/live` and `<dir>/ref`.
  std::string dir;
  std::uint64_t seed = 1;
  std::size_t members = 10;        // enrollments per era
  std::size_t revocations = 6;     // rolling wave size per era
  /// Crash + recover the operator after every Nth WAL record (0 = never —
  /// that is what the reference run uses).
  std::size_t crash_every = 3;
  std::size_t router_segments = 3; // independent delta-chain receivers
  std::size_t snapshot_every = 8;  // control-plane auto-snapshot cadence
  /// Rotate the master key mid-wave (second era: reissue + re-enroll).
  bool rotate_mid_wave = true;
};

struct RecoveryDrillReport {
  std::uint64_t records = 0;          // WAL records the live run wrote
  std::uint64_t crashes = 0;          // operator kill+recover cycles
  std::uint64_t deltas_applied = 0;   // across all router segments
  std::uint64_t resyncs = 0;          // full-list resyncs routers needed
  std::uint64_t rollback_violations = 0;  // must stay 0
  std::uint64_t final_url_version = 0;
  bool converged = false;             // every segment reached final versions
  bool state_matches_reference = false;  // byte-identical to no-crash run
};

RecoveryDrillReport run_recovery_drill(const RecoveryDrillConfig& config);

}  // namespace peace::mesh
