// Radio fault injection for the metro mesh: a declarative FaultPlan turns
// the flat loss model into a harness covering every fault class the
// reliability layer (PROTOCOL.md §10) must survive — Gilbert–Elliott burst
// loss, frame duplication, bounded reorder jitter, and bit corruption.
// Link partitions and router crash/restart are topology-level faults and
// live on MeshNetwork itself. All randomness flows through the network's
// seeded Drbg, so every chaos run is bit-reproducible.
#pragma once

#include <cstdint>

#include "common/bytes.hpp"
#include "crypto/drbg.hpp"

namespace peace::mesh {

/// Per-frame fault probabilities. The default-constructed plan is the
/// identity: every frame is delivered verbatim after nominal latency, and
/// judging it consumes no randomness at all (bit-compatibility with the
/// plain loss model when a RadioConfig loss rate is folded into loss_good).
struct FaultPlan {
  // Gilbert–Elliott burst loss: the channel sits in a good or a bad state,
  // each with its own loss rate, and transitions once per judged frame.
  // Average loss = loss at the chain's stationary distribution; e.g.
  // loss_bad=0.75, p_good_to_bad=0.2, p_bad_to_good=0.3 gives bursty ~30%.
  double loss_good = 0.0;
  double loss_bad = 0.0;
  double p_good_to_bad = 0.0;  // per-frame transition probabilities
  double p_bad_to_good = 1.0;

  /// Probability a delivered frame is delivered twice (MAC-layer
  /// duplicate; the copy is clean and arrives 1 ms after the original).
  double duplicate_probability = 0.0;
  /// Probability a delivered frame picks up extra delay, uniform in
  /// [1, reorder_max_jitter_ms] — enough to overtake later frames.
  double reorder_probability = 0.0;
  std::uint64_t reorder_max_jitter_ms = 10;
  /// Probability a delivered frame has 1–3 random bits flipped in flight.
  double corrupt_probability = 0.0;
};

/// What the injector decided for one frame.
struct FaultVerdict {
  bool lost = false;
  bool duplicate = false;
  bool corrupt = false;
  std::uint64_t extra_delay_ms = 0;
};

class FaultInjector {
 public:
  FaultInjector() = default;
  explicit FaultInjector(const FaultPlan& plan) : plan_(plan) {}

  const FaultPlan& plan() const { return plan_; }
  bool in_burst() const { return burst_bad_; }

  /// Draws the fate of one frame. Randomness is consumed only by fault
  /// classes with nonzero probability (and the burst chain only once it can
  /// ever leave the good state), so a plan carrying nothing but loss_good
  /// draws exactly one uniform per frame — the legacy loss model's stream.
  FaultVerdict judge(crypto::Drbg& rng);

  /// Flips 1–3 random bits of `wire` in place (no-op on an empty frame).
  static void corrupt(Bytes& wire, crypto::Drbg& rng);

 private:
  FaultPlan plan_;
  bool burst_bad_ = false;
};

}  // namespace peace::mesh
