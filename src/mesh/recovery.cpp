#include "mesh/recovery.hpp"

#include <filesystem>
#include <memory>
#include <optional>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "peace/persist/control.hpp"
#include "peace/revoke/shared.hpp"
#include "peace/user.hpp"

namespace peace::mesh {

namespace {

using persist::ControlPlane;
using persist::ControlPlaneOptions;
using proto::KeyIndex;
using revoke::SharedRevocationState;

/// One run of the scenario. `crash_every` = 0 is the uninterrupted
/// reference; otherwise the operator is destroyed and recovered from disk
/// every time that many records have accumulated since the last crash.
class DrillRun {
 public:
  DrillRun(const RecoveryDrillConfig& cfg, const std::string& dir,
           std::size_t crash_every, RecoveryDrillReport& rep)
      : cfg_(cfg), dir_(dir), crash_every_(crash_every), rep_(rep) {
    opts_.snapshot_every = cfg.snapshot_every;
    cp_.emplace(ControlPlane::create(
        dir_, crypto::Drbg::from_string("drill-" + std::to_string(cfg.seed)),
        opts_));
    next_crash_ = crash_every_;
  }

  Bytes run() {
    setup();
    enroll_wave();
    revocation_wave();
    if (cfg_.rotate_mid_wave) {
      rotate();
      enroll_wave();
      revocation_wave();
    }
    announce();
    check_convergence();
    return cp_->state_bytes();
  }

 private:
  // The crash: everything in memory dies; the site comes back from its
  // log. Valid at any record boundary because every append is fsynced
  // before the control plane returns (write-ahead discipline).
  void maybe_crash() {
    if (crash_every_ == 0) return;
    if (cp_->last_seq() < next_crash_) return;
    next_crash_ = cp_->last_seq() + crash_every_;
    cp_.reset();
    cp_.emplace(ControlPlane::recover(dir_, opts_));
    ++rep_.crashes;
    obs::Registry::global().counter("drill.operator_crashes").add(1);
    // Routers notice the operator blink and catch up off the recovered
    // delta chain — the moment a rollback would surface if there were one.
    announce();
  }

  void setup() {
    gids_.push_back(cp_->register_group("transit-east", cfg_.members + 2));
    maybe_crash();
    gids_.push_back(cp_->register_group("transit-west", cfg_.members + 2));
    maybe_crash();
    for (std::size_t i = 0; i < cfg_.router_segments; ++i) {
      cp_->provision_router(static_cast<proto::RouterId>(100 + i),
                            1000ull * 86400 * 365);
      maybe_crash();
      auto seg =
          std::make_unique<SharedRevocationState>(cp_->no().npk());
      seg->install_full(cp_->no().current_crl(), cp_->no().current_url());
      segments_.push_back(std::move(seg));
    }
  }

  void enroll_wave() {
    enrolled_.clear();
    for (std::size_t i = 0; i < cfg_.members; ++i) {
      const proto::GroupId gid = gids_[i % gids_.size()];
      const std::string uid =
          "user-" + std::to_string(era_) + "-" + std::to_string(i);
      proto::User user(uid, cp_->no().params(),
                       crypto::Drbg::from_string("drill-user-" + uid));
      const auto enrollment = cp_->enroll(gid, uid);
      maybe_crash();
      const auto receipt = user.complete_enrollment(enrollment);
      cp_->record_receipt(enrollment, user.receipt_public_key(), receipt);
      maybe_crash();
      enrolled_.push_back(enrollment.index);
    }
  }

  void revocation_wave() {
    const std::size_t n = std::min(cfg_.revocations, enrolled_.size());
    for (std::size_t i = 0; i < n; ++i) {
      cp_->revoke_user_key(enrolled_[i], now_ += 10);
      maybe_crash();
      announce();
    }
    // One router falls to the wave too, exercising the CRL chain.
    cp_->revoke_router(static_cast<proto::RouterId>(100 + era_), now_ += 10);
    maybe_crash();
    announce();
  }

  void rotate() {
    cp_->rotate_master_key(now_ += 10);
    maybe_crash();
    announce();
    ++era_;
    for (const proto::GroupId gid : gids_) {
      cp_->reissue_group(gid, cfg_.members + 2);
      maybe_crash();
    }
  }

  void announce() {
    for (auto& seg : segments_) {
      // Anti-rollback, operator side: a recovered NO must never be behind
      // a consumer of its own chain.
      if (cp_->no().current_url().version < seg->url_version() ||
          cp_->no().current_crl().version < seg->crl_version())
        ++rep_.rollback_violations;
      const auto ann = cp_->no().make_delta_announcement(seg->crl_version(),
                                                         seg->url_version());
      for (const proto::RLDelta& d : ann.deltas) {
        const revoke::DeltaResult r = seg->apply_delta(d);
        if (r == revoke::DeltaResult::kApplied) {
          ++rep_.deltas_applied;
        } else if (revoke::needs_resync(r)) {
          ++rep_.resyncs;
          const auto resp = cp_->no().handle_resync(
              {d.kind, d.kind == proto::ListKind::kCrl ? seg->crl_version()
                                                       : seg->url_version()});
          seg->install_one(d.kind, resp.full);
        } else {
          // kStale (and anything else): announcements only carry versions
          // past the segment's — a stale delta means forked history.
          ++rep_.rollback_violations;
        }
      }
    }
  }

  void check_convergence() {
    const std::uint64_t url_v = cp_->no().current_url().version;
    const std::uint64_t crl_v = cp_->no().current_crl().version;
    rep_.converged = true;
    for (const auto& seg : segments_) {
      if (seg->url_version() != url_v || seg->crl_version() != crl_v)
        rep_.converged = false;
    }
    rep_.final_url_version = url_v;
    rep_.records = cp_->last_seq();
  }

  const RecoveryDrillConfig& cfg_;
  std::string dir_;
  std::size_t crash_every_;
  RecoveryDrillReport& rep_;
  ControlPlaneOptions opts_;
  std::optional<ControlPlane> cp_;
  std::vector<std::unique_ptr<SharedRevocationState>> segments_;
  std::vector<proto::GroupId> gids_;
  std::vector<KeyIndex> enrolled_;
  std::size_t era_ = 0;
  std::uint64_t next_crash_ = 0;
  proto::Timestamp now_ = 1000;
};

}  // namespace

RecoveryDrillReport run_recovery_drill(const RecoveryDrillConfig& config) {
  obs::Span span("drill.recovery", "mesh");
  RecoveryDrillReport rep;
  std::filesystem::remove_all(config.dir);

  // Reference: same scenario, same seed, never crashes.
  RecoveryDrillReport ref_rep;
  DrillRun ref(config, config.dir + "/ref", 0, ref_rep);
  const Bytes ref_state = ref.run();

  // Live: crash at the configured cadence.
  DrillRun live(config, config.dir + "/live", config.crash_every, rep);
  const Bytes live_state = live.run();

  rep.state_matches_reference = live_state == ref_state;
  span.arg("records", rep.records);
  span.arg("crashes", rep.crashes);
  span.arg("rollback_violations", rep.rollback_violations);
  span.arg("state_match", rep.state_matches_reference ? 1 : 0);
  return rep;
}

}  // namespace peace::mesh
