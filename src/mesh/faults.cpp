#include "mesh/faults.hpp"

namespace peace::mesh {

FaultVerdict FaultInjector::judge(crypto::Drbg& rng) {
  FaultVerdict v;
  // Advance the burst chain first so a frame's loss draw reflects the state
  // it was transmitted in. A chain that can never go bad draws nothing.
  if (burst_bad_) {
    if (plan_.p_bad_to_good >= 1.0 ||
        (plan_.p_bad_to_good > 0.0 &&
         rng.uniform_real() < plan_.p_bad_to_good))
      burst_bad_ = false;
  } else if (plan_.p_good_to_bad > 0.0 &&
             rng.uniform_real() < plan_.p_good_to_bad) {
    burst_bad_ = true;
  }
  const double loss = burst_bad_ ? plan_.loss_bad : plan_.loss_good;
  if (loss > 0.0) v.lost = rng.uniform_real() < loss;
  if (v.lost) return v;
  if (plan_.duplicate_probability > 0.0)
    v.duplicate = rng.uniform_real() < plan_.duplicate_probability;
  if (plan_.reorder_probability > 0.0 &&
      rng.uniform_real() < plan_.reorder_probability) {
    const std::uint64_t span =
        plan_.reorder_max_jitter_ms > 0 ? plan_.reorder_max_jitter_ms : 1;
    v.extra_delay_ms = 1 + rng.uniform(span);
  }
  if (plan_.corrupt_probability > 0.0)
    v.corrupt = rng.uniform_real() < plan_.corrupt_probability;
  return v;
}

void FaultInjector::corrupt(Bytes& wire, crypto::Drbg& rng) {
  if (wire.empty()) return;
  const std::uint64_t flips = 1 + rng.uniform(3);
  for (std::uint64_t i = 0; i < flips; ++i) {
    const std::size_t byte = static_cast<std::size_t>(rng.uniform(wire.size()));
    wire[byte] ^= static_cast<std::uint8_t>(1u << rng.uniform(8));
  }
}

}  // namespace peace::mesh
