// The metropolitan WMN substrate (paper Fig. 1): stationary mesh routers
// with one-hop downlink coverage, mobile users with shorter radios that
// authenticate directly (power-boosted uplink, paper footnote 3) and relay
// data through authenticated peer sessions, greedy-geographically, toward
// their serving router. Radios are unit-disk with configurable loss and
// latency. Every frame delivery can be observed by registered taps
// (adversaries, loggers).
#pragma once

#include <map>
#include <memory>
#include <optional>

#include "crypto/drbg.hpp"
#include "mesh/simulator.hpp"
#include "peace/router.hpp"
#include "peace/user.hpp"

namespace peace::mesh {

using NodeId = std::uint32_t;

struct Vec2 {
  double x = 0;
  double y = 0;
};

double distance(const Vec2& a, const Vec2& b);

struct RadioConfig {
  double router_range = 250.0;  // downlink coverage (one hop, paper III.A)
  double user_range = 80.0;     // user-user data radio
  /// Long-range backbone links (WiMAX-class, paper Fig. 1): router-router
  /// and router-AP edges exist within this distance and ride the
  /// operator's pre-established secure channels.
  double backbone_range = 500.0;
  double loss_probability = 0.0;
  SimTime latency_ms = 2;
};

/// What a delivery tap observes: enough for an eavesdropping adversary to
/// mount linkage attempts, nothing more than the air interface carries.
struct WireObservation {
  SimTime at = 0;
  const char* kind;  // "beacon", "m2", "m3", "peer1", "peer2", "peer3", "data"
  Bytes payload;     // serialized message exactly as transmitted
};

struct NetworkStats {
  std::uint64_t frames_transmitted = 0;
  std::uint64_t frames_lost = 0;
  std::uint64_t data_delivered = 0;
  std::uint64_t data_undeliverable = 0;  // no route / no session
  std::uint64_t relay_hops_total = 0;
  std::uint64_t internet_delivered = 0;   // reached a wired access point
  std::uint64_t backbone_hops_total = 0;  // router-router hops used
  std::uint64_t backbone_mac_failures = 0;
};

class MeshNetwork {
 public:
  /// `proto_config` is handed to every router this network creates — in
  /// particular verify_threads, which sizes each router's VerifyPool.
  MeshNetwork(Simulator& sim, crypto::Drbg rng, RadioConfig radio = {},
              proto::ProtocolConfig proto_config = {});

  // --- construction -----------------------------------------------------
  NodeId add_router(Vec2 pos, proto::NetworkOperator& no,
                    proto::Timestamp cert_expires_at);
  NodeId add_user(Vec2 pos, std::unique_ptr<proto::User> user);
  /// Layer-1 of Fig. 1: a wired Internet entry point, reachable from
  /// routers within backbone_range over a secure channel.
  NodeId add_access_point(Vec2 pos);

  proto::MeshRouter& router(NodeId id);
  proto::User& user(NodeId id);
  Vec2 position(NodeId id) const;
  void move_user(NodeId id, Vec2 pos);

  /// Pushes fresh revocation lists to every router over the operator's
  /// pre-established secure channels (paper III.A assumption). All routers
  /// of this network share one RCU revocation snapshot, so this is a single
  /// install regardless of router count.
  void push_revocation_lists(const proto::SignedRevocationList& crl,
                             const proto::SignedRevocationList& url);

  /// Metro-scale distribution: delivers a delta announcement to the
  /// segment's shared revocation state over the lossy radio (one latency
  /// hop). A chain gap — e.g. an earlier announcement was lost — triggers
  /// the full resync round-trip with `no` (request + response, each paying
  /// radio latency and loss). `no` must outlive the scheduled events.
  void announce_rl_deltas(const proto::RLDeltaAnnounce& announce,
                          proto::NetworkOperator& no);

  /// The revocation state shared by every router of this network (null
  /// until the first add_router).
  const std::shared_ptr<revoke::SharedRevocationState>& revocation() const {
    return revocation_;
  }

  // --- behaviour ---------------------------------------------------------
  /// Schedules periodic beacons from every router starting at `start`.
  void start_beaconing(SimTime start, SimTime period, SimTime until);

  /// Users react to beacons by authenticating to the strongest (nearest)
  /// router they hear when they have no session yet.
  void enable_auto_connect(bool on) { auto_connect_ = on; }

  /// Runs the user-user handshake between every pair of users within
  /// user_range of each other (scheduled through the radio).
  void establish_peer_links();

  /// Sends an application payload from `user_id` to its serving router,
  /// relaying greedily through peer sessions when out of direct range.
  /// Returns false immediately when no route can exist.
  bool send_data(NodeId user_id, BytesView payload);

  /// Full three-layer delivery (paper Fig. 1): user -> serving router
  /// (send_data path), then across the multihop wireless backbone —
  /// shortest path, each hop authenticated on the pre-established secure
  /// channel — to the nearest wired access point.
  bool send_to_internet(NodeId user_id, BytesView payload);

  /// Backbone hop count from a router to the nearest AP (BFS), or nullopt
  /// when no AP is reachable.
  std::optional<std::size_t> backbone_hops_to_ap(NodeId router_node) const;

  /// True once `user_id` holds an authenticated router session.
  bool is_connected(NodeId user_id) const;
  std::optional<proto::RouterId> serving_router(NodeId user_id) const;

  /// Drops the user's uplink (and serving-router binding) so the next
  /// beacon triggers a fresh handshake — how a roaming client re-associates
  /// after moving out of its old router's coverage. Sessions are never
  /// resumed across associations (fresh identifiers per the privacy model).
  void reassociate(NodeId user_id);

  /// Registers an observer of every transmitted frame.
  void add_tap(std::function<void(const WireObservation&)> tap);

  const NetworkStats& stats() const { return stats_; }
  Simulator& sim() { return sim_; }

  /// All router node ids / user node ids, for sweeps.
  std::vector<NodeId> router_ids() const;
  std::vector<NodeId> user_ids() const;

 private:
  struct RouterNode {
    std::unique_ptr<proto::MeshRouter> router;
    Vec2 pos;
  };
  struct UserNode {
    std::unique_ptr<proto::User> user;
    Vec2 pos;
    std::optional<proto::Session> uplink;     // to serving router
    Bytes uplink_session_id;
    std::optional<proto::RouterId> serving;
    std::optional<NodeId> serving_node;
    std::map<NodeId, proto::Session> peer_sessions;
    bool handshake_in_flight = false;
  };

  /// An M.2 that reached its router and awaits the end-of-tick batch drain.
  struct PendingAuth {
    NodeId user_node;
    proto::AccessRequest m2;
  };

  bool radio_delivers();
  void observe(const char* kind, BytesView payload);
  void deliver_beacon(NodeId router_node, const proto::BeaconMessage& beacon);
  void user_hears_beacon(NodeId user_node, NodeId router_node,
                         const proto::BeaconMessage& beacon);
  /// Runs every access request that arrived at `router_node` this sim tick
  /// through the router's batch verification path, then continues each
  /// handshake (M.3 delivery) exactly as the per-request path used to.
  void drain_auth_batch(NodeId router_node);
  void run_peer_handshake(NodeId a, NodeId b);
  /// Next hop for greedy geographic relay, or nullopt when stuck.
  std::optional<NodeId> next_relay_hop(NodeId from, const Vec2& target);

  /// Pre-established secure channel between two backbone nodes: a shared
  /// MAC key (paper III.A assumes these exist out of band).
  const Bytes& backbone_key(NodeId a, NodeId b);
  /// Backbone adjacency (router/AP nodes within backbone_range).
  std::vector<NodeId> backbone_neighbors(NodeId node) const;

  Simulator& sim_;
  crypto::Drbg rng_;
  RadioConfig radio_;
  proto::ProtocolConfig proto_config_;
  /// One snapshot state for the whole segment; created by the first
  /// add_router (it needs the NO's public key as list authority).
  std::shared_ptr<revoke::SharedRevocationState> revocation_;
  std::map<NodeId, std::vector<PendingAuth>> pending_auth_;
  std::map<NodeId, RouterNode> routers_;
  std::map<NodeId, UserNode> users_;
  std::map<NodeId, Vec2> access_points_;
  std::map<std::pair<NodeId, NodeId>, Bytes> backbone_keys_;
  NodeId next_id_ = 1;
  bool auto_connect_ = true;
  std::vector<std::function<void(const WireObservation&)>> taps_;
  NetworkStats stats_;
};

}  // namespace peace::mesh
