// The metropolitan WMN substrate (paper Fig. 1): stationary mesh routers
// with one-hop downlink coverage, mobile users with shorter radios that
// authenticate directly (power-boosted uplink, paper footnote 3) and relay
// data through authenticated peer sessions, greedy-geographically, toward
// their serving router. Radios are unit-disk with configurable loss and
// latency. Every frame delivery can be observed by registered taps
// (adversaries, loggers).
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <set>

#include "crypto/drbg.hpp"
#include "mesh/faults.hpp"
#include "mesh/simulator.hpp"
#include "peace/router.hpp"
#include "peace/user.hpp"

namespace peace::mesh {

using NodeId = std::uint32_t;

struct Vec2 {
  double x = 0;
  double y = 0;
};

double distance(const Vec2& a, const Vec2& b);

struct RadioConfig {
  double router_range = 250.0;  // downlink coverage (one hop, paper III.A)
  double user_range = 80.0;     // user-user data radio
  /// Long-range backbone links (WiMAX-class, paper Fig. 1): router-router
  /// and router-AP edges exist within this distance and ride the
  /// operator's pre-established secure channels.
  double backbone_range = 500.0;
  double loss_probability = 0.0;
  SimTime latency_ms = 2;
};

/// The handshake reliability layer (PROTOCOL.md §10): retransmission with
/// exponential backoff and a bounded retry budget for M.2 and the peer
/// handshake, failover away from unresponsive routers, and automatic
/// session rekey. Defaults are conservative enough that a loss-free radio
/// behaves exactly as before the layer existed.
struct ReliabilityConfig {
  /// Retransmit unanswered handshake frames (M.2, M~.1, M~.2) on RTO
  /// timers. When off, one timeout abandons the attempt outright — the
  /// pre-reliability behaviour, recovered by the next beacon. M.2
  /// retransmission additionally requires ProtocolConfig::idempotent_resend
  /// on the routers: a strict-mode router rejects the byte-identical copy
  /// as a replay, so there the RTO acts only as a watchdog freeing the
  /// attempt for the next beacon.
  bool handshake_retransmit = true;
  /// Retransmissions allowed per attempt after the first transmission.
  unsigned retry_budget = 4;
  /// Initial retransmission timeout; doubles (rto_backoff) per retry.
  SimTime rto_ms = 400;
  double rto_backoff = 2.0;
  /// After an attempt exhausts its budget, the user avoids that router for
  /// this long — failing over to the next-best router it hears beacon.
  SimTime failover_backoff_ms = 5000;
  /// Rekey the uplink (a fresh anonymous handshake; the paper's privacy
  /// model forbids resumption) once it has sealed this many frames.
  /// 0 = only at hard sequence exhaustion.
  std::uint64_t rekey_after_frames = 0;
  /// Age-based rekey: retire an uplink session older than this. 0 = never.
  SimTime rekey_max_session_ms = 0;
  /// In-flight frames keep draining on a retired session for this long
  /// before the router closes it.
  SimTime drain_window_ms = 2000;
};

/// What a delivery tap observes: enough for an eavesdropping adversary to
/// mount linkage attempts, nothing more than the air interface carries.
struct WireObservation {
  SimTime at = 0;
  const char* kind;  // "beacon", "m2", "m3", "peer1", "peer2", "peer3", "data"
  Bytes payload;     // serialized message exactly as transmitted
};

struct NetworkStats {
  std::uint64_t frames_transmitted = 0;
  std::uint64_t users_removed = 0;  // roaming handoffs out of this segment
  std::uint64_t frames_lost = 0;
  std::uint64_t data_delivered = 0;
  std::uint64_t data_undeliverable = 0;  // no route / no session
  std::uint64_t relay_hops_total = 0;
  std::uint64_t internet_delivered = 0;   // reached a wired access point
  std::uint64_t backbone_hops_total = 0;  // router-router hops used
  std::uint64_t backbone_mac_failures = 0;
  // Reliability layer / fault injection (PROTOCOL.md §10):
  std::uint64_t retransmissions = 0;      // handshake frames resent on RTO
  std::uint64_t handshake_timeouts = 0;   // attempts whose budget ran out
  std::uint64_t rekeys = 0;               // uplink sessions retired + redone
  std::uint64_t failovers = 0;            // reconnects to a different router
  std::uint64_t corrupted_rejected = 0;   // frames that failed to parse
  std::uint64_t frames_duplicated = 0;    // extra copies the radio delivered
  std::uint64_t frames_delayed = 0;       // frames given reorder jitter
  std::uint64_t frames_partitioned = 0;   // dropped on a blocked/dead link
};

/// Field-wise sum. Every field is a uint64_t event count, so the merge is
/// commutative and associative — cross-shard aggregation is input-order
/// independent whatever order the metro layer visits its shards in
/// (asserted, with a field-count audit, by tests/metro_test.cpp).
NetworkStats sum(const NetworkStats& a, const NetworkStats& b);

/// Mirrors a (possibly multi-shard) NetworkStats total plus the summed
/// simulator event count into the obs registry (mesh.* / sim.*), exactly as
/// MeshNetwork::publish_metrics always did for a single network. Idempotent
/// (Counter::set).
void absorb_network_stats(const NetworkStats& totals,
                          std::uint64_t sim_events_processed);

class MeshNetwork {
 public:
  /// `proto_config` is handed to every router this network creates — in
  /// particular verify_threads, which sizes each router's VerifyPool.
  /// `reliability` governs the handshake retransmission / rekey layer.
  MeshNetwork(Simulator& sim, crypto::Drbg rng, RadioConfig radio = {},
              proto::ProtocolConfig proto_config = {},
              ReliabilityConfig reliability = {});

  // --- construction -----------------------------------------------------
  NodeId add_router(Vec2 pos, proto::NetworkOperator& no,
                    proto::Timestamp cert_expires_at);
  NodeId add_user(Vec2 pos, std::unique_ptr<proto::User> user);
  /// Extracts a user from this segment for a cross-shard roaming handoff:
  /// drops its uplink (router side closed when the router is alive), peer
  /// sessions on both ends, pending handshake state and queued M.2s, and
  /// returns the proto::User so the destination shard can re-add it. Any
  /// in-flight timers or frames addressed to the departed node become
  /// no-ops (every delivery callback tolerates a vanished node). Sessions
  /// are never carried across segments — the privacy model mandates a
  /// fresh anonymous handshake after roaming anyway.
  std::unique_ptr<proto::User> remove_user(NodeId id);
  bool has_user(NodeId id) const { return users_.contains(id); }
  std::size_t user_count() const { return users_.size(); }
  /// Layer-1 of Fig. 1: a wired Internet entry point, reachable from
  /// routers within backbone_range over a secure channel.
  NodeId add_access_point(Vec2 pos);
  std::size_t access_point_count() const { return access_points_.size(); }

  proto::MeshRouter& router(NodeId id);
  proto::User& user(NodeId id);
  Vec2 position(NodeId id) const;
  void move_user(NodeId id, Vec2 pos);

  /// Pushes fresh revocation lists to every router over the operator's
  /// pre-established secure channels (paper III.A assumption). All routers
  /// of this network share one RCU revocation snapshot, so this is a single
  /// install regardless of router count.
  void push_revocation_lists(const proto::SignedRevocationList& crl,
                             const proto::SignedRevocationList& url);

  /// Metro-scale distribution: delivers a delta announcement to the
  /// segment's shared revocation state over the lossy radio (one latency
  /// hop). A chain gap — e.g. an earlier announcement was lost — triggers
  /// the full resync round-trip with `no` (request + response, each paying
  /// radio latency and loss). `no` must outlive the scheduled events.
  void announce_rl_deltas(const proto::RLDeltaAnnounce& announce,
                          proto::NetworkOperator& no);

  /// The revocation state shared by every router of this network (null
  /// until the first add_router).
  const std::shared_ptr<revoke::SharedRevocationState>& revocation() const {
    return revocation_;
  }

  // --- behaviour ---------------------------------------------------------
  /// Schedules periodic beacons from every router starting at `start`.
  void start_beaconing(SimTime start, SimTime period, SimTime until);

  /// Users react to beacons by authenticating to the strongest (nearest)
  /// router they hear when they have no session yet.
  void enable_auto_connect(bool on) { auto_connect_ = on; }

  /// Runs the user-user handshake between every pair of users within
  /// user_range of each other (scheduled through the radio).
  void establish_peer_links();

  /// Sends an application payload from `user_id` to its serving router,
  /// relaying greedily through peer sessions when out of direct range.
  /// Returns false immediately when no route can exist.
  bool send_data(NodeId user_id, BytesView payload);

  /// Full three-layer delivery (paper Fig. 1): user -> serving router
  /// (send_data path), then across the multihop wireless backbone —
  /// shortest path, each hop authenticated on the pre-established secure
  /// channel — to the nearest wired access point.
  bool send_to_internet(NodeId user_id, BytesView payload);

  /// Backbone hop count from a router to the nearest AP (BFS), or nullopt
  /// when no AP is reachable.
  std::optional<std::size_t> backbone_hops_to_ap(NodeId router_node) const;

  /// True once `user_id` holds an authenticated router session.
  bool is_connected(NodeId user_id) const;
  std::optional<proto::RouterId> serving_router(NodeId user_id) const;

  /// Drops the user's uplink (and serving-router binding) so the next
  /// beacon triggers a fresh handshake — how a roaming client re-associates
  /// after moving out of its old router's coverage. Sessions are never
  /// resumed across associations (fresh identifiers per the privacy model).
  void reassociate(NodeId user_id);

  // --- fault injection (chaos harness) -----------------------------------
  /// Installs a fault plan on the user-facing radio (beacons, handshakes,
  /// data relay). RadioConfig.loss_probability keeps applying only if the
  /// caller folds it into the plan's loss_good; the backbone and the
  /// operator's control traffic stay on the plain loss model.
  void set_fault_plan(const FaultPlan& plan);
  const FaultPlan& fault_plan() const { return faults_.plan(); }

  /// Blocks (or heals) the radio link between two nodes — a partition.
  /// Frames sent across a blocked link are dropped (frames_partitioned).
  void set_link_blocked(NodeId a, NodeId b, bool blocked);

  /// Crashes a router: it stops beaconing, drops every established session,
  /// and answers nothing until restart_router. Its certificate and keys
  /// survive (stable identity across the restart).
  void crash_router(NodeId router_node);
  void restart_router(NodeId router_node);
  bool router_is_down(NodeId router_node) const;

  /// Forces an uplink rekey: the current session is retired (in-flight
  /// frames drain for drain_window_ms) and the next beacon triggers a fresh
  /// anonymous handshake. No-op when the user has no uplink or a rekey is
  /// already pending.
  void rekey(NodeId user_id);

  /// Registers an observer of every transmitted frame.
  void add_tap(std::function<void(const WireObservation&)> tap);

  const NetworkStats& stats() const { return stats_; }
  Simulator& sim() { return sim_; }

  /// Mirrors every deterministic stats struct of the stack (NetworkStats,
  /// summed RouterStats / UserStats / verify OpCounters, the shared
  /// revocation stats) into the obs metrics registry under the names
  /// catalogued in docs/OBSERVABILITY.md. Idempotent; call before
  /// Registry::to_json().
  void publish_metrics() const;

  /// Endpoint-stat totals over this segment's live routers/users — the
  /// inputs publish_metrics() absorbs, exposed so the metro layer can merge
  /// them across shards before one aggregate publish (docs/OBSERVABILITY.md
  /// §2). Sum-merges only, so shard visit order cannot matter.
  proto::RouterStats router_stats_total() const;
  proto::UserStats user_stats_total() const;
  groupsig::OpCounters verify_ops_total() const;

  /// All router node ids / user node ids, for sweeps.
  std::vector<NodeId> router_ids() const;
  std::vector<NodeId> user_ids() const;

 private:
  struct RouterNode {
    std::unique_ptr<proto::MeshRouter> router;  // null while crashed
    Vec2 pos;
    bool down = false;
    /// Provisioned identity, kept so a restart resurrects the same router.
    curve::EcdsaKeyPair keypair;
    proto::RouterCertificate certificate;
    proto::SystemParams params;
    unsigned restarts = 0;
  };
  struct UserNode {
    std::unique_ptr<proto::User> user;
    Vec2 pos;
    std::optional<proto::Session> uplink;     // to serving router
    Bytes uplink_session_id;
    std::optional<proto::RouterId> serving;
    std::optional<NodeId> serving_node;
    std::map<NodeId, proto::Session> peer_sessions;
    // --- reliability layer -----------------------------------------------
    /// The in-flight access handshake: the cached M.2 wire is retransmitted
    /// byte-identically on RTO until M.3 arrives or the budget runs out.
    struct Attempt {
      NodeId router_node = 0;
      Bytes m2_wire;
      unsigned tries = 0;            // transmissions so far
      std::uint64_t generation = 0;  // stale-timer guard
    };
    std::optional<Attempt> attempt;
    /// Retired uplink draining in-flight frames after a rekey.
    std::optional<proto::Session> old_uplink;
    Bytes old_uplink_session_id;
    SimTime uplink_established_at = 0;
    bool rekey_pending = false;
    /// Routers to avoid until the deadline (failed attempts → failover).
    std::map<NodeId, SimTime> router_backoff_until;
    std::optional<NodeId> last_failed_router;
  };

  /// An M.2 that reached its router and awaits the end-of-tick batch drain.
  struct PendingAuth {
    NodeId user_node;
    proto::AccessRequest m2;
  };

  /// A peer-handshake frame the sender keeps retransmitting on RTO until
  /// its side of the session exists: the initiator's M~.1 or the
  /// responder's M~.2 (M~.3 needs no timer — a responder retransmitting
  /// M~.2 pulls the cached M~.3 back out of the initiator).
  struct PeerAttempt {
    const char* kind;  // "peer1" | "peer2"
    Bytes wire;
    NodeId from = 0, to = 0;
    unsigned tries = 0;
    std::uint64_t generation = 0;
  };

  bool radio_delivers();
  void observe(const char* kind, BytesView payload);
  /// One observed radio transmission: partition/outage checks, the fault
  /// plan (loss, duplication, jitter, corruption), then `deliver(wire)`
  /// per surviving copy after latency (+jitter).
  void transmit(const char* kind, const Bytes& wire, NodeId from, NodeId to,
                std::function<void(const Bytes&)> deliver);
  /// transmit() without the observe — deliver_beacon observes its broadcast
  /// once, then unicasts an independently-faulted copy per listener.
  void unicast(const Bytes& wire, NodeId from, NodeId to,
               std::function<void(const Bytes&)> deliver);
  bool link_blocked(NodeId a, NodeId b) const;
  bool node_down(NodeId node) const;
  /// Decodes a wire frame, counting a parse failure as corrupted_rejected.
  template <typename Msg>
  std::optional<Msg> parse(const Bytes& wire);

  void deliver_beacon(NodeId router_node, const proto::BeaconMessage& beacon);
  void user_hears_beacon(NodeId user_node, NodeId router_node,
                         const proto::BeaconMessage& beacon);
  /// Runs every access request that arrived at `router_node` this sim tick
  /// through the router's batch verification path, then continues each
  /// handshake (M.3 delivery) exactly as the per-request path used to.
  void drain_auth_batch(NodeId router_node);

  // --- access-handshake reliability --------------------------------------
  SimTime rto_for(unsigned tries) const;
  void send_m2(NodeId user_node);
  void on_m2_timeout(NodeId user_node, std::uint64_t generation);
  void on_m3(NodeId user_node, NodeId router_node, const Bytes& wire);
  /// Retires the current uplink into the drain window and leaves the user
  /// ready for a fresh handshake at the next beacon.
  void start_rekey(NodeId user_id);
  /// Applies the configured frame-count / age rekey policy before a send.
  void maybe_rekey(NodeId user_id, UserNode& node);

  // --- peer-handshake reliability ----------------------------------------
  void start_peer_handshake(NodeId a, NodeId b);
  void send_peer_frame(NodeId from, NodeId to);
  void on_peer_timeout(NodeId from, NodeId to, std::uint64_t generation);
  void on_peer_hello(NodeId me, NodeId from, const Bytes& wire);
  void on_peer_reply(NodeId me, NodeId from, const Bytes& wire);
  void on_peer_confirm(NodeId me, NodeId from, const Bytes& wire);

  /// Next hop for greedy geographic relay, or nullopt when stuck.
  std::optional<NodeId> next_relay_hop(NodeId from, const Vec2& target);

  /// Pre-established secure channel between two backbone nodes: a shared
  /// MAC key (paper III.A assumes these exist out of band).
  const Bytes& backbone_key(NodeId a, NodeId b);
  /// Backbone adjacency (router/AP nodes within backbone_range).
  std::vector<NodeId> backbone_neighbors(NodeId node) const;

  Simulator& sim_;
  crypto::Drbg rng_;
  RadioConfig radio_;
  proto::ProtocolConfig proto_config_;
  ReliabilityConfig reliability_;
  FaultInjector faults_;
  /// One snapshot state for the whole segment; created by the first
  /// add_router (it needs the NO's public key as list authority).
  std::shared_ptr<revoke::SharedRevocationState> revocation_;
  std::map<NodeId, std::vector<PendingAuth>> pending_auth_;
  std::map<NodeId, RouterNode> routers_;
  std::map<NodeId, UserNode> users_;
  std::map<NodeId, Vec2> access_points_;
  std::map<std::pair<NodeId, NodeId>, Bytes> backbone_keys_;
  /// In-flight peer-handshake frames with retransmission timers, keyed by
  /// (sender, receiver); erased when the sender's session exists.
  std::map<std::pair<NodeId, NodeId>, PeerAttempt> peer_attempts_;
  std::set<std::pair<NodeId, NodeId>> blocked_links_;
  std::uint64_t attempt_seq_ = 0;  // generation source for stale timers
  NodeId next_id_ = 1;
  bool auto_connect_ = true;
  std::vector<std::function<void(const WireObservation&)>> taps_;
  NetworkStats stats_;
};

}  // namespace peace::mesh
