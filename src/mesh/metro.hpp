// Metro-scale sharded simulation driver. A metropolitan deployment is too
// large for one event queue — and one segment's flash crowd must not be
// able to exhaust the whole city's memory — so MetroSimulation splits the
// mesh into per-segment Shards (each owning its own Simulator, MeshNetwork
// with VerifyPools and RCU revocation snapshot, and FrameArena) and drives
// them in lockstep over tick barriers:
//
//   while now < end:
//     barrier = min(now + tick_ms, end)
//     for shard in id order:    shard.sim().run_until(barrier)
//     route every outbox message to its destination inbox   (global seq order)
//     for shard in id order:    apply the shard's inbox      (arrival order)
//
// Within a tick, shards never touch each other — all interaction funnels
// through CrossShardMsgs stamped with a global emission sequence number, so
// the schedule is fully deterministic regardless of how shards are later
// parallelized (today they run sequentially on one core; the barrier
// contract is exactly what makes a thread-per-shard driver legal without
// changing a single result). A single-shard metro is bit-identical to the
// plain single-loop MeshNetwork run: no mailbox traffic exists and chunked
// run_until calls visit events in the same order as one call.
//
// Cross-shard traffic:
//   * roam_user — a user leaves its segment (MeshNetwork::remove_user) and
//     rides a kUserHandoff to the destination, re-authenticating there on
//     the next beacon. Handoffs across a blocked inter-shard link are
//     parked in a bounded FIFO and retried each barrier until the
//     partition heals; overflow drops the OLDEST parked user (metro churn
//     — the user left the city), counted in MetroStats.
//   * post_frame — scenario-defined opaque payloads in arena-pooled
//     buffers, dispatched to the frame handler at the destination barrier.
//   * kInternetRelay — frames relayed over the wired inter-shard backbone
//     toward the nearest shard that has an access point, one shard hop per
//     tick (BFS over connect_shards topology).
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <set>

#include "mesh/shard.hpp"

namespace peace::obs {
class HealthMonitor;
}

namespace peace::mesh {

struct MetroConfig {
  /// Barrier spacing. Smaller ticks tighten cross-shard latency; larger
  /// ticks amortize barrier overhead. Cross-shard messages always take at
  /// least one tick.
  SimTime tick_ms = 100;
  /// Per-shard lifetime event budget (0 = unlimited). Exhaustion throws an
  /// Error naming the offending shard (Simulator::set_event_budget).
  std::uint64_t shard_event_budget = 10'000'000;
  /// Per-shard inbox / arena caps (ShardConfig).
  std::size_t shard_inbox_cap = 1 << 16;
  std::size_t shard_frame_cap = 1 << 16;
  /// Cap on handoffs parked across blocked shard links; overflow drops the
  /// oldest parked user.
  std::size_t pending_handoff_cap = 4096;
};

struct MetroStats {
  std::uint64_t barriers = 0;          // tick barriers crossed
  std::uint64_t msgs_routed = 0;       // mailbox messages moved at barriers
  std::uint64_t frames_posted = 0;     // post_frame calls that got a buffer
  std::uint64_t frames_shed = 0;       // post_frame refused at the arena cap
  std::uint64_t frames_dropped = 0;    // kFrames lost to a blocked link
  std::uint64_t relay_delivered = 0;   // internet relays that reached an AP
  std::uint64_t relay_dropped = 0;     // relays dropped: no path to any AP
  std::uint64_t handoffs_parked = 0;   // handoffs waiting out a partition
  std::uint64_t handoffs_dropped = 0;  // parked users lost to the FIFO cap
};

class MetroSimulation {
 public:
  explicit MetroSimulation(MetroConfig config = {}) : config_(config) {}
  MetroSimulation(const MetroSimulation&) = delete;
  MetroSimulation& operator=(const MetroSimulation&) = delete;

  // --- topology -----------------------------------------------------------
  /// Creates the next shard (ids are dense, in creation order). Each shard
  /// seeds its own DRBG from `seed`, so per-shard randomness is independent
  /// of shard count and visit order.
  ShardId add_shard(std::string name, const std::string& seed,
                    RadioConfig radio = {},
                    proto::ProtocolConfig proto_config = {},
                    ReliabilityConfig reliability = {});
  /// Declares a wired inter-shard backbone edge (roaming + relay route).
  void connect_shards(ShardId a, ShardId b);
  /// Partitions (or heals) an inter-shard link. Handoffs across a blocked
  /// link park; frames and relays across it drop (frames_partitioned-style
  /// shedding, counted in MetroStats::relay_dropped for relays).
  void set_shard_link_blocked(ShardId a, ShardId b, bool blocked);
  bool shard_link_blocked(ShardId a, ShardId b) const;

  std::size_t shard_count() const { return shards_.size(); }
  Shard& shard(ShardId id) { return *shards_.at(id); }
  const Shard& shard(ShardId id) const { return *shards_.at(id); }

  // --- users --------------------------------------------------------------
  /// Registers `user` in `shard` and returns its metro-wide id (stable
  /// across roaming; the per-shard NodeId changes with every handoff).
  MetroUserId add_user(ShardId shard, Vec2 pos,
                       std::unique_ptr<proto::User> user);
  /// Moves a user to `dest` at `pos`. Same shard: move + reassociate (the
  /// ordinary roaming path). Different shard: the user is extracted now and
  /// arrives at the next tick barrier (in transit until then), where the
  /// next beacon re-authenticates it.
  void roam_user(MetroUserId id, ShardId dest, Vec2 pos);
  /// Current placement, or nullopt while the user is in transit between
  /// shards (or was dropped by the parked-handoff cap).
  struct UserLocation {
    ShardId shard;
    NodeId node;
  };
  std::optional<UserLocation> locate_user(MetroUserId id) const;
  bool user_in_transit(MetroUserId id) const;
  std::size_t user_count() const { return users_.size(); }

  // --- cross-shard traffic ------------------------------------------------
  /// Posts an opaque scenario frame from `from`'s arena to `to`'s handler
  /// at the next barrier. Returns false (shedding, counted) when the
  /// origin arena is at its cap or the payload finds no buffer.
  bool post_frame(ShardId from, ShardId to, BytesView payload,
                  std::uint32_t tag);
  /// Called at the destination barrier for every arriving kFrame.
  using FrameHandler =
      std::function<void(ShardId at, std::uint32_t tag, BytesView payload)>;
  void set_frame_handler(FrameHandler handler) {
    frame_handler_ = std::move(handler);
  }
  /// Hands an internet-bound frame to the inter-shard backbone at `from`:
  /// it hops one shard per tick toward the nearest shard owning an access
  /// point (where it counts as delivered). Returns false when no AP shard
  /// is reachable at all or the arena sheds the frame.
  bool relay_to_internet(ShardId from, BytesView payload);

  // --- metro-wide operations ---------------------------------------------
  /// Delivers a revocation delta announcement to every shard's segment
  /// (each over its own lossy radio; see MeshNetwork::announce_rl_deltas).
  /// `no` must outlive the scheduled events.
  void announce_rl_deltas(const proto::RLDeltaAnnounce& announce,
                          proto::NetworkOperator& no);

  /// Runs every shard to `end` in tick-barrier lockstep (see file header).
  void run_until(SimTime end);
  SimTime now() const { return now_; }
  const MetroConfig& config() const { return config_; }
  const MetroStats& stats() const { return stats_; }

  /// Cross-shard totals. Field-wise sums of per-shard stats — commutative
  /// merges, so the result is independent of shard visit order (asserted by
  /// MetroTest.StatsMergeOrderIndependence).
  NetworkStats network_stats_total() const;
  std::uint64_t sim_events_total() const;

  /// One aggregate publish of the whole metro into the obs registry:
  /// merged mesh.*/sim.*/router.*/user.*/groupsig.verify.*/revocation.*
  /// totals plus the metro.* counters below. Idempotent.
  void publish_metrics() const;

  /// Attaches (or detaches, with nullptr) an online anomaly detector: at
  /// every tick barrier the driver drains the security-event stream into
  /// the monitor and ticks its evaluation clock. Observer only — arming a
  /// monitor cannot change a single simulation byte. Must outlive the run.
  void set_health_monitor(obs::HealthMonitor* monitor) { health_ = monitor; }
  obs::HealthMonitor* health_monitor() const { return health_; }

 private:
  struct UserRecord {
    ShardId shard = 0;
    NodeId node = 0;
    bool in_transit = false;
  };
  /// A handoff waiting out a blocked shard link.
  struct ParkedHandoff {
    CrossShardMsg msg;
  };

  std::uint64_t stamp() { return next_msg_seq_++; }
  /// Routes one outbox message to its destination inbox (or parks/drops).
  void route(CrossShardMsg msg);
  /// Applies one arrived message inside `dest` at barrier time.
  void apply(Shard& dest, CrossShardMsg msg);
  /// Re-offers parked handoffs whose link healed.
  void retry_parked();
  /// Next hop from `from` toward the nearest shard with an access point,
  /// skipping blocked links. nullopt = unreachable.
  std::optional<ShardId> next_hop_to_ap(ShardId from) const;
  static std::pair<ShardId, ShardId> ordered(ShardId a, ShardId b) {
    return a < b ? std::pair{a, b} : std::pair{b, a};
  }

  MetroConfig config_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::vector<ShardId>> shard_links_;  // adjacency, id-sorted
  std::set<std::pair<ShardId, ShardId>> blocked_shard_links_;
  std::map<MetroUserId, UserRecord> users_;
  MetroUserId next_user_id_ = 1;
  std::uint64_t next_msg_seq_ = 0;
  std::deque<ParkedHandoff> parked_;
  FrameHandler frame_handler_;
  obs::HealthMonitor* health_ = nullptr;
  SimTime now_ = 0;
  MetroStats stats_;
};

}  // namespace peace::mesh
