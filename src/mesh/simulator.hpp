// Minimal discrete-event simulation core: a virtual millisecond clock and
// an ordered event queue. Deterministic given deterministic callbacks —
// ties are broken by insertion order.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/bytes.hpp"

namespace peace::mesh {

using SimTime = std::uint64_t;  // milliseconds
using EventFn = std::function<void()>;

class Simulator {
 public:
  SimTime now() const { return now_; }
  std::uint64_t events_processed() const { return processed_; }
  std::size_t pending() const { return queue_.size(); }

  /// Schedules `fn` at absolute time `at` (must not be in the past).
  void schedule(SimTime at, EventFn fn);
  /// Convenience: `delay` from now.
  void schedule_in(SimTime delay, EventFn fn) {
    schedule(now_ + delay, std::move(fn));
  }

  /// Runs events up to and including `end`; the clock then rests at `end`.
  void run_until(SimTime end);
  /// Runs until the queue drains (or `max_events` as a runaway guard).
  void run_all(std::uint64_t max_events = 10'000'000);

 private:
  struct Event {
    SimTime at;
    std::uint64_t seq;  // FIFO among same-time events
    EventFn fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      return a.at != b.at ? a.at > b.at : a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
};

}  // namespace peace::mesh
