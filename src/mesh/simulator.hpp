// Minimal discrete-event simulation core: a virtual millisecond clock and
// an ordered event queue. Deterministic given deterministic callbacks —
// ties are broken by insertion order.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <string>
#include <vector>

#include "common/bytes.hpp"

namespace peace::mesh {

using SimTime = std::uint64_t;  // milliseconds
using EventFn = std::function<void()>;

class Simulator {
 public:
  SimTime now() const { return now_; }
  std::uint64_t events_processed() const { return processed_; }
  std::size_t pending() const { return queue_.size(); }

  /// Names this simulator in diagnostics — a metro shard sets its shard
  /// label here so a budget exhaustion names the shard that tripped it.
  void set_name(std::string name) { name_ = std::move(name); }
  const std::string& name() const { return name_; }

  /// Lifetime event budget enforced by run_until AND run_all; 0 (the
  /// default) leaves run_until unbounded and run_all on its `max_events`
  /// argument — the pre-sharding behaviour. Metro shards set an explicit
  /// per-shard budget (MetroConfig::shard_event_budget) so runaway load in
  /// one segment fails loudly, naming the shard, instead of spinning.
  void set_event_budget(std::uint64_t budget) { budget_ = budget; }
  std::uint64_t event_budget() const { return budget_; }

  /// Schedules `fn` at absolute time `at` (must not be in the past).
  void schedule(SimTime at, EventFn fn);
  /// Convenience: `delay` from now.
  void schedule_in(SimTime delay, EventFn fn) {
    schedule(now_ + delay, std::move(fn));
  }

  /// Runs events up to and including `end`; the clock then rests at `end`.
  void run_until(SimTime end);
  /// Runs until the queue drains (or `max_events` as a runaway guard; an
  /// explicit set_event_budget overrides the argument).
  void run_all(std::uint64_t max_events = 10'000'000);

 private:
  struct Event {
    SimTime at;
    std::uint64_t seq;  // FIFO among same-time events
    EventFn fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      return a.at != b.at ? a.at > b.at : a.seq > b.seq;
    }
  };

  [[noreturn]] void throw_budget_exhausted(std::uint64_t budget) const;

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
  std::uint64_t budget_ = 0;
  std::string name_;
};

}  // namespace peace::mesh
