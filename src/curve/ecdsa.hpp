// ECDSA over the BN254 G1 curve. Fills the role of the paper's ECDSA-160:
// mesh-router certificates, signed beacons, CRL/URL signatures, and the
// non-repudiation receipts exchanged during setup. Same algorithm, larger
// (254-bit) parameter.
#pragma once

#include "crypto/drbg.hpp"
#include "curve/bn254.hpp"

namespace peace::curve {

struct EcdsaSignature {
  Fr r;
  Fr s;

  Bytes to_bytes() const;
  static EcdsaSignature from_bytes(BytesView data);
  bool operator==(const EcdsaSignature&) const = default;
};

constexpr std::size_t kEcdsaSignatureSize = 2 * kFrSize;

class EcdsaKeyPair {
 public:
  /// Generates a fresh key pair.
  static EcdsaKeyPair generate(crypto::Drbg& rng);
  /// Reconstructs from a stored secret scalar.
  static EcdsaKeyPair from_secret(const Fr& secret);

  const G1& public_key() const { return public_key_; }
  const Fr& secret_key() const { return secret_; }

  EcdsaSignature sign(BytesView message, crypto::Drbg& rng) const;

 private:
  Fr secret_;
  G1 public_key_;
};

bool ecdsa_verify(const G1& public_key, BytesView message,
                  const EcdsaSignature& sig);

/// Uniform non-zero scalar.
Fr random_fr(crypto::Drbg& rng);
/// Uniform scalar including zero.
Fr random_fr_any(crypto::Drbg& rng);

}  // namespace peace::curve
