// Hashing into Fr, G1, and G2 (try-and-increment over SHA-256, with G2
// cofactor clearing). These realize the paper's random oracles H (range
// Z_p) and H0 (range: fresh per-signature generators). Domain separation
// keeps every use independent.
#pragma once

#include <string_view>

#include "curve/bn254.hpp"

namespace peace::curve {

/// Hash arbitrary bytes to a scalar (the paper's H with range Z_p).
Fr hash_to_fr(std::string_view domain, BytesView data);

/// Hash to a non-identity point of G1 (cofactor 1: on-curve == in-subgroup).
G1 hash_to_g1(std::string_view domain, BytesView data);

/// Hash to a non-identity point of the order-r subgroup of E'(Fp2), via
/// try-and-increment plus multiplication by the cofactor 2p - r.
G2 hash_to_g2(std::string_view domain, BytesView data);

/// The paper's H0: derives the fresh per-signature generators. The paper
/// outputs (u_hat, v_hat) in G2^2 and maps them to G1 with an isomorphism
/// psi; on a Type-3 curve (no computable psi, per Galbraith-Paterson-Smart)
/// the standard adaptation hashes the G1 generators directly and one extra
/// G2 generator used by the revocation check.
struct SignatureBases {
  G1 u;
  G1 v;
  G2 v_hat;
};
SignatureBases hash_to_bases(BytesView seed);

}  // namespace peace::curve
