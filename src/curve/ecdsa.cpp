#include "curve/ecdsa.hpp"

#include "crypto/sha256.hpp"
#include "curve/hash_to_curve.hpp"

namespace peace::curve {

using math::U256;

Fr random_fr_any(crypto::Drbg& rng) {
  // Rejection-sample 256-bit strings below r (r is 254 bits, so the
  // acceptance probability is about 1/4 per draw).
  const U256& r = Fr::modulus();
  for (;;) {
    Bytes buf = rng.bytes(32);
    const U256 v = U256::from_bytes(buf);
    if (math::cmp(v, r) < 0) return Fr::from_u256(v);
  }
}

Fr random_fr(crypto::Drbg& rng) {
  for (;;) {
    const Fr v = random_fr_any(rng);
    if (!v.is_zero()) return v;
  }
}

Bytes EcdsaSignature::to_bytes() const {
  Bytes out = fr_to_bytes(r);
  append(out, fr_to_bytes(s));
  return out;
}

EcdsaSignature EcdsaSignature::from_bytes(BytesView data) {
  if (data.size() != kEcdsaSignatureSize) throw Error("ecdsa: bad sig length");
  return {fr_from_bytes(data.subspan(0, kFrSize)),
          fr_from_bytes(data.subspan(kFrSize))};
}

EcdsaKeyPair EcdsaKeyPair::generate(crypto::Drbg& rng) {
  return from_secret(random_fr(rng));
}

EcdsaKeyPair EcdsaKeyPair::from_secret(const Fr& secret) {
  if (secret.is_zero()) throw Error("ecdsa: zero secret");
  EcdsaKeyPair kp;
  kp.secret_ = secret;
  kp.public_key_ = Bn254::get().g1_gen * secret;
  return kp;
}

namespace {

Fr message_scalar(BytesView message) {
  return hash_to_fr("peace/ecdsa", message);
}

/// x-coordinate of a point reduced into Z_r.
Fr point_x_mod_r(const G1& point) {
  math::Fp ax, ay;
  point.to_affine(ax, ay);
  return Fr::from_bytes_reduce(ax.to_bytes());
}

}  // namespace

EcdsaSignature EcdsaKeyPair::sign(BytesView message, crypto::Drbg& rng) const {
  const Fr e = message_scalar(message);
  for (;;) {
    const Fr k = random_fr(rng);
    const G1 big_r = Bn254::get().g1_gen * k;
    const Fr r = point_x_mod_r(big_r);
    if (r.is_zero()) continue;
    const Fr s = k.inverse() * (e + secret_ * r);
    if (s.is_zero()) continue;
    return {r, s};
  }
}

bool ecdsa_verify(const G1& public_key, BytesView message,
                  const EcdsaSignature& sig) {
  if (sig.r.is_zero() || sig.s.is_zero()) return false;
  if (public_key.is_infinity() || !public_key.is_on_curve()) return false;
  const Fr e = message_scalar(message);
  const Fr w = sig.s.inverse();
  const G1 x = Bn254::get().g1_gen * (e * w) + public_key * (sig.r * w);
  if (x.is_infinity()) return false;
  return point_x_mod_r(x) == sig.r;
}

}  // namespace peace::curve
