#include "curve/bn254.hpp"

namespace peace::curve {

using math::BigInt;
using math::U256;

namespace {

// BN parameter u for alt_bn128; p and r are polynomial in u:
//   p(u) = 36u^4 + 36u^3 + 24u^2 + 6u + 1
//   r(u) = 36u^4 + 36u^3 + 18u^2 + 6u + 1
constexpr std::uint64_t kU = 4965661367192848881ULL;

// Standard alt_bn128 G2 generator (affine, Fp2 = c0 + c1 i).
constexpr const char* kG2GenX0 =
    "10857046999023057135944570762232829481370756359578518086990519993285655852781";
constexpr const char* kG2GenX1 =
    "11559732032986387107991004021392285783925812861821192530917403151452391805634";
constexpr const char* kG2GenY0 =
    "8495653923123431417604973247489272438418190587263600148770280649306958101930";
constexpr const char* kG2GenY1 =
    "4082367875863433681332203403145435568316851327593401208105741076214120093531";

Bn254 g_params;
bool g_initialized = false;

// --- signed bignum helpers (lattice bookkeeping) ---------------------------

SignedBig sb_make(bool neg, BigInt mag) {
  if (mag.is_zero()) neg = false;
  return {neg, std::move(mag)};
}

SignedBig sb_neg(const SignedBig& a) { return sb_make(!a.neg, a.mag); }

SignedBig sb_add(const SignedBig& a, const SignedBig& b) {
  if (a.neg == b.neg) return sb_make(a.neg, a.mag + b.mag);
  const int c = BigInt::cmp(a.mag, b.mag);
  if (c == 0) return {};
  return c > 0 ? sb_make(a.neg, a.mag - b.mag)
               : sb_make(b.neg, b.mag - a.mag);
}

SignedBig sb_sub(const SignedBig& a, const SignedBig& b) {
  return sb_add(a, sb_neg(b));
}

SignedBig sb_mul(const SignedBig& a, const SignedBig& b) {
  return sb_make(a.neg != b.neg, a.mag * b.mag);
}

/// Nearest integer to a/b (ties away from zero) — the Babai round-off.
/// Any fixed rounding within 1/2 keeps the split components short.
SignedBig sb_round_div(const SignedBig& a, const SignedBig& b) {
  if (b.mag.is_zero()) throw Error("bn254: division by zero");
  BigInt q, rem;
  BigInt::divmod(a.mag, b.mag, q, rem);
  if (!(BigInt::cmp(rem + rem, b.mag) < 0)) q = q + BigInt(1);
  return sb_make(a.neg != b.neg, q);
}

/// Canonical residue of a modulo m, in [0, m).
BigInt sb_mod(const SignedBig& a, const BigInt& m) {
  BigInt v = a.mag % m;
  if (a.neg && !v.is_zero()) v = m - v;
  return v;
}

/// 3x3 determinant of signed entries (cofactors of the GLS basis).
SignedBig sb_det3(const std::array<std::array<SignedBig, 3>, 3>& m) {
  const SignedBig d0 =
      sb_sub(sb_mul(m[1][1], m[2][2]), sb_mul(m[1][2], m[2][1]));
  const SignedBig d1 =
      sb_sub(sb_mul(m[1][0], m[2][2]), sb_mul(m[1][2], m[2][0]));
  const SignedBig d2 =
      sb_sub(sb_mul(m[1][0], m[2][1]), sb_mul(m[1][1], m[2][0]));
  return sb_add(sb_sub(sb_mul(m[0][0], d0), sb_mul(m[0][1], d1)),
                sb_mul(m[0][2], d2));
}

// --- endomorphism context --------------------------------------------------
//
// Everything the GLV/GLS fast paths touch per call, owned here so the hot
// functions never go through Bn254::get(). Published (ready = true) only
// after every identity below has been verified numerically at init
// (docs/CRYPTO.md §6.1-§6.2).
struct EndoCtx {
  bool ready = false;
  BigInt r_big;

  // GLV (G1): phi(x, y) = (beta x, y), phi = [lambda] on all of E(Fp).
  Fp beta;
  U256 lambda;
  std::array<std::array<SignedBig, 2>, 2> b2;  // basis rows (a, b)
  std::array<SignedBig, 2> adj2;               // first row of adj(B)
  SignedBig det2;

  // GLS (G2): psi = untwist.Frobenius.twist, psi = [6u^2] on the subgroup.
  U256 lambda2;    // 6u^2 = t - 1 = p mod r
  U256 trace;      // t = 6u^2 + 1
  std::array<std::array<SignedBig, 4>, 4> b4;
  std::array<SignedBig, 4> adj4;  // cofactors C[j][0]
  SignedBig det4;
  Fp2 psi_x, psi_y;  // frob_gamma[2], frob_gamma[3]
};

EndoCtx g_endo;

G1 g1_endo_impl(const EndoCtx& ctx, const G1& p) {
  G1 out = p;
  out.x = out.x * ctx.beta;  // Jacobian x scales like affine x
  return out;
}

G2 g2_psi_impl(const EndoCtx& ctx, const G2& q) {
  // Conjugate all coordinates (Frobenius on Fp2), then untwist-retwist:
  // affine (x, y) -> (conj(x) gamma_2, conj(y) gamma_3); Z carries plain
  // conjugation since X/Z^2 and Y/Z^3 must transform like affine coords.
  G2 out;
  out.x = q.x.conjugate() * ctx.psi_x;
  out.y = q.y.conjugate() * ctx.psi_y;
  out.z = q.z.conjugate();
  return out;
}

GlvSplit glv_decompose_impl(const EndoCtx& ctx, const U256& k) {
  obs::note_glv_decomposition();
  BigInt kb = BigInt::from_u256(k);
  if (!(BigInt::cmp(kb, ctx.r_big) < 0)) kb = kb % ctx.r_big;
  const SignedBig sk = sb_make(false, kb);
  // Babai round-off: c = round((k, 0) adj(B) / det), split = (k, 0) - c B.
  std::array<SignedBig, 2> c;
  for (int j = 0; j < 2; ++j)
    c[j] = sb_round_div(sb_mul(sk, ctx.adj2[j]), ctx.det2);
  const SignedBig k0 = sb_sub(
      sk, sb_add(sb_mul(c[0], ctx.b2[0][0]), sb_mul(c[1], ctx.b2[1][0])));
  const SignedBig k1 = sb_neg(
      sb_add(sb_mul(c[0], ctx.b2[0][1]), sb_mul(c[1], ctx.b2[1][1])));
  if (k0.mag.bit_length() > 130 || k1.mag.bit_length() > 130)
    throw Error("bn254: glv split out of range");
  GlvSplit out;
  out.k = {k0.mag.to_u256(), k1.mag.to_u256()};
  out.neg = {k0.neg, k1.neg};
  return out;
}

GlsSplit gls_decompose_impl(const EndoCtx& ctx, const U256& k) {
  obs::note_gls_decomposition();
  BigInt kb = BigInt::from_u256(k);
  if (!(BigInt::cmp(kb, ctx.r_big) < 0)) kb = kb % ctx.r_big;
  const SignedBig sk = sb_make(false, kb);
  std::array<SignedBig, 4> c;
  for (int j = 0; j < 4; ++j)
    c[j] = sb_round_div(sb_mul(sk, ctx.adj4[j]), ctx.det4);
  GlsSplit out;
  for (int i = 0; i < 4; ++i) {
    SignedBig ki = i == 0 ? sk : SignedBig{};
    for (int j = 0; j < 4; ++j)
      ki = sb_sub(ki, sb_mul(c[j], ctx.b4[j][i]));
    if (ki.mag.bit_length() > 96)
      throw Error("bn254: gls split out of range");
    out.k[i] = ki.mag.to_u256();
    out.neg[i] = ki.neg;
  }
  return out;
}

G2 g2_clear_cofactor_impl(const EndoCtx& ctx, const G2& q) {
  // [2p - r]Q = [t]psi(Q) + [t-1]Q - psi^2(Q): the Frobenius trace
  // relation [p]Q = [t]psi(Q) - psi^2(Q) plus 2p - r = p + t - 1.
  // Regrouped as [t](psi(Q) + Q) - Q - psi^2(Q): one 127-bit single-point
  // ladder plus two plain additions, cheaper than the three-term
  // interleaved form (one table instead of three, a third of the mixed
  // additions). Same scalar identity, so the same group element.
  const G2 p1 = g2_psi_impl(ctx, q);
  const G2 p2 = g2_psi_impl(ctx, p1);
  return (p1 + q).mul_wnaf(ctx.trace) - q - p2;
}

/// Deterministic on-curve twist point for init-time identity checks; with
/// overwhelming probability NOT in the order-r subgroup, which is exactly
/// what the cofactor-clearing check wants to exercise.
G2 sample_twist_point() {
  for (std::uint64_t c = 1;; ++c) {
    const Fp2 x(Fp::from_u64(c), Fp::from_u64(1));
    const Fp2 rhs = x.square() * x + G2Traits::b();
    Fp2 y;
    if (rhs.sqrt(y)) return G2(x, y);
  }
}

/// Derives beta/lambda, the GLV and GLS lattice bases, and the psi
/// constants, then verifies every identity the fast paths rely on —
/// eigenvalues on sample points, lattice membership of all basis rows, and
/// round-trip decompositions — throwing on any mismatch. Only then is the
/// context published.
void setup_endomorphisms(Bn254& params, const BigInt& p_big,
                         const BigInt& r_big) {
  EndoCtx ctx;
  ctx.r_big = r_big;

  // --- GLV: beta (cube root of unity in Fp) and its eigenvalue ------------
  const U256 e_p = ((p_big - BigInt(1)) / BigInt(3)).to_u256();
  for (std::uint64_t c = 2;; ++c) {
    ctx.beta = Fp::from_u64(c).pow(e_p);
    if (!(ctx.beta == Fp::one())) break;
    if (c > 64) throw Error("bn254: no cube root of unity in Fp");
  }
  const U256 e_r = ((r_big - BigInt(1)) / BigInt(3)).to_u256();
  Fr lam;
  for (std::uint64_t c = 2;; ++c) {
    lam = Fr::from_u64(c).pow(e_r);
    if (!(lam == Fr::one())) break;
    if (c > 64) throw Error("bn254: no cube root of unity in Fr");
  }
  // beta and lambda are each one of two primitive cube roots; pick the
  // lambda matching beta by testing phi(G) == [lambda]G, else square it.
  ctx.lambda = lam.to_u256();
  const G1 phi_g = g1_endo_impl(ctx, params.g1_gen);
  if (!(params.g1_gen * ctx.lambda).equals(phi_g)) {
    lam = lam * lam;
    ctx.lambda = lam.to_u256();
    if (!(params.g1_gen * ctx.lambda).equals(phi_g))
      throw Error("bn254: glv eigenvalue mismatch");
  }
  // Independent spot check on a second point.
  const G1 spot = params.g1_gen * U256(0x9e3779b97f4a7c15ULL);
  if (!(spot * ctx.lambda).equals(g1_endo_impl(ctx, spot)))
    throw Error("bn254: glv endomorphism check failed");

  // --- GLV basis: extended Euclid on (r, lambda) (GLV 2001) ---------------
  // Remainders r_i = s_i r + t_i lambda, so (r_i, -t_i) is in the lattice
  // {(a, b) : a + b lambda = 0 mod r}; stop at the first r_i < sqrt(r) and
  // take the shorter neighbour as the second row.
  const BigInt lam_big = BigInt::from_u256(ctx.lambda);
  BigInt rem0 = r_big, rem1 = lam_big;
  SignedBig t0{}, t1{false, BigInt(1)};
  while (!(BigInt::cmp(rem1 * rem1, r_big) < 0)) {
    BigInt q, rem;
    BigInt::divmod(rem0, rem1, q, rem);
    const SignedBig tn = sb_sub(t0, sb_mul(sb_make(false, q), t1));
    rem0 = rem1;
    rem1 = rem;
    t0 = t1;
    t1 = tn;
  }
  BigInt q, rem2;
  BigInt::divmod(rem0, rem1, q, rem2);
  const SignedBig t2 = sb_sub(t0, sb_mul(sb_make(false, q), t1));
  const auto norm2 = [](const BigInt& a, const SignedBig& t) {
    return a * a + t.mag * t.mag;
  };
  ctx.b2[0] = {sb_make(false, rem1), sb_neg(t1)};
  if (BigInt::cmp(norm2(rem0, t0), norm2(rem2, t2)) <= 0)
    ctx.b2[1] = {sb_make(false, rem0), sb_neg(t0)};
  else
    ctx.b2[1] = {sb_make(false, rem2), sb_neg(t2)};
  for (const auto& row : ctx.b2) {
    if (!sb_mod(sb_add(row[0], sb_mul(row[1], sb_make(false, lam_big))),
                r_big)
             .is_zero())
      throw Error("bn254: glv basis row not in lattice");
    if (row[0].mag.bit_length() > 135 || row[1].mag.bit_length() > 135)
      throw Error("bn254: glv basis row too long");
  }
  ctx.det2 = sb_sub(sb_mul(ctx.b2[0][0], ctx.b2[1][1]),
                    sb_mul(ctx.b2[0][1], ctx.b2[1][0]));
  if (ctx.det2.mag.is_zero()) throw Error("bn254: glv basis degenerate");
  ctx.adj2 = {ctx.b2[1][1], sb_neg(ctx.b2[0][1])};

  // --- GLS: psi eigenvalue and the 4-dimensional lattice ------------------
  // p = r + t - 1 with t = 6u^2 + 1, so lambda2 = p mod r = 6u^2 exactly.
  const BigInt bu(params.u);
  const BigInt six_u2 = BigInt(6) * bu * bu;
  ctx.lambda2 = six_u2.to_u256();
  ctx.trace = (six_u2 + BigInt(1)).to_u256();
  ctx.psi_x = params.frob_gamma[2];
  ctx.psi_y = params.frob_gamma[3];

  // Closed-form basis rows from lambda^2 + (6u+3) lambda + (6u+1) = 0 and
  // lambda^4 = lambda^2 - 1 (mod r); rows 3 and 4 are lambda * (previous)
  // reduced by those relations. Each row is verified in-lattice below.
  const SignedBig su1 = sb_make(false, BigInt(6) * bu + BigInt(1));
  const SignedBig su2 = sb_make(false, BigInt(6) * bu + BigInt(2));
  const SignedBig su3 = sb_make(false, BigInt(6) * bu + BigInt(3));
  const SignedBig one = sb_make(false, BigInt(1));
  ctx.b4[0] = {su1, su3, one, SignedBig{}};
  ctx.b4[1] = {SignedBig{}, su1, su3, one};
  ctx.b4[2] = {sb_neg(one), SignedBig{}, su2, su3};
  ctx.b4[3] = {sb_neg(su3), sb_neg(one), su3, su2};
  std::array<BigInt, 4> lpow;
  lpow[0] = BigInt(1);
  for (int i = 1; i < 4; ++i) lpow[i] = (lpow[i - 1] * six_u2) % r_big;
  for (const auto& row : ctx.b4) {
    SignedBig acc{};
    for (int i = 0; i < 4; ++i)
      acc = sb_add(acc, sb_mul(row[i], sb_make(false, lpow[i])));
    if (!sb_mod(acc, r_big).is_zero())
      throw Error("bn254: gls basis row not in lattice");
  }
  // Cofactors C[j][0] (first row of the adjugate, transposed) and the
  // determinant by expansion along the first column.
  for (int j = 0; j < 4; ++j) {
    std::array<std::array<SignedBig, 3>, 3> minor;
    for (int rr = 0, mr = 0; rr < 4; ++rr) {
      if (rr == j) continue;
      for (int cc = 1; cc < 4; ++cc) minor[mr][cc - 1] = ctx.b4[rr][cc];
      ++mr;
    }
    const SignedBig d = sb_det3(minor);
    ctx.adj4[j] = (j % 2 == 0) ? d : sb_neg(d);
  }
  ctx.det4 = SignedBig{};
  for (int j = 0; j < 4; ++j)
    ctx.det4 = sb_add(ctx.det4, sb_mul(ctx.b4[j][0], ctx.adj4[j]));
  if (ctx.det4.mag.is_zero()) throw Error("bn254: gls basis degenerate");

  // psi eigenvalue on the subgroup, via the generator.
  if (!(params.g2_gen * ctx.lambda2).equals(g2_psi_impl(ctx, params.g2_gen)))
    throw Error("bn254: gls eigenvalue mismatch");
  // Cofactor-clearing identity on a (generic, non-subgroup) twist point.
  const G2 twist_pt = sample_twist_point();
  if (!g2_clear_cofactor_impl(ctx, twist_pt)
           .equals(twist_pt * params.g2_cofactor))
    throw Error("bn254: psi cofactor identity failed");

  // Round-trip decompositions for edge scalars.
  const U256 r_minus_1 = (r_big - BigInt(1)).to_u256();
  const U256 third = (r_big / BigInt(3)).to_u256();
  for (const U256& k : {U256::one(), r_minus_1, third}) {
    const BigInt kb = BigInt::from_u256(k) % r_big;
    const GlvSplit s2 = glv_decompose_impl(ctx, k);
    SignedBig acc = sb_add(sb_make(s2.neg[0], BigInt::from_u256(s2.k[0])),
                           sb_mul(sb_make(s2.neg[1], BigInt::from_u256(s2.k[1])),
                                  sb_make(false, lam_big)));
    if (!(sb_mod(acc, r_big) == kb))
      throw Error("bn254: glv decomposition round-trip failed");
    const GlsSplit s4 = gls_decompose_impl(ctx, k);
    acc = SignedBig{};
    for (int i = 0; i < 4; ++i)
      acc = sb_add(acc, sb_mul(sb_make(s4.neg[i], BigInt::from_u256(s4.k[i])),
                               sb_make(false, lpow[i])));
    if (!(sb_mod(acc, r_big) == kb))
      throw Error("bn254: gls decomposition round-trip failed");
  }

  params.glv_beta = ctx.beta;
  params.glv_lambda = ctx.lambda;
  params.glv_basis = ctx.b2;
  params.gls_lambda = ctx.lambda2;
  params.gls_basis = ctx.b4;
  ctx.ready = true;
  g_endo = ctx;
}

BigInt bn_poly(std::uint64_t u, std::uint64_t c2) {
  // 36u^4 + 36u^3 + c2*u^2 + 6u + 1
  const BigInt bu(u);
  const BigInt u2 = bu * bu;
  const BigInt u3 = u2 * bu;
  const BigInt u4 = u3 * bu;
  return u4 * BigInt(36) + u3 * BigInt(36) + u2 * BigInt(c2) +
         bu * BigInt(6) + BigInt(1);
}

}  // namespace

const Fp2& G2Traits::b() {
  static const Fp2 b2 = Fp2::from_u64(3, 0) * math::fp2_xi().inverse();
  return b2;
}

void Bn254::init() {
  if (g_initialized) return;

  Bn254 params;
  params.u = kU;
  const BigInt p_big = bn_poly(kU, 24);
  const BigInt r_big = bn_poly(kU, 18);
  params.p = p_big.to_u256();
  params.r = r_big.to_u256();

  Fp::init(params.p);
  Fr::init(params.r);

  // g2_cofactor = 2p - r (the order of E'(Fp2) is r * (2p - r)).
  params.g2_cofactor = (p_big + p_big - r_big).to_u256();

  // ate_loop = 6u + 2 (65 bits).
  params.ate_loop = (BigInt(kU) * BigInt(6) + BigInt(2)).to_u256();

  // Frobenius coefficients: gamma[j] = xi^{j (p-1) / 6}.
  const U256 e1 = ((p_big - BigInt(1)) / BigInt(6)).to_u256();
  const Fp2 gamma1 = math::fp2_xi().pow(e1);
  params.frob_gamma[0] = Fp2::one();
  for (int j = 1; j < 6; ++j)
    params.frob_gamma[j] = params.frob_gamma[j - 1] * gamma1;
  // eta = xi^{(p^2-1)/6} = gamma1 * conj(gamma1) = Norm(gamma1), in Fp.
  params.frob2_eta = gamma1 * gamma1.conjugate();
  if (!params.frob2_eta.c1.is_zero())
    throw Error("bn254: frobenius^2 eta not in Fp");

  // Final exponentiation hard part: (p^4 - p^2 + 1) / r, exactly.
  const BigInt p2 = p_big * p_big;
  const BigInt p4 = p2 * p2;
  BigInt hard, rem;
  BigInt::divmod(p4 - p2 + BigInt(1), r_big, hard, rem);
  if (!rem.is_zero()) throw Error("bn254: r does not divide p^4 - p^2 + 1");
  params.final_exp_hard = hard;

  params.g1_gen = G1(Fp::from_u64(1), Fp::from_u64(2));
  params.g2_gen = G2(Fp2(Fp::from_dec(kG2GenX0), Fp::from_dec(kG2GenX1)),
                     Fp2(Fp::from_dec(kG2GenY0), Fp::from_dec(kG2GenY1)));
  if (!params.g1_gen.is_on_curve()) throw Error("bn254: bad G1 generator");
  if (!params.g2_gen.is_on_curve()) throw Error("bn254: bad G2 generator");
  if (!(params.g2_gen * params.r).is_infinity())
    throw Error("bn254: G2 generator not of order r");

  // Derive + verify the GLV/GLS constants last: everything above is plain
  // arithmetic, and the endomorphism fast paths stay disabled (falling back
  // to wNAF) until setup publishes a fully-checked context.
  setup_endomorphisms(params, p_big, r_big);

  g_params = params;
  g_initialized = true;
}

const Bn254& Bn254::get() {
  if (!g_initialized) throw Error("bn254: not initialized");
  return g_params;
}

// --- Endomorphism fast paths (docs/CRYPTO.md §6) ---------------------------

GlvSplit glv_decompose(const U256& k) {
  if (!g_endo.ready) throw Error("bn254: not initialized");
  return glv_decompose_impl(g_endo, k);
}

GlsSplit gls_decompose(const U256& k) {
  if (!g_endo.ready) throw Error("bn254: not initialized");
  return gls_decompose_impl(g_endo, k);
}

G1 g1_endo(const G1& p) {
  if (!g_endo.ready) throw Error("bn254: not initialized");
  return g1_endo_impl(g_endo, p);
}

G2 g2_psi(const G2& q) {
  if (!g_endo.ready) throw Error("bn254: not initialized");
  return g2_psi_impl(g_endo, q);
}

namespace {

/// Endomorphism-split G1 MSM core. Odd-multiple tables are built (and
/// batch-normalized — one field inversion total) for the BASE points only;
/// each phi split term's table is then derived entry-by-entry from the
/// base affine table via the coordinate map phi(x, y) = (beta x, y). phi
/// is a group homomorphism, so phi([2j+1] P) = [2j+1] phi(P) — the derived
/// entries are exactly the table the Jacobian build would have produced,
/// at one Fp multiply per entry instead of a Jacobian addition plus a
/// share of the normalization (docs/CRYPTO.md §6.4).
G1 g1_msm_endo(const EndoCtx& ctx, std::span<const G1> points,
               std::span<const U256> scalars) {
  const std::size_t n = points.size();
  std::vector<GlvSplit> splits(n);
  unsigned bits = 0;
  std::size_t terms = 0;
  for (std::size_t i = 0; i < n; ++i) {
    splits[i] = glv_decompose_impl(ctx, scalars[i]);
    for (int j = 0; j < 2; ++j)
      if (!splits[i].k[j].is_zero()) {
        ++terms;
        bits = std::max(bits, splits[i].k[j].bit_length());
      }
  }
  if (terms == 0) return G1::infinity();
  const unsigned w = msm_window_width(bits, terms);
  const std::size_t tsize = std::size_t{1} << (w - 2);

  std::vector<G1> jtable;
  jtable.reserve(n * tsize);
  std::vector<std::size_t> slot(n, n);  // base-table index per input point
  for (std::size_t i = 0; i < n; ++i) {
    if (splits[i].k[0].is_zero() && splits[i].k[1].is_zero()) continue;
    slot[i] = jtable.size() / tsize;
    const G1 p2 = points[i].dbl();
    jtable.push_back(points[i]);
    for (std::size_t t = 1; t < tsize; ++t)
      jtable.push_back(jtable.back() + p2);
  }
  std::vector<AffinePoint<G1Traits>> base_tab(jtable.size());
  batch_normalize<G1Traits>(jtable, base_tab);

  std::vector<AffinePoint<G1Traits>> table;
  table.reserve(terms * tsize);
  std::vector<U256> ks;
  ks.reserve(terms);
  for (std::size_t i = 0; i < n; ++i) {
    for (int j = 0; j < 2; ++j) {
      if (splits[i].k[j].is_zero()) continue;
      const AffinePoint<G1Traits>* src = &base_tab[slot[i] * tsize];
      for (std::size_t t = 0; t < tsize; ++t) {
        AffinePoint<G1Traits> a = src[t];
        if (!a.infinity) {
          if (j == 1) a.x *= ctx.beta;
          if (splits[i].neg[j]) a.y = -a.y;
        }
        table.push_back(a);
      }
      ks.push_back(splits[i].k[j]);
    }
  }
  return msm_wnaf_precomp<G1Traits>(table, ks, w);
}

/// Endomorphism-split G2 MSM core, same table-derivation scheme with the
/// four-dimensional psi chain: psi([2j+1] Q) affine = (conj(x) psi_x,
/// conj(y) psi_y), applied cumulatively for psi^2 and psi^3. Two Fp2
/// multiplies per derived entry replace a full Jacobian G2 addition.
/// Callers must guarantee points lie in the order-r subgroup (the psi
/// eigenvalue only holds there).
G2 g2_msm_endo(const EndoCtx& ctx, std::span<const G2> points,
               std::span<const U256> scalars) {
  const std::size_t n = points.size();
  std::vector<GlsSplit> splits(n);
  unsigned bits = 0;
  std::size_t terms = 0;
  for (std::size_t i = 0; i < n; ++i) {
    splits[i] = gls_decompose_impl(ctx, scalars[i]);
    for (int j = 0; j < 4; ++j)
      if (!splits[i].k[j].is_zero()) {
        ++terms;
        bits = std::max(bits, splits[i].k[j].bit_length());
      }
  }
  if (terms == 0) return G2::infinity();
  const unsigned w = msm_window_width(bits, terms);
  const std::size_t tsize = std::size_t{1} << (w - 2);

  std::vector<G2> jtable;
  jtable.reserve(n * tsize);
  std::vector<std::size_t> slot(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    bool active = false;
    for (int j = 0; j < 4; ++j) active |= !splits[i].k[j].is_zero();
    if (!active) continue;
    slot[i] = jtable.size() / tsize;
    const G2 p2 = points[i].dbl();
    jtable.push_back(points[i]);
    for (std::size_t t = 1; t < tsize; ++t)
      jtable.push_back(jtable.back() + p2);
  }
  std::vector<AffinePoint<G2Traits>> base_tab(jtable.size());
  batch_normalize<G2Traits>(jtable, base_tab);

  std::vector<AffinePoint<G2Traits>> table;
  table.reserve(terms * tsize);
  std::vector<U256> ks;
  ks.reserve(terms);
  std::vector<AffinePoint<G2Traits>> cur(tsize);
  for (std::size_t i = 0; i < n; ++i) {
    if (slot[i] == n) continue;
    for (std::size_t t = 0; t < tsize; ++t) cur[t] = base_tab[slot[i] * tsize + t];
    for (int j = 0; j < 4; ++j) {
      if (j != 0) {
        for (AffinePoint<G2Traits>& a : cur) {
          if (a.infinity) continue;
          a.x = a.x.conjugate() * ctx.psi_x;
          a.y = a.y.conjugate() * ctx.psi_y;
        }
      }
      if (splits[i].k[j].is_zero()) continue;
      for (std::size_t t = 0; t < tsize; ++t) {
        AffinePoint<G2Traits> a = cur[t];
        if (!a.infinity && splits[i].neg[j]) a.y = -a.y;
        table.push_back(a);
      }
      ks.push_back(splits[i].k[j]);
    }
  }
  return msm_wnaf_precomp<G2Traits>(table, ks, w);
}

}  // namespace

G1 g1_mul_glv(const G1& p, const U256& k) {
  if (!g_endo.ready) throw Error("bn254: not initialized");
  const G1 pts[1] = {p};
  const U256 ks[1] = {k};
  return g1_msm_endo(g_endo, std::span<const G1>(pts, 1),
                     std::span<const U256>(ks, 1));
}

G2 g2_mul_gls(const G2& q, const U256& k) {
  if (!g_endo.ready) throw Error("bn254: not initialized");
  const G2 pts[1] = {q};
  const U256 ks[1] = {k};
  return g2_msm_endo(g_endo, std::span<const G2>(pts, 1),
                     std::span<const U256>(ks, 1));
}

G1 g1_msm(std::span<const G1> points, std::span<const U256> scalars) {
  if (points.size() != scalars.size()) throw Error("g1_msm: size mismatch");
  obs::note_msm(points.size());
  if (points.empty()) return G1::infinity();
  if (!g_endo.ready) throw Error("bn254: not initialized");
  return g1_msm_endo(g_endo, points, scalars);
}

G2 g2_msm(std::span<const G2> points, std::span<const U256> scalars) {
  if (points.size() != scalars.size()) throw Error("g2_msm: size mismatch");
  obs::note_msm(points.size());
  if (points.empty()) return G2::infinity();
  if (!g_endo.ready) throw Error("bn254: not initialized");
  return g2_msm_endo(g_endo, points, scalars);
}

G2 g2_clear_cofactor(const G2& q) {
  if (!g_endo.ready) return q * Bn254::get().g2_cofactor;
  return g2_clear_cofactor_impl(g_endo, q);
}

bool g2_in_subgroup(const G2& q) {
  if (q.is_infinity()) return true;
  if (!g_endo.ready) return (q * Bn254::get().r).is_infinity();
  // psi(Q) == [6u^2]Q <=> ord(Q) | r (docs/CRYPTO.md §6.2): one ~127-bit
  // multiplication (mul_wnaf — the short scalar is public) plus one psi.
  return g2_psi_impl(g_endo, q).equals(q * g_endo.lambda2);
}

G1 endo_mul(const G1& p, const U256& k) {
  if (!g_endo.ready) return p.mul_wnaf(k);
  return g1_mul_glv(p, k);
}

// --- Serialization --------------------------------------------------------

Bytes g1_to_bytes(const G1& point) {
  Bytes out;
  out.reserve(kG1CompressedSize);
  if (point.is_infinity()) {
    out.assign(kG1CompressedSize, 0);
    return out;
  }
  Fp ax, ay;
  point.to_affine(ax, ay);
  out.push_back(ay.is_odd_repr() ? 3 : 2);
  append(out, ax.to_bytes());
  return out;
}

G1 g1_from_bytes(BytesView data) {
  if (data.size() != kG1CompressedSize) throw Error("g1: bad length");
  if (data[0] == 0) {
    for (std::size_t i = 1; i < data.size(); ++i)
      if (data[i] != 0) throw Error("g1: bad infinity encoding");
    return G1::infinity();
  }
  if (data[0] != 2 && data[0] != 3) throw Error("g1: bad flag");
  const U256 xv = U256::from_bytes(data.subspan(1));
  if (!(math::cmp(xv, Fp::modulus()) < 0)) throw Error("g1: x >= p");
  const Fp x = Fp::from_u256(xv);
  const Fp rhs = x.square() * x + G1Traits::b();
  Fp y;
  if (!rhs.sqrt(y)) throw Error("g1: not on curve");
  if (y.is_odd_repr() != (data[0] == 3)) y = -y;
  const G1 point(x, y);
  // BN254 G1 has cofactor 1: on-curve implies in-subgroup.
  return point;
}

Bytes g2_to_bytes(const G2& point) {
  Bytes out;
  out.reserve(kG2CompressedSize);
  if (point.is_infinity()) {
    out.assign(kG2CompressedSize, 0);
    return out;
  }
  Fp2 ax, ay;
  point.to_affine(ax, ay);
  // Parity of y: use c0's parity, falling back to c1 when c0 == 0.
  const bool odd = ay.c0.is_zero() ? ay.c1.is_odd_repr() : ay.c0.is_odd_repr();
  out.push_back(odd ? 3 : 2);
  append(out, ax.c0.to_bytes());
  append(out, ax.c1.to_bytes());
  return out;
}

G2 g2_from_bytes(BytesView data) {
  if (data.size() != kG2CompressedSize) throw Error("g2: bad length");
  if (data[0] == 0) {
    for (std::size_t i = 1; i < data.size(); ++i)
      if (data[i] != 0) throw Error("g2: bad infinity encoding");
    return G2::infinity();
  }
  if (data[0] != 2 && data[0] != 3) throw Error("g2: bad flag");
  const U256 x0 = U256::from_bytes(data.subspan(1, 32));
  const U256 x1 = U256::from_bytes(data.subspan(33, 32));
  if (!(math::cmp(x0, Fp::modulus()) < 0) ||
      !(math::cmp(x1, Fp::modulus()) < 0))
    throw Error("g2: coordinate >= p");
  const Fp2 x(Fp::from_u256(x0), Fp::from_u256(x1));
  const Fp2 rhs = x.square() * x + G2Traits::b();
  Fp2 y;
  if (!rhs.sqrt(y)) throw Error("g2: not on curve");
  const bool odd = y.c0.is_zero() ? y.c1.is_odd_repr() : y.c0.is_odd_repr();
  if (odd != (data[0] == 3)) y = -y;
  const G2 point(x, y);
  // psi-eigenvalue membership test — equivalent to the [r]Q == O check it
  // replaces (biconditional proved in docs/CRYPTO.md §6.2) at ~1/4 the cost.
  if (!g2_in_subgroup(point)) throw Error("g2: not in order-r subgroup");
  return point;
}

Bytes fr_to_bytes(const Fr& v) { return v.to_bytes(); }

Fr fr_from_bytes(BytesView data) {
  if (data.size() != kFrSize) throw Error("fr: bad length");
  const U256 v = U256::from_bytes(data);
  if (!(math::cmp(v, Fr::modulus()) < 0)) throw Error("fr: value >= r");
  return Fr::from_u256(v);
}

}  // namespace peace::curve
