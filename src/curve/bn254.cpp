#include "curve/bn254.hpp"

namespace peace::curve {

using math::BigInt;
using math::U256;

namespace {

// BN parameter u for alt_bn128; p and r are polynomial in u:
//   p(u) = 36u^4 + 36u^3 + 24u^2 + 6u + 1
//   r(u) = 36u^4 + 36u^3 + 18u^2 + 6u + 1
constexpr std::uint64_t kU = 4965661367192848881ULL;

// Standard alt_bn128 G2 generator (affine, Fp2 = c0 + c1 i).
constexpr const char* kG2GenX0 =
    "10857046999023057135944570762232829481370756359578518086990519993285655852781";
constexpr const char* kG2GenX1 =
    "11559732032986387107991004021392285783925812861821192530917403151452391805634";
constexpr const char* kG2GenY0 =
    "8495653923123431417604973247489272438418190587263600148770280649306958101930";
constexpr const char* kG2GenY1 =
    "4082367875863433681332203403145435568316851327593401208105741076214120093531";

Bn254 g_params;
bool g_initialized = false;

BigInt bn_poly(std::uint64_t u, std::uint64_t c2) {
  // 36u^4 + 36u^3 + c2*u^2 + 6u + 1
  const BigInt bu(u);
  const BigInt u2 = bu * bu;
  const BigInt u3 = u2 * bu;
  const BigInt u4 = u3 * bu;
  return u4 * BigInt(36) + u3 * BigInt(36) + u2 * BigInt(c2) +
         bu * BigInt(6) + BigInt(1);
}

}  // namespace

const Fp2& G2Traits::b() {
  static const Fp2 b2 = Fp2::from_u64(3, 0) * math::fp2_xi().inverse();
  return b2;
}

void Bn254::init() {
  if (g_initialized) return;

  Bn254 params;
  params.u = kU;
  const BigInt p_big = bn_poly(kU, 24);
  const BigInt r_big = bn_poly(kU, 18);
  params.p = p_big.to_u256();
  params.r = r_big.to_u256();

  Fp::init(params.p);
  Fr::init(params.r);

  // g2_cofactor = 2p - r (the order of E'(Fp2) is r * (2p - r)).
  params.g2_cofactor = (p_big + p_big - r_big).to_u256();

  // ate_loop = 6u + 2 (65 bits).
  params.ate_loop = (BigInt(kU) * BigInt(6) + BigInt(2)).to_u256();

  // Frobenius coefficients: gamma[j] = xi^{j (p-1) / 6}.
  const U256 e1 = ((p_big - BigInt(1)) / BigInt(6)).to_u256();
  const Fp2 gamma1 = math::fp2_xi().pow(e1);
  params.frob_gamma[0] = Fp2::one();
  for (int j = 1; j < 6; ++j)
    params.frob_gamma[j] = params.frob_gamma[j - 1] * gamma1;
  // eta = xi^{(p^2-1)/6} = gamma1 * conj(gamma1) = Norm(gamma1), in Fp.
  params.frob2_eta = gamma1 * gamma1.conjugate();
  if (!params.frob2_eta.c1.is_zero())
    throw Error("bn254: frobenius^2 eta not in Fp");

  // Final exponentiation hard part: (p^4 - p^2 + 1) / r, exactly.
  const BigInt p2 = p_big * p_big;
  const BigInt p4 = p2 * p2;
  BigInt hard, rem;
  BigInt::divmod(p4 - p2 + BigInt(1), r_big, hard, rem);
  if (!rem.is_zero()) throw Error("bn254: r does not divide p^4 - p^2 + 1");
  params.final_exp_hard = hard;

  params.g1_gen = G1(Fp::from_u64(1), Fp::from_u64(2));
  params.g2_gen = G2(Fp2(Fp::from_dec(kG2GenX0), Fp::from_dec(kG2GenX1)),
                     Fp2(Fp::from_dec(kG2GenY0), Fp::from_dec(kG2GenY1)));
  if (!params.g1_gen.is_on_curve()) throw Error("bn254: bad G1 generator");
  if (!params.g2_gen.is_on_curve()) throw Error("bn254: bad G2 generator");
  if (!(params.g2_gen * params.r).is_infinity())
    throw Error("bn254: G2 generator not of order r");

  g_params = params;
  g_initialized = true;
}

const Bn254& Bn254::get() {
  if (!g_initialized) throw Error("bn254: not initialized");
  return g_params;
}

// --- Serialization --------------------------------------------------------

Bytes g1_to_bytes(const G1& point) {
  Bytes out;
  out.reserve(kG1CompressedSize);
  if (point.is_infinity()) {
    out.assign(kG1CompressedSize, 0);
    return out;
  }
  Fp ax, ay;
  point.to_affine(ax, ay);
  out.push_back(ay.is_odd_repr() ? 3 : 2);
  append(out, ax.to_bytes());
  return out;
}

G1 g1_from_bytes(BytesView data) {
  if (data.size() != kG1CompressedSize) throw Error("g1: bad length");
  if (data[0] == 0) {
    for (std::size_t i = 1; i < data.size(); ++i)
      if (data[i] != 0) throw Error("g1: bad infinity encoding");
    return G1::infinity();
  }
  if (data[0] != 2 && data[0] != 3) throw Error("g1: bad flag");
  const U256 xv = U256::from_bytes(data.subspan(1));
  if (!(math::cmp(xv, Fp::modulus()) < 0)) throw Error("g1: x >= p");
  const Fp x = Fp::from_u256(xv);
  const Fp rhs = x.square() * x + G1Traits::b();
  Fp y;
  if (!rhs.sqrt(y)) throw Error("g1: not on curve");
  if (y.is_odd_repr() != (data[0] == 3)) y = -y;
  const G1 point(x, y);
  // BN254 G1 has cofactor 1: on-curve implies in-subgroup.
  return point;
}

Bytes g2_to_bytes(const G2& point) {
  Bytes out;
  out.reserve(kG2CompressedSize);
  if (point.is_infinity()) {
    out.assign(kG2CompressedSize, 0);
    return out;
  }
  Fp2 ax, ay;
  point.to_affine(ax, ay);
  // Parity of y: use c0's parity, falling back to c1 when c0 == 0.
  const bool odd = ay.c0.is_zero() ? ay.c1.is_odd_repr() : ay.c0.is_odd_repr();
  out.push_back(odd ? 3 : 2);
  append(out, ax.c0.to_bytes());
  append(out, ax.c1.to_bytes());
  return out;
}

G2 g2_from_bytes(BytesView data) {
  if (data.size() != kG2CompressedSize) throw Error("g2: bad length");
  if (data[0] == 0) {
    for (std::size_t i = 1; i < data.size(); ++i)
      if (data[i] != 0) throw Error("g2: bad infinity encoding");
    return G2::infinity();
  }
  if (data[0] != 2 && data[0] != 3) throw Error("g2: bad flag");
  const U256 x0 = U256::from_bytes(data.subspan(1, 32));
  const U256 x1 = U256::from_bytes(data.subspan(33, 32));
  if (!(math::cmp(x0, Fp::modulus()) < 0) ||
      !(math::cmp(x1, Fp::modulus()) < 0))
    throw Error("g2: coordinate >= p");
  const Fp2 x(Fp::from_u256(x0), Fp::from_u256(x1));
  const Fp2 rhs = x.square() * x + G2Traits::b();
  Fp2 y;
  if (!rhs.sqrt(y)) throw Error("g2: not on curve");
  const bool odd = y.c0.is_zero() ? y.c1.is_odd_repr() : y.c0.is_odd_repr();
  if (odd != (data[0] == 3)) y = -y;
  const G2 point(x, y);
  if (!(point * Bn254::get().r).is_infinity())
    throw Error("g2: not in order-r subgroup");
  return point;
}

Bytes fr_to_bytes(const Fr& v) { return v.to_bytes(); }

Fr fr_from_bytes(BytesView data) {
  if (data.size() != kFrSize) throw Error("fr: bad length");
  const U256 v = U256::from_bytes(data);
  if (!(math::cmp(v, Fr::modulus()) < 0)) throw Error("fr: value >= r");
  return Fr::from_u256(v);
}

}  // namespace peace::curve
