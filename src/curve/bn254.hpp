// BN254 (alt_bn128) parameter set and global initialization. Everything is
// derived at first use from the BN parameter u and decimal constants —
// Montgomery tables, Frobenius coefficients, the G2 cofactor, and the final
// exponentiation exponent are all computed, not transcribed.
#pragma once

#include <array>

#include "curve/point.hpp"
#include "math/bigint.hpp"

namespace peace::curve {

using math::Fp;
using math::Fp12;
using math::Fp2;
using math::Fr;

struct G1Traits {
  using Field = Fp;
  static Fp b() { return Fp::from_u64(3); }
  static Fp field_one() { return Fp::one(); }
};

struct G2Traits {
  using Field = Fp2;
  static const Fp2& b();  // 3 / xi
  static Fp2 field_one() { return Fp2::one(); }
};

using G1 = CurvePoint<G1Traits>;
using G2 = CurvePoint<G2Traits>;
using GT = Fp12;  // order-r subgroup of Fp12*

/// All BN254 constants, available after init().
struct Bn254 {
  std::uint64_t u = 0;            // BN generation parameter
  math::U256 p;                   // base field modulus
  math::U256 r;                   // group order (the paper's "p" in Z_p)
  math::U256 g2_cofactor;         // 2p - r
  math::U256 ate_loop;            // 6u + 2
  std::array<Fp2, 6> frob_gamma;  // xi^{j (p-1) / 6}
  Fp2 frob2_eta;                  // xi^{(p^2-1)/6} (lies in Fp)
  math::BigInt final_exp_hard;    // (p^4 - p^2 + 1) / r
  G1 g1_gen;
  G2 g2_gen;

  /// Idempotent global initialization; call before any curve arithmetic.
  static void init();
  static const Bn254& get();
};

/// --- Serialization ------------------------------------------------------
/// Compressed points: 1 flag byte (0 = infinity, 2/3 = y parity) followed by
/// the big-endian x coordinate (32 bytes for G1, 64 for G2).

constexpr std::size_t kG1CompressedSize = 33;
constexpr std::size_t kG2CompressedSize = 65;
constexpr std::size_t kFrSize = 32;
/// GT elements serialize as the 12 Fp coefficients (Fp12::to_bytes).
constexpr std::size_t kGtSize = 12 * 32;

Bytes g1_to_bytes(const G1& point);
/// Throws Error on malformed encodings or points off the curve.
G1 g1_from_bytes(BytesView data);

Bytes g2_to_bytes(const G2& point);
/// Throws Error on malformed encodings, points off the curve, or points
/// outside the order-r subgroup.
G2 g2_from_bytes(BytesView data);

Bytes fr_to_bytes(const Fr& v);
Fr fr_from_bytes(BytesView data);

}  // namespace peace::curve
