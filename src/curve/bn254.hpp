// BN254 (alt_bn128) parameter set and global initialization. Everything is
// derived at first use from the BN parameter u and decimal constants —
// Montgomery tables, Frobenius coefficients, the G2 cofactor, and the final
// exponentiation exponent are all computed, not transcribed.
#pragma once

#include <array>

#include "curve/point.hpp"
#include "math/bigint.hpp"

namespace peace::curve {

using math::Fp;
using math::Fp12;
using math::Fp2;
using math::Fr;

struct G1Traits {
  using Field = Fp;
  static Fp b() { return Fp::from_u64(3); }
  static Fp field_one() { return Fp::one(); }
};

struct G2Traits {
  using Field = Fp2;
  static const Fp2& b();  // 3 / xi
  static Fp2 field_one() { return Fp2::one(); }
};

using G1 = CurvePoint<G1Traits>;
using G2 = CurvePoint<G2Traits>;
using GT = Fp12;  // order-r subgroup of Fp12*

/// Signed arbitrary-precision integer: the sign-magnitude bookkeeping the
/// GLV/GLS lattice bases and Babai round-off need (math::BigInt is
/// unsigned-only).
struct SignedBig {
  bool neg = false;  // sign of a nonzero magnitude; false for zero
  math::BigInt mag;
};

/// All BN254 constants, available after init().
struct Bn254 {
  std::uint64_t u = 0;            // BN generation parameter
  math::U256 p;                   // base field modulus
  math::U256 r;                   // group order (the paper's "p" in Z_p)
  math::U256 g2_cofactor;         // 2p - r
  math::U256 ate_loop;            // 6u + 2
  std::array<Fp2, 6> frob_gamma;  // xi^{j (p-1) / 6}
  Fp2 frob2_eta;                  // xi^{(p^2-1)/6} (lies in Fp)
  math::BigInt final_exp_hard;    // (p^4 - p^2 + 1) / r
  G1 g1_gen;
  G2 g2_gen;

  // Endomorphism data (docs/CRYPTO.md §6.1-§6.2). glv_basis rows (a, b)
  // satisfy a + b*glv_lambda = 0 (mod r); gls_basis rows (c0..c3) satisfy
  // sum_i ci * gls_lambda^i = 0 (mod r). All derived and verified at
  // init(), never transcribed.
  Fp glv_beta;               // primitive cube root of unity in Fp
  math::U256 glv_lambda;     // matching eigenvalue: phi(P) = [lambda]P on G1
  std::array<std::array<SignedBig, 2>, 2> glv_basis;
  math::U256 gls_lambda;     // p mod r = 6u^2: psi(Q) = [lambda]Q on G2
  std::array<std::array<SignedBig, 4>, 4> gls_basis;

  /// Idempotent global initialization; call before any curve arithmetic.
  static void init();
  static const Bn254& get();
};

/// --- Endomorphism fast paths (docs/CRYPTO.md §6) ------------------------

/// GLV split of k (mod r): k = (-1)^neg[0] k[0] + (-1)^neg[1] k[1] * lambda
/// (mod r) with both magnitudes ~half-width (<= 2^128). §6.1 carries the
/// soundness argument.
struct GlvSplit {
  std::array<math::U256, 2> k;
  std::array<bool, 2> neg;
};

/// GLS split of k (mod r): k = sum_i (-1)^neg[i] k[i] * lambda^i (mod r)
/// with all four magnitudes ~quarter-width (<= 2^68). §6.2.
struct GlsSplit {
  std::array<math::U256, 4> k;
  std::array<bool, 4> neg;
};

GlvSplit glv_decompose(const math::U256& k);
GlsSplit gls_decompose(const math::U256& k);

/// The G1 endomorphism phi(x, y) = (beta x, y); phi(P) = [lambda]P for
/// every point of E(Fp), which has prime order r (cofactor 1).
G1 g1_endo(const G1& p);

/// The G2 endomorphism psi = untwist . Frobenius . twist on the twist
/// curve. On the order-r subgroup psi(Q) = [6u^2]Q; off the subgroup only
/// the characteristic equation psi^2 - [t]psi + [p] = 0 holds.
G2 g2_psi(const G2& q);

/// [k]P via the 2-dimensional GLV decomposition. Valid for every G1 point
/// (reduces k mod r first; E(Fp) has exponent r). Bit-identical serialized
/// output to plain multiplication (docs/CRYPTO.md §6.1).
G1 g1_mul_glv(const G1& p, const math::U256& k);

/// [k]Q via the 4-dimensional GLS decomposition. REQUIRES q in the order-r
/// subgroup — the eigenvalue relation behind the split is false elsewhere
/// on the twist, which is why this is an explicit entry point and NOT
/// wired into the generic G2 operator* (docs/CRYPTO.md §6.2). Callers in
/// groupsig/peace only feed subgroup-checked or subgroup-derived points.
G2 g2_mul_gls(const G2& q, const math::U256& k);

/// Endomorphism-split multi-scalar multiplications: every term is GLV-
/// (G1, 2-way) or GLS-split (G2, 4-way; subgroup precondition as in
/// g2_mul_gls) into short scalars, then one shared wNAF chain covers all
/// split terms with a window tuned to the shortened width.
G1 g1_msm(std::span<const G1> points, std::span<const math::U256> scalars);
G2 g2_msm(std::span<const G2> points, std::span<const math::U256> scalars);

/// Fixed-size conveniences (call with explicit N: g1_msm<3>({...}, {...})),
/// mirroring multi_scalar_mul's array form at the groupsig call sites.
template <std::size_t N>
G1 g1_msm(const std::array<G1, N>& points,
          const std::array<math::U256, N>& scalars) {
  return g1_msm(std::span<const G1>(points),
                std::span<const math::U256>(scalars));
}
template <std::size_t N>
G2 g2_msm(const std::array<G2, N>& points,
          const std::array<math::U256, N>& scalars) {
  return g2_msm(std::span<const G2>(points),
                std::span<const math::U256>(scalars));
}

/// Fast cofactor clearing for arbitrary points of the twist curve:
/// [2p - r]Q = [t]psi(Q) + [t-1]Q - psi^2(Q) with t - 1 = 6u^2, turning a
/// 255-bit multiplication into a 2-term 127-bit MSM plus two psi maps.
/// Verified against plain [2p - r]Q at init (docs/CRYPTO.md §6.2).
G2 g2_clear_cofactor(const G2& q);

/// Fast subgroup membership for on-curve twist points:
/// psi(Q) == [6u^2]Q  <=>  Q in the order-r subgroup (proof in
/// docs/CRYPTO.md §6.2) — one ~127-bit multiplication instead of the
/// 254-bit [r]Q check.
bool g2_in_subgroup(const G2& q);

/// GLV hook consumed by CurvePoint<G1Traits>::operator* (found by ADL):
/// g1_mul_glv once init() has published the constants, plain wNAF before.
G1 endo_mul(const G1& p, const math::U256& k);

/// --- Serialization ------------------------------------------------------
/// Compressed points: 1 flag byte (0 = infinity, 2/3 = y parity) followed by
/// the big-endian x coordinate (32 bytes for G1, 64 for G2).

constexpr std::size_t kG1CompressedSize = 33;
constexpr std::size_t kG2CompressedSize = 65;
constexpr std::size_t kFrSize = 32;
/// GT elements serialize as the 12 Fp coefficients (Fp12::to_bytes).
constexpr std::size_t kGtSize = 12 * 32;

Bytes g1_to_bytes(const G1& point);
/// Throws Error on malformed encodings or points off the curve.
G1 g1_from_bytes(BytesView data);

Bytes g2_to_bytes(const G2& point);
/// Throws Error on malformed encodings, points off the curve, or points
/// outside the order-r subgroup.
G2 g2_from_bytes(BytesView data);

Bytes fr_to_bytes(const Fr& v);
Fr fr_from_bytes(BytesView data);

}  // namespace peace::curve
