#include "curve/hash_to_curve.hpp"

#include "crypto/sha256.hpp"

namespace peace::curve {

using crypto::Sha256;
using math::Fp;
using math::Fp2;
using math::U256;

namespace {

Bytes domain_hash(std::string_view domain, std::uint32_t counter,
                  BytesView data) {
  Sha256 h;
  h.update(as_bytes(domain));
  const std::uint8_t ctr[4] = {static_cast<std::uint8_t>(counter >> 24),
                               static_cast<std::uint8_t>(counter >> 16),
                               static_cast<std::uint8_t>(counter >> 8),
                               static_cast<std::uint8_t>(counter)};
  h.update({ctr, 4});
  h.update(data);
  auto d = h.finalize();
  return Bytes(d.begin(), d.end());
}

}  // namespace

Fr hash_to_fr(std::string_view domain, BytesView data) {
  // Two hash blocks widen the value to 512 bits before reduction so the
  // output is statistically uniform in Z_r, then combine mod r.
  const Bytes d0 = domain_hash(domain, 0x80000000u, data);
  const Bytes d1 = domain_hash(domain, 0x80000001u, data);
  const Fr hi = Fr::from_bytes_reduce(d0);
  const Fr lo = Fr::from_bytes_reduce(d1);
  // hi * 2^256 + lo mod r.
  Fr two_256 = Fr::from_u64(2).pow(U256(256));
  return hi * two_256 + lo;
}

G1 hash_to_g1(std::string_view domain, BytesView data) {
  for (std::uint32_t ctr = 0;; ++ctr) {
    const Bytes d = domain_hash(domain, ctr, data);
    const Fp x = Fp::from_bytes_reduce(d);
    const Fp rhs = x.square() * x + G1Traits::b();
    Fp y;
    if (!rhs.sqrt(y)) continue;
    // Choose the root parity from one more hash bit so the output is not
    // biased toward one half-plane.
    const Bytes parity = domain_hash(domain, ctr ^ 0x40000000u, data);
    if ((parity[0] & 1) != (y.is_odd_repr() ? 1 : 0)) y = -y;
    const G1 point(x, y);
    if (point.is_infinity()) continue;
    return point;
  }
}

G2 hash_to_g2(std::string_view domain, BytesView data) {
  Bn254::get();  // ensure init (publishes the psi constants)
  for (std::uint32_t ctr = 0;; ++ctr) {
    const Bytes d0 = domain_hash(domain, ctr, data);
    const Bytes d1 = domain_hash(domain, ctr ^ 0x20000000u, data);
    const Fp2 x(Fp::from_bytes_reduce(d0), Fp::from_bytes_reduce(d1));
    const Fp2 rhs = x.square() * x + G2Traits::b();
    Fp2 y;
    if (!rhs.sqrt(y)) continue;
    const Bytes parity = domain_hash(domain, ctr ^ 0x40000000u, data);
    if ((parity[0] & 1) != 0) y = -y;
    G2 point(x, y);
    // Clear the cofactor into the r-subgroup via the psi identity
    // (docs/CRYPTO.md §6.2) — same group element as [2p - r]Q, ~4x cheaper.
    point = g2_clear_cofactor(point);
    if (point.is_infinity()) continue;
    return point;
  }
}

SignatureBases hash_to_bases(BytesView seed) {
  SignatureBases bases;
  bases.u = hash_to_g1("peace/H0/u", seed);
  bases.v = hash_to_g1("peace/H0/v", seed);
  bases.v_hat = hash_to_g2("peace/H0/vhat", seed);
  return bases;
}

}  // namespace peace::curve
