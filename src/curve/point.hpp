// Short-Weierstrass curve points (y^2 = x^3 + b, a = 0) in Jacobian
// coordinates, generic over the coordinate field. Instantiated as
// G1 = E(Fp) and G2 = E'(Fp2) (the sextic twist) in g1.hpp / g2.hpp.
#pragma once

#include <algorithm>
#include <array>
#include <span>
#include <vector>

#include "math/fp12.hpp"
#include "obs/trace.hpp"

namespace peace::curve {

using math::Fr;
using math::U256;

/// Affine (Z = 1) point, the representation MSM tables take after batch
/// normalization so the main loops can use mixed addition
/// (docs/CRYPTO.md §6.4).
template <class Traits>
struct AffinePoint {
  using F = typename Traits::Field;

  F x, y;
  bool infinity = true;

  /// Negation is free in affine coordinates — how wNAF digits get their
  /// sign without a second table half.
  AffinePoint negated() const { return {x, -y, infinity}; }
};

template <class Traits>
struct CurvePoint {
  using F = typename Traits::Field;

  // Jacobian (X, Y, Z): affine (X/Z^2, Y/Z^3); Z == 0 encodes infinity.
  F x, y, z;

  CurvePoint() : x(F::zero()), y(F::zero()), z(F::zero()) {}  // infinity
  CurvePoint(const F& ax, const F& ay)
      : x(ax), y(ay), z(Traits::field_one()) {}

  static CurvePoint infinity() { return CurvePoint(); }
  bool is_infinity() const { return z.is_zero(); }

  bool is_on_curve() const {
    if (is_infinity()) return true;
    // Y^2 = X^3 + b Z^6.
    const F z2 = z.square();
    const F z6 = z2.square() * z2;
    return y.square() == x.square() * x + Traits::b() * z6;
  }

  /// Affine coordinates; throws on infinity. One field inversion — batch
  /// callers should prefer batch_normalize (one inversion for any count).
  void to_affine(F& ax, F& ay) const {
    if (is_infinity()) throw Error("CurvePoint: affine of infinity");
    obs::note_field_inversion();
    const F zinv = z.inverse();
    const F zinv2 = zinv.square();
    ax = x * zinv2;
    ay = y * zinv2 * zinv;
  }

  /// Normalizes Z to one (no-op for infinity).
  CurvePoint normalized() const {
    if (is_infinity()) return *this;
    F ax, ay;
    to_affine(ax, ay);
    return CurvePoint(ax, ay);
  }

  CurvePoint dbl() const {
    if (is_infinity()) return *this;
    if (y.is_zero()) return infinity();
    const F a = x.square();
    const F b = y.square();
    const F c = b.square();
    F d = (x + b).square() - a - c;
    d = d + d;
    const F e = a + a + a;
    const F f = e.square();
    CurvePoint out;
    out.x = f - (d + d);
    F c8 = c + c;
    c8 = c8 + c8;
    c8 = c8 + c8;
    out.y = e * (d - out.x) - c8;
    out.z = (y * z) + (y * z);
    return out;
  }

  CurvePoint operator+(const CurvePoint& o) const {
    if (is_infinity()) return o;
    if (o.is_infinity()) return *this;
    const F z1z1 = z.square();
    const F z2z2 = o.z.square();
    const F u1 = x * z2z2;
    const F u2 = o.x * z1z1;
    const F s1 = y * z2z2 * o.z;
    const F s2 = o.y * z1z1 * z;
    if (u1 == u2) {
      if (s1 == s2) return dbl();
      return infinity();
    }
    const F h = u2 - u1;
    const F i = (h + h).square();
    const F j = h * i;
    F r = s2 - s1;
    r = r + r;
    const F v = u1 * i;
    CurvePoint out;
    out.x = r.square() - j - (v + v);
    const F s1j = s1 * j;
    out.y = r * (v - out.x) - (s1j + s1j);
    out.z = ((z + o.z).square() - z1z1 - z2z2) * h;
    return out;
  }

  /// Mixed addition with an affine (Z2 = 1) operand: madd-2007-bl,
  /// 7M + 4S against the 11M + 5S of the general Jacobian add. Used by the
  /// wNAF/MSM paths after batch normalization (docs/CRYPTO.md §6.4).
  CurvePoint add_mixed(const AffinePoint<Traits>& o) const {
    if (o.infinity) return *this;
    if (is_infinity()) return CurvePoint(o.x, o.y);
    const F z1z1 = z.square();
    const F u2 = o.x * z1z1;
    const F s2 = o.y * z1z1 * z;
    if (x == u2) {
      if (y == s2) return dbl();
      return infinity();
    }
    const F h = u2 - x;
    const F hh = h.square();
    F i4 = hh + hh;
    i4 = i4 + i4;
    const F j = h * i4;
    F r = s2 - y;
    r = r + r;
    const F v = x * i4;
    CurvePoint out;
    out.x = r.square() - j - (v + v);
    const F yj = y * j;
    out.y = r * (v - out.x) - (yj + yj);
    out.z = (z + h).square() - z1z1 - hh;
    return out;
  }

  CurvePoint operator-() const {
    CurvePoint out = *this;
    out.y = -out.y;
    return out;
  }
  CurvePoint operator-(const CurvePoint& o) const { return *this + (-o); }

  /// Scalar multiplication. Short scalars take plain double-and-add (the
  /// table cost would dominate); full-width scalars take the wNAF path, or
  /// the GLV-decomposed path when the curve provides an `endo_mul` hook
  /// (G1 only — see curve::endo_mul in bn254.hpp and docs/CRYPTO.md §6.1).
  /// Every path returns the same group element in possibly different
  /// Jacobian representation; serialized bytes are identical.
  CurvePoint operator*(const U256& k) const {
    if (k.bit_length() <= 64) return mul_double_and_add(k);
    if constexpr (requires(const CurvePoint& p, const U256& s) {
                    endo_mul(p, s);
                  }) {
      return endo_mul(*this, k);
    } else {
      return mul_wnaf(k);
    }
  }
  CurvePoint operator*(const Fr& k) const { return *this * k.to_u256(); }

  /// Single-scalar wNAF multiplication (batched-affine table; one
  /// inversion). The non-endomorphism workhorse behind operator*.
  CurvePoint mul_wnaf(const U256& k) const;

  /// Textbook MSB-first double-and-add; kept as the oracle the windowed
  /// path is tested against.
  CurvePoint mul_double_and_add(const U256& k) const {
    CurvePoint acc = infinity();
    const unsigned n = k.bit_length();
    for (int i = static_cast<int>(n) - 1; i >= 0; --i) {
      acc = acc.dbl();
      if (k.bit(static_cast<unsigned>(i))) acc = acc + *this;
    }
    return acc;
  }

  /// Fixed-window (w = 4) multiplication: one 15-entry table, then four
  /// doublings plus at most one addition per nibble. No longer on the hot
  /// path (operator* uses wNAF/GLV) — retained as the pre-endomorphism
  /// reference the fast paths are benchmarked and tested against.
  CurvePoint mul_windowed(const U256& k) const {
    CurvePoint table[16];
    table[0] = infinity();
    table[1] = *this;
    for (int i = 2; i < 16; ++i) table[i] = table[i - 1] + *this;

    CurvePoint acc = infinity();
    const unsigned nibbles = (k.bit_length() + 3) / 4;
    for (int i = static_cast<int>(nibbles) - 1; i >= 0; --i) {
      acc = acc.dbl().dbl().dbl().dbl();
      const unsigned shift = static_cast<unsigned>(i) * 4;
      const unsigned nibble =
          static_cast<unsigned>(k.limb[shift / 64] >> (shift % 64)) & 0xf;
      if (nibble != 0) acc = acc + table[nibble];
    }
    return acc;
  }

  /// Projective-independent equality.
  bool equals(const CurvePoint& o) const {
    if (is_infinity() || o.is_infinity())
      return is_infinity() == o.is_infinity();
    const F z1z1 = z.square();
    const F z2z2 = o.z.square();
    if (!(x * z2z2 == o.x * z1z1)) return false;
    return y * z2z2 * o.z == o.y * z1z1 * z;
  }
  bool operator==(const CurvePoint& o) const { return equals(o); }
};

/// Jacobian -> affine for a whole batch with ONE field inversion
/// (Montgomery's trick: prefix products, one inverse, unwind). Field
/// inverses are unique, so each point's affine coordinates are bit-
/// identical to what its own to_affine() would produce
/// (docs/CRYPTO.md §6.4); infinity maps to the affine infinity flag.
template <class Traits>
void batch_normalize(std::span<const CurvePoint<Traits>> in,
                     std::span<AffinePoint<Traits>> out) {
  using F = typename Traits::Field;
  if (in.size() != out.size())
    throw Error("batch_normalize: size mismatch");
  const std::size_t n = in.size();
  std::vector<F> prefix(n);  // product of the nonzero Zs before slot i
  F running = Traits::field_one();
  bool any = false;
  for (std::size_t i = 0; i < n; ++i) {
    if (in[i].is_infinity()) {
      out[i].infinity = true;
      continue;
    }
    any = true;
    prefix[i] = running;
    running *= in[i].z;
  }
  if (!any) return;
  obs::note_field_inversion();
  F inv = running.inverse();
  for (std::size_t i = n; i-- > 0;) {
    if (in[i].is_infinity()) continue;
    const F zinv = inv * prefix[i];
    inv *= in[i].z;
    const F zinv2 = zinv.square();
    out[i] = {in[i].x * zinv2, in[i].y * zinv2 * zinv, false};
  }
}

/// Width-w signed recoding (wNAF): k = sum_i d_i 2^i with every nonzero
/// digit odd and |d_i| < 2^(w-1). Nonzero digits are at least w apart, so
/// an n-bit scalar costs ~n/(w+1) additions against a 2^(w-2)-entry table
/// of odd multiples (docs/CRYPTO.md §6.4).
struct WnafDigits {
  std::array<std::int8_t, 260> d{};
  unsigned len = 0;
};

inline WnafDigits wnaf_recode(const U256& k, unsigned w) {
  if (w < 2 || w > 7) throw Error("wnaf_recode: window out of range");
  WnafDigits out;
  // One spare limb: the carry for a negative digit can pass bit 256.
  std::array<std::uint64_t, 5> v{k.limb[0], k.limb[1], k.limb[2], k.limb[3],
                                 0};
  const std::uint64_t mask = (std::uint64_t{1} << w) - 1;
  const std::int64_t half = std::int64_t{1} << (w - 1);
  while ((v[0] | v[1] | v[2] | v[3] | v[4]) != 0) {
    std::int64_t d = 0;
    if (v[0] & 1) {
      d = static_cast<std::int64_t>(v[0] & mask);
      if (d >= half) d -= std::int64_t{1} << w;
      if (d >= 0) {
        std::uint64_t borrow = static_cast<std::uint64_t>(d);
        for (int i = 0; i < 5 && borrow != 0; ++i) {
          const std::uint64_t cur = v[static_cast<std::size_t>(i)];
          v[static_cast<std::size_t>(i)] = cur - borrow;
          borrow = cur < borrow ? 1 : 0;
        }
      } else {
        std::uint64_t carry = static_cast<std::uint64_t>(-d);
        for (int i = 0; i < 5 && carry != 0; ++i) {
          const std::uint64_t cur = v[static_cast<std::size_t>(i)] + carry;
          carry = cur < carry ? 1 : 0;
          v[static_cast<std::size_t>(i)] = cur;
        }
      }
    }
    out.d[out.len++] = static_cast<std::int8_t>(d);
    for (int i = 0; i < 4; ++i) v[i] = (v[i] >> 1) | (v[i + 1] << 63);
    v[4] >>= 1;
  }
  return out;
}

/// wNAF window width for an MSM over `terms` scalars of at most `bits`
/// bits: minimizes per-term cost, 2^(w-2) Jacobian table adds plus
/// ~bits/(w+1) mixed additions (weight 0.75 — mixed adds are cheaper than
/// the full adds building the table). Full-width scalars get w = 5; the
/// half/quarter-width scalars the GLV/GLS splits produce drop to w = 4.
inline unsigned msm_window_width(unsigned bits, std::size_t terms) {
  if (bits == 0 || terms == 0) return 2;
  unsigned best = 2;
  double best_cost = 1e300;
  for (unsigned w = 2; w <= 7; ++w) {
    const double cost = static_cast<double>(1u << (w - 2)) +
                        0.75 * static_cast<double>(bits) / (w + 1.0);
    if (cost < best_cost) {
      best_cost = cost;
      best = w;
    }
  }
  return best;
}

/// The shared MSM core: per-term odd-multiple tables built in Jacobian
/// coordinates, ONE batched inversion normalizing every table entry to
/// affine, then a single wNAF digit loop of shared doublings and mixed
/// additions. Returns exactly the group element the individual
/// multiplications would sum to (docs/CRYPTO.md §6.4); callers count
/// obs::note_msm themselves (the endomorphism wrappers report paper-level
/// term counts, not split counts).
/// Digit-loop half of the wNAF MSM, over caller-supplied affine tables:
/// table[t * 2^(w-2) + j] must be the odd multiple (2j+1) * P_t in affine
/// coordinates. Split out so the endomorphism wrappers (curve::g1_msm /
/// g2_msm) can derive the phi/psi split-term tables from the base term's
/// normalized table with one cheap coordinate map per entry instead of
/// building and normalizing separate Jacobian tables (docs/CRYPTO.md
/// §6.4).
template <class Traits>
CurvePoint<Traits> msm_wnaf_precomp(
    std::span<const AffinePoint<Traits>> table,
    std::span<const U256> scalars, unsigned w) {
  using Point = CurvePoint<Traits>;
  const std::size_t n = scalars.size();
  const std::size_t tsize = std::size_t{1} << (w - 2);
  if (table.size() != n * tsize)
    throw Error("msm_wnaf_precomp: table/scalars size mismatch");
  std::vector<WnafDigits> digits(n);
  unsigned maxlen = 0;
  for (std::size_t t = 0; t < n; ++t) {
    digits[t] = wnaf_recode(scalars[t], w);
    maxlen = std::max(maxlen, digits[t].len);
  }
  Point acc = Point::infinity();
  for (unsigned i = maxlen; i-- > 0;) {
    acc = acc.dbl();
    for (std::size_t t = 0; t < n; ++t) {
      if (i >= digits[t].len) continue;
      const int d = digits[t].d[i];
      if (d > 0)
        acc = acc.add_mixed(table[t * tsize + static_cast<std::size_t>(d - 1) / 2]);
      else if (d < 0)
        acc = acc.add_mixed(
            table[t * tsize + static_cast<std::size_t>(-d - 1) / 2].negated());
    }
  }
  return acc;
}

template <class Traits>
CurvePoint<Traits> msm_wnaf(std::span<const CurvePoint<Traits>> points,
                            std::span<const U256> scalars, unsigned w) {
  using Point = CurvePoint<Traits>;
  if (points.size() != scalars.size())
    throw Error("msm_wnaf: points/scalars size mismatch");
  const std::size_t n = points.size();
  if (n == 0) return Point::infinity();
  const std::size_t tsize = std::size_t{1} << (w - 2);

  std::vector<Point> jtable;
  jtable.reserve(n * tsize);
  for (std::size_t t = 0; t < n; ++t) {
    const Point& p = points[t];
    const Point p2 = p.dbl();
    jtable.push_back(p);  // odd multiples 1P, 3P, ..., (2^(w-1)-1)P
    for (std::size_t i = 1; i < tsize; ++i)
      jtable.push_back(jtable.back() + p2);
  }
  std::vector<AffinePoint<Traits>> table(jtable.size());
  batch_normalize<Traits>(jtable, table);
  return msm_wnaf_precomp<Traits>(table, scalars, w);
}

template <class Traits>
CurvePoint<Traits> CurvePoint<Traits>::mul_wnaf(const U256& k) const {
  const CurvePoint pts[1] = {*this};
  const U256 ks[1] = {k};
  return msm_wnaf(std::span<const CurvePoint>(pts, 1),
                  std::span<const U256>(ks, 1),
                  msm_window_width(k.bit_length(), 1));
}

/// Multi-scalar multiplication: sum_i points[i] * scalars[i] through the
/// wNAF core with one shared doubling chain for all terms and a window
/// width tuned to the scalar width. Same group element as summing the
/// individual multiplications (verification transcripts stay
/// byte-identical). Endomorphism-split variants live in bn254.hpp
/// (curve::g1_msm / curve::g2_msm).
template <class Traits, std::size_t N>
CurvePoint<Traits> multi_scalar_mul(
    const std::array<CurvePoint<Traits>, N>& points,
    const std::array<U256, N>& scalars) {
  obs::note_msm(N);
  unsigned nbits = 0;
  for (const U256& s : scalars) nbits = std::max(nbits, s.bit_length());
  return msm_wnaf(std::span<const CurvePoint<Traits>>(points),
                  std::span<const U256>(scalars),
                  msm_window_width(nbits, N));
}

/// Runtime-sized variant for term counts only known at call time (the
/// randomized batch-verification folds, where one sum spans four points
/// per signature).
template <class Traits>
CurvePoint<Traits> multi_scalar_mul(std::span<const CurvePoint<Traits>> points,
                                    std::span<const U256> scalars) {
  if (points.size() != scalars.size())
    throw Error("multi_scalar_mul: points/scalars size mismatch");
  if (points.empty()) return CurvePoint<Traits>::infinity();
  obs::note_msm(points.size());
  unsigned nbits = 0;
  for (const U256& s : scalars) nbits = std::max(nbits, s.bit_length());
  return msm_wnaf(points, scalars, msm_window_width(nbits, points.size()));
}

}  // namespace peace::curve
