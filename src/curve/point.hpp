// Short-Weierstrass curve points (y^2 = x^3 + b, a = 0) in Jacobian
// coordinates, generic over the coordinate field. Instantiated as
// G1 = E(Fp) and G2 = E'(Fp2) (the sextic twist) in g1.hpp / g2.hpp.
#pragma once

#include <algorithm>
#include <array>
#include <span>
#include <vector>

#include "math/fp12.hpp"
#include "obs/trace.hpp"

namespace peace::curve {

using math::Fr;
using math::U256;

template <class Traits>
struct CurvePoint {
  using F = typename Traits::Field;

  // Jacobian (X, Y, Z): affine (X/Z^2, Y/Z^3); Z == 0 encodes infinity.
  F x, y, z;

  CurvePoint() : x(F::zero()), y(F::zero()), z(F::zero()) {}  // infinity
  CurvePoint(const F& ax, const F& ay)
      : x(ax), y(ay), z(Traits::field_one()) {}

  static CurvePoint infinity() { return CurvePoint(); }
  bool is_infinity() const { return z.is_zero(); }

  bool is_on_curve() const {
    if (is_infinity()) return true;
    // Y^2 = X^3 + b Z^6.
    const F z2 = z.square();
    const F z6 = z2.square() * z2;
    return y.square() == x.square() * x + Traits::b() * z6;
  }

  /// Affine coordinates; throws on infinity.
  void to_affine(F& ax, F& ay) const {
    if (is_infinity()) throw Error("CurvePoint: affine of infinity");
    const F zinv = z.inverse();
    const F zinv2 = zinv.square();
    ax = x * zinv2;
    ay = y * zinv2 * zinv;
  }

  /// Normalizes Z to one (no-op for infinity).
  CurvePoint normalized() const {
    if (is_infinity()) return *this;
    F ax, ay;
    to_affine(ax, ay);
    return CurvePoint(ax, ay);
  }

  CurvePoint dbl() const {
    if (is_infinity()) return *this;
    if (y.is_zero()) return infinity();
    const F a = x.square();
    const F b = y.square();
    const F c = b.square();
    F d = (x + b).square() - a - c;
    d = d + d;
    const F e = a + a + a;
    const F f = e.square();
    CurvePoint out;
    out.x = f - (d + d);
    F c8 = c + c;
    c8 = c8 + c8;
    c8 = c8 + c8;
    out.y = e * (d - out.x) - c8;
    out.z = (y * z) + (y * z);
    return out;
  }

  CurvePoint operator+(const CurvePoint& o) const {
    if (is_infinity()) return o;
    if (o.is_infinity()) return *this;
    const F z1z1 = z.square();
    const F z2z2 = o.z.square();
    const F u1 = x * z2z2;
    const F u2 = o.x * z1z1;
    const F s1 = y * z2z2 * o.z;
    const F s2 = o.y * z1z1 * z;
    if (u1 == u2) {
      if (s1 == s2) return dbl();
      return infinity();
    }
    const F h = u2 - u1;
    const F i = (h + h).square();
    const F j = h * i;
    F r = s2 - s1;
    r = r + r;
    const F v = u1 * i;
    CurvePoint out;
    out.x = r.square() - j - (v + v);
    const F s1j = s1 * j;
    out.y = r * (v - out.x) - (s1j + s1j);
    out.z = ((z + o.z).square() - z1z1 - z2z2) * h;
    return out;
  }

  CurvePoint operator-() const {
    CurvePoint out = *this;
    out.y = -out.y;
    return out;
  }
  CurvePoint operator-(const CurvePoint& o) const { return *this + (-o); }

  /// Scalar multiplication. Uses a fixed 4-bit window for full-width
  /// scalars (the common case: uniform elements of Z_r); short scalars
  /// fall back to plain double-and-add where the table cost would dominate.
  CurvePoint operator*(const U256& k) const {
    if (k.bit_length() <= 64) return mul_double_and_add(k);
    return mul_windowed(k);
  }
  CurvePoint operator*(const Fr& k) const { return *this * k.to_u256(); }

  /// Textbook MSB-first double-and-add; kept as the oracle the windowed
  /// path is tested against.
  CurvePoint mul_double_and_add(const U256& k) const {
    CurvePoint acc = infinity();
    const unsigned n = k.bit_length();
    for (int i = static_cast<int>(n) - 1; i >= 0; --i) {
      acc = acc.dbl();
      if (k.bit(static_cast<unsigned>(i))) acc = acc + *this;
    }
    return acc;
  }

  /// Fixed-window (w = 4) multiplication: one 15-entry table, then four
  /// doublings plus at most one addition per nibble.
  CurvePoint mul_windowed(const U256& k) const {
    CurvePoint table[16];
    table[0] = infinity();
    table[1] = *this;
    for (int i = 2; i < 16; ++i) table[i] = table[i - 1] + *this;

    CurvePoint acc = infinity();
    const unsigned nibbles = (k.bit_length() + 3) / 4;
    for (int i = static_cast<int>(nibbles) - 1; i >= 0; --i) {
      acc = acc.dbl().dbl().dbl().dbl();
      const unsigned shift = static_cast<unsigned>(i) * 4;
      const unsigned nibble =
          static_cast<unsigned>(k.limb[shift / 64] >> (shift % 64)) & 0xf;
      if (nibble != 0) acc = acc + table[nibble];
    }
    return acc;
  }

  /// Projective-independent equality.
  bool equals(const CurvePoint& o) const {
    if (is_infinity() || o.is_infinity())
      return is_infinity() == o.is_infinity();
    const F z1z1 = z.square();
    const F z2z2 = o.z.square();
    if (!(x * z2z2 == o.x * z1z1)) return false;
    return y * z2z2 * o.z == o.y * z1z1 * z;
  }
  bool operator==(const CurvePoint& o) const { return equals(o); }
};

/// Interleaved multi-scalar multiplication: sum_i points[i] * scalars[i]
/// via Shamir's trick with the same 4-bit windows as mul_windowed, but one
/// shared doubling chain for all terms. Returns exactly the group element
/// the individual multiplications would sum to (verification transcripts
/// stay byte-identical); cost is one exponentiation's doublings plus each
/// term's window additions.
template <class Traits, std::size_t N>
CurvePoint<Traits> multi_scalar_mul(
    const std::array<CurvePoint<Traits>, N>& points,
    const std::array<U256, N>& scalars) {
  using Point = CurvePoint<Traits>;
  obs::note_msm(N);
  std::array<std::array<Point, 16>, N> table;
  unsigned nbits = 0;
  for (std::size_t t = 0; t < N; ++t) {
    table[t][0] = Point::infinity();
    table[t][1] = points[t];
    for (int i = 2; i < 16; ++i) table[t][i] = table[t][i - 1] + points[t];
    nbits = std::max(nbits, scalars[t].bit_length());
  }
  Point acc = Point::infinity();
  const unsigned nibbles = (nbits + 3) / 4;
  for (int i = static_cast<int>(nibbles) - 1; i >= 0; --i) {
    acc = acc.dbl().dbl().dbl().dbl();
    const unsigned shift = static_cast<unsigned>(i) * 4;
    for (std::size_t t = 0; t < N; ++t) {
      const unsigned nibble =
          static_cast<unsigned>(scalars[t].limb[shift / 64] >> (shift % 64)) &
          0xf;
      if (nibble != 0) acc = acc + table[t][nibble];
    }
  }
  return acc;
}

/// Runtime-sized variant of multi_scalar_mul for term counts only known at
/// call time (the randomized batch-verification folds, where one sum spans
/// four points per signature). Same windows, same shared doubling chain,
/// same group element as summing the individual multiplications.
template <class Traits>
CurvePoint<Traits> multi_scalar_mul(
    std::span<const CurvePoint<Traits>> points,
    std::span<const U256> scalars) {
  using Point = CurvePoint<Traits>;
  if (points.size() != scalars.size())
    throw Error("multi_scalar_mul: points/scalars size mismatch");
  const std::size_t n = points.size();
  if (n == 0) return Point::infinity();
  obs::note_msm(n);
  std::vector<std::array<Point, 16>> table(n);
  unsigned nbits = 0;
  for (std::size_t t = 0; t < n; ++t) {
    table[t][0] = Point::infinity();
    table[t][1] = points[t];
    for (int i = 2; i < 16; ++i) table[t][i] = table[t][i - 1] + points[t];
    nbits = std::max(nbits, scalars[t].bit_length());
  }
  Point acc = Point::infinity();
  const unsigned nibbles = (nbits + 3) / 4;
  for (int i = static_cast<int>(nibbles) - 1; i >= 0; --i) {
    acc = acc.dbl().dbl().dbl().dbl();
    const unsigned shift = static_cast<unsigned>(i) * 4;
    for (std::size_t t = 0; t < n; ++t) {
      const unsigned nibble =
          static_cast<unsigned>(scalars[t].limb[shift / 64] >> (shift % 64)) &
          0xf;
      if (nibble != 0) acc = acc + table[t][nibble];
    }
  }
  return acc;
}

}  // namespace peace::curve
