// The bilinear map e : G1 x G2 -> GT. Two independent implementations:
//
//  * pairing()           — optimal ate (Miller loop over 6u+2 on the twist
//                          with sparse line evaluation, then final
//                          exponentiation). Production path.
//  * pairing_reference() — textbook Tate pairing (Miller loop over r on the
//                          untwisted curve). Used by tests to cross-check
//                          the ate implementation; an implementation bug
//                          would have to hit both very different code paths
//                          identically to go unnoticed.
//
// Both are non-degenerate and bilinear on the full G1 x G2.
#pragma once

#include <span>
#include <utility>
#include <vector>

#include "curve/bn254.hpp"

namespace peace::curve {

/// Optimal ate pairing, e(P, Q). Returns GT::one() if either input is
/// infinity.
GT pairing(const G1& p, const G2& q);

/// Miller loop only (no final exponentiation); for product-of-pairings.
Fp12 miller_loop(const G1& p, const G2& q);

/// A G2 point with its ate Miller-loop line coefficients precomputed.
///
/// The twist-point arithmetic of the Miller loop (one Fp2 inversion plus a
/// handful of Fp2 multiplications per doubling/addition step) depends only
/// on Q, never on P. For fixed verification arguments — the BN generator
/// g2, the group public key w, and the per-epoch base v_hat — preparing Q
/// once amortises that work across every subsequent pairing: evaluation at
/// a fresh P costs two Fp multiplications per stored line instead of a full
/// curve step. This is the router-side hot-path lever of Sec. V.C.
class G2Prepared {
 public:
  /// One stored line: the twist slope and the P-independent constant
  /// lambda*xt - yt. Evaluated at P = (xp, yp) as
  ///   yp - (lambda*xp) w + (lambda*xt - yt) w^3.
  struct Line {
    Fp2 lambda;
    Fp2 c;
  };

  /// Prepares nothing (acts as the point at infinity).
  G2Prepared() = default;
  explicit G2Prepared(const G2& q);

  bool is_infinity() const { return lines_.empty(); }
  const std::vector<Line>& lines() const { return lines_; }

 private:
  std::vector<Line> lines_;
};

/// Miller loop against precomputed line coefficients. Bit-identical to
/// miller_loop(p, q) for q the point `prepared` was built from.
Fp12 miller_loop(const G1& p, const G2Prepared& prepared);

/// e(P, Q) with Q prepared; final exponentiation still paid per call.
GT pairing(const G1& p, const G2Prepared& prepared);

/// prod_i e(p_i, *q_i) over prepared second arguments with a single shared
/// final exponentiation. Pointers let callers reuse long-lived prepared
/// points without copying their coefficient tables.
GT multi_pairing(std::span<const std::pair<G1, const G2Prepared*>> pairs);

/// Mixed-argument product: prod e(p, *q) over `prepared` times prod e(p, q)
/// over `unprepared`, fused into one Miller accumulator with a single final
/// exponentiation. The unprepared points run the twist arithmetic inline —
/// no line table is allocated — so a one-shot G2 argument (e.g. a
/// signature's T_hat) pairs against long-lived prepared bases without
/// paying a G2Prepared build per call.
GT multi_pairing(std::span<const std::pair<G1, const G2Prepared*>> prepared,
                 std::span<const std::pair<G1, G2>> unprepared);

/// Collects pairing terms across any number of call sites and evaluates the
/// whole product with ONE fused Miller accumulation and ONE final
/// exponentiation. This is the batched-accumulator entry point of the
/// randomized batch verifier: each verification equation contributes its
/// (G1, G2) terms incrementally, and finalize() pays the final
/// exponentiation once for the entire batch instead of once per signature.
///
/// Prepared arguments are held by pointer — the caller keeps them alive
/// until finalize() (they are long-lived key material on every call site).
/// finalize() is pure: it may be called repeatedly and terms may be added
/// between calls.
class MillerAccumulator {
 public:
  void add(const G1& p, const G2Prepared& q) { prepared_.push_back({p, &q}); }
  void add(const G1& p, const G2& q) { unprepared_.push_back({p, q}); }
  std::size_t size() const { return prepared_.size() + unprepared_.size(); }
  bool empty() const { return prepared_.empty() && unprepared_.empty(); }

  /// prod e(p, q) over every added term: fused Miller loops, single final
  /// exponentiation. Returns GT one for an empty accumulator.
  GT finalize() const;

 private:
  std::vector<std::pair<G1, const G2Prepared*>> prepared_;
  std::vector<std::pair<G1, G2>> unprepared_;
};

/// Membership test for the cyclotomic subgroup G_{Phi_12}(Fp) of Fp12*, the
/// order-Phi_12(p) = p^4 - p^2 + 1 subgroup every pairing output lives in:
/// x != 0 and x^(p^4) * x == x^(p^2), checked with four Frobenius maps and
/// one multiplication — no exponentiation. Wire-deserialized GT elements
/// must pass this before being used in batched equations: cyclotomic
/// members are unitary (so cyclotomic squaring applies), and the subgroup's
/// cofactor structure is what bounds forgery-cancellation in the randomized
/// batch check (docs/CRYPTO.md).
bool gt_in_cyclotomic_subgroup(const Fp12& x);

/// x^e for x in the cyclotomic subgroup (NOT valid for general Fp12 — the
/// caller guarantees membership, e.g. via gt_in_cyclotomic_subgroup or
/// because x is a pairing output). Uses Granger-Scott cyclotomic squaring.
GT gt_pow_unitary(const GT& x, std::uint64_t e);

/// prod_i xs[i]^{es[i]} over cyclotomic-subgroup elements with one shared
/// squaring chain: 64 cyclotomic squarings total plus one multiplication
/// per set exponent bit, instead of a full chain per element. The batch
/// verifier uses this for the randomizer powers of the carried R2 values.
GT gt_multi_pow_unitary(std::span<const GT> xs,
                        std::span<const std::uint64_t> es);

/// f^((p^12 - 1) / r), via the BN hard-part addition chain (its exponent
/// decomposition is verified numerically at first use; on mismatch this
/// silently falls back to generic square-and-multiply).
GT final_exponentiation(const Fp12& f);

/// Easy part of the final exponentiation, f^((p^6 - 1)(p^2 + 1)), for a
/// whole batch of unrelated Miller-loop products at once. The per-element
/// Fp12 inversion — the only non-linear cost of the easy part — is batched
/// Montgomery-style (prefix products, ONE inversion, suffix walk-back), so
/// an n-element batch pays exactly 1 Fp12 inversion plus O(n)
/// multiplications instead of n inversions. Element i of the result equals
/// the easy part of fs[i] exactly (same field operations modulo
/// associativity of exact modular arithmetic — bit-identical output).
/// Outputs are unitary; feed them to final_exp_hard. A zero element (never
/// produced by a Miller loop) throws Error.
std::vector<Fp12> final_exp_easy_batch(std::span<const Fp12> fs);

/// Hard part of the final exponentiation, t^((p^4 - p^2 + 1) / r), for a
/// unitary `t` (an output of the easy part / final_exp_easy_batch). Same
/// addition chain + generic fallback as final_exponentiation, which is
/// exactly final_exp_hard composed with the (inversion-counting) easy part.
GT final_exp_hard(const Fp12& t);

/// The generic square-and-multiply path, kept as an independent oracle for
/// tests and the ablation bench.
GT final_exponentiation_generic(const Fp12& f);

/// prod_i e(p_i, q_i) with a single shared final exponentiation.
GT multi_pairing(const std::vector<std::pair<G1, G2>>& pairs);

/// Reference Tate pairing (independent algorithm; slow).
GT pairing_reference(const G1& p, const G2& q);

/// e(g1_gen, g2_gen), cached.
const GT& gt_generator();

/// Frobenius x -> x^p on Fp12 using the global BN254 coefficients.
Fp12 frobenius12(const Fp12& x);

/// Untwist a G2 point into E(Fp12) affine coordinates (for tests and the
/// reference pairing).
void untwist(const G2& q, Fp12& x_out, Fp12& y_out);

/// Total pairings computed since process start (instrumentation for the
/// operation-count experiments E2/E3).
std::uint64_t pairing_op_count();

/// Total G2Prepared line tables built since process start. Tests use the
/// delta across a call to assert that hot paths reuse cached prepared bases
/// instead of constructing one-shot tables per message or per token.
std::uint64_t g2_prepared_count();

/// Total Fp12 inversions paid by final-exponentiation easy parts since
/// process start (one per final_exponentiation call, one per
/// final_exp_easy_batch call regardless of batch size). Tests use the delta
/// across an n-token URL scan to assert the batched easy part shares a
/// single inversion.
std::uint64_t fp12_inverse_count();

}  // namespace peace::curve
