// The bilinear map e : G1 x G2 -> GT. Two independent implementations:
//
//  * pairing()           — optimal ate (Miller loop over 6u+2 on the twist
//                          with sparse line evaluation, then final
//                          exponentiation). Production path.
//  * pairing_reference() — textbook Tate pairing (Miller loop over r on the
//                          untwisted curve). Used by tests to cross-check
//                          the ate implementation; an implementation bug
//                          would have to hit both very different code paths
//                          identically to go unnoticed.
//
// Both are non-degenerate and bilinear on the full G1 x G2.
#pragma once

#include <utility>
#include <vector>

#include "curve/bn254.hpp"

namespace peace::curve {

/// Optimal ate pairing, e(P, Q). Returns GT::one() if either input is
/// infinity.
GT pairing(const G1& p, const G2& q);

/// Miller loop only (no final exponentiation); for product-of-pairings.
Fp12 miller_loop(const G1& p, const G2& q);

/// f^((p^12 - 1) / r), via the BN hard-part addition chain (its exponent
/// decomposition is verified numerically at first use; on mismatch this
/// silently falls back to generic square-and-multiply).
GT final_exponentiation(const Fp12& f);

/// The generic square-and-multiply path, kept as an independent oracle for
/// tests and the ablation bench.
GT final_exponentiation_generic(const Fp12& f);

/// prod_i e(p_i, q_i) with a single shared final exponentiation.
GT multi_pairing(const std::vector<std::pair<G1, G2>>& pairs);

/// Reference Tate pairing (independent algorithm; slow).
GT pairing_reference(const G1& p, const G2& q);

/// e(g1_gen, g2_gen), cached.
const GT& gt_generator();

/// Frobenius x -> x^p on Fp12 using the global BN254 coefficients.
Fp12 frobenius12(const Fp12& x);

/// Untwist a G2 point into E(Fp12) affine coordinates (for tests and the
/// reference pairing).
void untwist(const G2& q, Fp12& x_out, Fp12& y_out);

/// Total pairings computed since process start (instrumentation for the
/// operation-count experiments E2/E3).
std::uint64_t pairing_op_count();

}  // namespace peace::curve
