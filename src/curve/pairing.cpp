#include "curve/pairing.hpp"

#include <algorithm>
#include <bit>

#include "obs/trace.hpp"

namespace peace::curve {

using math::Fp;
using math::Fp12;
using math::Fp2;
using math::Fp6;
using math::U256;

namespace {

/// A pairing line in sparse form a + b*w + c*w^3 (w-power basis); consumed
/// via Fp12::mul_by_line.
struct LineCoeffs {
  Fp2 a, b, c;
};

/// The P-independent half of a pairing line: twist slope lambda and the
/// constant lambda*xt - yt. With the D-type untwist (x, y) -> (w^2 x, w^3 y)
/// the line evaluates at P = (xp, yp) as
///   yp - lambda*xp*w + (lambda*xt - yt)*w^3,
/// so evaluation needs only two Fp multiplications per line.
using PreparedLine = G2Prepared::Line;

LineCoeffs eval_line(const PreparedLine& l, const Fp& xp, const Fp& yp) {
  return {Fp2(yp, Fp::zero()), -(l.lambda * xp), l.c};
}

struct AffineG2 {
  Fp2 x, y;
};

AffineG2 to_affine2(const G2& q) {
  Fp2 x, y;
  q.to_affine(x, y);
  return {x, y};
}

/// Doubling step: returns the line and replaces t with 2t (affine).
PreparedLine double_step(AffineG2& t) {
  const Fp2 three_x2 = t.x.square() * Fp::from_u64(3);
  const Fp2 lambda = three_x2 * t.y.dbl().inverse();
  const PreparedLine l{lambda, lambda * t.x - t.y};
  const Fp2 x3 = lambda.square() - t.x.dbl();
  const Fp2 y3 = lambda * (t.x - x3) - t.y;
  t = {x3, y3};
  return l;
}

/// Addition step: returns the line through t and q and replaces t with t+q.
PreparedLine add_step(AffineG2& t, const AffineG2& q) {
  const Fp2 lambda = (q.y - t.y) * (q.x - t.x).inverse();
  const PreparedLine l{lambda, lambda * t.x - t.y};
  const Fp2 x3 = lambda.square() - t.x - q.x;
  const Fp2 y3 = lambda * (t.x - x3) - t.y;
  t = {x3, y3};
  return l;
}

/// Frobenius endomorphism on twist coordinates:
///   pi(x, y) = (conj(x) * xi^{(p-1)/3}, conj(y) * xi^{(p-1)/2}).
AffineG2 frobenius_twist(const AffineG2& q) {
  const auto& bn = Bn254::get();
  return {q.x.conjugate() * bn.frob_gamma[2],
          q.y.conjugate() * bn.frob_gamma[3]};
}

/// pi^2 on twist coordinates: scales by powers of eta = xi^{(p^2-1)/6} in Fp.
AffineG2 frobenius2_twist(const AffineG2& q) {
  const auto& bn = Bn254::get();
  const Fp2 eta2 = bn.frob2_eta.square();
  const Fp2 eta3 = eta2 * bn.frob2_eta;
  return {q.x * eta2, q.y * eta3};
}

/// Runs the shared ate step schedule (doublings, conditional additions, the
/// two Frobenius correction lines), handing every produced line to `sink`.
/// Both the direct Miller loop and G2Prepared consume exactly this sequence,
/// so the two paths cannot drift apart.
template <class Sink>
void ate_line_schedule(const AffineG2& qa, Sink&& sink) {
  const auto& bn = Bn254::get();
  AffineG2 t = qa;
  const unsigned nbits = bn.ate_loop.bit_length();
  for (int i = static_cast<int>(nbits) - 2; i >= 0; --i) {
    sink(double_step(t), /*doubling=*/true);
    if (bn.ate_loop.bit(static_cast<unsigned>(i)))
      sink(add_step(t, qa), /*doubling=*/false);
  }
  const AffineG2 q1 = frobenius_twist(qa);
  AffineG2 q2 = frobenius2_twist(qa);
  q2.y = -q2.y;
  sink(add_step(t, q1), false);
  sink(add_step(t, q2), false);
}

/// Folds an already-produced line sequence into the Miller accumulator.
/// `doubling` squares the accumulator before absorbing the line — exactly
/// the shape of the direct loop.
void absorb_line(Fp12& f, const LineCoeffs& l, bool doubling) {
  if (doubling) f = f.square();
  f = f.mul_by_line(l.a, l.b, l.c);
}

/// Replays the step pattern of ate_line_schedule without any point
/// arithmetic: one doubling per loop bit, one addition per set bit, and the
/// two trailing Frobenius-correction additions. Consumers index into a
/// G2Prepared line table in this exact order.
template <class Step>
void ate_consume_schedule(Step&& step) {
  const auto& bn = Bn254::get();
  const unsigned nbits = bn.ate_loop.bit_length();
  for (int i = static_cast<int>(nbits) - 2; i >= 0; --i) {
    step(/*doubling=*/true);
    if (bn.ate_loop.bit(static_cast<unsigned>(i))) step(/*doubling=*/false);
  }
  step(false);
  step(false);
}

Fp12 pow_bigint(const Fp12& base, const math::BigInt& exp) {
  Fp12 acc = Fp12::one();
  for (std::size_t i = exp.bit_length(); i-- > 0;) {
    acc = acc.square();
    if (exp.bit(i)) acc *= base;
  }
  return acc;
}

/// f^u for the (64-bit) BN parameter u. Assumes f is unitary (guaranteed
/// after the easy part), so the Granger-Scott cyclotomic squaring applies —
/// the dominant cost of the hard part drops to a third of generic squaring —
/// and the inverse is a free conjugation, which makes the signed-digit
/// (NAF) ladder strictly cheaper than binary: the nonzero-digit density
/// drops from the bit weight of u (28) to its NAF weight, each negative
/// digit paying only a conjugate-multiply. Same exponent, same group, so
/// the result is the identical Fp12 element the binary ladder produced.
Fp12 exp_by_u(const Fp12& f) {
  const std::uint64_t u = Bn254::get().u;
  // Non-adjacent form of u, least significant digit first. u < 2^63, so
  // the +1 correction on a negative digit cannot overflow and at most 65
  // digits are produced.
  std::array<std::int8_t, 66> naf{};
  int n = 0;
  for (std::uint64_t x = u; x != 0; ++n) {
    if (x & 1) {
      const std::int8_t d = (x & 3) == 1 ? 1 : -1;
      naf[n] = d;
      x -= static_cast<std::uint64_t>(d);  // d == -1 adds 1
    }
    x >>= 1;
  }
  const Fp12 f_inv = f.unitary_inverse();
  Fp12 acc = Fp12::one();
  bool started = false;
  for (int i = n - 1; i >= 0; --i) {
    if (started) acc = acc.cyclotomic_square();
    if (naf[i] == 1) {
      acc *= f;
      started = true;
    } else if (naf[i] == -1) {
      acc *= f_inv;
      started = true;
    }
  }
  return acc;
}

/// The BN hard-part multi-addition chain (Scott-Benger-Charlemagne-Perez-
/// Kachisa 2009): with z = u, computes elt^((p^4 - p^2 + 1)/r) from three
/// z-exponentiations, three Frobenius applications, and 13 mult/squares,
/// via the decomposition
///   (p^4-p^2+1)/r = p^3 + (6z^2+1) p^2 - (36z^3+18z^2+12z-1) p
///                   - (36z^3+30z^2+18z+2)
///   = y0 * y1^2 * y2^6 * y3^12 * y4^18 * y5^30 * y6^36
/// with y0 = f^(p+p^2+p^3), y1 = f^-1, y2 = f^(z^2 p^2), y3 = f^(-z p),
/// y4 = f^(-z - z^2 p), y5 = f^(-z^2), y6 = f^(-z^3 - z^3 p).
/// The decomposition identity is verified numerically over BigInt by
/// hard_chain_is_valid() before this path is ever taken — on mismatch we
/// fall back to the generic square-and-multiply.
Fp12 hard_part_chain(const Fp12& f) {
  const Fp12 fz = exp_by_u(f);
  const Fp12 fz2 = exp_by_u(fz);
  const Fp12 fz3 = exp_by_u(fz2);
  const Fp12 fp = frobenius12(f);
  const Fp12 fp2 = frobenius12(fp);
  const Fp12 fp3 = frobenius12(fp2);

  const Fp12 y0 = fp * fp2 * fp3;
  const Fp12 y1 = f.unitary_inverse();
  const Fp12 y2 = frobenius12(frobenius12(fz2));
  const Fp12 y3 = frobenius12(fz).unitary_inverse();
  const Fp12 y4 = (fz * frobenius12(fz2)).unitary_inverse();
  const Fp12 y5 = fz2.unitary_inverse();
  const Fp12 y6 = (fz3 * frobenius12(fz3)).unitary_inverse();

  // Vectorial addition chain for y0 y1^2 y2^6 y3^12 y4^18 y5^30 y6^36.
  // Every intermediate is a product of unitary elements, so the cyclotomic
  // squaring applies throughout.
  Fp12 t0 = y6.cyclotomic_square();
  t0 *= y4;
  t0 *= y5;
  Fp12 t1 = y3 * y5;
  t1 *= t0;
  t0 *= y2;
  t1 = t1.cyclotomic_square();
  t1 *= t0;
  t1 = t1.cyclotomic_square();
  t0 = t1 * y1;
  t1 *= y0;
  t0 = t0.cyclotomic_square();
  return t0 * t1;
}

/// Checks the lambda decomposition against (p^4 - p^2 + 1)/r exactly, once.
bool hard_chain_is_valid() {
  static const bool valid = [] {
    using math::BigInt;
    const auto& bn = Bn254::get();
    const BigInt z(bn.u);
    const BigInt z2 = z * z;
    const BigInt z3 = z2 * z;
    const BigInt p = BigInt::from_u256(bn.p);
    const BigInt p2 = p * p;
    const BigInt pos = p2 * p + (z2 * BigInt(6) + BigInt(1)) * p2;
    const BigInt neg =
        (z3 * BigInt(36) + z2 * BigInt(18) + z * BigInt(12) - BigInt(1)) * p +
        (z3 * BigInt(36) + z2 * BigInt(30) + z * BigInt(18) + BigInt(2));
    if (BigInt::cmp(pos, neg) < 0) return false;
    return pos - neg == bn.final_exp_hard;
  }();
  return valid;
}

}  // namespace

Fp12 frobenius12(const Fp12& x) {
  const auto& bn = Bn254::get();
  return x.frobenius(std::span<const Fp2, 6>(bn.frob_gamma));
}

void untwist(const G2& q, Fp12& x_out, Fp12& y_out) {
  Fp2 x, y;
  q.to_affine(x, y);
  // (x, y) -> (x w^2, y w^3); w^2 = v so x lands in the v-coefficient of the
  // first Fp6 half, y w^3 = (y v) w in the v-coefficient of the second half.
  x_out = Fp12(Fp6(Fp2::zero(), x, Fp2::zero()), Fp6::zero());
  y_out = Fp12(Fp6::zero(), Fp6(Fp2::zero(), y, Fp2::zero()));
}

Fp12 miller_loop(const G1& p, const G2& q) {
  obs::note_miller_loop();
  if (p.is_infinity() || q.is_infinity()) return Fp12::one();

  Fp xp, yp;
  p.to_affine(xp, yp);

  Fp12 f = Fp12::one();
  ate_line_schedule(to_affine2(q), [&](const PreparedLine& l, bool doubling) {
    absorb_line(f, eval_line(l, xp, yp), doubling);
  });
  return f;
}

G2Prepared::G2Prepared(const G2& q) {
  if (q.is_infinity()) return;
  obs::note_g2_prepared();
  // 64-bit u: the ate loop has ~65 doublings plus the additions its set bits
  // trigger, plus the two correction lines.
  lines_.reserve(2 * 64 + 8);
  ate_line_schedule(to_affine2(q),
                    [&](const PreparedLine& l, bool) { lines_.push_back(l); });
}

Fp12 miller_loop(const G1& p, const G2Prepared& prepared) {
  obs::note_miller_loop();
  if (p.is_infinity() || prepared.is_infinity()) return Fp12::one();

  Fp xp, yp;
  p.to_affine(xp, yp);

  Fp12 f = Fp12::one();
  std::size_t next = 0;
  const auto& lines = prepared.lines();
  ate_consume_schedule([&](bool doubling) {
    absorb_line(f, eval_line(lines[next++], xp, yp), doubling);
  });
  return f;
}

namespace {

/// Easy part: f^((p^6 - 1)(p^2 + 1)). The result is unitary, which the
/// hard-part chain exploits (inverse == conjugate). Every caller pays one
/// Fp12 inversion here — the op the batched variant shares across elements.
Fp12 easy_part(const Fp12& f) {
  obs::note_fp12_inverse();
  Fp12 t = f.conjugate() * f.inverse();  // f^(p^6 - 1)
  return frobenius12(frobenius12(t)) * t;  // ^(p^2 + 1)
}

/// Hard part: t^((p^4 - p^2 + 1) / r) for unitary t.
GT hard_part(const Fp12& t) {
  if (hard_chain_is_valid()) return hard_part_chain(t);
  return pow_bigint(t, Bn254::get().final_exp_hard);
}

}  // namespace

GT final_exponentiation(const Fp12& f) {
  obs::note_final_exp();
  return hard_part(easy_part(f));
}

std::vector<Fp12> final_exp_easy_batch(std::span<const Fp12> fs) {
  std::vector<Fp12> out;
  if (fs.empty()) return out;
  // Montgomery batch inversion: prefix[i] = fs[0] * ... * fs[i]; invert the
  // full product once; walking back, inv(fs[i]) = prefix[i-1] * inv_suffix.
  // Field inverses are unique, so each recovered inverse is the exact same
  // element fs[i].inverse() would produce — downstream verdicts are
  // bit-identical to the unbatched easy part.
  std::vector<Fp12> prefix(fs.size());
  prefix[0] = fs[0];
  for (std::size_t i = 1; i < fs.size(); ++i) prefix[i] = prefix[i - 1] * fs[i];
  if (prefix.back().is_zero())
    throw Error("final_exp_easy_batch: zero element has no inverse");
  obs::note_fp12_inverse();
  Fp12 suffix_inv = prefix.back().inverse();
  std::vector<Fp12> inv(fs.size());
  for (std::size_t i = fs.size() - 1; i > 0; --i) {
    inv[i] = suffix_inv * prefix[i - 1];
    suffix_inv *= fs[i];
  }
  inv[0] = suffix_inv;
  out.resize(fs.size());
  for (std::size_t i = 0; i < fs.size(); ++i) {
    Fp12 t = fs[i].conjugate() * inv[i];
    out[i] = frobenius12(frobenius12(t)) * t;
  }
  return out;
}

GT final_exp_hard(const Fp12& t) {
  obs::note_final_exp();
  return hard_part(t);
}

GT final_exponentiation_generic(const Fp12& f) {
  obs::note_final_exp();
  obs::note_fp12_inverse();
  const auto& bn = Bn254::get();
  Fp12 t = f.conjugate() * f.inverse();
  t = frobenius12(frobenius12(t)) * t;
  return pow_bigint(t, bn.final_exp_hard);
}

GT pairing(const G1& p, const G2& q) {
  obs::note_pairing();
  return final_exponentiation(miller_loop(p, q));
}

GT pairing(const G1& p, const G2Prepared& prepared) {
  obs::note_pairing();
  return final_exponentiation(miller_loop(p, prepared));
}

GT multi_pairing(const std::vector<std::pair<G1, G2>>& pairs) {
  Fp12 f = Fp12::one();
  for (const auto& [p, q] : pairs) {
    obs::note_pairing();
    f *= miller_loop(p, q);
  }
  return final_exponentiation(f);
}

GT multi_pairing(std::span<const std::pair<G1, const G2Prepared*>> pairs) {
  return multi_pairing(pairs, std::span<const std::pair<G1, G2>>{});
}

GT multi_pairing(std::span<const std::pair<G1, const G2Prepared*>> prepared,
                 std::span<const std::pair<G1, G2>> unprepared) {
  // Fused Miller loops: every pair follows the same Q-independent ate step
  // schedule, so one accumulator squares once per doubling bit and absorbs
  // each pair's line. Exactly equal to the product of individual loops —
  // (f_a f_b)^2 = f_a^2 f_b^2 holds per step by induction — while paying
  // the ~|ate_loop| Fp12 squarings once instead of once per pair. Prepared
  // pairs consume the next stored line; unprepared pairs produce it with a
  // live curve step, allocating nothing. The table order matches because
  // G2Prepared records exactly ate_line_schedule's sequence.
  struct ActiveP {
    Fp xp, yp;
    const std::vector<PreparedLine>* lines;
  };
  struct ActiveU {
    Fp xp, yp;
    AffineG2 q;  // original point, re-added on set loop bits
    AffineG2 t;  // running point
  };
  std::vector<ActiveP> ap;
  ap.reserve(prepared.size());
  std::vector<G1> g1s;
  g1s.reserve(prepared.size() + unprepared.size());
  for (const auto& [p, q] : prepared) {
    obs::note_pairing();
    obs::note_miller_loop();
    if (p.is_infinity() || q->is_infinity()) continue;
    ActiveP a;
    a.lines = &q->lines();
    ap.push_back(a);
    g1s.push_back(p);
  }
  std::vector<ActiveU> au;
  au.reserve(unprepared.size());
  for (const auto& [p, q] : unprepared) {
    obs::note_pairing();
    obs::note_miller_loop();
    if (p.is_infinity() || q.is_infinity()) continue;
    ActiveU a;
    a.q = to_affine2(q);
    a.t = a.q;
    au.push_back(a);
    g1s.push_back(p);
  }
  // One batched normalization for every finite G1 input — a single Fp
  // inversion replaces the per-pair to_affine inversions (docs/CRYPTO.md
  // §6.4; curve.field_inversions counts the difference). The G2 sides keep
  // their own cost profile: prepared pairs did theirs at G2Prepared build,
  // unprepared pairs pay per-step affine inversions by design.
  std::vector<AffinePoint<G1Traits>> g1_aff(g1s.size());
  batch_normalize<G1Traits>(g1s, g1_aff);
  for (std::size_t i = 0; i < ap.size(); ++i) {
    ap[i].xp = g1_aff[i].x;
    ap[i].yp = g1_aff[i].y;
  }
  for (std::size_t i = 0; i < au.size(); ++i) {
    au[i].xp = g1_aff[ap.size() + i].x;
    au[i].yp = g1_aff[ap.size() + i].y;
  }

  Fp12 f = Fp12::one();
  if (ap.empty() && au.empty()) return final_exponentiation(f);

  std::size_t next = 0;
  const auto step_all = [&](bool doubling, auto&& unprep_line) {
    if (doubling) f = f.square();
    for (const ActiveP& a : ap) {
      const LineCoeffs l = eval_line((*a.lines)[next], a.xp, a.yp);
      f = f.mul_by_line(l.a, l.b, l.c);
    }
    for (ActiveU& a : au) {
      const LineCoeffs l = eval_line(unprep_line(a), a.xp, a.yp);
      f = f.mul_by_line(l.a, l.b, l.c);
    }
    ++next;
  };
  const auto& bn = Bn254::get();
  const unsigned nbits = bn.ate_loop.bit_length();
  for (int i = static_cast<int>(nbits) - 2; i >= 0; --i) {
    step_all(true, [](ActiveU& a) { return double_step(a.t); });
    if (bn.ate_loop.bit(static_cast<unsigned>(i)))
      step_all(false, [](ActiveU& a) { return add_step(a.t, a.q); });
  }
  step_all(false,
           [](ActiveU& a) { return add_step(a.t, frobenius_twist(a.q)); });
  step_all(false, [](ActiveU& a) {
    AffineG2 q2 = frobenius2_twist(a.q);
    q2.y = -q2.y;
    return add_step(a.t, q2);
  });
  return final_exponentiation(f);
}

GT MillerAccumulator::finalize() const {
  return multi_pairing(prepared_, unprepared_);
}

bool gt_in_cyclotomic_subgroup(const Fp12& x) {
  if (x.is_zero()) return false;
  // x^Phi_12(p) == 1  <=>  x^(p^4) * x == x^(p^2). Frobenius is
  // coefficient-wise conjugation and scaling, so the whole test costs four
  // Frobenius maps and one Fp12 multiplication.
  const Fp12 x_p2 = frobenius12(frobenius12(x));
  const Fp12 x_p4 = frobenius12(frobenius12(x_p2));
  return x_p4 * x == x_p2;
}

GT gt_pow_unitary(const GT& x, std::uint64_t e) {
  obs::note_gt_pow();
  Fp12 acc = Fp12::one();
  bool started = false;
  for (int i = 63; i >= 0; --i) {
    if (started) acc = acc.cyclotomic_square();
    if ((e >> i) & 1) {
      acc *= x;
      started = true;
    }
  }
  return acc;
}

GT gt_multi_pow_unitary(std::span<const GT> xs,
                        std::span<const std::uint64_t> es) {
  if (xs.size() != es.size())
    throw Error("gt_multi_pow: bases/exponents size mismatch");
  obs::note_gt_pow(xs.size());
  unsigned nbits = 0;
  for (const std::uint64_t e : es)
    nbits = std::max(nbits, static_cast<unsigned>(std::bit_width(e)));
  Fp12 acc = Fp12::one();
  for (int i = static_cast<int>(nbits) - 1; i >= 0; --i) {
    // Every factor is in the cyclotomic subgroup (caller contract), the
    // subgroup is closed under multiplication, and one() is a member — so
    // the accumulator stays unitary and the cheap squaring stays valid.
    acc = acc.cyclotomic_square();
    for (std::size_t j = 0; j < xs.size(); ++j) {
      if ((es[j] >> i) & 1) acc *= xs[j];
    }
  }
  return acc;
}

GT pairing_reference(const G1& p, const G2& q) {
  if (p.is_infinity() || q.is_infinity()) return Fp12::one();
  const auto& bn = Bn254::get();

  Fp12 xq, yq;
  untwist(q, xq, yq);

  Fp xp, yp;
  p.to_affine(xp, yp);
  auto embed = [](const Fp& a) {
    return Fp12(Fp6(Fp2(a, Fp::zero()), Fp2::zero(), Fp2::zero()),
                Fp6::zero());
  };

  // Affine coordinates of the running point T over Fp.
  Fp xt = xp, yt = yp;
  bool t_infinity = false;
  Fp12 f = Fp12::one();

  const unsigned nbits = bn.r.bit_length();
  for (int i = static_cast<int>(nbits) - 2; i >= 0; --i) {
    f = f.square();
    if (!t_infinity) {
      if (yt.is_zero()) {
        t_infinity = true;  // vertical tangent; line lies in a subfield
      } else {
        const Fp lambda =
            xt.square() * Fp::from_u64(3) * (yt + yt).inverse();
        // l = (yq - yt) - lambda (xq - xt)
        f *= (yq - embed(yt)) - embed(lambda) * (xq - embed(xt));
        const Fp x3 = lambda.square() - xt - xt;
        const Fp y3 = lambda * (xt - x3) - yt;
        xt = x3;
        yt = y3;
      }
    }
    if (bn.r.bit(static_cast<unsigned>(i)) && !t_infinity) {
      if (xt == xp && yt == -yp) {
        // T + P = infinity: vertical line, lies in Fp6, killed by the final
        // exponentiation — skip the factor.
        t_infinity = true;
      } else if (xt == xp && yt == yp) {
        throw Error("tate: unexpected doubling in addition step");
      } else {
        const Fp lambda = (yp - yt) * (xp - xt).inverse();
        f *= (yq - embed(yt)) - embed(lambda) * (xq - embed(xt));
        const Fp x3 = lambda.square() - xt - xp;
        const Fp y3 = lambda * (xt - x3) - yt;
        xt = x3;
        yt = y3;
      }
    }
  }
  return final_exponentiation(f);
}

const GT& gt_generator() {
  static const GT g = pairing(Bn254::get().g1_gen, Bn254::get().g2_gen);
  return g;
}

std::uint64_t pairing_op_count() { return obs::pairing_count(); }

std::uint64_t g2_prepared_count() { return obs::g2_prepared_build_count(); }

std::uint64_t fp12_inverse_count() { return obs::fp12_inverse_op_count(); }

}  // namespace peace::curve
