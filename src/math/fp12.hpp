// Fp12 = Fp6[w] / (w^2 - v). The pairing target group GT is the order-r
// subgroup of Fp12*.
#pragma once

#include <span>

#include "math/fp6.hpp"

namespace peace::math {

struct Fp12 {
  Fp6 c0, c1;

  Fp12() = default;
  Fp12(const Fp6& a, const Fp6& b) : c0(a), c1(b) {}

  static Fp12 zero() { return {}; }
  static Fp12 one() { return {Fp6::one(), Fp6::zero()}; }

  bool is_zero() const { return c0.is_zero() && c1.is_zero(); }
  bool is_one() const { return *this == one(); }
  bool operator==(const Fp12&) const = default;

  Fp12 operator+(const Fp12& o) const { return {c0 + o.c0, c1 + o.c1}; }
  Fp12 operator-(const Fp12& o) const { return {c0 - o.c0, c1 - o.c1}; }

  Fp12 operator*(const Fp12& o) const {
    const Fp6 v0 = c0 * o.c0;
    const Fp6 v1 = c1 * o.c1;
    return {v0 + v1.mul_by_v(), (c0 + c1) * (o.c0 + o.c1) - v0 - v1};
  }
  Fp12& operator*=(const Fp12& o) { return *this = *this * o; }

  Fp12 square() const {
    // Complex squaring: (c0 + c1 w)^2 with w^2 = v.
    const Fp6 v0 = c0 * c1;
    const Fp6 t = (c0 + c1) * (c0 + c1.mul_by_v());
    return {t - v0 - v0.mul_by_v(), v0 + v0};
  }

  /// Multiplication by the sparse element (a + b w + c w^3) that pairing
  /// line evaluations produce — in tower form (Fp6(a,0,0), Fp6(b,c,0)).
  /// Same Karatsuba-over-Fp6 schedule as the eager version (t0 = c0*(a,0,0),
  /// t1 = c1*(b,c,0), cross = (c0+c1)*((a+b),c,0)), but fully lazy: every
  /// output Fp2 coefficient is accumulated as a sum of double-width products
  /// and reduced exactly once — 12 reductions instead of one per Fp2
  /// multiply, with xi folded into the inputs via the cheap-xi path.
  /// Worst lane accumulates 15 p^2-units, within the 24-unit bound of
  /// docs/CRYPTO.md §6.3.
  Fp12 mul_by_line(const Fp2& a, const Fp2& b, const Fp2& c) const {
    const Fp2 xb = b.mul_by_xi();
    const Fp2 xc = c.mul_by_xi();
    const Fp6& l = c0;
    const Fp6& h = c1;
    const Fp6 s = c0 + c1;
    const Fp2 ab = a + b;

    // Every double-width product the t0/t1 lanes need is also subtracted
    // in a cross lane below, so compute each once and reuse the wide value
    // — 17 wide Fp2 multiplies instead of the naive 24, same arithmetic
    // (the cached value is the identical product, so outputs are
    // bit-identical to the recomputing form).
    const Fp2Wide p0 = fp2_wide_mul(l.c0, a);
    const Fp2Wide p1 = fp2_wide_mul(l.c1, a);
    const Fp2Wide p2 = fp2_wide_mul(l.c2, a);
    const Fp2Wide hb0 = fp2_wide_mul(h.c0, b);
    const Fp2Wide hxc2 = fp2_wide_mul(h.c2, xc);
    const Fp2Wide hc0 = fp2_wide_mul(h.c0, c);
    const Fp2Wide hb1 = fp2_wide_mul(h.c1, b);

    // res.c0 = t0 + t1 * v, coefficient by coefficient.
    Fp2Wide w = p0;
    fp2_wide_add(w, fp2_wide_mul(h.c1, xc));
    fp2_wide_add(w, fp2_wide_mul(h.c2, xb));
    const Fp2 r00 = fp2_wide_redc(w);

    w = p1;
    fp2_wide_add(w, hb0);
    fp2_wide_add(w, hxc2);
    const Fp2 r01 = fp2_wide_redc(w);

    w = p2;
    fp2_wide_add(w, hc0);
    fp2_wide_add(w, hb1);
    const Fp2 r02 = fp2_wide_redc(w);

    // res.c1 = cross - t0 - t1, coefficient by coefficient.
    w = fp2_wide_mul(s.c0, ab);
    fp2_wide_add(w, fp2_wide_mul(s.c2, xc));
    fp2_wide_sub(w, p0);
    fp2_wide_sub(w, hb0);
    fp2_wide_sub(w, hxc2);
    const Fp2 r10 = fp2_wide_redc(w);

    w = fp2_wide_mul(s.c0, c);
    fp2_wide_add(w, fp2_wide_mul(s.c1, ab));
    fp2_wide_sub(w, p1);
    fp2_wide_sub(w, hc0);
    fp2_wide_sub(w, hb1);
    const Fp2 r11 = fp2_wide_redc(w);

    w = fp2_wide_mul(s.c1, c);
    fp2_wide_add(w, fp2_wide_mul(s.c2, ab));
    fp2_wide_sub(w, p2);
    fp2_wide_sub(w, fp2_wide_mul(h.c1, c));
    fp2_wide_sub(w, fp2_wide_mul(h.c2, b));
    const Fp2 r12 = fp2_wide_redc(w);

    return {Fp6{r00, r01, r02}, Fp6{r10, r11, r12}};
  }

  /// Eager reference for mul_by_line — the pre-lazy implementation, kept as
  /// the differential oracle (tests/curve_speed_test.cpp).
  Fp12 mul_by_line_eager(const Fp2& a, const Fp2& b, const Fp2& c) const {
    const Fp2 xi = fp2_xi();
    const Fp6 t0{c0.c0 * a, c0.c1 * a, c0.c2 * a};
    const Fp6 t1{c1.c0 * b + xi * (c1.c2 * c), c1.c0 * c + c1.c1 * b,
                 c1.c1 * c + c1.c2 * b};
    const Fp6 s = c0 + c1;
    const Fp2 ab = a + b;
    const Fp6 cross{s.c0 * ab + xi * (s.c2 * c), s.c0 * c + s.c1 * ab,
                    s.c1 * c + s.c2 * ab};
    return {t0 + t1.mul_by_v(), cross - t0 - t1};
  }

  /// Squaring restricted to the cyclotomic subgroup (norm-1 elements, where
  /// everything lives after the easy part of the final exponentiation):
  /// Granger-Scott (2010) formulas — three Fp4 squarings instead of a full
  /// Fp12 square. NOT valid for general elements; callers must guarantee
  /// unitarity.
  ///
  /// Derivation: in the w-power basis (z_i the coefficient of w^i, so
  /// z = [c0.c0, c1.c0, c0.c1, c1.c1, c0.c2, c1.c2]), f decomposes into
  /// three Fp4 = Fp2[w^3]/(w^6 - xi) elements (z0 + z3 s), (z1 + z4 s),
  /// (z2 + z5 s); for unitary f the square needs only the three Fp4
  /// squarings plus cheap linear combinations.
  Fp12 cyclotomic_square() const {
    // libff/Granger-Scott labelling: a = (z0, z1), b = (z2, z3),
    // c = (z4, z5) with pairs (w^0, w^3), (w^1, w^4), (w^2, w^5).
    const Fp2& z0 = c0.c0;
    const Fp2& z1 = c1.c1;
    const Fp2& z2 = c1.c0;
    const Fp2& z3 = c0.c2;
    const Fp2& z4 = c0.c1;
    const Fp2& z5 = c1.c2;

    // (a0 + a1 s)^2 in Fp4 = Fp2[s]/(s^2 - xi), Karatsuba form, lazily:
    // t0 = (a0+a1)(a0+xi a1) - a0a1 - a0(xi a1) accumulated double-width
    // and reduced once (9 p^2-units worst lane; docs/CRYPTO.md §6.3 shows
    // xi*(a0a1) = a0*(xi a1), so only three wide products are needed).
    const auto fp4_square = [](const Fp2& a0, const Fp2& a1, Fp2& t0,
                               Fp2& t1) {
      const Fp2 xia1 = a1.mul_by_xi();
      Fp2Wide w = fp2_wide_mul(a0 + a1, a0 + xia1);
      const Fp2Wide ab = fp2_wide_mul(a0, a1);
      const Fp2Wide xab = fp2_wide_mul(a0, xia1);
      fp2_wide_sub(w, ab);
      fp2_wide_sub(w, xab);
      t0 = fp2_wide_redc(w);
      Fp2Wide two_ab = ab;
      fp2_wide_add(two_ab, ab);
      t1 = fp2_wide_redc(two_ab);
    };
    Fp2 t0, t1, t2, t3, t4, t5;
    fp4_square(z0, z1, t0, t1);
    fp4_square(z2, z3, t2, t3);
    fp4_square(z4, z5, t4, t5);

    // r_i = 3 t - 2 z (real halves) / 3 t + 2 z (imaginary halves).
    Fp2 r0 = t0 - z0;
    r0 = r0 + r0 + t0;
    Fp2 r1 = t1 + z1;
    r1 = r1 + r1 + t1;
    const Fp2 xt5 = t5.mul_by_xi();
    Fp2 r2 = xt5 + z2;
    r2 = r2 + r2 + xt5;
    Fp2 r3 = t4 - z3;
    r3 = r3 + r3 + t4;
    Fp2 r4 = t2 - z4;
    r4 = r4 + r4 + t2;
    Fp2 r5 = t3 + z5;
    r5 = r5 + r5 + t3;
    return {Fp6{r0, r4, r3}, Fp6{r2, r1, r5}};
  }

  /// Conjugation over Fp6, i.e. the Frobenius power x -> x^(p^6).
  Fp12 conjugate() const { return {c0, -c1}; }

  Fp12 inverse() const {
    const Fp6 det = c0.square() - c1.square().mul_by_v();
    const Fp6 inv = det.inverse();
    return {c0 * inv, -(c1 * inv)};
  }

  /// For unitary elements (norm 1, as after the easy final exponentiation),
  /// the inverse is just the conjugate.
  Fp12 unitary_inverse() const { return conjugate(); }

  Fp12 pow(const U256& exp) const {
    Fp12 acc = one();
    const unsigned n = exp.bit_length();
    for (int i = static_cast<int>(n) - 1; i >= 0; --i) {
      acc = acc.square();
      if (exp.bit(static_cast<unsigned>(i))) acc *= *this;
    }
    return acc;
  }

  /// Frobenius x -> x^p, given gamma[j] = xi^(j (p-1) / 6) for j = 0..5.
  /// Coefficients in the w-power basis are conjugated and scaled.
  Fp12 frobenius(std::span<const Fp2, 6> gamma) const {
    // w-basis coefficients: [c0.c0, c1.c0, c0.c1, c1.c1, c0.c2, c1.c2]
    const Fp2 a0 = c0.c0.conjugate() * gamma[0];
    const Fp2 a1 = c1.c0.conjugate() * gamma[1];
    const Fp2 a2 = c0.c1.conjugate() * gamma[2];
    const Fp2 a3 = c1.c1.conjugate() * gamma[3];
    const Fp2 a4 = c0.c2.conjugate() * gamma[4];
    const Fp2 a5 = c1.c2.conjugate() * gamma[5];
    return {Fp6{a0, a2, a4}, Fp6{a1, a3, a5}};
  }

  /// Deterministic byte serialization (all 12 Fp coefficients, standard
  /// form, big-endian) — used to feed GT elements into hashes and KDFs.
  Bytes to_bytes() const;

  /// Strict inverse of to_bytes: exactly 12 * 32 bytes, every coefficient
  /// canonical (< p). Throws Error otherwise. Callers deserializing GT
  /// elements from the wire must additionally run a subgroup membership
  /// check (curve::gt_in_cyclotomic_subgroup) — an arbitrary Fp12 value is
  /// not a valid pairing output.
  static Fp12 from_bytes(BytesView data);
};

}  // namespace peace::math
