// 256-bit fixed-width unsigned integer: the word size of all BN254 field
// elements and scalars. Little-endian 64-bit limbs, portable (uses
// unsigned __int128 for widening multiplies).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/bytes.hpp"

namespace peace::math {

struct U256 {
  // limb[0] is least significant.
  std::array<std::uint64_t, 4> limb{0, 0, 0, 0};

  constexpr U256() = default;
  constexpr explicit U256(std::uint64_t v) : limb{v, 0, 0, 0} {}
  constexpr U256(std::uint64_t l0, std::uint64_t l1, std::uint64_t l2,
                 std::uint64_t l3)
      : limb{l0, l1, l2, l3} {}

  static U256 zero() { return U256(); }
  static U256 one() { return U256(1); }

  /// Parses a base-10 string. Throws Error on bad digits or overflow.
  static U256 from_dec(std::string_view dec);
  /// Parses a hex string (no 0x prefix). Throws Error on bad digits/overflow.
  static U256 from_hex(std::string_view hex);
  /// Big-endian 32-byte decoding; shorter inputs are left-padded with zeros.
  /// Throws Error if more than 32 bytes.
  static U256 from_bytes(BytesView be);

  std::string to_dec() const;
  std::string to_hex() const;
  /// Big-endian, exactly 32 bytes.
  Bytes to_bytes() const;

  bool is_zero() const { return (limb[0] | limb[1] | limb[2] | limb[3]) == 0; }
  bool is_odd() const { return limb[0] & 1; }
  bool bit(unsigned i) const { return (limb[i / 64] >> (i % 64)) & 1; }
  /// Number of significant bits (0 for zero).
  unsigned bit_length() const;

  bool operator==(const U256&) const = default;
};

/// Three-way compare: negative, zero, positive.
int cmp(const U256& a, const U256& b);
inline bool operator<(const U256& a, const U256& b) { return cmp(a, b) < 0; }
inline bool operator>=(const U256& a, const U256& b) { return cmp(a, b) >= 0; }

/// out = a + b, returns the carry bit.
std::uint64_t add_carry(U256& out, const U256& a, const U256& b);
/// out = a - b, returns the borrow bit.
std::uint64_t sub_borrow(U256& out, const U256& a, const U256& b);

/// Full 512-bit product, little-endian limbs.
std::array<std::uint64_t, 8> mul_wide(const U256& a, const U256& b);

/// a << 1 (bits shifted out are lost).
U256 shl1(const U256& a);
/// a >> 1.
U256 shr1(const U256& a);

/// Modular helpers used during parameter bootstrap (operands must be < m).
U256 add_mod(const U256& a, const U256& b, const U256& m);
U256 sub_mod(const U256& a, const U256& b, const U256& m);

/// (a * 10 + d), throwing Error on overflow — used by the decimal parser.
U256 mul10_add(const U256& a, std::uint64_t d);

/// Division by a small scalar: returns quotient, sets `rem`.
U256 divmod_small(const U256& a, std::uint64_t d, std::uint64_t& rem);

/// Modular inverse of `a` modulo an odd modulus `m` (binary extended GCD;
/// not constant-time). Requires 0 < a < m and gcd(a, m) == 1; throws Error
/// otherwise. Much faster than Fermat exponentiation — this carries the
/// pairing's Miller loop.
U256 mod_inverse_odd(const U256& a, const U256& m);

}  // namespace peace::math
