#include "math/fp12.hpp"

namespace peace::math {

Bytes Fp12::to_bytes() const {
  Bytes out;
  out.reserve(12 * 32);
  for (const Fp6* h : {&c0, &c1}) {
    for (const Fp2* q : {&h->c0, &h->c1, &h->c2}) {
      append(out, q->c0.to_bytes());
      append(out, q->c1.to_bytes());
    }
  }
  return out;
}

}  // namespace peace::math
