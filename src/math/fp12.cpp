#include "math/fp12.hpp"

namespace peace::math {

Bytes Fp12::to_bytes() const {
  Bytes out;
  out.reserve(12 * 32);
  for (const Fp6* h : {&c0, &c1}) {
    for (const Fp2* q : {&h->c0, &h->c1, &h->c2}) {
      append(out, q->c0.to_bytes());
      append(out, q->c1.to_bytes());
    }
  }
  return out;
}

Fp12 Fp12::from_bytes(BytesView data) {
  if (data.size() != 12 * 32) throw Error("fp12: bad length");
  std::size_t off = 0;
  const auto next_fp = [&data, &off]() {
    const U256 v = U256::from_bytes(data.subspan(off, 32));
    off += 32;
    // Reject non-canonical coefficients: every Fp value has exactly one
    // byte encoding, so serialization round-trips bit-identically.
    if (!(cmp(v, Fp::modulus()) < 0)) throw Error("fp12: coefficient >= p");
    return Fp::from_u256(v);
  };
  Fp12 out;
  for (Fp6* h : {&out.c0, &out.c1}) {
    for (Fp2* q : {&h->c0, &h->c1, &h->c2}) {
      q->c0 = next_fp();
      q->c1 = next_fp();
    }
  }
  return out;
}

}  // namespace peace::math
