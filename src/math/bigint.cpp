#include "math/bigint.hpp"

#include <algorithm>

namespace peace::math {

using u64 = std::uint64_t;
using u128 = unsigned __int128;

BigInt::BigInt(u64 v) {
  if (v != 0) limbs_.push_back(v);
}

void BigInt::trim() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
}

int BigInt::cmp(const BigInt& a, const BigInt& b) {
  if (a.limbs_.size() != b.limbs_.size())
    return a.limbs_.size() < b.limbs_.size() ? -1 : 1;
  for (std::size_t i = a.limbs_.size(); i-- > 0;) {
    if (a.limbs_[i] != b.limbs_[i]) return a.limbs_[i] < b.limbs_[i] ? -1 : 1;
  }
  return 0;
}

BigInt BigInt::operator+(const BigInt& o) const {
  BigInt out;
  const std::size_t n = std::max(limbs_.size(), o.limbs_.size());
  out.limbs_.resize(n);
  u64 carry = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const u128 sum = static_cast<u128>(i < limbs_.size() ? limbs_[i] : 0) +
                     (i < o.limbs_.size() ? o.limbs_[i] : 0) + carry;
    out.limbs_[i] = static_cast<u64>(sum);
    carry = static_cast<u64>(sum >> 64);
  }
  if (carry) out.limbs_.push_back(carry);
  return out;
}

BigInt BigInt::operator-(const BigInt& o) const {
  if (cmp(*this, o) < 0) throw Error("BigInt: negative subtraction");
  BigInt out;
  out.limbs_.resize(limbs_.size());
  u64 borrow = 0;
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    const u128 diff = static_cast<u128>(limbs_[i]) -
                      (i < o.limbs_.size() ? o.limbs_[i] : 0) - borrow;
    out.limbs_[i] = static_cast<u64>(diff);
    borrow = static_cast<u64>((diff >> 64) & 1);
  }
  out.trim();
  return out;
}

BigInt BigInt::operator*(const BigInt& o) const {
  if (is_zero() || o.is_zero()) return {};
  BigInt out;
  out.limbs_.assign(limbs_.size() + o.limbs_.size(), 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    u64 carry = 0;
    for (std::size_t j = 0; j < o.limbs_.size(); ++j) {
      const u128 cur = static_cast<u128>(limbs_[i]) * o.limbs_[j] +
                       out.limbs_[i + j] + carry;
      out.limbs_[i + j] = static_cast<u64>(cur);
      carry = static_cast<u64>(cur >> 64);
    }
    out.limbs_[i + o.limbs_.size()] += carry;
  }
  out.trim();
  return out;
}

BigInt BigInt::operator<<(std::size_t bits) const {
  if (is_zero()) return {};
  const std::size_t words = bits / 64, rem = bits % 64;
  BigInt out;
  out.limbs_.assign(limbs_.size() + words + 1, 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    out.limbs_[i + words] |= rem ? limbs_[i] << rem : limbs_[i];
    if (rem) out.limbs_[i + words + 1] |= limbs_[i] >> (64 - rem);
  }
  out.trim();
  return out;
}

BigInt BigInt::operator>>(std::size_t bits) const {
  const std::size_t words = bits / 64, rem = bits % 64;
  if (words >= limbs_.size()) return {};
  BigInt out;
  out.limbs_.assign(limbs_.size() - words, 0);
  for (std::size_t i = 0; i < out.limbs_.size(); ++i) {
    out.limbs_[i] = rem ? limbs_[i + words] >> rem : limbs_[i + words];
    if (rem && i + words + 1 < limbs_.size())
      out.limbs_[i] |= limbs_[i + words + 1] << (64 - rem);
  }
  out.trim();
  return out;
}

bool BigInt::bit(std::size_t i) const {
  const std::size_t word = i / 64;
  if (word >= limbs_.size()) return false;
  return (limbs_[word] >> (i % 64)) & 1;
}

std::size_t BigInt::bit_length() const {
  if (limbs_.empty()) return 0;
  return 64 * (limbs_.size() - 1) + 64 -
         static_cast<std::size_t>(__builtin_clzll(limbs_.back()));
}

void BigInt::divmod(const BigInt& num, const BigInt& den, BigInt& quot,
                    BigInt& rem) {
  if (den.is_zero()) throw Error("BigInt: divide by zero");
  if (cmp(num, den) < 0) {
    quot = {};
    rem = num;
    return;
  }
  // Simple shift-and-subtract long division on bits of a normalized copy.
  // O(bits * limbs) — plenty fast for 2048-bit RSA work.
  const std::size_t shift = num.bit_length() - den.bit_length();
  BigInt q, r = num;
  q.limbs_.assign((shift + 64) / 64, 0);
  BigInt d = den << shift;
  for (std::size_t i = shift + 1; i-- > 0;) {
    if (cmp(r, d) >= 0) {
      r = r - d;
      q.limbs_[i / 64] |= u64{1} << (i % 64);
    }
    d = d >> 1;
  }
  q.trim();
  quot = q;
  rem = r;
}

BigInt BigInt::operator/(const BigInt& o) const {
  BigInt q, r;
  divmod(*this, o, q, r);
  return q;
}

BigInt BigInt::operator%(const BigInt& o) const {
  BigInt q, r;
  divmod(*this, o, q, r);
  return r;
}

BigInt BigInt::mod_pow(const BigInt& base, const BigInt& exp,
                       const BigInt& mod) {
  if (mod.is_zero()) throw Error("BigInt: mod_pow by zero");
  BigInt acc(1);
  BigInt b = base % mod;
  for (std::size_t i = exp.bit_length(); i-- > 0;) {
    acc = (acc * acc) % mod;
    if (exp.bit(i)) acc = (acc * b) % mod;
  }
  return acc;
}

BigInt BigInt::gcd(BigInt a, BigInt b) {
  while (!b.is_zero()) {
    BigInt r = a % b;
    a = b;
    b = r;
  }
  return a;
}

BigInt BigInt::mod_inverse(const BigInt& a, const BigInt& m) {
  // Extended Euclid tracking coefficients of `a` only, with signs.
  BigInt r0 = a % m, r1 = m;
  BigInt s0(1), s1(0);
  bool neg0 = false, neg1 = false;
  while (!r1.is_zero()) {
    BigInt q, r2;
    divmod(r0, r1, q, r2);
    // s2 = s0 - q * s1 (signed)
    const BigInt qs1 = q * s1;
    BigInt s2;
    bool neg2;
    if (neg0 == neg1) {
      if (cmp(s0, qs1) >= 0) {
        s2 = s0 - qs1;
        neg2 = neg0;
      } else {
        s2 = qs1 - s0;
        neg2 = !neg0;
      }
    } else {
      s2 = s0 + qs1;
      neg2 = neg0;
    }
    r0 = r1;
    r1 = r2;
    s0 = s1;
    neg0 = neg1;
    s1 = s2;
    neg1 = neg2;
  }
  if (cmp(r0, BigInt(1)) != 0) throw Error("BigInt: not invertible");
  BigInt inv = s0 % m;
  if (neg0 && !inv.is_zero()) inv = m - inv;
  return inv;
}

BigInt BigInt::from_dec(std::string_view dec) {
  if (dec.empty()) throw Error("BigInt: empty decimal");
  BigInt out;
  for (char c : dec) {
    if (c < '0' || c > '9') throw Error("BigInt: bad decimal digit");
    out = out * BigInt(10) + BigInt(static_cast<u64>(c - '0'));
  }
  return out;
}

BigInt BigInt::from_bytes(BytesView be) {
  BigInt out;
  for (std::uint8_t b : be) out = (out << 8) + BigInt(b);
  return out;
}

BigInt BigInt::from_u256(const U256& v) {
  BigInt out;
  out.limbs_.assign(v.limb.begin(), v.limb.end());
  out.trim();
  return out;
}

std::string BigInt::to_dec() const {
  if (is_zero()) return "0";
  BigInt cur = *this;
  const BigInt ten(10);
  std::string out;
  while (!cur.is_zero()) {
    BigInt q, r;
    divmod(cur, ten, q, r);
    out.push_back(static_cast<char>('0' + r.to_u64()));
    cur = q;
  }
  std::reverse(out.begin(), out.end());
  return out;
}

Bytes BigInt::to_bytes(std::size_t min_len) const {
  Bytes out;
  for (std::size_t i = limbs_.size(); i-- > 0;)
    for (int j = 7; j >= 0; --j)
      out.push_back(static_cast<std::uint8_t>(limbs_[i] >> (8 * j)));
  // Strip leading zeros, then left-pad to min_len.
  std::size_t first = 0;
  while (first < out.size() && out[first] == 0) ++first;
  out.erase(out.begin(), out.begin() + static_cast<std::ptrdiff_t>(first));
  if (out.size() < min_len) out.insert(out.begin(), min_len - out.size(), 0);
  return out;
}

U256 BigInt::to_u256() const {
  if (limbs_.size() > 4) throw Error("BigInt: does not fit in 256 bits");
  U256 out;
  for (std::size_t i = 0; i < limbs_.size(); ++i) out.limb[i] = limbs_[i];
  return out;
}

u64 BigInt::to_u64() const {
  if (limbs_.size() > 1) throw Error("BigInt: does not fit in 64 bits");
  return limbs_.empty() ? 0 : limbs_[0];
}

}  // namespace peace::math
