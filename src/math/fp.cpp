#include "math/fp.hpp"

namespace peace::math {

FieldParams make_field_params(const U256& modulus) {
  if (!modulus.is_odd() || modulus.bit_length() < 3)
    throw Error("make_field_params: modulus must be odd and > 2");

  FieldParams p;
  p.modulus = modulus;
  p.bits = modulus.bit_length();

  // n0inv = -modulus^{-1} mod 2^64 by Newton iteration (5 steps double the
  // number of correct low bits from the seed's 3 to > 64).
  std::uint64_t inv = modulus.limb[0];
  for (int i = 0; i < 5; ++i) inv *= 2 - modulus.limb[0] * inv;
  p.n0inv = ~inv + 1;

  // r = 2^256 mod modulus: start at 1 and double 256 times mod modulus.
  U256 r = U256::one();
  for (int i = 0; i < 256; ++i) r = add_mod(r, r, modulus);
  p.r = r;
  // r2 = r * 2^256 mod modulus: double 256 more times.
  U256 r2 = r;
  for (int i = 0; i < 256; ++i) r2 = add_mod(r2, r2, modulus);
  p.r2 = r2;

  sub_borrow(p.modulus_minus_2, modulus, U256(2));

  // sqrt exponent (modulus+1)/4 when modulus = 3 (mod 4).
  if ((modulus.limb[0] & 3) == 3) {
    U256 m1;
    add_carry(m1, modulus, U256::one());  // cannot overflow: modulus < 2^255
    p.sqrt_exp = shr1(shr1(m1));
    p.has_sqrt_exp = true;
  }

  // Lazy-reduction bias table: p2k[k] = k * modulus^2 (docs/CRYPTO.md §6.3).
  // kMaxWideBias * modulus^2 < 2^512 for any modulus < 2^254.5, so the adds
  // cannot carry out.
  const std::array<std::uint64_t, 8> p2 = mul_wide(modulus, modulus);
  for (unsigned k = 1; k <= FieldParams::kMaxWideBias; ++k) {
    p.p2k[k] = p.p2k[k - 1];
    if (wide8_add(p.p2k[k], p2) != 0)
      throw Error("make_field_params: bias table overflow");
  }
  return p;
}

}  // namespace peace::math
