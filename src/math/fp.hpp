// Montgomery-form prime fields. `PrimeField<Tag>` is a distinct type per
// modulus tag, so base-field elements (Fp) and scalars (Fr) cannot be mixed
// up at compile time. All parameters (R, R^2, -p^-1 mod 2^64) are derived at
// init() time from the decimal modulus — nothing hand-transcribed.
#pragma once

#include <cstdint>

#include "math/u256.hpp"

namespace peace::math {

struct FieldParams {
  U256 modulus;
  std::uint64_t n0inv = 0;  // -modulus^{-1} mod 2^64
  U256 r;                   // 2^256 mod modulus  (Montgomery form of 1)
  U256 r2;                  // 2^512 mod modulus  (to-Montgomery factor)
  U256 modulus_minus_2;     // inversion exponent (Fermat)
  U256 sqrt_exp;            // (modulus+1)/4 when modulus = 3 mod 4, else 0
  bool has_sqrt_exp = false;
  unsigned bits = 0;
  /// k * modulus^2 for k = 0..kMaxWideBias: the nonnegativity biases added
  /// by the lazy-reduction accumulators (docs/CRYPTO.md §6.3). Multiples of
  /// the modulus are annihilated by Montgomery reduction, so adding them
  /// never changes the reduced value.
  static constexpr unsigned kMaxWideBias = 8;
  std::array<std::array<std::uint64_t, 8>, kMaxWideBias + 1> p2k{};
};

/// 512-bit unreduced accumulator for lazy tower reduction: a sum of
/// double-width Montgomery products plus k*p^2 nonnegativity biases,
/// reduced exactly once per output coefficient. Safe while the total stays
/// below 2^512 — at p ~ 2^254 that is 24 product units, far above what any
/// tower formula accumulates; docs/CRYPTO.md §6.3 carries the bound.
struct FpWide {
  std::array<std::uint64_t, 8> limb{};
};

/// out += x over 8 little-endian limbs; returns the carry out.
inline std::uint64_t wide8_add(std::array<std::uint64_t, 8>& out,
                               const std::array<std::uint64_t, 8>& x) {
  unsigned __int128 carry = 0;
  for (int i = 0; i < 8; ++i) {
    carry += static_cast<unsigned __int128>(out[i]) + x[i];
    out[i] = static_cast<std::uint64_t>(carry);
    carry >>= 64;
  }
  return static_cast<std::uint64_t>(carry);
}

/// out -= x over 8 little-endian limbs; returns the borrow out.
inline std::uint64_t wide8_sub(std::array<std::uint64_t, 8>& out,
                               const std::array<std::uint64_t, 8>& x) {
  std::uint64_t borrow = 0;
  for (int i = 0; i < 8; ++i) {
    const unsigned __int128 rhs =
        static_cast<unsigned __int128>(x[i]) + borrow;
    const unsigned __int128 lhs = out[i];
    out[i] = static_cast<std::uint64_t>(lhs - rhs);
    borrow = lhs < rhs ? 1 : 0;
  }
  return borrow;
}

/// Derives all Montgomery constants from `modulus` (must be odd and > 2).
FieldParams make_field_params(const U256& modulus);

template <class Tag>
class PrimeField {
 public:
  /// Installs the modulus for this field type. Must be called once before
  /// any arithmetic; repeated calls with the same modulus are no-ops.
  static void init(const U256& modulus) {
    if (initialized_) {
      if (!(params_.modulus == modulus))
        throw Error("PrimeField: re-init with different modulus");
      return;
    }
    params_ = make_field_params(modulus);
    initialized_ = true;
  }

  static const FieldParams& params() {
    if (!initialized_) throw Error("PrimeField: not initialized");
    return params_;
  }

  static const U256& modulus() { return params().modulus; }

  PrimeField() = default;  // zero

  static PrimeField zero() { return PrimeField(); }
  static PrimeField one() { return from_mont(params().r); }

  static PrimeField from_u64(std::uint64_t v) { return from_u256(U256(v)); }

  /// From a standard-form integer; must already be < modulus.
  static PrimeField from_u256(const U256& v) {
    if (!(cmp(v, modulus()) < 0)) throw Error("PrimeField: value >= modulus");
    return from_mont(mont_mul(v, params().r2));
  }

  /// From a 32-byte big-endian string, reduced mod the modulus. Used for
  /// hash-to-field: the modulus is 254 bits so at most 3 subtractions.
  static PrimeField from_bytes_reduce(BytesView be) {
    U256 v = U256::from_bytes(be);
    const U256& m = modulus();
    while (!(cmp(v, m) < 0)) {
      U256 tmp;
      sub_borrow(tmp, v, m);
      v = tmp;
    }
    return from_u256(v);
  }

  static PrimeField from_dec(std::string_view dec) {
    return from_u256(U256::from_dec(dec));
  }

  /// Standard (non-Montgomery) representation.
  U256 to_u256() const { return mont_mul(mont_, U256::one()); }
  Bytes to_bytes() const { return to_u256().to_bytes(); }
  std::string to_dec() const { return to_u256().to_dec(); }

  bool is_zero() const { return mont_.is_zero(); }
  bool operator==(const PrimeField&) const = default;

  PrimeField operator+(const PrimeField& o) const {
    return from_mont(add_mod(mont_, o.mont_, modulus()));
  }
  PrimeField operator-(const PrimeField& o) const {
    return from_mont(sub_mod(mont_, o.mont_, modulus()));
  }
  PrimeField operator-() const {
    return from_mont(is_zero() ? U256() : sub_mod(U256(), mont_, modulus()));
  }
  PrimeField operator*(const PrimeField& o) const {
    return from_mont(mont_mul(mont_, o.mont_));
  }
  PrimeField& operator+=(const PrimeField& o) { return *this = *this + o; }
  PrimeField& operator-=(const PrimeField& o) { return *this = *this - o; }
  PrimeField& operator*=(const PrimeField& o) { return *this = *this * o; }

  PrimeField square() const { return *this * *this; }
  PrimeField dbl() const { return *this + *this; }

  PrimeField pow(const U256& exp) const {
    PrimeField acc = one();
    const unsigned n = exp.bit_length();
    for (int i = static_cast<int>(n) - 1; i >= 0; --i) {
      acc = acc.square();
      if (exp.bit(static_cast<unsigned>(i))) acc *= *this;
    }
    return acc;
  }

  /// Multiplicative inverse (binary extended GCD on the Montgomery
  /// representative, then two Montgomery corrections). Throws on zero.
  PrimeField inverse() const {
    if (is_zero()) throw Error("PrimeField: inverse of zero");
    // mont_ = aR; egcd gives (aR)^-1 = a^-1 R^-1; two multiplications by
    // R^2 (each costing one R^-1) restore the Montgomery form a^-1 R.
    const U256 inv = mod_inverse_odd(mont_, modulus());
    return from_mont(mont_mul(mont_mul(inv, params().r2), params().r2));
  }

  /// Fermat-exponentiation inverse, kept as an independent cross-check
  /// oracle for the fast path above.
  PrimeField inverse_fermat() const {
    if (is_zero()) throw Error("PrimeField: inverse of zero");
    return pow(params().modulus_minus_2);
  }

  /// Square root for moduli = 3 (mod 4). Returns false if no root exists.
  bool sqrt(PrimeField& out) const {
    if (!params().has_sqrt_exp) throw Error("PrimeField: sqrt unsupported");
    const PrimeField cand = pow(params().sqrt_exp);
    if (cand.square() == *this) {
      out = cand;
      return true;
    }
    return false;
  }

  // --- lazy double-width accumulation (docs/CRYPTO.md §6.3) ---------------

  /// Unreduced double-width product of two canonical elements: one product
  /// unit, value < p^2.
  static FpWide wide_mul(const PrimeField& a, const PrimeField& b) {
    return FpWide{mul_wide(a.mont_, b.mont_)};
  }

  /// acc += x. Throws on 2^512 overflow — unreachable under the §6.3
  /// accumulation bound, kept as an always-on guard.
  static void wide_add(FpWide& acc, const FpWide& x) {
    if (wide8_add(acc.limb, x.limb) != 0)
      throw Error("PrimeField: wide accumulator overflow");
  }

  /// acc += k*p^2 - x, requiring x <= k*p^2: the biased subtraction that
  /// keeps lazy accumulators nonnegative. The k*p^2 bias is a multiple of
  /// the modulus and vanishes in redc().
  static void wide_sub(FpWide& acc, const FpWide& x, unsigned k) {
    if (k > FieldParams::kMaxWideBias)
      throw Error("PrimeField: wide bias too large");
    FpWide d{params_.p2k[k]};
    if (wide8_sub(d.limb, x.limb) != 0)
      throw Error("PrimeField: wide bias underflow");
    wide_add(acc, d);
  }

  /// Montgomery reduction of a full 512-bit accumulator to the canonical
  /// representative — the single per-coefficient reduction of the lazy
  /// path. The canonical representative of a residue is unique, so this
  /// agrees bit-for-bit with the mont_mul/add_mod chain computing the same
  /// value eagerly (docs/CRYPTO.md §6.3).
  static PrimeField redc(const FpWide& in);

  /// Parity of the standard representation (for point compression).
  bool is_odd_repr() const { return to_u256().is_odd(); }

  /// Raw Montgomery limbs — for hashing/serialization of internal state only.
  const U256& mont() const { return mont_; }
  static PrimeField from_mont(const U256& m) {
    PrimeField f;
    f.mont_ = m;
    return f;
  }

 private:
  static U256 mont_mul(const U256& a, const U256& b);

  U256 mont_;

  static inline FieldParams params_{};
  static inline bool initialized_ = false;
};

template <class Tag>
U256 PrimeField<Tag>::mont_mul(const U256& a, const U256& b) {
  using u64 = std::uint64_t;
  using u128 = unsigned __int128;
  const U256& n = params_.modulus;
  const u64 n0inv = params_.n0inv;

  std::array<u64, 8> t = mul_wide(a, b);
  u64 extra = 0;
  for (int i = 0; i < 4; ++i) {
    const u64 m = t[i] * n0inv;
    u64 carry = 0;
    for (int j = 0; j < 4; ++j) {
      const u128 cur = static_cast<u128>(m) * n.limb[j] + t[i + j] + carry;
      t[i + j] = static_cast<u64>(cur);
      carry = static_cast<u64>(cur >> 64);
    }
    for (int k = i + 4; k < 8 && carry != 0; ++k) {
      const u128 cur = static_cast<u128>(t[k]) + carry;
      t[k] = static_cast<u64>(cur);
      carry = static_cast<u64>(cur >> 64);
    }
    extra += carry;
  }
  U256 res{t[4], t[5], t[6], t[7]};
  if (extra != 0 || !(cmp(res, n) < 0)) {
    U256 reduced;
    sub_borrow(reduced, res, n);
    res = reduced;
  }
  return res;
}

template <class Tag>
PrimeField<Tag> PrimeField<Tag>::redc(const FpWide& in) {
  using u64 = std::uint64_t;
  using u128 = unsigned __int128;
  const U256& n = params_.modulus;
  const u64 n0inv = params_.n0inv;

  std::array<u64, 8> t = in.limb;
  u64 extra = 0;
  for (int i = 0; i < 4; ++i) {
    const u64 m = t[i] * n0inv;
    u64 carry = 0;
    for (int j = 0; j < 4; ++j) {
      const u128 cur = static_cast<u128>(m) * n.limb[j] + t[i + j] + carry;
      t[i + j] = static_cast<u64>(cur);
      carry = static_cast<u64>(cur >> 64);
    }
    for (int k = i + 4; k < 8 && carry != 0; ++k) {
      const u128 cur = static_cast<u128>(t[k]) + carry;
      t[k] = static_cast<u64>(cur);
      carry = static_cast<u64>(cur >> 64);
    }
    extra += carry;
  }
  U256 res{t[4], t[5], t[6], t[7]};
  // Remaining value is extra * 2^256 + res with extra in {0, 1} (the input
  // is < 2^512, so (input + m*n)/2^256 < 2^256 + n). Peel n off until the
  // representative is canonical — at most ~6 subtractions since 2^256 < 6n.
  while (extra != 0) {
    U256 reduced;
    extra -= sub_borrow(reduced, res, n);
    res = reduced;
  }
  while (!(cmp(res, n) < 0)) {
    U256 reduced;
    sub_borrow(reduced, res, n);
    res = reduced;
  }
  return from_mont(res);
}

// Field tags. The paper's Z_p (signature scalars) is our Fr; the pairing
// base field is Fp.
struct BaseFieldTag {};
struct ScalarFieldTag {};
using Fp = PrimeField<BaseFieldTag>;
using Fr = PrimeField<ScalarFieldTag>;

}  // namespace peace::math
