// Arbitrary-precision unsigned integers. Used for the RSA-1024 baseline
// (keygen, modexp, Miller-Rabin) and for deriving the pairing final-
// exponentiation exponent (p^4 - p^2 + 1)/r at startup. Not performance
// critical; clarity over speed.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/bytes.hpp"
#include "math/u256.hpp"

namespace peace::math {

class BigInt {
 public:
  BigInt() = default;
  explicit BigInt(std::uint64_t v);

  static BigInt from_dec(std::string_view dec);
  static BigInt from_bytes(BytesView be);
  static BigInt from_u256(const U256& v);

  std::string to_dec() const;
  /// Big-endian, minimal length (empty for zero) unless `min_len` pads.
  Bytes to_bytes(std::size_t min_len = 0) const;
  /// Throws if the value does not fit in 256 bits.
  U256 to_u256() const;
  std::uint64_t to_u64() const;

  bool is_zero() const { return limbs_.empty(); }
  bool is_odd() const { return !limbs_.empty() && (limbs_[0] & 1); }
  bool bit(std::size_t i) const;
  std::size_t bit_length() const;

  bool operator==(const BigInt&) const = default;

  BigInt operator+(const BigInt& o) const;
  /// Requires *this >= o; throws Error otherwise (unsigned arithmetic).
  BigInt operator-(const BigInt& o) const;
  BigInt operator*(const BigInt& o) const;
  BigInt operator/(const BigInt& o) const;
  BigInt operator%(const BigInt& o) const;
  BigInt operator<<(std::size_t bits) const;
  BigInt operator>>(std::size_t bits) const;

  /// Quotient and remainder in one pass (Knuth algorithm D).
  static void divmod(const BigInt& num, const BigInt& den, BigInt& quot,
                     BigInt& rem);

  static int cmp(const BigInt& a, const BigInt& b);

  /// Modular exponentiation (square-and-multiply).
  static BigInt mod_pow(const BigInt& base, const BigInt& exp,
                        const BigInt& mod);
  static BigInt gcd(BigInt a, BigInt b);
  /// Inverse of a mod m; throws Error if gcd(a, m) != 1.
  static BigInt mod_inverse(const BigInt& a, const BigInt& m);

  /// Miller-Rabin with `rounds` pseudo-random bases supplied by `rand_below`
  /// (a callable returning a BigInt uniform in [2, n-2]).
  template <typename RandBelow>
  static bool is_probable_prime(const BigInt& n, int rounds,
                                RandBelow&& rand_below) {
    if (cmp(n, BigInt(4)) < 0) return cmp(n, BigInt(2)) >= 0;
    if (!n.is_odd()) return false;
    const BigInt n1 = n - BigInt(1);
    BigInt d = n1;
    std::size_t s = 0;
    while (!d.is_odd()) {
      d = d >> 1;
      ++s;
    }
    for (int i = 0; i < rounds; ++i) {
      const BigInt a = rand_below();
      BigInt x = mod_pow(a, d, n);
      if (cmp(x, BigInt(1)) == 0 || cmp(x, n1) == 0) continue;
      bool witness = true;
      for (std::size_t r = 1; r < s; ++r) {
        x = (x * x) % n;
        if (cmp(x, n1) == 0) {
          witness = false;
          break;
        }
      }
      if (witness) return false;
    }
    return true;
  }

 private:
  void trim();
  // Little-endian 64-bit limbs; no trailing zero limbs (canonical form).
  std::vector<std::uint64_t> limbs_;
};

inline bool operator<(const BigInt& a, const BigInt& b) {
  return BigInt::cmp(a, b) < 0;
}

}  // namespace peace::math
