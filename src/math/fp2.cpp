#include "math/fp2.hpp"

namespace peace::math {

Fp2 fp2_xi() { return Fp2::from_u64(9, 1); }

bool Fp2::sqrt(Fp2& out) const {
  if (is_zero()) {
    out = zero();
    return true;
  }
  // Write z = a + b i. If b == 0 we need sqrt(a) in Fp, or sqrt(-a) * i.
  if (c1.is_zero()) {
    Fp r;
    if (c0.sqrt(r)) {
      out = {r, Fp::zero()};
      return true;
    }
    if ((-c0).sqrt(r)) {
      out = {Fp::zero(), r};
      return true;
    }
    return false;
  }
  // General case: |z| = sqrt(a^2 + b^2) must exist in Fp (it always does for
  // a square z since the norm map is surjective onto squares).
  Fp lambda;
  if (!norm().sqrt(lambda)) return false;
  const Fp inv2 = Fp::from_u64(2).inverse();
  Fp x2 = (c0 + lambda) * inv2;
  Fp x;
  if (!x2.sqrt(x)) {
    x2 = (c0 - lambda) * inv2;
    if (!x2.sqrt(x)) return false;
  }
  const Fp y = c1 * (x + x).inverse();
  const Fp2 cand{x, y};
  if (!(cand.square() == *this)) return false;
  out = cand;
  return true;
}

}  // namespace peace::math
