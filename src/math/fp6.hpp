// Fp6 = Fp2[v] / (v^3 - xi), xi = 9 + i. Elements are c0 + c1 v + c2 v^2.
#pragma once

#include "math/fp2.hpp"

namespace peace::math {

struct Fp6 {
  Fp2 c0, c1, c2;

  Fp6() = default;
  Fp6(const Fp2& a, const Fp2& b, const Fp2& c) : c0(a), c1(b), c2(c) {}

  static Fp6 zero() { return {}; }
  static Fp6 one() { return {Fp2::one(), Fp2::zero(), Fp2::zero()}; }

  bool is_zero() const { return c0.is_zero() && c1.is_zero() && c2.is_zero(); }
  bool operator==(const Fp6&) const = default;

  Fp6 operator+(const Fp6& o) const {
    return {c0 + o.c0, c1 + o.c1, c2 + o.c2};
  }
  Fp6 operator-(const Fp6& o) const {
    return {c0 - o.c0, c1 - o.c1, c2 - o.c2};
  }
  Fp6 operator-() const { return {-c0, -c1, -c2}; }

  Fp6 operator*(const Fp6& o) const {
    // Toom-style interpolation (Devegili et al.); v^3 reduces via the
    // cheap-xi path (docs/CRYPTO.md §6.3), the Fp2 products are lazy.
    const Fp2 v0 = c0 * o.c0;
    const Fp2 v1 = c1 * o.c1;
    const Fp2 v2 = c2 * o.c2;
    const Fp2 t0 = v0 + ((c1 + c2) * (o.c1 + o.c2) - v1 - v2).mul_by_xi();
    const Fp2 t1 = (c0 + c1) * (o.c0 + o.c1) - v0 - v1 + v2.mul_by_xi();
    const Fp2 t2 = (c0 + c2) * (o.c0 + o.c2) - v0 - v2 + v1;
    return {t0, t1, t2};
  }
  Fp6 operator*(const Fp2& s) const { return {c0 * s, c1 * s, c2 * s}; }

  Fp6& operator+=(const Fp6& o) { return *this = *this + o; }
  Fp6& operator-=(const Fp6& o) { return *this = *this - o; }
  Fp6& operator*=(const Fp6& o) { return *this = *this * o; }

  Fp6 square() const { return *this * *this; }

  /// Multiplication by v: (c0, c1, c2) -> (xi c2, c0, c1).
  Fp6 mul_by_v() const { return {c2.mul_by_xi(), c0, c1}; }

  Fp6 inverse() const {
    const Fp2 t0 = c0.square() - (c1 * c2).mul_by_xi();
    const Fp2 t1 = c2.square().mul_by_xi() - c0 * c1;
    const Fp2 t2 = c1.square() - c0 * c2;
    const Fp2 det = c0 * t0 + (c1 * t2).mul_by_xi() + (c2 * t1).mul_by_xi();
    const Fp2 inv = det.inverse();
    return {t0 * inv, t1 * inv, t2 * inv};
  }
};

inline Fp6 operator*(const Fp2& s, const Fp6& a) { return a * s; }

}  // namespace peace::math
