// Fp2 = Fp[i] / (i^2 + 1). Elements are c0 + c1*i.
#pragma once

#include "math/fp.hpp"

namespace peace::math {

struct Fp2 {
  Fp c0;
  Fp c1;

  Fp2() = default;
  Fp2(const Fp& a, const Fp& b) : c0(a), c1(b) {}

  static Fp2 zero() { return {}; }
  static Fp2 one() { return {Fp::one(), Fp::zero()}; }
  static Fp2 from_u64(std::uint64_t a, std::uint64_t b) {
    return {Fp::from_u64(a), Fp::from_u64(b)};
  }

  bool is_zero() const { return c0.is_zero() && c1.is_zero(); }
  bool operator==(const Fp2&) const = default;

  Fp2 operator+(const Fp2& o) const { return {c0 + o.c0, c1 + o.c1}; }
  Fp2 operator-(const Fp2& o) const { return {c0 - o.c0, c1 - o.c1}; }
  Fp2 operator-() const { return {-c0, -c1}; }

  Fp2 operator*(const Fp2& o) const {
    // Karatsuba: (a0 + a1 i)(b0 + b1 i) = (a0b0 - a1b1) + ((a0+a1)(b0+b1) - a0b0 - a1b1) i
    const Fp v0 = c0 * o.c0;
    const Fp v1 = c1 * o.c1;
    return {v0 - v1, (c0 + c1) * (o.c0 + o.c1) - v0 - v1};
  }
  Fp2 operator*(const Fp& s) const { return {c0 * s, c1 * s}; }

  Fp2& operator+=(const Fp2& o) { return *this = *this + o; }
  Fp2& operator-=(const Fp2& o) { return *this = *this - o; }
  Fp2& operator*=(const Fp2& o) { return *this = *this * o; }

  Fp2 square() const {
    // (a0 + a1 i)^2 = (a0+a1)(a0-a1) + 2 a0 a1 i
    const Fp t = c0 * c1;
    return {(c0 + c1) * (c0 - c1), t + t};
  }
  Fp2 dbl() const { return {c0 + c0, c1 + c1}; }

  /// Complex conjugate = Frobenius x -> x^p on Fp2.
  Fp2 conjugate() const { return {c0, -c1}; }

  /// Norm a0^2 + a1^2 in Fp.
  Fp norm() const { return c0.square() + c1.square(); }

  Fp2 inverse() const {
    // 1/(a0 + a1 i) = (a0 - a1 i) / (a0^2 + a1^2)
    const Fp inv_norm = norm().inverse();
    return {c0 * inv_norm, -(c1 * inv_norm)};
  }

  Fp2 pow(const U256& exp) const {
    Fp2 acc = one();
    const unsigned n = exp.bit_length();
    for (int i = static_cast<int>(n) - 1; i >= 0; --i) {
      acc = acc.square();
      if (exp.bit(static_cast<unsigned>(i))) acc *= *this;
    }
    return acc;
  }

  /// Square root via the complex method (requires p = 3 mod 4 in the base
  /// field). Returns false when no root exists.
  bool sqrt(Fp2& out) const;

  /// Multiplication by i (the quadratic non-residue of Fp).
  Fp2 mul_by_i() const { return {-c1, c0}; }
};

/// The sextic twist constant xi = 9 + i used throughout the BN254 tower.
Fp2 fp2_xi();

}  // namespace peace::math
