// Fp2 = Fp[i] / (i^2 + 1). Elements are c0 + c1*i.
#pragma once

#include "math/fp.hpp"

namespace peace::math {

struct Fp2 {
  Fp c0;
  Fp c1;

  Fp2() = default;
  Fp2(const Fp& a, const Fp& b) : c0(a), c1(b) {}

  static Fp2 zero() { return {}; }
  static Fp2 one() { return {Fp::one(), Fp::zero()}; }
  static Fp2 from_u64(std::uint64_t a, std::uint64_t b) {
    return {Fp::from_u64(a), Fp::from_u64(b)};
  }

  bool is_zero() const { return c0.is_zero() && c1.is_zero(); }
  bool operator==(const Fp2&) const = default;

  Fp2 operator+(const Fp2& o) const { return {c0 + o.c0, c1 + o.c1}; }
  Fp2 operator-(const Fp2& o) const { return {c0 - o.c0, c1 - o.c1}; }
  Fp2 operator-() const { return {-c0, -c1}; }

  // Lazy Karatsuba: three double-width products accumulated unreduced,
  // one Montgomery reduction per output coefficient (docs/CRYPTO.md §6.3).
  // Defined after Fp2Wide below; bit-identical to mul_eager().
  Fp2 operator*(const Fp2& o) const;

  /// Eager Karatsuba — the pre-lazy implementation, kept as the
  /// differential oracle operator* is tested against
  /// (tests/curve_speed_test.cpp).
  Fp2 mul_eager(const Fp2& o) const {
    // (a0 + a1 i)(b0 + b1 i) = (a0b0 - a1b1) + ((a0+a1)(b0+b1) - a0b0 - a1b1) i
    const Fp v0 = c0 * o.c0;
    const Fp v1 = c1 * o.c1;
    return {v0 - v1, (c0 + c1) * (o.c0 + o.c1) - v0 - v1};
  }
  Fp2 operator*(const Fp& s) const { return {c0 * s, c1 * s}; }

  Fp2& operator+=(const Fp2& o) { return *this = *this + o; }
  Fp2& operator-=(const Fp2& o) { return *this = *this - o; }
  Fp2& operator*=(const Fp2& o) { return *this = *this * o; }

  Fp2 square() const {
    // (a0 + a1 i)^2 = (a0+a1)(a0-a1) + 2 a0 a1 i
    const Fp t = c0 * c1;
    return {(c0 + c1) * (c0 - c1), t + t};
  }
  Fp2 dbl() const { return {c0 + c0, c1 + c1}; }

  /// Complex conjugate = Frobenius x -> x^p on Fp2.
  Fp2 conjugate() const { return {c0, -c1}; }

  /// Norm a0^2 + a1^2 in Fp.
  Fp norm() const { return c0.square() + c1.square(); }

  Fp2 inverse() const {
    // 1/(a0 + a1 i) = (a0 - a1 i) / (a0^2 + a1^2)
    const Fp inv_norm = norm().inverse();
    return {c0 * inv_norm, -(c1 * inv_norm)};
  }

  Fp2 pow(const U256& exp) const {
    Fp2 acc = one();
    const unsigned n = exp.bit_length();
    for (int i = static_cast<int>(n) - 1; i >= 0; --i) {
      acc = acc.square();
      if (exp.bit(static_cast<unsigned>(i))) acc *= *this;
    }
    return acc;
  }

  /// Square root via the complex method (requires p = 3 mod 4 in the base
  /// field). Returns false when no root exists.
  bool sqrt(Fp2& out) const;

  /// Multiplication by i (the quadratic non-residue of Fp).
  Fp2 mul_by_i() const { return {-c1, c0}; }

  /// Multiplication by the twist constant xi = 9 + i by shift-and-add
  /// instead of a full Fp2 multiply: (9c0 - c1) + (c0 + 9c1) i. Ten modular
  /// additions replace three Montgomery multiplications — the cheap-xi path
  /// used throughout the Fp6/Fp12 formulas (docs/CRYPTO.md §6.3).
  Fp2 mul_by_xi() const {
    const Fp2 t8 = dbl().dbl().dbl();
    return {t8.c0 + c0 - c1, t8.c1 + c1 + c0};
  }
};

/// The sextic twist constant xi = 9 + i used throughout the BN254 tower.
Fp2 fp2_xi();

// --- lazy double-width Fp2 accumulation (docs/CRYPTO.md §6.3) -------------

/// Unreduced Fp2 value: each coefficient is a sum of double-width products
/// plus nonnegativity biases, reduced once when the accumulation is done.
struct Fp2Wide {
  FpWide c0, c1;
};

/// Wide Karatsuba product of two canonical Fp2 elements. The result lanes
/// carry biases of (1, 2) p^2-units and values below (2, 3) p^2-units —
/// the unit bookkeeping every caller's overflow bound builds on.
inline Fp2Wide fp2_wide_mul(const Fp2& a, const Fp2& b) {
  const FpWide v0 = Fp::wide_mul(a.c0, b.c0);
  const FpWide v1 = Fp::wide_mul(a.c1, b.c1);
  Fp2Wide out;
  out.c0 = v0;
  Fp::wide_sub(out.c0, v1, 1);  // a0b0 + (p^2 - a1b1)
  out.c1 = Fp::wide_mul(a.c0 + a.c1, b.c0 + b.c1);
  Fp::wide_sub(out.c1, v0, 1);
  Fp::wide_sub(out.c1, v1, 1);  // cross + (2p^2 - v0 - v1)
  return out;
}

inline void fp2_wide_add(Fp2Wide& acc, const Fp2Wide& x) {
  Fp::wide_add(acc.c0, x.c0);
  Fp::wide_add(acc.c1, x.c1);
}

/// acc -= x where x is an fp2_wide_mul result: adds the (2, 3)-unit bias
/// that dominates any such product, keeping the accumulator nonnegative.
inline void fp2_wide_sub(Fp2Wide& acc, const Fp2Wide& x) {
  Fp::wide_sub(acc.c0, x.c0, 2);
  Fp::wide_sub(acc.c1, x.c1, 3);
}

/// The one reduction per output coefficient; canonical representatives are
/// unique, so results match the eager formulas bit for bit.
inline Fp2 fp2_wide_redc(const Fp2Wide& w) {
  return {Fp::redc(w.c0), Fp::redc(w.c1)};
}

inline Fp2 Fp2::operator*(const Fp2& o) const {
  return fp2_wide_redc(fp2_wide_mul(*this, o));
}

}  // namespace peace::math
