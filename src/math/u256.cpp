#include "math/u256.hpp"

#include <algorithm>

namespace peace::math {

using u64 = std::uint64_t;
using u128 = unsigned __int128;

int cmp(const U256& a, const U256& b) {
  for (int i = 3; i >= 0; --i) {
    if (a.limb[i] < b.limb[i]) return -1;
    if (a.limb[i] > b.limb[i]) return 1;
  }
  return 0;
}

u64 add_carry(U256& out, const U256& a, const U256& b) {
  u64 carry = 0;
  for (int i = 0; i < 4; ++i) {
    const u128 sum = static_cast<u128>(a.limb[i]) + b.limb[i] + carry;
    out.limb[i] = static_cast<u64>(sum);
    carry = static_cast<u64>(sum >> 64);
  }
  return carry;
}

u64 sub_borrow(U256& out, const U256& a, const U256& b) {
  u64 borrow = 0;
  for (int i = 0; i < 4; ++i) {
    const u128 diff = static_cast<u128>(a.limb[i]) - b.limb[i] - borrow;
    out.limb[i] = static_cast<u64>(diff);
    borrow = static_cast<u64>((diff >> 64) & 1);
  }
  return borrow;
}

std::array<u64, 8> mul_wide(const U256& a, const U256& b) {
  std::array<u64, 8> out{};
  for (int i = 0; i < 4; ++i) {
    u64 carry = 0;
    for (int j = 0; j < 4; ++j) {
      const u128 cur =
          static_cast<u128>(a.limb[i]) * b.limb[j] + out[i + j] + carry;
      out[i + j] = static_cast<u64>(cur);
      carry = static_cast<u64>(cur >> 64);
    }
    out[i + 4] = carry;
  }
  return out;
}

U256 shl1(const U256& a) {
  U256 out;
  u64 carry = 0;
  for (int i = 0; i < 4; ++i) {
    out.limb[i] = a.limb[i] << 1 | carry;
    carry = a.limb[i] >> 63;
  }
  return out;
}

U256 shr1(const U256& a) {
  U256 out;
  u64 carry = 0;
  for (int i = 3; i >= 0; --i) {
    out.limb[i] = a.limb[i] >> 1 | carry << 63;
    carry = a.limb[i] & 1;
  }
  return out;
}

U256 add_mod(const U256& a, const U256& b, const U256& m) {
  U256 sum;
  const u64 carry = add_carry(sum, a, b);
  U256 reduced;
  const u64 borrow = sub_borrow(reduced, sum, m);
  // Select sum - m when the addition overflowed 2^256 or sum >= m.
  return (carry != 0 || borrow == 0) ? reduced : sum;
}

U256 sub_mod(const U256& a, const U256& b, const U256& m) {
  U256 diff;
  if (sub_borrow(diff, a, b) != 0) {
    U256 fixed;
    add_carry(fixed, diff, m);
    return fixed;
  }
  return diff;
}

U256 mul10_add(const U256& a, u64 d) {
  U256 out;
  u64 carry = d;
  for (int i = 0; i < 4; ++i) {
    const u128 cur = static_cast<u128>(a.limb[i]) * 10 + carry;
    out.limb[i] = static_cast<u64>(cur);
    carry = static_cast<u64>(cur >> 64);
  }
  if (carry != 0) throw Error("U256: decimal overflow");
  return out;
}

U256 divmod_small(const U256& a, u64 d, u64& rem) {
  if (d == 0) throw Error("U256: divide by zero");
  U256 q;
  u128 r = 0;
  for (int i = 3; i >= 0; --i) {
    const u128 cur = r << 64 | a.limb[i];
    q.limb[i] = static_cast<u64>(cur / d);
    r = cur % d;
  }
  rem = static_cast<u64>(r);
  return q;
}

U256 mod_inverse_odd(const U256& a, const U256& m) {
  if (a.is_zero() || !m.is_odd()) throw Error("mod_inverse_odd: bad input");
  // Halve x modulo m: x/2 if even, else (x + m)/2 (the add cannot overflow
  // 256 bits for a <= 255-bit modulus).
  const auto halve_mod = [&m](U256& x) {
    if (x.is_odd()) {
      U256 sum;
      if (add_carry(sum, x, m) != 0)
        throw Error("mod_inverse_odd: modulus too large");
      x = shr1(sum);
    } else {
      x = shr1(x);
    }
  };

  U256 u = a, v = m;
  U256 x1 = U256::one(), x2 = U256::zero();
  while (!(u == U256::one()) && !(v == U256::one())) {
    while (!u.is_odd()) {
      u = shr1(u);
      halve_mod(x1);
    }
    while (!v.is_odd()) {
      v = shr1(v);
      halve_mod(x2);
    }
    if (!(cmp(u, v) < 0)) {
      U256 diff;
      sub_borrow(diff, u, v);
      u = diff;
      x1 = sub_mod(x1, x2, m);
    } else {
      U256 diff;
      sub_borrow(diff, v, u);
      v = diff;
      x2 = sub_mod(x2, x1, m);
    }
    if (u.is_zero() || v.is_zero())
      throw Error("mod_inverse_odd: not coprime");
  }
  return u == U256::one() ? x1 : x2;
}

U256 U256::from_dec(std::string_view dec) {
  if (dec.empty()) throw Error("U256: empty decimal");
  U256 out;
  for (char c : dec) {
    if (c < '0' || c > '9') throw Error("U256: bad decimal digit");
    out = mul10_add(out, static_cast<u64>(c - '0'));
  }
  return out;
}

U256 U256::from_hex(std::string_view hex) {
  if (hex.empty() || hex.size() > 64) throw Error("U256: bad hex length");
  U256 out;
  for (char c : hex) {
    int v;
    if (c >= '0' && c <= '9') v = c - '0';
    else if (c >= 'a' && c <= 'f') v = c - 'a' + 10;
    else if (c >= 'A' && c <= 'F') v = c - 'A' + 10;
    else throw Error("U256: bad hex digit");
    // out = out * 16 + v
    U256 shifted;
    u64 carry = static_cast<u64>(v);
    for (int i = 0; i < 4; ++i) {
      shifted.limb[i] = out.limb[i] << 4 | carry;
      carry = out.limb[i] >> 60;
    }
    if (carry != 0) throw Error("U256: hex overflow");
    out = shifted;
  }
  return out;
}

U256 U256::from_bytes(BytesView be) {
  if (be.size() > 32) throw Error("U256: more than 32 bytes");
  U256 out;
  for (std::uint8_t b : be) {
    // out = out << 8 | b
    u64 carry = b;
    for (int i = 0; i < 4; ++i) {
      const u64 next = out.limb[i] >> 56;
      out.limb[i] = out.limb[i] << 8 | carry;
      carry = next;
    }
  }
  return out;
}

std::string U256::to_dec() const {
  if (is_zero()) return "0";
  U256 cur = *this;
  std::string out;
  while (!cur.is_zero()) {
    u64 rem;
    cur = divmod_small(cur, 10, rem);
    out.push_back(static_cast<char>('0' + rem));
  }
  std::reverse(out.begin(), out.end());
  return out;
}

std::string U256::to_hex() const {
  return peace::to_hex(to_bytes());
}

Bytes U256::to_bytes() const {
  Bytes out(32);
  for (int i = 0; i < 4; ++i)
    for (int j = 0; j < 8; ++j)
      out[31 - (i * 8 + j)] = static_cast<std::uint8_t>(limb[i] >> (8 * j));
  return out;
}

unsigned U256::bit_length() const {
  for (int i = 3; i >= 0; --i) {
    if (limb[i] != 0)
      return static_cast<unsigned>(64 * i + 64 - __builtin_clzll(limb[i]));
  }
  return 0;
}

}  // namespace peace::math
