// Pool-sharded URL scanning: splits one large revocation scan (one
// signature against many tokens) across VerifyPool workers, with
// cross-shard early exit on the first match.
//
// The verdict is bit-identical to the sequential batched scan
// (groupsig::scan_tokens): "revoked" means SOME token matches Eq.3, and
// set membership is independent of evaluation order, so sharding and early
// exit can never flip an accept/reject decision. What early exit DOES make
// timing-dependent is the amount of work performed on a revoked signature
// — op counters over a sharded scan that hits are therefore a lower bound,
// not a reproducible constant (docs/OBSERVABILITY.md §1 lists the
// exemption). Clean scans (no match) always run every token on every
// shard, so their counts stay deterministic.
//
// Sharding must only be requested from a SEQUENTIAL context: VerifyPool
// batches do not nest, so a revocation check already running on a pool
// worker passes pool == nullptr and falls back to the sequential batched
// scan. The router enforces this by wiring the pool through only on its
// batch-of-one / inline paths.
#pragma once

#include <span>

#include "groupsig/groupsig.hpp"
#include "peace/verify_pool.hpp"

namespace peace::proto {

/// URLs below this size run sequentially even when a pool is offered: the
/// per-token cost is ~2 ms, so a small scan finishes before sharding pays
/// for itself, and keeping small scans sequential keeps their op counters
/// deterministic for the pooled-equals-sequential telemetry contract.
constexpr std::size_t kMinShardedUrlScan = 256;

/// True if some token of `url` matches the signer of `sig` (i.e. the signer
/// is revoked). With a null `pool` — or a URL shorter than
/// kMinShardedUrlScan — this is exactly groupsig::scan_tokens. Otherwise
/// the URL is split into contiguous chunks fanned out over the pool; each
/// chunk runs the batched scan blockwise, polling a shared first-hit flag
/// between blocks and between hard parts so every worker stops promptly
/// once any shard has matched.
bool url_scan_revoked(const groupsig::PreparedBases& prepared,
                      const groupsig::Signature& sig,
                      std::span<const groupsig::RevocationToken> url,
                      VerifyPool* pool,
                      groupsig::OpCounters* ops = nullptr);

}  // namespace peace::proto
