#include "peace/verify_pool.hpp"

#include "obs/trace.hpp"

namespace peace::proto {

VerifyPool::VerifyPool(unsigned threads) {
  if (threads <= 1) return;
  workers_.reserve(threads - 1);
  for (unsigned i = 0; i + 1 < threads; ++i)
    workers_.emplace_back([this](std::stop_token st) { worker_loop(st); });
}

std::size_t VerifyPool::drain(Batch& batch, std::exception_ptr& error) {
  // Per-job telemetry: the span runs on whichever thread claimed the job,
  // so traces show per-worker occupancy (by tid) and each job's crypto-op
  // attribution for free. pool.* metrics describe execution shape (who ran
  // what, for how long) — they are expected to differ between pooled and
  // sequential runs, unlike the protocol counters.
  static obs::Histogram& job_hist =
      obs::Registry::global().histogram("pool.job_us");
  static obs::Counter& jobs = obs::Registry::global().counter("pool.jobs");
  std::size_t done = 0;
  for (;;) {
    const std::size_t i =
        batch.next_index.fetch_add(1, std::memory_order_relaxed);
    if (i >= batch.count) return done;
    jobs.add(1);
    obs::Span span("pool.job", "pool", &job_hist);
    span.arg("index", i);
    // Exception barrier: a throwing body (e.g. an Error escaping groupsig
    // code) must neither std::terminate a worker thread nor let run()
    // unwind while other participants still execute the body. The index
    // still counts as completed so the batch drains; the first recorded
    // error is rethrown by run() once everyone has parked.
    try {
      batch.body(i);
    } catch (...) {
      if (error == nullptr) error = std::current_exception();
    }
    ++done;
  }
}

void VerifyPool::finish(const std::shared_ptr<Batch>& batch, std::size_t done,
                        std::exception_ptr error) {
  std::lock_guard lock(mutex_);
  batch->completed += done;
  if (error != nullptr && batch->error == nullptr)
    batch->error = std::move(error);
  if (batch->completed == batch->count) cv_done_.notify_all();
}

void VerifyPool::worker_loop(std::stop_token st) {
  std::uint64_t seen = 0;
  for (;;) {
    std::shared_ptr<Batch> batch;
    {
      std::unique_lock lock(mutex_);
      cv_start_.wait(lock, st, [&] { return generation_ != seen; });
      if (st.stop_requested()) return;
      seen = generation_;
      batch = current_batch_;
    }
    // From here on only the shared Batch is touched: even if this worker is
    // descheduled and run() returns (the batch's indices all claimed by
    // others), the shared_ptr keeps this generation's state alive, and a
    // newer batch has its own next_index — a straggler can neither claim a
    // new batch's index nor invoke a destroyed body.
    std::exception_ptr error;
    const std::size_t done = drain(*batch, error);
    finish(batch, done, std::move(error));
  }
}

void VerifyPool::run(std::size_t count,
                     const std::function<void(std::size_t)>& body) {
  if (count == 0) return;
  if (workers_.empty()) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }
  static obs::Counter& batches =
      obs::Registry::global().counter("pool.batches");
  batches.add(1);
  obs::Span span("pool.batch", "pool");
  span.arg("jobs", count);
  span.arg("workers", workers_.size() + 1);
  auto batch = std::make_shared<Batch>();
  batch->body = body;  // copied: workers never see the caller's temporary
  batch->count = count;
  {
    std::lock_guard lock(mutex_);
    current_batch_ = batch;
    ++generation_;
  }
  cv_start_.notify_all();
  std::exception_ptr error;
  const std::size_t done = drain(*batch, error);
  finish(batch, done, std::move(error));
  std::unique_lock lock(mutex_);
  cv_done_.wait(lock, [&] { return batch->completed == batch->count; });
  // completed == count implies every claimed index has run and been
  // accounted; stragglers that wake later find the batch exhausted and only
  // touch its heap state, so unwinding the caller's frame now is safe.
  if (batch->error != nullptr) std::rethrow_exception(batch->error);
}

}  // namespace peace::proto
