// Back-office entities of PEACE (paper Sec. III.A / IV.A / IV.D):
//
//   NetworkOperator (NO)  — owns gamma, mints keys, provisions routers,
//                           maintains CRL/URL, audits sessions to *group*
//                           granularity only.
//   TrustedThirdParty     — stores the blinded credentials A xor x during
//                           setup; learns neither A nor x.
//   GroupManager (GM_i)   — assigns (grp_i, x_j) to its members; never
//                           holds A, so it cannot test signatures.
//   LawAuthority          — can deanonymize a session, but only with the
//                           cooperation of both NO and the right GM.
//
// The split state is the point: each class physically holds only the fields
// the paper allows it, so the privacy tests can check "who can know what"
// against real object state instead of against claims.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "peace/messages.hpp"

namespace peace::persist {
class ControlPlane;
}  // namespace peace::persist

namespace peace::proto {

using groupsig::GroupPublicKey;
using groupsig::MemberKey;
using groupsig::RevocationToken;

/// Public system parameters every participant holds.
struct SystemParams {
  GroupPublicKey gpk;
  G1 network_public_key;  // NPK, verifies certificates and CRL/URL
};

/// Stretches the member secret x to the credential length with a KDF; the
/// paper blinds with "A xor x" and a footnote about mismatched lengths —
/// here x (32 bytes) is shorter than a serialized A (33 bytes), so the
/// principled equivalent is XOR with KDF(x). TTP still learns nothing about
/// A or x; the user, knowing x, strips the pad.
Bytes blind_credential(const G1& a, const Fr& x);
G1 unblind_credential(BytesView blinded, const Fr& x);

class TrustedThirdParty {
 public:
  /// Setup step 7: NO deposits {[i,j], A xor x} (signature checked against
  /// NPK for non-repudiation); TTP signs a receipt.
  EcdsaSignature deposit(const KeyIndex& idx, Bytes blinded_credential,
                         const EcdsaSignature& no_signature, const G1& npk,
                         crypto::Drbg& rng);

  /// Setup user-join step 2: on GM_i's request, deliver the blinded
  /// credential for `idx` to user `uid` (recording the uid mapping).
  Bytes deliver(const KeyIndex& idx, const std::string& uid);

  /// Creates the receipt-signing key up front (normally lazy on the first
  /// deposit). The durable control plane calls this at create time so the
  /// key lands in the genesis snapshot and replay never draws randomness.
  void ensure_signing_key(crypto::Drbg& rng);

  /// Full-state image for operator snapshots (docs/ARCHITECTURE.md §8).
  Bytes state_bytes() const;
  static TrustedThirdParty from_state(BytesView data);

  // --- knowledge introspection (used by the privacy tests) ---
  std::size_t stored_credentials() const { return store_.size(); }
  /// TTP knows which uid received which blinded blob...
  std::optional<std::string> uid_for_index(const KeyIndex& idx) const;
  /// ...but structurally holds no A, x, grp, or gamma: its whole state is
  /// this blinded map.
  const std::map<std::pair<GroupId, std::uint32_t>, Bytes>& blinded_store()
      const {
    return store_;
  }

 private:
  friend class persist::ControlPlane;
  /// WAL replay: re-inserts a deposit whose verification already happened
  /// when the record was first written.
  void replay_deposit(const KeyIndex& idx, Bytes blinded);
  void replay_deliver(const KeyIndex& idx, const std::string& uid);

  curve::EcdsaKeyPair signing_key_;  // for receipts
  bool has_key_ = false;
  std::map<std::pair<GroupId, std::uint32_t>, Bytes> store_;
  std::map<std::pair<GroupId, std::uint32_t>, std::string> delivered_to_;
};

class GroupManager {
 public:
  GroupManager(GroupId id, std::string name) : id_(id), name_(std::move(name)) {}

  GroupId id() const { return id_; }
  const std::string& name() const { return name_; }

  /// Setup step 5: receives {[i,j], grp_i, x_j} from NO.
  void receive_allocation(const Fr& grp,
                          std::vector<std::pair<KeyIndex, Fr>> keys);

  /// Membership renewal (paper III.A): discards unassigned keys from the
  /// previous era and installs a fresh allocation under the rotated master
  /// key. Historical uid mappings are retained for law-authority traces of
  /// archived sessions.
  void rekey(const Fr& grp, std::vector<std::pair<KeyIndex, Fr>> keys);

  /// What GM hands the user at enrollment (plus it triggers TTP delivery).
  struct Enrollment {
    KeyIndex index;
    Fr grp;
    Fr x;
    Bytes blinded_credential;  // fetched from TTP on the user's behalf
  };

  /// Consumes one unassigned key for `uid`. Throws when exhausted.
  Enrollment enroll(const std::string& uid, TrustedThirdParty& ttp);

  /// Law-authority step: map a key index back to the member uid.
  std::optional<std::string> uid_for_index(const KeyIndex& idx) const;

  /// Non-repudiation (paper IV.A): the enrolling user signs what they
  /// received from GM and TTP; the GM verifies and archives the receipt so
  /// a later trace cannot be repudiated ("uid_j also signed on the
  /// messages ... as the proof of receipt").
  static Bytes enrollment_receipt_payload(const Enrollment& enrollment);
  void record_receipt(const Enrollment& enrollment, const G1& user_public_key,
                      const EcdsaSignature& signature);

  struct EnrollmentReceipt {
    G1 user_public_key;
    EcdsaSignature signature;
  };
  std::optional<EnrollmentReceipt> receipt_for(const KeyIndex& idx) const;

  std::size_t keys_remaining() const;

  // GM's structural knowledge: (uid, grp, x) — there is no A anywhere in
  // this class.
  const Fr& group_secret() const { return grp_; }

  /// Receipts currently resident in memory (evicted ones stay in the
  /// operator's durable log and are fetched back on demand by the control
  /// plane — see DurableControlPlane::receipt_for).
  std::size_t receipts_in_memory() const { return receipts_.size(); }

  /// Full-state image for operator snapshots (docs/ARCHITECTURE.md §8).
  Bytes state_bytes() const;
  static GroupManager from_state(BytesView data);

 private:
  friend class persist::ControlPlane;
  /// WAL replay: re-assigns `idx` to `uid` without re-drawing anything.
  void replay_enroll(const KeyIndex& idx, const std::string& uid);
  /// Inserts a receipt that was signature-checked when first recorded.
  void store_receipt(const KeyIndex& idx, EnrollmentReceipt receipt);
  /// Evicts oldest-first until at most `cap` receipts stay resident;
  /// returns how many were dropped (they remain in the durable log).
  std::size_t evict_receipts_over(std::size_t cap);

  GroupId id_;
  std::string name_;
  Fr grp_;
  std::vector<std::pair<KeyIndex, Fr>> unassigned_;
  std::map<std::pair<GroupId, std::uint32_t>, std::string> assigned_;
  std::map<std::pair<GroupId, std::uint32_t>, Fr> assigned_x_;
  std::map<std::pair<GroupId, std::uint32_t>, EnrollmentReceipt> receipts_;
  /// Insertion order of receipts_, oldest first — the spill policy.
  std::vector<std::pair<GroupId, std::uint32_t>> receipt_order_;
};

/// What NO's audit of a session yields (paper IV.D): the credential and the
/// user *group* — nonessential attribute information only; never a uid.
struct AuditResult {
  RevocationToken token;
  GroupId group_id = 0;
  KeyIndex index;
  std::size_t tokens_scanned = 0;  // instrumentation for E7
};

class NetworkOperator {
 public:
  explicit NetworkOperator(crypto::Drbg rng);

  SystemParams params() const;
  const G1& npk() const { return nsk_.public_key(); }
  const GroupPublicKey& gpk() const { return issuer_.gpk(); }

  /// Setup steps 2-7 for one user group: draws grp_i, issues `num_keys`
  /// SDH tuples, hands (grp, x) to the GM and blinded A's to the TTP, and
  /// records grt entries. Returns the freshly allocated GroupManager.
  GroupManager register_group(const std::string& name, std::size_t num_keys,
                              TrustedThirdParty& ttp);

  /// Periodic membership renewal / "group public key update" (paper III.A,
  /// V.A): rotates the master secret gamma. Every outstanding credential
  /// dies with the old gpk (revoked users "do not have any group private
  /// key currently in use"); the URL resets to empty for the new era. The
  /// old era's (gpk, grt) pair is archived so past sessions stay auditable.
  void rotate_master_key(Timestamp now);

  /// Re-provisions an existing group with `num_keys` fresh credentials
  /// under the current master key (member numbering continues, so key
  /// indices remain unique across eras).
  void reissue_group(GroupManager& gm, std::size_t num_keys,
                     TrustedThirdParty& ttp);

  /// How many key eras exist (1 + number of rotations).
  std::size_t era_count() const { return 1 + past_eras_.size(); }

  struct RouterProvision {
    curve::EcdsaKeyPair keypair;
    RouterCertificate certificate;
  };
  RouterProvision provision_router(RouterId id, Timestamp expires_at);

  /// Dynamic revocation (paper III.A): publishes the member's token on the
  /// URL / the router id on the CRL; lists are versioned and signed, and
  /// every mutation also emits a hash-chained RLDelta (below) so routers
  /// can advance in O(|change|) instead of refetching full lists.
  /// Re-revoking an already-listed key or router is a no-op (the delta
  /// chain stays duplicate-free by construction).
  void revoke_user_key(const KeyIndex& idx, Timestamp now);
  void revoke_router(RouterId id, Timestamp now);

  SignedRevocationList current_url() const { return url_; }
  SignedRevocationList current_crl() const { return crl_; }

  // --- delta revocation distribution (the metro-scale path) --------------

  /// Every delta of `kind` with version > after_version, oldest first —
  /// what a straggler needs to catch up without a full resync.
  std::vector<RLDelta> deltas_since(ListKind kind,
                                    std::uint64_t after_version) const;

  /// One announcement carrying the back-log past the given versions (CRL
  /// deltas first, then URL; each oldest-first, the order receivers apply).
  RLDeltaAnnounce make_delta_announcement(std::uint64_t crl_after,
                                          std::uint64_t url_after) const;

  /// Resync service: answers a router whose delta chain broke with the
  /// authoritative full list for the requested kind.
  RLResyncResponse handle_resync(const RLResyncRequest& request) const;

  /// URL size control (Sec. V.C: "PEACE can proactively control the size
  /// of URL"): every verification pays 2 pairings per URL token, so once
  /// the list passes `threshold` the economical move is a master-key
  /// rotation (which starts the new era with an empty URL). Returns true
  /// when that point is reached; rotate_master_key() is the action.
  bool url_needs_compaction(std::size_t threshold) const {
    return url_entries_.size() >= threshold;
  }

  /// Paper IV.D audit protocol: scan grt for the token encoded in the
  /// logged (M.2). Returns the responsible *group*, never a uid.
  std::optional<AuditResult> audit(const AccessRequest& m2) const;

  /// NO-side half of the law-authority trace: token -> [i, j].
  std::optional<KeyIndex> index_of_token(const G1& a) const;

  std::size_t grt_size() const { return grt_.size(); }

  struct GrtEntry {
    RevocationToken token;
    GroupId group_id;
    KeyIndex index;
  };
  const std::vector<GrtEntry>& grt_entries() const { return grt_; }

  // --- archived-era introspection (spill / audit-index path) -------------
  std::size_t archived_era_count() const { return past_eras_.size(); }
  const GroupPublicKey& archived_gpk(std::size_t era) const;
  bool era_spilled(std::size_t era) const;
  /// GRT entries the era holds (resident + spilled).
  std::size_t era_token_count(std::size_t era) const;
  /// Drops the in-memory GRT of archived era `era` (the control plane
  /// spills oldest rotations first); the tokens stay recoverable from the
  /// durable log. Returns the number of entries freed.
  std::size_t spill_archived_era(std::size_t era);

  /// Full-state image for operator snapshots (docs/ARCHITECTURE.md §8).
  Bytes state_bytes() const;
  static NetworkOperator from_state(BytesView data);

 private:
  friend class persist::ControlPlane;
  NetworkOperator(crypto::Drbg rng, groupsig::Issuer issuer,
                  curve::EcdsaKeyPair nsk)
      : rng_(std::move(rng)), issuer_(std::move(issuer)), nsk_(std::move(nsk)) {}

  // --- WAL replay (results were logged; nothing is re-drawn) -------------
  /// Registration and reissue both reduce to: install the group secret,
  /// advance member numbering, and append the recorded GRT entries.
  void replay_issue(GroupId gid, const Fr& grp, std::uint32_t next_member_after,
                    std::vector<GrtEntry> entries);
  /// Archives the current era under the recorded successor gamma; the
  /// recorded remove-all URL delta then lands via replay_revocation.
  void replay_rotation(const Fr& new_gamma);
  /// Re-applies a recorded revocation delta (URL or CRL) bit-identically:
  /// the reconstructed list reuses the delta's full_signature.
  void replay_revocation(const RLDelta& delta);
  void restore_rng(BytesView state);

  SignedRevocationList sign_list(std::vector<Bytes> entries,
                                 std::uint64_t version, Timestamp now) const;
  /// Chains one delta from `prev` to the just-installed successor of
  /// `kind`: base_hash binds the predecessor payload, full_signature reuses
  /// the successor list's own NO signature (so a delta-applied
  /// reconstruction is bit-identical to the full list, signature included).
  void emit_delta(ListKind kind, const SignedRevocationList& prev,
                  const SignedRevocationList& next, std::vector<Bytes> removed,
                  std::vector<Bytes> added);

  mutable crypto::Drbg rng_;
  groupsig::Issuer issuer_;
  curve::EcdsaKeyPair nsk_;

  /// Issues `num_keys` credentials for `gid` under the current master key,
  /// distributing shares to the GM batch and the TTP.
  std::vector<std::pair<KeyIndex, Fr>> issue_batch(GroupId gid, const Fr& grp,
                                                   std::size_t num_keys,
                                                   TrustedThirdParty& ttp);

  std::vector<GrtEntry> grt_;
  struct Era {
    GroupPublicKey gpk;
    std::vector<GrtEntry> grt;
    /// True once the entries were dropped from memory; the durable log
    /// still holds them and the control plane scans them from disk.
    bool spilled = false;
    std::size_t total = 0;  // entry count including spilled ones
  };
  std::vector<Era> past_eras_;
  std::unordered_map<GroupId, Fr> group_secrets_;
  std::unordered_map<GroupId, std::uint32_t> next_member_;
  GroupId next_group_id_ = 1;

  std::vector<Bytes> url_entries_;
  std::vector<Bytes> crl_entries_;
  SignedRevocationList url_;
  SignedRevocationList crl_;
  std::vector<RLDelta> url_deltas_;  // complete chains, oldest first
  std::vector<RLDelta> crl_deltas_;
};

/// The trace of paper IV.D ("revocable user anonymity against law
/// authority"): needs *both* NO (token -> index) and the right GM
/// (index -> uid). Neither alone suffices — the tests check this.
class LawAuthority {
 public:
  struct TraceResult {
    std::string uid;
    GroupId group_id;
    KeyIndex index;
    /// Non-repudiation evidence: the GM holds the user's signed receipt
    /// for this credential (verified at archive time), so the traced user
    /// cannot deny having received gsk[i, j].
    bool receipt_on_file = false;
  };

  static std::optional<TraceResult> trace(
      const NetworkOperator& no,
      const std::vector<const GroupManager*>& group_managers,
      const AccessRequest& m2);
};

}  // namespace peace::proto
