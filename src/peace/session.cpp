#include "peace/session.hpp"

#include "common/serde.hpp"
#include "crypto/aead.hpp"
#include "crypto/gcm.hpp"
#include "crypto/hmac.hpp"

namespace peace::proto {

namespace {

Bytes dh_ikm(const G1& shared_dh) { return curve::g1_to_bytes(shared_dh); }

Bytes derive(const G1& shared_dh, BytesView session_id, std::string_view label,
             std::size_t len) {
  return crypto::hkdf(session_id, dh_ikm(shared_dh), as_bytes(label), len);
}

Bytes seq_nonce(std::uint64_t seq) {
  Bytes nonce(crypto::kAeadNonceSize, 0);
  for (int i = 0; i < 8; ++i)
    nonce[4 + i] = static_cast<std::uint8_t>(seq >> (56 - 8 * i));
  return nonce;
}

}  // namespace

Session Session::establish(const G1& shared_dh, BytesView session_id,
                           Role role, CipherSuite suite) {
  Session s;
  s.id_.assign(session_id.begin(), session_id.end());
  s.suite_ = suite;
  // Suite-specific key length and HKDF labels, so switching suites can
  // never reuse key material.
  const bool aes = suite == CipherSuite::kAes128Gcm;
  const std::size_t klen = aes ? crypto::kGcmKeySize : 32;
  const char* init_label =
      aes ? "peace/session/aes/initiator" : "peace/session/initiator";
  const char* resp_label =
      aes ? "peace/session/aes/responder" : "peace/session/responder";
  const Bytes ki = derive(shared_dh, session_id, init_label, klen);
  const Bytes kr = derive(shared_dh, session_id, resp_label, klen);
  s.mac_key_ = derive(shared_dh, session_id, "peace/session/mac", 32);
  if (role == Role::kInitiator) {
    s.send_key_ = ki;
    s.recv_key_ = kr;
  } else {
    s.send_key_ = kr;
    s.recv_key_ = ki;
  }
  return s;
}

std::optional<DataFrame> Session::try_seal(BytesView payload) {
  // The AEAD nonce is a function of the sequence number alone; wrapping the
  // counter would repeat a nonce under the same key, which breaks both
  // suites catastrophically. Refuse rather than wrap.
  if (send_seq_ == kSeqExhausted) return std::nullopt;
  DataFrame frame;
  frame.session_id = id_;
  frame.seq = send_seq_++;
  // Bind session id and sequence number as AAD so a frame cannot be
  // replayed into another session or position.
  Writer aad;
  aad.bytes(id_);
  aad.u64(frame.seq);
  frame.ciphertext =
      suite_ == CipherSuite::kAes128Gcm
          ? crypto::aes_gcm_seal(send_key_, seq_nonce(frame.seq), aad.data(),
                                 payload)
          : crypto::aead_seal(send_key_, seq_nonce(frame.seq), aad.data(),
                              payload);
  return frame;
}

DataFrame Session::seal(BytesView payload) {
  auto frame = try_seal(payload);
  if (!frame.has_value())
    throw Error("session: send sequence space exhausted");
  return *std::move(frame);
}

std::optional<Bytes> Session::open(const DataFrame& frame) {
  if (frame.session_id != id_) return std::nullopt;
  if (frame.seq < next_recv_seq_) return std::nullopt;  // replay/reorder
  Writer aad;
  aad.bytes(id_);
  aad.u64(frame.seq);
  auto plain = suite_ == CipherSuite::kAes128Gcm
                   ? crypto::aes_gcm_open(recv_key_, seq_nonce(frame.seq),
                                          aad.data(), frame.ciphertext)
                   : crypto::aead_open(recv_key_, seq_nonce(frame.seq),
                                       aad.data(), frame.ciphertext);
  if (plain.has_value()) next_recv_seq_ = frame.seq + 1;
  return plain;
}

Bytes Session::mac(BytesView data) const {
  return crypto::hmac_sha256(mac_key_, data);
}

bool Session::check_mac(BytesView data, BytesView tag) const {
  return ct_equal(mac(data), tag);
}

Bytes confirm_seal(const G1& shared_dh, BytesView session_id,
                   BytesView payload) {
  const Bytes key = derive(shared_dh, session_id, "peace/confirm", 32);
  return crypto::aead_seal(key, Bytes(crypto::kAeadNonceSize, 0), session_id,
                           payload);
}

std::optional<Bytes> confirm_open(const G1& shared_dh, BytesView session_id,
                                  BytesView ciphertext) {
  const Bytes key = derive(shared_dh, session_id, "peace/confirm", 32);
  return crypto::aead_open(key, Bytes(crypto::kAeadNonceSize, 0), session_id,
                           ciphertext);
}

}  // namespace peace::proto
