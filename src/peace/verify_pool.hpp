// Fixed worker pool for pairing-heavy batch work. Shared by the router's
// M.2 pipeline and the user's peer-handshake (M~.1/M~.2) batch path; its
// batches are designed so pooled results stay bit-identical to sequential
// execution regardless of thread count.
//
// The pool composes with randomized batch verification
// (groupsig::BatchVerifier, ProtocolConfig::batch_verify): the
// embarrassingly-parallel BatchVerifier::prepare(i) calls fan out here,
// while the order-sensitive combined checks and bisection stay on the
// calling thread (BatchVerifier::finalize is sequential by contract).
// Threading model of both callers: a sequential precheck pass feeds the
// pool, and a sequential in-order apply pass consumes its results — all
// rng draws and state mutation happen in the sequential passes, which is
// what keeps results independent of the worker count.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace peace::proto {

/// A fixed pool of std::jthread workers that executes indexed batch jobs.
/// Index distribution is a single atomic fetch_add over [0, count) — no
/// per-job queue nodes or locks on the hot path; the mutex/condvar pair is
/// only used to park idle workers between batches and to signal completion.
/// The calling thread participates in the batch, so a pool built with
/// `threads` runs at most `threads` jobs concurrently.
class VerifyPool {
 public:
  /// `threads` <= 1 spawns no workers: run() then executes inline.
  explicit VerifyPool(unsigned threads);
  VerifyPool(const VerifyPool&) = delete;
  VerifyPool& operator=(const VerifyPool&) = delete;

  unsigned threads() const {
    return static_cast<unsigned>(workers_.size()) + 1;
  }

  /// Invokes body(i) for every i in [0, count), distributing indices over
  /// the workers plus the calling thread; returns once all completed.
  /// `body` must tolerate concurrent invocation (distinct indices). If any
  /// invocation throws, every remaining index still runs and the first
  /// exception (in completion order) is rethrown here after the batch has
  /// fully drained — run() never returns or throws mid-batch.
  void run(std::size_t count, const std::function<void(std::size_t)>& body);

 private:
  /// Per-batch state, heap-allocated and shared with every worker that wakes
  /// for it. A worker that reads the batch for generation N but is
  /// descheduled until generation N+1 has been published only ever touches
  /// its own (kept-alive) Batch — never a newer batch's indices or a
  /// destroyed caller frame.
  struct Batch {
    std::function<void(std::size_t)> body;
    std::size_t count = 0;
    std::atomic<std::size_t> next_index{0};
    std::size_t completed = 0;          // guarded by the pool mutex
    std::exception_ptr error;           // first failure; guarded by mutex
  };

  void worker_loop(std::stop_token st);
  /// Claims and runs indices until the batch is exhausted; returns how many
  /// this thread completed. Catches per-index exceptions into `error`.
  std::size_t drain(Batch& batch, std::exception_ptr& error);
  /// Folds one participant's completions (and first error) into the batch
  /// under the pool mutex; signals cv_done_ when the batch fully drains.
  void finish(const std::shared_ptr<Batch>& batch, std::size_t done,
              std::exception_ptr error);

  std::mutex mutex_;
  std::condition_variable_any cv_start_;
  std::condition_variable cv_done_;
  std::uint64_t generation_ = 0;  // bumps once per batch; wakes workers
  std::shared_ptr<Batch> current_batch_;  // guarded by mutex_
  std::vector<std::jthread> workers_;
};

}  // namespace peace::proto
