#include "peace/url_scan.hpp"

#include <algorithm>
#include <atomic>
#include <vector>

namespace peace::proto {

namespace {

/// Tokens per TokenScan block inside one shard. Each block pays one shared
/// e(-v, T_hat) Miller loop and one batched easy-part inversion on top of
/// its per-token work (~2 ms/token), so at 64 the block overhead is under
/// 2%, while the first-hit flag still gets polled at block boundaries —
/// and between individual Miller loops and hard parts within a block — so
/// a worker abandons a decided scan within a couple of milliseconds.
constexpr std::size_t kScanBlock = 64;

}  // namespace

bool url_scan_revoked(const groupsig::PreparedBases& prepared,
                      const groupsig::Signature& sig,
                      std::span<const groupsig::RevocationToken> url,
                      VerifyPool* pool, groupsig::OpCounters* ops) {
  if (pool == nullptr || pool->threads() <= 1 ||
      url.size() < kMinShardedUrlScan) {
    return groupsig::scan_tokens(prepared, sig, url, ops) !=
           groupsig::TokenScan::npos;
  }

  const std::size_t shards =
      std::min<std::size_t>(pool->threads(),
                            (url.size() + kScanBlock - 1) / kScanBlock);
  std::atomic<bool> hit{false};
  // Per-shard counters, merged in shard order after the batch: the merge
  // order is deterministic, though on a revoked signature the counts
  // themselves depend on how quickly the other shards observed the flag.
  std::vector<groupsig::OpCounters> shard_ops(shards);
  pool->run(shards, [&](std::size_t s) {
    const std::size_t begin = url.size() * s / shards;
    const std::size_t end = url.size() * (s + 1) / shards;
    groupsig::OpCounters* local = ops != nullptr ? &shard_ops[s] : nullptr;
    for (std::size_t b = begin; b < end; b += kScanBlock) {
      groupsig::TokenScan scan(prepared, sig, local);
      const std::size_t block_end = std::min(end, b + kScanBlock);
      for (std::size_t i = b; i < block_end; ++i) {
        if (hit.load(std::memory_order_relaxed)) return;
        scan.add(url[i]);
      }
      if (scan.first_match(&hit) != groupsig::TokenScan::npos) {
        hit.store(true, std::memory_order_relaxed);
        return;
      }
      if (hit.load(std::memory_order_relaxed)) return;
    }
  });
  if (ops != nullptr)
    for (const groupsig::OpCounters& so : shard_ops) ops->merge(so);
  return hit.load(std::memory_order_relaxed);
}

}  // namespace peace::proto
