#include "peace/router.hpp"

#include "common/serde.hpp"
#include "crypto/sha256.hpp"
#include "curve/hash_to_curve.hpp"
#include "obs/sec_event.hpp"
#include "obs/trace.hpp"
#include "peace/url_scan.hpp"

namespace peace::proto {

using curve::Bn254;
using curve::g1_to_bytes;
using curve::random_fr;

namespace {

/// Confirm-cache key: the SHA-256 of a frame's full wire bytes, so only a
/// byte-identical retransmission ever matches.
std::string wire_key(const Bytes& wire) {
  return to_hex(crypto::Sha256::hash(wire));
}

// SecEvent auth_reject detail codes (docs/OBSERVABILITY.md §4.1). The
// emissions are observers riding the existing rejection counters: every
// one happens in a sequential pass, so per-kind counts are identical
// between pooled and sequential verification.
constexpr std::uint64_t kRejectUnknownBeacon = 1;
constexpr std::uint64_t kRejectStale = 2;
constexpr std::uint64_t kRejectPuzzle = 3;
constexpr std::uint64_t kRejectBadSignature = 4;
// replay_detected detail codes: where in the pipeline the cache hit.
constexpr std::uint64_t kReplayPrecheck = 1;
constexpr std::uint64_t kReplayInBatch = 2;

}  // namespace

MeshRouter::MeshRouter(RouterId id, curve::EcdsaKeyPair keypair,
                       RouterCertificate certificate, SystemParams params,
                       crypto::Drbg rng, ProtocolConfig config,
                       std::shared_ptr<revoke::SharedRevocationState> revocation)
    : id_(id),
      keypair_(std::move(keypair)),
      certificate_(std::move(certificate)),
      params_(std::move(params)),
      pgpk_(params_.gpk),
      rng_(std::move(rng)),
      config_(config),
      batch_salt_(rng_.bytes(32)),
      revocation_(std::move(revocation)) {
  if (revocation_ == nullptr)
    revocation_ = std::make_shared<revoke::SharedRevocationState>(
        params_.network_public_key);
  if (config_.verify_threads > 1)
    pool_ = std::make_unique<VerifyPool>(config_.verify_threads);
}

void MeshRouter::install_revocation_lists(const SignedRevocationList& crl,
                                          const SignedRevocationList& url) {
  revocation_->install_full(crl, url);
}

std::vector<RLResyncRequest> MeshRouter::handle_rl_announce(
    const RLDeltaAnnounce& ann) {
  bool resync[2] = {false, false};
  for (const RLDelta& delta : ann.deltas) {
    switch (revocation_->apply_delta(delta)) {
      case revoke::DeltaResult::kApplied:
        ++stats_.rl_deltas_applied;
        break;
      case revoke::DeltaResult::kStale:
        ++stats_.rl_deltas_ignored;
        break;
      case revoke::DeltaResult::kGap:
        // Possibly healed by a later delta in this very announcement (they
        // arrive oldest-first); only ask for a resync if still behind after
        // the whole batch.
        resync[static_cast<int>(delta.kind)] = true;
        break;
      default:
        ++stats_.rl_deltas_rejected;
        break;
    }
  }
  std::vector<RLResyncRequest> requests;
  const auto still_behind = [&](ListKind kind, std::uint64_t have) {
    if (!resync[static_cast<int>(kind)]) return;
    std::uint64_t newest = 0;
    for (const RLDelta& d : ann.deltas)
      if (d.kind == kind && d.version > newest) newest = d.version;
    if (have >= newest) return;  // a later delta in the batch healed the gap
    ++stats_.rl_resyncs_requested;
    requests.push_back(RLResyncRequest{kind, have});
  };
  still_behind(ListKind::kCrl, revocation_->crl_version());
  still_behind(ListKind::kUrl, revocation_->url_version());
  return requests;
}

void MeshRouter::handle_rl_resync(const RLResyncResponse& resp) {
  if (revocation_->install_one(resp.kind, resp.full) ==
      revoke::RevocationStore::InstallResult::kInstalled)
    ++stats_.rl_resyncs_completed;
}

void MeshRouter::set_revocation_epoch(groupsig::Epoch epoch) {
  revocation_->set_epoch(params_.gpk, epoch);
}

void MeshRouter::set_under_attack(bool attacked,
                                  std::uint8_t difficulty_bits) {
  puzzle_difficulty_ = attacked ? difficulty_bits : 0;
}

BeaconMessage MeshRouter::make_beacon(Timestamp now) {
  BeaconState state;
  state.g = Bn254::get().g1_gen * random_fr(rng_);
  state.r_r = random_fr(rng_);
  state.ts = now;

  BeaconMessage beacon;
  beacon.router_id = id_;
  beacon.g = state.g;
  beacon.g_rr = state.g * state.r_r;
  beacon.ts1 = now;
  beacon.signature = keypair_.sign(beacon.signed_payload(), rng_);
  beacon.certificate = certificate_;
  const auto revocation = revocation_->snapshot();
  beacon.crl = revocation->crl;
  beacon.url = revocation->url;
  if (puzzle_difficulty_ > 0) {
    puzzle_nonce_ = rng_.bytes(16);
    beacon.puzzle = make_puzzle(puzzle_nonce_, puzzle_difficulty_);
  }

  state.g_rr_bytes = g1_to_bytes(beacon.g_rr);
  recent_beacons_.push_front(std::move(state));
  while (recent_beacons_.size() > config_.beacon_history)
    recent_beacons_.pop_back();
  ++stats_.beacons_sent;
  return beacon;
}

std::optional<MeshRouter::AccessOutcome> MeshRouter::handle_access_request(
    const AccessRequest& m2, Timestamp now) {
  return std::move(handle_access_requests({&m2, 1}, now).front());
}

/// One request that survived the precheck pass, awaiting verification.
struct MeshRouter::PendingVerify {
  std::size_t index;            // position in the input batch / results
  const AccessRequest* m2;
  const BeaconState* beacon;
  Bytes sid;
  std::string sid_hex;
  /// Same sid as an earlier in-batch entry: verification is deferred to the
  /// apply pass (sequentially) so that, exactly as in sequential
  /// processing, it is skipped when the earlier entry was accepted and
  /// performed when it was not.
  bool deferred = false;
  bool sig_ok = false;
  /// Rejected by the pooled batch check and pinpointed by bisection — the
  /// attribution behind the batch_forgery_attributed event.
  bool batch_attributed = false;
  bool revoked = false;
  groupsig::OpCounters ops;
};

std::vector<std::optional<MeshRouter::AccessOutcome>>
MeshRouter::handle_access_requests(std::span<const AccessRequest> batch,
                                   Timestamp now) {
  std::vector<std::optional<AccessOutcome>> results(batch.size());

  // Telemetry (observer only — records durations and op attribution, never
  // touches verdicts): one span for the whole M.2 batch, amortised per
  // request into router.handshake_us at close.
  static obs::Histogram& batch_hist =
      obs::Registry::global().histogram("router.m2_batch_us");
  obs::Span span("router.m2_batch", "handshake", &batch_hist);
  span.arg("batch_size", batch.size());

  // Idempotent resend: a byte-identical retransmission of an *accepted* M.2
  // (its M.3 was lost on the air) gets the cached M.3 back — no new
  // session, no rng draw, no pairing work, no counter but confirms_resent.
  const auto resend_cached = [&](const AccessRequest& m2,
                                 const Bytes& sid) -> std::optional<AccessOutcome> {
    if (!config_.idempotent_resend) return std::nullopt;
    const auto it = confirm_cache_.find(wire_key(m2.to_bytes()));
    if (it == confirm_cache_.end()) return std::nullopt;
    ++stats_.confirms_resent;
    return AccessOutcome{AccessConfirm::from_bytes(it->second), sid};
  };

  // Pass 1 (sequential, input order): the cheap gates — beacon lookup,
  // freshness, replay cache, puzzle — exactly as the sequential pipeline
  // runs them, so rejection counters are bumped in the same order.
  std::vector<PendingVerify> pending;
  pending.reserve(batch.size());
  std::unordered_set<std::string> sids_in_batch;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const AccessRequest& m2 = batch[i];
    ++stats_.requests_received;

    // Step 3.1: the request must target one of our recent beacons...
    const Bytes g_rr_bytes = g1_to_bytes(m2.g_rr);
    const BeaconState* beacon = nullptr;
    for (const BeaconState& b : recent_beacons_) {
      if (b.g_rr_bytes == g_rr_bytes) {
        beacon = &b;
        break;
      }
    }
    if (beacon == nullptr) {
      ++stats_.rejected_unknown_beacon;
      obs::sec_emit(obs::SecEventKind::kAuthReject, now, id_,
                    kRejectUnknownBeacon);
      continue;
    }
    // ...and carry a fresh timestamp.
    const Timestamp age = now >= m2.ts2 ? now - m2.ts2 : m2.ts2 - now;
    if (age > config_.replay_window_ms) {
      ++stats_.rejected_stale;
      obs::sec_emit(obs::SecEventKind::kAuthReject, now, id_, kRejectStale);
      continue;
    }
    // Replay cache on the session identifier.
    Bytes sid = session_id_from(m2.g_rr, m2.g_rj);
    std::string sid_hex = to_hex(sid);
    if (seen_requests_.contains(sid_hex)) {
      if (auto resent = resend_cached(m2, sid); resent.has_value()) {
        results[i] = std::move(resent);
        continue;
      }
      ++stats_.rejected_replay;
      obs::sec_emit(obs::SecEventKind::kReplayDetected, now, id_,
                    kReplayPrecheck);
      continue;
    }

    // DoS defence: the cheap puzzle check gates the expensive pairing work.
    if (puzzle_difficulty_ > 0) {
      if (!m2.puzzle_solution.has_value() ||
          !verify_puzzle(
              PuzzleChallenge{m2.puzzle_solution->server_nonce,
                              puzzle_difficulty_},
              *m2.puzzle_solution, g1_to_bytes(m2.g_rj)) ||
          !ct_equal(m2.puzzle_solution->server_nonce, puzzle_nonce_)) {
        ++stats_.rejected_puzzle;
        obs::sec_emit(obs::SecEventKind::kAuthReject, now, id_, kRejectPuzzle);
        continue;
      }
    }

    PendingVerify pv;
    pv.index = i;
    pv.m2 = &m2;
    pv.beacon = beacon;
    pv.deferred = !sids_in_batch.insert(sid_hex).second;
    pv.sid = std::move(sid);
    pv.sid_hex = std::move(sid_hex);
    pending.push_back(std::move(pv));
  }

  // Pass 2 (parallel): steps 3.2 + 3.3 — the pairing-heavy work — fanned
  // out over the pool. One snapshot is loaded for the whole batch: every
  // job (on any worker) verifies against the same immutable revocation
  // view, so a concurrent delta publish can never split a batch. Jobs touch
  // only their own PendingVerify entry and shared const state (pgpk_, the
  // snapshot), so no synchronization beyond the pool's own is needed.
  const auto revocation = revocation_->snapshot();
  std::vector<PendingVerify*> jobs;
  jobs.reserve(pending.size());
  for (PendingVerify& pv : pending)
    if (!pv.deferred) jobs.push_back(&pv);

  // Cross-request scan batching (still sequential — the pool has not been
  // fed yet): every epoch-mode request whose epoch the snapshot index does
  // NOT cover will fall back to a URL scan, and its bases depend only on
  // (gpk, epoch). Derive each distinct such epoch's PreparedBases once,
  // here, so the pooled revocation checks share them read-only instead of
  // re-deriving per message. Epoch-0 requests keep per-message bases by
  // design (that is what makes them unlinkable), derived on the worker.
  if (!revocation->url_tokens.empty()) {
    for (PendingVerify& pv : pending) {
      const groupsig::Epoch epoch = pv.m2->signature.epoch;
      if (epoch == 0) continue;
      if (revocation->index != nullptr &&
          revocation->index->epoch() == epoch)
        continue;  // answered in O(1); no scan bases needed
      if (epoch_bases_.contains(epoch)) continue;
      if (epoch_bases_.size() >= kEpochBasesCacheCap) epoch_bases_.clear();
      // Epoch-mode bases ignore the message (bases_seed binds only
      // (gpk, epoch) when epoch != 0), so any request of the epoch works
      // as the derivation template. Attributed to the request that
      // triggered the fill, like every other first-toucher cost.
      epoch_bases_.emplace(
          epoch, groupsig::prepare_bases(params_.gpk, {}, pv.m2->signature,
                                         &pv.ops));
    }
  }

  const auto verify_one = [this, &revocation](PendingVerify& pv,
                                              VerifyPool* scan_pool =
                                                  nullptr) {
    const Bytes payload = pv.m2->signed_payload();
    pv.sig_ok =
        groupsig::verify_proof(pgpk_, payload, pv.m2->signature, &pv.ops);
    if (!pv.sig_ok) return;
    revocation_check(pv, *revocation, scan_pool);
  };
  const auto run_jobs = [this](std::size_t count, auto&& body) {
    if (pool_ != nullptr && count > 1) {
      pool_->run(count, body);
    } else {
      for (std::size_t i = 0; i < count; ++i) body(i);
    }
  };
  if (config_.batch_verify && jobs.size() > 1) {
    // Randomized batch verification: phase A prepares every request (base
    // hashing, challenge, Eq.2 combinations) — independent per item, so it
    // fans out over the pool; phase B runs the combined checks plus
    // bisection sequentially on this thread (one final exponentiation for
    // the whole batch when all signatures are good); phase C scans the URL
    // only for requests whose proof held, still one scan per signature.
    // Accept/reject is bit-identical to the per-signature path
    // (groupsig::BatchVerifier contract), so stats and sessions match the
    // sequential pipeline exactly.
    stats_.verify_batches += 1;
    stats_.batched_requests += jobs.size();
    std::vector<Bytes> payloads(jobs.size());
    std::vector<groupsig::BatchItem> items(jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      payloads[i] = jobs[i]->m2->signed_payload();
      items[i] = {payloads[i], &jobs[i]->m2->signature};
    }
    groupsig::BatchVerifier verifier(pgpk_, items, batch_salt_);
    run_jobs(jobs.size(),
             [&](std::size_t i) { verifier.prepare(i, &jobs[i]->ops); });
    // The combined-check / bisection costs are batch-global, not
    // attributable to one request: merge them straight into the aggregate
    // (still deterministic — bisection depends only on the batch content).
    groupsig::OpCounters finalize_ops;
    const std::vector<char>& ok = verifier.finalize(&finalize_ops);
    verify_ops_.merge(finalize_ops);
    std::vector<PendingVerify*> rev_jobs;
    rev_jobs.reserve(jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      jobs[i]->sig_ok = static_cast<bool>(ok[i]);
      jobs[i]->batch_attributed = !jobs[i]->sig_ok;
      if (jobs[i]->sig_ok) rev_jobs.push_back(jobs[i]);
    }
    // A single surviving scan job leaves the pool idle on this (sequential)
    // thread — shard its URL scan instead of running one-core.
    VerifyPool* scan_pool = rev_jobs.size() <= 1 ? pool_.get() : nullptr;
    run_jobs(rev_jobs.size(), [&](std::size_t i) {
      revocation_check(*rev_jobs[i], *revocation, scan_pool);
    });
  } else if (pool_ != nullptr && jobs.size() > 1) {
    stats_.verify_batches += 1;
    stats_.batched_requests += jobs.size();
    pool_->run(jobs.size(), [&](std::size_t i) { verify_one(*jobs[i]); });
  } else {
    // Sequential path (batch of one, or no pool): the pool — when present —
    // is idle, so a large-URL scan may fan out over it.
    for (PendingVerify* pv : jobs) verify_one(*pv, pool_.get());
  }

  // Pass 3 (sequential, input order): apply verdicts, re-checking the
  // replay cache against acceptances made earlier in this very batch. The
  // per-worker OpCounters merge in input order, keeping the aggregate
  // deterministic regardless of which worker verified what.
  for (PendingVerify& pv : pending) {
    if (seen_requests_.contains(pv.sid_hex)) {
      // An in-batch byte-identical duplicate of a request accepted earlier
      // in this pass resends its cached M.3, exactly as sequential
      // processing would have.
      if (auto resent = resend_cached(*pv.m2, pv.sid); resent.has_value()) {
        results[pv.index] = std::move(resent);
        continue;
      }
      ++stats_.rejected_replay;
      obs::sec_emit(obs::SecEventKind::kReplayDetected, now, id_,
                    kReplayInBatch);
      continue;
    }
    // Earlier same-sid entry was rejected: verify now (sequential context,
    // pool idle, so the URL scan may shard).
    if (pv.deferred) verify_one(pv, pool_.get());
    ++stats_.signature_verifications;
    verify_ops_.merge(pv.ops);
    if (!pv.sig_ok) {
      ++stats_.rejected_bad_signature;
      obs::sec_emit(obs::SecEventKind::kAuthReject, now, id_,
                    kRejectBadSignature);
      if (pv.batch_attributed)
        obs::sec_emit(obs::SecEventKind::kBatchForgeryAttributed, now, id_,
                      pv.index);
      continue;
    }
    if (pv.revoked) {
      ++stats_.rejected_revoked;
      obs::sec_emit(obs::SecEventKind::kRevocationHit, now, id_,
                    pv.m2->signature.epoch);
      continue;
    }
    results[pv.index] = accept_request(*pv.m2, *pv.beacon, pv.sid, pv.sid_hex);
  }

  if (span.active() && !batch.empty()) {
    std::uint64_t accepted = 0;
    for (const auto& r : results) accepted += r.has_value() ? 1 : 0;
    span.arg("accepted", accepted);
    const std::uint64_t dur = span.close();
    static obs::Histogram& handshake_hist =
        obs::Registry::global().histogram("router.handshake_us");
    handshake_hist.record(dur / batch.size());
  }
  return results;
}

void MeshRouter::revocation_check(PendingVerify& pv,
                                  const revoke::RevocationSnapshot& snapshot,
                                  VerifyPool* scan_pool) {
  // Step 3.3: the revocation check. Epoch mode answers from the shared
  // index in O(1) against its epoch-lived prepared v_hat. An epoch
  // mismatch — an in-flight M.2 signed before a roll the snapshot already
  // reflects — falls through to the scan rather than misclassifying
  // against the wrong epoch's tags (is_revoked would throw).
  if (snapshot.index != nullptr &&
      pv.m2->signature.epoch == snapshot.index->epoch()) {
    pv.revoked = snapshot.index->is_revoked(pv.m2->signature, &pv.ops);
    return;
  }
  if (snapshot.url_tokens.empty()) return;
  // Scan path: epoch-mode signatures share the per-epoch bases the
  // sequential precheck phase cached (read-only here — workers run this
  // concurrently); epoch-0 signatures derive their per-message bases now.
  // The scan itself is the batched TokenScan — one Miller loop per token,
  // one shared easy-part inversion — sharded over the pool when the caller
  // is sequential and the URL is large.
  const groupsig::PreparedBases* prepared = nullptr;
  groupsig::PreparedBases local;
  if (pv.m2->signature.epoch != 0) {
    const auto it = epoch_bases_.find(pv.m2->signature.epoch);
    if (it != epoch_bases_.end()) prepared = &it->second;
  }
  if (prepared == nullptr) {
    const Bytes payload = pv.m2->signed_payload();
    local = groupsig::prepare_bases(params_.gpk, payload, pv.m2->signature,
                                    &pv.ops);
    prepared = &local;
  }
  pv.revoked = url_scan_revoked(*prepared, pv.m2->signature,
                                snapshot.url_tokens, scan_pool, &pv.ops);
}

MeshRouter::AccessOutcome MeshRouter::accept_request(const AccessRequest& m2,
                                                     const BeaconState& beacon,
                                                     const Bytes& sid,
                                                     const std::string& sid_hex) {
  // Step 3.4: K = (g^rj)^rR, session established, M.3 returned.
  seen_requests_.insert(sid_hex);
  const G1 shared = m2.g_rj * beacon.r_r;
  sessions_.emplace(sid_hex,
                    Session::establish(shared, sid, Session::Role::kResponder));

  AccessOutcome out;
  out.session_id = sid;
  out.confirm.g_rj = m2.g_rj;
  out.confirm.g_rr = m2.g_rr;
  Writer payload;
  payload.u32(id_);
  payload.raw(g1_to_bytes(m2.g_rj));
  payload.raw(g1_to_bytes(m2.g_rr));
  out.confirm.ciphertext = confirm_seal(shared, sid, payload.data());
  ++stats_.accepted;

  // Reliability bookkeeping: remember the M.3 for idempotent resends and
  // keep the replay cache bounded by FIFO eviction (evicted entries remain
  // protected by the timestamp window).
  std::string confirm_key;
  if (config_.idempotent_resend) {
    confirm_key = wire_key(m2.to_bytes());
    confirm_cache_[confirm_key] = out.confirm.to_bytes();
  }
  seen_order_.emplace_back(sid_hex, std::move(confirm_key));
  while (config_.replay_cache_cap > 0 &&
         seen_requests_.size() > config_.replay_cache_cap &&
         !seen_order_.empty()) {
    const auto& [old_sid, old_key] = seen_order_.front();
    seen_requests_.erase(old_sid);
    if (!old_key.empty()) confirm_cache_.erase(old_key);
    seen_order_.pop_front();
  }
  return out;
}

bool MeshRouter::close_session(BytesView session_id) {
  return sessions_.erase(to_hex(session_id)) > 0;
}

Session* MeshRouter::session(BytesView session_id) {
  const auto it = sessions_.find(to_hex(session_id));
  return it == sessions_.end() ? nullptr : &it->second;
}

}  // namespace peace::proto
