#include "peace/router.hpp"

#include "common/serde.hpp"
#include "curve/hash_to_curve.hpp"

namespace peace::proto {

using curve::Bn254;
using curve::g1_to_bytes;
using curve::random_fr;

MeshRouter::MeshRouter(RouterId id, curve::EcdsaKeyPair keypair,
                       RouterCertificate certificate, SystemParams params,
                       crypto::Drbg rng, ProtocolConfig config)
    : id_(id),
      keypair_(std::move(keypair)),
      certificate_(std::move(certificate)),
      params_(std::move(params)),
      rng_(std::move(rng)),
      config_(config) {}

void MeshRouter::install_revocation_lists(const SignedRevocationList& crl,
                                          const SignedRevocationList& url) {
  if (!curve::ecdsa_verify(params_.network_public_key, crl.signed_payload(),
                           crl.signature) ||
      !curve::ecdsa_verify(params_.network_public_key, url.signed_payload(),
                           url.signature))
    throw Error("router: revocation list not signed by NO");
  if (crl.version < crl_.version || url.version < url_.version)
    throw Error("router: stale revocation list");
  crl_ = crl;
  url_ = url;
  url_tokens_.clear();
  url_tokens_.reserve(url.entries.size());
  for (const Bytes& e : url.entries)
    url_tokens_.push_back(RevocationToken::from_bytes(e));
}

void MeshRouter::set_under_attack(bool attacked,
                                  std::uint8_t difficulty_bits) {
  puzzle_difficulty_ = attacked ? difficulty_bits : 0;
}

BeaconMessage MeshRouter::make_beacon(Timestamp now) {
  BeaconState state;
  state.g = Bn254::get().g1_gen * random_fr(rng_);
  state.r_r = random_fr(rng_);
  state.ts = now;

  BeaconMessage beacon;
  beacon.router_id = id_;
  beacon.g = state.g;
  beacon.g_rr = state.g * state.r_r;
  beacon.ts1 = now;
  beacon.signature = keypair_.sign(beacon.signed_payload(), rng_);
  beacon.certificate = certificate_;
  beacon.crl = crl_;
  beacon.url = url_;
  if (puzzle_difficulty_ > 0) {
    puzzle_nonce_ = rng_.bytes(16);
    beacon.puzzle = make_puzzle(puzzle_nonce_, puzzle_difficulty_);
  }

  state.g_rr_bytes = g1_to_bytes(beacon.g_rr);
  recent_beacons_.push_front(std::move(state));
  while (recent_beacons_.size() > config_.beacon_history)
    recent_beacons_.pop_back();
  ++stats_.beacons_sent;
  return beacon;
}

std::optional<MeshRouter::AccessOutcome> MeshRouter::handle_access_request(
    const AccessRequest& m2, Timestamp now) {
  ++stats_.requests_received;

  // Step 3.1: the request must target one of our recent beacons...
  const Bytes g_rr_bytes = g1_to_bytes(m2.g_rr);
  const BeaconState* beacon = nullptr;
  for (const BeaconState& b : recent_beacons_) {
    if (b.g_rr_bytes == g_rr_bytes) {
      beacon = &b;
      break;
    }
  }
  if (beacon == nullptr) {
    ++stats_.rejected_unknown_beacon;
    return std::nullopt;
  }
  // ...and carry a fresh timestamp.
  const Timestamp age = now >= m2.ts2 ? now - m2.ts2 : m2.ts2 - now;
  if (age > config_.replay_window_ms) {
    ++stats_.rejected_stale;
    return std::nullopt;
  }
  // Replay cache on the session identifier.
  const Bytes sid = session_id_from(m2.g_rr, m2.g_rj);
  const std::string sid_hex = to_hex(sid);
  if (seen_requests_.contains(sid_hex)) {
    ++stats_.rejected_replay;
    return std::nullopt;
  }

  // DoS defence: the cheap puzzle check gates the expensive pairing work.
  if (puzzle_difficulty_ > 0) {
    if (!m2.puzzle_solution.has_value() ||
        !verify_puzzle(
            PuzzleChallenge{m2.puzzle_solution->server_nonce,
                            puzzle_difficulty_},
            *m2.puzzle_solution, g1_to_bytes(m2.g_rj)) ||
        !ct_equal(m2.puzzle_solution->server_nonce, puzzle_nonce_)) {
      ++stats_.rejected_puzzle;
      return std::nullopt;
    }
  }

  // Step 3.2: group-signature verification (expensive; instrumented).
  ++stats_.signature_verifications;
  if (!groupsig::verify_proof(params_.gpk, m2.signed_payload(),
                              m2.signature)) {
    ++stats_.rejected_bad_signature;
    return std::nullopt;
  }
  // Step 3.3: Eq.3 against every URL token.
  for (const RevocationToken& token : url_tokens_) {
    if (groupsig::matches_token(params_.gpk, m2.signed_payload(), m2.signature,
                                token)) {
      ++stats_.rejected_revoked;
      return std::nullopt;
    }
  }

  // Step 3.4: K = (g^rj)^rR, session established, M.3 returned.
  seen_requests_.insert(sid_hex);
  const G1 shared = m2.g_rj * beacon->r_r;
  sessions_.emplace(sid_hex,
                    Session::establish(shared, sid, Session::Role::kResponder));

  AccessOutcome out;
  out.session_id = sid;
  out.confirm.g_rj = m2.g_rj;
  out.confirm.g_rr = m2.g_rr;
  Writer payload;
  payload.u32(id_);
  payload.raw(g1_to_bytes(m2.g_rj));
  payload.raw(g1_to_bytes(m2.g_rr));
  out.confirm.ciphertext = confirm_seal(shared, sid, payload.data());
  ++stats_.accepted;
  return out;
}

Session* MeshRouter::session(BytesView session_id) {
  const auto it = sessions_.find(to_hex(session_id));
  return it == sessions_.end() ? nullptr : &it->second;
}

}  // namespace peace::proto
