#include "peace/puzzle.hpp"

#include <cmath>

#include "common/serde.hpp"
#include "crypto/sha256.hpp"

namespace peace::proto {

namespace {

bool has_leading_zero_bits(BytesView digest, unsigned bits) {
  unsigned full = bits / 8, rem = bits % 8;
  if (digest.size() < full + (rem ? 1 : 0)) return false;
  for (unsigned i = 0; i < full; ++i)
    if (digest[i] != 0) return false;
  if (rem != 0 && (digest[full] >> (8 - rem)) != 0) return false;
  return true;
}

Bytes puzzle_digest(BytesView server_nonce, BytesView client_binding,
                    std::uint64_t candidate) {
  Writer w;
  w.bytes(server_nonce);
  w.bytes(client_binding);
  w.u64(candidate);
  return crypto::Sha256::hash(w.data());
}

}  // namespace

Bytes PuzzleChallenge::to_bytes() const {
  Writer w;
  w.bytes(server_nonce);
  w.u8(difficulty_bits);
  return w.take();
}

PuzzleChallenge PuzzleChallenge::from_bytes(BytesView data) {
  Reader r(data);
  PuzzleChallenge c;
  c.server_nonce = r.bytes();
  c.difficulty_bits = r.u8();
  r.expect_end();
  return c;
}

Bytes PuzzleSolution::to_bytes() const {
  Writer w;
  w.bytes(server_nonce);
  w.u64(solution);
  return w.take();
}

PuzzleSolution PuzzleSolution::from_bytes(BytesView data) {
  Reader r(data);
  PuzzleSolution s;
  s.server_nonce = r.bytes();
  s.solution = r.u64();
  r.expect_end();
  return s;
}

PuzzleChallenge make_puzzle(BytesView server_nonce,
                            std::uint8_t difficulty_bits) {
  if (difficulty_bits > 40)
    throw Error("puzzle: difficulty too high to be solvable");
  return {Bytes(server_nonce.begin(), server_nonce.end()), difficulty_bits};
}

PuzzleSolution solve_puzzle(const PuzzleChallenge& challenge,
                            BytesView client_binding) {
  for (std::uint64_t candidate = 0;; ++candidate) {
    if (has_leading_zero_bits(
            puzzle_digest(challenge.server_nonce, client_binding, candidate),
            challenge.difficulty_bits)) {
      return {challenge.server_nonce, candidate};
    }
  }
}

bool verify_puzzle(const PuzzleChallenge& challenge,
                   const PuzzleSolution& solution, BytesView client_binding) {
  if (!ct_equal(challenge.server_nonce, solution.server_nonce)) return false;
  return has_leading_zero_bits(
      puzzle_digest(challenge.server_nonce, client_binding, solution.solution),
      challenge.difficulty_bits);
}

double puzzle_expected_work(std::uint8_t difficulty_bits) {
  return std::pow(2.0, difficulty_bits);
}

}  // namespace peace::proto
