#include "peace/entities.hpp"

#include <algorithm>

#include "common/serde.hpp"
#include "crypto/hmac.hpp"
#include "crypto/sha256.hpp"
#include "obs/trace.hpp"

namespace peace::proto {

using curve::ecdsa_verify;
using curve::EcdsaKeyPair;
using curve::g1_from_bytes;
using curve::g1_to_bytes;

Bytes blind_credential(const G1& a, const Fr& x) {
  const Bytes a_bytes = g1_to_bytes(a);
  const Bytes pad = crypto::hkdf({}, curve::fr_to_bytes(x),
                                 as_bytes("peace/blind"), a_bytes.size());
  return xor_bytes(a_bytes, pad);
}

G1 unblind_credential(BytesView blinded, const Fr& x) {
  const Bytes pad = crypto::hkdf({}, curve::fr_to_bytes(x),
                                 as_bytes("peace/blind"), blinded.size());
  return g1_from_bytes(xor_bytes(blinded, pad));
}

// --- TrustedThirdParty -------------------------------------------------------

void TrustedThirdParty::ensure_signing_key(crypto::Drbg& rng) {
  if (!has_key_) {
    signing_key_ = EcdsaKeyPair::generate(rng);
    has_key_ = true;
  }
}

EcdsaSignature TrustedThirdParty::deposit(const KeyIndex& idx,
                                          Bytes blinded_credential,
                                          const EcdsaSignature& no_signature,
                                          const G1& npk, crypto::Drbg& rng) {
  ensure_signing_key(rng);
  Writer w;
  w.str("peace/ttp-deposit");
  w.u32(idx.group);
  w.u32(idx.member);
  w.bytes(blinded_credential);
  if (!ecdsa_verify(npk, w.data(), no_signature))
    throw Error("ttp: deposit not signed by NO");
  store_[{idx.group, idx.member}] = std::move(blinded_credential);
  // Receipt for non-repudiation (paper: "TTP also signs on these messages").
  return signing_key_.sign(w.data(), rng);
}

Bytes TrustedThirdParty::deliver(const KeyIndex& idx, const std::string& uid) {
  const auto it = store_.find({idx.group, idx.member});
  if (it == store_.end()) throw Error("ttp: unknown key index");
  delivered_to_[{idx.group, idx.member}] = uid;
  return it->second;
}

std::optional<std::string> TrustedThirdParty::uid_for_index(
    const KeyIndex& idx) const {
  const auto it = delivered_to_.find({idx.group, idx.member});
  if (it == delivered_to_.end()) return std::nullopt;
  return it->second;
}

void TrustedThirdParty::replay_deposit(const KeyIndex& idx, Bytes blinded) {
  store_[{idx.group, idx.member}] = std::move(blinded);
}

void TrustedThirdParty::replay_deliver(const KeyIndex& idx,
                                       const std::string& uid) {
  delivered_to_[{idx.group, idx.member}] = uid;
}

Bytes TrustedThirdParty::state_bytes() const {
  Writer w;
  w.str("peace/ttp-state-v1");
  w.u8(has_key_ ? 1 : 0);
  if (has_key_) w.raw(curve::fr_to_bytes(signing_key_.secret_key()));
  w.u64(store_.size());
  for (const auto& [key, blinded] : store_) {
    w.u32(key.first);
    w.u32(key.second);
    w.bytes(blinded);
  }
  w.u64(delivered_to_.size());
  for (const auto& [key, uid] : delivered_to_) {
    w.u32(key.first);
    w.u32(key.second);
    w.str(uid);
  }
  return w.take();
}

TrustedThirdParty TrustedThirdParty::from_state(BytesView data) {
  Reader r(data);
  if (r.str() != "peace/ttp-state-v1")
    throw Error("ttp: bad state image");
  TrustedThirdParty ttp;
  ttp.has_key_ = r.u8() != 0;
  if (ttp.has_key_)
    ttp.signing_key_ =
        EcdsaKeyPair::from_secret(curve::fr_from_bytes(r.raw(curve::kFrSize)));
  for (std::uint64_t i = 0, n = r.u64(); i < n; ++i) {
    const std::uint32_t g = r.u32();
    const std::uint32_t m = r.u32();
    ttp.store_[{g, m}] = r.bytes();
  }
  for (std::uint64_t i = 0, n = r.u64(); i < n; ++i) {
    const std::uint32_t g = r.u32();
    const std::uint32_t m = r.u32();
    ttp.delivered_to_[{g, m}] = r.str();
  }
  r.expect_end();
  return ttp;
}

// --- GroupManager ------------------------------------------------------------

void GroupManager::receive_allocation(
    const Fr& grp, std::vector<std::pair<KeyIndex, Fr>> keys) {
  grp_ = grp;
  for (auto& k : keys) unassigned_.push_back(std::move(k));
}

void GroupManager::rekey(const Fr& grp,
                         std::vector<std::pair<KeyIndex, Fr>> keys) {
  unassigned_.clear();
  receive_allocation(grp, std::move(keys));
}

GroupManager::Enrollment GroupManager::enroll(const std::string& uid,
                                              TrustedThirdParty& ttp) {
  if (unassigned_.empty()) throw Error("gm: no keys left to assign");
  const auto [idx, x] = unassigned_.back();
  unassigned_.pop_back();
  assigned_[{idx.group, idx.member}] = uid;
  assigned_x_[{idx.group, idx.member}] = x;
  // Paper user-join step 2: GM asks TTP to send the user the blinded
  // credential for this index.
  Bytes blinded = ttp.deliver(idx, uid);
  return {idx, grp_, x, std::move(blinded)};
}

std::optional<std::string> GroupManager::uid_for_index(
    const KeyIndex& idx) const {
  const auto it = assigned_.find({idx.group, idx.member});
  if (it == assigned_.end()) return std::nullopt;
  return it->second;
}

Bytes GroupManager::enrollment_receipt_payload(const Enrollment& enrollment) {
  Writer w;
  w.str("peace/enrollment-receipt");
  w.u32(enrollment.index.group);
  w.u32(enrollment.index.member);
  w.raw(curve::fr_to_bytes(enrollment.grp));
  w.raw(curve::fr_to_bytes(enrollment.x));
  w.bytes(enrollment.blinded_credential);
  return w.take();
}

void GroupManager::record_receipt(const Enrollment& enrollment,
                                  const G1& user_public_key,
                                  const EcdsaSignature& signature) {
  if (!curve::ecdsa_verify(user_public_key,
                           enrollment_receipt_payload(enrollment), signature))
    throw Error("gm: invalid enrollment receipt");
  store_receipt(enrollment.index, {user_public_key, signature});
}

void GroupManager::replay_enroll(const KeyIndex& idx, const std::string& uid) {
  const auto it =
      std::find_if(unassigned_.begin(), unassigned_.end(),
                   [&](const auto& k) { return k.first == idx; });
  if (it == unassigned_.end())
    throw Error("gm: replayed enrollment for unknown key index");
  assigned_[{idx.group, idx.member}] = uid;
  assigned_x_[{idx.group, idx.member}] = it->second;
  unassigned_.erase(it);
}

void GroupManager::store_receipt(const KeyIndex& idx,
                                 EnrollmentReceipt receipt) {
  const std::pair<GroupId, std::uint32_t> key{idx.group, idx.member};
  if (receipts_.emplace(key, std::move(receipt)).second)
    receipt_order_.push_back(key);
}

std::size_t GroupManager::evict_receipts_over(std::size_t cap) {
  std::size_t evicted = 0;
  while (receipts_.size() > cap && !receipt_order_.empty()) {
    receipts_.erase(receipt_order_.front());
    receipt_order_.erase(receipt_order_.begin());
    ++evicted;
  }
  return evicted;
}

std::optional<GroupManager::EnrollmentReceipt> GroupManager::receipt_for(
    const KeyIndex& idx) const {
  const auto it = receipts_.find({idx.group, idx.member});
  if (it == receipts_.end()) return std::nullopt;
  return it->second;
}

std::size_t GroupManager::keys_remaining() const { return unassigned_.size(); }

Bytes GroupManager::state_bytes() const {
  Writer w;
  w.str("peace/gm-state-v1");
  w.u32(id_);
  w.str(name_);
  w.raw(curve::fr_to_bytes(grp_));
  w.u64(unassigned_.size());
  for (const auto& [idx, x] : unassigned_) {
    w.u32(idx.group);
    w.u32(idx.member);
    w.raw(curve::fr_to_bytes(x));
  }
  w.u64(assigned_.size());
  for (const auto& [key, uid] : assigned_) {
    w.u32(key.first);
    w.u32(key.second);
    w.str(uid);
  }
  w.u64(assigned_x_.size());
  for (const auto& [key, x] : assigned_x_) {
    w.u32(key.first);
    w.u32(key.second);
    w.raw(curve::fr_to_bytes(x));
  }
  w.u64(receipts_.size());
  for (const auto& [key, receipt] : receipts_) {
    w.u32(key.first);
    w.u32(key.second);
    w.bytes(g1_to_bytes(receipt.user_public_key));
    w.bytes(receipt.signature.to_bytes());
  }
  w.u64(receipt_order_.size());
  for (const auto& [g, m] : receipt_order_) {
    w.u32(g);
    w.u32(m);
  }
  return w.take();
}

GroupManager GroupManager::from_state(BytesView data) {
  Reader r(data);
  if (r.str() != "peace/gm-state-v1")
    throw Error("gm: bad state image");
  const GroupId id = r.u32();
  GroupManager gm(id, r.str());
  gm.grp_ = curve::fr_from_bytes(r.raw(curve::kFrSize));
  for (std::uint64_t i = 0, n = r.u64(); i < n; ++i) {
    KeyIndex idx{r.u32(), r.u32()};
    gm.unassigned_.emplace_back(idx,
                                curve::fr_from_bytes(r.raw(curve::kFrSize)));
  }
  for (std::uint64_t i = 0, n = r.u64(); i < n; ++i) {
    const std::uint32_t g = r.u32();
    const std::uint32_t m = r.u32();
    gm.assigned_[{g, m}] = r.str();
  }
  for (std::uint64_t i = 0, n = r.u64(); i < n; ++i) {
    const std::uint32_t g = r.u32();
    const std::uint32_t m = r.u32();
    gm.assigned_x_[{g, m}] = curve::fr_from_bytes(r.raw(curve::kFrSize));
  }
  for (std::uint64_t i = 0, n = r.u64(); i < n; ++i) {
    const std::uint32_t g = r.u32();
    const std::uint32_t m = r.u32();
    EnrollmentReceipt receipt;
    receipt.user_public_key = g1_from_bytes(r.bytes());
    receipt.signature = EcdsaSignature::from_bytes(r.bytes());
    gm.receipts_[{g, m}] = std::move(receipt);
  }
  for (std::uint64_t i = 0, n = r.u64(); i < n; ++i) {
    const std::uint32_t g = r.u32();
    const std::uint32_t m = r.u32();
    gm.receipt_order_.emplace_back(g, m);
  }
  r.expect_end();
  return gm;
}

// --- NetworkOperator ----------------------------------------------------------

NetworkOperator::NetworkOperator(crypto::Drbg rng)
    : rng_(std::move(rng)),
      issuer_(groupsig::Issuer::create(rng_)),
      nsk_(EcdsaKeyPair::generate(rng_)) {
  url_ = sign_list({}, 0, 0);
  crl_ = sign_list({}, 0, 0);
}

SystemParams NetworkOperator::params() const {
  return {issuer_.gpk(), nsk_.public_key()};
}

std::vector<std::pair<KeyIndex, Fr>> NetworkOperator::issue_batch(
    GroupId gid, const Fr& grp, std::size_t num_keys,
    TrustedThirdParty& ttp) {
  std::vector<std::pair<KeyIndex, Fr>> gm_batch;
  std::uint32_t& next = next_member_[gid];
  for (std::size_t i = 0; i < num_keys; ++i) {
    const MemberKey key = issuer_.issue(grp, rng_);
    const KeyIndex idx{gid, next++};
    grt_.push_back({RevocationToken{key.a}, gid, idx});
    gm_batch.emplace_back(idx, key.x);

    // Step 7: deposit A xor x with the TTP, signed for non-repudiation.
    Bytes blinded = blind_credential(key.a, key.x);
    Writer w;
    w.str("peace/ttp-deposit");
    w.u32(idx.group);
    w.u32(idx.member);
    w.bytes(blinded);
    const EcdsaSignature sig = nsk_.sign(w.data(), rng_);
    ttp.deposit(idx, std::move(blinded), sig, npk(), rng_);
  }
  return gm_batch;
}

GroupManager NetworkOperator::register_group(const std::string& name,
                                             std::size_t num_keys,
                                             TrustedThirdParty& ttp) {
  const GroupId gid = next_group_id_++;
  GroupManager gm(gid, name);
  const Fr grp = issuer_.new_group_secret(rng_);
  group_secrets_[gid] = grp;
  gm.receive_allocation(grp, issue_batch(gid, grp, num_keys, ttp));
  return gm;
}

void NetworkOperator::rotate_master_key(Timestamp now) {
  obs::Span span("no.rotate_master_key", "peace");
  span.arg("archived_tokens", grt_.size());
  span.arg("era", past_eras_.size() + 1);
  const std::size_t archived = grt_.size();
  past_eras_.push_back({issuer_.gpk(), std::move(grt_), false, archived});
  grt_.clear();
  issuer_ = groupsig::Issuer::create(rng_);
  group_secrets_.clear();
  const SignedRevocationList prev_url = url_;
  // Fresh era: no outstanding credentials, so nothing to revoke.
  url_entries_.clear();
  url_ = sign_list({}, url_.version + 1, now);
  // The rotation's delta removes every outstanding token — a receiver that
  // applies it lands exactly on the new era's empty URL.
  emit_delta(ListKind::kUrl, prev_url, url_, prev_url.entries, {});
}

void NetworkOperator::reissue_group(GroupManager& gm, std::size_t num_keys,
                                    TrustedThirdParty& ttp) {
  const Fr grp = issuer_.new_group_secret(rng_);
  group_secrets_[gm.id()] = grp;
  gm.rekey(grp, issue_batch(gm.id(), grp, num_keys, ttp));
}

NetworkOperator::RouterProvision NetworkOperator::provision_router(
    RouterId id, Timestamp expires_at) {
  RouterProvision p;
  p.keypair = EcdsaKeyPair::generate(rng_);
  p.certificate.router_id = id;
  p.certificate.public_key = p.keypair.public_key();
  p.certificate.expires_at = expires_at;
  p.certificate.signature =
      nsk_.sign(p.certificate.signed_payload(), rng_);
  return p;
}

SignedRevocationList NetworkOperator::sign_list(std::vector<Bytes> entries,
                                                std::uint64_t version,
                                                Timestamp now) const {
  SignedRevocationList list;
  list.version = version;
  list.issued_at = now;
  list.entries = std::move(entries);
  list.signature = nsk_.sign(list.signed_payload(), rng_);
  return list;
}

void NetworkOperator::revoke_user_key(const KeyIndex& idx, Timestamp now) {
  for (const GrtEntry& e : grt_) {
    if (e.index == idx) {
      Bytes entry = e.token.to_bytes();
      if (std::find(url_entries_.begin(), url_entries_.end(), entry) !=
          url_entries_.end())
        return;  // already revoked
      const SignedRevocationList prev = url_;
      url_entries_.push_back(entry);
      url_ = sign_list(url_entries_, url_.version + 1, now);
      emit_delta(ListKind::kUrl, prev, url_, {}, {std::move(entry)});
      return;
    }
  }
  throw Error("no: unknown key index to revoke");
}

void NetworkOperator::revoke_router(RouterId id, Timestamp now) {
  Writer w;
  w.u32(id);
  Bytes entry = w.take();
  if (std::find(crl_entries_.begin(), crl_entries_.end(), entry) !=
      crl_entries_.end())
    return;  // already revoked
  const SignedRevocationList prev = crl_;
  crl_entries_.push_back(entry);
  crl_ = sign_list(crl_entries_, crl_.version + 1, now);
  emit_delta(ListKind::kCrl, prev, crl_, {}, {std::move(entry)});
}

void NetworkOperator::emit_delta(ListKind kind,
                                 const SignedRevocationList& prev,
                                 const SignedRevocationList& next,
                                 std::vector<Bytes> removed,
                                 std::vector<Bytes> added) {
  RLDelta d;
  d.kind = kind;
  d.base_version = prev.version;
  d.version = next.version;
  d.issued_at = next.issued_at;
  d.base_hash = crypto::Sha256::hash(prev.signed_payload());
  d.removed = std::move(removed);
  d.added = std::move(added);
  d.full_signature = next.signature;
  d.signature = nsk_.sign(d.signed_payload(), rng_);
  (kind == ListKind::kCrl ? crl_deltas_ : url_deltas_).push_back(std::move(d));
}

std::vector<RLDelta> NetworkOperator::deltas_since(
    ListKind kind, std::uint64_t after_version) const {
  const std::vector<RLDelta>& log =
      kind == ListKind::kCrl ? crl_deltas_ : url_deltas_;
  std::vector<RLDelta> out;
  for (const RLDelta& d : log)
    if (d.version > after_version) out.push_back(d);
  return out;
}

RLDeltaAnnounce NetworkOperator::make_delta_announcement(
    std::uint64_t crl_after, std::uint64_t url_after) const {
  RLDeltaAnnounce ann;
  ann.deltas = deltas_since(ListKind::kCrl, crl_after);
  for (RLDelta& d : deltas_since(ListKind::kUrl, url_after))
    ann.deltas.push_back(std::move(d));
  return ann;
}

RLResyncResponse NetworkOperator::handle_resync(
    const RLResyncRequest& request) const {
  return RLResyncResponse{request.kind,
                          request.kind == ListKind::kCrl ? crl_ : url_};
}

std::optional<AuditResult> NetworkOperator::audit(
    const AccessRequest& m2) const {
  // Paper IV.D: for each revocation token A in grt, test Eq.3 against the
  // logged authentication message. Archived eras are scanned with their
  // own gpk so sessions that predate a key rotation remain auditable.
  //
  // The signature bases depend on (gpk, message), not on the token, so each
  // era derives its PreparedBases exactly ONCE and runs the batched
  // TokenScan over its whole grt — one Miller loop per token and one shared
  // easy-part inversion per era, instead of re-hashing the bases and
  // re-walking v_hat's twist arithmetic for every entry.
  obs::Span span("no.audit", "peace");
  const Bytes payload = m2.signed_payload();
  std::size_t scanned = 0;
  std::size_t eras = 0;
  const auto scan = [&](const GroupPublicKey& gpk,
                        const std::vector<GrtEntry>& grt)
      -> std::optional<AuditResult> {
    if (grt.empty()) return std::nullopt;
    ++eras;
    const groupsig::PreparedBases prepared =
        groupsig::prepare_bases(gpk, payload, m2.signature);
    groupsig::TokenScan era_scan(prepared, m2.signature);
    for (const GrtEntry& e : grt) era_scan.add(e.token);
    const std::size_t hit = era_scan.first_match();
    if (hit == groupsig::TokenScan::npos) {
      scanned += grt.size();
      return std::nullopt;
    }
    scanned += hit + 1;
    return AuditResult{grt[hit].token, grt[hit].group_id, grt[hit].index,
                       scanned};
  };
  const auto finish = [&](std::optional<AuditResult> hit) {
    span.arg("eras_scanned", eras);
    span.arg("tokens_scanned", scanned);
    span.arg("hit", hit.has_value() ? 1 : 0);
    return hit;
  };
  if (auto hit = scan(issuer_.gpk(), grt_)) return finish(std::move(hit));
  for (auto it = past_eras_.rbegin(); it != past_eras_.rend(); ++it) {
    if (auto hit = scan(it->gpk, it->grt)) return finish(std::move(hit));
  }
  return finish(std::nullopt);
}

const GroupPublicKey& NetworkOperator::archived_gpk(std::size_t era) const {
  if (era >= past_eras_.size()) throw Error("no: unknown archived era");
  return past_eras_[era].gpk;
}

bool NetworkOperator::era_spilled(std::size_t era) const {
  if (era >= past_eras_.size()) throw Error("no: unknown archived era");
  return past_eras_[era].spilled;
}

std::size_t NetworkOperator::era_token_count(std::size_t era) const {
  if (era >= past_eras_.size()) throw Error("no: unknown archived era");
  return past_eras_[era].total;
}

std::size_t NetworkOperator::spill_archived_era(std::size_t era) {
  if (era >= past_eras_.size()) throw Error("no: unknown archived era");
  Era& e = past_eras_[era];
  if (e.spilled) return 0;
  const std::size_t freed = e.grt.size();
  e.grt.clear();
  e.grt.shrink_to_fit();
  e.spilled = true;
  return freed;
}

void NetworkOperator::replay_issue(GroupId gid, const Fr& grp,
                                   std::uint32_t next_member_after,
                                   std::vector<GrtEntry> entries) {
  group_secrets_[gid] = grp;
  next_member_[gid] = next_member_after;
  if (gid >= next_group_id_) next_group_id_ = gid + 1;
  for (GrtEntry& e : entries) grt_.push_back(std::move(e));
}

void NetworkOperator::replay_rotation(const Fr& new_gamma) {
  const std::size_t archived = grt_.size();
  past_eras_.push_back({issuer_.gpk(), std::move(grt_), false, archived});
  grt_.clear();
  issuer_ = groupsig::Issuer::from_secret(new_gamma);
  group_secrets_.clear();
}

void NetworkOperator::replay_revocation(const RLDelta& delta) {
  const bool crl = delta.kind == ListKind::kCrl;
  std::vector<Bytes>& entries = crl ? crl_entries_ : url_entries_;
  SignedRevocationList& list = crl ? crl_ : url_;
  std::vector<RLDelta>& log = crl ? crl_deltas_ : url_deltas_;
  for (const Bytes& gone : delta.removed)
    entries.erase(std::remove(entries.begin(), entries.end(), gone),
                  entries.end());
  for (const Bytes& added : delta.added) entries.push_back(added);
  // Reconstruct the successor list bit-identically: full_signature IS the
  // successor's own NO signature (see emit_delta), so no re-signing — and
  // no randomness — is needed.
  list.version = delta.version;
  list.issued_at = delta.issued_at;
  list.entries = entries;
  list.signature = delta.full_signature;
  log.push_back(delta);
}

void NetworkOperator::restore_rng(BytesView state) {
  rng_ = crypto::Drbg::import_state(state);
}

Bytes NetworkOperator::state_bytes() const {
  Writer w;
  w.str("peace/no-state-v1");
  w.bytes(rng_.export_state());
  w.raw(curve::fr_to_bytes(issuer_.gamma()));
  w.raw(curve::fr_to_bytes(nsk_.secret_key()));
  const auto write_grt = [&w](const std::vector<GrtEntry>& grt) {
    w.u64(grt.size());
    for (const GrtEntry& e : grt) {
      w.bytes(e.token.to_bytes());
      w.u32(e.group_id);
      w.u32(e.index.group);
      w.u32(e.index.member);
    }
  };
  write_grt(grt_);
  w.u64(past_eras_.size());
  for (const Era& era : past_eras_) {
    w.bytes(era.gpk.to_bytes());
    w.u8(era.spilled ? 1 : 0);
    w.u64(era.total);
    write_grt(era.grt);
  }
  // unordered maps go out sorted so the image is canonical: equal state
  // must serialize to equal bytes (the differential tests compare images).
  std::vector<std::pair<GroupId, Fr>> secrets(group_secrets_.begin(),
                                              group_secrets_.end());
  std::sort(secrets.begin(), secrets.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  w.u64(secrets.size());
  for (const auto& [gid, grp] : secrets) {
    w.u32(gid);
    w.raw(curve::fr_to_bytes(grp));
  }
  std::vector<std::pair<GroupId, std::uint32_t>> next(next_member_.begin(),
                                                      next_member_.end());
  std::sort(next.begin(), next.end());
  w.u64(next.size());
  for (const auto& [gid, n] : next) {
    w.u32(gid);
    w.u32(n);
  }
  w.u32(next_group_id_);
  // url_entries_/crl_entries_ are not written: they equal the entries of
  // the signed lists and are restored from there.
  w.bytes(url_.to_bytes());
  w.bytes(crl_.to_bytes());
  const auto write_deltas = [&w](const std::vector<RLDelta>& deltas) {
    w.u64(deltas.size());
    for (const RLDelta& d : deltas) w.bytes(d.to_bytes());
  };
  write_deltas(url_deltas_);
  write_deltas(crl_deltas_);
  return w.take();
}

NetworkOperator NetworkOperator::from_state(BytesView data) {
  Reader r(data);
  if (r.str() != "peace/no-state-v1")
    throw Error("no: bad state image");
  crypto::Drbg rng = crypto::Drbg::import_state(r.bytes());
  const Fr gamma = curve::fr_from_bytes(r.raw(curve::kFrSize));
  const Fr nsk = curve::fr_from_bytes(r.raw(curve::kFrSize));
  NetworkOperator no(std::move(rng), groupsig::Issuer::from_secret(gamma),
                     EcdsaKeyPair::from_secret(nsk));
  const auto read_grt = [&r]() {
    std::vector<GrtEntry> grt;
    for (std::uint64_t i = 0, n = r.u64(); i < n; ++i) {
      GrtEntry e;
      e.token = RevocationToken::from_bytes(r.bytes());
      e.group_id = r.u32();
      e.index.group = r.u32();
      e.index.member = r.u32();
      grt.push_back(std::move(e));
    }
    return grt;
  };
  no.grt_ = read_grt();
  for (std::uint64_t i = 0, n = r.u64(); i < n; ++i) {
    Era era;
    era.gpk = GroupPublicKey::from_bytes(r.bytes());
    era.spilled = r.u8() != 0;
    era.total = r.u64();
    era.grt = read_grt();
    no.past_eras_.push_back(std::move(era));
  }
  for (std::uint64_t i = 0, n = r.u64(); i < n; ++i) {
    const GroupId gid = r.u32();
    no.group_secrets_[gid] = curve::fr_from_bytes(r.raw(curve::kFrSize));
  }
  for (std::uint64_t i = 0, n = r.u64(); i < n; ++i) {
    const GroupId gid = r.u32();
    no.next_member_[gid] = r.u32();
  }
  no.next_group_id_ = r.u32();
  no.url_ = SignedRevocationList::from_bytes(r.bytes());
  no.crl_ = SignedRevocationList::from_bytes(r.bytes());
  no.url_entries_ = no.url_.entries;
  no.crl_entries_ = no.crl_.entries;
  const auto read_deltas = [&r]() {
    std::vector<RLDelta> deltas;
    for (std::uint64_t i = 0, n = r.u64(); i < n; ++i)
      deltas.push_back(RLDelta::from_bytes(r.bytes()));
    return deltas;
  };
  no.url_deltas_ = read_deltas();
  no.crl_deltas_ = read_deltas();
  r.expect_end();
  return no;
}

std::optional<KeyIndex> NetworkOperator::index_of_token(const G1& a) const {
  for (const GrtEntry& e : grt_) {
    if (e.token.a == a) return e.index;
  }
  for (const Era& era : past_eras_) {
    for (const GrtEntry& e : era.grt) {
      if (e.token.a == a) return e.index;
    }
  }
  return std::nullopt;
}

// --- LawAuthority --------------------------------------------------------------

std::optional<LawAuthority::TraceResult> LawAuthority::trace(
    const NetworkOperator& no,
    const std::vector<const GroupManager*>& group_managers,
    const AccessRequest& m2) {
  // Step 1+2: NO audits the session down to (A, group).
  const auto audit = no.audit(m2);
  if (!audit.has_value()) return std::nullopt;
  // Step 3: the responsible group's manager maps [i, j] to the uid.
  for (const GroupManager* gm : group_managers) {
    if (gm->id() != audit->group_id) continue;
    const auto uid = gm->uid_for_index(audit->index);
    if (uid.has_value()) {
      return TraceResult{*uid, audit->group_id, audit->index,
                         gm->receipt_for(audit->index).has_value()};
    }
  }
  return std::nullopt;
}

}  // namespace peace::proto
