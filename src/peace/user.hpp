// Network-user protocol endpoint: beacon validation, the anonymous access
// handshake (M.2/M.3), and the user-user mutual authentication protocol
// (M~.1 - M~.3). A user may hold credentials from several user groups
// (paper Sec. III.C) and chooses which role to present per session.
#pragma once

#include <memory>
#include <span>
#include <unordered_map>

#include "peace/entities.hpp"
#include "peace/session.hpp"
#include "peace/verify_pool.hpp"

namespace peace::proto {

struct UserStats {
  std::uint64_t beacons_seen = 0;
  std::uint64_t beacons_rejected = 0;  // bad cert / signature / revoked router
  std::uint64_t sessions_established = 0;
  std::uint64_t peer_sessions_established = 0;
  std::uint64_t puzzle_hashes = 0;  // brute-force work spent on DoS puzzles
  std::uint64_t peer_verify_batches = 0;  // pooled M~.1 batches run
  std::uint64_t peer_batched_hellos = 0;  // hellos entering such a batch
  // Reliability layer (PROTOCOL.md §10):
  std::uint64_t pending_expired = 0;   // handshake state reaped by TTL
  std::uint64_t pending_evicted = 0;   // handshake state evicted by the cap
  std::uint64_t duplicate_hellos = 0;  // M~.1 answered from the reply cache
  std::uint64_t duplicate_replies = 0; // M~.2 answered from the confirm cache
};

class User {
 public:
  User(std::string uid, SystemParams params, crypto::Drbg rng,
       ProtocolConfig config = {});

  const std::string& uid() const { return uid_; }
  const UserStats& stats() const { return stats_; }

  /// Final step of setup: unblind the TTP blob with x, assemble
  /// gsk[i,j] = (A, grp, x), and verify it against gpk before accepting.
  /// Returns the non-repudiation receipt (paper IV.A) — the user's ECDSA
  /// signature over everything received — for the GM to archive via
  /// GroupManager::record_receipt.
  curve::EcdsaSignature complete_enrollment(
      const GroupManager::Enrollment& enrollment);

  /// The long-term key the user signs setup receipts with.
  const G1& receipt_public_key() const {
    return receipt_key_.public_key();
  }

  /// A master-key rotation (membership renewal) invalidates every held
  /// credential: install the new parameters and re-enroll.
  void install_params(const SystemParams& params) {
    params_ = params;
    pgpk_ = groupsig::PreparedGroupPublicKey(params_.gpk);
    credentials_.clear();
    url_tokens_.clear();
    url_ = {};
    crl_ = {};
    pending_access_.clear();
    pending_peer_init_.clear();
    pending_peer_resp_.clear();
    hello_replies_.clear();
    peer_confirms_.clear();
  }

  /// Which groups this user can sign for.
  std::vector<GroupId> enrolled_groups() const;
  const MemberKey& credential(GroupId group) const;

  /// Paper step 2: validate the beacon (timestamp, certificate chain, CRL,
  /// router signature) and, if it is trustworthy, produce M.2. `via_group`
  /// picks which of the user's roles signs; 0 means the first enrolled.
  /// Returns nullopt when the beacon must be rejected.
  std::optional<AccessRequest> process_beacon(const BeaconMessage& beacon,
                                              Timestamp now,
                                              GroupId via_group = 0);

  /// Completes the handshake with the router's M.3; verifies the key
  /// confirmation before trusting the session.
  std::optional<Session> process_access_confirm(const AccessConfirm& m3);

  // --- user-user authentication (paper IV.C) ---

  /// M~.1: local broadcast; `g` comes from the serving router's beacon.
  PeerHello make_peer_hello(const G1& g, Timestamp now, GroupId via_group = 0);

  /// Responder side: validate M~.1 and answer with M~.2 (key not yet
  /// confirmed; completed by process_peer_confirm).
  std::optional<PeerReply> process_peer_hello(const PeerHello& hello,
                                              Timestamp now,
                                              GroupId via_group = 0);

  /// Batch form of process_peer_hello: results, pending-session state, rng
  /// consumption, and stats are identical to calling it on each element in
  /// order. The pairing-heavy M~.1 verifications run on a VerifyPool sized
  /// by config.verify_threads between a sequential precheck pass and a
  /// sequential in-order reply pass (signing draws randomness, so replies
  /// are produced strictly in input order).
  std::vector<std::optional<PeerReply>> process_peer_hellos(
      std::span<const PeerHello> hellos, Timestamp now, GroupId via_group = 0);

  /// Initiator side: validate M~.2, derive the key, emit M~.3.
  struct PeerEstablished {
    PeerConfirm confirm;
    Session session;
  };
  std::optional<PeerEstablished> process_peer_reply(const PeerReply& reply,
                                                    Timestamp now);

  /// Responder side: verify M~.3 and finalize the session. A duplicate
  /// delivery of an already-consumed confirm returns nullopt without
  /// touching any state — a no-op, not a protocol error.
  std::optional<Session> process_peer_confirm(const PeerConfirm& confirm);

  /// Idempotent-resend path (config.idempotent_resend): when a duplicate
  /// M~.2 arrives after the initiator already established the session (its
  /// M~.3 was lost on the air), returns the byte-identical cached M~.3 so
  /// the responder can still converge. Mints nothing and draws no
  /// randomness. nullopt when the reply matches no cached confirmation.
  std::optional<PeerConfirm> cached_peer_confirm(const PeerReply& reply);

  // --- reliability state hygiene (PROTOCOL.md §10) ---

  /// Reaps pending-handshake entries and resend-cache entries older than
  /// config.pending_ttl_ms. Called internally before every insert; exposed
  /// so hosts can also reap on a timer. Returns how many entries died.
  std::size_t reap_pending(Timestamp now);

  /// Current pending-state sizes, for cap monitoring in tests/simulations.
  std::size_t pending_access_size() const { return pending_access_.size(); }
  std::size_t pending_peer_size() const {
    return pending_peer_init_.size() + pending_peer_resp_.size();
  }
  std::size_t resend_cache_size() const {
    return hello_replies_.size() + peer_confirms_.size();
  }

  /// Latest revocation lists the user has accepted from beacons.
  const SignedRevocationList& current_url() const { return url_; }

 private:
  bool beacon_trustworthy(const BeaconMessage& beacon, Timestamp now);
  bool peer_signature_ok(BytesView payload, const groupsig::Signature& sig);
  /// The URL half of peer_signature_ok: true when `sig` matches no token.
  /// Always per-signature, even on the batch path (per-token attribution).
  bool peer_not_revoked(BytesView payload, const groupsig::Signature& sig);
  const MemberKey& pick_credential(GroupId via_group) const;
  /// Builds M~.2 for an already-verified hello (the sequential tail of both
  /// the single and the batch path — all rng draws happen here).
  PeerReply reply_to_hello(const PeerHello& hello, Timestamp now,
                           GroupId via_group);

  std::string uid_;
  SystemParams params_;
  groupsig::PreparedGroupPublicKey pgpk_;  // fixed G2 args prepared once
  crypto::Drbg rng_;
  ProtocolConfig config_;
  /// Secret salt seeding the batch-verification randomizers (drawn once at
  /// construction; see MeshRouter::batch_salt_ for the rationale).
  Bytes batch_salt_;
  curve::EcdsaKeyPair receipt_key_;
  std::map<GroupId, MemberKey> credentials_;
  std::unique_ptr<VerifyPool> pool_;  // lazily sized by config_.verify_threads

  SignedRevocationList crl_;
  SignedRevocationList url_;
  std::vector<RevocationToken> url_tokens_;

  /// TTL + hard-cap admission for one pending map: expired entries are
  /// reaped and, at the cap, the oldest entry is evicted to make room —
  /// so no handshake flood can grow any map past config.pending_cap.
  template <typename Map>
  void admit_pending(Map& map, Timestamp now);

  struct PendingAccess {
    G1 shared;
    RouterId router_id;
    G1 g_rj, g_rr;
    Timestamp created = 0;
  };
  std::unordered_map<std::string, PendingAccess> pending_access_;

  struct PendingPeerInitiator {
    Fr r_j;
    G1 g_rj;
    Timestamp ts1;
    Timestamp created = 0;
  };
  std::unordered_map<std::string, PendingPeerInitiator> pending_peer_init_;

  struct PendingPeerResponder {
    G1 shared;
    Timestamp ts1, ts2;
    Timestamp created = 0;
  };
  std::unordered_map<std::string, PendingPeerResponder> pending_peer_resp_;

  /// Resend caches for the idempotent-resend mode, keyed by the SHA-256 of
  /// the triggering frame's full wire bytes (only *byte-identical*
  /// duplicates match): the serialized M~.2 a responder produced per hello
  /// and the serialized M~.3 an initiator produced per reply. Both are
  /// TTL'd and capped exactly like the pending maps.
  struct CachedWire {
    Bytes wire;
    Timestamp created = 0;
  };
  std::unordered_map<std::string, CachedWire> hello_replies_;
  std::unordered_map<std::string, CachedWire> peer_confirms_;

  UserStats stats_;
};

}  // namespace peace::proto
