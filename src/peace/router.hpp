// Mesh-router protocol endpoint: beacon generation (M.1), access-request
// handling (M.2 -> M.3), session management, and the client-puzzle DoS
// defence. One instance per router; the mesh simulator wires instances
// together over a lossy radio model.
#pragma once

#include <deque>
#include <unordered_map>
#include <unordered_set>

#include "peace/entities.hpp"
#include "peace/session.hpp"

namespace peace::proto {

/// Counters for the security analysis experiments (A1/A2/E8): why requests
/// were rejected and how much expensive work the router actually performed.
struct RouterStats {
  std::uint64_t beacons_sent = 0;
  std::uint64_t requests_received = 0;
  std::uint64_t accepted = 0;
  std::uint64_t rejected_unknown_beacon = 0;
  std::uint64_t rejected_stale = 0;
  std::uint64_t rejected_replay = 0;
  std::uint64_t rejected_puzzle = 0;
  std::uint64_t rejected_bad_signature = 0;
  std::uint64_t rejected_revoked = 0;
  std::uint64_t signature_verifications = 0;  // expensive pairing work
};

class MeshRouter {
 public:
  MeshRouter(RouterId id, curve::EcdsaKeyPair keypair,
             RouterCertificate certificate, SystemParams params,
             crypto::Drbg rng, ProtocolConfig config = {});

  RouterId id() const { return id_; }
  const RouterStats& stats() const { return stats_; }
  const RouterCertificate& certificate() const { return certificate_; }

  /// Installs newer signed revocation lists (stale or badly signed lists are
  /// rejected — the version check closes the paper's phishing window).
  void install_revocation_lists(const SignedRevocationList& crl,
                                const SignedRevocationList& url);

  /// Installs new system parameters after NO rotates the group master key
  /// (membership renewal). Pushed over the operator's secure channel;
  /// established sessions keep draining on their symmetric keys.
  void install_params(const SystemParams& params) { params_ = params; }

  /// Enables the client-puzzle defence (Sec. V.A) at the given difficulty.
  void set_under_attack(bool attacked, std::uint8_t difficulty_bits = 16);
  bool under_attack() const { return puzzle_difficulty_ > 0; }

  /// M.1: a fresh beacon — new random generator g and exponent rR each
  /// period, current CRL/URL attached, optionally a puzzle challenge.
  BeaconMessage make_beacon(Timestamp now);

  struct AccessOutcome {
    AccessConfirm confirm;
    Bytes session_id;
  };

  /// Paper step 3: full validation pipeline for M.2. Returns nullopt and
  /// bumps the matching rejection counter on failure; on success a session
  /// is established and M.3 returned.
  std::optional<AccessOutcome> handle_access_request(const AccessRequest& m2,
                                                     Timestamp now);

  /// Established session lookup (by the (g^rR, g^rj) identifier).
  Session* session(BytesView session_id);
  std::size_t session_count() const { return sessions_.size(); }

 private:
  struct BeaconState {
    G1 g;
    Fr r_r;
    Bytes g_rr_bytes;
    Timestamp ts = 0;
  };

  RouterId id_;
  curve::EcdsaKeyPair keypair_;
  RouterCertificate certificate_;
  SystemParams params_;
  crypto::Drbg rng_;
  ProtocolConfig config_;

  SignedRevocationList crl_;
  SignedRevocationList url_;
  std::vector<RevocationToken> url_tokens_;

  std::deque<BeaconState> recent_beacons_;
  std::uint8_t puzzle_difficulty_ = 0;
  Bytes puzzle_nonce_;

  std::unordered_set<std::string> seen_requests_;  // replay cache
  std::unordered_map<std::string, Session> sessions_;
  RouterStats stats_;
};

}  // namespace peace::proto
