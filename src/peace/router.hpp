// Mesh-router protocol endpoint: beacon generation (M.1), access-request
// handling (M.2 -> M.3), session management, and the client-puzzle DoS
// defence. One instance per router; the mesh simulator wires instances
// together over a lossy radio model.
#pragma once

#include <deque>
#include <memory>
#include <unordered_map>
#include <unordered_set>

#include "peace/entities.hpp"
#include "peace/revoke/shared.hpp"
#include "peace/session.hpp"
#include "peace/verify_pool.hpp"

namespace peace::proto {

/// Counters for the security analysis experiments (A1/A2/E8): why requests
/// were rejected and how much expensive work the router actually performed.
struct RouterStats {
  std::uint64_t beacons_sent = 0;
  std::uint64_t requests_received = 0;
  std::uint64_t accepted = 0;
  std::uint64_t rejected_unknown_beacon = 0;
  std::uint64_t rejected_stale = 0;
  std::uint64_t rejected_replay = 0;
  std::uint64_t rejected_puzzle = 0;
  std::uint64_t rejected_bad_signature = 0;
  std::uint64_t rejected_revoked = 0;
  std::uint64_t signature_verifications = 0;  // expensive pairing work
  std::uint64_t verify_batches = 0;           // multi-request batches run
  std::uint64_t batched_requests = 0;         // requests entering a batch
  // Delta revocation distribution (Sec. V.A at metro scale):
  std::uint64_t rl_deltas_applied = 0;    // chain advanced
  std::uint64_t rl_deltas_ignored = 0;    // stale / duplicate deliveries
  std::uint64_t rl_deltas_rejected = 0;   // forged or broken-chain deltas
  std::uint64_t rl_resyncs_requested = 0; // chain gaps -> full-list fetch
  std::uint64_t rl_resyncs_completed = 0;
  // Reliability layer (PROTOCOL.md §10):
  std::uint64_t confirms_resent = 0;  // duplicate M.2 answered with cached M.3
};

class MeshRouter {
 public:
  /// `revocation` lets many routers share one RCU snapshot state (the mesh
  /// simulator passes a segment-wide instance); null gives the router its
  /// own private state, preserving the standalone behaviour.
  MeshRouter(RouterId id, curve::EcdsaKeyPair keypair,
             RouterCertificate certificate, SystemParams params,
             crypto::Drbg rng, ProtocolConfig config = {},
             std::shared_ptr<revoke::SharedRevocationState> revocation = {});

  RouterId id() const { return id_; }
  const RouterStats& stats() const { return stats_; }
  const RouterCertificate& certificate() const { return certificate_; }

  /// Installs newer signed revocation lists (stale or badly signed lists are
  /// rejected — the version check closes the paper's phishing window).
  void install_revocation_lists(const SignedRevocationList& crl,
                                const SignedRevocationList& url);

  /// Delta path: offers every delta of an announcement to the shared state.
  /// Returns the resync requests (at most one per list kind) this router
  /// needs when a chain gap or break leaves it behind the NO.
  std::vector<RLResyncRequest> handle_rl_announce(const RLDeltaAnnounce& ann);

  /// Completes a resync round-trip with the NO's full list.
  void handle_rl_resync(const RLResyncResponse& resp);

  /// Switches the revocation check to epoch mode (nonzero `epoch`: the
  /// shared index answers is_revoked in O(1)) or back to per-message bases
  /// (epoch 0). Affects every router sharing this revocation state.
  void set_revocation_epoch(groupsig::Epoch epoch);

  /// The shared revocation state (for wiring and for tests).
  const std::shared_ptr<revoke::SharedRevocationState>& revocation() const {
    return revocation_;
  }

  /// Installs new system parameters after NO rotates the group master key
  /// (membership renewal). Pushed over the operator's secure channel;
  /// established sessions keep draining on their symmetric keys. The fixed
  /// pairing arguments (g2, w) are re-prepared here, once per rotation.
  void install_params(const SystemParams& params) {
    params_ = params;
    pgpk_ = groupsig::PreparedGroupPublicKey(params_.gpk);
    epoch_bases_.clear();  // bases are derived from (gpk, epoch)
  }

  /// Enables the client-puzzle defence (Sec. V.A) at the given difficulty.
  void set_under_attack(bool attacked, std::uint8_t difficulty_bits = 16);
  bool under_attack() const { return puzzle_difficulty_ > 0; }

  /// M.1: a fresh beacon — new random generator g and exponent rR each
  /// period, current CRL/URL attached, optionally a puzzle challenge.
  BeaconMessage make_beacon(Timestamp now);

  struct AccessOutcome {
    AccessConfirm confirm;
    Bytes session_id;
  };

  /// Paper step 3: full validation pipeline for M.2. Returns nullopt and
  /// bumps the matching rejection counter on failure; on success a session
  /// is established and M.3 returned. Equivalent to a batch of one.
  std::optional<AccessOutcome> handle_access_request(const AccessRequest& m2,
                                                     Timestamp now);

  /// Batch form: processes `batch` with results, sessions, stats, and
  /// rejection counters identical to calling handle_access_request on each
  /// element in order. The expensive signature verifications run on the
  /// VerifyPool (config.verify_threads) between a sequential precheck pass
  /// and a sequential in-order apply pass, so per-session ordering and the
  /// replay cache behave exactly as in the sequential path.
  std::vector<std::optional<AccessOutcome>> handle_access_requests(
      std::span<const AccessRequest> batch, Timestamp now);

  /// Established session lookup (by the (g^rR, g^rj) identifier).
  Session* session(BytesView session_id);
  std::size_t session_count() const { return sessions_.size(); }

  /// Tears down an established session (rekey retired it, or the peer is
  /// gone). Returns whether a session with that id existed. The replay
  /// cache entry survives, so the spent M.2 can never re-establish it.
  bool close_session(BytesView session_id);

  /// Replay-cache occupancy, for cap monitoring (bounded by
  /// config.replay_cache_cap via FIFO eviction).
  std::size_t replay_cache_size() const { return seen_requests_.size(); }

  /// Aggregate groupsig operation counters for all verifications this
  /// router performed (per-worker counters are merged in deterministically).
  const groupsig::OpCounters& verify_ops() const { return verify_ops_; }

 private:
  struct BeaconState {
    G1 g;
    Fr r_r;
    Bytes g_rr_bytes;
    Timestamp ts = 0;
  };

  /// One batch entry between the precheck, verify, and apply passes.
  struct PendingVerify;
  AccessOutcome accept_request(const AccessRequest& m2,
                               const BeaconState& beacon, const Bytes& sid,
                               const std::string& sid_hex);
  /// Step 3.3 for one verified request, against a batch-wide snapshot.
  /// `scan_pool` non-null shards a large-URL scan over the pool and must
  /// only be passed from a sequential context (pool batches do not nest);
  /// pooled callers pass nullptr and scan on their own worker.
  void revocation_check(PendingVerify& pv,
                        const revoke::RevocationSnapshot& snapshot,
                        VerifyPool* scan_pool = nullptr);

  RouterId id_;
  curve::EcdsaKeyPair keypair_;
  RouterCertificate certificate_;
  SystemParams params_;
  groupsig::PreparedGroupPublicKey pgpk_;  // fixed G2 args prepared once
  crypto::Drbg rng_;
  ProtocolConfig config_;
  std::unique_ptr<VerifyPool> pool_;  // null => verify inline
  groupsig::OpCounters verify_ops_;
  /// Secret per-router salt seeding the batch-verification randomizers
  /// (drawn once from rng_ at construction): adversaries cannot predict
  /// the small exponents their forgeries will be weighted by, while a
  /// seeded simulation still reproduces them bit-for-bit.
  Bytes batch_salt_;

  std::shared_ptr<revoke::SharedRevocationState> revocation_;  // never null

  /// Cross-request scan batching: epoch-mode bases depend only on
  /// (gpk, epoch), so every verification in a batch — and across batches —
  /// shares one PreparedBases per epoch instead of deriving its own.
  /// Mutated ONLY in the sequential precheck phase of
  /// handle_access_requests (and cleared in install_params); pool workers
  /// read it concurrently via find(), never insert. Bounded by
  /// kEpochBasesCacheCap with whole-cache eviction — epochs advance
  /// monotonically, so at steady state the cache holds the live epoch plus
  /// a few stragglers from an in-flight roll.
  static constexpr std::size_t kEpochBasesCacheCap = 8;
  std::unordered_map<groupsig::Epoch, groupsig::PreparedBases> epoch_bases_;

  std::deque<BeaconState> recent_beacons_;
  std::uint8_t puzzle_difficulty_ = 0;
  Bytes puzzle_nonce_;

  std::unordered_set<std::string> seen_requests_;  // replay cache
  /// Insertion order of the replay cache, for FIFO eviction at
  /// config.replay_cache_cap. Each entry carries the key of its cached M.3
  /// (empty when idempotent resend is off) so both are evicted together.
  std::deque<std::pair<std::string, std::string>> seen_order_;
  /// Idempotent-resend mode: the serialized M.3 per accepted M.2, keyed by
  /// SHA-256 of the M.2's full wire bytes — only a *byte-identical*
  /// retransmission can fish a confirmation back out.
  std::unordered_map<std::string, Bytes> confirm_cache_;
  std::unordered_map<std::string, Session> sessions_;
  RouterStats stats_;
};

}  // namespace peace::proto
