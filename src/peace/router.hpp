// Mesh-router protocol endpoint: beacon generation (M.1), access-request
// handling (M.2 -> M.3), session management, and the client-puzzle DoS
// defence. One instance per router; the mesh simulator wires instances
// together over a lossy radio model.
#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include "peace/entities.hpp"
#include "peace/session.hpp"

namespace peace::proto {

/// A fixed pool of std::jthread workers that executes indexed batch jobs.
/// Index distribution is a single atomic fetch_add over [0, count) — no
/// per-job queue nodes or locks on the hot path; the mutex/condvar pair is
/// only used to park idle workers between batches and to signal completion.
/// The calling thread participates in the batch, so a pool built with
/// `threads` runs at most `threads` jobs concurrently.
class VerifyPool {
 public:
  /// `threads` <= 1 spawns no workers: run() then executes inline.
  explicit VerifyPool(unsigned threads);
  VerifyPool(const VerifyPool&) = delete;
  VerifyPool& operator=(const VerifyPool&) = delete;

  unsigned threads() const {
    return static_cast<unsigned>(workers_.size()) + 1;
  }

  /// Invokes body(i) for every i in [0, count), distributing indices over
  /// the workers plus the calling thread; returns once all completed.
  /// `body` must tolerate concurrent invocation (distinct indices). If any
  /// invocation throws, every remaining index still runs and the first
  /// exception (in completion order) is rethrown here after the batch has
  /// fully drained — run() never returns or throws mid-batch.
  void run(std::size_t count, const std::function<void(std::size_t)>& body);

 private:
  /// Per-batch state, heap-allocated and shared with every worker that wakes
  /// for it. A worker that reads the batch for generation N but is
  /// descheduled until generation N+1 has been published only ever touches
  /// its own (kept-alive) Batch — never a newer batch's indices or a
  /// destroyed caller frame.
  struct Batch {
    std::function<void(std::size_t)> body;
    std::size_t count = 0;
    std::atomic<std::size_t> next_index{0};
    std::size_t completed = 0;          // guarded by the pool mutex
    std::exception_ptr error;           // first failure; guarded by mutex
  };

  void worker_loop(std::stop_token st);
  /// Claims and runs indices until the batch is exhausted; returns how many
  /// this thread completed. Catches per-index exceptions into `error`.
  std::size_t drain(Batch& batch, std::exception_ptr& error);
  /// Folds one participant's completions (and first error) into the batch
  /// under the pool mutex; signals cv_done_ when the batch fully drains.
  void finish(const std::shared_ptr<Batch>& batch, std::size_t done,
              std::exception_ptr error);

  std::mutex mutex_;
  std::condition_variable_any cv_start_;
  std::condition_variable cv_done_;
  std::uint64_t generation_ = 0;  // bumps once per batch; wakes workers
  std::shared_ptr<Batch> current_batch_;  // guarded by mutex_
  std::vector<std::jthread> workers_;
};

/// Counters for the security analysis experiments (A1/A2/E8): why requests
/// were rejected and how much expensive work the router actually performed.
struct RouterStats {
  std::uint64_t beacons_sent = 0;
  std::uint64_t requests_received = 0;
  std::uint64_t accepted = 0;
  std::uint64_t rejected_unknown_beacon = 0;
  std::uint64_t rejected_stale = 0;
  std::uint64_t rejected_replay = 0;
  std::uint64_t rejected_puzzle = 0;
  std::uint64_t rejected_bad_signature = 0;
  std::uint64_t rejected_revoked = 0;
  std::uint64_t signature_verifications = 0;  // expensive pairing work
  std::uint64_t verify_batches = 0;           // multi-request batches run
  std::uint64_t batched_requests = 0;         // requests entering a batch
};

class MeshRouter {
 public:
  MeshRouter(RouterId id, curve::EcdsaKeyPair keypair,
             RouterCertificate certificate, SystemParams params,
             crypto::Drbg rng, ProtocolConfig config = {});

  RouterId id() const { return id_; }
  const RouterStats& stats() const { return stats_; }
  const RouterCertificate& certificate() const { return certificate_; }

  /// Installs newer signed revocation lists (stale or badly signed lists are
  /// rejected — the version check closes the paper's phishing window).
  void install_revocation_lists(const SignedRevocationList& crl,
                                const SignedRevocationList& url);

  /// Installs new system parameters after NO rotates the group master key
  /// (membership renewal). Pushed over the operator's secure channel;
  /// established sessions keep draining on their symmetric keys. The fixed
  /// pairing arguments (g2, w) are re-prepared here, once per rotation.
  void install_params(const SystemParams& params) {
    params_ = params;
    pgpk_ = groupsig::PreparedGroupPublicKey(params_.gpk);
  }

  /// Enables the client-puzzle defence (Sec. V.A) at the given difficulty.
  void set_under_attack(bool attacked, std::uint8_t difficulty_bits = 16);
  bool under_attack() const { return puzzle_difficulty_ > 0; }

  /// M.1: a fresh beacon — new random generator g and exponent rR each
  /// period, current CRL/URL attached, optionally a puzzle challenge.
  BeaconMessage make_beacon(Timestamp now);

  struct AccessOutcome {
    AccessConfirm confirm;
    Bytes session_id;
  };

  /// Paper step 3: full validation pipeline for M.2. Returns nullopt and
  /// bumps the matching rejection counter on failure; on success a session
  /// is established and M.3 returned. Equivalent to a batch of one.
  std::optional<AccessOutcome> handle_access_request(const AccessRequest& m2,
                                                     Timestamp now);

  /// Batch form: processes `batch` with results, sessions, stats, and
  /// rejection counters identical to calling handle_access_request on each
  /// element in order. The expensive signature verifications run on the
  /// VerifyPool (config.verify_threads) between a sequential precheck pass
  /// and a sequential in-order apply pass, so per-session ordering and the
  /// replay cache behave exactly as in the sequential path.
  std::vector<std::optional<AccessOutcome>> handle_access_requests(
      std::span<const AccessRequest> batch, Timestamp now);

  /// Established session lookup (by the (g^rR, g^rj) identifier).
  Session* session(BytesView session_id);
  std::size_t session_count() const { return sessions_.size(); }

  /// Aggregate groupsig operation counters for all verifications this
  /// router performed (per-worker counters are merged in deterministically).
  const groupsig::OpCounters& verify_ops() const { return verify_ops_; }

 private:
  struct BeaconState {
    G1 g;
    Fr r_r;
    Bytes g_rr_bytes;
    Timestamp ts = 0;
  };

  /// One batch entry between the precheck, verify, and apply passes.
  struct PendingVerify;
  AccessOutcome accept_request(const AccessRequest& m2,
                               const BeaconState& beacon, const Bytes& sid,
                               const std::string& sid_hex);

  RouterId id_;
  curve::EcdsaKeyPair keypair_;
  RouterCertificate certificate_;
  SystemParams params_;
  groupsig::PreparedGroupPublicKey pgpk_;  // fixed G2 args prepared once
  crypto::Drbg rng_;
  ProtocolConfig config_;
  std::unique_ptr<VerifyPool> pool_;  // null => verify inline
  groupsig::OpCounters verify_ops_;

  SignedRevocationList crl_;
  SignedRevocationList url_;
  std::vector<RevocationToken> url_tokens_;

  std::deque<BeaconState> recent_beacons_;
  std::uint8_t puzzle_difficulty_ = 0;
  Bytes puzzle_nonce_;

  std::unordered_set<std::string> seen_requests_;  // replay cache
  std::unordered_map<std::string, Session> sessions_;
  RouterStats stats_;
};

}  // namespace peace::proto
