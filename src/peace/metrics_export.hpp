// Absorbs the stack's deterministic stats structs into the obs metrics
// registry (docs/OBSERVABILITY.md §2). The structs stay the collection
// mechanism — per-endpoint, plain uint64_t fields, bumped inline on the
// protocol paths with zero atomic traffic — and these functions mirror
// them into registry counters under stable names at export time.
//
// Every function uses Counter::set(), so a publish is idempotent: callers
// pass totals (already summed across endpoints where several exist) and
// may publish as often as they like. MeshNetwork::publish_metrics() is the
// usual caller; standalone harnesses can call these directly.
#pragma once

#include "groupsig/groupsig.hpp"
#include "peace/revoke/shared.hpp"
#include "peace/router.hpp"
#include "peace/user.hpp"

namespace peace::proto {

/// router.* counters (pass the sum over all routers).
void absorb_router_stats(const RouterStats& totals);

/// user.* counters (pass the sum over all users).
void absorb_user_stats(const UserStats& totals);

/// groupsig.verify.* counters — the routers' aggregated verification op
/// counts (pass the sum of MeshRouter::verify_ops() over all routers).
void absorb_verify_ops(const groupsig::OpCounters& totals);

/// revocation.* counters from the shared revocation state.
void absorb_revocation_stats(const revoke::SharedRevocationStats& totals);

/// Field-by-field sums, for callers aggregating over many endpoints.
RouterStats sum(const RouterStats& a, const RouterStats& b);
UserStats sum(const UserStats& a, const UserStats& b);

}  // namespace peace::proto
