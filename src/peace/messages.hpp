// Wire formats for every PEACE protocol message (paper Sec. IV):
//   M.1  router beacon              (g, g^rR, ts1, Sig_RSK, Cert, CRL, URL)
//   M.2  user access request        (g^rj, g^rR, ts2, group signature)
//   M.3  router access confirm      (g^rj, g^rR, E_K(MR, g^rj, g^rR))
//   M~.1 user hello (broadcast)     (g, g^rj, ts1, group signature)
//   M~.2 peer reply                 (g^rj, g^rl, ts2, group signature)
//   M~.3 initiator confirm          (g^rj, g^rl, E_K(g^rj, g^rl, ts1, ts2))
// plus router certificates and the signed CRL / URL revocation lists.
// All encodings are canonical (serde) and every decoder validates points.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "curve/ecdsa.hpp"
#include "groupsig/groupsig.hpp"
#include "peace/puzzle.hpp"

namespace peace::proto {

using curve::EcdsaSignature;
using curve::Fr;
using curve::G1;
using curve::G2;

/// Milliseconds of (simulated or wall) time.
using Timestamp = std::uint64_t;

/// Shared endpoint configuration.
struct ProtocolConfig {
  /// Maximum |now - ts| accepted on any timestamped message (ms).
  Timestamp replay_window_ms = 5000;
  /// How many recent beacon periods a router honours access requests for.
  std::size_t beacon_history = 8;
  /// Worker threads for the router's batch verification path
  /// (MeshRouter::handle_access_requests). 0 or 1 verifies inline on the
  /// calling thread; results are bit-identical either way.
  unsigned verify_threads = 0;
  /// Randomized batch verification (groupsig::BatchVerifier) for
  /// multi-request batches: one shared final exponentiation per batch plus
  /// bisection on failure, accept/reject bit-identical to per-signature
  /// verification (docs/CRYPTO.md §4). Applies to the router's M.2
  /// pipeline and the user's peer-hello batches, with or without a
  /// VerifyPool. Off = strict per-signature mode (the differential
  /// reference, and the mode to pick when auditing a single request's
  /// operation counts).
  bool batch_verify = true;

  // --- reliability layer (PROTOCOL.md §10) -------------------------------
  /// Idempotent resend handling: when a duplicate of an *accepted* M.2
  /// arrives (a retransmission after a lost M.3), resend the cached M.3
  /// instead of rejecting it as a replay, and answer a duplicate M~.1 with
  /// the cached M~.2. Resends mint no session, draw no randomness, and
  /// redo no pairing work. Off by default: the strict endpoints treat any
  /// duplicate as a replay, exactly as before this layer existed.
  bool idempotent_resend = false;
  /// TTL for pending-handshake state and resend caches; entries older than
  /// this are reaped before any insert. An abandoned handshake (lost M.2,
  /// peer gone) can therefore never strand state for longer than the TTL.
  Timestamp pending_ttl_ms = 30'000;
  /// Hard cap on every pending-handshake map and resend cache. When an
  /// insert would exceed it, the oldest entry is evicted first — bounding
  /// the state a handshake flood can pin regardless of the TTL.
  std::size_t pending_cap = 1024;
  /// Cap on the router's M.2 replay cache (FIFO eviction). Entries that
  /// age out of the cache are still protected by the timestamp window.
  std::size_t replay_cache_cap = 1 << 16;
};

using RouterId = std::uint32_t;
using GroupId = std::uint32_t;

/// The [i, j] index a group private key is issued under.
struct KeyIndex {
  GroupId group = 0;
  std::uint32_t member = 0;

  bool operator==(const KeyIndex&) const = default;
};

struct KeyIndexHash {
  std::size_t operator()(const KeyIndex& k) const {
    return (static_cast<std::size_t>(k.group) << 32) | k.member;
  }
};

/// Cert_k = {MR_k, RPK_k, ExpT, Sig_NSK} (paper IV.A).
struct RouterCertificate {
  RouterId router_id = 0;
  G1 public_key;
  Timestamp expires_at = 0;
  EcdsaSignature signature;  // by NO over (router_id, public_key, expires_at)

  /// The byte string NO signs.
  Bytes signed_payload() const;
  Bytes to_bytes() const;
  static RouterCertificate from_bytes(BytesView data);
};

/// A signed revocation list; `entries` are router ids (CRL) or serialized
/// revocation tokens (URL). `version` increases monotonically so stale lists
/// are detectable (the phishing-window analysis of Sec. V.A).
struct SignedRevocationList {
  std::uint64_t version = 0;
  Timestamp issued_at = 0;
  std::vector<Bytes> entries;
  EcdsaSignature signature;  // by NO

  Bytes signed_payload() const;
  Bytes to_bytes() const;
  static SignedRevocationList from_bytes(BytesView data);
};

/// Which of the two revocation lists a delta / resync message refers to.
enum class ListKind : std::uint8_t { kCrl = 0, kUrl = 1 };

/// One step of the NO's versioned delta revocation-list chain: transforms
/// the full list at (base_version, base_hash) into the list at `version` by
/// removing then adding entries. `base_hash` is SHA-256 over the
/// predecessor's canonical signed payload, so a receiver detects both gaps
/// (base_version mismatch) and divergent state (hash mismatch) before
/// mutating anything; `full_signature` is NO's ECDSA over the *resulting*
/// full list's payload, making the reconstruction bit-identical to (and as
/// authentic as) a full-list install.
struct RLDelta {
  ListKind kind = ListKind::kUrl;
  std::uint64_t base_version = 0;
  std::uint64_t version = 0;
  Timestamp issued_at = 0;
  Bytes base_hash;  // 32 bytes, SHA-256 of the predecessor list payload
  std::vector<Bytes> removed;
  std::vector<Bytes> added;
  EcdsaSignature full_signature;  // by NO, over the resulting full list
  EcdsaSignature signature;       // by NO, over this delta

  Bytes signed_payload() const;
  Bytes to_bytes() const;
  static RLDelta from_bytes(BytesView data);
};

/// NO -> routers: one or more consecutive deltas (a straggler that missed
/// an announcement can catch up from a later one carrying the back-log).
struct RLDeltaAnnounce {
  std::vector<RLDelta> deltas;

  Bytes to_bytes() const;
  static RLDeltaAnnounce from_bytes(BytesView data);
};

/// Router -> NO: the delta chain broke (gap or hash mismatch) — request a
/// full-list resync for `kind`; `have_version` lets NO skip a no-op.
struct RLResyncRequest {
  ListKind kind = ListKind::kUrl;
  std::uint64_t have_version = 0;

  Bytes to_bytes() const;
  static RLResyncRequest from_bytes(BytesView data);
};

/// NO -> router: the authoritative full list (already self-authenticating
/// via its NO signature + version).
struct RLResyncResponse {
  ListKind kind = ListKind::kUrl;
  SignedRevocationList full;

  Bytes to_bytes() const;
  static RLResyncResponse from_bytes(BytesView data);
};

/// M.1 — broadcast periodically by every mesh router.
struct BeaconMessage {
  RouterId router_id = 0;
  G1 g;        // fresh random generator for this beacon period
  G1 g_rr;     // g^rR
  Timestamp ts1 = 0;
  EcdsaSignature signature;  // by the router over (g, g_rr, ts1)
  RouterCertificate certificate;
  SignedRevocationList crl;
  SignedRevocationList url;
  /// DoS defence (Sec. V.A): present only while the router suspects attack.
  std::optional<PuzzleChallenge> puzzle;

  Bytes signed_payload() const;
  Bytes to_bytes() const;
  static BeaconMessage from_bytes(BytesView data);
};

/// M.2 — the user's anonymous access request. The group signature covers
/// (g^rj, g^rR, ts2); uid is never transmitted.
struct AccessRequest {
  G1 g_rj;
  G1 g_rr;
  Timestamp ts2 = 0;
  groupsig::Signature signature;
  std::optional<PuzzleSolution> puzzle_solution;

  /// The message the group signature is computed over.
  Bytes signed_payload() const;
  Bytes to_bytes() const;
  static AccessRequest from_bytes(BytesView data);
};

/// M.3 — the router's confirmation, proving knowledge of K = g^(rR rj).
struct AccessConfirm {
  G1 g_rj;
  G1 g_rr;
  Bytes ciphertext;  // E_K(router_id, g^rj, g^rR)

  Bytes to_bytes() const;
  static AccessConfirm from_bytes(BytesView data);
};

/// M~.1 — user j's local broadcast soliciting peer relaying.
struct PeerHello {
  G1 g;      // taken from the serving router's beacon
  G1 g_rj;
  Timestamp ts1 = 0;
  groupsig::Signature signature;

  Bytes signed_payload() const;
  Bytes to_bytes() const;
  static PeerHello from_bytes(BytesView data);
};

/// M~.2 — peer l's authenticated reply.
struct PeerReply {
  G1 g_rj;
  G1 g_rl;
  Timestamp ts2 = 0;
  groupsig::Signature signature;

  Bytes signed_payload() const;
  Bytes to_bytes() const;
  static PeerReply from_bytes(BytesView data);
};

/// M~.3 — initiator's key confirmation.
struct PeerConfirm {
  G1 g_rj;
  G1 g_rl;
  Bytes ciphertext;  // E_K(g^rj, g^rl, ts1, ts2)

  Bytes to_bytes() const;
  static PeerConfirm from_bytes(BytesView data);
};

/// Per-session data traffic: MAC-authenticated AEAD frames (the hybrid
/// design of Sec. V.C — group signatures only at session setup).
struct DataFrame {
  Bytes session_id;      // (g^rR || g^rj) or (g^rj || g^rl)
  std::uint64_t seq = 0;  // strictly increasing; receivers reject replays
  Bytes ciphertext;       // AEAD(payload), bound to session_id and seq

  Bytes to_bytes() const;
  static DataFrame from_bytes(BytesView data);
};

/// Session identifier helpers — sessions are identified only by pairs of
/// fresh random group elements (a privacy property the tests check).
Bytes session_id_from(const G1& a, const G1& b);

}  // namespace peace::proto
