#include "peace/persist/store.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace peace::persist {

namespace fs = std::filesystem;

namespace {

std::string padded(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%020llu",
                static_cast<unsigned long long>(v));
  return buf;
}

struct DirListing {
  // (base_seq, path), ascending by base_seq
  std::vector<std::pair<std::uint64_t, std::string>> segments;
  // (wal_seq, path), descending by wal_seq
  std::vector<std::pair<std::uint64_t, std::string>> snapshots;
};

std::optional<std::uint64_t> parse_numbered(const std::string& name,
                                            const char* prefix,
                                            const char* suffix) {
  const std::string pre(prefix), suf(suffix);
  if (name.size() != pre.size() + 20 + suf.size()) return std::nullopt;
  if (name.compare(0, pre.size(), pre) != 0) return std::nullopt;
  if (name.compare(name.size() - suf.size(), suf.size(), suf) != 0)
    return std::nullopt;
  std::uint64_t v = 0;
  for (std::size_t i = pre.size(); i < pre.size() + 20; ++i) {
    if (name[i] < '0' || name[i] > '9') return std::nullopt;
    v = v * 10 + static_cast<std::uint64_t>(name[i] - '0');
  }
  return v;
}

DirListing list_dir(const std::string& dir) {
  DirListing out;
  for (const auto& entry : fs::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (auto base = parse_numbered(name, "wal-", ".wal"))
      out.segments.emplace_back(*base, entry.path().string());
    else if (auto seq = parse_numbered(name, "snap-", ".snap"))
      out.snapshots.emplace_back(*seq, entry.path().string());
  }
  std::sort(out.segments.begin(), out.segments.end());
  std::sort(out.snapshots.begin(), out.snapshots.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  return out;
}

/// Moves a dead-branch segment aside so a future rotation can never collide
/// with its name; the bytes stay on disk for forensics.
void orphan_segment(const std::string& path) {
  std::string target = path + ".orphan";
  for (int i = 1; fs::exists(target); ++i)
    target = path + ".orphan" + std::to_string(i);
  fs::rename(path, target);
}

}  // namespace

std::string DurableStore::segment_path(std::uint64_t base_seq) const {
  return dir_ + "/wal-" + padded(base_seq) + ".wal";
}

std::string DurableStore::snapshot_path(std::uint64_t seq) const {
  return dir_ + "/snap-" + padded(seq) + ".snap";
}

DurableStore DurableStore::create(const std::string& dir, StoreOptions opts) {
  fs::create_directories(dir);
  const DirListing listing = list_dir(dir);
  if (!listing.segments.empty() || !listing.snapshots.empty())
    throw Error("persist: directory already contains a store: " + dir);
  WalSegment active =
      WalSegment::create(dir + "/wal-" + padded(0) + ".wal", 0,
                         genesis_chain());
  return DurableStore(dir, opts, std::move(active));
}

DurableStore::Recovered DurableStore::open(
    const std::string& dir, StoreOptions opts,
    const std::function<void(const RecordRef&, const WalRecord&)>& on_record) {
  obs::Span span("persist.recover", "persist");
  auto& reg = obs::Registry::global();
  const DirListing listing = list_dir(dir);
  if (listing.segments.empty())
    throw Error("persist: no wal segments in " + dir);

  RecoveryReport report;
  report.segments = listing.segments.size();

  // Parse every snapshot up front (there are at most keep_snapshots + 1);
  // damaged ones are skipped, older intact ones remain candidates.
  std::vector<SnapshotData> snaps;
  for (const auto& [seq, path] : listing.snapshots) {
    if (auto s = read_snapshot_file(path)) {
      snaps.push_back(std::move(*s));
    } else {
      ++report.snapshots_discarded;
    }
  }
  const std::uint64_t min_snap_seq = snaps.empty() ? 0 : snaps.back().wal_seq;

  // Scan every segment. Each is internally verified from its own header;
  // linkage between consecutive segments is verified separately so damage
  // in an old archive segment cannot silently corrupt newer state.
  struct SegState {
    std::uint64_t base = 0;
    std::string path;
    WalScanResult scan;
    bool linked = false;  // chains from the previous segment (or genesis)
    std::vector<TailRecord> records;  // kept only for base >= min_snap_seq
  };
  std::vector<SegState> segs;
  for (const auto& [base, path] : listing.segments) {
    SegState s;
    s.base = base;
    s.path = path;
    const bool keep_payloads = base >= min_snap_seq;
    try {
      s.scan = WalSegment::scan_file(
          path, [&](const WalRecord& rec, std::uint64_t offset) {
            RecordRef ref{rec.seq, base, offset, rec.type};
            if (on_record) on_record(ref, rec);
            if (keep_payloads) s.records.push_back({ref, rec});
          });
    } catch (const Error&) {
      // Unreadable header: the segment contributes nothing.
      s.scan.damage = WalDamage::kBadMagic;
      s.scan.base_seq = base;
    }
    report.records_scanned += s.scan.records;
    if (s.scan.damage != WalDamage::kNone && report.damage.empty())
      report.damage = wal_damage_name(s.scan.damage);
    segs.push_back(std::move(s));
  }
  // Linkage: segment i chains from segment i-1 iff its header anchor equals
  // the predecessor's end-of-scan position; the first segment must anchor
  // at genesis.
  for (std::size_t i = 0; i < segs.size(); ++i) {
    if (i == 0) {
      segs[i].linked = segs[i].scan.base_seq == 0 &&
                       segs[i].scan.base_chain == genesis_chain();
    } else {
      segs[i].linked = segs[i - 1].scan.damage == WalDamage::kNone &&
                       segs[i].scan.base_seq == segs[i - 1].scan.last_seq &&
                       segs[i].scan.base_chain == segs[i - 1].scan.last_chain;
    }
  }

  // Choose the newest snapshot that anchors into the scanned history:
  // either a segment rotation begins exactly at its (seq, chain), or it was
  // cut at the very end of a segment (crash between snapshot and rotation).
  const SnapshotData* chosen = nullptr;
  std::size_t anchor_idx = 0;  // segment the replay starts in
  bool anchor_at_end = false;
  for (const SnapshotData& s : snaps) {
    bool found = false;
    for (std::size_t i = 0; i < segs.size(); ++i) {
      if (segs[i].scan.base_seq == s.wal_seq &&
          segs[i].scan.base_chain == s.wal_chain) {
        chosen = &s;
        anchor_idx = i;
        anchor_at_end = false;
        found = true;
        break;
      }
      if (segs[i].scan.damage == WalDamage::kNone &&
          segs[i].scan.last_seq == s.wal_seq &&
          segs[i].scan.last_chain == s.wal_chain) {
        chosen = &s;
        anchor_idx = i;
        anchor_at_end = true;
        found = true;
        break;
      }
    }
    if (found) break;
    ++report.snapshots_discarded;
  }

  Bytes snapshot_payload;
  std::uint64_t snapshot_seq = 0;
  if (chosen != nullptr) {
    snapshot_payload = chosen->payload;
    snapshot_seq = chosen->wal_seq;
  } else if (snaps.empty() && segs[0].linked) {
    // No intact snapshot file at all: implicit empty state at genesis
    // (bare stores and unit tests; ControlPlane always writes a genesis
    // snapshot at create).
    anchor_idx = 0;
  } else {
    // Snapshots exist but none anchors into the scanned history (or the
    // genesis segment is gone): refusing is the only safe move — guessing
    // would surface partial or forked state.
    throw Error("persist: no usable snapshot or genesis segment in " + dir);
  }
  report.snapshot_seq = snapshot_seq;

  // Walk forward from the anchor while segments stay linked; collect the
  // replay tail and find the segment that becomes the active one.
  std::vector<TailRecord> tail;
  std::size_t active_idx = anchor_idx;
  for (std::size_t i = anchor_idx; i < segs.size(); ++i) {
    if (i > anchor_idx && !segs[i].linked) break;
    active_idx = i;
    for (const TailRecord& rec : segs[i].records)
      if (rec.record.seq > snapshot_seq) tail.push_back(rec);
    if (segs[i].scan.damage != WalDamage::kNone) break;  // truncated tail
  }
  (void)anchor_at_end;

  // Damage before the replay region is archive damage: spilled records in
  // that area are unreadable, but recovered state is unaffected.
  for (std::size_t i = 0; i < active_idx; ++i) {
    if (segs[i].scan.damage != WalDamage::kNone || !segs[i].linked)
      report.archive_damage = true;
  }

  // Orphan dead-branch segments past the active one so future rotations
  // cannot collide with their names.
  for (std::size_t i = active_idx + 1; i < segs.size(); ++i) {
    orphan_segment(segs[i].path);
    report.bytes_truncated +=
        segs[i].scan.good_bytes + segs[i].scan.dropped_bytes;
    report.archive_damage = true;
  }
  if (segs.size() > active_idx + 1 && report.damage.empty())
    report.damage = "segment_chain_break";

  // Re-open the active segment for appending (this truncates its damaged
  // tail, if any).
  WalScanResult active_scan;
  WalSegment active = WalSegment::open(segs[active_idx].path, active_scan);
  report.bytes_truncated += active_scan.dropped_bytes;

  report.tail_records = tail.size();
  span.arg("snapshot_seq", snapshot_seq);
  span.arg("tail_records", report.tail_records);
  span.arg("bytes_truncated", report.bytes_truncated);
  reg.counter("persist.records_recovered").add(report.tail_records);
  reg.counter("persist.bytes_truncated").add(report.bytes_truncated);
  reg.counter("persist.snapshots_discarded").add(report.snapshots_discarded);
  if (report.archive_damage) reg.counter("persist.archive_damage").add(1);

  DurableStore store(dir, opts, std::move(active));
  store.last_snapshot_seq_ = snapshot_seq;
  return Recovered{std::move(store), std::move(snapshot_payload),
                   std::move(tail), std::move(report)};
}

RecordRef DurableStore::append(std::uint8_t type, BytesView payload) {
  const std::uint64_t seq = active_.append(type, payload);
  if (opts_.sync_each_append) sync();
  auto& reg = obs::Registry::global();
  reg.counter("persist.wal_appends").add(1);
  reg.counter("persist.wal_bytes").add(payload.size() + 53);
  return RecordRef{seq, active_.base_seq(), active_.last_offset(), type};
}

void DurableStore::sync() {
  active_.sync();
  obs::Registry::global().counter("persist.wal_syncs").add(1);
}

void DurableStore::write_snapshot(BytesView payload) {
  obs::Span span("persist.snapshot", "persist");
  // Make every record the snapshot covers durable before the snapshot
  // itself can claim to cover it.
  sync();
  const std::uint64_t seq = active_.last_seq();
  const Bytes chain = active_.chain();
  write_snapshot_file(snapshot_path(seq), seq, chain, payload);
  // Rotate: subsequent records land in a fresh segment anchored at the
  // cut. An empty active segment is already that segment (e.g. the genesis
  // snapshot, or back-to-back snapshots) — rotating would collide with its
  // own file name.
  if (seq != active_.base_seq())
    active_ = WalSegment::create(segment_path(seq), seq, chain);
  last_snapshot_seq_ = seq;
  span.arg("seq", seq);
  span.arg("bytes", payload.size());
  auto& reg = obs::Registry::global();
  reg.counter("persist.snapshots_written").add(1);
  reg.counter("persist.snapshot_bytes").add(payload.size());
  // Prune old snapshot files (segments are the permanent archive).
  DirListing listing = list_dir(dir_);
  for (std::size_t i = opts_.keep_snapshots; i < listing.snapshots.size(); ++i)
    fs::remove(listing.snapshots[i].second);
}

std::optional<WalRecord> DurableStore::read(const RecordRef& ref) const {
  const std::string path = segment_path(ref.segment_base);
  auto rec = WalSegment::read_at(path, ref.offset);
  if (!rec.has_value() || rec->seq != ref.seq || rec->type != ref.type)
    return std::nullopt;
  obs::Registry::global().counter("persist.spill_reads").add(1);
  return rec;
}

}  // namespace peace::persist
