// Snapshot files for the operator persistence layer: a CRC-framed full
// state image bound to a position of the WAL hash chain. A snapshot names
// (wal_seq, wal_chain) — the exact record it was cut after — so recovery
// can verify that the segment it replays from continues the same history
// the snapshot captured (docs/ARCHITECTURE.md §8).
//
//   magic 'PSNP' | u8 version | u64 wal_seq | wal_chain[32]
//   | u32 payload_len | payload | crc32
//
// Snapshots are written to a temp file, fsynced, then renamed into place,
// so a crash mid-snapshot leaves either the old set or the new file — never
// a half-written image that parses.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "common/bytes.hpp"

namespace peace::persist {

struct SnapshotData {
  std::uint64_t wal_seq = 0;
  Bytes wal_chain;  // 32 bytes
  Bytes payload;
};

/// Atomically writes a snapshot file (temp + rename + fsync).
void write_snapshot_file(const std::string& path, std::uint64_t wal_seq,
                         BytesView wal_chain, BytesView payload);

/// Reads and validates a snapshot; nullopt on any framing/CRC damage (the
/// store then falls back to an older snapshot).
std::optional<SnapshotData> read_snapshot_file(const std::string& path);

}  // namespace peace::persist
