// ControlPlane: the crash-recoverable operator site (docs/ARCHITECTURE.md §8).
//
// Wraps NetworkOperator + TrustedThirdParty + the GroupManagers behind one
// durable, hash-chained log: every mutation appends exactly one record (a
// compound operation — issue batch, rotation, revocation — is one record,
// so crashes land on operation boundaries, never inside one), fsyncs it,
// and only then returns to the caller. Kill the process at ANY record
// boundary and recover() restores state byte-identical to a run that never
// crashed — including the DRBG, so the continuation is byte-identical too,
// and the revocation delta chain continues unbroken (resyncing routers
// never see a rollback).
//
// Deployment note (knowledge split): NO, TTP and the GMs remain separate
// objects with the paper's split state — the privacy tests still hold
// against them — but this class models them sharing ONE operator site and
// therefore one log. Records necessarily contain fields from several
// parties (an issue batch holds x's AND blinded A's); a multi-site split of
// the log itself is out of scope here (PROTOCOL.md §12).
//
// The log doubles as the accountability archive: enrollment receipts and
// GRT entries evicted from memory (bounded caches) are re-read from their
// WAL records on demand via the audit index, so law-authority traces keep
// working over spilled history.
#pragma once

#include <map>
#include <memory>
#include <optional>

#include "peace/entities.hpp"
#include "peace/persist/records.hpp"
#include "peace/persist/store.hpp"

namespace peace::persist {

struct ControlPlaneOptions {
  StoreOptions store;
  /// Records between automatic snapshots (0 = snapshot only on demand).
  std::size_t snapshot_every = 256;
  /// Enrollment receipts each GM keeps resident; older ones spill to the
  /// log (read back via receipt_for). SIZE_MAX = unbounded.
  std::size_t gm_receipt_cache_cap = std::size_t(-1);
  /// Archived (pre-rotation) eras whose GRT stays resident; older eras
  /// spill and are audited by streaming their issue records from the log.
  std::size_t archived_era_cache_cap = std::size_t(-1);
};

class ControlPlane {
 public:
  /// Initializes a fresh operator site in an empty `dir`: creates the
  /// store, the NO (from `rng`), the TTP signing key, and writes the
  /// genesis snapshot.
  static ControlPlane create(const std::string& dir, crypto::Drbg rng,
                             ControlPlaneOptions opts = {});

  /// Restores a site from `dir`: newest intact snapshot + chain-verified
  /// WAL replay. Damaged tails are truncated (the corresponding operations
  /// never escaped the site, see the write-ahead discipline above).
  static ControlPlane recover(const std::string& dir,
                              ControlPlaneOptions opts = {});

  // --- mutations (one WAL record each, durable before returning) ---------
  proto::GroupId register_group(const std::string& name, std::size_t num_keys);
  void reissue_group(proto::GroupId gid, std::size_t num_keys);
  void rotate_master_key(proto::Timestamp now);
  /// False when the key/router was already revoked (no record written —
  /// the delta chain stays duplicate-free).
  bool revoke_user_key(const proto::KeyIndex& idx, proto::Timestamp now);
  bool revoke_router(proto::RouterId id, proto::Timestamp now);
  proto::NetworkOperator::RouterProvision provision_router(
      proto::RouterId id, proto::Timestamp expires_at);
  proto::GroupManager::Enrollment enroll(proto::GroupId gid,
                                         const std::string& uid);
  void record_receipt(const proto::GroupManager::Enrollment& enrollment,
                      const proto::G1& user_public_key,
                      const curve::EcdsaSignature& signature);

  /// Cuts a snapshot now (also rotates the WAL segment).
  void snapshot();

  // --- entity access ------------------------------------------------------
  proto::NetworkOperator& no() { return *no_; }
  const proto::NetworkOperator& no() const { return *no_; }
  proto::TrustedThirdParty& ttp() { return ttp_; }
  const proto::TrustedThirdParty& ttp() const { return ttp_; }
  proto::GroupManager& gm(proto::GroupId gid);
  const proto::GroupManager& gm(proto::GroupId gid) const;
  std::vector<const proto::GroupManager*> group_managers() const;

  // --- spill-aware reads --------------------------------------------------
  /// Like GroupManager::receipt_for, but falls back to the WAL record when
  /// the receipt was evicted from the GM's cache.
  std::optional<proto::GroupManager::EnrollmentReceipt> receipt_for(
      const proto::KeyIndex& idx) const;
  /// Like NetworkOperator::audit, but also scans spilled archived eras by
  /// streaming their issue records from the log.
  std::optional<proto::AuditResult> audit(const proto::AccessRequest& m2) const;
  /// Law-authority trace over the whole site, spilled history included.
  std::optional<proto::LawAuthority::TraceResult> trace(
      const proto::AccessRequest& m2) const;

  // --- introspection ------------------------------------------------------
  /// Canonical full-state image (equals the snapshot payload); equal bytes
  /// iff equal operator state — the differential crash tests rely on this.
  Bytes state_bytes() const;
  const RecoveryReport& recovery_report() const { return report_; }
  const DurableStore& store() const { return store_; }
  std::uint64_t last_seq() const { return store_.last_seq(); }
  std::size_t receipts_spilled() const { return receipts_spilled_; }
  std::size_t grt_entries_spilled() const { return grt_spilled_; }

 private:
  ControlPlane(DurableStore store, ControlPlaneOptions opts);

  void apply_record(const RecordRef& ref, const WalRecord& rec);
  void load_state(BytesView payload);
  RecordRef append(RecordType type, BytesView payload);
  /// Registers a just-written (or replayed) record in the audit index.
  void index_record(const RecordRef& ref);
  void enforce_caps();
  void maybe_snapshot();
  GroupIssueRecord build_issue_record(const proto::GroupManager& gm,
                                      const std::string& name) const;
  std::vector<proto::NetworkOperator::GrtEntry> spilled_era_entries(
      std::size_t era) const;

  DurableStore store_;
  ControlPlaneOptions opts_;
  RecoveryReport report_;

  // unique_ptr: NetworkOperator is built after the store during recovery
  // and has no default constructor.
  std::unique_ptr<proto::NetworkOperator> no_;
  proto::TrustedThirdParty ttp_;
  std::map<proto::GroupId, proto::GroupManager> gms_;

  // --- audit index (persisted in every snapshot) -------------------------
  /// era -> refs of the GroupIssueRecords minted during it; index
  /// past_eras_.size() is the current era.
  std::vector<std::vector<RecordRef>> era_issue_refs_;
  /// (group, member) -> ref of the kReceiptArchived record.
  std::map<std::pair<proto::GroupId, std::uint32_t>, RecordRef> receipt_refs_;

  std::size_t records_since_snapshot_ = 0;
  std::size_t receipts_spilled_ = 0;
  std::size_t grt_spilled_ = 0;
};

}  // namespace peace::persist
