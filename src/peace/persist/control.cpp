#include "peace/persist/control.hpp"

#include <algorithm>

#include "common/serde.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace peace::persist {

using proto::GroupManager;
using proto::NetworkOperator;
using proto::TrustedThirdParty;

namespace {

std::pair<proto::GroupId, std::uint32_t> key_of(const proto::KeyIndex& idx) {
  return {idx.group, idx.member};
}

void write_ref(Writer& w, const RecordRef& ref) {
  w.u64(ref.seq);
  w.u64(ref.segment_base);
  w.u64(ref.offset);
  w.u8(ref.type);
}

RecordRef read_ref(Reader& r) {
  RecordRef ref;
  ref.seq = r.u64();
  ref.segment_base = r.u64();
  ref.offset = r.u64();
  ref.type = r.u8();
  return ref;
}

}  // namespace

ControlPlane::ControlPlane(DurableStore store, ControlPlaneOptions opts)
    : store_(std::move(store)), opts_(opts) {
  era_issue_refs_.push_back({});
}

ControlPlane ControlPlane::create(const std::string& dir, crypto::Drbg rng,
                                  ControlPlaneOptions opts) {
  ControlPlane cp(DurableStore::create(dir, opts.store), opts);
  cp.no_ = std::make_unique<NetworkOperator>(std::move(rng));
  // Eager TTP key: lazily creating it during the first deposit would draw
  // randomness replay cannot reproduce. Here it lands in the genesis
  // snapshot instead.
  cp.ttp_.ensure_signing_key(cp.no_->rng_);
  cp.snapshot();
  return cp;
}

ControlPlane ControlPlane::recover(const std::string& dir,
                                   ControlPlaneOptions opts) {
  obs::Span span("control.recover", "persist");
  StoreRecovery rec = DurableStore::open(dir, opts.store);
  ControlPlane cp(std::move(rec.store), opts);
  cp.report_ = std::move(rec.report);
  if (rec.snapshot.empty())
    throw Error("persist: control plane requires a genesis snapshot");
  cp.load_state(rec.snapshot);
  for (const TailRecord& t : rec.tail) cp.apply_record(t.ref, t.record);
  cp.records_since_snapshot_ = rec.tail.size();
  span.arg("tail_records", rec.tail.size());
  obs::Registry::global().counter("persist.control_recoveries").add(1);
  return cp;
}

// --- state image -------------------------------------------------------------

Bytes ControlPlane::state_bytes() const {
  Writer w;
  w.str("peace/control-state-v1");
  w.bytes(no_->state_bytes());
  w.bytes(ttp_.state_bytes());
  w.u64(gms_.size());
  for (const auto& [gid, gm] : gms_) w.bytes(gm.state_bytes());
  w.u64(era_issue_refs_.size());
  for (const auto& era : era_issue_refs_) {
    w.u64(era.size());
    for (const RecordRef& ref : era) write_ref(w, ref);
  }
  w.u64(receipt_refs_.size());
  for (const auto& [key, ref] : receipt_refs_) {
    w.u32(key.first);
    w.u32(key.second);
    write_ref(w, ref);
  }
  return w.take();
}

void ControlPlane::load_state(BytesView payload) {
  Reader r(payload);
  if (r.str() != "peace/control-state-v1")
    throw Error("persist: bad control-plane snapshot");
  no_ = std::make_unique<NetworkOperator>(
      NetworkOperator::from_state(r.bytes()));
  ttp_ = TrustedThirdParty::from_state(r.bytes());
  gms_.clear();
  for (std::uint64_t i = 0, n = r.u64(); i < n; ++i) {
    GroupManager gm = GroupManager::from_state(r.bytes());
    const proto::GroupId gid = gm.id();
    gms_.emplace(gid, std::move(gm));
  }
  era_issue_refs_.clear();
  for (std::uint64_t i = 0, n = r.u64(); i < n; ++i) {
    std::vector<RecordRef> era;
    for (std::uint64_t j = 0, m = r.u64(); j < m; ++j)
      era.push_back(read_ref(r));
    era_issue_refs_.push_back(std::move(era));
  }
  receipt_refs_.clear();
  for (std::uint64_t i = 0, n = r.u64(); i < n; ++i) {
    const proto::GroupId g = r.u32();
    const std::uint32_t m = r.u32();
    receipt_refs_[{g, m}] = read_ref(r);
  }
  r.expect_end();
  if (era_issue_refs_.empty()) era_issue_refs_.push_back({});
}

// --- write path --------------------------------------------------------------

RecordRef ControlPlane::append(RecordType type, BytesView payload) {
  const RecordRef ref =
      store_.append(static_cast<std::uint8_t>(type), payload);
  ++records_since_snapshot_;
  return ref;
}

void ControlPlane::maybe_snapshot() {
  if (opts_.snapshot_every != 0 &&
      records_since_snapshot_ >= opts_.snapshot_every)
    snapshot();
}

void ControlPlane::snapshot() {
  store_.write_snapshot(state_bytes());
  records_since_snapshot_ = 0;
}

void ControlPlane::enforce_caps() {
  auto& reg = obs::Registry::global();
  if (opts_.gm_receipt_cache_cap != std::size_t(-1)) {
    for (auto& [gid, gm] : gms_) {
      const std::size_t evicted =
          gm.evict_receipts_over(opts_.gm_receipt_cache_cap);
      if (evicted != 0) {
        receipts_spilled_ += evicted;
        reg.counter("persist.receipts_spilled").add(evicted);
      }
    }
  }
  if (opts_.archived_era_cache_cap != std::size_t(-1)) {
    std::size_t resident = 0;
    for (std::size_t i = 0; i < no_->archived_era_count(); ++i)
      if (!no_->era_spilled(i)) ++resident;
    for (std::size_t i = 0; i < no_->archived_era_count() &&
                            resident > opts_.archived_era_cache_cap;
         ++i) {
      if (no_->era_spilled(i)) continue;
      const std::size_t freed = no_->spill_archived_era(i);
      grt_spilled_ += freed;
      reg.counter("persist.grt_spilled").add(freed);
      --resident;
    }
  }
}

// Builds the issue record for the batch the GM currently holds unassigned
// (exactly the freshly minted one: register starts empty, reissue cleared
// the previous era's leftovers).
GroupIssueRecord ControlPlane::build_issue_record(
    const GroupManager& gm, const std::string& name) const {
  GroupIssueRecord rec;
  rec.gid = gm.id();
  rec.name = name;
  rec.grp = gm.group_secret();
  rec.next_member_after = no_->next_member_.at(gm.id());
  for (const auto& [idx, x] : gm.unassigned_) {
    IssuedKey k;
    k.index = idx;
    k.x = x;
    k.blinded = ttp_.blinded_store().at(key_of(idx));
    const auto& grt = no_->grt_entries();
    const auto it = std::find_if(
        grt.rbegin(), grt.rend(),
        [idx = idx](const NetworkOperator::GrtEntry& e) {
          return e.index == idx;
        });
    if (it == grt.rend())
      throw Error("persist: minted key missing from grt");
    k.token = it->token.to_bytes();
    rec.keys.push_back(std::move(k));
  }
  rec.rng_state = no_->rng_.export_state();
  return rec;
}

proto::GroupId ControlPlane::register_group(const std::string& name,
                                            std::size_t num_keys) {
  obs::Span span("control.register_group", "persist");
  GroupManager gm = no_->register_group(name, num_keys, ttp_);
  const proto::GroupId gid = gm.id();
  const GroupIssueRecord rec = build_issue_record(gm, name);
  gms_.emplace(gid, std::move(gm));
  const RecordRef ref =
      append(RecordType::kGroupRegistered, rec.to_bytes());
  era_issue_refs_.back().push_back(ref);
  enforce_caps();
  maybe_snapshot();
  span.arg("gid", gid);
  span.arg("keys", num_keys);
  return gid;
}

void ControlPlane::reissue_group(proto::GroupId gid, std::size_t num_keys) {
  obs::Span span("control.reissue_group", "persist");
  GroupManager& gm = this->gm(gid);
  no_->reissue_group(gm, num_keys, ttp_);
  const GroupIssueRecord rec = build_issue_record(gm, "");
  const RecordRef ref = append(RecordType::kGroupReissued, rec.to_bytes());
  era_issue_refs_.back().push_back(ref);
  enforce_caps();
  maybe_snapshot();
  span.arg("gid", gid);
  span.arg("keys", num_keys);
}

void ControlPlane::rotate_master_key(proto::Timestamp now) {
  obs::Span span("control.rotate_master_key", "persist");
  no_->rotate_master_key(now);
  MasterRotatedRecord rec;
  rec.new_gamma = no_->issuer_.gamma();
  rec.url_delta = no_->url_deltas_.back().to_bytes();
  rec.rng_state = no_->rng_.export_state();
  append(RecordType::kMasterRotated, rec.to_bytes());
  era_issue_refs_.push_back({});
  enforce_caps();
  maybe_snapshot();
}

bool ControlPlane::revoke_user_key(const proto::KeyIndex& idx,
                                   proto::Timestamp now) {
  const std::uint64_t before = no_->current_url().version;
  no_->revoke_user_key(idx, now);
  if (no_->current_url().version == before) return false;  // already revoked
  RevocationRecord rec;
  rec.delta = no_->url_deltas_.back().to_bytes();
  rec.rng_state = no_->rng_.export_state();
  append(RecordType::kUserRevoked, rec.to_bytes());
  enforce_caps();
  maybe_snapshot();
  return true;
}

bool ControlPlane::revoke_router(proto::RouterId id, proto::Timestamp now) {
  const std::uint64_t before = no_->current_crl().version;
  no_->revoke_router(id, now);
  if (no_->current_crl().version == before) return false;
  RevocationRecord rec;
  rec.delta = no_->crl_deltas_.back().to_bytes();
  rec.rng_state = no_->rng_.export_state();
  append(RecordType::kRouterRevoked, rec.to_bytes());
  enforce_caps();
  maybe_snapshot();
  return true;
}

NetworkOperator::RouterProvision ControlPlane::provision_router(
    proto::RouterId id, proto::Timestamp expires_at) {
  NetworkOperator::RouterProvision p = no_->provision_router(id, expires_at);
  RouterProvisionedRecord rec;
  rec.certificate = p.certificate.to_bytes();
  rec.rng_state = no_->rng_.export_state();
  append(RecordType::kRouterProvisioned, rec.to_bytes());
  maybe_snapshot();
  return p;
}

GroupManager::Enrollment ControlPlane::enroll(proto::GroupId gid,
                                              const std::string& uid) {
  GroupManager::Enrollment e = gm(gid).enroll(uid, ttp_);
  EnrolledRecord rec;
  rec.index = e.index;
  rec.uid = uid;
  append(RecordType::kEnrolled, rec.to_bytes());
  maybe_snapshot();
  return e;
}

void ControlPlane::record_receipt(const GroupManager::Enrollment& enrollment,
                                  const proto::G1& user_public_key,
                                  const curve::EcdsaSignature& signature) {
  gm(enrollment.index.group)
      .record_receipt(enrollment, user_public_key, signature);
  ReceiptArchivedRecord rec;
  rec.index = enrollment.index;
  rec.user_public_key = curve::g1_to_bytes(user_public_key);
  rec.signature = signature.to_bytes();
  const RecordRef ref =
      append(RecordType::kReceiptArchived, rec.to_bytes());
  receipt_refs_[key_of(enrollment.index)] = ref;
  enforce_caps();
  maybe_snapshot();
}

// --- replay ------------------------------------------------------------------

void ControlPlane::apply_record(const RecordRef& ref, const WalRecord& rec) {
  switch (static_cast<RecordType>(rec.type)) {
    case RecordType::kGroupRegistered:
    case RecordType::kGroupReissued: {
      const GroupIssueRecord r = GroupIssueRecord::from_bytes(rec.payload);
      std::vector<NetworkOperator::GrtEntry> entries;
      std::vector<std::pair<proto::KeyIndex, Fr>> keys;
      for (const IssuedKey& k : r.keys) {
        entries.push_back({groupsig::RevocationToken::from_bytes(k.token),
                           r.gid, k.index});
        keys.emplace_back(k.index, k.x);
        ttp_.replay_deposit(k.index, k.blinded);
      }
      no_->replay_issue(r.gid, r.grp, r.next_member_after, std::move(entries));
      no_->restore_rng(r.rng_state);
      if (static_cast<RecordType>(rec.type) == RecordType::kGroupRegistered) {
        GroupManager gm(r.gid, r.name);
        gm.receive_allocation(r.grp, std::move(keys));
        gms_.emplace(r.gid, std::move(gm));
      } else {
        gm(r.gid).rekey(r.grp, std::move(keys));
      }
      era_issue_refs_.back().push_back(ref);
      break;
    }
    case RecordType::kMasterRotated: {
      const MasterRotatedRecord r = MasterRotatedRecord::from_bytes(rec.payload);
      no_->replay_rotation(r.new_gamma);
      no_->replay_revocation(proto::RLDelta::from_bytes(r.url_delta));
      no_->restore_rng(r.rng_state);
      era_issue_refs_.push_back({});
      break;
    }
    case RecordType::kUserRevoked:
    case RecordType::kRouterRevoked: {
      const RevocationRecord r = RevocationRecord::from_bytes(rec.payload);
      no_->replay_revocation(proto::RLDelta::from_bytes(r.delta));
      no_->restore_rng(r.rng_state);
      break;
    }
    case RecordType::kRouterProvisioned: {
      const RouterProvisionedRecord r =
          RouterProvisionedRecord::from_bytes(rec.payload);
      no_->restore_rng(r.rng_state);
      break;
    }
    case RecordType::kEnrolled: {
      const EnrolledRecord r = EnrolledRecord::from_bytes(rec.payload);
      gm(r.index.group).replay_enroll(r.index, r.uid);
      ttp_.replay_deliver(r.index, r.uid);
      break;
    }
    case RecordType::kReceiptArchived: {
      const ReceiptArchivedRecord r =
          ReceiptArchivedRecord::from_bytes(rec.payload);
      GroupManager::EnrollmentReceipt receipt;
      receipt.user_public_key = curve::g1_from_bytes(r.user_public_key);
      receipt.signature = curve::EcdsaSignature::from_bytes(r.signature);
      gm(r.index.group).store_receipt(r.index, std::move(receipt));
      receipt_refs_[key_of(r.index)] = ref;
      break;
    }
    default:
      throw Error("persist: unknown record type in wal");
  }
  // Mirror the live write path: caps are enforced after every operation,
  // so the recovered trajectory matches the uninterrupted one exactly.
  enforce_caps();
}

// --- entity access -----------------------------------------------------------

GroupManager& ControlPlane::gm(proto::GroupId gid) {
  const auto it = gms_.find(gid);
  if (it == gms_.end()) throw Error("persist: unknown group manager");
  return it->second;
}

const GroupManager& ControlPlane::gm(proto::GroupId gid) const {
  const auto it = gms_.find(gid);
  if (it == gms_.end()) throw Error("persist: unknown group manager");
  return it->second;
}

std::vector<const GroupManager*> ControlPlane::group_managers() const {
  std::vector<const GroupManager*> out;
  out.reserve(gms_.size());
  for (const auto& [gid, gm] : gms_) out.push_back(&gm);
  return out;
}

// --- spill-aware reads -------------------------------------------------------

std::optional<GroupManager::EnrollmentReceipt> ControlPlane::receipt_for(
    const proto::KeyIndex& idx) const {
  const auto it = gms_.find(idx.group);
  if (it != gms_.end()) {
    if (auto receipt = it->second.receipt_for(idx)) return receipt;
  }
  const auto rit = receipt_refs_.find(key_of(idx));
  if (rit == receipt_refs_.end()) return std::nullopt;
  const auto rec = store_.read(rit->second);
  if (!rec.has_value()) return std::nullopt;
  const ReceiptArchivedRecord r = ReceiptArchivedRecord::from_bytes(rec->payload);
  GroupManager::EnrollmentReceipt receipt;
  receipt.user_public_key = curve::g1_from_bytes(r.user_public_key);
  receipt.signature = curve::EcdsaSignature::from_bytes(r.signature);
  return receipt;
}

std::vector<NetworkOperator::GrtEntry> ControlPlane::spilled_era_entries(
    std::size_t era) const {
  std::vector<NetworkOperator::GrtEntry> entries;
  if (era >= era_issue_refs_.size()) return entries;
  for (const RecordRef& ref : era_issue_refs_[era]) {
    const auto rec = store_.read(ref);
    if (!rec.has_value()) continue;  // archive damage: reported at recovery
    const GroupIssueRecord r = GroupIssueRecord::from_bytes(rec->payload);
    for (const IssuedKey& k : r.keys)
      entries.push_back({groupsig::RevocationToken::from_bytes(k.token),
                         r.gid, k.index});
  }
  return entries;
}

std::optional<proto::AuditResult> ControlPlane::audit(
    const proto::AccessRequest& m2) const {
  if (auto hit = no_->audit(m2)) return hit;
  // Spilled archived eras: stream their GRT back from the log and scan
  // with that era's gpk — newest rotation first, like the resident path.
  const Bytes payload = m2.signed_payload();
  for (std::size_t era = no_->archived_era_count(); era-- > 0;) {
    if (!no_->era_spilled(era)) continue;
    const auto entries = spilled_era_entries(era);
    if (entries.empty()) continue;
    obs::Span span("control.audit_spilled_era", "persist");
    span.arg("era", era);
    span.arg("tokens", entries.size());
    const groupsig::PreparedBases prepared =
        groupsig::prepare_bases(no_->archived_gpk(era), payload, m2.signature);
    groupsig::TokenScan scan(prepared, m2.signature);
    for (const auto& e : entries) scan.add(e.token);
    const std::size_t hit = scan.first_match();
    if (hit != groupsig::TokenScan::npos)
      return proto::AuditResult{entries[hit].token, entries[hit].group_id,
                                entries[hit].index, hit + 1};
  }
  return std::nullopt;
}

std::optional<proto::LawAuthority::TraceResult> ControlPlane::trace(
    const proto::AccessRequest& m2) const {
  const auto hit = audit(m2);
  if (!hit.has_value()) return std::nullopt;
  const auto it = gms_.find(hit->group_id);
  if (it == gms_.end()) return std::nullopt;
  const auto uid = it->second.uid_for_index(hit->index);
  if (!uid.has_value()) return std::nullopt;
  return proto::LawAuthority::TraceResult{
      *uid, hit->group_id, hit->index, receipt_for(hit->index).has_value()};
}

}  // namespace peace::persist
