// DurableStore: a directory of WAL segments plus snapshots, managed as one
// append-only, hash-chained history (docs/ARCHITECTURE.md §8).
//
//   dir/wal-<base_seq>.wal   segments; base_seq = seq of the record *before*
//                            the segment's first (0 for the genesis segment)
//   dir/snap-<seq>.snap      full-state images cut after record <seq>
//
// A snapshot rotates the log: the active segment is closed and a new one
// anchored at (seq, chain) starts. Rotated segments are never deleted — in
// an accountability system the log IS the evidence archive (enrollment
// receipts, GRT entries, delta chains), so compaction bounds *recovery
// replay* and *memory*, not disk. Recovery picks the newest intact
// snapshot, replays the chain-verified records after it, and truncates any
// damaged tail; damage confined to pre-snapshot archive segments is
// reported but does not block state recovery.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "peace/persist/snapshot.hpp"
#include "peace/persist/wal.hpp"

namespace peace::persist {

/// Durable location of a record — stable across restarts, used by the
/// spill/audit index to stream archived records back from disk.
struct RecordRef {
  std::uint64_t seq = 0;
  std::uint64_t segment_base = 0;  // segment file identity
  std::uint64_t offset = 0;        // frame offset within the segment
  std::uint8_t type = 0;
};

struct RecoveryReport {
  std::uint64_t snapshot_seq = 0;       // seq of the snapshot restored from
  std::uint64_t snapshots_discarded = 0;  // damaged snapshots skipped
  std::uint64_t records_scanned = 0;    // intact records across all segments
  std::uint64_t tail_records = 0;       // records replayed after the snapshot
  std::uint64_t bytes_truncated = 0;    // damaged suffix dropped from the log
  std::uint64_t segments = 0;
  bool archive_damage = false;  // damage before the snapshot (state intact)
  std::string damage;           // first damage kind, "" when clean
};

struct StoreOptions {
  /// fsync after every append (write-ahead durability: a record is on disk
  /// before its effects are announced). Benches may turn this off.
  bool sync_each_append = true;
  /// Snapshot files retained per store (segments are always retained).
  std::size_t keep_snapshots = 2;
};

struct StoreRecovery;

class DurableStore {
 public:
  using Recovered = StoreRecovery;

  /// Initializes an empty directory (created if missing; must not already
  /// contain a store).
  static DurableStore create(const std::string& dir, StoreOptions opts = {});

  /// Opens an existing store: validates snapshots newest-first, scans every
  /// segment (rebuild hook `on_record` sees each intact record with its
  /// ref), truncates damaged tails, and returns the newest usable snapshot
  /// plus the chain-verified records after it.
  static StoreRecovery open(
      const std::string& dir, StoreOptions opts = {},
      const std::function<void(const RecordRef&, const WalRecord&)>&
          on_record = {});

  DurableStore(DurableStore&&) = default;
  DurableStore& operator=(DurableStore&&) = default;

  /// Appends one record (fsynced per StoreOptions); returns its ref.
  RecordRef append(std::uint8_t type, BytesView payload);
  void sync();

  /// Writes a snapshot of the current position and rotates to a fresh
  /// segment. Older snapshots beyond keep_snapshots are pruned.
  void write_snapshot(BytesView payload);

  /// Validated random-access read (spill path). Nullopt if the record's
  /// segment or frame is damaged or the ref is unknown.
  std::optional<WalRecord> read(const RecordRef& ref) const;

  std::uint64_t last_seq() const { return active_.last_seq(); }
  std::uint64_t last_snapshot_seq() const { return last_snapshot_seq_; }
  const Bytes& chain() const { return active_.chain(); }
  const std::string& dir() const { return dir_; }

 private:
  DurableStore(std::string dir, StoreOptions opts, WalSegment active)
      : dir_(std::move(dir)), opts_(opts), active_(std::move(active)) {}

  std::string segment_path(std::uint64_t base_seq) const;
  std::string snapshot_path(std::uint64_t seq) const;

  std::string dir_;
  StoreOptions opts_;
  WalSegment active_;
  std::uint64_t last_snapshot_seq_ = 0;
};

/// A replay-tail record together with its durable location (the ref feeds
/// the spill/audit index rebuild).
struct TailRecord {
  RecordRef ref;
  WalRecord record;
};

struct StoreRecovery {
  DurableStore store;
  Bytes snapshot;  // payload of the snapshot restored from
  std::vector<TailRecord> tail;
  RecoveryReport report;
};

}  // namespace peace::persist
