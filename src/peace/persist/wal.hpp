// Append-only, hash-chained, CRC-framed write-ahead log segment — the
// durable substrate of the operator control plane (docs/ARCHITECTURE.md §8).
//
// A segment file is a fixed header followed by framed records:
//
//   header:  magic 'PWAL' | u8 version | u64 base_seq | base_chain[32] | crc32
//   record:  magic 'PREC' | u64 seq | u8 type | u32 len | payload
//            | chain[32] | crc32
//
// All integers big-endian; crc32 is the IEEE/zlib polynomial over every
// preceding byte of the frame. The chain field is
//
//   chain_i = SHA-256(chain_{i-1} || be64(seq) || u8(type) || be32(len)
//                     || payload)
//
// with chain_{base_seq} given by the header (the genesis chain for the
// first segment, the snapshot cut for rotated ones). A record is accepted
// only if its magic, CRC, seq (= predecessor + 1) and chain all check out —
// so a truncated tail, a flipped bit, a forked rewrite of history, or a
// duplicated splice each invalidate the frame where the damage starts and
// everything after it. Recovery truncates to the last good record and
// reports what it dropped; it never surfaces partial state.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/bytes.hpp"

namespace peace::persist {

/// CRC-32 (reflected, polynomial 0xEDB88320 — bit-compatible with
/// Python's zlib.crc32, which tools/log_inspect.py uses).
std::uint32_t crc32(BytesView data, std::uint32_t crc = 0);

/// chain_{base} of the very first segment of a store.
Bytes genesis_chain();

/// Advances the hash chain over one record.
Bytes chain_next(BytesView prev_chain, std::uint64_t seq, std::uint8_t type,
                 BytesView payload);

struct WalRecord {
  std::uint64_t seq = 0;
  std::uint8_t type = 0;
  Bytes payload;
};

/// Why a segment scan stopped before end-of-file.
enum class WalDamage {
  kNone,         // clean end of file
  kTruncated,    // partial frame at the tail (torn write)
  kBadMagic,     // frame marker gone
  kBadCrc,       // checksum mismatch (bit rot / corruption)
  kBadSeq,       // sequence break (spliced or duplicated frames)
  kBadChain,     // hash chain mismatch (forked history)
};

const char* wal_damage_name(WalDamage d);

struct WalScanResult {
  std::uint64_t base_seq = 0;       // header anchor: seq before the first record
  Bytes base_chain;                 // header anchor: chain at base_seq
  std::uint64_t records = 0;        // intact records seen
  std::uint64_t last_seq = 0;       // seq of the last intact record
  Bytes last_chain;                 // chain value after the last record
  std::uint64_t good_bytes = 0;     // file prefix covered by intact frames
  std::uint64_t dropped_bytes = 0;  // damaged suffix length
  WalDamage damage = WalDamage::kNone;
};

/// One segment file. The writer keeps the fd open and appends framed
/// records; open() scans an existing file, truncating any damaged tail.
class WalSegment {
 public:
  static constexpr std::uint32_t kHeaderMagic = 0x5057414Cu;  // 'PWAL'
  static constexpr std::uint32_t kRecordMagic = 0x50524543u;  // 'PREC'
  static constexpr std::uint8_t kVersion = 1;
  static constexpr std::size_t kHeaderSize = 4 + 1 + 8 + 32 + 4;

  WalSegment(const WalSegment&) = delete;
  WalSegment& operator=(const WalSegment&) = delete;
  WalSegment(WalSegment&& o) noexcept;
  WalSegment& operator=(WalSegment&& o) noexcept;
  ~WalSegment();

  /// Creates a fresh segment anchored at (base_seq, base_chain).
  static WalSegment create(const std::string& path, std::uint64_t base_seq,
                           BytesView base_chain);

  /// Opens an existing segment for appending: validates the header, scans
  /// every record (invoking `on_record` with the record and its file
  /// offset), and truncates the file after the last intact record. Throws
  /// Error on an unreadable or header-corrupt file — the store treats that
  /// segment as unusable rather than guessing.
  static WalSegment open(
      const std::string& path, WalScanResult& scan,
      const std::function<void(const WalRecord&, std::uint64_t offset)>&
          on_record = {});

  /// Read-only scan that never mutates the file (archive segments).
  static WalScanResult scan_file(
      const std::string& path,
      const std::function<void(const WalRecord&, std::uint64_t offset)>&
          on_record = {});

  /// Random-access read of the record at `offset`; validates framing, CRC
  /// and seq but not the chain (the chain was verified by the open scan).
  /// Returns nullopt if the frame is damaged.
  static std::optional<WalRecord> read_at(const std::string& path,
                                          std::uint64_t offset);

  /// Appends one record; returns its seq. The frame is written with a
  /// single write(2); sync() makes it durable.
  std::uint64_t append(std::uint8_t type, BytesView payload);
  void sync();

  std::uint64_t base_seq() const { return base_seq_; }
  std::uint64_t last_seq() const { return last_seq_; }
  const Bytes& chain() const { return chain_; }
  const std::string& path() const { return path_; }
  /// Byte offset the next append would start at.
  std::uint64_t size() const { return size_; }
  /// File offset of the most recently appended record.
  std::uint64_t last_offset() const { return last_offset_; }

 private:
  WalSegment() = default;

  int fd_ = -1;
  std::string path_;
  std::uint64_t base_seq_ = 0;
  std::uint64_t last_seq_ = 0;
  Bytes chain_;
  std::uint64_t size_ = 0;
  std::uint64_t last_offset_ = 0;
};

}  // namespace peace::persist
