#include "peace/persist/chaos.hpp"

#include <filesystem>
#include <fstream>
#include <optional>
#include <vector>

#include "peace/persist/wal.hpp"

namespace peace::persist {

namespace fs = std::filesystem;

namespace {

// Mirrors the store's file naming: wal-<20 digits>.wal / snap-<...>.snap.
std::optional<std::uint64_t> parse_numbered(const std::string& name,
                                            const std::string& pre,
                                            const std::string& suf) {
  if (name.size() != pre.size() + 20 + suf.size()) return std::nullopt;
  if (name.compare(0, pre.size(), pre) != 0) return std::nullopt;
  if (name.compare(name.size() - suf.size(), suf.size(), suf) != 0)
    return std::nullopt;
  std::uint64_t v = 0;
  for (std::size_t i = pre.size(); i < pre.size() + 20; ++i) {
    if (name[i] < '0' || name[i] > '9') return std::nullopt;
    v = v * 10 + static_cast<std::uint64_t>(name[i] - '0');
  }
  return v;
}

Bytes read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error("chaos: cannot read " + path);
  return Bytes(std::istreambuf_iterator<char>(in),
               std::istreambuf_iterator<char>());
}

void write_file(const std::string& path, BytesView data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw Error("chaos: cannot write " + path);
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
  if (!out) throw Error("chaos: short write to " + path);
}

/// Path of the segment with the highest base_seq.
std::string newest_segment(const std::string& dir) {
  std::string best;
  std::uint64_t best_base = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (auto base = parse_numbered(name, "wal-", ".wal")) {
      if (best.empty() || *base >= best_base) {
        best = entry.path().string();
        best_base = *base;
      }
    }
  }
  if (best.empty()) throw Error("chaos: no wal segments in " + dir);
  return best;
}

/// Total frame size of a record: fixed prefix + payload + chain + crc.
std::uint64_t frame_size(const WalRecord& rec) {
  return 17 + rec.payload.size() + 32 + 4;
}

}  // namespace

void crash_copy(const std::string& src, const std::string& dst,
                std::uint64_t seq) {
  if (fs::exists(dst)) throw Error("chaos: crash_copy target exists: " + dst);
  fs::create_directories(dst);
  for (const auto& entry : fs::directory_iterator(src)) {
    const std::string name = entry.path().filename().string();
    const std::string out = dst + "/" + name;
    if (auto base = parse_numbered(name, "wal-", ".wal")) {
      if (*base > seq) continue;  // rotated into existence after the crash
      std::uint64_t end = WalSegment::kHeaderSize;
      WalSegment::scan_file(entry.path().string(),
                            [&](const WalRecord& rec, std::uint64_t offset) {
                              if (rec.seq <= seq)
                                end = offset + frame_size(rec);
                            });
      Bytes data = read_file(entry.path().string());
      data.resize(std::min<std::uint64_t>(end, data.size()));
      write_file(out, data);
    } else if (auto snap = parse_numbered(name, "snap-", ".snap")) {
      if (*snap > seq) continue;  // cut after the crash point
      write_file(out, read_file(entry.path().string()));
    }
    // anything else (orphans, temp files) died with the process
  }
}

std::uint64_t max_seq(const std::string& dir) {
  std::uint64_t best = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (!parse_numbered(name, "wal-", ".wal")) continue;
    const WalScanResult scan = WalSegment::scan_file(entry.path().string());
    if (scan.records > 0 && scan.last_seq > best) best = scan.last_seq;
  }
  return best;
}

void truncate_tail(const std::string& dir, std::uint64_t bytes) {
  const std::string path = newest_segment(dir);
  Bytes data = read_file(path);
  const std::uint64_t floor = WalSegment::kHeaderSize;
  const std::uint64_t size = data.size();
  data.resize(size > bytes + floor ? size - bytes : floor);
  write_file(path, data);
}

void corrupt_byte(const std::string& dir, std::uint64_t offset_from_end,
                  std::uint8_t mask) {
  const std::string path = newest_segment(dir);
  Bytes data = read_file(path);
  if (offset_from_end >= data.size())
    throw Error("chaos: corrupt offset past start of file");
  data[data.size() - 1 - offset_from_end] ^= mask;
  write_file(path, data);
}

void duplicate_last_record(const std::string& dir) {
  const std::string path = newest_segment(dir);
  std::uint64_t last_off = 0;
  std::uint64_t last_size = 0;
  WalSegment::scan_file(path, [&](const WalRecord& rec, std::uint64_t offset) {
    last_off = offset;
    last_size = frame_size(rec);
  });
  if (last_size == 0) throw Error("chaos: no record to duplicate");
  Bytes data = read_file(path);
  data.insert(data.end(), data.begin() + static_cast<std::ptrdiff_t>(last_off),
              data.begin() + static_cast<std::ptrdiff_t>(last_off + last_size));
  write_file(path, data);
}

}  // namespace peace::persist
