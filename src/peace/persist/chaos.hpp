// Crash- and corruption-injection helpers for the recovery chaos suite.
//
// crash_copy() materializes "the process died right after record `seq`
// became durable": it copies a live store directory, truncating every
// segment at that record boundary and omitting snapshots cut after it.
// The damage helpers then model the messier failure modes — torn tails,
// bit rot, forked history — against which recovery must either restore to
// the last good record or fail clean (never surface partial state).
#pragma once

#include <cstdint>
#include <string>

namespace peace::persist {

/// Copies store `src` to `dst` as it would look had the process crashed
/// immediately after record `seq` hit the disk: segments are truncated to
/// records <= seq and snapshots with wal_seq > seq are omitted. `dst` must
/// not exist yet.
void crash_copy(const std::string& src, const std::string& dst,
                std::uint64_t seq);

/// Highest record sequence durable in `dir` (0 when only headers exist).
std::uint64_t max_seq(const std::string& dir);

/// Chops `bytes` off the end of the newest segment (torn tail / partial
/// frame). Chopping more than the file holds empties it to the header.
void truncate_tail(const std::string& dir, std::uint64_t bytes);

/// XORs `mask` into the byte `offset_from_end` before the end of the
/// newest segment (bit rot, or — aimed at a chain/seq field — a fork).
void corrupt_byte(const std::string& dir, std::uint64_t offset_from_end,
                  std::uint8_t mask);

/// Re-appends a copy of the newest segment's last frame after itself (a
/// duplicated splice; the scan must reject it as a sequence break).
void duplicate_last_record(const std::string& dir);

}  // namespace peace::persist
