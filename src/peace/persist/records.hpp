// WAL record payloads of the operator control plane.
//
// The log stores RESULTS, not operations: every random draw an operation
// made (credentials, list signatures, the post-operation DRBG state) is in
// the record, so replay is pure bookkeeping — it never touches the DRBG and
// therefore reconstructs state byte-identical to the uninterrupted run.
// In particular a recovered operator continues the SAME delta chain, so
// resyncing routers can never observe a rollback.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "peace/messages.hpp"

namespace peace::persist {

using proto::Fr;

/// The `type` byte of a WAL record frame.
enum class RecordType : std::uint8_t {
  kGroupRegistered = 1,   // GroupIssueRecord
  kGroupReissued = 2,     // GroupIssueRecord
  kMasterRotated = 3,     // MasterRotatedRecord
  kUserRevoked = 4,       // RevocationRecord
  kRouterRevoked = 5,     // RevocationRecord
  kRouterProvisioned = 6, // RouterProvisionedRecord
  kEnrolled = 7,          // EnrolledRecord
  kReceiptArchived = 8,   // ReceiptArchivedRecord
};

const char* record_type_name(std::uint8_t type);

/// One credential minted in an issue batch: everything the three back-office
/// parties jointly learned about key [i, j].
struct IssuedKey {
  proto::KeyIndex index;
  Bytes token;    // serialized RevocationToken A (NO's grt entry)
  Bytes blinded;  // A xor KDF(x), as deposited with the TTP
  Fr x;           // member secret handed to the GM
};

/// kGroupRegistered / kGroupReissued.
struct GroupIssueRecord {
  proto::GroupId gid = 0;
  std::string name;  // empty for reissue (the GM already exists)
  Fr grp;
  std::uint32_t next_member_after = 0;  // NO's member counter post-batch
  std::vector<IssuedKey> keys;
  Bytes rng_state;  // NO's DRBG after the whole compound operation

  Bytes to_bytes() const;
  static GroupIssueRecord from_bytes(BytesView data);
};

/// kMasterRotated: the new master secret plus the remove-all URL delta the
/// rotation published (replay re-installs it bit-identically).
struct MasterRotatedRecord {
  Fr new_gamma;
  Bytes url_delta;  // serialized RLDelta
  Bytes rng_state;

  Bytes to_bytes() const;
  static MasterRotatedRecord from_bytes(BytesView data);
};

/// kUserRevoked / kRouterRevoked: the signed delta IS the outcome.
struct RevocationRecord {
  Bytes delta;  // serialized RLDelta
  Bytes rng_state;

  Bytes to_bytes() const;
  static RevocationRecord from_bytes(BytesView data);
};

/// kRouterProvisioned: archives the certificate for accountability; only
/// the DRBG state matters for operator-state recovery (the keypair lives
/// with the router).
struct RouterProvisionedRecord {
  Bytes certificate;  // serialized RouterCertificate
  Bytes rng_state;

  Bytes to_bytes() const;
  static RouterProvisionedRecord from_bytes(BytesView data);
};

/// kEnrolled: GM assigned key `index` to `uid` (TTP delivered the blinded
/// credential). Draws no randomness.
struct EnrolledRecord {
  proto::KeyIndex index;
  std::string uid;

  Bytes to_bytes() const;
  static EnrolledRecord from_bytes(BytesView data);
};

/// kReceiptArchived: the user's signed proof of receipt — the
/// non-repudiation evidence a law-authority trace leans on. Verified
/// before it was written; the log keeps it forever (spilled GM caches
/// re-read it from here).
struct ReceiptArchivedRecord {
  proto::KeyIndex index;
  Bytes user_public_key;  // serialized G1
  Bytes signature;        // serialized EcdsaSignature

  Bytes to_bytes() const;
  static ReceiptArchivedRecord from_bytes(BytesView data);
};

}  // namespace peace::persist
