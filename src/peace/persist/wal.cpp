#include "peace/persist/wal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstring>
#include <utility>

#include "common/serde.hpp"
#include "crypto/sha256.hpp"

namespace peace::persist {

namespace {

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k)
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    table[i] = c;
  }
  return table;
}

void put_u32(Bytes& out, std::uint32_t v) {
  for (int i = 3; i >= 0; --i)
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_u64(Bytes& out, std::uint64_t v) {
  for (int i = 7; i >= 0; --i)
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint32_t get_u32(const std::uint8_t* p) {
  return std::uint32_t{p[0]} << 24 | std::uint32_t{p[1]} << 16 |
         std::uint32_t{p[2]} << 8 | std::uint32_t{p[3]};
}

std::uint64_t get_u64(const std::uint8_t* p) {
  return std::uint64_t{get_u32(p)} << 32 | get_u32(p + 4);
}

Bytes read_whole_file(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) throw Error("persist: cannot open " + path);
  Bytes data;
  std::uint8_t buf[1 << 16];
  ssize_t n;
  while ((n = ::read(fd, buf, sizeof buf)) > 0)
    data.insert(data.end(), buf, buf + n);
  const int err = n < 0 ? errno : 0;
  ::close(fd);
  if (err != 0) throw Error("persist: read failed for " + path);
  return data;
}

void write_all(int fd, BytesView data, const std::string& path) {
  std::size_t done = 0;
  while (done < data.size()) {
    const ssize_t n = ::write(fd, data.data() + done, data.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw Error("persist: write failed for " + path);
    }
    done += static_cast<std::size_t>(n);
  }
}

/// Parses one frame at `off`; on success fills `rec`/`frame_len`, else
/// reports why. Does not check the chain (the caller owns the running
/// chain value).
WalDamage parse_frame(BytesView data, std::size_t off, WalRecord& rec,
                      std::size_t& frame_len) {
  constexpr std::size_t kFixed = 4 + 8 + 1 + 4;  // magic..len
  if (data.size() - off < kFixed) return WalDamage::kTruncated;
  const std::uint8_t* p = data.data() + off;
  if (get_u32(p) != WalSegment::kRecordMagic) return WalDamage::kBadMagic;
  const std::uint64_t seq = get_u64(p + 4);
  const std::uint8_t type = p[12];
  const std::uint32_t len = get_u32(p + 13);
  // 32-byte chain + 4-byte crc after the payload.
  if (data.size() - off - kFixed < static_cast<std::size_t>(len) + 36)
    return WalDamage::kTruncated;
  frame_len = kFixed + len + 36;
  const std::uint32_t stored_crc = get_u32(p + kFixed + len + 32);
  if (crc32({p, kFixed + len + 32}) != stored_crc) return WalDamage::kBadCrc;
  rec.seq = seq;
  rec.type = type;
  rec.payload.assign(p + kFixed, p + kFixed + len);
  return WalDamage::kNone;
}

struct HeaderInfo {
  std::uint64_t base_seq = 0;
  Bytes base_chain;
};

HeaderInfo parse_header(BytesView data, const std::string& path) {
  if (data.size() < WalSegment::kHeaderSize)
    throw Error("persist: short wal header in " + path);
  if (get_u32(data.data()) != WalSegment::kHeaderMagic)
    throw Error("persist: bad wal magic in " + path);
  if (data[4] != WalSegment::kVersion)
    throw Error("persist: unsupported wal version in " + path);
  if (crc32(data.first(WalSegment::kHeaderSize - 4)) !=
      get_u32(data.data() + WalSegment::kHeaderSize - 4))
    throw Error("persist: wal header crc mismatch in " + path);
  HeaderInfo h;
  h.base_seq = get_u64(data.data() + 5);
  h.base_chain.assign(data.begin() + 13, data.begin() + 45);
  return h;
}

WalScanResult scan_bytes(
    BytesView data, const HeaderInfo& header,
    const std::function<void(const WalRecord&, std::uint64_t)>& on_record) {
  WalScanResult scan;
  scan.base_seq = header.base_seq;
  scan.base_chain = header.base_chain;
  scan.last_seq = header.base_seq;
  scan.last_chain = header.base_chain;
  scan.good_bytes = WalSegment::kHeaderSize;
  std::size_t off = WalSegment::kHeaderSize;
  while (off < data.size()) {
    WalRecord rec;
    std::size_t frame_len = 0;
    const WalDamage d = parse_frame(data, off, rec, frame_len);
    if (d != WalDamage::kNone) {
      scan.damage = d;
      break;
    }
    if (rec.seq != scan.last_seq + 1) {
      scan.damage = WalDamage::kBadSeq;
      break;
    }
    const Bytes chain =
        chain_next(scan.last_chain, rec.seq, rec.type, rec.payload);
    // The stored chain sits right after the payload.
    const std::uint8_t* stored = data.data() + off + 17 + rec.payload.size();
    if (!std::equal(chain.begin(), chain.end(), stored)) {
      scan.damage = WalDamage::kBadChain;
      break;
    }
    if (on_record) on_record(rec, off);
    ++scan.records;
    scan.last_seq = rec.seq;
    scan.last_chain = chain;
    off += frame_len;
    scan.good_bytes = off;
  }
  scan.dropped_bytes = data.size() - scan.good_bytes;
  return scan;
}

}  // namespace

std::uint32_t crc32(BytesView data, std::uint32_t crc) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  crc = ~crc;
  for (const std::uint8_t b : data) crc = table[(crc ^ b) & 0xFF] ^ (crc >> 8);
  return ~crc;
}

Bytes genesis_chain() {
  return crypto::Sha256::hash(as_bytes("peace/wal-genesis"));
}

Bytes chain_next(BytesView prev_chain, std::uint64_t seq, std::uint8_t type,
                 BytesView payload) {
  Bytes buf;
  buf.reserve(prev_chain.size() + 13 + payload.size());
  buf.assign(prev_chain.begin(), prev_chain.end());
  put_u64(buf, seq);
  buf.push_back(type);
  put_u32(buf, static_cast<std::uint32_t>(payload.size()));
  buf.insert(buf.end(), payload.begin(), payload.end());
  return crypto::Sha256::hash(buf);
}

const char* wal_damage_name(WalDamage d) {
  switch (d) {
    case WalDamage::kNone: return "none";
    case WalDamage::kTruncated: return "truncated";
    case WalDamage::kBadMagic: return "bad_magic";
    case WalDamage::kBadCrc: return "bad_crc";
    case WalDamage::kBadSeq: return "bad_seq";
    case WalDamage::kBadChain: return "bad_chain";
  }
  return "unknown";
}

WalSegment::WalSegment(WalSegment&& o) noexcept
    : fd_(std::exchange(o.fd_, -1)),
      path_(std::move(o.path_)),
      base_seq_(o.base_seq_),
      last_seq_(o.last_seq_),
      chain_(std::move(o.chain_)),
      size_(o.size_),
      last_offset_(o.last_offset_) {}

WalSegment& WalSegment::operator=(WalSegment&& o) noexcept {
  if (this != &o) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(o.fd_, -1);
    path_ = std::move(o.path_);
    base_seq_ = o.base_seq_;
    last_seq_ = o.last_seq_;
    chain_ = std::move(o.chain_);
    size_ = o.size_;
    last_offset_ = o.last_offset_;
  }
  return *this;
}

WalSegment::~WalSegment() {
  if (fd_ >= 0) ::close(fd_);
}

WalSegment WalSegment::create(const std::string& path, std::uint64_t base_seq,
                              BytesView base_chain) {
  if (base_chain.size() != 32) throw Error("persist: bad base chain length");
  const int fd =
      ::open(path.c_str(), O_CREAT | O_EXCL | O_WRONLY | O_CLOEXEC, 0644);
  if (fd < 0) throw Error("persist: cannot create " + path);
  Bytes header;
  put_u32(header, kHeaderMagic);
  header.push_back(kVersion);
  put_u64(header, base_seq);
  header.insert(header.end(), base_chain.begin(), base_chain.end());
  put_u32(header, crc32(header));
  write_all(fd, header, path);
  WalSegment w;
  w.fd_ = fd;
  w.path_ = path;
  w.base_seq_ = w.last_seq_ = base_seq;
  w.chain_.assign(base_chain.begin(), base_chain.end());
  w.size_ = kHeaderSize;
  w.last_offset_ = kHeaderSize;
  return w;
}

WalSegment WalSegment::open(
    const std::string& path, WalScanResult& scan,
    const std::function<void(const WalRecord&, std::uint64_t)>& on_record) {
  const Bytes data = read_whole_file(path);
  const HeaderInfo header = parse_header(data, path);
  std::uint64_t last_off = kHeaderSize;
  scan = scan_bytes(data, header,
                    [&](const WalRecord& rec, std::uint64_t off) {
                      last_off = off;
                      if (on_record) on_record(rec, off);
                    });
  const int fd = ::open(path.c_str(), O_WRONLY | O_CLOEXEC);
  if (fd < 0) throw Error("persist: cannot reopen " + path);
  if (scan.dropped_bytes > 0 &&
      ::ftruncate(fd, static_cast<off_t>(scan.good_bytes)) != 0) {
    ::close(fd);
    throw Error("persist: cannot truncate damaged tail of " + path);
  }
  if (::lseek(fd, 0, SEEK_END) < 0) {
    ::close(fd);
    throw Error("persist: cannot seek " + path);
  }
  WalSegment w;
  w.fd_ = fd;
  w.path_ = path;
  w.base_seq_ = header.base_seq;
  w.last_seq_ = scan.last_seq;
  w.chain_ = scan.last_chain;
  w.size_ = scan.good_bytes;
  w.last_offset_ = scan.records > 0 ? last_off : kHeaderSize;
  return w;
}

WalScanResult WalSegment::scan_file(
    const std::string& path,
    const std::function<void(const WalRecord&, std::uint64_t)>& on_record) {
  const Bytes data = read_whole_file(path);
  return scan_bytes(data, parse_header(data, path), on_record);
}

std::optional<WalRecord> WalSegment::read_at(const std::string& path,
                                             std::uint64_t offset) {
  // Spill reads are rare (law-authority traces over archived eras), so a
  // whole-file read keeps this simple; the frame is still CRC-validated.
  Bytes data;
  try {
    data = read_whole_file(path);
  } catch (const Error&) {
    return std::nullopt;
  }
  if (offset >= data.size()) return std::nullopt;
  WalRecord rec;
  std::size_t frame_len = 0;
  if (parse_frame(data, offset, rec, frame_len) != WalDamage::kNone)
    return std::nullopt;
  return rec;
}

std::uint64_t WalSegment::append(std::uint8_t type, BytesView payload) {
  const std::uint64_t seq = last_seq_ + 1;
  const Bytes chain = chain_next(chain_, seq, type, payload);
  Bytes frame;
  frame.reserve(53 + payload.size());
  put_u32(frame, kRecordMagic);
  put_u64(frame, seq);
  frame.push_back(type);
  put_u32(frame, static_cast<std::uint32_t>(payload.size()));
  frame.insert(frame.end(), payload.begin(), payload.end());
  frame.insert(frame.end(), chain.begin(), chain.end());
  put_u32(frame, crc32(frame));
  write_all(fd_, frame, path_);
  last_seq_ = seq;
  chain_ = chain;
  last_offset_ = size_;
  size_ += frame.size();
  return seq;
}

void WalSegment::sync() {
  if (fd_ >= 0 && ::fsync(fd_) != 0)
    throw Error("persist: fsync failed for " + path_);
}

}  // namespace peace::persist
