#include "peace/persist/snapshot.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>

#include "peace/persist/wal.hpp"

namespace peace::persist {

namespace {

constexpr std::uint32_t kSnapMagic = 0x50534E50u;  // 'PSNP'
constexpr std::uint8_t kSnapVersion = 1;

void put_u32(Bytes& out, std::uint32_t v) {
  for (int i = 3; i >= 0; --i)
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_u64(Bytes& out, std::uint64_t v) {
  for (int i = 7; i >= 0; --i)
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint32_t get_u32(const std::uint8_t* p) {
  return std::uint32_t{p[0]} << 24 | std::uint32_t{p[1]} << 16 |
         std::uint32_t{p[2]} << 8 | std::uint32_t{p[3]};
}

}  // namespace

void write_snapshot_file(const std::string& path, std::uint64_t wal_seq,
                         BytesView wal_chain, BytesView payload) {
  if (wal_chain.size() != 32) throw Error("persist: bad snapshot chain");
  Bytes frame;
  frame.reserve(53 + payload.size());
  put_u32(frame, kSnapMagic);
  frame.push_back(kSnapVersion);
  put_u64(frame, wal_seq);
  frame.insert(frame.end(), wal_chain.begin(), wal_chain.end());
  put_u32(frame, static_cast<std::uint32_t>(payload.size()));
  frame.insert(frame.end(), payload.begin(), payload.end());
  put_u32(frame, crc32(frame));

  const std::string tmp = path + ".tmp";
  const int fd =
      ::open(tmp.c_str(), O_CREAT | O_TRUNC | O_WRONLY | O_CLOEXEC, 0644);
  if (fd < 0) throw Error("persist: cannot create " + tmp);
  std::size_t done = 0;
  while (done < frame.size()) {
    const ssize_t n = ::write(fd, frame.data() + done, frame.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      throw Error("persist: write failed for " + tmp);
    }
    done += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    throw Error("persist: fsync failed for " + tmp);
  }
  ::close(fd);
  if (std::rename(tmp.c_str(), path.c_str()) != 0)
    throw Error("persist: cannot rename snapshot into place: " + path);
}

std::optional<SnapshotData> read_snapshot_file(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return std::nullopt;
  Bytes data;
  std::uint8_t buf[1 << 16];
  ssize_t n;
  while ((n = ::read(fd, buf, sizeof buf)) > 0)
    data.insert(data.end(), buf, buf + n);
  ::close(fd);
  if (n < 0) return std::nullopt;

  constexpr std::size_t kFixed = 4 + 1 + 8 + 32 + 4;  // magic..payload_len
  if (data.size() < kFixed + 4) return std::nullopt;
  if (get_u32(data.data()) != kSnapMagic) return std::nullopt;
  if (data[4] != kSnapVersion) return std::nullopt;
  const std::uint32_t len = get_u32(data.data() + 45);
  if (data.size() != kFixed + len + 4) return std::nullopt;
  if (crc32({data.data(), kFixed + len}) != get_u32(data.data() + kFixed + len))
    return std::nullopt;
  SnapshotData snap;
  snap.wal_seq = std::uint64_t{get_u32(data.data() + 5)} << 32 |
                 get_u32(data.data() + 9);
  snap.wal_chain.assign(data.begin() + 13, data.begin() + 45);
  snap.payload.assign(data.begin() + 49, data.begin() + 49 + len);
  return snap;
}

}  // namespace peace::persist
