#include "peace/persist/records.hpp"

#include "common/serde.hpp"
#include "curve/bn254.hpp"

namespace peace::persist {

const char* record_type_name(std::uint8_t type) {
  switch (static_cast<RecordType>(type)) {
    case RecordType::kGroupRegistered: return "group_registered";
    case RecordType::kGroupReissued: return "group_reissued";
    case RecordType::kMasterRotated: return "master_rotated";
    case RecordType::kUserRevoked: return "user_revoked";
    case RecordType::kRouterRevoked: return "router_revoked";
    case RecordType::kRouterProvisioned: return "router_provisioned";
    case RecordType::kEnrolled: return "enrolled";
    case RecordType::kReceiptArchived: return "receipt_archived";
  }
  return "unknown";
}

Bytes GroupIssueRecord::to_bytes() const {
  Writer w;
  w.u32(gid);
  w.str(name);
  w.raw(curve::fr_to_bytes(grp));
  w.u32(next_member_after);
  w.u64(keys.size());
  for (const IssuedKey& k : keys) {
    w.u32(k.index.group);
    w.u32(k.index.member);
    w.bytes(k.token);
    w.bytes(k.blinded);
    w.raw(curve::fr_to_bytes(k.x));
  }
  w.bytes(rng_state);
  return w.take();
}

GroupIssueRecord GroupIssueRecord::from_bytes(BytesView data) {
  Reader r(data);
  GroupIssueRecord rec;
  rec.gid = r.u32();
  rec.name = r.str();
  rec.grp = curve::fr_from_bytes(r.raw(curve::kFrSize));
  rec.next_member_after = r.u32();
  for (std::uint64_t i = 0, n = r.u64(); i < n; ++i) {
    IssuedKey k;
    k.index.group = r.u32();
    k.index.member = r.u32();
    k.token = r.bytes();
    k.blinded = r.bytes();
    k.x = curve::fr_from_bytes(r.raw(curve::kFrSize));
    rec.keys.push_back(std::move(k));
  }
  rec.rng_state = r.bytes();
  r.expect_end();
  return rec;
}

Bytes MasterRotatedRecord::to_bytes() const {
  Writer w;
  w.raw(curve::fr_to_bytes(new_gamma));
  w.bytes(url_delta);
  w.bytes(rng_state);
  return w.take();
}

MasterRotatedRecord MasterRotatedRecord::from_bytes(BytesView data) {
  Reader r(data);
  MasterRotatedRecord rec;
  rec.new_gamma = curve::fr_from_bytes(r.raw(curve::kFrSize));
  rec.url_delta = r.bytes();
  rec.rng_state = r.bytes();
  r.expect_end();
  return rec;
}

Bytes RevocationRecord::to_bytes() const {
  Writer w;
  w.bytes(delta);
  w.bytes(rng_state);
  return w.take();
}

RevocationRecord RevocationRecord::from_bytes(BytesView data) {
  Reader r(data);
  RevocationRecord rec;
  rec.delta = r.bytes();
  rec.rng_state = r.bytes();
  r.expect_end();
  return rec;
}

Bytes RouterProvisionedRecord::to_bytes() const {
  Writer w;
  w.bytes(certificate);
  w.bytes(rng_state);
  return w.take();
}

RouterProvisionedRecord RouterProvisionedRecord::from_bytes(BytesView data) {
  Reader r(data);
  RouterProvisionedRecord rec;
  rec.certificate = r.bytes();
  rec.rng_state = r.bytes();
  r.expect_end();
  return rec;
}

Bytes EnrolledRecord::to_bytes() const {
  Writer w;
  w.u32(index.group);
  w.u32(index.member);
  w.str(uid);
  return w.take();
}

EnrolledRecord EnrolledRecord::from_bytes(BytesView data) {
  Reader r(data);
  EnrolledRecord rec;
  rec.index.group = r.u32();
  rec.index.member = r.u32();
  rec.uid = r.str();
  r.expect_end();
  return rec;
}

Bytes ReceiptArchivedRecord::to_bytes() const {
  Writer w;
  w.u32(index.group);
  w.u32(index.member);
  w.bytes(user_public_key);
  w.bytes(signature);
  return w.take();
}

ReceiptArchivedRecord ReceiptArchivedRecord::from_bytes(BytesView data) {
  Reader r(data);
  ReceiptArchivedRecord rec;
  rec.index.group = r.u32();
  rec.index.member = r.u32();
  rec.user_public_key = r.bytes();
  rec.signature = r.bytes();
  r.expect_end();
  return rec;
}

}  // namespace peace::persist
