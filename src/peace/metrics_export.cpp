#include "peace/metrics_export.hpp"

#include "obs/metrics.hpp"

namespace peace::proto {

namespace {

void set(const char* name, std::uint64_t value) {
  obs::Registry::global().counter(name).set(value);
}

}  // namespace

void absorb_router_stats(const RouterStats& t) {
  set("router.beacons_sent", t.beacons_sent);
  set("router.requests_received", t.requests_received);
  set("router.accepted", t.accepted);
  set("router.rejected_unknown_beacon", t.rejected_unknown_beacon);
  set("router.rejected_stale", t.rejected_stale);
  set("router.rejected_replay", t.rejected_replay);
  set("router.rejected_puzzle", t.rejected_puzzle);
  set("router.rejected_bad_signature", t.rejected_bad_signature);
  set("router.rejected_revoked", t.rejected_revoked);
  set("router.signature_verifications", t.signature_verifications);
  set("router.verify_batches", t.verify_batches);
  set("router.batched_requests", t.batched_requests);
  set("router.rl_deltas_applied", t.rl_deltas_applied);
  set("router.rl_deltas_ignored", t.rl_deltas_ignored);
  set("router.rl_deltas_rejected", t.rl_deltas_rejected);
  set("router.rl_resyncs_requested", t.rl_resyncs_requested);
  set("router.rl_resyncs_completed", t.rl_resyncs_completed);
  set("router.confirms_resent", t.confirms_resent);
}

void absorb_user_stats(const UserStats& t) {
  set("user.beacons_seen", t.beacons_seen);
  set("user.beacons_rejected", t.beacons_rejected);
  set("user.sessions_established", t.sessions_established);
  set("user.peer_sessions_established", t.peer_sessions_established);
  set("user.puzzle_hashes", t.puzzle_hashes);
  set("user.peer_verify_batches", t.peer_verify_batches);
  set("user.peer_batched_hellos", t.peer_batched_hellos);
  set("user.pending_expired", t.pending_expired);
  set("user.pending_evicted", t.pending_evicted);
  set("user.duplicate_hellos", t.duplicate_hellos);
  set("user.duplicate_replies", t.duplicate_replies);
}

void absorb_verify_ops(const groupsig::OpCounters& t) {
  set("groupsig.verify.g1_exp", t.g1_exp);
  set("groupsig.verify.g2_exp", t.g2_exp);
  set("groupsig.verify.gt_exp", t.gt_exp);
  set("groupsig.verify.pairings", t.pairings);
  set("groupsig.verify.hash_to_group", t.hash_to_group);
}

void absorb_revocation_stats(const revoke::SharedRevocationStats& t) {
  set("revocation.full_installs", t.full_installs);
  set("revocation.deltas_applied", t.deltas_applied);
  set("revocation.deltas_stale", t.deltas_stale);
  set("revocation.deltas_gap", t.deltas_gap);
  set("revocation.deltas_rejected", t.deltas_rejected);
  set("revocation.snapshots_published", t.snapshots_published);
  set("revocation.tokens_retagged", t.tokens_retagged);
}

RouterStats sum(const RouterStats& a, const RouterStats& b) {
  RouterStats s = a;
  s.beacons_sent += b.beacons_sent;
  s.requests_received += b.requests_received;
  s.accepted += b.accepted;
  s.rejected_unknown_beacon += b.rejected_unknown_beacon;
  s.rejected_stale += b.rejected_stale;
  s.rejected_replay += b.rejected_replay;
  s.rejected_puzzle += b.rejected_puzzle;
  s.rejected_bad_signature += b.rejected_bad_signature;
  s.rejected_revoked += b.rejected_revoked;
  s.signature_verifications += b.signature_verifications;
  s.verify_batches += b.verify_batches;
  s.batched_requests += b.batched_requests;
  s.rl_deltas_applied += b.rl_deltas_applied;
  s.rl_deltas_ignored += b.rl_deltas_ignored;
  s.rl_deltas_rejected += b.rl_deltas_rejected;
  s.rl_resyncs_requested += b.rl_resyncs_requested;
  s.rl_resyncs_completed += b.rl_resyncs_completed;
  s.confirms_resent += b.confirms_resent;
  return s;
}

UserStats sum(const UserStats& a, const UserStats& b) {
  UserStats s = a;
  s.beacons_seen += b.beacons_seen;
  s.beacons_rejected += b.beacons_rejected;
  s.sessions_established += b.sessions_established;
  s.peer_sessions_established += b.peer_sessions_established;
  s.puzzle_hashes += b.puzzle_hashes;
  s.peer_verify_batches += b.peer_verify_batches;
  s.peer_batched_hellos += b.peer_batched_hellos;
  s.pending_expired += b.pending_expired;
  s.pending_evicted += b.pending_evicted;
  s.duplicate_hellos += b.duplicate_hellos;
  s.duplicate_replies += b.duplicate_replies;
  return s;
}

}  // namespace peace::proto
