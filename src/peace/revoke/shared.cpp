#include "peace/revoke/shared.hpp"

#include <algorithm>

namespace peace::revoke {

namespace {

/// Applies a delta's URL edit to a parsed-token vector, mirroring exactly
/// how RevocationStore edits the byte entries (std::remove keeps order;
/// appends deduplicate), so the vector stays aligned with the list.
void edit_tokens(std::vector<RevocationToken>& tokens,
                 const proto::RLDelta& delta) {
  for (const Bytes& gone : delta.removed) {
    const RevocationToken t = RevocationToken::from_bytes(gone);
    tokens.erase(std::remove(tokens.begin(), tokens.end(), t), tokens.end());
  }
  for (const Bytes& entry : delta.added) {
    const RevocationToken t = RevocationToken::from_bytes(entry);
    if (std::find(tokens.begin(), tokens.end(), t) == tokens.end())
      tokens.push_back(t);
  }
}

std::vector<RevocationToken> parse_tokens(
    const proto::SignedRevocationList& url) {
  std::vector<RevocationToken> tokens;
  tokens.reserve(url.entries.size());
  for (const Bytes& e : url.entries)
    tokens.push_back(RevocationToken::from_bytes(e));
  return tokens;
}

/// Installs a new full URL into `next` (already a copy of `prev`): reparses
/// the token vector and, in epoch mode, diffs the carried index instead of
/// rebuilding it — only genuinely new tokens pay a pairing.
void refresh_url(RevocationSnapshot& next, const RevocationSnapshot& prev,
                 const proto::SignedRevocationList& url,
                 SharedRevocationStats& stats) {
  next.url = url;
  next.url_tokens = parse_tokens(url);
  if (prev.epoch == 0) return;
  auto index = std::make_shared<groupsig::EpochRevocationIndex>(*prev.index);
  for (const RevocationToken& t : prev.url_tokens)
    if (std::find(next.url_tokens.begin(), next.url_tokens.end(), t) ==
        next.url_tokens.end())
      index->remove_token(t);
  for (const RevocationToken& t : next.url_tokens)
    if (index->add_token(t)) ++stats.tokens_retagged;
  next.index = std::move(index);
}

}  // namespace

SharedRevocationState::SharedRevocationState(curve::G1 authority)
    : crl_store_(ListKind::kCrl, authority),
      url_store_(ListKind::kUrl, authority),
      head_(std::make_shared<const RevocationSnapshot>()) {}

void SharedRevocationState::publish(
    std::shared_ptr<const RevocationSnapshot> next) {
  head_.store(std::move(next), std::memory_order_release);
  ++stats_.snapshots_published;
}

void SharedRevocationState::install_full(
    const proto::SignedRevocationList& crl,
    const proto::SignedRevocationList& url) {
  std::lock_guard lock(mutex_);
  // Validate both lists before committing either, preserving the historical
  // all-or-nothing install_revocation_lists contract and its exact errors.
  if (!curve::ecdsa_verify(crl_store_.authority(), crl.signed_payload(),
                           crl.signature) ||
      !curve::ecdsa_verify(url_store_.authority(), url.signed_payload(),
                           url.signature))
    throw Error("router: revocation list not signed by NO");
  if (crl.version < crl_store_.version() || url.version < url_store_.version())
    throw Error("router: stale revocation list");
  crl_store_.install_full(crl);
  url_store_.install_full(url);

  const auto prev = snapshot();
  auto next = std::make_shared<RevocationSnapshot>(*prev);
  next->crl = crl_store_.list();
  refresh_url(*next, *prev, url_store_.list(), stats_);
  ++stats_.full_installs;
  publish(std::move(next));
}

RevocationStore::InstallResult SharedRevocationState::install_one(
    ListKind kind, const proto::SignedRevocationList& full) {
  std::lock_guard lock(mutex_);
  RevocationStore& store = kind == ListKind::kCrl ? crl_store_ : url_store_;
  const auto result = store.install_full(full);
  if (result != RevocationStore::InstallResult::kInstalled) return result;
  const auto prev = snapshot();
  auto next = std::make_shared<RevocationSnapshot>(*prev);
  if (kind == ListKind::kCrl)
    next->crl = store.list();
  else
    refresh_url(*next, *prev, store.list(), stats_);
  ++stats_.full_installs;
  publish(std::move(next));
  return result;
}

DeltaResult SharedRevocationState::apply_delta(const proto::RLDelta& delta) {
  std::lock_guard lock(mutex_);
  RevocationStore& store =
      delta.kind == ListKind::kCrl ? crl_store_ : url_store_;
  const DeltaResult result = store.apply_delta(delta);
  switch (result) {
    case DeltaResult::kApplied:
      ++stats_.deltas_applied;
      break;
    case DeltaResult::kStale:
      ++stats_.deltas_stale;
      return result;
    case DeltaResult::kGap:
      ++stats_.deltas_gap;
      return result;
    default:
      ++stats_.deltas_rejected;
      return result;
  }

  // Successor snapshot: copy the previous one (cheap — lists and token
  // vector; the index is carried by pointer) and edit only what changed.
  const auto prev = snapshot();
  auto next = std::make_shared<RevocationSnapshot>(*prev);
  if (delta.kind == ListKind::kCrl) {
    next->crl = store.list();
  } else {
    next->url = store.list();
    edit_tokens(next->url_tokens, delta);
    if (next->index != nullptr) {
      auto index =
          std::make_shared<groupsig::EpochRevocationIndex>(*next->index);
      for (const Bytes& gone : delta.removed)
        index->remove_token(RevocationToken::from_bytes(gone));
      for (const Bytes& entry : delta.added)
        if (index->add_token(RevocationToken::from_bytes(entry)))
          ++stats_.tokens_retagged;
      next->index = std::move(index);
    }
  }
  publish(std::move(next));
  return result;
}

void SharedRevocationState::set_epoch(const groupsig::GroupPublicKey& gpk,
                                      groupsig::Epoch epoch) {
  std::lock_guard lock(mutex_);
  const auto prev = snapshot();
  if (prev->epoch == epoch) return;
  auto next = std::make_shared<RevocationSnapshot>(*prev);
  next->epoch = epoch;
  if (epoch == 0) {
    next->index = nullptr;
  } else if (prev->index != nullptr) {
    auto index = std::make_shared<groupsig::EpochRevocationIndex>(*prev->index);
    index->roll_epoch(gpk, epoch);
    stats_.tokens_retagged += index->size();
    next->index = std::move(index);
  } else {
    next->index = std::make_shared<groupsig::EpochRevocationIndex>(
        gpk, epoch, next->url_tokens);
    stats_.tokens_retagged += next->url_tokens.size();
  }
  publish(std::move(next));
}

std::uint64_t SharedRevocationState::crl_version() const {
  std::lock_guard lock(mutex_);
  return crl_store_.version();
}

std::uint64_t SharedRevocationState::url_version() const {
  std::lock_guard lock(mutex_);
  return url_store_.version();
}

Bytes SharedRevocationState::state_hash(ListKind kind) const {
  std::lock_guard lock(mutex_);
  return kind == ListKind::kCrl ? crl_store_.state_hash()
                                : url_store_.state_hash();
}

SharedRevocationStats SharedRevocationState::stats() const {
  std::lock_guard lock(mutex_);
  return stats_;
}

SharedRevocationStats sum(const SharedRevocationStats& a,
                          const SharedRevocationStats& b) {
  static_assert(sizeof(SharedRevocationStats) == 7 * sizeof(std::uint64_t),
                "SharedRevocationStats gained a field: add it to sum()");
  SharedRevocationStats out = a;
  out.full_installs += b.full_installs;
  out.deltas_applied += b.deltas_applied;
  out.deltas_stale += b.deltas_stale;
  out.deltas_gap += b.deltas_gap;
  out.deltas_rejected += b.deltas_rejected;
  out.snapshots_published += b.snapshots_published;
  out.tokens_retagged += b.tokens_retagged;
  return out;
}

}  // namespace peace::revoke
