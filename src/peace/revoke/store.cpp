#include "peace/revoke/store.hpp"

#include <algorithm>

#include "crypto/sha256.hpp"

namespace peace::revoke {

Bytes list_state_hash(const SignedRevocationList& list) {
  return crypto::Sha256::hash(list.signed_payload());
}

RevocationStore::RevocationStore(ListKind kind, curve::G1 authority)
    : kind_(kind), authority_(authority), state_hash_(list_state_hash(list_)) {}

RevocationStore::InstallResult RevocationStore::install_full(
    const SignedRevocationList& full) {
  // Signature first, staleness second — matching the long-standing router
  // order, so a forged list reports kBadSignature even when it is also old.
  // Equal-version reinstalls are accepted (idempotent resync).
  if (!curve::ecdsa_verify(authority_, full.signed_payload(), full.signature))
    return InstallResult::kBadSignature;
  if (full.version < list_.version) return InstallResult::kStale;
  list_ = full;
  state_hash_ = list_state_hash(list_);
  return InstallResult::kInstalled;
}

DeltaResult RevocationStore::apply_delta(const RLDelta& delta) {
  if (delta.kind != kind_) return DeltaResult::kWrongKind;
  // Authenticate before classifying: a forged delta must never drive the
  // store into a resync (that would be a cheap desync-DoS lever).
  if (!curve::ecdsa_verify(authority_, delta.signed_payload(),
                           delta.signature))
    return DeltaResult::kBadSignature;
  if (delta.version <= list_.version) return DeltaResult::kStale;
  if (delta.base_version != list_.version) return DeltaResult::kGap;
  if (delta.base_hash != state_hash_) return DeltaResult::kBadChain;

  // Replay the edit against scratch state: removals first, then additions
  // (matching how the NO derives deltas), duplicates idempotent both ways.
  SignedRevocationList next;
  next.version = delta.version;
  next.issued_at = delta.issued_at;
  next.entries = list_.entries;
  for (const Bytes& gone : delta.removed)
    next.entries.erase(
        std::remove(next.entries.begin(), next.entries.end(), gone),
        next.entries.end());
  for (const Bytes& entry : delta.added)
    if (std::find(next.entries.begin(), next.entries.end(), entry) ==
        next.entries.end())
      next.entries.push_back(entry);
  next.signature = delta.full_signature;
  // The NO signed the full list it produced; if our reconstruction verifies
  // under that signature it is bit-identical to the NO's copy. A mismatch
  // means the chain diverged (or the delta lied about its effect) — either
  // way the store is out of sync and the caller should resync.
  if (!curve::ecdsa_verify(authority_, next.signed_payload(), next.signature))
    return DeltaResult::kBadChain;

  list_ = std::move(next);
  state_hash_ = list_state_hash(list_);
  return DeltaResult::kApplied;
}

}  // namespace peace::revoke
