// RCU-style shared revocation state. One SharedRevocationState serves a
// whole mesh segment: N MeshRouters (and their VerifyPool workers) read the
// current RevocationSnapshot through a single atomic shared_ptr load — no
// lock, no reference-count contention beyond the shared_ptr itself — while
// the one writer (the operator's distribution channel) validates deltas
// against the underlying RevocationStores, builds the successor snapshot
// off to the side, and publishes it with one atomic swap. Readers that
// loaded the old snapshot keep a reference and finish their batch against a
// consistent view; the old snapshot is freed when the last reader drops it.
//
// Snapshots are immutable after publication. Updates are incremental: a URL
// delta re-parses and re-tags only the added tokens (the epoch index is
// cloned and edited, never rebuilt), and the per-epoch prepared v_hat is
// carried across snapshots so the verify hot path never constructs a
// G2Prepared per message or per token.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>

#include "peace/revoke/store.hpp"

namespace peace::revoke {

using groupsig::RevocationToken;

/// Immutable view of the revocation state at one instant. Everything a
/// verifier needs for paper steps 3.1-3.3: the signed lists for beacons,
/// the parsed URL tokens for the Eq.3 scan, and (epoch mode) the
/// constant-time index with its epoch-lived prepared v_hat.
struct RevocationSnapshot {
  proto::SignedRevocationList crl;
  proto::SignedRevocationList url;
  std::vector<RevocationToken> url_tokens;
  groupsig::Epoch epoch = 0;  // 0 => per-message bases, no index
  /// Non-null iff epoch != 0. shared_ptr so an unchanged index is carried
  /// into successor snapshots without copying its tag tables.
  std::shared_ptr<const groupsig::EpochRevocationIndex> index;
};

/// Writer-side counters (reads are not counted — they are lock-free loads).
struct SharedRevocationStats {
  std::uint64_t full_installs = 0;
  std::uint64_t deltas_applied = 0;
  std::uint64_t deltas_stale = 0;
  std::uint64_t deltas_gap = 0;
  std::uint64_t deltas_rejected = 0;  // bad signature / chain / kind
  std::uint64_t snapshots_published = 0;
  std::uint64_t tokens_retagged = 0;  // pairings spent updating the index
};

/// Field-wise sum, for aggregating per-segment states across metro shards
/// (every field is a uint64_t event count, so merges commute).
SharedRevocationStats sum(const SharedRevocationStats& a,
                          const SharedRevocationStats& b);

class SharedRevocationState {
 public:
  /// `authority` is the NO public key (NPK) all lists must verify under.
  explicit SharedRevocationState(curve::G1 authority);

  /// Current snapshot — a single atomic load; never null, safe from any
  /// thread concurrently with writer calls. Callers hold the returned
  /// pointer for the duration of a batch so the view stays consistent.
  std::shared_ptr<const RevocationSnapshot> snapshot() const {
    return head_.load(std::memory_order_acquire);
  }

  /// Full-list install (provisioning or resync). Both lists are validated
  /// before either commits; throws Error("router: revocation list not
  /// signed by NO") / Error("router: stale revocation list") with the exact
  /// historical router semantics. In epoch mode the index is diffed against
  /// the new URL, not rebuilt.
  void install_full(const proto::SignedRevocationList& crl,
                    const proto::SignedRevocationList& url);

  /// Single-list install with RevocationStore result semantics instead of
  /// throws — the resync path (NO's authoritative full list for one kind).
  RevocationStore::InstallResult install_one(
      ListKind kind, const proto::SignedRevocationList& full);

  /// Offers one delta (any kind). Only kApplied publishes a new snapshot.
  DeltaResult apply_delta(const proto::RLDelta& delta);

  /// Switches revocation-check mode: epoch 0 drops the index; a nonzero
  /// epoch builds it from the current URL (first call) or rolls the
  /// existing one in place (one pairing per stored token).
  void set_epoch(const groupsig::GroupPublicKey& gpk, groupsig::Epoch epoch);

  std::uint64_t crl_version() const;
  std::uint64_t url_version() const;
  /// Chain hash of the installed list of `kind` (what the next delta must
  /// name as base_hash).
  Bytes state_hash(ListKind kind) const;
  SharedRevocationStats stats() const;

 private:
  /// Swaps in `next` (writer mutex held by caller).
  void publish(std::shared_ptr<const RevocationSnapshot> next);

  mutable std::mutex mutex_;  // serializes writers; readers never take it
  RevocationStore crl_store_;
  RevocationStore url_store_;
  SharedRevocationStats stats_;
  std::atomic<std::shared_ptr<const RevocationSnapshot>> head_;
};

}  // namespace peace::revoke
