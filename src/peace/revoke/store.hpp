// Revocation distribution subsystem, receiver side: a RevocationStore holds
// one NO-signed revocation list (CRL or URL) and advances it by applying
// versioned, hash-chained deltas. The store is a strict state machine:
//
//   * anti-rollback — neither a delta nor a full list with version <= the
//     installed version is ever applied;
//   * chain validation — a delta must name the installed (version, state
//     hash) as its base, and the reconstructed list must verify under the
//     NO's signature carried in the delta; any mismatch classifies as a gap
//     or chain break and the caller falls back to a full-list resync;
//   * atomicity — every check runs against scratch state; a rejected input
//     leaves the installed list byte-identical to before.
//
// Invariant (tested differentially): after any accepted sequence of deltas
// and resyncs, `list().to_bytes()` equals the NO's own full list at the
// same version, bit for bit.
#pragma once

#include "peace/messages.hpp"

namespace peace::revoke {

using proto::ListKind;
using proto::RLDelta;
using proto::SignedRevocationList;

/// SHA-256 over the list's canonical signed payload — the chain link
/// deltas name as `base_hash`.
Bytes list_state_hash(const SignedRevocationList& list);

/// Outcome of offering a delta to a store.
enum class DeltaResult {
  kApplied,       // chain advanced; list mutated
  kStale,         // version <= installed: ignored (anti-rollback / dup)
  kGap,           // base_version != installed version: request a resync
  kBadChain,      // base hash or reconstructed-list signature mismatch
  kBadSignature,  // delta not signed by the authority
  kWrongKind,     // CRL delta offered to a URL store or vice versa
};

/// True for the outcomes that leave the store behind the authority's state
/// and therefore warrant a full-list resync.
inline bool needs_resync(DeltaResult r) {
  return r == DeltaResult::kGap || r == DeltaResult::kBadChain;
}

class RevocationStore {
 public:
  /// `authority` is the key every list and delta must verify under (NPK).
  RevocationStore(ListKind kind, curve::G1 authority);

  ListKind kind() const { return kind_; }
  const curve::G1& authority() const { return authority_; }
  const SignedRevocationList& list() const { return list_; }
  std::uint64_t version() const { return list_.version; }
  const Bytes& state_hash() const { return state_hash_; }

  /// Result of a full-list install (initial provisioning or resync).
  enum class InstallResult { kInstalled, kStale, kBadSignature };

  /// Installs a complete signed list. Equal-version reinstalls of the very
  /// same list are idempotent kInstalled; an older version is kStale and a
  /// bad signature kBadSignature — both leave the store unchanged.
  InstallResult install_full(const SignedRevocationList& full);

  /// Offers one delta; see DeltaResult. Only kApplied mutates the store.
  DeltaResult apply_delta(const RLDelta& delta);

 private:
  ListKind kind_;
  curve::G1 authority_;
  SignedRevocationList list_;  // starts empty at version 0
  Bytes state_hash_;
};

}  // namespace peace::revoke
