#include "peace/messages.hpp"

#include "common/serde.hpp"

namespace peace::proto {

using curve::g1_from_bytes;
using curve::g1_to_bytes;
using curve::kG1CompressedSize;

namespace {

void put_g1(Writer& w, const G1& p) { w.raw(g1_to_bytes(p)); }
G1 get_g1(Reader& r) {
  // g1_from_bytes enforces x < p and on-curve (cofactor 1 makes that a
  // subgroup check too), but it accepts the identity encoding. No protocol
  // field is ever legitimately the identity — certificate keys and DH
  // shares are secret multiples of the generator — and letting it through
  // would, e.g., force a session key derived from the identity share.
  const G1 p = g1_from_bytes(r.raw(kG1CompressedSize));
  if (p.is_infinity()) throw Error("serde: identity point in message");
  return p;
}

void put_ecdsa(Writer& w, const EcdsaSignature& s) { w.raw(s.to_bytes()); }
EcdsaSignature get_ecdsa(Reader& r) {
  return EcdsaSignature::from_bytes(r.raw(curve::kEcdsaSignatureSize));
}

}  // namespace

// --- RouterCertificate -----------------------------------------------------

Bytes RouterCertificate::signed_payload() const {
  Writer w;
  w.str("peace/cert");
  w.u32(router_id);
  put_g1(w, public_key);
  w.u64(expires_at);
  return w.take();
}

Bytes RouterCertificate::to_bytes() const {
  Writer w;
  w.u32(router_id);
  put_g1(w, public_key);
  w.u64(expires_at);
  put_ecdsa(w, signature);
  return w.take();
}

RouterCertificate RouterCertificate::from_bytes(BytesView data) {
  Reader r(data);
  RouterCertificate c;
  c.router_id = r.u32();
  c.public_key = get_g1(r);
  c.expires_at = r.u64();
  c.signature = get_ecdsa(r);
  r.expect_end();
  return c;
}

// --- SignedRevocationList ---------------------------------------------------

Bytes SignedRevocationList::signed_payload() const {
  Writer w;
  w.str("peace/revocation-list");
  w.u64(version);
  w.u64(issued_at);
  w.u32(static_cast<std::uint32_t>(entries.size()));
  for (const Bytes& e : entries) w.bytes(e);
  return w.take();
}

Bytes SignedRevocationList::to_bytes() const {
  Writer w;
  w.u64(version);
  w.u64(issued_at);
  w.u32(static_cast<std::uint32_t>(entries.size()));
  for (const Bytes& e : entries) w.bytes(e);
  put_ecdsa(w, signature);
  return w.take();
}

SignedRevocationList SignedRevocationList::from_bytes(BytesView data) {
  Reader r(data);
  SignedRevocationList l;
  l.version = r.u64();
  l.issued_at = r.u64();
  const std::uint32_t n = r.u32();
  // Each entry consumes at least its 4-byte length prefix: a count that
  // exceeds the remaining buffer is hostile — reject before allocating.
  if (n > r.remaining() / 4) throw Error("revocation list: bad entry count");
  l.entries.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) l.entries.push_back(r.bytes());
  l.signature = get_ecdsa(r);
  r.expect_end();
  return l;
}

// --- RLDelta / RLDeltaAnnounce / RLResync ------------------------------------

namespace {

constexpr std::size_t kStateHashSize = 32;

ListKind get_list_kind(Reader& r) {
  const std::uint8_t k = r.u8();
  if (k > 1) throw Error("rl-delta: unknown list kind");
  return static_cast<ListKind>(k);
}

void put_entries(Writer& w, const std::vector<Bytes>& entries) {
  w.u32(static_cast<std::uint32_t>(entries.size()));
  for (const Bytes& e : entries) w.bytes(e);
}

std::vector<Bytes> get_entries(Reader& r) {
  const std::uint32_t n = r.u32();
  // Each entry consumes at least its 4-byte length prefix: a count that
  // exceeds the remaining buffer is hostile — reject before allocating.
  if (n > r.remaining() / 4) throw Error("rl-delta: bad entry count");
  std::vector<Bytes> entries;
  entries.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) entries.push_back(r.bytes());
  return entries;
}

}  // namespace

Bytes RLDelta::signed_payload() const {
  Writer w;
  w.str("peace/rl-delta");
  w.u8(static_cast<std::uint8_t>(kind));
  w.u64(base_version);
  w.u64(version);
  w.u64(issued_at);
  w.bytes(base_hash);
  put_entries(w, removed);
  put_entries(w, added);
  put_ecdsa(w, full_signature);
  return w.take();
}

Bytes RLDelta::to_bytes() const {
  Writer w;
  w.u8(static_cast<std::uint8_t>(kind));
  w.u64(base_version);
  w.u64(version);
  w.u64(issued_at);
  w.bytes(base_hash);
  put_entries(w, removed);
  put_entries(w, added);
  put_ecdsa(w, full_signature);
  put_ecdsa(w, signature);
  return w.take();
}

RLDelta RLDelta::from_bytes(BytesView data) {
  Reader r(data);
  RLDelta d;
  d.kind = get_list_kind(r);
  d.base_version = r.u64();
  d.version = r.u64();
  d.issued_at = r.u64();
  d.base_hash = r.bytes();
  if (d.base_hash.size() != kStateHashSize)
    throw Error("rl-delta: bad base hash length");
  // A delta that does not advance the version can never apply: reject the
  // malformed encoding outright rather than letting stores classify it.
  if (d.version <= d.base_version) throw Error("rl-delta: non-increasing version");
  d.removed = get_entries(r);
  d.added = get_entries(r);
  d.full_signature = get_ecdsa(r);
  d.signature = get_ecdsa(r);
  r.expect_end();
  return d;
}

Bytes RLDeltaAnnounce::to_bytes() const {
  Writer w;
  w.u32(static_cast<std::uint32_t>(deltas.size()));
  for (const RLDelta& d : deltas) w.bytes(d.to_bytes());
  return w.take();
}

RLDeltaAnnounce RLDeltaAnnounce::from_bytes(BytesView data) {
  Reader r(data);
  RLDeltaAnnounce a;
  const std::uint32_t n = r.u32();
  if (n > r.remaining() / 4) throw Error("rl-announce: bad delta count");
  a.deltas.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i)
    a.deltas.push_back(RLDelta::from_bytes(r.bytes()));
  r.expect_end();
  return a;
}

Bytes RLResyncRequest::to_bytes() const {
  Writer w;
  w.u8(static_cast<std::uint8_t>(kind));
  w.u64(have_version);
  return w.take();
}

RLResyncRequest RLResyncRequest::from_bytes(BytesView data) {
  Reader r(data);
  RLResyncRequest req;
  req.kind = get_list_kind(r);
  req.have_version = r.u64();
  r.expect_end();
  return req;
}

Bytes RLResyncResponse::to_bytes() const {
  Writer w;
  w.u8(static_cast<std::uint8_t>(kind));
  w.bytes(full.to_bytes());
  return w.take();
}

RLResyncResponse RLResyncResponse::from_bytes(BytesView data) {
  Reader r(data);
  RLResyncResponse resp;
  resp.kind = get_list_kind(r);
  resp.full = SignedRevocationList::from_bytes(r.bytes());
  r.expect_end();
  return resp;
}

// --- BeaconMessage -----------------------------------------------------------

Bytes BeaconMessage::signed_payload() const {
  Writer w;
  w.str("peace/beacon");
  w.u32(router_id);
  put_g1(w, g);
  put_g1(w, g_rr);
  w.u64(ts1);
  return w.take();
}

Bytes BeaconMessage::to_bytes() const {
  Writer w;
  w.u32(router_id);
  put_g1(w, g);
  put_g1(w, g_rr);
  w.u64(ts1);
  put_ecdsa(w, signature);
  w.bytes(certificate.to_bytes());
  w.bytes(crl.to_bytes());
  w.bytes(url.to_bytes());
  w.u8(puzzle.has_value() ? 1 : 0);
  if (puzzle.has_value()) w.bytes(puzzle->to_bytes());
  return w.take();
}

BeaconMessage BeaconMessage::from_bytes(BytesView data) {
  Reader r(data);
  BeaconMessage b;
  b.router_id = r.u32();
  b.g = get_g1(r);
  b.g_rr = get_g1(r);
  b.ts1 = r.u64();
  b.signature = get_ecdsa(r);
  b.certificate = RouterCertificate::from_bytes(r.bytes());
  b.crl = SignedRevocationList::from_bytes(r.bytes());
  b.url = SignedRevocationList::from_bytes(r.bytes());
  if (r.u8() != 0) b.puzzle = PuzzleChallenge::from_bytes(r.bytes());
  r.expect_end();
  return b;
}

// --- AccessRequest -----------------------------------------------------------

Bytes AccessRequest::signed_payload() const {
  Writer w;
  w.str("peace/m2");
  put_g1(w, g_rj);
  put_g1(w, g_rr);
  w.u64(ts2);
  return w.take();
}

Bytes AccessRequest::to_bytes() const {
  Writer w;
  put_g1(w, g_rj);
  put_g1(w, g_rr);
  w.u64(ts2);
  w.raw(signature.to_bytes());
  w.u8(puzzle_solution.has_value() ? 1 : 0);
  if (puzzle_solution.has_value()) w.bytes(puzzle_solution->to_bytes());
  return w.take();
}

AccessRequest AccessRequest::from_bytes(BytesView data) {
  Reader r(data);
  AccessRequest m;
  m.g_rj = get_g1(r);
  m.g_rr = get_g1(r);
  m.ts2 = r.u64();
  m.signature = groupsig::Signature::from_bytes(r.raw(groupsig::kSignatureSize));
  if (r.u8() != 0) m.puzzle_solution = PuzzleSolution::from_bytes(r.bytes());
  r.expect_end();
  return m;
}

// --- AccessConfirm -----------------------------------------------------------

Bytes AccessConfirm::to_bytes() const {
  Writer w;
  put_g1(w, g_rj);
  put_g1(w, g_rr);
  w.bytes(ciphertext);
  return w.take();
}

AccessConfirm AccessConfirm::from_bytes(BytesView data) {
  Reader r(data);
  AccessConfirm m;
  m.g_rj = get_g1(r);
  m.g_rr = get_g1(r);
  m.ciphertext = r.bytes();
  r.expect_end();
  return m;
}

// --- PeerHello / PeerReply / PeerConfirm --------------------------------------

Bytes PeerHello::signed_payload() const {
  Writer w;
  w.str("peace/m~1");
  put_g1(w, g);
  put_g1(w, g_rj);
  w.u64(ts1);
  return w.take();
}

Bytes PeerHello::to_bytes() const {
  Writer w;
  put_g1(w, g);
  put_g1(w, g_rj);
  w.u64(ts1);
  w.raw(signature.to_bytes());
  return w.take();
}

PeerHello PeerHello::from_bytes(BytesView data) {
  Reader r(data);
  PeerHello m;
  m.g = get_g1(r);
  m.g_rj = get_g1(r);
  m.ts1 = r.u64();
  m.signature = groupsig::Signature::from_bytes(r.raw(groupsig::kSignatureSize));
  r.expect_end();
  return m;
}

Bytes PeerReply::signed_payload() const {
  Writer w;
  w.str("peace/m~2");
  put_g1(w, g_rj);
  put_g1(w, g_rl);
  w.u64(ts2);
  return w.take();
}

Bytes PeerReply::to_bytes() const {
  Writer w;
  put_g1(w, g_rj);
  put_g1(w, g_rl);
  w.u64(ts2);
  w.raw(signature.to_bytes());
  return w.take();
}

PeerReply PeerReply::from_bytes(BytesView data) {
  Reader r(data);
  PeerReply m;
  m.g_rj = get_g1(r);
  m.g_rl = get_g1(r);
  m.ts2 = r.u64();
  m.signature = groupsig::Signature::from_bytes(r.raw(groupsig::kSignatureSize));
  r.expect_end();
  return m;
}

Bytes PeerConfirm::to_bytes() const {
  Writer w;
  put_g1(w, g_rj);
  put_g1(w, g_rl);
  w.bytes(ciphertext);
  return w.take();
}

PeerConfirm PeerConfirm::from_bytes(BytesView data) {
  Reader r(data);
  PeerConfirm m;
  m.g_rj = get_g1(r);
  m.g_rl = get_g1(r);
  m.ciphertext = r.bytes();
  r.expect_end();
  return m;
}

// --- DataFrame ----------------------------------------------------------------

Bytes DataFrame::to_bytes() const {
  Writer w;
  w.bytes(session_id);
  w.u64(seq);
  w.bytes(ciphertext);
  return w.take();
}

DataFrame DataFrame::from_bytes(BytesView data) {
  Reader r(data);
  DataFrame f;
  f.session_id = r.bytes();
  f.seq = r.u64();
  f.ciphertext = r.bytes();
  r.expect_end();
  return f;
}

Bytes session_id_from(const G1& a, const G1& b) {
  Bytes id = g1_to_bytes(a);
  append(id, g1_to_bytes(b));
  return id;
}

}  // namespace peace::proto
