// Umbrella header: everything a PEACE integrator needs.
//
//   #include "peace/peace.hpp"
//
//   peace::curve::Bn254::init();                       // once per process
//   peace::proto::NetworkOperator no(...);             // operator side
//   peace::proto::TrustedThirdParty ttp;               // setup escrow
//   auto gm = no.register_group("Company XYZ", n, ttp);
//   peace::proto::User user(uid, no.params(), rng);    // subscriber side
//   user.complete_enrollment(gm.enroll(uid, ttp));
//   peace::proto::MeshRouter router(...);              // infrastructure
//
// then drive the M.1/M.2/M.3 and M~.1-3 handshakes via
// MeshRouter::make_beacon / User::process_beacon /
// MeshRouter::handle_access_request / User::process_access_confirm, and
// move data with proto::Session. See examples/quickstart.cpp for the full
// walk-through and DESIGN.md for the architecture.
#pragma once

#include "peace/entities.hpp"
#include "peace/messages.hpp"
#include "peace/puzzle.hpp"
#include "peace/router.hpp"
#include "peace/session.hpp"
#include "peace/user.hpp"
