// Session keying and the hybrid data path (paper Sec. V.C): the expensive
// group-signature handshake runs once per session; every subsequent frame is
// protected by symmetric AEAD/MAC keys derived from the Diffie-Hellman
// share K = g^(rR rj) via HKDF. Sessions are identified only by the pair of
// fresh random DH shares, never by anything user-linkable.
#pragma once

#include <cstdint>
#include <optional>

#include "peace/messages.hpp"

namespace peace::proto {

class Session {
 public:
  enum class Role { kInitiator, kResponder };

  /// The symmetric suite protecting data frames. Both endpoints must pick
  /// the same one at establishment (a mismatch simply fails to decrypt).
  enum class CipherSuite { kChaCha20Poly1305, kAes128Gcm };

  /// Derives directional encryption keys and the MAC key from the DH shared
  /// point and the public session id.
  static Session establish(const G1& shared_dh, BytesView session_id,
                           Role role,
                           CipherSuite suite = CipherSuite::kChaCha20Poly1305);

  CipherSuite suite() const { return suite_; }

  const Bytes& id() const { return id_; }
  std::uint64_t frames_sent() const { return send_seq_; }

  /// The sentinel send_seq_ value at which the sequence space is spent.
  /// Sealing at this point would wrap the counter and reuse an AEAD nonce
  /// under the same key, so seal() refuses instead.
  static constexpr std::uint64_t kSeqExhausted = ~0ull;

  /// Skips n send sequence numbers without sealing (a sequence number is
  /// never reused, so skipping forward is always safe). Saturates at
  /// kSeqExhausted rather than wrapping.
  void advance_send_seq(std::uint64_t n) {
    send_seq_ = n > kSeqExhausted - send_seq_ ? kSeqExhausted : send_seq_ + n;
  }

  /// True once the send counter has reached the sentinel: the next seal
  /// would reuse an AEAD nonce, so the session must be rekeyed (a fresh DH
  /// handshake) before it can send again.
  bool seq_exhausted() const { return send_seq_ == kSeqExhausted; }

  /// Encrypts and authenticates one payload; the sequence number is bound
  /// into the AEAD so frames cannot be reordered or replayed. Returns
  /// nullopt — refusing gracefully — once the 2^64 - 1 sequence space is
  /// exhausted; callers should treat that as a rekey trigger, not an error.
  std::optional<DataFrame> try_seal(BytesView payload);

  /// Throwing form of try_seal for callers that treat exhaustion as a
  /// programming error (tests, one-shot tools). The data path must use
  /// try_seal instead.
  DataFrame seal(BytesView payload);

  /// Verifies, decrypts, and enforces strictly increasing sequence numbers.
  /// Returns nullopt on any failure (wrong session, replay, tamper).
  std::optional<Bytes> open(const DataFrame& frame);

  /// Lightweight integrity-only path (HMAC-SHA256) for traffic that needs
  /// authentication but not confidentiality.
  Bytes mac(BytesView data) const;
  bool check_mac(BytesView data, BytesView tag) const;

 private:
  Bytes id_;
  CipherSuite suite_ = CipherSuite::kChaCha20Poly1305;
  Bytes send_key_;  // 32 bytes (ChaCha) or 16 (AES-128)
  Bytes recv_key_;
  Bytes mac_key_;   // 32 bytes
  std::uint64_t send_seq_ = 0;
  std::uint64_t next_recv_seq_ = 0;
};

/// One-shot authenticated encryption for the key-confirmation ciphertexts
/// in (M.3) and (M~.3); uses a key derived from the same DH share under a
/// separate HKDF label so confirmation traffic can never collide with data
/// frames.
Bytes confirm_seal(const G1& shared_dh, BytesView session_id,
                   BytesView payload);
std::optional<Bytes> confirm_open(const G1& shared_dh, BytesView session_id,
                                  BytesView ciphertext);

}  // namespace peace::proto
