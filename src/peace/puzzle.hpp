// Juels-Brainard client puzzles (the paper's DoS countermeasure, Sec. V.A):
// solving requires a brute-force search over a hash preimage space whose
// size the router controls via `difficulty_bits`; verification is a single
// hash. Routers attach a challenge to beacons while under suspected attack
// and only commit to expensive group-signature verification once a valid
// solution accompanies the access request.
#pragma once

#include <cstdint>
#include <optional>

#include "common/bytes.hpp"

namespace peace::proto {

struct PuzzleChallenge {
  Bytes server_nonce;            // fresh per beacon period
  std::uint8_t difficulty_bits = 0;  // required leading zero bits

  Bytes to_bytes() const;
  static PuzzleChallenge from_bytes(BytesView data);
  bool operator==(const PuzzleChallenge&) const = default;
};

struct PuzzleSolution {
  Bytes server_nonce;  // echoes the challenge it answers
  std::uint64_t solution = 0;

  Bytes to_bytes() const;
  static PuzzleSolution from_bytes(BytesView data);
  bool operator==(const PuzzleSolution&) const = default;
};

/// Creates a challenge with `difficulty_bits` leading zero bits required.
PuzzleChallenge make_puzzle(BytesView server_nonce,
                            std::uint8_t difficulty_bits);

/// Brute-force search (expected 2^difficulty_bits hash evaluations); binds
/// the work to `client_binding` (e.g. the client's DH share) so solutions
/// cannot be replayed for other requests.
PuzzleSolution solve_puzzle(const PuzzleChallenge& challenge,
                            BytesView client_binding);

/// O(1) verification.
bool verify_puzzle(const PuzzleChallenge& challenge,
                   const PuzzleSolution& solution, BytesView client_binding);

/// Expected number of hash evaluations to solve at this difficulty.
double puzzle_expected_work(std::uint8_t difficulty_bits);

}  // namespace peace::proto
