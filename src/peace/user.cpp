#include "peace/user.hpp"

#include "common/serde.hpp"
#include "crypto/sha256.hpp"
#include "curve/hash_to_curve.hpp"
#include "obs/trace.hpp"

namespace peace::proto {

using curve::ecdsa_verify;
using curve::g1_to_bytes;
using curve::random_fr;

User::User(std::string uid, SystemParams params, crypto::Drbg rng,
           ProtocolConfig config)
    : uid_(std::move(uid)),
      params_(std::move(params)),
      pgpk_(params_.gpk),
      rng_(std::move(rng)),
      config_(config),
      batch_salt_(rng_.bytes(32)),
      receipt_key_(curve::EcdsaKeyPair::generate(rng_)) {}

namespace {

/// Key for the resend caches: only *byte-identical* duplicates of a frame
/// ever match, so a forged variant sharing public fields can never fish a
/// cached answer out.
std::string wire_key(const Bytes& wire) {
  return to_hex(crypto::Sha256::hash(wire));
}

template <typename Map>
std::size_t reap_map(Map& map, Timestamp now, Timestamp ttl) {
  std::size_t reaped = 0;
  for (auto it = map.begin(); it != map.end();) {
    if (now >= it->second.created && now - it->second.created > ttl) {
      it = map.erase(it);
      ++reaped;
    } else {
      ++it;
    }
  }
  return reaped;
}

}  // namespace

std::size_t User::reap_pending(Timestamp now) {
  const Timestamp ttl = config_.pending_ttl_ms;
  std::size_t reaped = reap_map(pending_access_, now, ttl);
  reaped += reap_map(pending_peer_init_, now, ttl);
  reaped += reap_map(pending_peer_resp_, now, ttl);
  reaped += reap_map(hello_replies_, now, ttl);
  reaped += reap_map(peer_confirms_, now, ttl);
  stats_.pending_expired += reaped;
  return reaped;
}

template <typename Map>
void User::admit_pending(Map& map, Timestamp now) {
  reap_pending(now);
  if (config_.pending_cap == 0) return;
  // Hard cap: evict the oldest entry rather than refuse — the newest
  // handshake is the one most likely to still complete.
  while (map.size() >= config_.pending_cap) {
    auto oldest = map.begin();
    for (auto it = map.begin(); it != map.end(); ++it)
      if (it->second.created < oldest->second.created) oldest = it;
    map.erase(oldest);
    ++stats_.pending_evicted;
  }
}

curve::EcdsaSignature User::complete_enrollment(
    const GroupManager::Enrollment& enrollment) {
  MemberKey key;
  key.a = unblind_credential(enrollment.blinded_credential, enrollment.x);
  key.grp = enrollment.grp;
  key.x = enrollment.x;
  if (!key.is_valid(params_.gpk))
    throw Error("user: assembled credential fails the SDH check");
  credentials_[enrollment.index.group] = key;
  // Non-repudiation: sign for what was received (paper IV.A).
  return receipt_key_.sign(
      GroupManager::enrollment_receipt_payload(enrollment), rng_);
}

std::vector<GroupId> User::enrolled_groups() const {
  std::vector<GroupId> out;
  out.reserve(credentials_.size());
  for (const auto& [gid, _] : credentials_) out.push_back(gid);
  return out;
}

const MemberKey& User::credential(GroupId group) const {
  const auto it = credentials_.find(group);
  if (it == credentials_.end()) throw Error("user: not enrolled in group");
  return it->second;
}

const MemberKey& User::pick_credential(GroupId via_group) const {
  if (credentials_.empty()) throw Error("user: no credentials");
  if (via_group == 0) return credentials_.begin()->second;
  return credential(via_group);
}

bool User::beacon_trustworthy(const BeaconMessage& beacon, Timestamp now) {
  // Step 2.1: timestamp freshness.
  const Timestamp age =
      now >= beacon.ts1 ? now - beacon.ts1 : beacon.ts1 - now;
  if (age > config_.replay_window_ms) return false;
  // Certificate: signed by NO, not expired, consistent router id.
  const RouterCertificate& cert = beacon.certificate;
  if (cert.router_id != beacon.router_id) return false;
  if (cert.expires_at <= now) return false;
  if (!ecdsa_verify(params_.network_public_key, cert.signed_payload(),
                    cert.signature))
    return false;
  // Revocation lists: must be authentic before they are used or cached.
  if (!ecdsa_verify(params_.network_public_key, beacon.crl.signed_payload(),
                    beacon.crl.signature))
    return false;
  if (!ecdsa_verify(params_.network_public_key, beacon.url.signed_payload(),
                    beacon.url.signature))
    return false;
  // Cache the freshest authentic lists first (monotone versions only) —
  // a revoked router will keep distributing the stale CRL that predates
  // its own revocation, so the check below must use the newest list this
  // user has seen from ANY router, not the beacon's copy.
  if (beacon.crl.version >= crl_.version) crl_ = beacon.crl;
  if (beacon.url.version >= url_.version) {
    url_ = beacon.url;
    url_tokens_.clear();
    for (const Bytes& e : url_.entries)
      url_tokens_.push_back(RevocationToken::from_bytes(e));
  }
  // CRL check: has this router's certificate been revoked?
  Writer rid;
  rid.u32(beacon.router_id);
  for (const Bytes& e : crl_.entries)
    if (e == rid.data()) return false;
  // Beacon signature under the certified router key.
  if (!ecdsa_verify(cert.public_key, beacon.signed_payload(),
                    beacon.signature))
    return false;
  return true;
}

std::optional<AccessRequest> User::process_beacon(const BeaconMessage& beacon,
                                                  Timestamp now,
                                                  GroupId via_group) {
  ++stats_.beacons_seen;
  if (!beacon_trustworthy(beacon, now)) {
    ++stats_.beacons_rejected;
    return std::nullopt;
  }

  // Telemetry: the M.2 build (DH share, puzzle, group signature) is the
  // user's heaviest handshake step.
  static obs::Histogram& m2_hist =
      obs::Registry::global().histogram("user.m2_build_us");
  obs::Span span("user.m2_build", "handshake", &m2_hist);

  // Step 2.2.1: fresh DH share under the beacon's generator.
  const Fr r_j = random_fr(rng_);
  AccessRequest m2;
  m2.g_rj = beacon.g * r_j;
  m2.g_rr = beacon.g_rr;
  m2.ts2 = now;

  // DoS defence: solve the router's puzzle before signing.
  if (beacon.puzzle.has_value()) {
    stats_.puzzle_hashes += static_cast<std::uint64_t>(
        puzzle_expected_work(beacon.puzzle->difficulty_bits));
    m2.puzzle_solution = solve_puzzle(*beacon.puzzle, g1_to_bytes(m2.g_rj));
  }

  // Steps 2.2.2 - 2.2.4: group signature over (g^rj, g^rR, ts2).
  m2.signature = groupsig::sign(params_.gpk, pick_credential(via_group),
                                m2.signed_payload(), rng_);

  // Step 2.2.5: K = (g^rR)^rj, remembered until M.3 arrives.
  const Bytes sid = session_id_from(m2.g_rr, m2.g_rj);
  admit_pending(pending_access_, now);
  pending_access_[to_hex(sid)] =
      PendingAccess{beacon.g_rr * r_j, beacon.router_id, m2.g_rj, m2.g_rr, now};
  return m2;
}

std::optional<Session> User::process_access_confirm(const AccessConfirm& m3) {
  static obs::Histogram& m3_hist =
      obs::Registry::global().histogram("user.m3_process_us");
  obs::Span span("user.m3_process", "handshake", &m3_hist);
  const Bytes sid = session_id_from(m3.g_rr, m3.g_rj);
  const auto it = pending_access_.find(to_hex(sid));
  if (it == pending_access_.end()) return std::nullopt;
  const PendingAccess& pending = it->second;

  const auto payload = confirm_open(pending.shared, sid, m3.ciphertext);
  if (!payload.has_value()) return std::nullopt;
  // The confirmation must name the router and echo both DH shares.
  Writer expect;
  expect.u32(pending.router_id);
  expect.raw(g1_to_bytes(pending.g_rj));
  expect.raw(g1_to_bytes(pending.g_rr));
  if (*payload != expect.data()) return std::nullopt;

  Session session =
      Session::establish(pending.shared, sid, Session::Role::kInitiator);
  pending_access_.erase(it);
  ++stats_.sessions_established;
  return session;
}

bool User::peer_signature_ok(BytesView payload,
                             const groupsig::Signature& sig) {
  if (!groupsig::verify_proof(pgpk_, payload, sig)) return false;
  return peer_not_revoked(payload, sig);
}

bool User::peer_not_revoked(BytesView payload,
                            const groupsig::Signature& sig) {
  if (url_tokens_.empty()) return true;
  // One base derivation (and one v_hat preparation) amortised over the
  // whole URL scan, and the batched TokenScan underneath: one Miller loop
  // per token, one shared e(-v, T_hat) factor, one easy-part inversion for
  // the whole hello check.
  const groupsig::PreparedBases prepared =
      groupsig::prepare_bases(params_.gpk, payload, sig);
  return groupsig::scan_tokens(prepared, sig, url_tokens_) ==
         groupsig::TokenScan::npos;
}

PeerHello User::make_peer_hello(const G1& g, Timestamp now,
                                GroupId via_group) {
  const Fr r_j = random_fr(rng_);
  PeerHello hello;
  hello.g = g;
  hello.g_rj = g * r_j;
  hello.ts1 = now;
  hello.signature = groupsig::sign(params_.gpk, pick_credential(via_group),
                                   hello.signed_payload(), rng_);
  admit_pending(pending_peer_init_, now);
  pending_peer_init_[to_hex(g1_to_bytes(hello.g_rj))] =
      PendingPeerInitiator{r_j, hello.g_rj, now, now};
  return hello;
}

PeerReply User::reply_to_hello(const PeerHello& hello, Timestamp now,
                               GroupId via_group) {
  const Fr r_l = random_fr(rng_);
  PeerReply reply;
  reply.g_rj = hello.g_rj;
  reply.g_rl = hello.g * r_l;
  reply.ts2 = now;
  reply.signature = groupsig::sign(params_.gpk, pick_credential(via_group),
                                   reply.signed_payload(), rng_);

  const Bytes sid = session_id_from(reply.g_rj, reply.g_rl);
  admit_pending(pending_peer_resp_, now);
  pending_peer_resp_[to_hex(sid)] =
      PendingPeerResponder{hello.g_rj * r_l, hello.ts1, now, now};
  if (config_.idempotent_resend) {
    admit_pending(hello_replies_, now);
    hello_replies_[wire_key(hello.to_bytes())] =
        CachedWire{reply.to_bytes(), now};
  }
  return reply;
}

std::optional<PeerReply> User::process_peer_hello(const PeerHello& hello,
                                                  Timestamp now,
                                                  GroupId via_group) {
  static obs::Histogram& hello_hist =
      obs::Registry::global().histogram("user.peer_hello_us");
  obs::Span span("user.peer_hello", "handshake", &hello_hist);
  const Timestamp age = now >= hello.ts1 ? now - hello.ts1 : hello.ts1 - now;
  if (age > config_.replay_window_ms) return std::nullopt;
  // Idempotent resend: a byte-identical duplicate (radio duplication or an
  // initiator retransmission after a lost M~.2) gets the cached reply back
  // — no new r_l, no new pending state, no pairing work, no rng draw.
  if (config_.idempotent_resend) {
    if (const auto it = hello_replies_.find(wire_key(hello.to_bytes()));
        it != hello_replies_.end()) {
      ++stats_.duplicate_hellos;
      return PeerReply::from_bytes(it->second.wire);
    }
  }
  if (!peer_signature_ok(hello.signed_payload(), hello.signature))
    return std::nullopt;
  return reply_to_hello(hello, now, via_group);
}

std::vector<std::optional<PeerReply>> User::process_peer_hellos(
    std::span<const PeerHello> hellos, Timestamp now, GroupId via_group) {
  std::vector<std::optional<PeerReply>> results(hellos.size());

  static obs::Histogram& peer_batch_hist =
      obs::Registry::global().histogram("user.peer_batch_us");
  obs::Span span("user.peer_batch", "handshake", &peer_batch_hist);
  span.arg("batch_size", hellos.size());

  // Pass 1 (sequential): the cheap freshness gate, in input order.
  struct Pending {
    std::size_t index;
    bool ok = false;
  };
  std::vector<Pending> pending;
  pending.reserve(hellos.size());
  for (std::size_t i = 0; i < hellos.size(); ++i) {
    const Timestamp age =
        now >= hellos[i].ts1 ? now - hellos[i].ts1 : hellos[i].ts1 - now;
    if (age > config_.replay_window_ms) continue;
    // Duplicates of already-answered hellos are served from the cache here,
    // before any verification work — same as the one-at-a-time path.
    if (config_.idempotent_resend) {
      if (const auto it = hello_replies_.find(wire_key(hellos[i].to_bytes()));
          it != hello_replies_.end()) {
        ++stats_.duplicate_hellos;
        results[i] = PeerReply::from_bytes(it->second.wire);
        continue;
      }
    }
    pending.push_back({i});
  }

  // Pass 2 (parallel): the pairing-heavy group-signature verification plus
  // URL scan. peer_signature_ok touches only immutable state (pgpk_,
  // url_tokens_), so jobs need no synchronization beyond the pool's own.
  const auto verify_one = [&](Pending& p) {
    const PeerHello& hello = hellos[p.index];
    p.ok = peer_signature_ok(hello.signed_payload(), hello.signature);
  };
  if (pool_ == nullptr && config_.verify_threads > 1)
    pool_ = std::make_unique<VerifyPool>(config_.verify_threads);
  const auto run_jobs = [this](std::size_t count, auto&& body) {
    if (pool_ != nullptr && count > 1) {
      pool_->run(count, body);
    } else {
      for (std::size_t i = 0; i < count; ++i) body(i);
    }
  };
  if (config_.batch_verify && pending.size() > 1) {
    // Randomized batch verification, mirroring the router's M.2 pipeline:
    // pooled prepare, sequential combined-check + bisection (one final
    // exponentiation when every proof holds), then a per-signature URL
    // scan for the survivors. Bit-identical to peer_signature_ok per hello.
    ++stats_.peer_verify_batches;
    stats_.peer_batched_hellos += pending.size();
    std::vector<Bytes> payloads(pending.size());
    std::vector<groupsig::BatchItem> items(pending.size());
    for (std::size_t i = 0; i < pending.size(); ++i) {
      payloads[i] = hellos[pending[i].index].signed_payload();
      items[i] = {payloads[i], &hellos[pending[i].index].signature};
    }
    groupsig::BatchVerifier verifier(pgpk_, items, batch_salt_);
    run_jobs(pending.size(), [&](std::size_t i) { verifier.prepare(i); });
    const std::vector<char>& ok = verifier.finalize();
    std::vector<std::size_t> survivors;
    survivors.reserve(pending.size());
    for (std::size_t i = 0; i < pending.size(); ++i)
      if (ok[i]) survivors.push_back(i);
    run_jobs(survivors.size(), [&](std::size_t i) {
      const std::size_t j = survivors[i];
      pending[j].ok = peer_not_revoked(payloads[j],
                                       hellos[pending[j].index].signature);
    });
  } else if (pool_ != nullptr && pending.size() > 1) {
    ++stats_.peer_verify_batches;
    stats_.peer_batched_hellos += pending.size();
    pool_->run(pending.size(), [&](std::size_t i) { verify_one(pending[i]); });
  } else {
    for (Pending& p : pending) verify_one(p);
  }

  // Pass 3 (sequential, input order): every rng draw (r_l, signing nonces)
  // happens here, exactly as the one-at-a-time path would perform them.
  for (const Pending& p : pending) {
    if (!p.ok) continue;
    // An in-batch byte-identical duplicate misses the cache in pass 1 (the
    // first copy's reply doesn't exist yet) but must still be served from
    // it: reply_to_hello on the first copy populated the cache during this
    // pass, so re-check before minting a second r_l.
    if (config_.idempotent_resend) {
      if (const auto it =
              hello_replies_.find(wire_key(hellos[p.index].to_bytes()));
          it != hello_replies_.end()) {
        ++stats_.duplicate_hellos;
        results[p.index] = PeerReply::from_bytes(it->second.wire);
        continue;
      }
    }
    results[p.index] = reply_to_hello(hellos[p.index], now, via_group);
  }

  if (span.active() && !hellos.empty()) {
    const std::uint64_t dur = span.close();
    static obs::Histogram& hello_hist =
        obs::Registry::global().histogram("user.peer_hello_us");
    hello_hist.record(dur / hellos.size());
  }
  return results;
}

std::optional<User::PeerEstablished> User::process_peer_reply(
    const PeerReply& reply, Timestamp now) {
  static obs::Histogram& reply_hist =
      obs::Registry::global().histogram("user.peer_reply_us");
  obs::Span span("user.peer_reply", "handshake", &reply_hist);
  const auto it = pending_peer_init_.find(to_hex(g1_to_bytes(reply.g_rj)));
  if (it == pending_peer_init_.end()) return std::nullopt;
  const PendingPeerInitiator& pending = it->second;

  // Paper step 3: ts2 - ts1 within the acceptable delay window.
  if (reply.ts2 < pending.ts1 ||
      reply.ts2 - pending.ts1 > config_.replay_window_ms)
    return std::nullopt;
  const Timestamp age = now >= reply.ts2 ? now - reply.ts2 : reply.ts2 - now;
  if (age > config_.replay_window_ms) return std::nullopt;
  if (!peer_signature_ok(reply.signed_payload(), reply.signature))
    return std::nullopt;

  const G1 shared = reply.g_rl * pending.r_j;
  const Bytes sid = session_id_from(reply.g_rj, reply.g_rl);

  PeerEstablished out{
      PeerConfirm{reply.g_rj, reply.g_rl, {}},
      Session::establish(shared, sid, Session::Role::kInitiator)};
  Writer payload;
  payload.raw(g1_to_bytes(reply.g_rj));
  payload.raw(g1_to_bytes(reply.g_rl));
  payload.u64(pending.ts1);
  payload.u64(reply.ts2);
  out.confirm.ciphertext = confirm_seal(shared, sid, payload.data());

  if (config_.idempotent_resend) {
    admit_pending(peer_confirms_, now);
    peer_confirms_[wire_key(reply.to_bytes())] =
        CachedWire{out.confirm.to_bytes(), now};
  }
  pending_peer_init_.erase(it);
  ++stats_.peer_sessions_established;
  return out;
}

std::optional<PeerConfirm> User::cached_peer_confirm(const PeerReply& reply) {
  const auto it = peer_confirms_.find(wire_key(reply.to_bytes()));
  if (it == peer_confirms_.end()) return std::nullopt;
  ++stats_.duplicate_replies;
  return PeerConfirm::from_bytes(it->second.wire);
}

std::optional<Session> User::process_peer_confirm(const PeerConfirm& confirm) {
  const Bytes sid = session_id_from(confirm.g_rj, confirm.g_rl);
  const auto it = pending_peer_resp_.find(to_hex(sid));
  if (it == pending_peer_resp_.end()) return std::nullopt;
  const PendingPeerResponder& pending = it->second;

  const auto payload = confirm_open(pending.shared, sid, confirm.ciphertext);
  if (!payload.has_value()) return std::nullopt;
  Writer expect;
  expect.raw(g1_to_bytes(confirm.g_rj));
  expect.raw(g1_to_bytes(confirm.g_rl));
  expect.u64(pending.ts1);
  expect.u64(pending.ts2);
  if (*payload != expect.data()) return std::nullopt;

  Session session =
      Session::establish(pending.shared, sid, Session::Role::kResponder);
  pending_peer_resp_.erase(it);
  ++stats_.peer_sessions_established;
  return session;
}

}  // namespace peace::proto
