// Byte-buffer utilities shared by every module: the `Bytes` alias, hex
// conversion, and constant-time comparison for secret material.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace peace {

using Bytes = std::vector<std::uint8_t>;
using BytesView = std::span<const std::uint8_t>;

/// Error type thrown by all PEACE modules for malformed input, failed
/// verification preconditions, and protocol violations.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Lowercase hex encoding of a byte string.
std::string to_hex(BytesView data);

/// Parses lowercase/uppercase hex. Throws Error on odd length or bad digit.
Bytes from_hex(std::string_view hex);

/// Byte view over a string's contents (no copy).
inline BytesView as_bytes(std::string_view s) {
  return {reinterpret_cast<const std::uint8_t*>(s.data()), s.size()};
}

/// Copies a string into a fresh byte buffer.
inline Bytes to_bytes(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

/// Appends `src` to `dst`.
inline void append(Bytes& dst, BytesView src) {
  dst.insert(dst.end(), src.begin(), src.end());
}

/// Concatenates any number of byte views.
template <typename... Views>
Bytes concat(const Views&... views) {
  Bytes out;
  (append(out, BytesView(views)), ...);
  return out;
}

/// Constant-time equality: runtime depends only on the lengths, never on the
/// contents, so MAC/tag comparisons do not leak via timing.
bool ct_equal(BytesView a, BytesView b);

/// XORs `b` into `a` (up to the shorter length). Used for the A xor x
/// blinding in PEACE setup, where x may be longer than A (paper footnote 1:
/// surplus bits of x are ignored).
Bytes xor_bytes(BytesView a, BytesView b);

}  // namespace peace
