// Minimal deterministic binary serialization used for all PEACE wire
// messages. Big-endian fixed-width integers and length-prefixed byte strings;
// a Reader that throws on truncation so malformed network input can never
// read out of bounds.
#pragma once

#include <cstdint>
#include <string>

#include "common/bytes.hpp"

namespace peace {

/// Appends fields to a growing byte buffer in a canonical encoding.
class Writer {
 public:
  Writer() = default;

  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  /// Raw bytes, no length prefix (fixed-size fields).
  void raw(BytesView data) { append(buf_, data); }
  /// Length-prefixed (u32) byte string.
  void bytes(BytesView data);
  /// Length-prefixed UTF-8 string.
  void str(std::string_view s) { bytes(as_bytes(s)); }

  const Bytes& data() const { return buf_; }
  Bytes take() { return std::move(buf_); }

 private:
  Bytes buf_;
};

/// Consumes fields from a byte view; every accessor throws Error("serde: ...")
/// if the buffer is exhausted, so callers never see partial reads.
class Reader {
 public:
  explicit Reader(BytesView data) : data_(data) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  /// Fixed-size field.
  Bytes raw(std::size_t n);
  /// Length-prefixed byte string (u32 prefix); the length is validated
  /// against the remaining buffer before allocation.
  Bytes bytes();
  std::string str();

  bool empty() const { return pos_ == data_.size(); }
  std::size_t remaining() const { return data_.size() - pos_; }
  /// Throws unless the whole buffer has been consumed — rejects messages
  /// with trailing garbage.
  void expect_end() const;

 private:
  void need(std::size_t n) const;

  BytesView data_;
  std::size_t pos_ = 0;
};

}  // namespace peace
