// E2/E3 — "Computational Overhead" (paper Sec. V.C).
// Paper: signing = ~8 exponentiations + 2 pairings; verification =
// 6 exponentiations + (3 + 2|URL|) pairings. We measure wall-clock AND the
// instrumented operation counts (the Type-3 adaptation adds the T_hat
// carrier: one extra exponentiation per side; same-base pairings folded).
#include "bench_common.hpp"

namespace peace::bench {
namespace {

void BM_GroupSign(benchmark::State& state) {
  World& w = World::instance();
  crypto::Drbg rng = crypto::Drbg::from_string("e2");
  const auto& key = w.user->credential(w.gm.id());
  groupsig::OpCounters ops;
  for (auto _ : state) {
    ops.reset();
    auto sig = groupsig::sign(w.no.params().gpk, key, as_bytes("msg"), rng, 0,
                              &ops);
    benchmark::DoNotOptimize(sig);
  }
  state.counters["exponentiations"] = static_cast<double>(ops.total_exp());
  state.counters["pairings"] = static_cast<double>(ops.pairings);
  state.counters["paper_exp"] = 8;
  state.counters["paper_pairings"] = 2;
}
BENCHMARK(BM_GroupSign)->Unit(benchmark::kMillisecond);

void BM_GroupVerifyProof(benchmark::State& state) {
  World& w = World::instance();
  crypto::Drbg rng = crypto::Drbg::from_string("e3");
  const auto& key = w.user->credential(w.gm.id());
  const auto sig = groupsig::sign(w.no.params().gpk, key, as_bytes("msg"), rng);
  groupsig::OpCounters ops;
  for (auto _ : state) {
    ops.reset();
    bool ok = groupsig::verify_proof(w.no.params().gpk, as_bytes("msg"), sig,
                                     &ops);
    benchmark::DoNotOptimize(ok);
  }
  state.counters["exponentiations"] = static_cast<double>(ops.total_exp());
  state.counters["pairings"] = static_cast<double>(ops.pairings);
  state.counters["paper_exp"] = 6;
  state.counters["paper_pairings_no_url"] = 3;
}
BENCHMARK(BM_GroupVerifyProof)->Unit(benchmark::kMillisecond);

void BM_GroupVerifyProofPrepared(benchmark::State& state) {
  // Same check with the fixed G2 arguments (g2, w) prepared once outside
  // the loop — the router's steady-state configuration.
  World& w = World::instance();
  crypto::Drbg rng = crypto::Drbg::from_string("e3");
  const auto& key = w.user->credential(w.gm.id());
  const auto sig = groupsig::sign(w.no.params().gpk, key, as_bytes("msg"), rng);
  const groupsig::PreparedGroupPublicKey pgpk(w.no.params().gpk);
  groupsig::OpCounters ops;
  for (auto _ : state) {
    ops.reset();
    bool ok = groupsig::verify_proof(pgpk, as_bytes("msg"), sig, &ops);
    benchmark::DoNotOptimize(ok);
  }
  state.counters["exponentiations"] = static_cast<double>(ops.total_exp());
  state.counters["pairings"] = static_cast<double>(ops.pairings);
}
BENCHMARK(BM_GroupVerifyProofPrepared)->Unit(benchmark::kMillisecond);

void BM_VerifyPoolBatch(benchmark::State& state) {
  // Aggregate throughput of a 16-signature batch over the VerifyPool at
  // 1/2/4/8 threads. Accept/reject results are asserted identical to the
  // sequential prepared path every iteration.
  World& w = World::instance();
  crypto::Drbg rng = crypto::Drbg::from_string("e3-pool");
  const auto& key = w.user->credential(w.gm.id());
  constexpr std::size_t kBatch = 16;
  std::vector<groupsig::Signature> sigs;
  std::vector<bool> expected;
  for (std::size_t i = 0; i < kBatch; ++i) {
    auto sig = groupsig::sign(w.no.params().gpk, key, as_bytes("msg"), rng);
    if (i % 4 == 3) sig.c = sig.c + curve::Fr::one();  // corrupt every 4th
    expected.push_back(
        groupsig::verify_proof(w.no.params().gpk, as_bytes("msg"), sig));
    sigs.push_back(std::move(sig));
  }
  const groupsig::PreparedGroupPublicKey pgpk(w.no.params().gpk);
  proto::VerifyPool pool(static_cast<unsigned>(state.range(0)));
  std::vector<char> got(kBatch);
  for (auto _ : state) {
    pool.run(kBatch, [&](std::size_t i) {
      got[i] = groupsig::verify_proof(pgpk, as_bytes("msg"), sigs[i]);
    });
    for (std::size_t i = 0; i < kBatch; ++i)
      if (static_cast<bool>(got[i]) != expected[i])
        state.SkipWithError("pooled verify diverged from sequential");
    benchmark::DoNotOptimize(got);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kBatch));
  state.counters["threads"] = static_cast<double>(state.range(0));
  state.counters["sigs_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * static_cast<double>(kBatch),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_VerifyPoolBatch)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_GroupVerifyWithUrl(benchmark::State& state) {
  // Total verification cost as |URL| grows: pairings = base + 2|URL|.
  World& w = World::instance();
  crypto::Drbg rng = crypto::Drbg::from_string("e3-url", state.range(0));
  const auto& key = w.user->credential(w.gm.id());
  const auto sig = groupsig::sign(w.no.params().gpk, key, as_bytes("msg"), rng);
  std::vector<groupsig::RevocationToken> url;
  const auto issuer_view = groupsig::Issuer::create(rng);  // unrelated tokens
  for (int i = 0; i < state.range(0); ++i)
    url.push_back({issuer_view.issue(curve::random_fr(rng), rng).a});
  groupsig::OpCounters ops;
  for (auto _ : state) {
    ops.reset();
    bool ok =
        groupsig::verify(w.no.params().gpk, as_bytes("msg"), sig, url, &ops);
    benchmark::DoNotOptimize(ok);
  }
  state.counters["url_size"] = static_cast<double>(state.range(0));
  state.counters["pairings"] = static_cast<double>(ops.pairings);
  state.counters["paper_pairings"] =
      static_cast<double>(3 + 2 * state.range(0));
}
BENCHMARK(BM_GroupVerifyWithUrl)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_MemberKeyIssue(benchmark::State& state) {
  // Setup-side cost: one SDH tuple per member (NO's step 3).
  World& w = World::instance();
  crypto::Drbg rng = crypto::Drbg::from_string("e2-issue");
  const auto issuer = groupsig::Issuer::create(rng);
  const auto grp = issuer.new_group_secret(rng);
  for (auto _ : state) {
    auto key = issuer.issue(grp, rng);
    benchmark::DoNotOptimize(key);
  }
  (void)w;
}
BENCHMARK(BM_MemberKeyIssue)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace peace::bench

BENCHMARK_MAIN();
