// E2/E3 — "Computational Overhead" (paper Sec. V.C).
// Paper: signing = ~8 exponentiations + 2 pairings; verification =
// 6 exponentiations + (3 + 2|URL|) pairings. We measure wall-clock AND the
// instrumented operation counts (the Type-3 adaptation adds the T_hat
// carrier: one extra exponentiation per side; same-base pairings folded).
#include <chrono>
#include <string>
#include <string_view>
#include <vector>

#include "bench_common.hpp"

namespace peace::bench {
namespace {

void BM_GroupSign(benchmark::State& state) {
  World& w = World::instance();
  crypto::Drbg rng = crypto::Drbg::from_string("e2");
  const auto& key = w.user->credential(w.gm.id());
  groupsig::OpCounters ops;
  for (auto _ : state) {
    ops.reset();
    auto sig = groupsig::sign(w.no.params().gpk, key, as_bytes("msg"), rng, 0,
                              &ops);
    benchmark::DoNotOptimize(sig);
  }
  state.counters["exponentiations"] = static_cast<double>(ops.total_exp());
  state.counters["pairings"] = static_cast<double>(ops.pairings);
  state.counters["paper_exp"] = 8;
  state.counters["paper_pairings"] = 2;
}
BENCHMARK(BM_GroupSign)->Unit(benchmark::kMillisecond);

void BM_GroupVerifyProof(benchmark::State& state) {
  World& w = World::instance();
  crypto::Drbg rng = crypto::Drbg::from_string("e3");
  const auto& key = w.user->credential(w.gm.id());
  const auto sig = groupsig::sign(w.no.params().gpk, key, as_bytes("msg"), rng);
  groupsig::OpCounters ops;
  for (auto _ : state) {
    ops.reset();
    bool ok = groupsig::verify_proof(w.no.params().gpk, as_bytes("msg"), sig,
                                     &ops);
    benchmark::DoNotOptimize(ok);
  }
  state.counters["exponentiations"] = static_cast<double>(ops.total_exp());
  state.counters["pairings"] = static_cast<double>(ops.pairings);
  state.counters["paper_exp"] = 6;
  state.counters["paper_pairings_no_url"] = 3;
}
BENCHMARK(BM_GroupVerifyProof)->Unit(benchmark::kMillisecond);

void BM_GroupVerifyProofPrepared(benchmark::State& state) {
  // Same check with the fixed G2 arguments (g2, w) prepared once outside
  // the loop — the router's steady-state configuration.
  World& w = World::instance();
  crypto::Drbg rng = crypto::Drbg::from_string("e3");
  const auto& key = w.user->credential(w.gm.id());
  const auto sig = groupsig::sign(w.no.params().gpk, key, as_bytes("msg"), rng);
  const groupsig::PreparedGroupPublicKey pgpk(w.no.params().gpk);
  groupsig::OpCounters ops;
  for (auto _ : state) {
    ops.reset();
    bool ok = groupsig::verify_proof(pgpk, as_bytes("msg"), sig, &ops);
    benchmark::DoNotOptimize(ok);
  }
  state.counters["exponentiations"] = static_cast<double>(ops.total_exp());
  state.counters["pairings"] = static_cast<double>(ops.pairings);
}
BENCHMARK(BM_GroupVerifyProofPrepared)->Unit(benchmark::kMillisecond);

void BM_VerifyPoolBatch(benchmark::State& state) {
  // Aggregate throughput of a 16-signature batch over the VerifyPool at
  // 1/2/4/8 threads. Accept/reject results are asserted identical to the
  // sequential prepared path every iteration.
  World& w = World::instance();
  crypto::Drbg rng = crypto::Drbg::from_string("e3-pool");
  const auto& key = w.user->credential(w.gm.id());
  constexpr std::size_t kBatch = 16;
  std::vector<groupsig::Signature> sigs;
  std::vector<bool> expected;
  for (std::size_t i = 0; i < kBatch; ++i) {
    auto sig = groupsig::sign(w.no.params().gpk, key, as_bytes("msg"), rng);
    if (i % 4 == 3) sig.s_x = sig.s_x + curve::Fr::one();  // corrupt every 4th
    expected.push_back(
        groupsig::verify_proof(w.no.params().gpk, as_bytes("msg"), sig));
    sigs.push_back(std::move(sig));
  }
  const groupsig::PreparedGroupPublicKey pgpk(w.no.params().gpk);
  proto::VerifyPool pool(static_cast<unsigned>(state.range(0)));
  std::vector<char> got(kBatch);
  for (auto _ : state) {
    pool.run(kBatch, [&](std::size_t i) {
      got[i] = groupsig::verify_proof(pgpk, as_bytes("msg"), sigs[i]);
    });
    for (std::size_t i = 0; i < kBatch; ++i)
      if (static_cast<bool>(got[i]) != expected[i])
        state.SkipWithError("pooled verify diverged from sequential");
    benchmark::DoNotOptimize(got);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kBatch));
  state.counters["threads"] = static_cast<double>(state.range(0));
  state.counters["sigs_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * static_cast<double>(kBatch),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_VerifyPoolBatch)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_BatchVerify(benchmark::State& state) {
  // Randomized batch verification (docs/CRYPTO.md §4): batch sizes 1/4/16/64
  // in three regimes — all-good (one shared final exponentiation), one-bad
  // (bisection finds it), and k-bad (~N/4 corrupted, the bisection-heavy
  // regime). per_sig_ms is the figure to compare against
  // BM_GroupVerifyProofPrepared; speedup_vs_sequential is measured against a
  // sequential prepared verify of the same batch inside this run.
  World& w = World::instance();
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto bad = static_cast<std::size_t>(state.range(1));
  crypto::Drbg rng = crypto::Drbg::from_string(
      "e3-batch", static_cast<std::uint64_t>(state.range(0) * 1000 +
                                             state.range(1)));
  const auto& key = w.user->credential(w.gm.id());
  std::vector<Bytes> messages;
  std::vector<groupsig::Signature> sigs;
  for (std::size_t i = 0; i < n; ++i) {
    messages.push_back(to_bytes("batch-msg-" + std::to_string(i)));
    sigs.push_back(
        groupsig::sign(w.no.params().gpk, key, messages.back(), rng));
  }
  // Spread the `bad` corruptions evenly across the batch.
  for (std::size_t b = 0; b < bad && b < n; ++b) {
    const std::size_t i = b * n / bad;
    sigs[i].s_x = sigs[i].s_x + curve::Fr::one();
  }
  std::vector<groupsig::BatchItem> items(n);
  for (std::size_t i = 0; i < n; ++i) items[i] = {messages[i], &sigs[i]};
  const groupsig::PreparedGroupPublicKey pgpk(w.no.params().gpk);
  const Bytes salt = rng.bytes(32);

  // Sequential prepared reference: expected results plus the baseline
  // timing for the speedup counter, measured once outside the loop.
  std::vector<char> expected(n);
  const auto seq_start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < n; ++i)
    expected[i] = groupsig::verify_proof(pgpk, messages[i], sigs[i]);
  const double seq_ms = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - seq_start)
                            .count();

  const auto batch_start = std::chrono::steady_clock::now();
  std::size_t timed_runs = 0;
  for (auto _ : state) {
    const std::vector<char> got =
        groupsig::batch_verify_proof(pgpk, items, salt);
    if (got != expected)
      state.SkipWithError("batch verify diverged from sequential");
    benchmark::DoNotOptimize(got);
    ++timed_runs;
  }
  const double batch_ms = std::chrono::duration<double, std::milli>(
                              std::chrono::steady_clock::now() - batch_start)
                              .count() /
                          static_cast<double>(timed_runs == 0 ? 1 : timed_runs);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
  state.counters["batch_size"] = static_cast<double>(n);
  state.counters["bad_sigs"] = static_cast<double>(bad);
  state.counters["sequential_batch_ms"] = seq_ms;
  state.counters["batch_ms"] = batch_ms;
  if (batch_ms > 0)
    state.counters["speedup_vs_sequential"] = seq_ms / batch_ms;
  state.counters["per_sig_ms"] = batch_ms / static_cast<double>(n);
}
BENCHMARK(BM_BatchVerify)
    ->ArgsProduct({{1, 4, 16, 64}, {0}})
    ->Args({4, 1})
    ->Args({16, 1})
    ->Args({64, 1})
    ->Args({16, 4})
    ->Args({64, 16})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_GroupVerifyWithUrl(benchmark::State& state) {
  // Total verification cost as |URL| grows: pairings = base + 2|URL|.
  World& w = World::instance();
  crypto::Drbg rng = crypto::Drbg::from_string("e3-url", state.range(0));
  const auto& key = w.user->credential(w.gm.id());
  const auto sig = groupsig::sign(w.no.params().gpk, key, as_bytes("msg"), rng);
  std::vector<groupsig::RevocationToken> url;
  const auto issuer_view = groupsig::Issuer::create(rng);  // unrelated tokens
  for (int i = 0; i < state.range(0); ++i)
    url.push_back({issuer_view.issue(curve::random_fr(rng), rng).a});
  groupsig::OpCounters ops;
  for (auto _ : state) {
    ops.reset();
    bool ok =
        groupsig::verify(w.no.params().gpk, as_bytes("msg"), sig, url, &ops);
    benchmark::DoNotOptimize(ok);
  }
  state.counters["url_size"] = static_cast<double>(state.range(0));
  state.counters["pairings"] = static_cast<double>(ops.pairings);
  state.counters["paper_pairings"] =
      static_cast<double>(3 + 2 * state.range(0));
}
BENCHMARK(BM_GroupVerifyWithUrl)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_MemberKeyIssue(benchmark::State& state) {
  // Setup-side cost: one SDH tuple per member (NO's step 3).
  World& w = World::instance();
  crypto::Drbg rng = crypto::Drbg::from_string("e2-issue");
  const auto issuer = groupsig::Issuer::create(rng);
  const auto grp = issuer.new_group_secret(rng);
  for (auto _ : state) {
    auto key = issuer.issue(grp, rng);
    benchmark::DoNotOptimize(key);
  }
  (void)w;
}
BENCHMARK(BM_MemberKeyIssue)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace peace::bench

// BENCHMARK_MAIN, plus a default JSON report (BENCH_batch_verify.json in
// the working directory) when the caller didn't pick an output file — the
// E2/E3 cost tables and the batch-verification speedup gate read it.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  std::string out_flag = "--benchmark_out=BENCH_batch_verify.json";
  std::string fmt_flag = "--benchmark_out_format=json";
  bool has_out = false;
  for (int i = 1; i < argc; ++i)
    has_out |= std::string_view(argv[i]).starts_with("--benchmark_out=");
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data()))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
