// E10 — network-scale behaviour (paper Sec. V.C: "a mesh router [performs]
// mutual authentication with every network user within its coverage for
// each different session"): router load vs population, and multihop relay
// cost vs chain depth, on the discrete-event WMN substrate.
#include <benchmark/benchmark.h>

#include "mesh/metro_scenario.hpp"
#include "mesh/network.hpp"

namespace peace::mesh {
namespace {

constexpr proto::Timestamp kFarFuture = 1000ull * 86400 * 365;

struct ScaleWorld {
  // Curve init must precede the member initializers below, which already
  // do curve arithmetic.
  bool curve_ready = (curve::Bn254::init(), true);

  ScaleWorld()
      : no(crypto::Drbg::from_string("e10-no")),
        gm(no.register_group("metro", 512, ttp)) {}
  static ScaleWorld& get() {
    static ScaleWorld w;
    return w;
  }
  std::unique_ptr<proto::User> make_user(const std::string& uid) {
    auto user = std::make_unique<proto::User>(
        uid, no.params(), crypto::Drbg::from_string("e10-" + uid));
    user->complete_enrollment(gm.enroll(uid, ttp));
    return user;
  }
  proto::NetworkOperator no;
  proto::TrustedThirdParty ttp;
  proto::GroupManager gm;
  std::uint64_t uid_counter = 0;
};

void BM_RouterAuthLoad(benchmark::State& state) {
  // One router, N users in coverage, one beacon round: total router work
  // to authenticate the whole population.
  ScaleWorld& w = ScaleWorld::get();
  const int n_users = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    Simulator sim;
    MeshNetwork net(sim, crypto::Drbg::from_string("e10-net"));
    const NodeId r = net.add_router({0, 0}, w.no, kFarFuture);
    for (int i = 0; i < n_users; ++i) {
      std::string uid = "u";
      uid += std::to_string(w.uid_counter++);
      net.add_user({10.0 + i, 0}, w.make_user(uid));
    }
    state.ResumeTiming();

    net.start_beaconing(100, 1000, 1100);
    sim.run_until(5000);

    state.PauseTiming();
    std::size_t connected = 0;
    for (const NodeId u : net.user_ids())
      if (net.is_connected(u)) ++connected;
    state.counters["connected"] = static_cast<double>(connected);
    state.counters["router_sig_verifies"] =
        static_cast<double>(net.router(r).stats().signature_verifications);
    state.ResumeTiming();
  }
  state.counters["users"] = static_cast<double>(n_users);
}
BENCHMARK(BM_RouterAuthLoad)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

void BM_MultihopRelay(benchmark::State& state) {
  // Data delivery cost vs relay-chain depth (users spaced 70 m apart with
  // an 80 m data radio; the router 250 m coverage authenticates them all).
  ScaleWorld& w = ScaleWorld::get();
  const int depth = static_cast<int>(state.range(0));
  Simulator sim;
  MeshNetwork net(sim, crypto::Drbg::from_string("e10-hop"),
                  RadioConfig{.router_range = 1000.0, .user_range = 80.0, .loss_probability = 0.0, .latency_ms = 2});
  net.add_router({0, 0}, w.no, kFarFuture);
  std::vector<NodeId> chain;
  for (int i = 0; i <= depth; ++i) {
    chain.push_back(net.add_user(
        {70.0 * (i + 1), 0},
        w.make_user(std::string("hop") + std::to_string(w.uid_counter++))));
  }
  net.start_beaconing(100, 1000, 1100);
  sim.run_until(3000);
  net.establish_peer_links();
  sim.run_until(4000);

  const NodeId tail = chain.back();
  std::size_t delivered = 0;
  for (auto _ : state) {
    if (net.send_data(tail, as_bytes("payload through the mesh")))
      ++delivered;
  }
  state.counters["chain_depth"] = static_cast<double>(depth);
  state.counters["delivered"] = static_cast<double>(delivered);
  state.counters["avg_hops"] =
      static_cast<double>(net.stats().relay_hops_total) /
      std::max<double>(1.0, static_cast<double>(net.stats().data_delivered));
}
BENCHMARK(BM_MultihopRelay)->Arg(0)->Arg(1)->Arg(2)->Arg(4);

void BM_PeerLinkEstablishment(benchmark::State& state) {
  // Cost of pairwise user-user mutual authentication in a cluster of N
  // users (every pair within radio range): N(N-1)/2 three-way handshakes.
  ScaleWorld& w = ScaleWorld::get();
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    Simulator sim;
    MeshNetwork net(sim, crypto::Drbg::from_string("e10-peers"));
    for (int i = 0; i < n; ++i) {
      std::string uid = "p";
      uid += std::to_string(w.uid_counter++);
      net.add_user({static_cast<double>(i), 0}, w.make_user(uid));
    }
    state.ResumeTiming();
    net.establish_peer_links();
    sim.run_all();
  }
  state.counters["users"] = static_cast<double>(n);
  state.counters["handshakes"] = static_cast<double>(n * (n - 1) / 2);
}
BENCHMARK(BM_PeerLinkEstablishment)
    ->Arg(2)
    ->Arg(3)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

void BM_MetroCityThroughput(benchmark::State& state) {
  // The sharded engine's headline metric: users × simulated seconds
  // advanced per wall-clock second, over one simulated hour of the
  // metro_city scenario (hybrid population: a small real-crypto cohort
  // plus N synthetic background users; see mesh/metro_scenario.hpp).
  curve::Bn254::init();
  const auto users = static_cast<std::uint64_t>(state.range(0));
  MetroCityReport report;
  for (auto _ : state) {
    MetroCityConfig config;
    config.shards = 8;
    config.cohort_users = 8;
    config.synthetic_users = users - config.cohort_users;
    config.day_ms = 3'600'000;  // one simulated hour (rate metric)
    config.revocation_waves = 2;
    config.seed = "bench-metro-" + std::to_string(users);
    report = run_metro_city(config);
  }
  state.counters["users"] = static_cast<double>(report.total_users);
  state.counters["sim_seconds"] =
      static_cast<double>(report.sim_ms) / 1000.0;
  state.counters["events"] = static_cast<double>(report.events);
  state.counters["cohort_connected"] =
      static_cast<double>(report.cohort_connected);
  state.counters["msgs_routed"] = static_cast<double>(report.metro.msgs_routed);
  state.counters["users_sim_s_per_wall_s"] =
      report.users_sim_seconds_per_wall_second;
}
BENCHMARK(BM_MetroCityThroughput)
    ->Arg(1'000)
    ->Arg(10'000)
    ->Arg(100'000)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace
}  // namespace peace::mesh

// BENCHMARK_MAIN, plus a default JSON report (BENCH_mesh_scale.json in the
// working directory) when the caller didn't pick an output file.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  std::string out_flag = "--benchmark_out=BENCH_mesh_scale.json";
  std::string fmt_flag = "--benchmark_out_format=json";
  bool has_out = false;
  for (int i = 1; i < argc; ++i)
    has_out |= std::string_view(argv[i]).starts_with("--benchmark_out=");
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data()))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
