// E7 — audit cost (paper Sec. IV.D): NO scans grt with Eq.3 (2 pairings
// per token) until the responsible credential is found. Cost is linear in
// the scan position; worst case = |grt|.
#include "bench_common.hpp"

namespace peace::bench {
namespace {

struct AuditWorld {
  explicit AuditWorld(int grt_size)
      : no(crypto::Drbg::from_string("e7-no")),
        gm(no.register_group("e7-group", static_cast<std::size_t>(grt_size),
                             ttp)) {
    auto provision = no.provision_router(1, ~proto::Timestamp{0});
    router = std::make_unique<proto::MeshRouter>(
        1, provision.keypair, provision.certificate, no.params(),
        crypto::Drbg::from_string("e7-router"));
    router->install_revocation_lists(no.current_crl(), no.current_url());
    // The enrollment order is LIFO over issued keys, so the first enrollee
    // gets the LAST issued key => NO's audit scan hits it late (near-worst
    // case for the scan).
    user = std::make_unique<proto::User>("suspect", no.params(),
                                         crypto::Drbg::from_string("e7-u"));
    user->complete_enrollment(gm.enroll("suspect", ttp));
  }

  proto::AccessRequest logged_session() {
    const auto beacon = router->make_beacon(1000);
    auto m2 = user->process_beacon(beacon, 1000);
    return *m2;
  }

  proto::NetworkOperator no;
  proto::TrustedThirdParty ttp;
  proto::GroupManager gm;
  std::unique_ptr<proto::MeshRouter> router;
  std::unique_ptr<proto::User> user;
};

void BM_NoAuditScan(benchmark::State& state) {
  curve::Bn254::init();
  AuditWorld world(static_cast<int>(state.range(0)));
  const auto m2 = world.logged_session();
  std::size_t scanned = 0;
  for (auto _ : state) {
    auto result = world.no.audit(m2);
    benchmark::DoNotOptimize(result);
    scanned = result->tokens_scanned;
  }
  state.counters["grt_size"] = static_cast<double>(state.range(0));
  state.counters["tokens_scanned"] = static_cast<double>(scanned);
  state.counters["pairings_paper"] = 2.0 * static_cast<double>(scanned);
}
BENCHMARK(BM_NoAuditScan)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Unit(benchmark::kMillisecond);

void BM_LawAuthorityTrace(benchmark::State& state) {
  // Full deanonymization: NO audit + GM lookup. The GM lookup is a map
  // probe — the trace cost is the audit cost.
  curve::Bn254::init();
  AuditWorld world(8);
  const auto m2 = world.logged_session();
  for (auto _ : state) {
    auto traced = proto::LawAuthority::trace(world.no, {&world.gm}, m2);
    benchmark::DoNotOptimize(traced);
  }
}
BENCHMARK(BM_LawAuthorityTrace)->Unit(benchmark::kMillisecond);

void BM_SingleTokenCheck(benchmark::State& state) {
  // The Eq.3 primitive in isolation: exactly 2 pairings.
  curve::Bn254::init();
  AuditWorld world(2);
  const auto m2 = world.logged_session();
  const auto& key = world.user->credential(world.gm.id());
  groupsig::OpCounters ops;
  for (auto _ : state) {
    ops.reset();
    bool hit = groupsig::matches_token(world.no.params().gpk,
                                       m2.signed_payload(), m2.signature,
                                       {key.a}, &ops);
    benchmark::DoNotOptimize(hit);
  }
  state.counters["pairings"] = static_cast<double>(ops.pairings);
}
BENCHMARK(BM_SingleTokenCheck)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace peace::bench

BENCHMARK_MAIN();
