// Handshake convergence under radio loss: how long (virtual time) and how
// many frames it takes the reliability layer (PROTOCOL.md §10) to get every
// user of a segment into an authenticated session at 0%, 10%, and 30% loss.
// Wall time measures the simulation itself; the interesting outputs are the
// per-run counters (sim_ms_to_converge, frames, retransmissions).
#include <benchmark/benchmark.h>

#include <string>
#include <string_view>
#include <vector>

#include "mesh/network.hpp"

namespace peace::bench {
namespace {

constexpr proto::Timestamp kFarFuture = 1000ull * 86400 * 365;
constexpr mesh::SimTime kDeadline = 120'000;

struct Segment {
  explicit Segment(const std::string& seed)
      : no(crypto::Drbg::from_string(seed + "-no")),
        gm(no.register_group("bench", 8, ttp)),
        net(sim, crypto::Drbg::from_string(seed + "-net"), mesh::RadioConfig{},
            [] {
              proto::ProtocolConfig config;
              config.idempotent_resend = true;
              config.replay_window_ms = 60'000;
              return config;
            }()) {
    net.add_router({0, 0}, no, kFarFuture);
    net.add_router({300, 0}, no, kFarFuture);
    for (int i = 0; i < 6; ++i) {
      auto user = std::make_unique<proto::User>(
          "u" + std::to_string(i), no.params(),
          crypto::Drbg::from_string(seed + "-u" + std::to_string(i)));
      user->complete_enrollment(gm.enroll(user->uid(), ttp));
      users.push_back(net.add_user({40.0 + 40.0 * i, (i % 2) ? 15.0 : -15.0},
                                   std::move(user)));
    }
  }

  bool all_connected() const {
    for (const mesh::NodeId u : users)
      if (!net.is_connected(u)) return false;
    return true;
  }

  proto::NetworkOperator no;
  proto::TrustedThirdParty ttp;
  proto::GroupManager gm;
  mesh::Simulator sim;
  mesh::MeshNetwork net;
  std::vector<mesh::NodeId> users;
};

void BM_HandshakeConvergence(benchmark::State& state) {
  curve::Bn254::init();
  const int loss_percent = static_cast<int>(state.range(0));
  std::uint64_t sim_ms = 0, frames = 0, retransmissions = 0, converged = 0;
  std::uint64_t runs = 0;
  for (auto _ : state) {
    state.PauseTiming();  // the crypto world setup is not the handshake
    Segment seg("bench-rel-" + std::to_string(loss_percent) + "-" +
                std::to_string(runs));
    mesh::FaultPlan plan;
    plan.loss_good = loss_percent / 100.0;
    seg.net.set_fault_plan(plan);
    state.ResumeTiming();

    seg.net.start_beaconing(100, 1000, kDeadline);
    while (!seg.all_connected() && seg.sim.now() < kDeadline)
      seg.sim.run_until(seg.sim.now() + 500);

    ++runs;
    sim_ms += seg.sim.now();
    frames += seg.net.stats().frames_transmitted;
    retransmissions += seg.net.stats().retransmissions;
    converged += seg.all_connected() ? 1 : 0;
  }
  const double n = static_cast<double>(runs);
  state.counters["loss_pct"] = loss_percent;
  state.counters["sim_ms_to_converge"] = static_cast<double>(sim_ms) / n;
  state.counters["frames"] = static_cast<double>(frames) / n;
  state.counters["retransmissions"] = static_cast<double>(retransmissions) / n;
  state.counters["converged_ratio"] = static_cast<double>(converged) / n;
}
BENCHMARK(BM_HandshakeConvergence)
    ->Arg(0)
    ->Arg(10)
    ->Arg(30)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace peace::bench

// BENCHMARK_MAIN, plus a default JSON report (BENCH_reliability.json in the
// working directory) when the caller didn't pick an output file.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  std::string out_flag = "--benchmark_out=BENCH_reliability.json";
  std::string fmt_flag = "--benchmark_out_format=json";
  bool has_out = false;
  for (int i = 1; i < argc; ++i)
    has_out |= std::string_view(argv[i]).starts_with("--benchmark_out=");
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data()))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
