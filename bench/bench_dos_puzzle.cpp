// E8 — DoS resilience via client puzzles (paper Sec. V.A): router work per
// bogus request with the defence off vs on, attacker cost per request as
// difficulty grows, and the legitimate user's added latency.
#include "bench_common.hpp"

#include "mesh/adversary.hpp"

namespace peace::bench {
namespace {

void BM_RouterWorkPerBogusRequest_NoDefense(benchmark::State& state) {
  World& w = World::instance();
  mesh::BogusInjector attacker(crypto::Drbg::from_string("e8-a"));
  w.router->set_under_attack(false);
  const auto beacon = w.router->make_beacon(1'000'000);
  for (auto _ : state) {
    auto m2 = attacker.forge_request(beacon, 1'000'001);
    auto outcome = w.router->handle_access_request(m2, 1'000'001);
    benchmark::DoNotOptimize(outcome);
  }
  state.counters["router_does_pairing_work"] = 1;
}
BENCHMARK(BM_RouterWorkPerBogusRequest_NoDefense)
    ->Unit(benchmark::kMillisecond);

void BM_RouterWorkPerBogusRequest_PuzzleOn(benchmark::State& state) {
  // With the puzzle gate the router's cost per unsolved bogus request is
  // one hash — the pairing machinery is never reached.
  World& w = World::instance();
  mesh::BogusInjector attacker(crypto::Drbg::from_string("e8-b"));
  w.router->set_under_attack(true, 16);
  const auto beacon = w.router->make_beacon(2'000'000);
  for (auto _ : state) {
    auto m2 = attacker.forge_request(beacon, 2'000'001);  // no solution
    auto outcome = w.router->handle_access_request(m2, 2'000'001);
    benchmark::DoNotOptimize(outcome);
  }
  w.router->set_under_attack(false);
  state.counters["router_does_pairing_work"] = 0;
}
BENCHMARK(BM_RouterWorkPerBogusRequest_PuzzleOn);

void BM_AttackerCostPerRequest(benchmark::State& state) {
  // Brute-force cost the attacker must pay per request at difficulty d —
  // the asymmetry that throttles the flood (expected 2^d hashes).
  const auto difficulty = static_cast<std::uint8_t>(state.range(0));
  crypto::Drbg rng = crypto::Drbg::from_string("e8-c", state.range(0));
  std::uint64_t n = 0;
  for (auto _ : state) {
    const auto challenge =
        proto::make_puzzle(rng.bytes(16), difficulty);
    auto solution = proto::solve_puzzle(challenge, as_bytes("binding"));
    benchmark::DoNotOptimize(solution);
    ++n;
  }
  state.counters["difficulty_bits"] = static_cast<double>(state.range(0));
  state.counters["expected_hashes"] =
      proto::puzzle_expected_work(difficulty);
}
BENCHMARK(BM_AttackerCostPerRequest)
    ->Arg(0)
    ->Arg(4)
    ->Arg(8)
    ->Arg(12)
    ->Arg(16);

void BM_LegitimateUserUnderAttack(benchmark::State& state) {
  // The paper's claim: legitimate users "are still able to obtain network
  // accesses regardless the existence of the attack", at a small extra
  // cost. Full handshake with the defence enabled.
  World& w = World::instance();
  w.router->set_under_attack(true, static_cast<std::uint8_t>(state.range(0)));
  proto::Timestamp now = 3'000'000;
  std::size_t ok = 0;
  for (auto _ : state) {
    now += 10'000;
    const auto beacon = w.router->make_beacon(now);
    auto m2 = w.user->process_beacon(beacon, now);
    auto outcome = w.router->handle_access_request(*m2, now + 1);
    if (outcome.has_value()) ++ok;
    benchmark::DoNotOptimize(outcome);
  }
  w.router->set_under_attack(false);
  state.counters["difficulty_bits"] = static_cast<double>(state.range(0));
  state.counters["success_rate"] =
      static_cast<double>(ok) / static_cast<double>(state.iterations());
}
BENCHMARK(BM_LegitimateUserUnderAttack)
    ->Arg(0)
    ->Arg(8)
    ->Arg(12)
    ->Unit(benchmark::kMillisecond);

void BM_PuzzleVerification(benchmark::State& state) {
  // The router-side check is O(1) — one hash regardless of difficulty.
  crypto::Drbg rng = crypto::Drbg::from_string("e8-v");
  const auto challenge = proto::make_puzzle(rng.bytes(16), 12);
  const auto solution = proto::solve_puzzle(challenge, as_bytes("b"));
  for (auto _ : state) {
    bool ok = proto::verify_puzzle(challenge, solution, as_bytes("b"));
    benchmark::DoNotOptimize(ok);
  }
}
BENCHMARK(BM_PuzzleVerification);

}  // namespace
}  // namespace peace::bench

BENCHMARK_MAIN();
