// E6 — the asymmetric-symmetric hybrid (paper Sec. V.C): group signatures
// only at session establishment, MAC/AEAD per message afterwards. This
// bench shows the orders-of-magnitude gap that justifies the design, by
// comparing the hybrid per-message path against signing every message.
#include "bench_common.hpp"

namespace peace::bench {
namespace {

proto::Session make_session(const char* seed) {
  crypto::Drbg rng = crypto::Drbg::from_string(seed);
  const auto shared = curve::Bn254::get().g1_gen * curve::random_fr(rng);
  return proto::Session::establish(shared, as_bytes("bench-session"),
                                   proto::Session::Role::kInitiator);
}

void BM_HybridAeadPerMessage(benchmark::State& state) {
  curve::Bn254::init();
  proto::Session session = make_session("e6-aead");
  const Bytes payload(static_cast<std::size_t>(state.range(0)), 0x5a);
  std::size_t bytes = 0;
  for (auto _ : state) {
    auto frame = session.seal(payload);
    benchmark::DoNotOptimize(frame);
    bytes += payload.size();
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
  state.counters["payload_bytes"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_HybridAeadPerMessage)->Arg(64)->Arg(512)->Arg(1500);

void BM_HybridMacPerMessage(benchmark::State& state) {
  curve::Bn254::init();
  proto::Session session = make_session("e6-mac");
  const Bytes payload(static_cast<std::size_t>(state.range(0)), 0x5a);
  std::size_t bytes = 0;
  for (auto _ : state) {
    auto tag = session.mac(payload);
    benchmark::DoNotOptimize(tag);
    bytes += payload.size();
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_HybridMacPerMessage)->Arg(64)->Arg(512)->Arg(1500);

void BM_HybridAesGcmPerMessage(benchmark::State& state) {
  // Suite ablation: AES-128-GCM (bitwise GHASH, portable) vs the default
  // ChaCha20-Poly1305 path above.
  curve::Bn254::init();
  crypto::Drbg rng = crypto::Drbg::from_string("e6-gcm");
  const auto shared = curve::Bn254::get().g1_gen * curve::random_fr(rng);
  proto::Session session =
      proto::Session::establish(shared, as_bytes("bench-session"),
                                proto::Session::Role::kInitiator,
                                proto::Session::CipherSuite::kAes128Gcm);
  const Bytes payload(static_cast<std::size_t>(state.range(0)), 0x5a);
  std::size_t bytes = 0;
  for (auto _ : state) {
    auto frame = session.seal(payload);
    benchmark::DoNotOptimize(frame);
    bytes += payload.size();
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_HybridAesGcmPerMessage)->Arg(64)->Arg(1500);

void BM_GroupSigPerMessage(benchmark::State& state) {
  // The design PEACE avoids: a group signature on every data message.
  World& w = World::instance();
  crypto::Drbg rng = crypto::Drbg::from_string("e6-gs");
  const auto& key = w.user->credential(w.gm.id());
  const Bytes payload(static_cast<std::size_t>(state.range(0)), 0x5a);
  std::size_t bytes = 0;
  for (auto _ : state) {
    auto sig = groupsig::sign(w.no.params().gpk, key, payload, rng);
    benchmark::DoNotOptimize(sig);
    bytes += payload.size();
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_GroupSigPerMessage)->Arg(1500)->Unit(benchmark::kMillisecond);

void BM_SessionRoundTrip(benchmark::State& state) {
  // Seal + open, both directions, as the protocol actually runs.
  curve::Bn254::init();
  crypto::Drbg rng = crypto::Drbg::from_string("e6-rt");
  const auto shared = curve::Bn254::get().g1_gen * curve::random_fr(rng);
  auto a = proto::Session::establish(shared, as_bytes("s"),
                                     proto::Session::Role::kInitiator);
  auto b = proto::Session::establish(shared, as_bytes("s"),
                                     proto::Session::Role::kResponder);
  const Bytes payload(1024, 0x11);
  for (auto _ : state) {
    auto frame = a.seal(payload);
    auto got = b.open(frame);
    benchmark::DoNotOptimize(got);
  }
}
BENCHMARK(BM_SessionRoundTrip);

void BM_SessionEstablishFromDh(benchmark::State& state) {
  // Key-schedule cost alone (HKDF): amortized once per session.
  curve::Bn254::init();
  crypto::Drbg rng = crypto::Drbg::from_string("e6-est");
  const auto shared = curve::Bn254::get().g1_gen * curve::random_fr(rng);
  for (auto _ : state) {
    auto s = proto::Session::establish(shared, as_bytes("sid"),
                                       proto::Session::Role::kInitiator);
    benchmark::DoNotOptimize(s);
  }
}
BENCHMARK(BM_SessionEstablishFromDh);

}  // namespace
}  // namespace peace::bench

BENCHMARK_MAIN();
