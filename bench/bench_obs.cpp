// Telemetry overhead (docs/OBSERVABILITY.md §6): the full user-router
// handshake hot path with tracing disabled vs enabled, plus the raw cost
// of the primitives the layer adds to hot code (a crypto-op hook, a span,
// a histogram record). The acceptance bar is <3% on the handshake path
// with tracing enabled and zero added work when PEACE_OBS=OFF compiles
// spans out; BENCH_obs.json carries the numbers for CI.
#include "bench_common.hpp"

#include "obs/health.hpp"
#include "obs/sec_event.hpp"
#include "obs/trace.hpp"

namespace peace::bench {
namespace {

/// One full M.1 -> M.2 -> M.3 handshake over serialized messages — the same
/// loop as bench_auth_protocol's E5, parameterized on the runtime telemetry
/// toggle so the two states are directly comparable from one binary.
void BM_HandshakeObs(benchmark::State& state) {
  World& w = World::instance();
  const bool on = state.range(0) != 0;
  obs::enable(on);
  proto::Timestamp now = 10'000;
  for (auto _ : state) {
    now += 10'000;
    const auto beacon = w.router->make_beacon(now);
    auto m2 = w.user->process_beacon(
        proto::BeaconMessage::from_bytes(beacon.to_bytes()), now);
    auto outcome = w.router->handle_access_request(
        proto::AccessRequest::from_bytes(m2->to_bytes()), now + 1);
    auto session = w.user->process_access_confirm(
        proto::AccessConfirm::from_bytes(outcome->confirm.to_bytes()));
    benchmark::DoNotOptimize(session);
  }
  obs::enable(false);
  obs::Tracer::global().clear();  // don't let event storage grow run-to-run
  state.counters["obs_enabled"] = on ? 1 : 0;
}
BENCHMARK(BM_HandshakeObs)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond)
    ->Name("BM_Handshake/obs");

/// The per-operation cost of a crypto-op hook: one relaxed atomic add when
/// tracing is off (identical to the pre-registry bare global), plus a
/// thread-local tally bump when on.
void BM_OpHook(benchmark::State& state) {
  obs::enable(state.range(0) != 0);
  for (auto _ : state) obs::note_pairing();
  obs::enable(false);
}
BENCHMARK(BM_OpHook)->Arg(0)->Arg(1)->Name("BM_OpHook/obs");

/// Span construction + close. Disabled: one atomic load and a branch.
/// Enabled: two clock reads, a tally diff, and a mutex-guarded vector push.
void BM_Span(benchmark::State& state) {
  obs::enable(state.range(0) != 0);
  for (auto _ : state) {
    obs::Span span("bench.span", "bench");
    benchmark::DoNotOptimize(span.active());
  }
  obs::enable(false);
  obs::Tracer::global().clear();
}
BENCHMARK(BM_Span)->Arg(0)->Arg(1)->Name("BM_Span/obs");

/// sec_emit — the security-event stream's hot-path cost. Disabled: one
/// relaxed atomic add (the always-on per-kind counter). Enabled: the add
/// plus a fixed-size record pushed onto the thread's SPSC ring.
void BM_SecEmit(benchmark::State& state) {
  obs::enable(state.range(0) != 0);
  std::uint64_t t = 0;
  for (auto _ : state) {
    obs::sec_emit(obs::SecEventKind::kAuthReject, ++t, 7, 2);
    // Keep the ring from saturating into the shed path mid-measurement
    // (and the tracer's in-memory event store from growing with it).
    if ((t & 2047) == 0) {
      obs::drain_sec_events();
      obs::Tracer::global().clear();
    }
  }
  obs::enable(false);
  obs::drain_sec_events();
  obs::Tracer::global().clear();
}
BENCHMARK(BM_SecEmit)->Arg(0)->Arg(1)->Name("BM_SecEmit/obs");

/// Drain + HealthMonitor ingest + evaluation for one barrier's worth of
/// events — the per-tick cost the metro driver pays with --health on.
void BM_HealthBarrier(benchmark::State& state) {
  obs::enable(true);
  const std::uint64_t burst = static_cast<std::uint64_t>(state.range(0));
  obs::HealthMonitor monitor;
  std::uint64_t sim_ms = 0;
  std::vector<obs::SecEvent> drained;
  for (auto _ : state) {
    sim_ms += 500;
    for (std::uint64_t i = 0; i < burst; ++i)
      obs::sec_emit_for_shard(obs::SecEventKind::kAuthReject,
                              static_cast<std::uint32_t>(i & 7), sim_ms, i);
    drained.clear();
    obs::drain_sec_events(&drained);
    obs::Tracer::global().clear();
    for (const obs::SecEvent& e : drained) monitor.ingest(e);
    monitor.tick(sim_ms);
  }
  obs::enable(false);
  obs::Tracer::global().clear();
  state.counters["events_per_tick"] = static_cast<double>(burst);
  state.counters["alerts"] = static_cast<double>(monitor.alerts_total());
}
BENCHMARK(BM_HealthBarrier)
    ->Arg(16)
    ->Arg(256)
    ->Unit(benchmark::kMicrosecond)
    ->Name("BM_HealthBarrier/events");

/// Histogram::record — two relaxed atomic adds, the full hot-path cost of
/// a latency sample.
void BM_HistogramRecord(benchmark::State& state) {
  obs::Histogram hist;
  std::uint64_t v = 1;
  for (auto _ : state) {
    hist.record(v);
    v = (v * 33) % 100'000;
  }
  benchmark::DoNotOptimize(hist.count());
}
BENCHMARK(BM_HistogramRecord);

}  // namespace
}  // namespace peace::bench

// BENCHMARK_MAIN, plus a default JSON report (BENCH_obs.json in the working
// directory) when the caller didn't pick an output file.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  std::string out_flag = "--benchmark_out=BENCH_obs.json";
  std::string fmt_flag = "--benchmark_out_format=json";
  bool has_out = false;
  for (int i = 1; i < argc; ++i)
    has_out |= std::string_view(argv[i]).starts_with("--benchmark_out=");
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data()))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
