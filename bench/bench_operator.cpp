// Operator key-issuance throughput (docs/ARCHITECTURE.md §8): members
// provisioned per second, end-to-end — SDH key issuance (amortized over
// 64-key batches), enrollment, the user's receipt signature, and the
// durable WAL append — measured with per-record fsync, with syncs
// batched, and against the in-memory operator as the no-durability
// baseline. Emits BENCH_operator.json for the CI bench artifacts.
#include <benchmark/benchmark.h>

#include <filesystem>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "peace/persist/control.hpp"
#include "peace/user.hpp"

namespace peace::bench {
namespace {

constexpr std::size_t kBatch = 64;

std::string scratch_dir(const std::string& name) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / ("peace-bench-" + name))
          .string();
  std::filesystem::remove_all(dir);
  return dir;
}

// One member, end-to-end: consume a key (reissuing a 64-key batch when the
// group runs dry), enroll, and archive the signed receipt.
void provision_member(persist::ControlPlane& cp, proto::GroupId gid,
                      std::uint64_t n) {
  if (cp.gm(gid).keys_remaining() == 0) cp.reissue_group(gid, kBatch);
  const std::string uid = "member-" + std::to_string(n);
  const auto enrollment = cp.enroll(gid, uid);
  proto::User user(uid, cp.no().params(),
                   crypto::Drbg::from_string("seed-" + uid));
  cp.record_receipt(enrollment, user.receipt_public_key(),
                    user.complete_enrollment(enrollment));
}

void run_durable(benchmark::State& state, bool sync_each_append,
                 const std::string& name) {
  curve::Bn254::init();
  const std::string dir = scratch_dir(name);
  persist::ControlPlaneOptions opts;
  opts.store.sync_each_append = sync_each_append;
  opts.snapshot_every = 1024;
  auto cp = persist::ControlPlane::create(
      dir, crypto::Drbg::from_string("bench-" + name), opts);
  const auto gid = cp.register_group("bench-riders", kBatch);
  std::uint64_t n = 0;
  for (auto _ : state) provision_member(cp, gid, n++);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["members_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
  state.counters["wal_records"] = static_cast<double>(cp.last_seq());
  std::filesystem::remove_all(dir);
}

void BM_MemberProvisionDurable(benchmark::State& state) {
  run_durable(state, /*sync_each_append=*/true, "durable");
}
BENCHMARK(BM_MemberProvisionDurable)->Unit(benchmark::kMillisecond);

void BM_MemberProvisionDurableNoSync(benchmark::State& state) {
  run_durable(state, /*sync_each_append=*/false, "nosync");
}
BENCHMARK(BM_MemberProvisionDurableNoSync)->Unit(benchmark::kMillisecond);

void BM_MemberProvisionInMemory(benchmark::State& state) {
  // The pre-§8 operator: same ceremony, no log — the durability overhead
  // baseline.
  curve::Bn254::init();
  proto::NetworkOperator no(crypto::Drbg::from_string("bench-mem"));
  proto::TrustedThirdParty ttp;
  proto::GroupManager gm = no.register_group("bench-riders", kBatch, ttp);
  std::uint64_t n = 0;
  for (auto _ : state) {
    if (gm.keys_remaining() == 0) no.reissue_group(gm, kBatch, ttp);
    const std::string uid = "member-" + std::to_string(n++);
    const auto enrollment = gm.enroll(uid, ttp);
    proto::User user(uid, no.params(), crypto::Drbg::from_string("seed-" + uid));
    gm.record_receipt(enrollment, user.receipt_public_key(),
                      user.complete_enrollment(enrollment));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["members_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_MemberProvisionInMemory)->Unit(benchmark::kMillisecond);

void BM_OperatorRecover(benchmark::State& state) {
  // Restart cost for a site with `range` members on the books: newest
  // snapshot + chain-verified tail replay.
  curve::Bn254::init();
  const std::string dir = scratch_dir("recover");
  persist::ControlPlaneOptions opts;
  opts.snapshot_every = 64;
  {
    auto cp = persist::ControlPlane::create(
        dir, crypto::Drbg::from_string("bench-recover"), opts);
    const auto gid = cp.register_group("bench-riders", kBatch);
    for (std::uint64_t n = 0;
         n < static_cast<std::uint64_t>(state.range(0)); ++n)
      provision_member(cp, gid, n);
  }
  for (auto _ : state) {
    auto cp = persist::ControlPlane::recover(dir, opts);
    benchmark::DoNotOptimize(cp.last_seq());
  }
  state.counters["members"] = static_cast<double>(state.range(0));
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_OperatorRecover)->Arg(32)->Arg(128)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace peace::bench

// BENCHMARK_MAIN, plus a default JSON report (BENCH_operator.json in the
// working directory) when the caller didn't pick an output file.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  std::string out_flag = "--benchmark_out=BENCH_operator.json";
  std::string fmt_flag = "--benchmark_out_format=json";
  bool has_out = false;
  for (int i = 1; i < argc; ++i)
    has_out |= std::string_view(argv[i]).starts_with("--benchmark_out=");
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data()))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
