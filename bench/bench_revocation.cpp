// E4 — revocation-check scaling (paper Sec. V.C).
// Paper: verification cost grows linearly in |URL| (2 pairings per token);
// the "far more efficient revocation check algorithm ... whose running time
// is independent of |URL|" trades per-epoch linkability for O(1) lookups.
// This bench regenerates both curves and their crossover.
#include "bench_common.hpp"

namespace peace::bench {
namespace {

std::vector<groupsig::RevocationToken> make_url(const groupsig::Issuer& issuer,
                                                crypto::Drbg& rng, int n) {
  std::vector<groupsig::RevocationToken> url;
  url.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    url.push_back({issuer.issue(curve::random_fr(rng), rng).a});
  return url;
}

void BM_LinearScanRevocation(benchmark::State& state) {
  World& w = World::instance();
  crypto::Drbg rng = crypto::Drbg::from_string("e4", state.range(0));
  const auto& key = w.user->credential(w.gm.id());
  const auto sig = groupsig::sign(w.no.params().gpk, key, as_bytes("m"), rng);
  const auto issuer = groupsig::Issuer::create(rng);
  const auto url = make_url(issuer, rng, static_cast<int>(state.range(0)));
  groupsig::OpCounters ops;
  for (auto _ : state) {
    ops.reset();
    // Revocation scan only (proof verification measured separately in E3).
    bool hit = false;
    for (const auto& token : url) {
      hit |= groupsig::matches_token(w.no.params().gpk, as_bytes("m"), sig,
                                     token, &ops);
    }
    benchmark::DoNotOptimize(hit);
  }
  state.counters["url_size"] = static_cast<double>(state.range(0));
  state.counters["pairings_per_check"] =
      state.range(0) == 0
          ? 0
          : static_cast<double>(ops.pairings) /
                static_cast<double>(state.range(0));
}
BENCHMARK(BM_LinearScanRevocation)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Arg(32)
    ->Unit(benchmark::kMillisecond);

void BM_FastEpochRevocation(benchmark::State& state) {
  // The |URL|-independent variant: cost is flat across list sizes.
  World& w = World::instance();
  crypto::Drbg rng = crypto::Drbg::from_string("e4f", state.range(0));
  const auto& key = w.user->credential(w.gm.id());
  const groupsig::Epoch epoch = 12;
  const auto sig =
      groupsig::sign(w.no.params().gpk, key, as_bytes("m"), rng, epoch);
  const auto issuer = groupsig::Issuer::create(rng);
  const auto url = make_url(issuer, rng, static_cast<int>(state.range(0)));
  const groupsig::EpochRevocationIndex index(w.no.params().gpk, epoch, url);
  groupsig::OpCounters ops;
  for (auto _ : state) {
    ops.reset();
    bool revoked = index.is_revoked(sig, &ops);
    benchmark::DoNotOptimize(revoked);
  }
  state.counters["url_size"] = static_cast<double>(state.range(0));
  state.counters["pairings"] = static_cast<double>(ops.pairings);
}
BENCHMARK(BM_FastEpochRevocation)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Arg(32)
    ->Arg(128)
    ->Unit(benchmark::kMillisecond);

void BM_FullVerifyWithUrlPrepared(benchmark::State& state) {
  // Full verify (proof + URL scan) against a PreparedGroupPublicKey —
  // compare against BM_GroupVerifyWithUrl in bench_sign_verify for the
  // prepared-vs-unprepared delta at each list size.
  World& w = World::instance();
  crypto::Drbg rng = crypto::Drbg::from_string("e4p", state.range(0));
  const auto& key = w.user->credential(w.gm.id());
  const auto sig = groupsig::sign(w.no.params().gpk, key, as_bytes("m"), rng);
  const auto issuer = groupsig::Issuer::create(rng);
  const auto url = make_url(issuer, rng, static_cast<int>(state.range(0)));
  const groupsig::PreparedGroupPublicKey pgpk(w.no.params().gpk);
  groupsig::OpCounters ops;
  for (auto _ : state) {
    ops.reset();
    bool ok = groupsig::verify(pgpk, as_bytes("m"), sig, url, &ops);
    benchmark::DoNotOptimize(ok);
  }
  state.counters["url_size"] = static_cast<double>(state.range(0));
  state.counters["pairings"] = static_cast<double>(ops.pairings);
}
BENCHMARK(BM_FullVerifyWithUrlPrepared)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_PooledUrlScan(benchmark::State& state) {
  // The linear URL scan fanned out over a VerifyPool: one token check per
  // job, 16-entry list, at 1/2/4/8 threads. Hit/miss results are asserted
  // identical to the sequential scan.
  World& w = World::instance();
  crypto::Drbg rng = crypto::Drbg::from_string("e4pool");
  const auto& key = w.user->credential(w.gm.id());
  const auto sig = groupsig::sign(w.no.params().gpk, key, as_bytes("m"), rng);
  const auto issuer = groupsig::Issuer::create(rng);
  const auto url = make_url(issuer, rng, 16);
  std::vector<char> expected(url.size()), got(url.size());
  for (std::size_t i = 0; i < url.size(); ++i)
    expected[i] =
        groupsig::matches_token(w.no.params().gpk, as_bytes("m"), sig, url[i]);
  proto::VerifyPool pool(static_cast<unsigned>(state.range(0)));
  for (auto _ : state) {
    pool.run(url.size(), [&](std::size_t i) {
      got[i] = groupsig::matches_token(w.no.params().gpk, as_bytes("m"), sig,
                                       url[i]);
    });
    if (got != expected)
      state.SkipWithError("pooled URL scan diverged from sequential");
    benchmark::DoNotOptimize(got);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(url.size()));
  state.counters["threads"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_PooledUrlScan)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_EpochIndexRebuild(benchmark::State& state) {
  // The amortized cost the fast variant pays once per epoch: one pairing
  // per URL token.
  World& w = World::instance();
  crypto::Drbg rng = crypto::Drbg::from_string("e4r", state.range(0));
  const auto issuer = groupsig::Issuer::create(rng);
  const auto url = make_url(issuer, rng, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    groupsig::EpochRevocationIndex index(w.no.params().gpk, 7, url);
    benchmark::DoNotOptimize(index.size());
  }
  state.counters["url_size"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_EpochIndexRebuild)
    ->Arg(8)
    ->Arg(32)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace peace::bench

BENCHMARK_MAIN();
