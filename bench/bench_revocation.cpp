// E4 — revocation-check scaling (paper Sec. V.C).
// Paper: verification cost grows linearly in |URL| (2 pairings per token);
// the "far more efficient revocation check algorithm ... whose running time
// is independent of |URL|" trades per-epoch linkability for O(1) lookups.
// This bench regenerates both curves and their crossover.
#include "bench_common.hpp"
#include "peace/url_scan.hpp"

namespace peace::bench {
namespace {

std::vector<groupsig::RevocationToken> make_url(const groupsig::Issuer& issuer,
                                                crypto::Drbg& rng, int n) {
  std::vector<groupsig::RevocationToken> url;
  url.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    url.push_back({issuer.issue(curve::random_fr(rng), rng).a});
  return url;
}

std::vector<groupsig::RevocationToken> make_url_fast(std::size_t n) {
  // Distinct small multiples of the generator: well-formed G1 tokens no
  // bench signer owns, one group add each — cheap enough to build the
  // 10^5-entry URLs the large-scale scan benches need (make_url's issuer
  // path pays a scalar multiplication per token).
  std::vector<groupsig::RevocationToken> url;
  url.reserve(n);
  const curve::G1 g = curve::Bn254::get().g1_gen;
  curve::G1 a = g;
  for (std::size_t i = 0; i < n; ++i) {
    a = a + g;
    url.push_back({a});
  }
  return url;
}

void BM_LinearScanRevocation(benchmark::State& state) {
  World& w = World::instance();
  crypto::Drbg rng = crypto::Drbg::from_string("e4", state.range(0));
  const auto& key = w.user->credential(w.gm.id());
  const auto sig = groupsig::sign(w.no.params().gpk, key, as_bytes("m"), rng);
  const auto issuer = groupsig::Issuer::create(rng);
  const auto url = make_url(issuer, rng, static_cast<int>(state.range(0)));
  groupsig::OpCounters ops;
  for (auto _ : state) {
    ops.reset();
    // Revocation scan only (proof verification measured separately in E3).
    bool hit = false;
    for (const auto& token : url) {
      hit |= groupsig::matches_token(w.no.params().gpk, as_bytes("m"), sig,
                                     token, &ops);
    }
    benchmark::DoNotOptimize(hit);
  }
  state.counters["url_size"] = static_cast<double>(state.range(0));
  state.counters["pairings_per_check"] =
      state.range(0) == 0
          ? 0
          : static_cast<double>(ops.pairings) /
                static_cast<double>(state.range(0));
}
BENCHMARK(BM_LinearScanRevocation)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Arg(32)
    ->Arg(1000)
    ->Arg(10000)
    ->Unit(benchmark::kMillisecond);

void BM_FastEpochRevocation(benchmark::State& state) {
  // The |URL|-independent variant: cost is flat across list sizes.
  World& w = World::instance();
  crypto::Drbg rng = crypto::Drbg::from_string("e4f", state.range(0));
  const auto& key = w.user->credential(w.gm.id());
  const groupsig::Epoch epoch = 12;
  const auto sig =
      groupsig::sign(w.no.params().gpk, key, as_bytes("m"), rng, epoch);
  const auto issuer = groupsig::Issuer::create(rng);
  const auto url = make_url(issuer, rng, static_cast<int>(state.range(0)));
  const groupsig::EpochRevocationIndex index(w.no.params().gpk, epoch, url);
  groupsig::OpCounters ops;
  for (auto _ : state) {
    ops.reset();
    bool revoked = index.is_revoked(sig, &ops);
    benchmark::DoNotOptimize(revoked);
  }
  state.counters["url_size"] = static_cast<double>(state.range(0));
  state.counters["pairings"] = static_cast<double>(ops.pairings);
}
BENCHMARK(BM_FastEpochRevocation)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Arg(32)
    ->Arg(128)
    ->Unit(benchmark::kMillisecond);

void BM_FullVerifyWithUrlPrepared(benchmark::State& state) {
  // Full verify (proof + URL scan) against a PreparedGroupPublicKey —
  // compare against BM_GroupVerifyWithUrl in bench_sign_verify for the
  // prepared-vs-unprepared delta at each list size.
  World& w = World::instance();
  crypto::Drbg rng = crypto::Drbg::from_string("e4p", state.range(0));
  const auto& key = w.user->credential(w.gm.id());
  const auto sig = groupsig::sign(w.no.params().gpk, key, as_bytes("m"), rng);
  const auto issuer = groupsig::Issuer::create(rng);
  const auto url = make_url(issuer, rng, static_cast<int>(state.range(0)));
  const groupsig::PreparedGroupPublicKey pgpk(w.no.params().gpk);
  groupsig::OpCounters ops;
  for (auto _ : state) {
    ops.reset();
    bool ok = groupsig::verify(pgpk, as_bytes("m"), sig, url, &ops);
    benchmark::DoNotOptimize(ok);
  }
  state.counters["url_size"] = static_cast<double>(state.range(0));
  state.counters["pairings"] = static_cast<double>(ops.pairings);
}
BENCHMARK(BM_FullVerifyWithUrlPrepared)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_PooledUrlScan(benchmark::State& state) {
  // The linear URL scan fanned out over a VerifyPool: one token check per
  // job, 16-entry list, at 1/2/4/8 threads. Hit/miss results are asserted
  // identical to the sequential scan.
  World& w = World::instance();
  crypto::Drbg rng = crypto::Drbg::from_string("e4pool");
  const auto& key = w.user->credential(w.gm.id());
  const auto sig = groupsig::sign(w.no.params().gpk, key, as_bytes("m"), rng);
  const auto issuer = groupsig::Issuer::create(rng);
  const auto url = make_url(issuer, rng, 16);
  std::vector<char> expected(url.size()), got(url.size());
  for (std::size_t i = 0; i < url.size(); ++i)
    expected[i] =
        groupsig::matches_token(w.no.params().gpk, as_bytes("m"), sig, url[i]);
  proto::VerifyPool pool(static_cast<unsigned>(state.range(0)));
  for (auto _ : state) {
    pool.run(url.size(), [&](std::size_t i) {
      got[i] = groupsig::matches_token(w.no.params().gpk, as_bytes("m"), sig,
                                       url[i]);
    });
    if (got != expected)
      state.SkipWithError("pooled URL scan diverged from sequential");
    benchmark::DoNotOptimize(got);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(url.size()));
  state.counters["threads"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_PooledUrlScan)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_EpochIndexRebuild(benchmark::State& state) {
  // The amortized cost the fast variant pays once per epoch: one pairing
  // per URL token. This is the "full rebuild" column — compare with
  // BM_EpochIndexIncrementalDelta, which advances an existing index.
  World& w = World::instance();
  crypto::Drbg rng = crypto::Drbg::from_string("e4r", state.range(0));
  const auto issuer = groupsig::Issuer::create(rng);
  const auto url = make_url(issuer, rng, static_cast<int>(state.range(0)));
  const std::uint64_t pairings_before = curve::pairing_op_count();
  std::uint64_t builds = 0;
  for (auto _ : state) {
    groupsig::EpochRevocationIndex index(w.no.params().gpk, 7, url);
    benchmark::DoNotOptimize(index.size());
    ++builds;
  }
  state.counters["url_size"] = static_cast<double>(state.range(0));
  state.counters["pairings_per_update"] =
      static_cast<double>(curve::pairing_op_count() - pairings_before) /
      static_cast<double>(builds);
}
BENCHMARK(BM_EpochIndexRebuild)
    ->Arg(8)
    ->Arg(32)
    ->Unit(benchmark::kMillisecond);

void BM_EpochIndexIncrementalDelta(benchmark::State& state) {
  // The incremental column: a one-token delta lands on an existing
  // |URL|-sized index as clone + add_token — exactly what the snapshot
  // publisher does — paying 1 pairing regardless of |URL|, where the full
  // rebuild above pays |URL| + 1.
  World& w = World::instance();
  crypto::Drbg rng = crypto::Drbg::from_string("e4i", state.range(0));
  const auto issuer = groupsig::Issuer::create(rng);
  const auto url = make_url(issuer, rng, static_cast<int>(state.range(0)));
  const groupsig::RevocationToken fresh{
      issuer.issue(curve::random_fr(rng), rng).a};
  const groupsig::EpochRevocationIndex base(w.no.params().gpk, 7, url);
  const std::uint64_t pairings_before = curve::pairing_op_count();
  std::uint64_t updates = 0;
  for (auto _ : state) {
    groupsig::EpochRevocationIndex next = base;  // snapshot clone, 0 pairings
    next.add_token(fresh);
    benchmark::DoNotOptimize(next.size());
    ++updates;
  }
  state.counters["url_size"] = static_cast<double>(state.range(0));
  state.counters["pairings_per_update"] =
      static_cast<double>(curve::pairing_op_count() - pairings_before) /
      static_cast<double>(updates);
}
BENCHMARK(BM_EpochIndexIncrementalDelta)
    ->Arg(8)
    ->Arg(32)
    ->Unit(benchmark::kMillisecond);

void BM_UrlScanPreparedBases(benchmark::State& state) {
  // Cached-v_hat column for the linear scan: derive the message's bases
  // (and prepare v_hat) once, then run every token against the prepared
  // form. Compare with BM_LinearScanRevocation, whose per-token
  // matches_token re-derives the bases and re-walks v_hat's Miller loop
  // 2|URL| times. g2_prepared counts the one-shot tables built.
  World& w = World::instance();
  crypto::Drbg rng = crypto::Drbg::from_string("e4c", state.range(0));
  const auto& key = w.user->credential(w.gm.id());
  const auto sig = groupsig::sign(w.no.params().gpk, key, as_bytes("m"), rng);
  const auto issuer = groupsig::Issuer::create(rng);
  const auto url = make_url(issuer, rng, static_cast<int>(state.range(0)));
  const std::uint64_t prepared_before = curve::g2_prepared_count();
  std::uint64_t scans = 0;
  groupsig::OpCounters ops;
  for (auto _ : state) {
    ops.reset();
    const groupsig::PreparedBases prepared =
        groupsig::prepare_bases(w.no.params().gpk, as_bytes("m"), sig, &ops);
    bool hit = false;
    for (const auto& token : url)
      hit |= groupsig::matches_token(prepared, sig, token, &ops);
    benchmark::DoNotOptimize(hit);
    ++scans;
  }
  state.counters["url_size"] = static_cast<double>(state.range(0));
  state.counters["pairings_per_check"] =
      static_cast<double>(ops.pairings) / static_cast<double>(state.range(0));
  state.counters["g2_prepared_per_scan"] =
      static_cast<double>(curve::g2_prepared_count() - prepared_before) /
      static_cast<double>(scans);
}
BENCHMARK(BM_UrlScanPreparedBases)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Arg(32)
    ->Unit(benchmark::kMillisecond);

void BM_UrlScanBatched(benchmark::State& state) {
  // The batched scan path (groupsig::scan_tokens): bases prepared once per
  // scan, ONE Miller factor e(-v, T_hat) shared across the list, one token
  // Miller loop each, and a single Montgomery-batched easy-part inversion
  // for the whole scan. Per-verification cost vs |URL| up to 10^5 — compare
  // per-token with BM_LinearScanRevocation (the seed base-rederiving path)
  // and BM_UrlScanPreparedBases (the seed cached-v_hat path).
  World& w = World::instance();
  crypto::Drbg rng = crypto::Drbg::from_string("e4b", state.range(0));
  const auto& key = w.user->credential(w.gm.id());
  const auto sig = groupsig::sign(w.no.params().gpk, key, as_bytes("m"), rng);
  const auto url = make_url_fast(static_cast<std::size_t>(state.range(0)));
  groupsig::OpCounters ops;
  for (auto _ : state) {
    ops.reset();
    const groupsig::PreparedBases prepared =
        groupsig::prepare_bases(w.no.params().gpk, as_bytes("m"), sig, &ops);
    const std::size_t hit = groupsig::scan_tokens(prepared, sig, url, &ops);
    if (hit != groupsig::TokenScan::npos)
      state.SkipWithError("clean URL reported a match");
    benchmark::DoNotOptimize(hit);
  }
  state.counters["url_size"] = static_cast<double>(state.range(0));
  state.counters["tokens_per_s"] = benchmark::Counter(
      static_cast<double>(state.range(0)),
      benchmark::Counter::kIsIterationInvariantRate);
  state.counters["pairings_per_check"] =
      static_cast<double>(ops.pairings) / static_cast<double>(state.range(0));
}
BENCHMARK(BM_UrlScanBatched)
    ->Arg(1)
    ->Arg(8)
    ->Arg(32)
    ->Arg(100)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(100000)
    ->Unit(benchmark::kMillisecond);

void BM_ShardedUrlScan(benchmark::State& state) {
  // One large-URL scan sharded across VerifyPool workers with early exit
  // (peace::proto::url_scan_revoked) — the router's batch-of-one path for
  // production URL sizes. Clean list, so every shard runs its full range:
  // the worst case, and the only deterministic one.
  World& w = World::instance();
  crypto::Drbg rng = crypto::Drbg::from_string("e4sh");
  const auto& key = w.user->credential(w.gm.id());
  const auto sig = groupsig::sign(w.no.params().gpk, key, as_bytes("m"), rng);
  const auto url = make_url_fast(static_cast<std::size_t>(state.range(0)));
  const groupsig::PreparedBases prepared =
      groupsig::prepare_bases(w.no.params().gpk, as_bytes("m"), sig);
  proto::VerifyPool pool(static_cast<unsigned>(state.range(1)));
  for (auto _ : state) {
    const bool revoked = proto::url_scan_revoked(prepared, sig, url, &pool);
    if (revoked) state.SkipWithError("clean URL reported a match");
    benchmark::DoNotOptimize(revoked);
  }
  state.counters["url_size"] = static_cast<double>(state.range(0));
  state.counters["threads"] = static_cast<double>(state.range(1));
  state.counters["tokens_per_s"] = benchmark::Counter(
      static_cast<double>(state.range(0)),
      benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_ShardedUrlScan)
    ->Args({10000, 1})
    ->Args({10000, 2})
    ->Args({10000, 4})
    ->Args({10000, 8})
    ->Args({100000, 8})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_PerRouterIndexes(benchmark::State& state) {
  // N routers each maintaining a private epoch index: N full builds per
  // epoch roll (the pre-subsystem deployment model).
  World& w = World::instance();
  crypto::Drbg rng = crypto::Drbg::from_string("e4n");
  const auto issuer = groupsig::Issuer::create(rng);
  const auto url = make_url(issuer, rng, 16);
  const auto routers = static_cast<std::size_t>(state.range(0));
  const std::uint64_t pairings_before = curve::pairing_op_count();
  std::uint64_t rolls = 0;
  for (auto _ : state) {
    for (std::size_t r = 0; r < routers; ++r) {
      groupsig::EpochRevocationIndex index(w.no.params().gpk, 7, url);
      benchmark::DoNotOptimize(index.size());
    }
    ++rolls;
  }
  state.counters["routers"] = static_cast<double>(routers);
  state.counters["pairings_per_roll"] =
      static_cast<double>(curve::pairing_op_count() - pairings_before) /
      static_cast<double>(rolls);
}
BENCHMARK(BM_PerRouterIndexes)
    ->Arg(1)
    ->Arg(4)
    ->Arg(16)
    ->Unit(benchmark::kMillisecond);

void BM_SharedSnapshotIndex(benchmark::State& state) {
  // The shared-snapshot column: the same N routers behind one
  // SharedRevocationState — an epoch roll builds one index and publishes
  // one pointer; every router (and its VerifyPool workers) reads the same
  // immutable snapshot. Cost is flat in N.
  World::instance();  // ensures curve init when this bench runs first
  // A local operator whose URL carries 16 revoked members, matching the
  // per-router bench's list size.
  proto::NetworkOperator no(crypto::Drbg::from_string("e4s"));
  proto::TrustedThirdParty ttp;
  proto::GroupManager gm = no.register_group("fleet", 16, ttp);
  for (int i = 0; i < 16; ++i)
    no.revoke_user_key(gm.enroll("u" + std::to_string(i), ttp).index, 1);

  const auto routers = static_cast<std::size_t>(state.range(0));
  auto shared = std::make_shared<revoke::SharedRevocationState>(no.npk());
  shared->install_full(no.current_crl(), no.current_url());
  std::vector<std::unique_ptr<proto::MeshRouter>> fleet;
  for (std::size_t r = 0; r < routers; ++r) {
    auto provision = no.provision_router(static_cast<proto::RouterId>(100 + r),
                                         ~proto::Timestamp{0});
    fleet.push_back(std::make_unique<proto::MeshRouter>(
        static_cast<proto::RouterId>(100 + r), provision.keypair,
        provision.certificate, no.params(),
        crypto::Drbg::from_string("bench-fleet", static_cast<int>(r)),
        proto::ProtocolConfig{}, shared));
  }
  const std::uint64_t pairings_before = curve::pairing_op_count();
  std::uint64_t rolls = 0;
  groupsig::Epoch epoch = 1;
  for (auto _ : state) {
    fleet[0]->set_revocation_epoch(++epoch);  // one build, N readers
    for (const auto& r : fleet)
      benchmark::DoNotOptimize(r->revocation()->snapshot());
    ++rolls;
  }
  state.counters["routers"] = static_cast<double>(routers);
  state.counters["pairings_per_roll"] =
      static_cast<double>(curve::pairing_op_count() - pairings_before) /
      static_cast<double>(rolls);
}
BENCHMARK(BM_SharedSnapshotIndex)
    ->Arg(1)
    ->Arg(4)
    ->Arg(16)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace peace::bench

// BENCHMARK_MAIN, plus a default JSON report (BENCH_revocation.json in the
// working directory) when the caller didn't pick an output file.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  std::string out_flag = "--benchmark_out=BENCH_revocation.json";
  std::string fmt_flag = "--benchmark_out_format=json";
  bool has_out = false;
  for (int i = 1; i < argc; ++i)
    has_out |= std::string_view(argv[i]).starts_with("--benchmark_out=");
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data()))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
