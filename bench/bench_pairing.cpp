// E9 — primitive microbenchmarks: the building blocks whose counts the
// paper's analysis is phrased in (pairings, exponentiations, hash-to-group),
// plus the ate-vs-Tate ablation called out in DESIGN.md.
#include <benchmark/benchmark.h>

#include "crypto/drbg.hpp"
#include "curve/ecdsa.hpp"
#include "curve/hash_to_curve.hpp"
#include "curve/pairing.hpp"

namespace peace::curve {
namespace {

struct Fixture {
  Fixture() : rng(crypto::Drbg::from_string("e9")) {
    Bn254::init();
    p = Bn254::get().g1_gen * random_fr(rng);
    q = Bn254::get().g2_gen * random_fr(rng);
    gt = pairing(p, q);
    scalar = random_fr(rng);
  }
  static Fixture& get() {
    static Fixture f;
    return f;
  }
  crypto::Drbg rng;
  G1 p;
  G2 q;
  GT gt;
  Fr scalar;
};

void BM_PairingOptimalAte(benchmark::State& state) {
  Fixture& f = Fixture::get();
  for (auto _ : state) {
    auto e = pairing(f.p, f.q);
    benchmark::DoNotOptimize(e);
  }
}
BENCHMARK(BM_PairingOptimalAte)->Unit(benchmark::kMillisecond);

void BM_PairingTateReference(benchmark::State& state) {
  // Ablation: the textbook Tate loop over r (254 iterations, untwisted
  // Fp12 arithmetic) vs the 65-iteration optimal ate above.
  Fixture& f = Fixture::get();
  for (auto _ : state) {
    auto e = pairing_reference(f.p, f.q);
    benchmark::DoNotOptimize(e);
  }
}
BENCHMARK(BM_PairingTateReference)->Unit(benchmark::kMillisecond);

void BM_MillerLoopOnly(benchmark::State& state) {
  Fixture& f = Fixture::get();
  for (auto _ : state) {
    auto m = miller_loop(f.p, f.q);
    benchmark::DoNotOptimize(m);
  }
}
BENCHMARK(BM_MillerLoopOnly)->Unit(benchmark::kMillisecond);

void BM_FinalExponentiationOnly(benchmark::State& state) {
  Fixture& f = Fixture::get();
  const auto m = miller_loop(f.p, f.q);
  for (auto _ : state) {
    auto e = final_exponentiation(m);
    benchmark::DoNotOptimize(e);
  }
}
BENCHMARK(BM_FinalExponentiationOnly)->Unit(benchmark::kMillisecond);

void BM_FinalExponentiationGeneric(benchmark::State& state) {
  // Ablation: generic 762-bit square-and-multiply vs the BN hard-part
  // addition chain used by final_exponentiation() above.
  Fixture& f = Fixture::get();
  const auto m = miller_loop(f.p, f.q);
  for (auto _ : state) {
    auto e = final_exponentiation_generic(m);
    benchmark::DoNotOptimize(e);
  }
}
BENCHMARK(BM_FinalExponentiationGeneric)->Unit(benchmark::kMillisecond);

void BM_MultiPairing2(benchmark::State& state) {
  // The folded two-pairing product used by R2 and Eq.3: cheaper than two
  // separate pairings because the final exponentiation is shared.
  Fixture& f = Fixture::get();
  for (auto _ : state) {
    auto e = multi_pairing({{f.p, f.q}, {-f.p, f.q}});
    benchmark::DoNotOptimize(e);
  }
}
BENCHMARK(BM_MultiPairing2)->Unit(benchmark::kMillisecond);

void BM_G1ScalarMul(benchmark::State& state) {
  Fixture& f = Fixture::get();
  for (auto _ : state) {
    auto r = f.p * f.scalar;
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_G1ScalarMul);

void BM_G1ScalarMulPlain(benchmark::State& state) {
  // Ablation: the plain 254-bit wNAF ladder the GLV split replaced as the
  // operator* fast path (docs/CRYPTO.md §6.1).
  Fixture& f = Fixture::get();
  for (auto _ : state) {
    auto r = f.p.mul_windowed(f.scalar.to_u256());
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_G1ScalarMulPlain);

void BM_G2ScalarMul(benchmark::State& state) {
  Fixture& f = Fixture::get();
  for (auto _ : state) {
    auto r = f.q * f.scalar;
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_G2ScalarMul);

void BM_G2ScalarMulGls(benchmark::State& state) {
  // The 4-dimensional GLS split (docs/CRYPTO.md §6.2) — opt-in for points
  // known to lie in the order-r subgroup, as all protocol G2 points do.
  Fixture& f = Fixture::get();
  for (auto _ : state) {
    auto r = g2_mul_gls(f.q, f.scalar.to_u256());
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_G2ScalarMulGls);

void BM_G1Msm(benchmark::State& state) {
  // Endomorphism-split interleaved wNAF multi-exponentiation at the sizes
  // the verification equations use (2-, 3-term) and larger fold sizes the
  // revocation scan reaches.
  Fixture& f = Fixture::get();
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<G1> pts(n);
  std::vector<math::U256> ks(n);
  for (std::size_t i = 0; i < n; ++i) {
    pts[i] = Bn254::get().g1_gen * random_fr(f.rng);
    ks[i] = random_fr(f.rng).to_u256();
  }
  for (auto _ : state) {
    auto r = g1_msm(std::span<const G1>(pts), std::span<const math::U256>(ks));
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_G1Msm)->Arg(2)->Arg(3)->Arg(8)->Arg(16);

void BM_G2Msm(benchmark::State& state) {
  Fixture& f = Fixture::get();
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<G2> pts(n);
  std::vector<math::U256> ks(n);
  for (std::size_t i = 0; i < n; ++i) {
    pts[i] = Bn254::get().g2_gen * random_fr(f.rng);
    ks[i] = random_fr(f.rng).to_u256();
  }
  for (auto _ : state) {
    auto r = g2_msm(std::span<const G2>(pts), std::span<const math::U256>(ks));
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_G2Msm)->Arg(2)->Arg(4);

void BM_G2ClearCofactor(benchmark::State& state) {
  // Psi-identity cofactor clearing ([t] psi(Q) + [t-1] Q - psi^2(Q)) vs the
  // raw [2p - r] ladder it replaced — the hash_to_g2 tail.
  Fixture& f = Fixture::get();
  // A raw curve point with the cofactor still in it.
  G2 raw;
  for (std::uint64_t c = 1;; ++c) {
    const math::Fp2 x(math::Fp::from_u64(c), math::Fp::from_u64(1));
    const math::Fp2 rhs = x.square() * x + G2Traits::b();
    math::Fp2 y;
    if (!rhs.sqrt(y)) continue;
    raw = G2(x, y);
    break;
  }
  (void)f;
  for (auto _ : state) {
    auto r = g2_clear_cofactor(raw);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_G2ClearCofactor);

void BM_G2SubgroupCheck(benchmark::State& state) {
  // psi(Q) == [6u^2] Q membership test — the g2_from_bytes gate, formerly
  // a full [r] Q ladder.
  Fixture& f = Fixture::get();
  for (auto _ : state) {
    bool ok = g2_in_subgroup(f.q);
    benchmark::DoNotOptimize(ok);
  }
}
BENCHMARK(BM_G2SubgroupCheck);

void BM_MultiPairing2Prepared(benchmark::State& state) {
  // The exact shape of the verification equation Eq.2: a fused two-pair
  // product with both G2 arguments prepared.
  Fixture& f = Fixture::get();
  const G2Prepared prep1(f.q);
  const G2Prepared prep2(Bn254::get().g2_gen);
  const std::pair<G1, const G2Prepared*> pairs[] = {{f.p, &prep1},
                                                    {-f.p, &prep2}};
  for (auto _ : state) {
    auto e = multi_pairing(pairs);
    benchmark::DoNotOptimize(e);
  }
}
BENCHMARK(BM_MultiPairing2Prepared)->Unit(benchmark::kMillisecond);

void BM_HashToBases(benchmark::State& state) {
  // Per-signature base derivation (two hash_to_g1, one hash_to_g2) — paid
  // by both sign and verify before any equation work.
  std::uint64_t n = 0;
  for (auto _ : state) {
    Bytes seed = {static_cast<std::uint8_t>(n++), 9, 9};
    auto b = hash_to_bases(seed);
    benchmark::DoNotOptimize(b);
  }
}
BENCHMARK(BM_HashToBases);

void BM_GtExponentiation(benchmark::State& state) {
  Fixture& f = Fixture::get();
  for (auto _ : state) {
    auto r = f.gt.pow(f.scalar.to_u256());
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_GtExponentiation);

void BM_HashToG1(benchmark::State& state) {
  Fixture& f = Fixture::get();
  std::uint64_t n = 0;
  for (auto _ : state) {
    Bytes msg = {static_cast<std::uint8_t>(n++), 1, 2, 3};
    auto p = hash_to_g1("bench", msg);
    benchmark::DoNotOptimize(p);
  }
  (void)f;
}
BENCHMARK(BM_HashToG1);

void BM_HashToG2(benchmark::State& state) {
  std::uint64_t n = 0;
  for (auto _ : state) {
    Bytes msg = {static_cast<std::uint8_t>(n++), 1, 2, 3};
    auto q = hash_to_g2("bench", msg);
    benchmark::DoNotOptimize(q);
  }
}
BENCHMARK(BM_HashToG2)->Unit(benchmark::kMillisecond);

void BM_FpInverseFast(benchmark::State& state) {
  Fixture& f = Fixture::get();
  const math::Fp a = math::Fp::from_bytes_reduce(f.rng.bytes(32));
  for (auto _ : state) {
    auto inv = a.inverse();
    benchmark::DoNotOptimize(inv);
  }
}
BENCHMARK(BM_FpInverseFast);

void BM_FpInverseFermat(benchmark::State& state) {
  // Ablation: the exponentiation-based inverse the fast path replaced.
  Fixture& f = Fixture::get();
  const math::Fp a = math::Fp::from_bytes_reduce(f.rng.bytes(32));
  for (auto _ : state) {
    auto inv = a.inverse_fermat();
    benchmark::DoNotOptimize(inv);
  }
}
BENCHMARK(BM_FpInverseFermat);

void BM_EcdsaSign(benchmark::State& state) {
  Fixture& f = Fixture::get();
  const auto kp = EcdsaKeyPair::generate(f.rng);
  for (auto _ : state) {
    auto sig = kp.sign(as_bytes("beacon payload"), f.rng);
    benchmark::DoNotOptimize(sig);
  }
}
BENCHMARK(BM_EcdsaSign);

void BM_EcdsaVerify(benchmark::State& state) {
  Fixture& f = Fixture::get();
  const auto kp = EcdsaKeyPair::generate(f.rng);
  const auto sig = kp.sign(as_bytes("beacon payload"), f.rng);
  for (auto _ : state) {
    bool ok = ecdsa_verify(kp.public_key(), as_bytes("beacon payload"), sig);
    benchmark::DoNotOptimize(ok);
  }
}
BENCHMARK(BM_EcdsaVerify);

}  // namespace
}  // namespace peace::curve

// BENCHMARK_MAIN, plus a default JSON report (BENCH_pairing.json in the
// working directory) when the caller didn't pick an output file — the
// curve-layer speedup gates and the E1/E3/E5 cost tables read it.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  std::string out_flag = "--benchmark_out=BENCH_pairing.json";
  std::string fmt_flag = "--benchmark_out_format=json";
  bool has_out = false;
  for (int i = 1; i < argc; ++i)
    has_out |= std::string_view(argv[i]).starts_with("--benchmark_out=");
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data()))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
