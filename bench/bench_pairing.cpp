// E9 — primitive microbenchmarks: the building blocks whose counts the
// paper's analysis is phrased in (pairings, exponentiations, hash-to-group),
// plus the ate-vs-Tate ablation called out in DESIGN.md.
#include <benchmark/benchmark.h>

#include "crypto/drbg.hpp"
#include "curve/ecdsa.hpp"
#include "curve/hash_to_curve.hpp"
#include "curve/pairing.hpp"

namespace peace::curve {
namespace {

struct Fixture {
  Fixture() : rng(crypto::Drbg::from_string("e9")) {
    Bn254::init();
    p = Bn254::get().g1_gen * random_fr(rng);
    q = Bn254::get().g2_gen * random_fr(rng);
    gt = pairing(p, q);
    scalar = random_fr(rng);
  }
  static Fixture& get() {
    static Fixture f;
    return f;
  }
  crypto::Drbg rng;
  G1 p;
  G2 q;
  GT gt;
  Fr scalar;
};

void BM_PairingOptimalAte(benchmark::State& state) {
  Fixture& f = Fixture::get();
  for (auto _ : state) {
    auto e = pairing(f.p, f.q);
    benchmark::DoNotOptimize(e);
  }
}
BENCHMARK(BM_PairingOptimalAte)->Unit(benchmark::kMillisecond);

void BM_PairingTateReference(benchmark::State& state) {
  // Ablation: the textbook Tate loop over r (254 iterations, untwisted
  // Fp12 arithmetic) vs the 65-iteration optimal ate above.
  Fixture& f = Fixture::get();
  for (auto _ : state) {
    auto e = pairing_reference(f.p, f.q);
    benchmark::DoNotOptimize(e);
  }
}
BENCHMARK(BM_PairingTateReference)->Unit(benchmark::kMillisecond);

void BM_MillerLoopOnly(benchmark::State& state) {
  Fixture& f = Fixture::get();
  for (auto _ : state) {
    auto m = miller_loop(f.p, f.q);
    benchmark::DoNotOptimize(m);
  }
}
BENCHMARK(BM_MillerLoopOnly)->Unit(benchmark::kMillisecond);

void BM_FinalExponentiationOnly(benchmark::State& state) {
  Fixture& f = Fixture::get();
  const auto m = miller_loop(f.p, f.q);
  for (auto _ : state) {
    auto e = final_exponentiation(m);
    benchmark::DoNotOptimize(e);
  }
}
BENCHMARK(BM_FinalExponentiationOnly)->Unit(benchmark::kMillisecond);

void BM_FinalExponentiationGeneric(benchmark::State& state) {
  // Ablation: generic 762-bit square-and-multiply vs the BN hard-part
  // addition chain used by final_exponentiation() above.
  Fixture& f = Fixture::get();
  const auto m = miller_loop(f.p, f.q);
  for (auto _ : state) {
    auto e = final_exponentiation_generic(m);
    benchmark::DoNotOptimize(e);
  }
}
BENCHMARK(BM_FinalExponentiationGeneric)->Unit(benchmark::kMillisecond);

void BM_MultiPairing2(benchmark::State& state) {
  // The folded two-pairing product used by R2 and Eq.3: cheaper than two
  // separate pairings because the final exponentiation is shared.
  Fixture& f = Fixture::get();
  for (auto _ : state) {
    auto e = multi_pairing({{f.p, f.q}, {-f.p, f.q}});
    benchmark::DoNotOptimize(e);
  }
}
BENCHMARK(BM_MultiPairing2)->Unit(benchmark::kMillisecond);

void BM_G1ScalarMul(benchmark::State& state) {
  Fixture& f = Fixture::get();
  for (auto _ : state) {
    auto r = f.p * f.scalar;
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_G1ScalarMul);

void BM_G2ScalarMul(benchmark::State& state) {
  Fixture& f = Fixture::get();
  for (auto _ : state) {
    auto r = f.q * f.scalar;
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_G2ScalarMul);

void BM_GtExponentiation(benchmark::State& state) {
  Fixture& f = Fixture::get();
  for (auto _ : state) {
    auto r = f.gt.pow(f.scalar.to_u256());
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_GtExponentiation);

void BM_HashToG1(benchmark::State& state) {
  Fixture& f = Fixture::get();
  std::uint64_t n = 0;
  for (auto _ : state) {
    Bytes msg = {static_cast<std::uint8_t>(n++), 1, 2, 3};
    auto p = hash_to_g1("bench", msg);
    benchmark::DoNotOptimize(p);
  }
  (void)f;
}
BENCHMARK(BM_HashToG1);

void BM_HashToG2(benchmark::State& state) {
  std::uint64_t n = 0;
  for (auto _ : state) {
    Bytes msg = {static_cast<std::uint8_t>(n++), 1, 2, 3};
    auto q = hash_to_g2("bench", msg);
    benchmark::DoNotOptimize(q);
  }
}
BENCHMARK(BM_HashToG2)->Unit(benchmark::kMillisecond);

void BM_FpInverseFast(benchmark::State& state) {
  Fixture& f = Fixture::get();
  const math::Fp a = math::Fp::from_bytes_reduce(f.rng.bytes(32));
  for (auto _ : state) {
    auto inv = a.inverse();
    benchmark::DoNotOptimize(inv);
  }
}
BENCHMARK(BM_FpInverseFast);

void BM_FpInverseFermat(benchmark::State& state) {
  // Ablation: the exponentiation-based inverse the fast path replaced.
  Fixture& f = Fixture::get();
  const math::Fp a = math::Fp::from_bytes_reduce(f.rng.bytes(32));
  for (auto _ : state) {
    auto inv = a.inverse_fermat();
    benchmark::DoNotOptimize(inv);
  }
}
BENCHMARK(BM_FpInverseFermat);

void BM_EcdsaSign(benchmark::State& state) {
  Fixture& f = Fixture::get();
  const auto kp = EcdsaKeyPair::generate(f.rng);
  for (auto _ : state) {
    auto sig = kp.sign(as_bytes("beacon payload"), f.rng);
    benchmark::DoNotOptimize(sig);
  }
}
BENCHMARK(BM_EcdsaSign);

void BM_EcdsaVerify(benchmark::State& state) {
  Fixture& f = Fixture::get();
  const auto kp = EcdsaKeyPair::generate(f.rng);
  const auto sig = kp.sign(as_bytes("beacon payload"), f.rng);
  for (auto _ : state) {
    bool ok = ecdsa_verify(kp.public_key(), as_bytes("beacon payload"), sig);
    benchmark::DoNotOptimize(ok);
  }
}
BENCHMARK(BM_EcdsaVerify);

}  // namespace
}  // namespace peace::curve

BENCHMARK_MAIN();
