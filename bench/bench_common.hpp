// Shared setup for the experiment benches: a small PEACE deployment with
// one operator, one group, one router, and one enrolled user.
#pragma once

#include <benchmark/benchmark.h>

#include <memory>

#include "peace/router.hpp"
#include "peace/user.hpp"

namespace peace::bench {

struct World {
  World()
      : no(crypto::Drbg::from_string("bench-no")),
        gm(no.register_group("bench-group", 64, ttp)) {
    auto provision = no.provision_router(1, ~proto::Timestamp{0});
    router = std::make_unique<proto::MeshRouter>(
        1, provision.keypair, provision.certificate, no.params(),
        crypto::Drbg::from_string("bench-router"));
    router->install_revocation_lists(no.current_crl(), no.current_url());
    user = std::make_unique<proto::User>("bench-user", no.params(),
                                         crypto::Drbg::from_string("bench-u"));
    user->complete_enrollment(gm.enroll("bench-user", ttp));
  }

  static World& instance() {
    static World world = [] {
      curve::Bn254::init();
      return World();
    }();
    return world;
  }

  proto::NetworkOperator no;
  proto::TrustedThirdParty ttp;
  proto::GroupManager gm;
  std::unique_ptr<proto::MeshRouter> router;
  std::unique_ptr<proto::User> user;
};

}  // namespace peace::bench
