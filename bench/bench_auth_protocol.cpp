// E5 — three-way handshake cost (paper Sec. V.C: "minimal communication
// rounds necessary to achieve mutual authentication"). Full user-router
// (M.1 -> M.2 -> M.3) and user-user (M~.1 -> M~.2 -> M~.3) handshakes,
// end to end over serialized messages, against the non-anonymous baseline.
#include "bench_common.hpp"

#include "baseline/plain_auth.hpp"

namespace peace::bench {
namespace {

void BM_UserRouterHandshake(benchmark::State& state) {
  World& w = World::instance();
  proto::Timestamp now = 10'000;
  std::size_t wire_bytes = 0;
  for (auto _ : state) {
    now += 10'000;
    const auto beacon = w.router->make_beacon(now);
    auto m2 = w.user->process_beacon(
        proto::BeaconMessage::from_bytes(beacon.to_bytes()), now);
    auto outcome = w.router->handle_access_request(
        proto::AccessRequest::from_bytes(m2->to_bytes()), now + 1);
    auto session = w.user->process_access_confirm(
        proto::AccessConfirm::from_bytes(outcome->confirm.to_bytes()));
    benchmark::DoNotOptimize(session);
    wire_bytes = beacon.to_bytes().size() + m2->to_bytes().size() +
                 outcome->confirm.to_bytes().size();
  }
  state.counters["rounds"] = 3;
  state.counters["total_wire_bytes"] = static_cast<double>(wire_bytes);
}
BENCHMARK(BM_UserRouterHandshake)->Unit(benchmark::kMillisecond);

void BM_UserUserHandshake(benchmark::State& state) {
  World& w = World::instance();
  proto::User peer("peer", w.no.params(), crypto::Drbg::from_string("peer"));
  peer.complete_enrollment(w.gm.enroll("peer-bench", w.ttp));
  proto::Timestamp now = 10'000;
  std::size_t wire_bytes = 0;
  const auto g = curve::Bn254::get().g1_gen;
  for (auto _ : state) {
    now += 10'000;
    const auto hello = w.user->make_peer_hello(g, now);
    auto reply = peer.process_peer_hello(
        proto::PeerHello::from_bytes(hello.to_bytes()), now + 1);
    auto established = w.user->process_peer_reply(
        proto::PeerReply::from_bytes(reply->to_bytes()), now + 2);
    auto peer_session = peer.process_peer_confirm(
        proto::PeerConfirm::from_bytes(established->confirm.to_bytes()));
    benchmark::DoNotOptimize(peer_session);
    wire_bytes = hello.to_bytes().size() + reply->to_bytes().size() +
                 established->confirm.to_bytes().size();
  }
  state.counters["rounds"] = 3;
  state.counters["total_wire_bytes"] = static_cast<double>(wire_bytes);
}
BENCHMARK(BM_UserUserHandshake)->Unit(benchmark::kMillisecond);

void BM_PlainBaselineHandshake(benchmark::State& state) {
  // What the handshake costs WITHOUT anonymity: two ECDSA verifies, no
  // pairings — the price PEACE pays for privacy is the difference.
  curve::Bn254::init();
  crypto::Drbg rng = crypto::Drbg::from_string("e5-plain");
  baseline::PlainAuthority authority(crypto::Drbg::from_string("e5-auth"));
  const auto user = authority.issue_user("alice", ~0ull);
  const auto g = curve::Bn254::get().g1_gen;
  std::uint64_t now = 10'000;
  for (auto _ : state) {
    now += 10'000;
    const auto g_rj = g * curve::random_fr(rng);
    const auto g_rr = g * curve::random_fr(rng);
    const auto req = baseline::make_plain_request(user, g_rj, g_rr, now, rng);
    auto uid = baseline::verify_plain_request(
        authority, baseline::PlainAccessRequest::from_bytes(req.to_bytes()),
        now, 5000);
    benchmark::DoNotOptimize(uid);
  }
}
BENCHMARK(BM_PlainBaselineHandshake)->Unit(benchmark::kMillisecond);

void BM_BeaconGeneration(benchmark::State& state) {
  // Router-side per-period work: sign every beacon (Sec. V.C notes this
  // recurring cost).
  World& w = World::instance();
  proto::Timestamp now = 50'000'000;
  for (auto _ : state) {
    now += 1000;
    auto beacon = w.router->make_beacon(now);
    benchmark::DoNotOptimize(beacon);
  }
}
BENCHMARK(BM_BeaconGeneration)->Unit(benchmark::kMillisecond);

void BM_BeaconValidation(benchmark::State& state) {
  // User-side cost of step 2.1 (certificate + CRL + signature checks)
  // in isolation: measured via a beacon that fails nothing.
  World& w = World::instance();
  proto::User fresh("fresh", w.no.params(), crypto::Drbg::from_string("f"));
  fresh.complete_enrollment(w.gm.enroll("fresh-bench", w.ttp));
  proto::Timestamp now = 90'000'000;
  for (auto _ : state) {
    now += 1000;
    const auto beacon = w.router->make_beacon(now);
    auto m2 = fresh.process_beacon(beacon, now);  // includes M.2 build
    benchmark::DoNotOptimize(m2);
  }
}
BENCHMARK(BM_BeaconValidation)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace peace::bench

BENCHMARK_MAIN();
