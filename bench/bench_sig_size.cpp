// E1 — "Communication Overhead" (paper Sec. V.C).
// Paper: the group signature is 2 G1 + 5 Zp elements = 1,192 bits (149 B)
// at 170-bit parameters, "almost the same as a standard RSA-1024 signature"
// (128 B). We regenerate the comparison at our 254-bit parameters and also
// report the per-message wire sizes of the three protocol messages.
#include "bench_common.hpp"

#include "baseline/blind_sig.hpp"
#include "baseline/plain_auth.hpp"
#include "baseline/ring_sig.hpp"
#include "baseline/rsa.hpp"

namespace peace::bench {
namespace {

void BM_PeaceGroupSignatureSize(benchmark::State& state) {
  World& w = World::instance();
  crypto::Drbg rng = crypto::Drbg::from_string("e1");
  const auto& key = w.user->credential(w.gm.id());
  Bytes sig_bytes;
  for (auto _ : state) {
    const auto sig = groupsig::sign(w.no.params().gpk, key, as_bytes("m"), rng);
    sig_bytes = sig.to_bytes();
    benchmark::DoNotOptimize(sig_bytes);
  }
  state.counters["sig_bytes"] = static_cast<double>(sig_bytes.size());
  state.counters["sig_bits"] = static_cast<double>(sig_bytes.size() * 8);
  // The paper's parameterization for reference: 149 bytes / 1192 bits.
  state.counters["paper_bytes_170bit"] = 149;
}
BENCHMARK(BM_PeaceGroupSignatureSize)->Unit(benchmark::kMillisecond);

void BM_Rsa1024SignatureSize(benchmark::State& state) {
  crypto::Drbg rng = crypto::Drbg::from_string("e1-rsa");
  const auto kp = baseline::RsaKeyPair::generate(1024, rng);
  Bytes sig;
  for (auto _ : state) {
    sig = kp.sign(as_bytes("m"));
    benchmark::DoNotOptimize(sig);
  }
  state.counters["sig_bytes"] = static_cast<double>(sig.size());
  state.counters["sig_bits"] = static_cast<double>(sig.size() * 8);
}
BENCHMARK(BM_Rsa1024SignatureSize)->Unit(benchmark::kMillisecond);

void BM_EcdsaSignatureSize(benchmark::State& state) {
  curve::Bn254::init();
  crypto::Drbg rng = crypto::Drbg::from_string("e1-ecdsa");
  const auto kp = curve::EcdsaKeyPair::generate(rng);
  Bytes sig;
  for (auto _ : state) {
    sig = kp.sign(as_bytes("m"), rng).to_bytes();
    benchmark::DoNotOptimize(sig);
  }
  state.counters["sig_bytes"] = static_cast<double>(sig.size());
}
BENCHMARK(BM_EcdsaSignatureSize)->Unit(benchmark::kMillisecond);

void BM_ProtocolMessageSizes(benchmark::State& state) {
  World& w = World::instance();
  std::size_t m1 = 0, m2 = 0, m3 = 0;
  for (auto _ : state) {
    const auto beacon = w.router->make_beacon(1000);
    auto req = w.user->process_beacon(beacon, 1000);
    auto outcome = w.router->handle_access_request(*req, 1001);
    m1 = beacon.to_bytes().size();
    m2 = req->to_bytes().size();
    m3 = outcome->confirm.to_bytes().size();
  }
  state.counters["M1_beacon_bytes"] = static_cast<double>(m1);
  state.counters["M2_request_bytes"] = static_cast<double>(m2);
  state.counters["M3_confirm_bytes"] = static_cast<double>(m3);
}
BENCHMARK(BM_ProtocolMessageSizes)->Unit(benchmark::kMillisecond)->Iterations(3);

void BM_RingSignatureSize(benchmark::State& state) {
  // The rejected alternative of paper Sec. IV: anonymity set = the ring,
  // size linear in it (PEACE: constant 299 B for any group size), and no
  // opening possible at any size.
  curve::Bn254::init();
  crypto::Drbg rng = crypto::Drbg::from_string("e1-ring");
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<baseline::RingKeyPair> keys;
  std::vector<curve::G1> ring;
  for (std::size_t i = 0; i < n; ++i) {
    keys.push_back(baseline::RingKeyPair::generate(rng));
    ring.push_back(keys.back().public_key);
  }
  Bytes wire;
  for (auto _ : state) {
    const auto sig =
        baseline::ring_sign(ring, 0, keys[0].secret, as_bytes("m"), rng);
    wire = sig.to_bytes();
    benchmark::DoNotOptimize(wire);
  }
  state.counters["ring_size"] = static_cast<double>(n);
  state.counters["sig_bytes"] = static_cast<double>(wire.size());
  state.counters["peace_bytes_any_group"] =
      static_cast<double>(groupsig::kSignatureSize);
}
BENCHMARK(BM_RingSignatureSize)->Arg(2)->Arg(8)->Arg(32)->Arg(128);

void BM_BlindSignatureSize(benchmark::State& state) {
  curve::Bn254::init();
  crypto::Drbg rng = crypto::Drbg::from_string("e1-blind");
  const auto issuer = baseline::BlindIssuer::create(rng);
  Bytes wire;
  for (auto _ : state) {
    baseline::BlindIssuer::SessionState session;
    const auto commitment = issuer.round1(session, rng);
    baseline::BlindRequester requester;
    const auto blinded =
        requester.challenge(issuer.public_key(), commitment, as_bytes("m"),
                            rng);
    wire = requester.unblind(issuer.round2(session, blinded)).to_bytes();
    benchmark::DoNotOptimize(wire);
  }
  state.counters["sig_bytes"] = static_cast<double>(wire.size());
}
BENCHMARK(BM_BlindSignatureSize);

void BM_PlainBaselineRequestSize(benchmark::State& state) {
  curve::Bn254::init();
  crypto::Drbg rng = crypto::Drbg::from_string("e1-plain");
  baseline::PlainAuthority authority(crypto::Drbg::from_string("e1-auth"));
  const auto user = authority.issue_user("alice@example", ~0ull);
  const auto g = curve::Bn254::get().g1_gen;
  Bytes wire;
  for (auto _ : state) {
    wire = baseline::make_plain_request(user, g, g, 1000, rng).to_bytes();
    benchmark::DoNotOptimize(wire);
  }
  state.counters["request_bytes"] = static_cast<double>(wire.size());
}
BENCHMARK(BM_PlainBaselineRequestSize)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace peace::bench

BENCHMARK_MAIN();
