// The DoS analysis of paper Sec. V.A, executed: a flooder hammers a mesh
// router with bogus access requests. Without the client-puzzle defence the
// router burns a pairing-heavy signature verification per request; with it,
// unsolved requests die at a single hash, and an attacker who pays the
// brute-force price is rate-limited by its own compute budget — while a
// legitimate user still gets in.
//
// Run: ./build/examples/dos_defense
#include <chrono>
#include <cstdio>

#include "mesh/adversary.hpp"

using namespace peace;

namespace {

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main() {
  curve::Bn254::init();

  proto::NetworkOperator no(crypto::Drbg::from_string("dos-demo"));
  proto::TrustedThirdParty ttp;
  proto::GroupManager gm = no.register_group("city", 8, ttp);

  auto provision = no.provision_router(1, 1000ull * 86400 * 365);
  proto::MeshRouter router(1, provision.keypair, provision.certificate,
                           no.params(), crypto::Drbg::from_string("dos-r"));
  router.install_revocation_lists(no.current_crl(), no.current_url());

  proto::User alice("alice", no.params(), crypto::Drbg::from_string("dos-a"));
  alice.complete_enrollment(gm.enroll("alice", ttp));

  mesh::DosFlooder flooder(crypto::Drbg::from_string("dos-flooder"));
  constexpr std::size_t kFlood = 40;

  // --- Phase 1: undefended router ----------------------------------------
  auto beacon = router.make_beacon(1000);
  auto t0 = std::chrono::steady_clock::now();
  auto undefended = flooder.flood(router, beacon, 1001, kFlood, false);
  const double undefended_ms = ms_since(t0);
  std::printf("phase 1 — no defence:\n");
  std::printf("  bogus requests sent .............. %zu\n", undefended.sent);
  std::printf("  accepted (must be 0) ............. %zu\n",
              undefended.accepted);
  std::printf("  router signature verifications ... %llu (pairing-heavy!)\n",
              static_cast<unsigned long long>(
                  undefended.router_sig_verifications));
  std::printf("  wall-clock (forge+router) ........ %.1f ms (%.2f ms/request)\n",
              undefended_ms, undefended_ms / kFlood);

  // --- Phase 2: puzzle defence, attacker refuses to pay -------------------
  router.set_under_attack(true, /*difficulty=*/12);
  beacon = router.make_beacon(2000);
  t0 = std::chrono::steady_clock::now();
  auto cheap = flooder.flood(router, beacon, 2001, kFlood, false);
  const double cheap_ms = ms_since(t0);
  std::printf("\nphase 2 — puzzles on (12 bits), attacker skips them:\n");
  std::printf("  router signature verifications ... %llu\n",
              static_cast<unsigned long long>(cheap.router_sig_verifications));
  std::printf("  wall-clock (forge+router) ........ %.1f ms total "
              "(puzzle check is one hash)\n",
              cheap_ms);

  // --- Phase 3: attacker pays, budget runs dry -----------------------------
  t0 = std::chrono::steady_clock::now();
  auto paying = flooder.flood(router, beacon, 2002, kFlood, true,
                              /*hash_budget=*/8 * 4096);
  std::printf("\nphase 3 — attacker solves puzzles (budget 32768 hashes):\n");
  std::printf("  requests it could afford ......... %zu of %zu\n",
              paying.sent, kFlood);
  std::printf("  attacker hash work paid .......... %llu\n",
              static_cast<unsigned long long>(paying.attacker_hash_work));
  std::printf("  accepted (must be 0) ............. %zu\n", paying.accepted);
  std::printf("  attacker wall-clock .............. %.1f ms\n", ms_since(t0));

  // --- Phase 4: legitimate user during the attack --------------------------
  beacon = router.make_beacon(3000);
  t0 = std::chrono::steady_clock::now();
  auto m2 = alice.process_beacon(beacon, 3000);
  const bool connected =
      m2.has_value() && router.handle_access_request(*m2, 3001).has_value();
  std::printf("\nphase 4 — legitimate user under active attack:\n");
  std::printf("  solved puzzle + authenticated .... %s (%.1f ms, "
              "%llu hashes spent)\n",
              connected ? "yes" : "NO (BUG!)", ms_since(t0),
              static_cast<unsigned long long>(alice.stats().puzzle_hashes));

  return connected && undefended.accepted == 0 && paying.accepted == 0 ? 0 : 1;
}
