// metro_city — one simulated day of a sharded metropolitan deployment at
// populations up to (and beyond) 100k users: per-segment shards with their
// own event queues, commute waves roaming users between segments, a
// stadium flash crowd, and rolling revocation waves from the operator.
// See mesh/metro_scenario.hpp for the hybrid population model (a real
// BN254-crypto cohort over a synthetic background population).
//
// Run: ./build/examples/metro_city [--users=N] [--cohort=N] [--shards=N]
//        [--day-ms=N] [--budget=N] [--waves=N] [--no-flash-crowd]
//        [--trace=out.jsonl] [--trace-rotate=BYTES] [--metrics=out.json]
//        [--bench-json=out.json] [--health=out.json]
//        [--forgery-burst] [--revoked-burst]
//
// --trace streams events through the bounded-memory JSONL sink
// (obs::Tracer::stream_to) — memory stays flat however long the day; the
// file is valid input for tools/trace_report.py. --bench-json writes the
// throughput summary (users×sim-s/wall-s) as a small JSON report.
//
// --health arms the obs::HealthMonitor for the whole day (drained and
// evaluated at every tick barrier) and writes its summary JSON — input for
// tools/health_report.py. --forgery-burst / --revoked-burst inject the
// scenario's chaos bursts (a forged M.2 batch at the stadium, a revoked
// mole at downtown) so the detectors have something real to catch.
#include <cstdio>
#include <string>

#include "mesh/metro_scenario.hpp"
#include "obs/health.hpp"
#include "obs/trace.hpp"

using namespace peace;

namespace {

bool write_text_file(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const bool ok =
      std::fwrite(content.data(), 1, content.size(), f) == content.size();
  return std::fclose(f) == 0 && ok;
}

std::string bench_json(const mesh::MetroCityReport& r) {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "{\"benchmark\": \"metro_city\", \"users\": %llu, \"shards\": %zu, "
      "\"sim_ms\": %llu, \"wall_seconds\": %.3f, \"events\": %llu, "
      "\"users_sim_s_per_wall_s\": %.0f}\n",
      static_cast<unsigned long long>(r.total_users), r.shards,
      static_cast<unsigned long long>(r.sim_ms), r.wall_seconds,
      static_cast<unsigned long long>(r.events),
      r.users_sim_seconds_per_wall_second);
  return buf;
}

bool parse_u64(const std::string& arg, const char* prefix, std::uint64_t& out) {
  const std::string p = prefix;
  if (arg.rfind(p, 0) != 0) return false;
  out = std::stoull(arg.substr(p.size()));
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  curve::Bn254::init();
  mesh::MetroCityConfig config;
  std::uint64_t total_users = 100'000;
  std::uint64_t trace_rotate = 0;
  std::string trace_path, metrics_path, bench_path, health_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::uint64_t v = 0;
    if (parse_u64(arg, "--users=", total_users)) {
    } else if (parse_u64(arg, "--cohort=", v)) {
      config.cohort_users = static_cast<std::size_t>(v);
    } else if (parse_u64(arg, "--shards=", v)) {
      config.shards = static_cast<std::size_t>(v);
    } else if (parse_u64(arg, "--day-ms=", v)) {
      config.day_ms = v;
    } else if (parse_u64(arg, "--budget=", v)) {
      config.shard_event_budget = v;
    } else if (parse_u64(arg, "--waves=", v)) {
      config.revocation_waves = static_cast<unsigned>(v);
    } else if (arg == "--no-flash-crowd") {
      config.flash_crowd = false;
    } else if (arg == "--forgery-burst") {
      config.forgery_burst = true;
    } else if (arg == "--revoked-burst") {
      config.revoked_burst = true;
    } else if (parse_u64(arg, "--trace-rotate=", trace_rotate)) {
    } else if (arg.rfind("--trace=", 0) == 0) {
      trace_path = arg.substr(8);
    } else if (arg.rfind("--metrics=", 0) == 0) {
      metrics_path = arg.substr(10);
    } else if (arg.rfind("--bench-json=", 0) == 0) {
      bench_path = arg.substr(13);
    } else if (arg.rfind("--health=", 0) == 0) {
      health_path = arg.substr(9);
    } else {
      std::fprintf(stderr,
                   "usage: metro_city [--users=N] [--cohort=N] [--shards=N] "
                   "[--day-ms=N] [--budget=N] [--waves=N] [--no-flash-crowd] "
                   "[--trace=out.jsonl] [--trace-rotate=BYTES] "
                   "[--metrics=out.json] [--bench-json=out.json] "
                   "[--health=out.json] [--forgery-burst] [--revoked-burst]\n");
      return 2;
    }
  }
  if (config.shards == 0 || config.cohort_users > total_users) {
    std::fprintf(stderr, "metro_city: need shards >= 1, cohort <= users\n");
    return 2;
  }
  config.synthetic_users = total_users - config.cohort_users;

  if (!trace_path.empty()) {
    obs::enable(true);
    obs::StreamSinkOptions sink;
    sink.rotate_bytes = trace_rotate;
    if (!obs::Tracer::global().stream_to(trace_path, sink)) {
      std::fprintf(stderr, "metro_city: cannot open %s\n", trace_path.c_str());
      return 1;
    }
  } else if (!metrics_path.empty() || !health_path.empty()) {
    obs::enable(true);
  }

  // The monitor lives in main (the scenario only borrows it), so the
  // summary survives the run.
  obs::HealthMonitor monitor;
  if (!health_path.empty()) config.health = &monitor;

  std::printf("metro_city: %llu users (%zu real-crypto cohort) across %zu "
              "shards, %llu ms simulated day\n",
              static_cast<unsigned long long>(total_users), config.cohort_users,
              config.shards, static_cast<unsigned long long>(config.day_ms));

  mesh::MetroCityReport report;
  try {
    report = mesh::run_metro_city(config);
  } catch (const Error& e) {
    // e.g. a shard exhausting its event budget — the message names it.
    std::fprintf(stderr, "metro_city: %s\n", e.what());
    return 1;
  }

  std::printf(
      "day complete: %llu sim-ms in %.1f s wall — %.0f users x sim-s / "
      "wall-s\n",
      static_cast<unsigned long long>(report.sim_ms), report.wall_seconds,
      report.users_sim_seconds_per_wall_second);
  std::printf("  events ............ %llu across %zu shards\n",
              static_cast<unsigned long long>(report.events), report.shards);
  std::printf("  cohort ............ %zu/%zu connected at day end, "
              "%llu cross-shard roams\n",
              report.cohort_connected, report.cohort_users,
              static_cast<unsigned long long>(report.cohort_roams));
  std::printf("  mailboxes ......... %llu msgs routed, %llu handoffs parked, "
              "%llu dropped\n",
              static_cast<unsigned long long>(report.metro.msgs_routed),
              static_cast<unsigned long long>(report.metro.handoffs_parked),
              static_cast<unsigned long long>(report.metro.handoffs_dropped));
  std::printf("  backbone .......... %llu relays delivered, %llu dropped\n",
              static_cast<unsigned long long>(report.metro.relay_delivered),
              static_cast<unsigned long long>(report.metro.relay_dropped));
  std::printf("  synthetic load .... %llu modeled associations, %llu data "
              "frames, %llu moved\n",
              static_cast<unsigned long long>(report.synthetic.associations),
              static_cast<unsigned long long>(report.synthetic.data_frames),
              static_cast<unsigned long long>(report.synthetic.moved));
  std::printf("  revocation ........ %u waves pushed, URL v%llu\n",
              report.revocation_waves,
              static_cast<unsigned long long>(report.url_version));
  if (config.health != nullptr)
    std::printf("  health ............ %llu alerts from %llu events "
                "(%llu shed)\n",
                static_cast<unsigned long long>(monitor.alerts_total()),
                static_cast<unsigned long long>(monitor.events_ingested()),
                static_cast<unsigned long long>(obs::sec_events_shed()));

  bool ok = report.cohort_connected == report.cohort_users;
  if (!ok)
    std::fprintf(stderr, "metro_city: cohort did not fully reconnect\n");
  if (!trace_path.empty()) {
    const std::uint64_t streamed = obs::Tracer::global().streamed_event_count();
    if (!obs::Tracer::global().stop_streaming()) {
      std::fprintf(stderr, "metro_city: trace stream write failed\n");
      ok = false;
    }
    std::printf("trace: %llu events streamed -> %s\n",
                static_cast<unsigned long long>(streamed), trace_path.c_str());
  }
  if (!metrics_path.empty() &&
      !write_text_file(metrics_path, obs::Registry::global().to_json())) {
    std::fprintf(stderr, "metro_city: cannot write %s\n", metrics_path.c_str());
    ok = false;
  }
  if (!bench_path.empty() && !write_text_file(bench_path, bench_json(report))) {
    std::fprintf(stderr, "metro_city: cannot write %s\n", bench_path.c_str());
    ok = false;
  }
  if (!health_path.empty() &&
      !write_text_file(health_path, monitor.summary_json())) {
    std::fprintf(stderr, "metro_city: cannot write %s\n", health_path.c_str());
    ok = false;
  }
  return ok ? 0 : 1;
}
