// Operator crash drill: kill the control plane mid-revocation-wave, recover
// from the durable log, and let routers resync off the recovered delta
// chain. Exits non-zero if recovery is not byte-identical to an
// uninterrupted run or a router ever observes a rollback — which makes this
// binary the recovery-smoke CI gate.
//
// Run: ./build/examples/recovery_drill [dir] [crash_every]
#include <cstdio>
#include <cstdlib>

#include "mesh/recovery.hpp"
#include "curve/bn254.hpp"

int main(int argc, char** argv) {
  peace::curve::Bn254::init();

  peace::mesh::RecoveryDrillConfig cfg;
  cfg.dir = argc > 1 ? argv[1] : "recovery-drill-out";
  cfg.crash_every = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 3;
  cfg.members = 8;
  cfg.revocations = 5;
  cfg.router_segments = 3;
  cfg.snapshot_every = 8;

  std::printf("recovery drill: store=%s crash_every=%zu\n", cfg.dir.c_str(),
              cfg.crash_every);
  const auto rep = peace::mesh::run_recovery_drill(cfg);

  std::printf("  wal records          %llu\n",
              static_cast<unsigned long long>(rep.records));
  std::printf("  operator crashes     %llu\n",
              static_cast<unsigned long long>(rep.crashes));
  std::printf("  deltas applied       %llu\n",
              static_cast<unsigned long long>(rep.deltas_applied));
  std::printf("  router resyncs       %llu\n",
              static_cast<unsigned long long>(rep.resyncs));
  std::printf("  rollback violations  %llu\n",
              static_cast<unsigned long long>(rep.rollback_violations));
  std::printf("  final URL version    %llu\n",
              static_cast<unsigned long long>(rep.final_url_version));
  std::printf("  segments converged   %s\n", rep.converged ? "yes" : "NO");
  std::printf("  state == reference   %s\n",
              rep.state_matches_reference ? "yes" : "NO");

  const bool ok = rep.converged && rep.state_matches_reference &&
                  rep.rollback_violations == 0 && rep.crashes > 0;
  std::printf("%s\n", ok ? "DRILL PASS" : "DRILL FAIL");
  return ok ? 0 : 1;
}
