// The accountability story of paper Sec. IV.D, end to end: a user abuses
// the network; NO audits the logged session down to the user *group* (and
// no further — privacy-enhanced accountability); the law authority, with
// the group manager's cooperation, resolves the uid; NO revokes the
// credential; the attacker is locked out while everyone else keeps working.
//
// Run: ./build/examples/audit_trail
#include <cstdio>

#include "peace/router.hpp"
#include "peace/user.hpp"

using namespace peace;

int main() {
  curve::Bn254::init();

  proto::NetworkOperator no(crypto::Drbg::from_string("audit-demo"));
  proto::TrustedThirdParty ttp;
  proto::GroupManager company = no.register_group("Company XYZ", 8, ttp);
  proto::GroupManager university = no.register_group("University Z", 8, ttp);

  auto provision = no.provision_router(1, 1000ull * 86400 * 365);
  proto::MeshRouter router(1, provision.keypair, provision.certificate,
                           no.params(), crypto::Drbg::from_string("r1"));
  router.install_revocation_lists(no.current_crl(), no.current_url());

  // Enroll three residents; keep the enrollment records only where the
  // paper allows them (GM side).
  auto enroll = [&](const char* uid, proto::GroupManager& gm) {
    proto::User user(uid, no.params(), crypto::Drbg::from_string(uid));
    user.complete_enrollment(gm.enroll(uid, ttp));
    return user;
  };
  proto::User alice = enroll("alice@company", company);
  proto::User bob = enroll("bob@company", company);
  proto::User carol = enroll("carol@university", university);

  // All three use the network; the router keeps the standard network log of
  // authentication messages (M.2) — the paper's audit input.
  std::vector<proto::AccessRequest> network_log;
  proto::Timestamp now = 1000;
  for (proto::User* u : {&alice, &bob, &carol}) {
    const auto beacon = router.make_beacon(now);
    auto m2 = u->process_beacon(beacon, now);
    auto outcome = router.handle_access_request(*m2, now + 1);
    std::printf("session %s... established (signer anonymous to router)\n",
                to_hex(outcome->session_id).substr(0, 12).c_str());
    network_log.push_back(*m2);
    now += 1000;
  }

  // --- A dispute arises over the second session --------------------------
  std::printf("\n[dispute] abuse reported on session #2; NO audits the "
              "logged M.2\n");
  const proto::AccessRequest& disputed = network_log[1];
  const auto audit = no.audit(disputed);
  std::printf("[NO] audit result: responsible entity is a member of group "
              "%u ('%s'), token scan touched %zu of %zu grt entries\n",
              audit->group_id,
              audit->group_id == company.id() ? company.name().c_str()
                                              : university.name().c_str(),
              audit->tokens_scanned, no.grt_size());
  std::printf("[NO] that is ALL the operator learns — no uid exists "
              "anywhere in NO's records (late binding)\n");

  // --- Escalation to the law authority -----------------------------------
  std::printf("\n[law] severe case: law authority requests the trace\n");
  const auto traced =
      proto::LawAuthority::trace(no, {&company, &university}, disputed);
  std::printf("[law] with GM '%s' cooperating: responsible user is '%s'\n",
              company.name().c_str(), traced->uid.c_str());
  std::printf("[law] without the right GM the trace fails: %s\n",
              proto::LawAuthority::trace(no, {&university}, disputed)
                      .has_value()
                  ? "(unexpectedly succeeded!)"
                  : "confirmed");

  // --- Dynamic revocation --------------------------------------------------
  std::printf("\n[NO] revoking credential [%u, %u]\n", audit->index.group,
              audit->index.member);
  no.revoke_user_key(audit->index, now);
  router.install_revocation_lists(no.current_crl(), no.current_url());

  // The revoked user (bob) can no longer authenticate...
  const auto beacon = router.make_beacon(now);
  auto bob_m2 = bob.process_beacon(beacon, now);
  const bool bob_in =
      router.handle_access_request(*bob_m2, now + 1).has_value();
  std::printf("[net] revoked user's next access attempt: %s\n",
              bob_in ? "ACCEPTED (BUG!)" : "rejected (URL hit)");

  // ...while innocent members of the same group are unaffected
  // (non-frameability in action).
  auto alice_m2 = alice.process_beacon(router.make_beacon(now + 10), now + 10);
  const bool alice_in =
      router.handle_access_request(*alice_m2, now + 11).has_value();
  std::printf("[net] same-group innocent user still connects: %s\n",
              alice_in ? "yes" : "NO (BUG!)");

  return (!bob_in && alice_in) ? 0 : 1;
}
