// A day in a metropolitan mesh (the paper's motivating scenario, Sec. I):
// three mesh routers cover a downtown strip; a dozen citizens — employees,
// students, club members — authenticate anonymously, form peer relay links,
// and push traffic through the mesh while a global eavesdropper records
// every frame and finds nothing to link.
//
// Run: ./build/examples/metro_mesh_day
//
// With --chaos, the same day is lived under the fault-injection harness
// (PROTOCOL.md §10): burst loss, duplication, reordering, corruption,
// partitions, and a router crash, each as its own phase. The reliability
// layer must converge every reachable resident and keep the delivery rate
// above each phase's floor; exit status reports the verdict.
//
// Telemetry (docs/OBSERVABILITY.md): --trace=PATH writes a Chrome
// trace_event JSON of the day (load in chrome://tracing or Perfetto),
// --jsonl=PATH the same events one JSON object per line, --metrics=PATH
// the metrics-registry snapshot. Any of the three enables tracing; none
// leaves telemetry off, and the day's protocol bytes are identical either
// way (determinism_test asserts this).
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "mesh/adversary.hpp"
#include "obs/trace.hpp"

using namespace peace;

namespace {

struct ObsOptions {
  std::string trace_path, metrics_path, jsonl_path;
  bool any() const {
    return !trace_path.empty() || !metrics_path.empty() || !jsonl_path.empty();
  }
};

bool write_text_file(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const bool ok =
      std::fwrite(content.data(), 1, content.size(), f) == content.size();
  return std::fclose(f) == 0 && ok;
}

int write_obs_outputs(const ObsOptions& opts) {
  bool ok = true;
  if (!opts.trace_path.empty()) {
    ok &= obs::Tracer::global().write_chrome(opts.trace_path);
    std::printf("trace: %zu events -> %s\n",
                obs::Tracer::global().event_count(), opts.trace_path.c_str());
  }
  if (!opts.jsonl_path.empty())
    ok &= obs::Tracer::global().write_jsonl(opts.jsonl_path);
  if (!opts.metrics_path.empty()) {
    ok &= write_text_file(opts.metrics_path, obs::Registry::global().to_json());
    std::printf("metrics: -> %s\n", opts.metrics_path.c_str());
  }
  if (!ok) std::fprintf(stderr, "failed to write telemetry output\n");
  return ok ? 0 : 1;
}

constexpr proto::Timestamp kYearMs = 1000ull * 86400 * 365;

/// One disposable metro segment for a chaos phase: three routers on a
/// downtown strip, twelve residents spaced so greedy relay chains work,
/// idempotent resend on (retransmission is only safe with it).
struct ChaosSegment {
  explicit ChaosSegment(const std::string& seed)
      : no(crypto::Drbg::from_string(seed + "-no")),
        gm(no.register_group("metro", 16, ttp)),
        net(sim, crypto::Drbg::from_string(seed + "-net"), mesh::RadioConfig{},
            [] {
              proto::ProtocolConfig config;
              config.idempotent_resend = true;
              config.replay_window_ms = 60'000;
              return config;
            }(),
            [] {
              mesh::ReliabilityConfig reliability;
              reliability.rekey_after_frames = 8;  // exercised by the probes
              return reliability;
            }()) {
    routers.push_back(net.add_router({0, 0}, no, kYearMs));
    routers.push_back(net.add_router({400, 0}, no, kYearMs));
    routers.push_back(net.add_router({800, 0}, no, kYearMs));
    for (int i = 0; i < 12; ++i) {
      auto user = std::make_unique<proto::User>(
          "resident" + std::to_string(i), no.params(),
          crypto::Drbg::from_string(seed + "-r" + std::to_string(i)),
          [] {
            proto::ProtocolConfig config;
            config.idempotent_resend = true;
            config.replay_window_ms = 60'000;
            return config;
          }());
      user->complete_enrollment(gm.enroll(user->uid(), ttp));
      users.push_back(net.add_user(
          {30.0 + 50.0 * i, (i % 2) ? 12.0 : -12.0}, std::move(user)));
    }
  }

  std::size_t connected() const {
    std::size_t n = 0;
    for (const mesh::NodeId u : users) n += net.is_connected(u) ? 1 : 0;
    return n;
  }

  /// Sends `per_user` probes from every resident; returns the fraction
  /// delivered (faults stay active — this is the in-storm delivery rate).
  double probe(int per_user) {
    std::size_t sent = 0, ok = 0;
    for (const mesh::NodeId u : users)
      for (int i = 0; i < per_user; ++i) {
        ++sent;
        ok += net.send_data(u, as_bytes("chaos probe")) ? 1 : 0;
        sim.run_until(sim.now() + 50);
      }
    return sent == 0 ? 0.0 : static_cast<double>(ok) / sent;
  }

  proto::NetworkOperator no;
  proto::TrustedThirdParty ttp;
  proto::GroupManager gm;
  mesh::Simulator sim;
  mesh::MeshNetwork net;
  std::vector<mesh::NodeId> routers;
  std::vector<mesh::NodeId> users;
};

bool chaos_phase(const char* name, const std::string& seed,
                 const mesh::FaultPlan& plan, double delivery_floor) {
  ChaosSegment seg(seed);
  seg.net.set_fault_plan(plan);
  seg.net.start_beaconing(100, 1000, 60'000);
  seg.sim.run_until(50'000);
  seg.net.establish_peer_links();
  seg.sim.run_until(80'000);
  seg.net.establish_peer_links();  // retry pairs whose budget ran out
  seg.sim.run_until(110'000);

  const std::size_t connected = seg.connected();
  const double rate = seg.probe(4);
  const auto& s = seg.net.stats();
  const bool ok = connected == seg.users.size() && rate >= delivery_floor;
  std::printf(
      "%-11s %2zu/%zu sessions, delivery %.0f%% (floor %.0f%%) | retx %llu, "
      "timeouts %llu, rekeys %llu, corrupt-rejected %llu, dup %llu, "
      "delayed %llu, lost %llu  %s\n",
      name, connected, seg.users.size(), 100 * rate, 100 * delivery_floor,
      static_cast<unsigned long long>(s.retransmissions),
      static_cast<unsigned long long>(s.handshake_timeouts),
      static_cast<unsigned long long>(s.rekeys),
      static_cast<unsigned long long>(s.corrupted_rejected),
      static_cast<unsigned long long>(s.frames_duplicated),
      static_cast<unsigned long long>(s.frames_delayed),
      static_cast<unsigned long long>(s.frames_lost), ok ? "ok" : "FAIL");
  return ok;
}

bool chaos_crash_phase() {
  ChaosSegment seg("chaos-day-crash");
  seg.net.start_beaconing(100, 1000, 120'000);
  seg.sim.run_until(5'000);
  const std::size_t before = seg.connected();

  // The middle router dies mid-morning. Residents discover the outage on
  // their next send, drop the stale uplink, and fail over to whichever
  // living router still covers them; the rest wait out the outage.
  seg.net.crash_router(seg.routers[1]);
  for (const mesh::NodeId u : seg.users)
    (void)seg.net.send_data(u, as_bytes("outage probe"));
  seg.sim.run_until(40'000);
  const std::size_t during = seg.connected();

  // Lunchtime repair: the router returns with its old identity and the
  // whole strip reconverges.
  seg.net.restart_router(seg.routers[1]);
  seg.sim.run_until(90'000);
  const std::size_t after = seg.connected();

  const auto& s = seg.net.stats();
  const bool ok = before == seg.users.size() && during > 0 &&
                  after == seg.users.size() && s.failovers > 0;
  std::printf(
      "crash       %2zu/%zu before, %zu during outage, %zu after restart | "
      "failovers %llu, partition-dropped %llu  %s\n",
      before, seg.users.size(), during, after,
      static_cast<unsigned long long>(s.failovers),
      static_cast<unsigned long long>(s.frames_partitioned), ok ? "ok" : "FAIL");
  return ok;
}

bool chaos_partition_phase() {
  ChaosSegment seg("chaos-day-part");
  seg.net.start_beaconing(100, 1000, 30'000);
  seg.sim.run_until(5'000);
  seg.net.establish_peer_links();
  seg.sim.run_until(10'000);
  bool ok = seg.connected() == seg.users.size();

  // Sever every user-router radio link (relay chains still stand, but the
  // last hop is always user -> router): traffic stops dead. Heal, and the
  // untouched sessions carry traffic again without a single new handshake.
  const auto partition = [&](bool blocked) {
    for (const mesh::NodeId u : seg.users)
      for (const mesh::NodeId r : seg.routers)
        seg.net.set_link_blocked(u, r, blocked);
  };
  partition(true);
  const double rate_blocked = seg.probe(1);
  partition(false);
  const double rate_healed = seg.probe(4);
  ok = ok && rate_blocked == 0.0 && rate_healed >= 0.9;
  std::printf(
      "partition   %2zu/%zu sessions, delivery %.0f%% severed -> %.0f%% "
      "healed | partition-dropped %llu  %s\n",
      seg.connected(), seg.users.size(), 100 * rate_blocked, 100 * rate_healed,
      static_cast<unsigned long long>(seg.net.stats().frames_partitioned),
      ok ? "ok" : "FAIL");
  return ok;
}

int run_chaos_day() {
  std::printf("a chaotic day in the metro mesh — every phase rides the "
              "reliability layer (PROTOCOL.md 10)\n\n");
  mesh::FaultPlan burst;
  burst.loss_bad = 0.75;
  burst.p_good_to_bad = 0.2;
  burst.p_bad_to_good = 0.3;  // ~30% loss in bursts
  mesh::FaultPlan duplication;
  duplication.duplicate_probability = 0.5;
  mesh::FaultPlan reorder;
  reorder.reorder_probability = 0.5;
  reorder.reorder_max_jitter_ms = 50;
  mesh::FaultPlan corruption;
  corruption.corrupt_probability = 0.2;

  bool ok = true;
  // Floors reflect the physics: probes ride relay chains of up to four
  // radio hops, so ~30% per-hop loss compounds to ~0.7^4 for the far users.
  ok &= chaos_phase("burst-loss", "chaos-day-burst", burst, 0.35);
  ok &= chaos_phase("duplication", "chaos-day-dup", duplication, 0.9);
  ok &= chaos_phase("reordering", "chaos-day-reorder", reorder, 0.9);
  ok &= chaos_phase("corruption", "chaos-day-corrupt", corruption, 0.4);
  ok &= chaos_partition_phase();
  ok &= chaos_crash_phase();
  std::printf("\nchaos day: %s\n", ok ? "every phase converged" : "FAILED");
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  curve::Bn254::init();
  bool chaos = false;
  ObsOptions obs_opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--chaos") {
      chaos = true;
    } else if (arg.rfind("--trace=", 0) == 0) {
      obs_opts.trace_path = arg.substr(8);
    } else if (arg.rfind("--metrics=", 0) == 0) {
      obs_opts.metrics_path = arg.substr(10);
    } else if (arg.rfind("--jsonl=", 0) == 0) {
      obs_opts.jsonl_path = arg.substr(8);
    } else {
      std::fprintf(stderr,
                   "usage: metro_mesh_day [--chaos] [--trace=out.json] "
                   "[--metrics=out.json] [--jsonl=out.jsonl]\n");
      return 2;
    }
  }
  if (obs_opts.any()) obs::enable(true);
  if (chaos) {
    const int rc = run_chaos_day();
    const int obs_rc = obs_opts.any() ? write_obs_outputs(obs_opts) : 0;
    return rc != 0 ? rc : obs_rc;
  }
  constexpr proto::Timestamp kYear = kYearMs;

  proto::NetworkOperator no(crypto::Drbg::from_string("metro-demo"));
  proto::TrustedThirdParty ttp;
  proto::GroupManager company = no.register_group("Company XYZ", 16, ttp);
  proto::GroupManager university = no.register_group("University Z", 16, ttp);
  proto::GroupManager golf_club = no.register_group("Golf Club V", 16, ttp);

  mesh::Simulator sim;
  mesh::MeshNetwork net(sim, crypto::Drbg::from_string("metro-net"),
                        mesh::RadioConfig{.router_range = 250.0, .user_range = 80.0, .loss_probability = 0.05, .latency_ms = 2});

  // Downtown strip: routers every 400 m, one wired access point at city
  // hall (the paper's layer-1 Internet entry).
  net.add_router({0, 0}, no, kYear);
  net.add_router({400, 0}, no, kYear);
  net.add_router({800, 0}, no, kYear);
  net.add_access_point({400, 300});

  // Citizens scattered along the strip, enrolled via their social roles.
  struct Resident {
    const char* uid;
    proto::GroupManager* gm;
    mesh::Vec2 pos;
  };
  std::vector<Resident> residents = {
      {"alice@company", &company, {30, 20}},
      {"bob@company", &company, {90, -10}},
      {"carol@university", &university, {160, 25}},
      {"dave@university", &university, {230, -30}},
      {"erin@golf", &golf_club, {380, 15}},
      {"frank@company", &company, {430, -20}},
      {"grace@university", &university, {520, 30}},
      {"heidi@golf", &golf_club, {610, -15}},
      {"ivan@company", &company, {700, 10}},
      {"judy@university", &university, {790, -25}},
      {"mallory@golf", &golf_club, {840, 20}},
      {"niaj@company", &company, {870, -10}},
  };
  std::vector<mesh::NodeId> ids;
  for (const Resident& r : residents) {
    auto user = std::make_unique<proto::User>(
        r.uid, no.params(), crypto::Drbg::from_string(r.uid));
    user->complete_enrollment(r.gm->enroll(r.uid, ttp));
    ids.push_back(net.add_user(r.pos, std::move(user)));
  }

  // A global passive adversary taps every radio frame.
  mesh::Eavesdropper eve;
  eve.attach(net);

  // Morning: routers beacon every second for ten seconds; everyone joins.
  net.start_beaconing(100, 1000, 10'000);
  sim.run_until(12'000);

  std::size_t connected = 0;
  for (const mesh::NodeId id : ids)
    if (net.is_connected(id)) ++connected;
  std::printf("morning: %zu/%zu residents authenticated anonymously\n",
              connected, ids.size());

  // Midday: neighbors authenticate each other for relaying.
  net.establish_peer_links();
  sim.run_until(13'000);

  // Afternoon: everyone browses the Internet; out-of-radio-range users
  // relay via peers, then the traffic crosses the wireless backbone to the
  // wired access point.
  std::size_t sent = 0, delivered = 0;
  for (const mesh::NodeId id : ids) {
    for (int k = 0; k < 3; ++k) {
      ++sent;
      if (net.send_to_internet(id, as_bytes("encrypted citizen traffic")))
        ++delivered;
    }
  }
  std::printf("afternoon: %zu/%zu transfers reached the Internet "
              "(%llu peer relay hops, %llu backbone hops, %llu frames lost "
              "to radio)\n",
              delivered, sent,
              static_cast<unsigned long long>(net.stats().relay_hops_total),
              static_cast<unsigned long long>(net.stats().backbone_hops_total),
              static_cast<unsigned long long>(net.stats().frames_lost));

  // Late afternoon: the golf club reports mallory's device stolen and the
  // club's second key lapses too. The NO revokes both and distributes the
  // changes as signed deltas over the lossy radio — deliberately newest
  // announcement first, so the segment sees a chain gap and heals it with
  // a resync round-trip before the older (now stale) announcement arrives.
  no.revoke_user_key(company.enroll("stolen@company", ttp).index, 14'000);
  no.revoke_user_key(golf_club.enroll("lapsed@golf", ttp).index, 14'500);
  net.announce_rl_deltas(no.make_delta_announcement(0, 1), no);  // v2 only
  net.announce_rl_deltas(no.make_delta_announcement(0, 1), no);  // retransmit
  net.announce_rl_deltas(no.make_delta_announcement(0, 0), no);  // full log
  sim.run_until(16'000);
  if (net.revocation()->url_version() < no.current_url().version)
    // Both radio deliveries lost: the operator falls back to its secure
    // channel, exactly as for the pre-delta full-list pushes.
    net.push_revocation_lists(no.current_crl(), no.current_url());

  const auto& rs = net.revocation()->stats();
  unsigned long long resyncs = 0;
  for (const mesh::NodeId rid : net.router_ids())
    resyncs += net.router(rid).stats().rl_resyncs_completed;
  std::printf("\nlate afternoon: URL v%llu distributed by delta "
              "(%llu applied, %llu stale, %llu gaps, %llu resyncs)\n",
              static_cast<unsigned long long>(net.revocation()->url_version()),
              static_cast<unsigned long long>(rs.deltas_applied),
              static_cast<unsigned long long>(rs.deltas_stale),
              static_cast<unsigned long long>(rs.deltas_gap), resyncs);

  // Evening: the eavesdropper files its report.
  std::printf("\neavesdropper saw %zu frames, %zu access requests\n",
              eve.frames_seen(), eve.access_requests_seen());
  std::printf("  repeated (linkable) protocol fields ....... %zu\n",
              eve.repeated_field_count());
  std::printf("  identities observed on the air ............ %s\n",
              [&] {
                for (const Resident& r : residents)
                  if (eve.saw_bytes(as_bytes(r.uid))) return "SOME (BUG!)";
                return "none";
              }());
  std::printf("  plaintexts recovered from data frames ...... %zu\n",
              eve.recovered_plaintexts().size());

  std::printf("\nsimulator: %llu events, virtual time %llu ms\n",
              static_cast<unsigned long long>(sim.events_processed()),
              static_cast<unsigned long long>(sim.now()));

  int obs_rc = 0;
  if (obs_opts.any()) {
    net.publish_metrics();
    obs_rc = write_obs_outputs(obs_opts);
  }
  return connected == ids.size() ? obs_rc : 1;
}
