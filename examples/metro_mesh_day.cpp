// A day in a metropolitan mesh (the paper's motivating scenario, Sec. I):
// three mesh routers cover a downtown strip; a dozen citizens — employees,
// students, club members — authenticate anonymously, form peer relay links,
// and push traffic through the mesh while a global eavesdropper records
// every frame and finds nothing to link.
//
// Run: ./build/examples/metro_mesh_day
#include <cstdio>

#include "mesh/adversary.hpp"

using namespace peace;

int main() {
  curve::Bn254::init();
  constexpr proto::Timestamp kYear = 1000ull * 86400 * 365;

  proto::NetworkOperator no(crypto::Drbg::from_string("metro-demo"));
  proto::TrustedThirdParty ttp;
  proto::GroupManager company = no.register_group("Company XYZ", 16, ttp);
  proto::GroupManager university = no.register_group("University Z", 16, ttp);
  proto::GroupManager golf_club = no.register_group("Golf Club V", 16, ttp);

  mesh::Simulator sim;
  mesh::MeshNetwork net(sim, crypto::Drbg::from_string("metro-net"),
                        mesh::RadioConfig{.router_range = 250.0, .user_range = 80.0, .loss_probability = 0.05, .latency_ms = 2});

  // Downtown strip: routers every 400 m, one wired access point at city
  // hall (the paper's layer-1 Internet entry).
  net.add_router({0, 0}, no, kYear);
  net.add_router({400, 0}, no, kYear);
  net.add_router({800, 0}, no, kYear);
  net.add_access_point({400, 300});

  // Citizens scattered along the strip, enrolled via their social roles.
  struct Resident {
    const char* uid;
    proto::GroupManager* gm;
    mesh::Vec2 pos;
  };
  std::vector<Resident> residents = {
      {"alice@company", &company, {30, 20}},
      {"bob@company", &company, {90, -10}},
      {"carol@university", &university, {160, 25}},
      {"dave@university", &university, {230, -30}},
      {"erin@golf", &golf_club, {380, 15}},
      {"frank@company", &company, {430, -20}},
      {"grace@university", &university, {520, 30}},
      {"heidi@golf", &golf_club, {610, -15}},
      {"ivan@company", &company, {700, 10}},
      {"judy@university", &university, {790, -25}},
      {"mallory@golf", &golf_club, {840, 20}},
      {"niaj@company", &company, {870, -10}},
  };
  std::vector<mesh::NodeId> ids;
  for (const Resident& r : residents) {
    auto user = std::make_unique<proto::User>(
        r.uid, no.params(), crypto::Drbg::from_string(r.uid));
    user->complete_enrollment(r.gm->enroll(r.uid, ttp));
    ids.push_back(net.add_user(r.pos, std::move(user)));
  }

  // A global passive adversary taps every radio frame.
  mesh::Eavesdropper eve;
  eve.attach(net);

  // Morning: routers beacon every second for ten seconds; everyone joins.
  net.start_beaconing(100, 1000, 10'000);
  sim.run_until(12'000);

  std::size_t connected = 0;
  for (const mesh::NodeId id : ids)
    if (net.is_connected(id)) ++connected;
  std::printf("morning: %zu/%zu residents authenticated anonymously\n",
              connected, ids.size());

  // Midday: neighbors authenticate each other for relaying.
  net.establish_peer_links();
  sim.run_until(13'000);

  // Afternoon: everyone browses the Internet; out-of-radio-range users
  // relay via peers, then the traffic crosses the wireless backbone to the
  // wired access point.
  std::size_t sent = 0, delivered = 0;
  for (const mesh::NodeId id : ids) {
    for (int k = 0; k < 3; ++k) {
      ++sent;
      if (net.send_to_internet(id, as_bytes("encrypted citizen traffic")))
        ++delivered;
    }
  }
  std::printf("afternoon: %zu/%zu transfers reached the Internet "
              "(%llu peer relay hops, %llu backbone hops, %llu frames lost "
              "to radio)\n",
              delivered, sent,
              static_cast<unsigned long long>(net.stats().relay_hops_total),
              static_cast<unsigned long long>(net.stats().backbone_hops_total),
              static_cast<unsigned long long>(net.stats().frames_lost));

  // Late afternoon: the golf club reports mallory's device stolen and the
  // club's second key lapses too. The NO revokes both and distributes the
  // changes as signed deltas over the lossy radio — deliberately newest
  // announcement first, so the segment sees a chain gap and heals it with
  // a resync round-trip before the older (now stale) announcement arrives.
  no.revoke_user_key(company.enroll("stolen@company", ttp).index, 14'000);
  no.revoke_user_key(golf_club.enroll("lapsed@golf", ttp).index, 14'500);
  net.announce_rl_deltas(no.make_delta_announcement(0, 1), no);  // v2 only
  net.announce_rl_deltas(no.make_delta_announcement(0, 1), no);  // retransmit
  net.announce_rl_deltas(no.make_delta_announcement(0, 0), no);  // full log
  sim.run_until(16'000);
  if (net.revocation()->url_version() < no.current_url().version)
    // Both radio deliveries lost: the operator falls back to its secure
    // channel, exactly as for the pre-delta full-list pushes.
    net.push_revocation_lists(no.current_crl(), no.current_url());

  const auto& rs = net.revocation()->stats();
  unsigned long long resyncs = 0;
  for (const mesh::NodeId rid : net.router_ids())
    resyncs += net.router(rid).stats().rl_resyncs_completed;
  std::printf("\nlate afternoon: URL v%llu distributed by delta "
              "(%llu applied, %llu stale, %llu gaps, %llu resyncs)\n",
              static_cast<unsigned long long>(net.revocation()->url_version()),
              static_cast<unsigned long long>(rs.deltas_applied),
              static_cast<unsigned long long>(rs.deltas_stale),
              static_cast<unsigned long long>(rs.deltas_gap), resyncs);

  // Evening: the eavesdropper files its report.
  std::printf("\neavesdropper saw %zu frames, %zu access requests\n",
              eve.frames_seen(), eve.access_requests_seen());
  std::printf("  repeated (linkable) protocol fields ....... %zu\n",
              eve.repeated_field_count());
  std::printf("  identities observed on the air ............ %s\n",
              [&] {
                for (const Resident& r : residents)
                  if (eve.saw_bytes(as_bytes(r.uid))) return "SOME (BUG!)";
                return "none";
              }());
  std::printf("  plaintexts recovered from data frames ...... %zu\n",
              eve.recovered_plaintexts().size());

  std::printf("\nsimulator: %llu events, virtual time %llu ms\n",
              static_cast<unsigned long long>(sim.events_processed()),
              static_cast<unsigned long long>(sim.now()));
  return connected == ids.size() ? 0 : 1;
}
