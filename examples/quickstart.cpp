// Quickstart: the smallest complete PEACE deployment — one network
// operator, one user group, one mesh router, one user — walking through
// setup, the anonymous three-way handshake (M.1 -> M.2 -> M.3), and
// encrypted session traffic.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart
#include <cstdio>

#include "peace/peace.hpp"

using namespace peace;

int main() {
  curve::Bn254::init();

  // --- Scheme setup (paper Sec. IV.A) -----------------------------------
  // NO generates the group master key; the TTP escrows blinded credentials;
  // the group manager hands out (grp, x) pairs to its members.
  proto::NetworkOperator no(crypto::Drbg::from_os_entropy());
  proto::TrustedThirdParty ttp;
  proto::GroupManager company = no.register_group("Company XYZ", 16, ttp);
  std::printf("setup: registered user group '%s' with %zu credentials\n",
              company.name().c_str(), company.keys_remaining());

  // A citizen subscribes through their employer. The user assembles
  // gsk = (A, grp, x) from the GM's share and the TTP's blinded share.
  proto::User alice("alice@company-xyz", no.params(),
                    crypto::Drbg::from_os_entropy());
  alice.complete_enrollment(company.enroll("alice@company-xyz", ttp));
  std::printf("setup: alice enrolled; credential valid: %s\n",
              alice.credential(company.id()).is_valid(no.params().gpk)
                  ? "yes"
                  : "no");

  // NO provisions a mesh router with an ECDSA certificate.
  auto provision = no.provision_router(/*id=*/1, /*expires_at=*/86'400'000);
  proto::MeshRouter router(1, provision.keypair, provision.certificate,
                           no.params(), crypto::Drbg::from_os_entropy());
  router.install_revocation_lists(no.current_crl(), no.current_url());

  // --- User-router mutual authentication (paper Sec. IV.B) ---------------
  const proto::Timestamp now = 1000;
  const proto::BeaconMessage beacon = router.make_beacon(now);  // M.1
  std::printf("M.1: beacon from router %u (%zu bytes on the wire)\n",
              beacon.router_id, beacon.to_bytes().size());

  auto m2 = alice.process_beacon(beacon, now);  // M.2 (anonymous!)
  if (!m2.has_value()) {
    std::printf("beacon rejected\n");
    return 1;
  }
  std::printf("M.2: anonymous access request (%zu bytes; group signature "
              "%zu bytes; no uid anywhere)\n",
              m2->to_bytes().size(), m2->signature.to_bytes().size());

  auto outcome = router.handle_access_request(*m2, now + 5);  // M.3
  if (!outcome.has_value()) {
    std::printf("router rejected the request\n");
    return 1;
  }
  std::printf("M.3: router confirmed; session id %s...\n",
              to_hex(outcome->session_id).substr(0, 16).c_str());

  auto session = alice.process_access_confirm(outcome->confirm);
  if (!session.has_value()) {
    std::printf("confirmation failed\n");
    return 1;
  }
  std::printf("handshake complete: mutual authentication + shared key, "
              "3 messages total\n");

  // --- Hybrid session traffic (paper Sec. V.C) ---------------------------
  proto::Session* router_side = router.session(outcome->session_id);
  proto::DataFrame frame = session->seal(as_bytes("GET /metro/news HTTP/1.1"));
  auto received = router_side->open(frame);
  std::printf("data: user -> router delivered: '%s'\n",
              received.has_value()
                  ? std::string(received->begin(), received->end()).c_str()
                  : "(failed)");

  proto::DataFrame reply = router_side->seal(as_bytes("HTTP/1.1 200 OK"));
  auto got = session->open(reply);
  std::printf("data: router -> user delivered: '%s'\n",
              got.has_value()
                  ? std::string(got->begin(), got->end()).c_str()
                  : "(failed)");

  // --- What the operator can and cannot learn ----------------------------
  const auto audit = no.audit(*m2);
  std::printf("audit: NO can pin the session to group '%s' (id %u), "
              "but holds no uid for it.\n",
              company.name().c_str(), audit->group_id);
  const auto traced = proto::LawAuthority::trace(no, {&company}, *m2);
  std::printf("trace: with the GM cooperating, the law authority resolves "
              "the uid: %s\n",
              traced.has_value() ? traced->uid.c_str() : "(none)");
  return 0;
}
