// Membership lifecycle (paper Sec. III.A): subscriptions are periodically
// terminated/renewed via a group-public-key update. This example walks one
// renewal cycle: era-1 users work; the operator rotates the master key;
// every outstanding credential dies at once (including any that were never
// individually revoked — the paper's backstop against stale URLs); renewed
// subscribers re-enroll and continue; sessions logged before the rotation
// remain auditable from the archived era.
//
// Run: ./build/examples/membership_renewal
#include <cstdio>

#include "peace/router.hpp"
#include "peace/user.hpp"

using namespace peace;

namespace {

bool try_connect(proto::User& user, proto::MeshRouter& router,
                 proto::Timestamp now, proto::AccessRequest* logged = nullptr) {
  const auto beacon = router.make_beacon(now);
  auto m2 = user.process_beacon(beacon, now);
  if (!m2.has_value()) return false;
  if (logged != nullptr) *logged = *m2;
  return router.handle_access_request(*m2, now + 1).has_value();
}

}  // namespace

int main() {
  curve::Bn254::init();

  proto::NetworkOperator no(crypto::Drbg::from_string("renewal-demo"));
  proto::TrustedThirdParty ttp;
  proto::GroupManager company = no.register_group("Company XYZ", 4, ttp);

  auto provision = no.provision_router(1, 1000ull * 86400 * 365);
  proto::MeshRouter router(1, provision.keypair, provision.certificate,
                           no.params(), crypto::Drbg::from_string("ren-r"));
  router.install_revocation_lists(no.current_crl(), no.current_url());

  // Era 1: two subscribers. One will renew, one will lapse.
  proto::User renewing("alice (renews)", no.params(),
                       crypto::Drbg::from_string("ren-a"));
  renewing.complete_enrollment(company.enroll("alice", ttp));
  proto::User lapsing("bob (lapses)", no.params(),
                      crypto::Drbg::from_string("ren-b"));
  lapsing.complete_enrollment(company.enroll("bob", ttp));

  proto::AccessRequest era1_log;
  std::printf("era 1: alice connects: %s\n",
              try_connect(renewing, router, 1000, &era1_log) ? "yes" : "no");
  std::printf("era 1: bob connects:   %s\n",
              try_connect(lapsing, router, 2000) ? "yes" : "no");

  // --- Subscription period ends: group public key update ------------------
  std::printf("\n[NO] rotating group master key (era %zu -> %zu)\n",
              no.era_count(), no.era_count() + 1);
  no.rotate_master_key(10'000);
  no.reissue_group(company, 4, ttp);
  router.install_params(no.params());
  router.install_revocation_lists(no.current_crl(), no.current_url());
  std::printf("[NO] URL reset for the new era: %zu entries\n",
              no.current_url().entries.size());

  // Both old credentials are dead — no individual revocation required.
  std::printf("\nera 2: alice with stale credential: %s\n",
              try_connect(renewing, router, 11'000) ? "ACCEPTED (BUG!)"
                                                    : "rejected");
  std::printf("era 2: bob with stale credential:   %s\n",
              try_connect(lapsing, router, 12'000) ? "ACCEPTED (BUG!)"
                                                   : "rejected");

  // Alice renews her subscription; bob does not.
  renewing.install_params(no.params());
  renewing.complete_enrollment(company.enroll("alice", ttp));
  std::printf("era 2: alice after re-enrollment:   %s\n",
              try_connect(renewing, router, 13'000) ? "connected"
                                                    : "NO (BUG!)");

  // Accountability survives the rotation: the era-1 session still audits.
  const auto audit = no.audit(era1_log);
  std::printf("\naudit of an era-1 session after rotation: %s (group %u, "
              "scanned %zu archived tokens)\n",
              audit.has_value() ? "resolved" : "LOST (BUG!)",
              audit.has_value() ? audit->group_id : 0,
              audit.has_value() ? audit->tokens_scanned : 0);
  const auto traced = proto::LawAuthority::trace(no, {&company}, era1_log);
  std::printf("law-authority trace of that session: %s\n",
              traced.has_value() ? traced->uid.c_str() : "LOST (BUG!)");
  return audit.has_value() && traced.has_value() ? 0 : 1;
}
