file(REMOVE_RECURSE
  "CMakeFiles/membership_renewal.dir/membership_renewal.cpp.o"
  "CMakeFiles/membership_renewal.dir/membership_renewal.cpp.o.d"
  "membership_renewal"
  "membership_renewal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/membership_renewal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
