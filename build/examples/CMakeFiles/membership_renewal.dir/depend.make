# Empty dependencies file for membership_renewal.
# This may be replaced when dependencies are built.
