# Empty compiler generated dependencies file for metro_mesh_day.
# This may be replaced when dependencies are built.
