file(REMOVE_RECURSE
  "CMakeFiles/metro_mesh_day.dir/metro_mesh_day.cpp.o"
  "CMakeFiles/metro_mesh_day.dir/metro_mesh_day.cpp.o.d"
  "metro_mesh_day"
  "metro_mesh_day.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metro_mesh_day.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
