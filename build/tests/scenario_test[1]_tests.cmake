add_test([=[ScenarioTest.FullOperationalCycle]=]  /root/repo/build/tests/scenario_test [==[--gtest_filter=ScenarioTest.FullOperationalCycle]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[ScenarioTest.FullOperationalCycle]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build/tests SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==] TIMEOUT 600)
set(  scenario_test_TESTS ScenarioTest.FullOperationalCycle)
