# Empty dependencies file for chacha_test.
# This may be replaced when dependencies are built.
