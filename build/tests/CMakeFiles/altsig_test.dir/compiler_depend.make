# Empty compiler generated dependencies file for altsig_test.
# This may be replaced when dependencies are built.
