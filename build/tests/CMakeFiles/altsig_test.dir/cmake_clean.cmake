file(REMOVE_RECURSE
  "CMakeFiles/altsig_test.dir/altsig_test.cpp.o"
  "CMakeFiles/altsig_test.dir/altsig_test.cpp.o.d"
  "altsig_test"
  "altsig_test.pdb"
  "altsig_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/altsig_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
