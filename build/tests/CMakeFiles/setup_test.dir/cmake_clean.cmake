file(REMOVE_RECURSE
  "CMakeFiles/setup_test.dir/setup_test.cpp.o"
  "CMakeFiles/setup_test.dir/setup_test.cpp.o.d"
  "setup_test"
  "setup_test.pdb"
  "setup_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/setup_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
