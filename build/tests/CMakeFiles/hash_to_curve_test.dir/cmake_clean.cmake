file(REMOVE_RECURSE
  "CMakeFiles/hash_to_curve_test.dir/hash_to_curve_test.cpp.o"
  "CMakeFiles/hash_to_curve_test.dir/hash_to_curve_test.cpp.o.d"
  "hash_to_curve_test"
  "hash_to_curve_test.pdb"
  "hash_to_curve_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hash_to_curve_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
