# Empty compiler generated dependencies file for hash_to_curve_test.
# This may be replaced when dependencies are built.
