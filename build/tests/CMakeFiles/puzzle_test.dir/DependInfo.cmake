
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/puzzle_test.cpp" "tests/CMakeFiles/puzzle_test.dir/puzzle_test.cpp.o" "gcc" "tests/CMakeFiles/puzzle_test.dir/puzzle_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/peace/CMakeFiles/peace_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/groupsig/CMakeFiles/peace_groupsig.dir/DependInfo.cmake"
  "/root/repo/build/src/curve/CMakeFiles/peace_curve.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/peace_math.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/peace_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/peace_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
