# Empty dependencies file for roles_test.
# This may be replaced when dependencies are built.
