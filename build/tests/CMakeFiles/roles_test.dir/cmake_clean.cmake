file(REMOVE_RECURSE
  "CMakeFiles/roles_test.dir/roles_test.cpp.o"
  "CMakeFiles/roles_test.dir/roles_test.cpp.o.d"
  "roles_test"
  "roles_test.pdb"
  "roles_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/roles_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
