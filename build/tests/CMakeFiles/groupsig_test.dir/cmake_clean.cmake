file(REMOVE_RECURSE
  "CMakeFiles/groupsig_test.dir/groupsig_test.cpp.o"
  "CMakeFiles/groupsig_test.dir/groupsig_test.cpp.o.d"
  "groupsig_test"
  "groupsig_test.pdb"
  "groupsig_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/groupsig_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
