# Empty compiler generated dependencies file for groupsig_test.
# This may be replaced when dependencies are built.
