file(REMOVE_RECURSE
  "CMakeFiles/tower_test.dir/tower_test.cpp.o"
  "CMakeFiles/tower_test.dir/tower_test.cpp.o.d"
  "tower_test"
  "tower_test.pdb"
  "tower_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tower_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
