# Empty dependencies file for tower_test.
# This may be replaced when dependencies are built.
