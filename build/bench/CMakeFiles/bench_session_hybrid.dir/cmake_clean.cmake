file(REMOVE_RECURSE
  "CMakeFiles/bench_session_hybrid.dir/bench_session_hybrid.cpp.o"
  "CMakeFiles/bench_session_hybrid.dir/bench_session_hybrid.cpp.o.d"
  "bench_session_hybrid"
  "bench_session_hybrid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_session_hybrid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
