# Empty compiler generated dependencies file for bench_session_hybrid.
# This may be replaced when dependencies are built.
