file(REMOVE_RECURSE
  "CMakeFiles/bench_dos_puzzle.dir/bench_dos_puzzle.cpp.o"
  "CMakeFiles/bench_dos_puzzle.dir/bench_dos_puzzle.cpp.o.d"
  "bench_dos_puzzle"
  "bench_dos_puzzle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dos_puzzle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
