# Empty compiler generated dependencies file for bench_dos_puzzle.
# This may be replaced when dependencies are built.
