# Empty dependencies file for bench_sig_size.
# This may be replaced when dependencies are built.
