file(REMOVE_RECURSE
  "CMakeFiles/bench_sig_size.dir/bench_sig_size.cpp.o"
  "CMakeFiles/bench_sig_size.dir/bench_sig_size.cpp.o.d"
  "bench_sig_size"
  "bench_sig_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sig_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
