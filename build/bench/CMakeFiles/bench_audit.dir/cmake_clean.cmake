file(REMOVE_RECURSE
  "CMakeFiles/bench_audit.dir/bench_audit.cpp.o"
  "CMakeFiles/bench_audit.dir/bench_audit.cpp.o.d"
  "bench_audit"
  "bench_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
