file(REMOVE_RECURSE
  "CMakeFiles/bench_auth_protocol.dir/bench_auth_protocol.cpp.o"
  "CMakeFiles/bench_auth_protocol.dir/bench_auth_protocol.cpp.o.d"
  "bench_auth_protocol"
  "bench_auth_protocol.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_auth_protocol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
