# Empty dependencies file for bench_mesh_scale.
# This may be replaced when dependencies are built.
