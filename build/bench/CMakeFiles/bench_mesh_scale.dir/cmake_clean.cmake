file(REMOVE_RECURSE
  "CMakeFiles/bench_mesh_scale.dir/bench_mesh_scale.cpp.o"
  "CMakeFiles/bench_mesh_scale.dir/bench_mesh_scale.cpp.o.d"
  "bench_mesh_scale"
  "bench_mesh_scale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mesh_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
