file(REMOVE_RECURSE
  "CMakeFiles/bench_sign_verify.dir/bench_sign_verify.cpp.o"
  "CMakeFiles/bench_sign_verify.dir/bench_sign_verify.cpp.o.d"
  "bench_sign_verify"
  "bench_sign_verify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sign_verify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
