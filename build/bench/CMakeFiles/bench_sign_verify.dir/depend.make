# Empty dependencies file for bench_sign_verify.
# This may be replaced when dependencies are built.
