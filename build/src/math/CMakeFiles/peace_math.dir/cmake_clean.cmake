file(REMOVE_RECURSE
  "CMakeFiles/peace_math.dir/bigint.cpp.o"
  "CMakeFiles/peace_math.dir/bigint.cpp.o.d"
  "CMakeFiles/peace_math.dir/fp.cpp.o"
  "CMakeFiles/peace_math.dir/fp.cpp.o.d"
  "CMakeFiles/peace_math.dir/fp12.cpp.o"
  "CMakeFiles/peace_math.dir/fp12.cpp.o.d"
  "CMakeFiles/peace_math.dir/fp2.cpp.o"
  "CMakeFiles/peace_math.dir/fp2.cpp.o.d"
  "CMakeFiles/peace_math.dir/u256.cpp.o"
  "CMakeFiles/peace_math.dir/u256.cpp.o.d"
  "libpeace_math.a"
  "libpeace_math.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/peace_math.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
