file(REMOVE_RECURSE
  "libpeace_math.a"
)
