# Empty dependencies file for peace_math.
# This may be replaced when dependencies are built.
